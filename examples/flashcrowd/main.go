// Flash crowd: the paper's motivating scenario for bill capping — breaking
// news triples the workload for half a day in an otherwise ordinary week.
// Without capping the bill overshoots; with capping, premium customers keep
// full QoS while ordinary admission absorbs the cost shock.
//
//	go run ./examples/flashcrowd
package main

import (
	"fmt"
	"log"

	"billcap"
)

func main() {
	weekBudget := billcap.TightBudget() / 4 // one week of the tight budget

	base, err := billcap.PaperScenario(billcap.Policy1, weekBudget)
	if err != nil {
		log.Fatal(err)
	}
	base.Month = base.Month.Slice(0, 168)

	// Inject the news event: ×3 peak for 12 hours on Wednesday.
	crowd := base
	crowd.Month = base.Month.Inject(billcap.FlashCrowd{StartHour: 58, Duration: 12, Peak: 3})

	cc, err := billcap.NewCostCapping(base.DCs, base.Policies)
	if err != nil {
		log.Fatal(err)
	}

	for _, tc := range []struct {
		name string
		scen billcap.Scenario
	}{
		{"calm week", base},
		{"flash-crowd week", crowd},
	} {
		res, err := billcap.Run(tc.scen, cc)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-17s bill $%.0f / budget $%.0f (util %.1f%%)  premium %.2f%%  ordinary %.2f%%\n",
			tc.name, res.TotalBillUSD(), weekBudget, 100*res.BudgetUtilization(),
			100*res.PremiumServiceRate(), 100*res.OrdinaryServiceRate())
		drops := 0
		for _, h := range res.Hours {
			if h.ArrivedOrdinary > 0 && h.ServedOrdinary < 0.999*h.ArrivedOrdinary {
				drops++
			}
		}
		fmt.Printf("%-17s hours with throttled ordinary traffic: %d, decision mix: %v\n\n",
			"", drops, res.StepCounts)
	}

	// The same flash crowd without a budget: the bill is whatever it is.
	unc := crowd
	unc.MonthlyBudgetUSD = billcap.Uncapped()
	res, err := billcap.Run(unc, cc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-17s bill $%.0f — what the week costs when nothing is capped\n",
		"uncapped crowd", res.TotalBillUSD())
}

// Budget sweep: the paper's Figure 10 as a program — run the same month
// under a range of monthly budgets and watch ordinary throughput scale with
// the money while premium throughput never moves.
//
//	go run ./examples/budgetsweep            # one week for speed
//	go run ./examples/budgetsweep -weeks 4   # the full month
package main

import (
	"flag"
	"fmt"
	"log"

	"billcap"
)

func main() {
	weeks := flag.Int("weeks", 1, "weeks of the month to simulate (1-4)")
	flag.Parse()
	if *weeks < 1 || *weeks > 4 {
		log.Fatal("weeks must be 1..4")
	}

	fmt.Println("budget     paper-analog  premium  ordinary  bill       utilization")
	analogs := []string{"$0.5M", "$1.0M", "$1.5M", "$2.0M", "$2.5M"}
	for i, monthly := range billcap.PaperBudgets() {
		scen, err := billcap.PaperScenario(billcap.Policy1, monthly)
		if err != nil {
			log.Fatal(err)
		}
		// Truncate and scale the budget pro rata so it keeps its role.
		hours := *weeks * 168
		scen.Month = scen.Month.Slice(0, hours)
		scen.MonthlyBudgetUSD = monthly * float64(*weeks) / 4

		cc, err := billcap.NewCostCapping(scen.DCs, scen.Policies)
		if err != nil {
			log.Fatal(err)
		}
		res, err := billcap.Run(scen, cc)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("$%-8.0f  %-12s  %6.1f%%  %7.1f%%  $%-8.0f  %6.1f%%\n",
			scen.MonthlyBudgetUSD, analogs[i],
			100*res.PremiumServiceRate(), 100*res.OrdinaryServiceRate(),
			res.TotalBillUSD(), 100*res.BudgetUtilization())
	}
	fmt.Println("\npremium service never degrades; ordinary admission buys down the bill.")
}

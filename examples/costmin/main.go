// Cost minimization across a day: dispatch a diurnal workload against the
// three sites hour by hour, comparing the LMP-aware optimizer (the paper's
// Step 1) with the Min-Only price-taker baselines — all billed by the real
// market. This is a one-day miniature of the paper's Figure 3.
//
//	go run ./examples/costmin
package main

import (
	"fmt"
	"log"

	"billcap"
)

func main() {
	sites := billcap.PaperSites()
	policies := billcap.PaperPolicies(billcap.Policy1)

	scen, err := billcap.PaperScenario(billcap.Policy1, billcap.Uncapped())
	if err != nil {
		log.Fatal(err)
	}
	// One day only.
	scen.Month = scen.Month.Slice(0, 24)

	strategies := make([]billcap.Decider, 0, 3)
	cc, err := billcap.NewCostCapping(sites, policies)
	if err != nil {
		log.Fatal(err)
	}
	strategies = append(strategies, cc)
	for _, v := range []billcap.MinOnlyVariant{billcap.MinOnlyAvg, billcap.MinOnlyLow} {
		mo, err := billcap.NewMinOnly(sites, policies, v)
		if err != nil {
			log.Fatal(err)
		}
		strategies = append(strategies, mo)
	}

	fmt.Println("hour   Cost Capping   Min-Only (Avg)  Min-Only (Low)   (realized $/hour)")
	bills := make([][]float64, len(strategies))
	var totals [3]float64
	for i, d := range strategies {
		res, err := billcap.Run(scen, d)
		if err != nil {
			log.Fatal(err)
		}
		bills[i] = res.HourlyBills()
		totals[i] = res.TotalBillUSD()
	}
	for h := 0; h < 24; h++ {
		fmt.Printf("%4d   %12.0f   %14.0f  %14.0f\n", h, bills[0][h], bills[1][h], bills[2][h])
	}
	fmt.Printf("\nday totals: $%.0f vs $%.0f vs $%.0f\n", totals[0], totals[1], totals[2])
	fmt.Printf("LMP-aware savings: %.1f%% vs Avg, %.1f%% vs Low\n",
		100*(totals[1]-totals[0])/totals[1], 100*(totals[2]-totals[0])/totals[2])
}

// Quickstart: make one hourly bill-capping decision for the paper's
// three-data-center system and compare the plan against the realized bill.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"billcap"
)

func main() {
	// The paper's three sites (§VI-A) and the PJM-derived step policies.
	sites := billcap.PaperSites()
	policies := billcap.PaperPolicies(billcap.Policy1)
	sys, err := billcap.NewSystem(sites, policies, billcap.SystemOptions{})
	if err != nil {
		log.Fatal(err)
	}

	// One invocation period: 1.5e12 requests arrive this hour, 80% of them
	// from paying (premium) customers; the ISO reports each region's
	// background demand; the budgeter allows $900 for the hour.
	in := billcap.HourInput{
		TotalLambda:   1.5e12,
		PremiumLambda: 1.2e12,
		DemandMW:      []float64{170, 190, 150},
		BudgetUSD:     900,
	}
	dec, err := sys.DecideHour(in)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("decision branch: %v\n", dec.Step)
	fmt.Printf("served: %.3g req/h (premium %.3g, ordinary %.3g)\n",
		dec.Served, dec.ServedPremium, dec.ServedOrdinary)
	for i, a := range dec.Sites {
		fmt.Printf("  %-6s λ=%.3g req/h  p=%.1f MW  @ %.2f $/MWh  → $%.0f\n",
			sites[i].Name, a.Lambda, a.PowerMW, a.PriceUSDPerMWh, a.CostUSD)
	}
	fmt.Printf("predicted hourly cost: $%.0f (budget $%.0f)\n", dec.PredictedCostUSD, in.BudgetUSD)

	// What the market actually bills for this allocation (discrete servers,
	// true step prices).
	real, err := sys.Realize(dec.Lambdas(), in.DemandMW)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("realized hourly bill:  $%.0f (%d sites over their power cap)\n",
		real.BillUSD(), real.CapViolations)
}

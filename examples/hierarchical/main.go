// Hierarchical capping: the paper's §IX scalability path as a program. A
// twelve-site fleet is split into four groups; a coordinator samples each
// group's cost curve, splits the hour's load by marginal cost and the
// budget by cost share, and the groups cap themselves independently.
//
//	go run ./examples/hierarchical
package main

import (
	"fmt"
	"log"
	"math"
	"time"

	"billcap"
)

func main() {
	const sites = 12
	dcs := billcap.SyntheticSites(sites)
	pols := billcap.SyntheticPolicies(sites)

	coord, err := billcap.NewCoordinator(dcs, pols, []int{3, 3, 3, 3})
	if err != nil {
		log.Fatal(err)
	}
	central, err := billcap.NewSystem(dcs, pols, billcap.SystemOptions{})
	if err != nil {
		log.Fatal(err)
	}

	demand := make([]float64, sites)
	for i := range demand {
		demand[i] = 150 + 13*float64(i%7)
	}
	lam := 0.65 * coord.Capacity()
	in := billcap.HourInput{
		TotalLambda:   lam,
		PremiumLambda: 0.8 * lam,
		DemandMW:      demand,
		BudgetUSD:     math.Inf(1),
	}

	start := time.Now()
	cd, err := central.DecideHour(in)
	if err != nil {
		log.Fatal(err)
	}
	centralTime := time.Since(start)

	start = time.Now()
	hd, err := coord.DecideHour(in)
	if err != nil {
		log.Fatal(err)
	}
	hierTime := time.Since(start)

	fmt.Printf("%d sites, %.3g req/h arriving\n\n", sites, lam)
	fmt.Printf("centralized:  cost $%.0f/h in %v (one %d-site MILP)\n",
		cd.PredictedCostUSD, centralTime.Round(time.Millisecond), sites)
	fmt.Printf("hierarchical: cost $%.0f/h in %v (%d independent 3-site cappers)\n",
		hd.PredictedCostUSD, hierTime.Round(time.Millisecond), len(coord.Groups))
	fmt.Printf("optimality gap: %.2f%%\n\n",
		100*(hd.PredictedCostUSD-cd.PredictedCostUSD)/cd.PredictedCostUSD)

	fmt.Println("coordinator's split:")
	for gi, g := range coord.Groups {
		fmt.Printf("  %s (sites %v): λ=%.3g req/h\n", g.Name, g.SiteIdx, hd.GroupLambda[gi])
	}
	fmt.Println("\ngroup MILPs are independent — on a real deployment they run in parallel,")
	fmt.Println("so decision latency stays flat as the fleet grows group by group.")
}

// Heterogeneous fleets: the paper's §IX future-work scenario. Each site
// mixes three server generations (a partially upgraded fleet); the
// optimizer dispatches per class — efficient hardware first — while still
// steering regional prices. Compares against a capacity-proportional
// dispatch billed by the same market.
//
//	go run ./examples/heterogeneous
package main

import (
	"fmt"
	"log"

	"billcap"
)

func main() {
	sites := billcap.PaperHeteroSites()
	net, err := billcap.NewHeteroNetwork(sites, billcap.PaperPolicies(billcap.Policy1))
	if err != nil {
		log.Fatal(err)
	}
	demand := []float64{170, 190, 150}
	capacity := net.MaxThroughput()
	fmt.Printf("fleet capacity: %.3g req/h across %d heterogeneous sites\n\n", capacity, len(sites))

	lam := 0.6 * capacity
	alloc, err := net.MinimizeCost(lam, demand)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dispatching %.3g req/h (60%% of capacity):\n", lam)
	for i, s := range sites {
		fmt.Printf("  %-6s λ=%.3g req/h, planned %.1f MW\n", s.Name, alloc.LambdaBySite[i], alloc.PowerMW[i])
		plans, err := s.Plans()
		if err != nil {
			log.Fatal(err)
		}
		for c, pl := range plans {
			if alloc.LambdaByClass[i][c] > 0 {
				fmt.Printf("          %-13s %.3g req/h (%.1f%% of the class)\n",
					pl.Class.Name, alloc.LambdaByClass[i][c],
					100*alloc.LambdaByClass[i][c]/pl.MaxLambda)
			}
		}
	}

	real, err := net.Realize(alloc.LambdaBySite, demand)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nclass-aware plan: predicted $%.0f/h, billed $%.0f/h (%d servers active)\n",
		alloc.CostUSD, real.BillUSD(), real.Servers)

	// The naive alternative: split by site capacity, ignore classes' order.
	naive := make([]float64, len(sites))
	for i, s := range sites {
		siteMax, err := s.MaxLambda()
		if err != nil {
			log.Fatal(err)
		}
		naive[i] = lam * siteMax / capacity
	}
	nv, err := net.Realize(naive, demand)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("proportional plan: billed $%.0f/h → class-aware saves %.1f%%\n",
		nv.BillUSD(), 100*(nv.BillUSD()-real.BillUSD())/nv.BillUSD())
}

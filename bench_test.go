// Benchmarks regenerating every table and figure of the paper's evaluation
// (§VII). Each benchmark runs the corresponding experiment end to end — the
// same code path cmd/capsim prints — so `go test -bench=.` both times the
// reproduction and re-derives its numbers. Benchmarks default to a one-week
// month (set -benchtime=1x for single full runs of the 4-week experiments
// via the *Full variants).
package billcap_test

import (
	"math"
	"testing"

	"billcap"
	"billcap/internal/core"
	"billcap/internal/experiments"
	"billcap/internal/sim"
)

// benchWeeks keeps the per-iteration work of the figure benchmarks at one
// week; the *Full variants cover the whole month.
const benchWeeks = 1

func benchExperiment(b *testing.B, f func(int) (experiments.Result, error), weeks int) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		res, err := f(weeks)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Table.Rows) == 0 {
			b.Fatal("empty result")
		}
	}
}

// BenchmarkFig1PricingPolicies regenerates Figure 1 (the step policies).
func BenchmarkFig1PricingPolicies(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if r := experiments.Fig1(); len(r.Table.Rows) != 15 {
			b.Fatalf("rows = %d", len(r.Table.Rows))
		}
	}
}

// BenchmarkFig1Derived regenerates Figure 1 from the five-bus DC-OPF sweep.
func BenchmarkFig1Derived(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig1Derived()
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Table.Rows) < 6 {
			b.Fatalf("rows = %d", len(res.Table.Rows))
		}
	}
}

// BenchmarkFig3HourlyCost regenerates Figure 3 (hourly cost, Cost Capping
// vs Min-Only) on a one-week month.
func BenchmarkFig3HourlyCost(b *testing.B) { benchExperiment(b, experiments.Fig3, benchWeeks) }

// BenchmarkFig3HourlyCostFull is Figure 3 over the full four-week month.
func BenchmarkFig3HourlyCostFull(b *testing.B) { benchExperiment(b, experiments.Fig3, 4) }

// BenchmarkFig4PolicySweep regenerates Figure 4 (monthly bill under
// Policies 0–3).
func BenchmarkFig4PolicySweep(b *testing.B) { benchExperiment(b, experiments.Fig4, benchWeeks) }

// BenchmarkFig5Fig6AbundantBudget regenerates Figures 5+6 (abundant
// budget).
func BenchmarkFig5Fig6AbundantBudget(b *testing.B) {
	benchExperiment(b, experiments.Fig56, benchWeeks)
}

// BenchmarkFig7Fig8TightBudget regenerates Figures 7+8 (tight budget).
func BenchmarkFig7Fig8TightBudget(b *testing.B) { benchExperiment(b, experiments.Fig78, benchWeeks) }

// BenchmarkFig9BudgetComparison regenerates Figure 9 (cost & throughput of
// all strategies under the tight budget).
func BenchmarkFig9BudgetComparison(b *testing.B) { benchExperiment(b, experiments.Fig9, benchWeeks) }

// BenchmarkFig10BudgetSweep regenerates Figure 10 (throughput vs budget).
func BenchmarkFig10BudgetSweep(b *testing.B) { benchExperiment(b, experiments.Fig10, benchWeeks) }

// BenchmarkAblationPowerModel regenerates the A1/A2 ablation table.
func BenchmarkAblationPowerModel(b *testing.B) {
	benchExperiment(b, experiments.Ablation, benchWeeks)
}

// BenchmarkRobustnessSweep regenerates the prediction-error robustness
// table (paper §IX future work).
func BenchmarkRobustnessSweep(b *testing.B) {
	benchExperiment(b, experiments.Robustness, benchWeeks)
}

// BenchmarkExtensionHetero regenerates the heterogeneous-fleet extension
// table (paper §IX future work).
func BenchmarkExtensionHetero(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Hetero()
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Table.Rows) == 0 {
			b.Fatal("empty result")
		}
	}
}

// BenchmarkExtensionBattery regenerates the stored-energy table (paper
// §VIII refs [37][38]).
func BenchmarkExtensionBattery(b *testing.B) {
	benchExperiment(b, experiments.Battery, benchWeeks)
}

// BenchmarkExtensionBaselines regenerates the widened baseline-family table
// (adds the TOU two-price strategy of refs [32]-[34]).
func BenchmarkExtensionBaselines(b *testing.B) {
	benchExperiment(b, experiments.Baselines, benchWeeks)
}

// BenchmarkSolver13DC5Level times one cost-minimization MILP at the paper's
// §IV-C scalability point: 13 data centers × 5 price levels (the paper
// reports ≤ ~2 ms with lp_solve; see EXPERIMENTS.md for our from-scratch
// solver's numbers).
func BenchmarkSolver13DC5Level(b *testing.B) {
	benchSolveN(b, 13)
}

// BenchmarkSolver3DC5Level times the paper's base system size.
func BenchmarkSolver3DC5Level(b *testing.B) {
	benchSolveN(b, 3)
}

func benchSolveN(b *testing.B, n int) {
	b.Helper()
	sys, in := solverFixture(b, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var st core.SolverStats
		if _, err := sys.MinimizeCost(in, in.TotalLambda, &st); err != nil {
			b.Fatal(err)
		}
	}
}

func solverFixture(b *testing.B, n int) (*billcap.System, billcap.HourInput) {
	b.Helper()
	sys, err := billcap.NewSystem(billcap.SyntheticSites(n), billcap.SyntheticPolicies(n), billcap.SystemOptions{})
	if err != nil {
		b.Fatal(err)
	}
	demand := make([]float64, n)
	for i := range demand {
		demand[i] = 150 + 13*float64(i%7)
	}
	in := billcap.HourInput{
		TotalLambda: 0.6 * sys.MaxThroughput(),
		DemandMW:    demand,
		BudgetUSD:   math.Inf(1),
	}
	return sys, in
}

// BenchmarkDecideHourTight times one full two-step capping decision under a
// binding budget (the worst case: both MILPs run).
func BenchmarkDecideHourTight(b *testing.B) {
	scen, err := billcap.PaperScenario(billcap.Policy1, billcap.TightBudget())
	if err != nil {
		b.Fatal(err)
	}
	sys, err := billcap.NewSystem(scen.DCs, scen.Policies, billcap.SystemOptions{})
	if err != nil {
		b.Fatal(err)
	}
	in := billcap.HourInput{
		TotalLambda:   scen.Month.At(18), // an evening peak hour
		PremiumLambda: 0.8 * scen.Month.At(18),
		DemandMW:      []float64{scen.Demand[0].At(18), scen.Demand[1].At(18), scen.Demand[2].At(18)},
		BudgetUSD:     500, // forces step 2
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.DecideHour(in); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulatedWeek times a full week of simulated control (168
// decisions + realizations + budget accounting).
func BenchmarkSimulatedWeek(b *testing.B) {
	scen, err := sim.ShortScenario(billcap.Policy1, billcap.TightBudget()/4, 1)
	if err != nil {
		b.Fatal(err)
	}
	cc, err := billcap.NewCostCapping(scen.DCs, scen.Policies)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := billcap.Run(scen, cc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFlashCrowd regenerates the §I flash-crowd motivation table.
func BenchmarkFlashCrowd(b *testing.B) {
	benchExperiment(b, experiments.FlashCrowd, benchWeeks)
}

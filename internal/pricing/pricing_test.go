package pricing

import (
	"math"
	"testing"
)

func near(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestPaperPolicy1DC1(t *testing.T) {
	ps := PaperPolicies(Policy1)
	if len(ps) != 3 {
		t.Fatalf("len = %d, want 3", len(ps))
	}
	dc1 := ps[0]
	if dc1.Location != "B" {
		t.Errorf("DC1 location = %q, want B", dc1.Location)
	}
	// The paper's quoted rates and the 200 MW second step.
	cases := []struct{ load, want float64 }{
		{100, 10.00}, {210, 13.90}, {310, 15.00}, {500, 22.00}, {700, 24.00},
	}
	for _, c := range cases {
		if got := dc1.Price(c.load); !near(got, c.want, 1e-12) {
			t.Errorf("DC1 price(%v) = %v, want %v", c.load, got, c.want)
		}
	}
}

func TestPolicy0IsFlatMean(t *testing.T) {
	p0 := PaperPolicies(Policy0)
	p1 := PaperPolicies(Policy1)
	for i := range p0 {
		mean := p1[i].Fn.Mean()
		for _, load := range []float64{0, 250, 900} {
			if got := p0[i].Price(load); !near(got, mean, 1e-12) {
				t.Errorf("site %d Policy0 price(%v) = %v, want flat %v", i, load, got, mean)
			}
		}
	}
	// Paper: DC1 average price is 16.98.
	if got := p0[0].Price(0); !near(got, 16.98, 1e-10) {
		t.Errorf("DC1 Policy0 price = %v, want 16.98", got)
	}
}

func TestPolicy2And3MatchPaperRates(t *testing.T) {
	p2 := PaperPolicies(Policy2)[0].Fn.Rates()
	p3 := PaperPolicies(Policy3)[0].Fn.Rates()
	want2 := []float64{10.00, 17.80, 20.00, 34.00, 38.00}
	want3 := []float64{10.00, 21.70, 25.00, 46.00, 52.00}
	for k := range want2 {
		if !near(p2[k], want2[k], 1e-10) {
			t.Errorf("Policy2 rate[%d] = %v, want %v", k, p2[k], want2[k])
		}
		if !near(p3[k], want3[k], 1e-10) {
			t.Errorf("Policy3 rate[%d] = %v, want %v", k, p3[k], want3[k])
		}
	}
}

func TestPoliciesAreNonDecreasingInLoad(t *testing.T) {
	for _, v := range []PolicyVariant{Policy0, Policy1, Policy2, Policy3} {
		for _, p := range PaperPolicies(v) {
			prev := -1.0
			for load := 0.0; load < 1000; load += 5 {
				cur := p.Price(load)
				if cur < prev-1e-12 {
					t.Errorf("%s: price decreases at load %v (%v -> %v)", p.Name, load, prev, cur)
				}
				prev = cur
			}
		}
	}
}

func TestFlattenAvgLow(t *testing.T) {
	p1 := PaperPolicies(Policy1)[0]
	avg := FlattenAvg(p1)
	low := FlattenLow(p1)
	if got := avg.Price(500); !near(got, 16.98, 1e-10) {
		t.Errorf("FlattenAvg price = %v, want 16.98", got)
	}
	if got := low.Price(500); !near(got, 10.00, 1e-10) {
		t.Errorf("FlattenLow price = %v, want 10.00", got)
	}
}

func TestSynthetic(t *testing.T) {
	ps := Synthetic(13)
	if len(ps) != 13 {
		t.Fatalf("len = %d, want 13", len(ps))
	}
	seen := map[string]bool{}
	for _, p := range ps {
		if p.Fn.NumSegments() != 5 {
			t.Errorf("%s has %d segments, want 5", p.Name, p.Fn.NumSegments())
		}
		if seen[p.Name] {
			t.Errorf("duplicate policy name %s", p.Name)
		}
		seen[p.Name] = true
	}
	// Sites one cycle apart must differ in rates.
	if near(ps[0].Price(100), ps[3].Price(100), 1e-12) {
		t.Errorf("synthetic sites 0 and 3 have identical base rates")
	}
}

func TestVariantString(t *testing.T) {
	want := map[PolicyVariant]string{
		Policy0: "Policy0", Policy1: "Policy1", Policy2: "Policy2",
		Policy3: "Policy3", PolicyVariant(9): "PolicyVariant(9)",
	}
	for v, w := range want {
		if v.String() != w {
			t.Errorf("String() = %q, want %q", v.String(), w)
		}
	}
}

// Tariff engine: the bill as the *sum of tariff components* rather than the
// paper's energy-only LMP charge. Three components compose (ROADMAP item 1,
// after Xu & Li's demand-charge model and Figini & Paolone's two-settlement
// market participation):
//
//   - Energy: the existing locational step policies (price-maker aware).
//   - Demand charge: peak-MW × $/MW-month over the billing period, tracked
//     as a monotone peak-so-far ledger so each hour can be billed
//     *incrementally* — the hour pays only for the MW by which it raises the
//     billing-period peak, and the increments telescope to rate × final
//     peak. That incremental form is what keeps hour decisions separable in
//     the MILP.
//   - Two-settlement: a day-ahead commitment C settled at the DA price (the
//     step policy evaluated at the committed load) plus the real-time
//     deviation (grid − C) settled at an exogenous RT price. Rearranged as
//     RT·grid + (DA − RT)·C, the second term is a sunk position independent
//     of the hour's dispatch — the optimizer only sees the linear RT·grid.
package pricing

import (
	"fmt"
	"math"
)

// Bill is one billing interval's cost, decomposed by tariff component.
type Bill struct {
	// EnergyUSD is the metered energy charge: step price × grid draw under
	// spot settlement, RT price × grid draw under two-settlement.
	EnergyUSD float64
	// DemandUSD is the billing-period demand charge accrued this interval:
	// the demand rate × the MW by which the interval raised the period peak.
	DemandUSD float64
	// SettlementUSD is the two-settlement position (DA − RT)·C, summed over
	// sites. It can be negative (the commitment was cheaper than real time)
	// and is zero under spot settlement.
	SettlementUSD float64
}

// TotalUSD sums the components.
func (b Bill) TotalUSD() float64 { return b.EnergyUSD + b.DemandUSD + b.SettlementUSD }

// Add returns the componentwise sum.
func (b Bill) Add(o Bill) Bill {
	return Bill{
		EnergyUSD:     b.EnergyUSD + o.EnergyUSD,
		DemandUSD:     b.DemandUSD + o.DemandUSD,
		SettlementUSD: b.SettlementUSD + o.SettlementUSD,
	}
}

// TwoSettlement holds a billing period's day-ahead commitments and real-time
// prices, per site per hour. Index arithmetic is zero-safe: hours or sites
// beyond the stored series settle as pure spot (commit 0 at the energy
// policy's price).
type TwoSettlement struct {
	// CommitMW[site][hour] is the day-ahead committed grid draw in MW.
	CommitMW [][]float64
	// RTUSDPerMWh[site][hour] is the real-time price deviations settle at.
	RTUSDPerMWh [][]float64
}

// Hour returns site i's commitment and RT price for the hour, and whether a
// real-time price exists for it (false = settle that site-hour as spot).
func (ts *TwoSettlement) Hour(site, hour int) (commitMW, rtUSDPerMWh float64, ok bool) {
	if ts == nil || site < 0 || hour < 0 || site >= len(ts.RTUSDPerMWh) || hour >= len(ts.RTUSDPerMWh[site]) {
		return 0, 0, false
	}
	rtUSDPerMWh = ts.RTUSDPerMWh[site][hour]
	if site < len(ts.CommitMW) && hour < len(ts.CommitMW[site]) {
		commitMW = ts.CommitMW[site][hour]
	}
	return commitMW, rtUSDPerMWh, true
}

// Validate reports the first malformed series entry.
func (ts *TwoSettlement) Validate() error {
	if ts == nil {
		return nil
	}
	for i, row := range ts.RTUSDPerMWh {
		for h, v := range row {
			if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
				return fmt.Errorf("pricing: two-settlement RT price %v at site %d hour %d", v, i, h)
			}
		}
	}
	for i, row := range ts.CommitMW {
		for h, v := range row {
			if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
				return fmt.Errorf("pricing: two-settlement commitment %v MW at site %d hour %d", v, i, h)
			}
		}
	}
	return nil
}

// Tariff composes a fleet's bill from up to three components. The zero value
// of the optional components degrades gracefully to the paper's energy-only
// bill: no demand rate, no settlement.
type Tariff struct {
	// Energy is the per-site locational pricing policy (same order as the
	// fleet's sites).
	Energy []Policy
	// DemandChargeUSDPerMWMonth is the billing-period demand charge rate
	// applied to each site's peak grid draw; 0 disables the component.
	DemandChargeUSDPerMWMonth float64
	// Settlement switches energy billing from spot to two-settlement; nil
	// keeps spot.
	Settlement *TwoSettlement
}

// Validate reports the first problem with the tariff.
func (t Tariff) Validate() error {
	if len(t.Energy) == 0 {
		return fmt.Errorf("pricing: tariff has no energy policies")
	}
	if r := t.DemandChargeUSDPerMWMonth; math.IsNaN(r) || math.IsInf(r, 0) || r < 0 {
		return fmt.Errorf("pricing: demand charge rate %v", r)
	}
	return t.Settlement.Validate()
}

// HourBill prices one hour of realized per-site grid draws against the
// tariff, ratcheting the peak ledger (nil ledger or zero demand rate skips
// the demand component). gridMW and demandMW are indexed like Energy.
func (t Tariff) HourBill(hour int, gridMW, demandMW []float64, ledger *PeakLedger) (Bill, error) {
	if len(gridMW) != len(t.Energy) {
		return Bill{}, fmt.Errorf("pricing: %d grid draws for %d energy policies", len(gridMW), len(t.Energy))
	}
	var b Bill
	for i, g := range gridMW {
		if math.IsNaN(g) || math.IsInf(g, 0) || g < 0 {
			return Bill{}, fmt.Errorf("pricing: grid draw %v MW at site %d", g, i)
		}
		d := 0.0
		if i < len(demandMW) {
			d = demandMW[i]
		}
		if c, rt, ok := t.Settlement.Hour(i, hour); ok {
			// DA·C + RT·(grid − C), split as RT·grid (energy) + (DA−RT)·C
			// (settlement position).
			da := t.Energy[i].Price(d + c)
			b.EnergyUSD += rt * g
			b.SettlementUSD += (da - rt) * c
		} else {
			b.EnergyUSD += t.Energy[i].Price(d+g) * g
		}
	}
	if t.DemandChargeUSDPerMWMonth > 0 && ledger != nil {
		b.DemandUSD = t.DemandChargeUSDPerMWMonth * ledger.Observe(gridMW)
	}
	return b, nil
}

// PeakLedger tracks each site's peak-so-far grid draw across a billing
// period. It only ratchets upward; Observe returns the total MW of ratchet so
// the caller can bill the increment. Persisted alongside the budget ledger so
// a mid-month restart resumes the demand charge bit-for-bit.
type PeakLedger struct {
	peaks []float64
}

// NewPeakLedger returns a fresh ledger for n sites (all peaks zero).
func NewPeakLedger(n int) *PeakLedger {
	return &PeakLedger{peaks: make([]float64, n)}
}

// NumSites returns the ledger's site count.
func (l *PeakLedger) NumSites() int { return len(l.peaks) }

// Peak returns site i's peak-so-far in MW (0 for out-of-range sites).
func (l *PeakLedger) Peak(i int) float64 {
	if i < 0 || i >= len(l.peaks) {
		return 0
	}
	return l.peaks[i]
}

// Peaks returns a copy of the per-site peaks.
func (l *PeakLedger) Peaks() []float64 {
	return append([]float64(nil), l.peaks...)
}

// Observe ratchets the ledger with one hour's grid draws and returns the
// total MW by which peaks rose. Non-finite or negative draws never move a
// peak (a corrupt hour must not inflate the month's demand charge).
func (l *PeakLedger) Observe(gridMW []float64) (raisedMW float64) {
	for i, g := range gridMW {
		if i >= len(l.peaks) {
			break
		}
		if math.IsNaN(g) || math.IsInf(g, 0) || g <= l.peaks[i] {
			continue
		}
		raisedMW += g - l.peaks[i]
		l.peaks[i] = g
	}
	return raisedMW
}

// Reset zeroes every peak (a new billing period).
func (l *PeakLedger) Reset() {
	for i := range l.peaks {
		l.peaks[i] = 0
	}
}

// PeakState is the ledger's serializable snapshot.
type PeakState struct {
	PeaksMW []float64 `json:"peaksMW"`
}

// Snapshot captures the ledger for persistence.
func (l *PeakLedger) Snapshot() PeakState {
	return PeakState{PeaksMW: l.Peaks()}
}

// Restore replaces the ledger's contents with a snapshot, validating it the
// way budget.Budgeter.Restore validates its state: a corrupt snapshot is an
// error, not a silent half-restore.
func (l *PeakLedger) Restore(st PeakState) error {
	for i, p := range st.PeaksMW {
		if math.IsNaN(p) || math.IsInf(p, 0) || p < 0 {
			return fmt.Errorf("pricing: peak snapshot has peak %v MW at site %d", p, i)
		}
	}
	l.peaks = append(l.peaks[:0], st.PeaksMW...)
	return nil
}

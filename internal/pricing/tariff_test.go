package pricing

import (
	"math"
	"testing"
)

func paperPols(n int) []Policy {
	pols := make([]Policy, n)
	base := PaperPolicies(Policy1)
	for i := range pols {
		pols[i] = base[i%len(base)]
	}
	return pols
}

// TestPeakLedgerTelescopes pins the demand-charge algebra: the sum of the
// incremental ratchets over any draw sequence equals the final peaks, so
// billing the increments at rate r telescopes to r × monthly peak.
func TestPeakLedgerTelescopes(t *testing.T) {
	l := NewPeakLedger(3)
	seqs := [][]float64{
		{10, 20, 5},
		{8, 25, 5},   // site 1 ratchets
		{15, 10, 30}, // sites 0 and 2 ratchet
		{15, 25, 30}, // exact ties never ratchet
		{1, 1, 1},
	}
	total := 0.0
	for _, g := range seqs {
		total += l.Observe(g)
	}
	sum := 0.0
	for i := 0; i < l.NumSites(); i++ {
		sum += l.Peak(i)
	}
	if math.Abs(total-sum) > 1e-12 {
		t.Fatalf("ratchet increments sum to %v, peaks sum to %v", total, sum)
	}
	want := []float64{15, 25, 30}
	for i, w := range want {
		if l.Peak(i) != w {
			t.Errorf("peak[%d] = %v, want %v", i, l.Peak(i), w)
		}
	}
}

// TestPeakLedgerRejectsCorruptDraws pins the guard: NaN, Inf and negative
// draws never move a peak (a corrupt hour must not inflate the month's
// demand charge).
func TestPeakLedgerRejectsCorruptDraws(t *testing.T) {
	l := NewPeakLedger(2)
	l.Observe([]float64{10, 10})
	if raised := l.Observe([]float64{math.NaN(), math.Inf(1)}); raised != 0 {
		t.Errorf("corrupt draws raised the ledger by %v MW", raised)
	}
	if l.Peak(0) != 10 || l.Peak(1) != 10 {
		t.Errorf("peaks moved on corrupt draws: %v", l.Peaks())
	}
}

// TestPeakLedgerSnapshotRoundTrip pins persistence: snapshot → restore is
// exact, and a corrupt snapshot is an error, not a half-restore.
func TestPeakLedgerSnapshotRoundTrip(t *testing.T) {
	l := NewPeakLedger(3)
	l.Observe([]float64{12.5, 0, 99.25})
	st := l.Snapshot()

	fresh := NewPeakLedger(3)
	if err := fresh.Restore(st); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if fresh.Peak(i) != l.Peak(i) {
			t.Errorf("peak[%d] = %v, want %v", i, fresh.Peak(i), l.Peak(i))
		}
	}

	before := fresh.Peaks()
	if err := fresh.Restore(PeakState{PeaksMW: []float64{1, math.NaN(), 2}}); err == nil {
		t.Error("NaN peak snapshot accepted")
	}
	for i, p := range fresh.Peaks() {
		if p != before[i] {
			t.Errorf("failed restore mutated the ledger: %v", fresh.Peaks())
		}
	}
}

// TestTariffHourBillSpot pins the energy-only degradation: a zero-value
// tariff (no demand rate, no settlement) bills exactly the paper's
// step-policy energy charge.
func TestTariffHourBillSpot(t *testing.T) {
	pols := paperPols(3)
	tar := Tariff{Energy: pols}
	if err := tar.Validate(); err != nil {
		t.Fatal(err)
	}
	grid := []float64{50, 80, 20}
	demand := []float64{100, 120, 90}
	b, err := tar.HourBill(0, grid, demand, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := 0.0
	for i, g := range grid {
		want += pols[i].Price(demand[i]+g) * g
	}
	if b.DemandUSD != 0 || b.SettlementUSD != 0 {
		t.Errorf("energy-only bill has extras: %+v", b)
	}
	if math.Abs(b.EnergyUSD-want) > 1e-9 || math.Abs(b.TotalUSD()-want) > 1e-9 {
		t.Errorf("energy %v, want %v", b.EnergyUSD, want)
	}
}

// TestTariffHourBillTwoSettlement pins the settlement split: the hour pays
// RT × grid for its metered draw plus the sunk position (DA − RT) × commit,
// which together equal DA·C + RT·(grid − C).
func TestTariffHourBillTwoSettlement(t *testing.T) {
	pols := paperPols(3)
	commit := [][]float64{{120}, {150}, {90}}
	rt := [][]float64{{70}, {40}, {55}}
	tar := Tariff{Energy: pols, Settlement: &TwoSettlement{CommitMW: commit, RTUSDPerMWh: rt}}
	if err := tar.Validate(); err != nil {
		t.Fatal(err)
	}
	grid := []float64{100, 160, 90}
	demand := []float64{100, 120, 90}
	b, err := tar.HourBill(0, grid, demand, nil)
	if err != nil {
		t.Fatal(err)
	}
	wantEnergy, wantSettle, wantClassic := 0.0, 0.0, 0.0
	for i, g := range grid {
		da := pols[i].Price(demand[i] + commit[i][0])
		wantEnergy += rt[i][0] * g
		wantSettle += (da - rt[i][0]) * commit[i][0]
		wantClassic += da*commit[i][0] + rt[i][0]*(g-commit[i][0])
	}
	if math.Abs(b.EnergyUSD-wantEnergy) > 1e-9 || math.Abs(b.SettlementUSD-wantSettle) > 1e-9 {
		t.Errorf("bill %+v, want energy %v settlement %v", b, wantEnergy, wantSettle)
	}
	if math.Abs(b.TotalUSD()-wantClassic) > 1e-9 {
		t.Errorf("split total %v diverges from DA·C + RT·(g−C) = %v", b.TotalUSD(), wantClassic)
	}

	// Hours past the stored series settle as pure spot.
	b2, err := tar.HourBill(1, grid, demand, nil)
	if err != nil {
		t.Fatal(err)
	}
	if b2.SettlementUSD != 0 {
		t.Errorf("hour beyond the series still carries a position: %+v", b2)
	}
}

// TestTariffHourBillDemandCharge pins the incremental demand charge: each
// hour bills rate × ratchet, and the month's demand component telescopes to
// rate × final peaks.
func TestTariffHourBillDemandCharge(t *testing.T) {
	const rate = 1000.0
	pols := paperPols(2)
	tar := Tariff{Energy: pols, DemandChargeUSDPerMWMonth: rate}
	ledger := NewPeakLedger(2)
	demand := []float64{100, 120}

	var total Bill
	for _, grid := range [][]float64{{30, 50}, {40, 45}, {35, 60}} {
		b, err := tar.HourBill(0, grid, demand, ledger)
		if err != nil {
			t.Fatal(err)
		}
		total = total.Add(b)
	}
	wantDemand := rate * (40 + 60)
	if math.Abs(total.DemandUSD-wantDemand) > 1e-9 {
		t.Errorf("month demand charge %v, want rate × final peaks = %v", total.DemandUSD, wantDemand)
	}
}

// TestTariffValidateAndErrors pins input rejection.
func TestTariffValidateAndErrors(t *testing.T) {
	if err := (Tariff{}).Validate(); err == nil {
		t.Error("empty tariff accepted")
	}
	pols := paperPols(3)
	if err := (Tariff{Energy: pols, DemandChargeUSDPerMWMonth: math.NaN()}).Validate(); err == nil {
		t.Error("NaN demand rate accepted")
	}
	if err := (Tariff{Energy: pols, Settlement: &TwoSettlement{RTUSDPerMWh: [][]float64{{-1}}}}).Validate(); err == nil {
		t.Error("negative RT price accepted")
	}
	tar := Tariff{Energy: pols}
	if _, err := tar.HourBill(0, []float64{1, 2}, nil, nil); err == nil {
		t.Error("grid/policy arity mismatch accepted")
	}
	if _, err := tar.HourBill(0, []float64{1, 2, math.NaN()}, nil, nil); err == nil {
		t.Error("NaN grid draw accepted")
	}
}

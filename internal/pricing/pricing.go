// Package pricing models locational marginal pricing (LMP) policies: the
// electricity price at a data center's location as a step function of the
// total regional load (data center draw + background consumer demand).
//
// The concrete numbers follow the paper (§II, §VII): policies derived from
// the PJM five-bus system for the three consumer locations B, C and D, five
// price levels each, with the documented Policy 1 rates for Data Center 1
// (10.00, 13.90, 15.00, 22.00, 24.00 $/MWh) and Policies 2/3 doubling and
// tripling every price increase above the 200 MW load level.
package pricing

import (
	"fmt"

	"billcap/internal/piecewise"
)

// Policy is the locational pricing policy of one power market region.
type Policy struct {
	// Name identifies the policy for reports, e.g. "B/policy1".
	Name string
	// Location is the consumer bus of the PJM five-bus system (B, C or D).
	Location string
	// Fn maps total regional load in MW to a price in $/MWh.
	Fn piecewise.StepFunction
}

// Price returns the $/MWh rate at the given total regional load in MW.
func (p Policy) Price(loadMW float64) float64 { return p.Fn.Eval(loadMW) }

// PolicyVariant selects one of the paper's pricing-policy families (Fig. 4).
type PolicyVariant int

// Pricing policy variants of the paper's Figure 4.
const (
	// Policy0 is the price-taker fiction: a flat price per location equal to
	// the mean of the Policy 1 steps, so data center load never moves it.
	Policy0 PolicyVariant = iota
	// Policy1 is the base locational policy derived from the PJM five-bus
	// system.
	Policy1
	// Policy2 doubles every price increase of Policy 1 above 200 MW.
	Policy2
	// Policy3 triples every price increase of Policy 1 above 200 MW.
	Policy3
)

// String names the variant as in the paper.
func (v PolicyVariant) String() string {
	switch v {
	case Policy0:
		return "Policy0"
	case Policy1:
		return "Policy1"
	case Policy2:
		return "Policy2"
	case Policy3:
		return "Policy3"
	}
	return fmt.Sprintf("PolicyVariant(%d)", int(v))
}

// scaleAboveMW is the load level above which Policies 2 and 3 amplify the
// price increases of Policy 1 (paper §VII-B: "when the load is higher than
// 200 MW").
const scaleAboveMW = 200

// base1 returns the Policy 1 step functions for the three locations.
//
// Location B (Data Center 1) uses the paper's quoted rates verbatim. The
// paper's figure for locations C and D is not tabulated numerically, so
// their rates are reconstructed with the same five-level structure and the
// qualitative ordering visible in Fig. 1 (distinct curves, steps in the
// 100–700 MW band); see DESIGN.md.
func base1() []Policy {
	return []Policy{
		{
			Name:     "B/policy1",
			Location: "B",
			Fn: piecewise.MustNew(
				[]float64{200, 300, 450, 600},
				[]float64{10.00, 13.90, 15.00, 22.00, 24.00}),
		},
		{
			// A mildly congested region: a low base price with shallow steps,
			// so its *average* undercuts D's while its *floor* does not —
			// which makes the Min-Only (Avg) and (Low) price-taker views rank
			// the sites differently, as the paper's two baselines do.
			Name:     "C/policy1",
			Location: "C",
			Fn: piecewise.MustNew(
				[]float64{220, 340, 480, 620},
				[]float64{8.50, 9.20, 10.50, 11.40, 12.20}),
		},
		{
			// A congestion trap: the lowest floor price in the system with
			// the steepest climb. A price taker anchored to the floor
			// (Min-Only (Low)) over-commits here — the behaviour that makes
			// it the worst baseline in the paper's Fig. 3.
			Name:     "D/policy1",
			Location: "D",
			Fn: piecewise.MustNew(
				[]float64{140, 230, 380, 520},
				[]float64{7.50, 14.00, 21.00, 26.00, 30.00}),
		},
	}
}

// PaperPolicies returns the three-location policy set for the requested
// variant, in data-center order (DC1 = B, DC2 = C, DC3 = D).
func PaperPolicies(v PolicyVariant) []Policy {
	base := base1()
	out := make([]Policy, len(base))
	for i, p := range base {
		switch v {
		case Policy0:
			out[i] = Policy{
				Name:     p.Location + "/policy0",
				Location: p.Location,
				Fn:       piecewise.Flat(p.Fn.Mean()),
			}
		case Policy1:
			out[i] = p
		case Policy2:
			out[i] = Policy{
				Name:     p.Location + "/policy2",
				Location: p.Location,
				Fn:       p.Fn.Scale(2, scaleAboveMW),
			}
		case Policy3:
			out[i] = Policy{
				Name:     p.Location + "/policy3",
				Location: p.Location,
				Fn:       p.Fn.Scale(3, scaleAboveMW),
			}
		default:
			panic(fmt.Sprintf("pricing: unknown variant %v", v))
		}
	}
	return out
}

// FlattenAvg returns the price-taker view a Min-Only (Avg) optimizer holds of
// the given policy: a flat price at the mean of the step rates.
func FlattenAvg(p Policy) Policy {
	return Policy{
		Name:     p.Name + "/avg",
		Location: p.Location,
		Fn:       piecewise.Flat(p.Fn.Mean()),
	}
}

// FlattenLow returns the Min-Only (Low) view: a flat price at the lowest
// step rate.
func FlattenLow(p Policy) Policy {
	return Policy{
		Name:     p.Name + "/low",
		Location: p.Location,
		Fn:       piecewise.Flat(p.Fn.Min()),
	}
}

// Synthetic returns n five-level policies for scalability experiments (the
// paper's solver-latency claim uses 13 data centers × 5 price levels). The
// policies cycle through the three paper locations with per-site offsets so
// that no two sites are identical.
func Synthetic(n int) []Policy {
	base := base1()
	out := make([]Policy, n)
	for i := 0; i < n; i++ {
		src := base[i%len(base)]
		shift := float64(i/len(base)) * 7 // MW shift per cycle
		bump := float64(i/len(base)) * 0.6
		thr := src.Fn.Thresholds()
		for j := range thr {
			thr[j] += shift
		}
		rates := src.Fn.Rates()
		for j := range rates {
			rates[j] += bump
		}
		out[i] = Policy{
			Name:     fmt.Sprintf("%s/synthetic%d", src.Location, i),
			Location: src.Location,
			Fn:       piecewise.MustNew(thr, rates),
		}
	}
	return out
}

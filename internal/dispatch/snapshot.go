package dispatch

import (
	"fmt"
	"math"
	"sync/atomic"
)

// Snapshot is the data plane's immutable routing view of one capper
// decision: the per-site weights of a Table and the admission rate of a
// Gate, compiled into structures every method can use without taking a
// lock. A control plane builds a fresh Snapshot per decision and swaps it
// whole behind an atomic.Pointer; request-path goroutines only ever read
// it, so routing stays wait-free while hour allocations change underneath.
//
// Table.Route is O(N) per request and mutates shared credit state, which
// would need a mutex at millions of routes per second. Snapshot instead
// precompiles the routing sequence: at build time it runs a Table for one
// full cycle (a power-of-two number of requests, patternLen) and stores the
// resulting site sequence — a Webster wheel. Routing request k is then one
// atomic fetch-add plus one array read, O(1) and goroutine-safe by
// construction:
//
//	site(k) = pattern[k mod len(pattern)]
//
// Within one cycle the wheel inherits the Table's low-discrepancy
// guarantee (every prefix of n requests puts each site within ±1.5 of
// n·weight, and SnapshotOf(t).RouteN(n) equals t.RouteN(n) exactly for
// n ≤ PatternLen). Each full cycle routes exactly the largest-remainder
// apportionment of patternLen requests, so across m wrapped cycles the
// worst per-site deviation grows only as m·|cycleCount − patternLen·w| < m
// — at the default 65536-entry wheel, under 0.002% of the routed volume.
//
// Admission is the same trick on the Gate: an atomic ordinal k admits the
// ordinary request iff ⌊rate·k⌋ > ⌊rate·(k−1)⌋, the deterministic
// largest-remainder pacing of Gate.Admit without its mutable credit.
type Snapshot struct {
	weights      []float64
	ordinaryRate float64
	hour         int
	version      uint64

	pattern  []uint16
	mask     uint64
	perCycle []int64 // exact per-site counts of one full pattern cycle

	cursor   atomic.Uint64 // next routing ordinal
	admits   atomic.Uint64 // ordinary admission ordinal
	arrivals atomic.Uint64 // requests observed (admitted or not), drift's input

	shards []countShard // routed-request tallies, sharded by ordinal
}

// countShard is one stripe of the per-site routed counters. Consecutive
// routing ordinals land on consecutive shards, so concurrent goroutines —
// which by construction hold distinct ordinals — increment distinct cache
// lines instead of contending on one hot counter per site.
type countShard struct {
	counts []atomic.Int64
}

const (
	minPatternLen = 1 << 12
	maxPatternLen = 1 << 16
	// patternFill is the target requests-per-site within one cycle; larger
	// fills shrink the per-cycle apportionment error relative to volume.
	patternFill = 64
	// countShardCount stripes the routed counters (power of two).
	countShardCount = 64
)

// patternLen picks the wheel size for n sites: the smallest power of two
// giving every site ≈patternFill slots per cycle, clamped to
// [minPatternLen, maxPatternLen].
func patternLen(n int) int {
	l := minPatternLen
	for l < n*patternFill && l < maxPatternLen {
		l <<= 1
	}
	return l
}

// NewSnapshot compiles one decision into an immutable routing snapshot:
// lambdas are the decision's per-site loads (at least one positive), the
// gate pair is the decision's served vs arrived ordinary traffic (see
// NewGate), hour is the decision's hour index, and version is the control
// plane's swap counter, carried so routed responses can say which table
// answered.
func NewSnapshot(lambdas []float64, servedOrdinary, arrivedOrdinary float64, hour int, version uint64) (*Snapshot, error) {
	if len(lambdas) > math.MaxUint16 {
		return nil, fmt.Errorf("dispatch: %d sites exceed the %d-site snapshot limit", len(lambdas), math.MaxUint16)
	}
	tbl, err := NewTable(lambdas)
	if err != nil {
		return nil, err
	}
	gate, err := NewGate(servedOrdinary, arrivedOrdinary)
	if err != nil {
		return nil, err
	}
	n := len(lambdas)
	l := patternLen(n)
	s := &Snapshot{
		weights:      tbl.Weights(),
		ordinaryRate: gate.OrdinaryRate(),
		hour:         hour,
		version:      version,
		pattern:      make([]uint16, l),
		mask:         uint64(l - 1),
		perCycle:     make([]int64, n),
		shards:       make([]countShard, countShardCount),
	}
	for k := range s.pattern {
		site := tbl.Route()
		s.pattern[k] = uint16(site)
		s.perCycle[site]++
	}
	// Pad each stripe to a cache line so neighboring shards never share one.
	padded := (n + 7) &^ 7
	for i := range s.shards {
		s.shards[i].counts = make([]atomic.Int64, padded)
	}
	return s, nil
}

// SnapshotOf compiles an existing decision's table and gate (both may have
// routed already; the snapshot starts from their configured weights and
// rate, not their credit state).
func SnapshotOf(t *Table, g *Gate, hour int, version uint64) (*Snapshot, error) {
	lambdas := t.Weights()
	return NewSnapshot(lambdas, g.OrdinaryRate(), 1, hour, version)
}

// Route assigns the next request and returns its site index. Wait-free: one
// fetch-add, one array read, one striped counter increment.
func (s *Snapshot) Route() int {
	k := s.cursor.Add(1) - 1
	site := int(s.pattern[k&s.mask])
	s.shards[k&(countShardCount-1)].counts[site].Add(1)
	return site
}

// RouteBatch assigns n requests with a single fetch-add and returns the
// per-site counts. Full wheel cycles are counted in closed form; only the
// partial cycle (min(n, PatternLen) entries) is walked.
func (s *Snapshot) RouteBatch(n int) []int64 {
	counts := make([]int64, len(s.weights))
	if n <= 0 {
		return counts
	}
	un := uint64(n)
	k0 := s.cursor.Add(un) - un
	l := uint64(len(s.pattern))
	if m := un / l; m > 0 {
		for i := range counts {
			counts[i] += int64(m) * s.perCycle[i]
		}
		un -= m * l
	}
	for j := uint64(0); j < un; j++ {
		counts[s.pattern[(k0+j)&s.mask]]++
	}
	shard := &s.shards[k0&(countShardCount-1)]
	for i, c := range counts {
		if c != 0 {
			shard.counts[i].Add(c)
		}
	}
	return counts
}

// RouteN assigns n requests one by one and returns the per-site counts —
// the Table-compatible form used by equivalence tests.
func (s *Snapshot) RouteN(n int) []int {
	counts := make([]int, len(s.weights))
	for k := 0; k < n; k++ {
		counts[s.Route()]++
	}
	return counts
}

// Admit decides one request. Premium always passes; ordinary requests are
// paced at the snapshot's admission rate by ordinal arithmetic — the
// largest-remainder spacing of Gate.Admit without its mutable credit.
func (s *Snapshot) Admit(c Class) bool {
	if c == Premium {
		return true
	}
	k := s.admits.Add(1)
	r := s.ordinaryRate
	return math.Floor(r*float64(k)) > math.Floor(r*float64(k-1))
}

// AdmitBatch decides n ordinary requests with a single fetch-add and
// returns how many were admitted (premium requests need no gate).
func (s *Snapshot) AdmitBatch(n int) int {
	if n <= 0 {
		return 0
	}
	k := s.admits.Add(uint64(n))
	r := s.ordinaryRate
	return int(math.Floor(r*float64(k)) - math.Floor(r*float64(k-uint64(n))))
}

// NoteArrivals records n observed requests (whatever their admission fate)
// and returns the snapshot's running arrival total — the drift detector's
// observed-per-hour input, reset naturally by every table swap.
func (s *Snapshot) NoteArrivals(n int) uint64 {
	return s.arrivals.Add(uint64(n))
}

// Arrivals returns the requests observed since this snapshot was installed.
func (s *Snapshot) Arrivals() uint64 { return s.arrivals.Load() }

// Routed returns the number of requests routed through this snapshot.
func (s *Snapshot) Routed() uint64 { return s.cursor.Load() }

// SiteCounts sums the striped per-site routed counters. Concurrent callers
// see a consistent lower bound (a route increments its stripe just after
// taking its ordinal); once routers quiesce the counts sum to Routed.
func (s *Snapshot) SiteCounts() []int64 {
	out := make([]int64, len(s.weights))
	for i := range s.shards {
		for j := range out {
			out[j] += s.shards[i].counts[j].Load()
		}
	}
	return out
}

// DroppedOrdinary returns how many ordinary requests the pacing gate has
// rejected so far.
func (s *Snapshot) DroppedOrdinary() int64 {
	k := s.admits.Load()
	return int64(k) - int64(math.Floor(s.ordinaryRate*float64(k)))
}

// Weights returns the routing fractions (summing to 1).
func (s *Snapshot) Weights() []float64 { return append([]float64(nil), s.weights...) }

// OrdinaryRate returns the admitted fraction of ordinary traffic.
func (s *Snapshot) OrdinaryRate() float64 { return s.ordinaryRate }

// Hour returns the decision hour the snapshot was compiled from.
func (s *Snapshot) Hour() int { return s.hour }

// Version returns the control plane's swap counter for this snapshot.
func (s *Snapshot) Version() uint64 { return s.version }

// NumSites returns the number of sites in the table.
func (s *Snapshot) NumSites() int { return len(s.weights) }

// PatternLen returns the wheel length: the cycle within which RouteN
// matches Table.RouteN exactly.
func (s *Snapshot) PatternLen() int { return len(s.pattern) }

package dispatch

import (
	"math"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func mustSnapshot(t *testing.T, lambdas []float64, served, arrived float64) *Snapshot {
	t.Helper()
	s, err := NewSnapshot(lambdas, served, arrived, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewSnapshotValidation(t *testing.T) {
	if _, err := NewSnapshot(nil, 0, 0, 0, 1); err == nil {
		t.Error("empty snapshot accepted")
	}
	if _, err := NewSnapshot([]float64{0, 0}, 0, 0, 0, 1); err == nil {
		t.Error("all-zero allocation accepted")
	}
	if _, err := NewSnapshot([]float64{1, math.Inf(1)}, 0, 0, 0, 1); err == nil {
		t.Error("+Inf load accepted")
	}
	if _, err := NewSnapshot([]float64{1, 2}, math.NaN(), 10, 0, 1); err == nil {
		t.Error("NaN gate accepted")
	}
}

// TestSnapshotMatchesRouteN: within one wheel cycle the O(1) sampler routes
// the exact sequence a fresh Table would, so per-site counts after any
// n ≤ PatternLen match Table.RouteN within ±1 (they are in fact equal).
func TestSnapshotMatchesRouteN(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		k := 2 + r.Intn(6)
		lambdas := make([]float64, k)
		for i := range lambdas {
			lambdas[i] = r.Float64() * 1e12
		}
		lambdas[r.Intn(k)] += 1
		snap := mustSnapshot(t, lambdas, 1, 1)
		tbl, err := NewTable(lambdas)
		if err != nil {
			return false
		}
		n := 1 + r.Intn(snap.PatternLen())
		got := snap.RouteN(n)
		want := tbl.RouteN(n)
		for i := range got {
			if d := got[i] - want[i]; d < -1 || d > 1 {
				t.Logf("seed %d: site %d got %d want %d after %d", seed, i, got[i], want[i], n)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestSnapshotWraparound: beyond one cycle the per-site deviation from
// n·weight grows at most by 1 per wrapped cycle (each cycle routes the
// exact largest-remainder apportionment of PatternLen requests).
func TestSnapshotWraparound(t *testing.T) {
	lambdas := []float64{3e11, 1e11, 6e11}
	snap := mustSnapshot(t, lambdas, 1, 1)
	cycles := 5
	n := cycles*snap.PatternLen() + 1234
	counts := snap.RouteBatch(n)
	w := snap.Weights()
	for i, c := range counts {
		if dev := math.Abs(float64(c) - float64(n)*w[i]); dev > float64(cycles)+2 {
			t.Errorf("site %d deviates by %v after %d requests (%d cycles)", i, dev, n, cycles)
		}
	}
}

// TestSnapshotRouteBatchMatchesSequential: one fetch-add batch routes the
// same multiset of sites as n individual Route calls from the same cursor.
func TestSnapshotRouteBatchMatchesSequential(t *testing.T) {
	lambdas := []float64{5, 10, 15, 2}
	a := mustSnapshot(t, lambdas, 1, 1)
	b := mustSnapshot(t, lambdas, 1, 1)
	for _, n := range []int{1, 7, 4096, a.PatternLen(), 2*a.PatternLen() + 77} {
		ca := a.RouteBatch(n)
		cb := b.RouteN(n)
		for i := range ca {
			if ca[i] != int64(cb[i]) {
				t.Fatalf("n=%d site %d: batch %d sequential %d", n, i, ca[i], cb[i])
			}
		}
	}
}

// TestSnapshotAdmitMatchesGate: the ordinal-arithmetic pacing admits the
// same prefix counts as the credit-based Gate, and AdmitBatch agrees with
// request-at-a-time admission.
func TestSnapshotAdmitMatchesGate(t *testing.T) {
	for _, rate := range []struct{ served, arrived float64 }{
		{0, 100}, {30, 100}, {100, 100}, {1, 3}, {99, 100},
	} {
		snap := mustSnapshot(t, []float64{1, 1}, rate.served, rate.arrived)
		gate, err := NewGate(rate.served, rate.arrived)
		if err != nil {
			t.Fatal(err)
		}
		snapAdmitted, gateAdmitted := 0, 0
		for i := 0; i < 1000; i++ {
			if snap.Admit(Ordinary) {
				snapAdmitted++
			}
			if gate.Admit(Ordinary) {
				gateAdmitted++
			}
			if d := snapAdmitted - gateAdmitted; d < -1 || d > 1 {
				t.Fatalf("rate %v/%v: snapshot admitted %d, gate %d after %d",
					rate.served, rate.arrived, snapAdmitted, gateAdmitted, i+1)
			}
		}
		batch := mustSnapshot(t, []float64{1, 1}, rate.served, rate.arrived)
		if got := batch.AdmitBatch(1000); got != snapAdmitted {
			t.Errorf("rate %v/%v: AdmitBatch(1000)=%d, sequential=%d",
				rate.served, rate.arrived, got, snapAdmitted)
		}
		if !snap.Admit(Premium) {
			t.Error("premium gated")
		}
	}
}

// TestSnapshotConcurrentConservation: many goroutines routing on one
// snapshot lose zero requests — the striped counters sum to exactly the
// number of Route calls — and the aggregate distribution stays within the
// wheel's discrepancy bound of the weights. Run with -race.
func TestSnapshotConcurrentConservation(t *testing.T) {
	lambdas := []float64{3e11, 1e11, 6e11}
	snap := mustSnapshot(t, lambdas, 80, 100)
	const goroutines = 8
	const perG = 25000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				if g%2 == 0 {
					snap.Route()
				} else if i%100 == 0 {
					snap.RouteBatch(100)
				}
			}
		}(g)
	}
	wg.Wait()
	total := int64(0)
	counts := snap.SiteCounts()
	for _, c := range counts {
		total += c
	}
	want := int64(goroutines * perG)
	if total != want {
		t.Fatalf("routed %d of %d requests (lost %d)", total, want, want-total)
	}
	if got := snap.Routed(); int64(got) != want {
		t.Fatalf("cursor %d, want %d", got, want)
	}
	w := snap.Weights()
	cycles := float64(int(want)/snap.PatternLen()) + 2
	for i, c := range counts {
		if dev := math.Abs(float64(c) - float64(want)*w[i]); dev > cycles {
			t.Errorf("site %d deviates by %v after %d concurrent requests", i, dev, want)
		}
	}
}

func TestSnapshotDroppedOrdinary(t *testing.T) {
	snap := mustSnapshot(t, []float64{1, 1}, 25, 100)
	admitted := snap.AdmitBatch(1000)
	if d := snap.DroppedOrdinary(); d != int64(1000-admitted) {
		t.Fatalf("dropped %d, admitted %d of 1000", d, admitted)
	}
	if snap.NoteArrivals(7) != 7 || snap.Arrivals() != 7 {
		t.Error("arrival accounting off")
	}
}

package dispatch

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewTableValidation(t *testing.T) {
	if _, err := NewTable(nil); err == nil {
		t.Error("empty table accepted")
	}
	if _, err := NewTable([]float64{0, 0}); err == nil {
		t.Error("all-zero allocation accepted")
	}
	if _, err := NewTable([]float64{1, -1}); err == nil {
		t.Error("negative load accepted")
	}
	if _, err := NewTable([]float64{1, math.NaN()}); err == nil {
		t.Error("NaN load accepted")
	}
}

// TestNewTableRejectsInf is the regression test for the +Inf validation bug:
// the `l < 0 || math.IsNaN(l)` check passed +Inf, the total became +Inf, and
// every weight collapsed to 0 (finite/Inf) or NaN (Inf/Inf) — a table that
// routed everything to site 0 or nowhere at all.
func TestNewTableRejectsInf(t *testing.T) {
	if _, err := NewTable([]float64{1e12, math.Inf(1)}); err == nil {
		t.Fatal("+Inf load accepted")
	}
	if _, err := NewTable([]float64{math.Inf(1), math.Inf(1)}); err == nil {
		t.Fatal("all-Inf loads accepted")
	}
	if _, err := NewTable([]float64{1, math.Inf(-1)}); err == nil {
		t.Fatal("-Inf load accepted")
	}
	// Individually finite loads whose sum overflows are just as unusable.
	if _, err := NewTable([]float64{math.MaxFloat64, math.MaxFloat64}); err == nil {
		t.Fatal("overflowing total accepted")
	}
}

// TestNewGateRejectsNonFinite is the regression test for the NaN validation
// bug: `servedOrdinary < 0` is false for NaN, so the gate was built with a
// NaN ordinaryRate and Admit silently dropped every ordinary request forever
// (NaN credit never reaches 1).
func TestNewGateRejectsNonFinite(t *testing.T) {
	bad := [][2]float64{
		{math.NaN(), 100},
		{30, math.NaN()},
		{math.Inf(1), 100},
		{30, math.Inf(1)},
		{math.Inf(-1), 100},
	}
	for _, c := range bad {
		if _, err := NewGate(c[0], c[1]); err == nil {
			t.Errorf("NewGate(%v, %v) accepted", c[0], c[1])
		}
	}
}

func TestRouteProportions(t *testing.T) {
	tbl, err := NewTable([]float64{3e11, 1e11, 6e11})
	if err != nil {
		t.Fatal(err)
	}
	const n = 10000
	counts := tbl.RouteN(n)
	want := []float64{0.3, 0.1, 0.6}
	for i, c := range counts {
		got := float64(c) / n
		if math.Abs(got-want[i]) > 0.001 {
			t.Errorf("site %d fraction %v, want %v", i, got, want[i])
		}
	}
}

// TestRouteDiscrepancyProperty: after any prefix of n requests, every
// site's count stays within ±1.5 of n·weight — the low-discrepancy
// guarantee real DNS-weighting approximations only approach.
func TestRouteDiscrepancyProperty(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		k := 2 + r.Intn(6)
		lambdas := make([]float64, k)
		for i := range lambdas {
			lambdas[i] = r.Float64() * 1e12
		}
		lambdas[r.Intn(k)] += 1 // ensure nonzero
		tbl, err := NewTable(lambdas)
		if err != nil {
			return false
		}
		w := tbl.Weights()
		counts := make([]float64, k)
		for n := 1; n <= 500; n++ {
			counts[tbl.Route()]++
			for i := range counts {
				if math.Abs(counts[i]-float64(n)*w[i]) > 1.5 {
					t.Logf("seed %d: site %d off by %v after %d", seed, i, counts[i]-float64(n)*w[i], n)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestWeightsSumToOne(t *testing.T) {
	tbl, _ := NewTable([]float64{5, 10, 15})
	sum := 0.0
	for _, w := range tbl.Weights() {
		sum += w
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("weights sum %v", sum)
	}
}

func TestGatePremiumAlwaysPasses(t *testing.T) {
	g, err := NewGate(0, 100) // ordinary fully blocked
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if !g.Admit(Premium) {
			t.Fatal("premium request blocked")
		}
		if g.Admit(Ordinary) {
			t.Fatal("ordinary request admitted at rate 0")
		}
	}
}

func TestGatePacing(t *testing.T) {
	g, err := NewGate(30, 100)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(g.OrdinaryRate()-0.3) > 1e-12 {
		t.Fatalf("rate %v", g.OrdinaryRate())
	}
	admitted := 0
	for i := 0; i < 1000; i++ {
		if g.Admit(Ordinary) {
			admitted++
		}
	}
	if admitted < 299 || admitted > 301 {
		t.Errorf("admitted %d of 1000 at rate 0.3", admitted)
	}
}

func TestGateEdgeCases(t *testing.T) {
	if _, err := NewGate(-1, 10); err == nil {
		t.Error("negative served accepted")
	}
	// No ordinary arrivals → rate defaults to 1.
	g, err := NewGate(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if g.OrdinaryRate() != 1 || !g.Admit(Ordinary) {
		t.Error("empty-hour gate should pass everything")
	}
	// Served above arrived clamps to 1.
	g2, _ := NewGate(20, 10)
	if g2.OrdinaryRate() != 1 {
		t.Errorf("rate %v, want clamp to 1", g2.OrdinaryRate())
	}
}

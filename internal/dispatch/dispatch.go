// Package dispatch turns the bill capper's per-site workload fractions into
// an actual request-routing mechanism, modeling the authoritative-DNS
// dispatcher the paper assumes (§III): "the Authoritative Domain Name
// System (DNS) is deployed to take the request dispatcher role by mapping
// the request URL hostname into the IP address of the destined data
// centers", with no inter-site migration once a request is routed.
//
// Two layers are provided:
//
//   - a weighted routing Table with deterministic, low-discrepancy request
//     assignment (suitable for per-request decisions), and
//   - an admission Gate implementing the paper's two-class policy: premium
//     requests always pass, ordinary requests pass at the capper's
//     admission rate.
package dispatch

import (
	"fmt"
	"math"
)

// Table routes individual requests to sites in proportion to the capper's
// per-site allocation using the largest-remainder (Webster-like) method:
// after n requests, every site has received within ±1 of n·weight — far
// tighter than hashing and fully deterministic.
type Table struct {
	weights []float64
	credit  []float64
}

// NewTable builds a routing table from the capper's per-site loads. At
// least one load must be positive.
func NewTable(lambdas []float64) (*Table, error) {
	if len(lambdas) == 0 {
		return nil, fmt.Errorf("dispatch: no sites")
	}
	total := 0.0
	for i, l := range lambdas {
		if l < 0 || math.IsNaN(l) || math.IsInf(l, 0) {
			return nil, fmt.Errorf("dispatch: bad load %v at site %d", l, i)
		}
		total += l
	}
	if total <= 0 {
		return nil, fmt.Errorf("dispatch: all-zero allocation")
	}
	if math.IsInf(total, 0) {
		// Each load is finite but the sum overflowed; weights would all
		// collapse to 0.
		return nil, fmt.Errorf("dispatch: total load overflows")
	}
	t := &Table{
		weights: make([]float64, len(lambdas)),
		credit:  make([]float64, len(lambdas)),
	}
	for i, l := range lambdas {
		t.weights[i] = l / total
	}
	return t, nil
}

// Weights returns the routing fractions (summing to 1).
func (t *Table) Weights() []float64 { return append([]float64(nil), t.weights...) }

// Route assigns the next request and returns its site index.
func (t *Table) Route() int {
	best, bestCredit := 0, math.Inf(-1)
	for i := range t.credit {
		t.credit[i] += t.weights[i]
		if t.credit[i] > bestCredit {
			bestCredit = t.credit[i]
			best = i
		}
	}
	t.credit[best]--
	return best
}

// RouteN assigns n requests and returns the per-site counts.
func (t *Table) RouteN(n int) []int {
	counts := make([]int, len(t.weights))
	for k := 0; k < n; k++ {
		counts[t.Route()]++
	}
	return counts
}

// Class labels a request's customer class.
type Class int

// Customer classes (paper §V: premium customers pay; ordinary customers
// enjoy complimentary service).
const (
	Premium Class = iota
	Ordinary
)

// Gate applies the capper's admission decision per request class.
type Gate struct {
	// ordinaryRate is the admitted fraction of ordinary traffic in [0,1].
	ordinaryRate float64
	credit       float64
}

// NewGate builds the admission gate from a capper decision: served ordinary
// over arrived ordinary. Premium is never gated.
func NewGate(servedOrdinary, arrivedOrdinary float64) (*Gate, error) {
	if !isFiniteNonNeg(servedOrdinary) || !isFiniteNonNeg(arrivedOrdinary) {
		return nil, fmt.Errorf("dispatch: bad rates %v/%v", servedOrdinary, arrivedOrdinary)
	}
	rate := 1.0
	if arrivedOrdinary > 0 {
		rate = servedOrdinary / arrivedOrdinary
		if rate > 1 {
			rate = 1
		}
	}
	return &Gate{ordinaryRate: rate}, nil
}

// isFiniteNonNeg reports whether v is a usable rate: finite and ≥ 0. A NaN
// slips past plain `v < 0` (every comparison with NaN is false), which
// historically let NewGate build a gate whose NaN ordinaryRate silently
// dropped all ordinary traffic forever.
func isFiniteNonNeg(v float64) bool {
	return v >= 0 && !math.IsInf(v, 0)
}

// OrdinaryRate returns the admitted fraction of ordinary traffic.
func (g *Gate) OrdinaryRate() float64 { return g.ordinaryRate }

// Admit decides one request deterministically (largest-remainder pacing for
// ordinary traffic, so admissions are evenly spread rather than bursty).
func (g *Gate) Admit(c Class) bool {
	if c == Premium {
		return true
	}
	g.credit += g.ordinaryRate
	if g.credit >= 1 {
		g.credit--
		return true
	}
	return false
}

package hetero

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"billcap/internal/fattree"
	"billcap/internal/pricing"
)

func near(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func twoClassSite() *Site {
	net, _ := fattree.New(16) // 1024 hosts
	return &Site{
		Name: "test",
		Classes: []ServerClass{
			{Name: "slow", Count: 500, Mu: 3600 * 100, IdleW: 60, PeakW: 120},
			{Name: "fast", Count: 400, Mu: 3600 * 300, IdleW: 80, PeakW: 160},
		},
		K:            1.0,
		RespSLAHours: 0.02 / 3600,
		Net:          net,
		EdgeW:        84, AggW: 84, CoreW: 240,
		CoolingEff: 2.0,
		PowerCapMW: 1.0,
	}
}

func TestValidate(t *testing.T) {
	if err := twoClassSite().Validate(); err != nil {
		t.Fatalf("valid site rejected: %v", err)
	}
	cases := []struct {
		mutate func(*Site)
		want   string
	}{
		{func(s *Site) { s.Classes = nil }, "no server classes"},
		{func(s *Site) { s.Classes[0].Count = 0 }, "count"},
		{func(s *Site) { s.Classes[0].Mu = 0 }, "service rate"},
		{func(s *Site) { s.Classes[1].PeakW = 1 }, "power law"},
		{func(s *Site) { s.K = 0 }, "variability"},
		{func(s *Site) { s.CoolingEff = 0 }, "cooling"},
		{func(s *Site) { s.PowerCapMW = 0 }, "power cap"},
		{func(s *Site) { s.Classes[0].Count = 2000 }, "fat tree"},
		{func(s *Site) { s.RespSLAHours = 1e-12 }, "SLA"},
	}
	for _, c := range cases {
		s := twoClassSite()
		c.mutate(s)
		err := s.Validate()
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("mutation %q: err = %v", c.want, err)
		}
	}
}

func TestPlansSortedByEfficiency(t *testing.T) {
	s := twoClassSite()
	plans, err := s.Plans()
	if err != nil {
		t.Fatal(err)
	}
	if len(plans) != 2 {
		t.Fatalf("plans = %d", len(plans))
	}
	// The "fast" class serves 3× the requests at only ~1.3× the power, so
	// its marginal energy must rank first.
	if plans[0].Class.Name != "fast" {
		t.Errorf("efficiency order = %s first, want fast", plans[0].Class.Name)
	}
	if plans[0].MarginalW >= plans[1].MarginalW {
		t.Errorf("marginal energies not increasing: %v >= %v", plans[0].MarginalW, plans[1].MarginalW)
	}
}

func TestPlansExcludeUselessClass(t *testing.T) {
	s := twoClassSite()
	// A class so slow its bare service time exceeds the SLA.
	s.Classes = append(s.Classes, ServerClass{Name: "ancient", Count: 10, Mu: 3600 * 1, IdleW: 10, PeakW: 20})
	plans, err := s.Plans()
	if err != nil {
		t.Fatal(err)
	}
	for _, pl := range plans {
		if pl.Class.Name == "ancient" {
			t.Errorf("SLA-infeasible class included")
		}
	}
}

func TestEvaluateFillsEfficientFirst(t *testing.T) {
	s := twoClassSite()
	plans, _ := s.Plans()
	// A load the efficient class can fully absorb.
	lam := plans[0].MaxLambda / 2
	d, err := s.Evaluate(lam)
	if err != nil {
		t.Fatal(err)
	}
	if d.LambdaByClass[0] != lam || d.LambdaByClass[1] != 0 {
		t.Errorf("split = %v, want all on the efficient class", d.LambdaByClass)
	}
	// A load that must spill into the second class.
	lam = plans[0].MaxLambda * 1.2
	d, err = s.Evaluate(lam)
	if err != nil {
		t.Fatal(err)
	}
	if !near(d.LambdaByClass[0], plans[0].MaxLambda, 1) || d.LambdaByClass[1] <= 0 {
		t.Errorf("split = %v, want first class saturated", d.LambdaByClass)
	}
}

func TestEvaluateZeroAndOverload(t *testing.T) {
	s := twoClassSite()
	d, err := s.Evaluate(0)
	if err != nil || d.PowerMW != 0 || d.Servers != 0 {
		t.Errorf("zero load: %+v err=%v", d, err)
	}
	if _, err := s.Evaluate(1e15); err == nil {
		t.Error("overload accepted")
	}
	if _, err := s.Evaluate(-1); err == nil {
		t.Error("negative load accepted")
	}
}

func TestEvaluatePowerAboveAffinePlan(t *testing.T) {
	// Discrete rounding only ever adds power, and at most the rounding slack
	// per active class boundary.
	s := twoClassSite()
	plans, _ := s.Plans()
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		maxLam := plans[0].MaxLambda + plans[1].MaxLambda
		lam := r.Float64() * maxLam * 0.99
		d, err := s.Evaluate(lam)
		if err != nil {
			return false
		}
		// Affine plan power for the greedy split.
		affine := 0.0
		remaining := lam
		for _, pl := range plans {
			take := math.Min(remaining, pl.MaxLambda)
			remaining -= take
			if take > 0 {
				affine += pl.A*take + pl.B
			}
		}
		slack := 2 * s.RoundingSlackMW() // one per class boundary
		return d.PowerMW >= affine-1e-9 && d.PowerMW <= affine+slack
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMaxLambdaRespectsCap(t *testing.T) {
	s := twoClassSite()
	lam, err := s.MaxLambda()
	if err != nil {
		t.Fatal(err)
	}
	d, err := s.Evaluate(lam)
	if err != nil {
		t.Fatalf("MaxLambda %v not servable: %v", lam, err)
	}
	if d.PowerMW > s.PowerCapMW+1e-9 {
		t.Errorf("power %v above cap %v at MaxLambda", d.PowerMW, s.PowerCapMW)
	}
	// Tighten the cap: capacity must shrink.
	s2 := twoClassSite()
	s2.PowerCapMW = 0.02
	lam2, err := s2.MaxLambda()
	if err != nil {
		t.Fatal(err)
	}
	if lam2 >= lam {
		t.Errorf("tight cap did not shrink capacity: %v >= %v", lam2, lam)
	}
}

func TestPaperHeteroSites(t *testing.T) {
	sites := PaperHeteroSites()
	if len(sites) != 3 {
		t.Fatalf("len = %d", len(sites))
	}
	for _, s := range sites {
		if err := s.Validate(); err != nil {
			t.Errorf("%s invalid: %v", s.Name, err)
		}
		if len(s.Classes) != 3 {
			t.Errorf("%s has %d classes", s.Name, len(s.Classes))
		}
		lam, err := s.MaxLambda()
		if err != nil || lam <= 0 {
			t.Errorf("%s MaxLambda = %v, %v", s.Name, lam, err)
		}
	}
}

func newNetwork(t *testing.T) *Network {
	t.Helper()
	n, err := NewNetwork(PaperHeteroSites(), pricing.PaperPolicies(pricing.Policy1))
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestNewNetworkValidation(t *testing.T) {
	if _, err := NewNetwork(nil, nil); err == nil {
		t.Error("empty network accepted")
	}
	if _, err := NewNetwork(PaperHeteroSites(), pricing.PaperPolicies(pricing.Policy1)[:1]); err == nil {
		t.Error("arity mismatch accepted")
	}
}

func TestMinimizeCostServesAll(t *testing.T) {
	n := newNetwork(t)
	demand := []float64{170, 190, 150}
	lam := 0.5 * n.MaxThroughput()
	a, err := n.MinimizeCost(lam, demand)
	if err != nil {
		t.Fatal(err)
	}
	served := 0.0
	for _, l := range a.LambdaBySite {
		served += l
	}
	if !near(served, lam, 1e-6*lam) {
		t.Errorf("served %v of %v", served, lam)
	}
	if a.CostUSD <= 0 {
		t.Errorf("cost %v", a.CostUSD)
	}
	// Realization tracks the prediction.
	r, err := n.Realize(a.LambdaBySite, demand)
	if err != nil {
		t.Fatal(err)
	}
	if r.CapViolations != 0 {
		t.Errorf("cap violations %d", r.CapViolations)
	}
	if rel := math.Abs(r.CostUSD-a.CostUSD) / a.CostUSD; rel > 0.03 {
		t.Errorf("realized %v vs predicted %v (rel %.3f)", r.CostUSD, a.CostUSD, rel)
	}
	// Realized power may only exceed the plan by the rounding slack.
	for i := range n.Sites {
		if r.PowerMW[i] > a.PowerMW[i]+3*n.Sites[i].RoundingSlackMW()+1e-9 {
			t.Errorf("site %d realized %v vs planned %v", i, r.PowerMW[i], a.PowerMW[i])
		}
	}
}

func TestMinimizeCostInfeasible(t *testing.T) {
	n := newNetwork(t)
	_, err := n.MinimizeCost(2*n.MaxThroughput(), []float64{170, 190, 150})
	if err == nil {
		t.Fatal("over-capacity load accepted")
	}
}

func TestMinimizeCostBeatsProportionalSplit(t *testing.T) {
	// The optimizer must not be worse than a naive capacity-proportional
	// dispatch, billed identically.
	n := newNetwork(t)
	demand := []float64{170, 190, 150}
	lam := 0.6 * n.MaxThroughput()
	a, err := n.MinimizeCost(lam, demand)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := n.Realize(a.LambdaBySite, demand)
	if err != nil {
		t.Fatal(err)
	}
	naive := make([]float64, len(n.Sites))
	for i := range n.Sites {
		naive[i] = lam * n.maxLam[i] / n.MaxThroughput()
	}
	nv, err := n.Realize(naive, demand)
	if err != nil {
		t.Fatal(err)
	}
	if opt.BillUSD() > nv.BillUSD()*1.005 {
		t.Errorf("optimized bill %v above naive %v", opt.BillUSD(), nv.BillUSD())
	}
}

func TestHeterogeneityHelps(t *testing.T) {
	// Dispatching per class must not cost more than treating each site as
	// if it only had its *worst* usable class (a lower-bound sanity check
	// that the class split is doing useful work: the efficient classes
	// carry the load first).
	n := newNetwork(t)
	demand := []float64{170, 190, 150}
	lam := 0.4 * n.MaxThroughput()
	a, err := n.MinimizeCost(lam, demand)
	if err != nil {
		t.Fatal(err)
	}
	for i, split := range a.LambdaByClass {
		plans := n.plans[i]
		for c := 1; c < len(plans); c++ {
			// A dearer class only carries load once every cheaper class is
			// saturated (within tolerance) — the greedy structure must
			// survive the MILP.
			if split[c] > 1e-6*lam {
				prev := split[c-1]
				if prev < plans[c-1].MaxLambda*(1-1e-6) {
					t.Errorf("site %d: class %d loaded while class %d at %.3g/%.3g",
						i, c, c-1, prev, plans[c-1].MaxLambda)
				}
			}
		}
	}
}

func TestMaximizeThroughputWithinBudget(t *testing.T) {
	n := newNetwork(t)
	demand := []float64{170, 190, 150}
	lam := 0.6 * n.MaxThroughput()
	full, err := n.MinimizeCost(lam, demand)
	if err != nil {
		t.Fatal(err)
	}
	// Half the uncapped cost: some load must be shed, budget respected.
	budget := full.CostUSD / 2
	a, err := n.MaximizeThroughput(lam, budget, demand)
	if err != nil {
		t.Fatal(err)
	}
	served := 0.0
	for _, l := range a.LambdaBySite {
		served += l
	}
	if served >= lam*(1-1e-9) {
		t.Errorf("served %v of %v despite a half budget", served, lam)
	}
	if served <= 0 {
		t.Errorf("served nothing with a positive budget")
	}
	if a.CostUSD > budget*(1+1e-6) {
		t.Errorf("cost %v above budget %v", a.CostUSD, budget)
	}
	if _, err := n.MaximizeThroughput(lam, -1, demand); err == nil {
		t.Error("negative budget accepted")
	}
}

func TestHeteroDecideHourBranches(t *testing.T) {
	n := newNetwork(t)
	demand := []float64{170, 190, 150}
	lam := 0.6 * n.MaxThroughput()
	prem := 0.8 * lam
	full, err := n.MinimizeCost(lam, demand)
	if err != nil {
		t.Fatal(err)
	}

	// Abundant budget → step 1 result.
	d, err := n.DecideHour(lam, prem, full.CostUSD*2, demand)
	if err != nil {
		t.Fatal(err)
	}
	if !near(d.CostUSD, full.CostUSD, 1e-6*full.CostUSD) {
		t.Errorf("abundant budget cost %v, want %v", d.CostUSD, full.CostUSD)
	}

	// Budget between premium floor and full cost → capped, premium kept.
	premOnly, err := n.MinimizeCost(prem, demand)
	if err != nil {
		t.Fatal(err)
	}
	mid := (premOnly.CostUSD + full.CostUSD) / 2
	d, err = n.DecideHour(lam, prem, mid, demand)
	if err != nil {
		t.Fatal(err)
	}
	served := 0.0
	for _, l := range d.LambdaBySite {
		served += l
	}
	if served < prem*(1-1e-6) {
		t.Errorf("capped hour dropped premium: %v < %v", served, prem)
	}
	if d.CostUSD > mid*(1+1e-6) {
		t.Errorf("capped hour cost %v over %v", d.CostUSD, mid)
	}

	// Budget below the premium floor → premium-only, budget violated.
	d, err = n.DecideHour(lam, prem, 1, demand)
	if err != nil {
		t.Fatal(err)
	}
	served = 0
	for _, l := range d.LambdaBySite {
		served += l
	}
	if !near(served, prem, 1e-6*prem) {
		t.Errorf("premium-only served %v, want %v", served, prem)
	}
	if d.CostUSD <= 1 {
		t.Errorf("premium-only cost %v did not exceed the token budget", d.CostUSD)
	}

	if _, err := n.DecideHour(lam, 2*lam, 1, demand); err == nil {
		t.Error("premium above total accepted")
	}
}

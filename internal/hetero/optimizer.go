package hetero

import (
	"errors"
	"fmt"
	"math"

	"billcap/internal/lp"
	"billcap/internal/milp"
	"billcap/internal/piecewise"
	"billcap/internal/pricing"
)

// ErrInfeasible reports that the load exceeds what the heterogeneous fleet
// can carry within SLAs and power caps.
var ErrInfeasible = errors.New("hetero: no feasible allocation")

// capPenaltyUSDPerMWh prices power-cap violations in realizations, matching
// the homogeneous system's default.
const capPenaltyUSDPerMWh = 250

// Network is a set of heterogeneous data centers in their power markets.
type Network struct {
	Sites    []*Site
	Policies []pricing.Policy

	plans  [][]ClassPlan
	maxLam []float64
}

// NewNetwork validates and assembles the network.
func NewNetwork(sites []*Site, policies []pricing.Policy) (*Network, error) {
	if len(sites) == 0 {
		return nil, fmt.Errorf("hetero: no sites")
	}
	if len(sites) != len(policies) {
		return nil, fmt.Errorf("hetero: %d sites but %d policies", len(sites), len(policies))
	}
	n := &Network{Sites: sites, Policies: policies}
	for _, s := range sites {
		plans, err := s.Plans()
		if err != nil {
			return nil, err
		}
		maxLam, err := s.MaxLambda()
		if err != nil {
			return nil, err
		}
		n.plans = append(n.plans, plans)
		n.maxLam = append(n.maxLam, maxLam)
	}
	return n, nil
}

// MaxThroughput is the fleet's SLA- and cap-feasible capacity.
func (n *Network) MaxThroughput() float64 {
	t := 0.0
	for _, m := range n.maxLam {
		t += m
	}
	return t
}

// Allocation is the optimizer's plan for one hour.
type Allocation struct {
	// LambdaBySite is the per-site workload.
	LambdaBySite []float64
	// LambdaByClass[i][c] follows the site's efficiency-ordered Plans().
	LambdaByClass [][]float64
	// PowerMW is the predicted per-site draw.
	PowerMW []float64
	// CostUSD is the predicted total electricity cost.
	CostUSD float64
	// Solver reports branch-and-bound effort.
	SolverNodes, SolverPivots int
}

// heteroModel holds the shared MILP skeleton of both optimization steps.
type heteroModel struct {
	m             *milp.Problem
	scale         float64
	siteClassVars [][]struct{ x, y int }
	encs          []piecewise.Encoded
	workTerms     []lp.Term
}

// buildModel assembles the per-class variables, price encodings and
// structural rows shared by cost minimization and throughput maximization.
func (n *Network) buildModel(lambda float64, demandMW []float64) (*heteroModel, error) {
	if lambda < 0 {
		return nil, fmt.Errorf("hetero: negative load %v", lambda)
	}
	if len(demandMW) != len(n.Sites) {
		return nil, fmt.Errorf("hetero: %d demand entries for %d sites", len(demandMW), len(n.Sites))
	}
	hm := &heteroModel{
		m:             milp.NewProblem(),
		scale:         math.Max(1, lambda/1e3),
		siteClassVars: make([][]struct{ x, y int }, len(n.Sites)),
		encs:          make([]piecewise.Encoded, len(n.Sites)),
	}
	m := hm.m
	for i, s := range n.Sites {
		enc, err := piecewise.Encode(m, n.Policies[i].Fn, demandMW[i], s.PowerCapMW, s.RoundingSlackMW(), s.Name)
		if err != nil {
			return nil, err
		}
		hm.encs[i] = enc
		on := m.AddBinVar(s.Name+".on", 0)
		// The price segment selector matches the site's on/off state.
		m.AddConstraint(append(enc.SelectorTerms(), lp.Term{Var: on, Coef: -1}), lp.EQ, 0)

		powerLink := []lp.Term{{Var: enc.Power, Coef: 1}}
		var anyClassOn []lp.Term
		for _, pl := range n.plans[i] {
			x := m.AddVar(fmt.Sprintf("%s.%s.x", s.Name, pl.Class.Name), 0)
			y := m.AddBinVar(fmt.Sprintf("%s.%s.y", s.Name, pl.Class.Name), 0)
			// Class capacity ties load to activation.
			m.AddConstraint([]lp.Term{
				{Var: x, Coef: 1}, {Var: y, Coef: -pl.MaxLambda / hm.scale},
			}, lp.LE, 0)
			// An active class implies the site is on.
			m.AddConstraint([]lp.Term{{Var: y, Coef: 1}, {Var: on, Coef: -1}}, lp.LE, 0)
			powerLink = append(powerLink,
				lp.Term{Var: x, Coef: -pl.A * hm.scale},
				lp.Term{Var: y, Coef: -pl.B})
			anyClassOn = append(anyClassOn, lp.Term{Var: y, Coef: 1})
			hm.workTerms = append(hm.workTerms, lp.Term{Var: x, Coef: 1})
			hm.siteClassVars[i] = append(hm.siteClassVars[i], struct{ x, y int }{x: x, y: y})
		}
		if len(hm.siteClassVars[i]) == 0 {
			return nil, fmt.Errorf("hetero %s: no usable server class", s.Name)
		}
		// p_i = Σ_c (a_c x_c + b_c y_c).
		m.AddConstraint(powerLink, lp.EQ, 0)
		// A site that is "on" must have at least one active class.
		m.AddConstraint(append(anyClassOn, lp.Term{Var: on, Coef: -1}), lp.GE, 0)
	}
	return hm, nil
}

// costTerms collects Σ rate·segPower across all sites.
func (hm *heteroModel) costTerms() []lp.Term {
	var out []lp.Term
	for i := range hm.encs {
		out = append(out, hm.encs[i].CostTerms()...)
	}
	return out
}

// extract reads an optimal solution into an Allocation.
func (n *Network) extract(hm *heteroModel, sol milp.Solution) Allocation {
	out := Allocation{
		LambdaBySite:  make([]float64, len(n.Sites)),
		LambdaByClass: make([][]float64, len(n.Sites)),
		PowerMW:       make([]float64, len(n.Sites)),
		SolverNodes:   sol.Nodes,
		SolverPivots:  sol.Pivots,
	}
	for i := range n.Sites {
		out.LambdaByClass[i] = make([]float64, len(hm.siteClassVars[i]))
		for c, cv := range hm.siteClassVars[i] {
			lam := sol.X[cv.x] * hm.scale
			if lam < 0 || sol.X[cv.y] < 0.5 {
				lam = 0
			}
			out.LambdaByClass[i][c] = lam
			out.LambdaBySite[i] += lam
		}
		out.PowerMW[i] = sol.X[hm.encs[i].Power]
		for j, pv := range hm.encs[i].SegPower {
			out.CostUSD += hm.encs[i].SegRate[j] * sol.X[pv]
		}
	}
	return out
}

// MinimizeCost routes lambda requests/hour across the heterogeneous fleet
// at minimum predicted cost under the true locational step prices — the
// paper's Step 1 generalized to per-class dispatch.
func (n *Network) MinimizeCost(lambda float64, demandMW []float64) (Allocation, error) {
	hm, err := n.buildModel(lambda, demandMW)
	if err != nil {
		return Allocation{}, err
	}
	hm.m.AddConstraint(hm.workTerms, lp.EQ, lambda/hm.scale)
	for _, t := range hm.costTerms() {
		hm.m.SetObjectiveCoef(t.Var, hm.m.ObjectiveCoef(t.Var)+t.Coef)
	}
	sol := hm.m.Solve()
	switch sol.Status {
	case milp.Optimal:
	case milp.Infeasible:
		return Allocation{}, fmt.Errorf("%w: %v req/h", ErrInfeasible, lambda)
	default:
		return Allocation{}, fmt.Errorf("hetero: solve ended %v", sol.Status)
	}
	return n.extract(hm, sol), nil
}

// MaximizeThroughput admits as much of the arriving load as the hourly
// budget allows — the paper's Step 2 generalized to per-class dispatch.
// budgetUSD of +Inf disables the budget row.
func (n *Network) MaximizeThroughput(lambda, budgetUSD float64, demandMW []float64) (Allocation, error) {
	if budgetUSD < 0 || math.IsNaN(budgetUSD) {
		return Allocation{}, fmt.Errorf("hetero: bad budget %v", budgetUSD)
	}
	hm, err := n.buildModel(lambda, demandMW)
	if err != nil {
		return Allocation{}, err
	}
	hm.m.AddConstraint(hm.workTerms, lp.LE, lambda/hm.scale)
	if !math.IsInf(budgetUSD, 1) {
		hm.m.AddConstraint(hm.costTerms(), lp.LE, budgetUSD)
	}
	hm.m.SetMaximize(true)
	for _, t := range hm.workTerms {
		hm.m.SetObjectiveCoef(t.Var, 1)
	}
	const eps = 1e-4 // cost tie-break, as in the homogeneous capper
	for _, t := range hm.costTerms() {
		hm.m.SetObjectiveCoef(t.Var, hm.m.ObjectiveCoef(t.Var)-eps*t.Coef)
	}
	sol := hm.m.Solve()
	if sol.Status != milp.Optimal {
		return Allocation{}, fmt.Errorf("hetero: throughput maximization ended %v", sol.Status)
	}
	return n.extract(hm, sol), nil
}

// DecideHour runs the full two-step bill capping algorithm on the
// heterogeneous fleet: cost-minimize everything; if that busts the hourly
// budget, maximize admitted throughput within it; if even premium traffic
// does not fit, serve premium at minimum cost and accept the overrun.
func (n *Network) DecideHour(lambda, premiumLambda, budgetUSD float64, demandMW []float64) (Allocation, error) {
	if premiumLambda < 0 || premiumLambda > lambda+1e-9 {
		return Allocation{}, fmt.Errorf("hetero: premium %v outside [0, %v]", premiumLambda, lambda)
	}
	d1, err := n.MinimizeCost(lambda, demandMW)
	if err == nil && d1.CostUSD <= budgetUSD*(1+1e-6)+1e-6 {
		return d1, nil
	}
	if err != nil && !errors.Is(err, ErrInfeasible) {
		return Allocation{}, err
	}
	d2, err := n.MaximizeThroughput(lambda, budgetUSD, demandMW)
	if err != nil {
		return Allocation{}, err
	}
	served := 0.0
	for _, l := range d2.LambdaBySite {
		served += l
	}
	if served+1e-6*(1+lambda) >= premiumLambda {
		return d2, nil
	}
	// Premium QoS is mandatory: over budget, premium only.
	d3, err := n.MinimizeCost(premiumLambda, demandMW)
	if err == nil {
		return d3, nil
	}
	if !errors.Is(err, ErrInfeasible) {
		return Allocation{}, err
	}
	return n.MaximizeThroughput(premiumLambda, math.Inf(1), demandMW)
}

// Realization is the discrete, truthfully billed outcome of an allocation.
type Realization struct {
	PowerMW       []float64
	PriceUSDPerMW []float64
	CostUSD       float64
	PenaltyUSD    float64
	CapViolations int
	Servers       int
}

// BillUSD is energy charges plus cap penalties.
func (r Realization) BillUSD() float64 { return r.CostUSD + r.PenaltyUSD }

// Realize evaluates the per-site loads with the discrete local optimizer
// and bills them at the true step prices.
func (n *Network) Realize(lambdaBySite, demandMW []float64) (Realization, error) {
	if len(lambdaBySite) != len(n.Sites) || len(demandMW) != len(n.Sites) {
		return Realization{}, fmt.Errorf("hetero: realize arity mismatch")
	}
	out := Realization{
		PowerMW:       make([]float64, len(n.Sites)),
		PriceUSDPerMW: make([]float64, len(n.Sites)),
	}
	for i, s := range n.Sites {
		d, err := s.Evaluate(lambdaBySite[i])
		if err != nil {
			return Realization{}, err
		}
		price := n.Policies[i].Price(demandMW[i] + d.PowerMW)
		out.PowerMW[i] = d.PowerMW
		out.PriceUSDPerMW[i] = price
		out.CostUSD += price * d.PowerMW
		out.Servers += d.Servers
		if d.PowerMW > s.PowerCapMW+1e-9 {
			out.CapViolations++
			out.PenaltyUSD += capPenaltyUSDPerMWh * (d.PowerMW - s.PowerCapMW)
		}
	}
	return out, nil
}

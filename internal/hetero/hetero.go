// Package hetero extends the paper's framework to heterogeneous data
// centers — the first extension the paper names as future work (§IX):
// "multiple service rates exist due to the heterogeneity in hardware. As a
// result, power and performance management is more complicated ... on how
// to distribute incoming requests to different servers and how to
// dynamically configure the data center in determining the minimum number
// of active servers."
//
// A heterogeneous site hosts several server classes (different service
// rates and power laws). The local optimizer activates classes in order of
// energy per unit throughput and sizes each class with the same G/G/m rule
// as the homogeneous model, so site power becomes a convex piecewise-affine
// function of load. The hour-level cost minimization stays a MILP: one
// workload variable per class, one on/off binary per class, and the same
// exact step-price encoding as the homogeneous optimizer.
package hetero

import (
	"fmt"
	"math"
	"sort"

	"billcap/internal/fattree"
	"billcap/internal/queueing"
)

// ServerClass is one homogeneous pool inside a heterogeneous site.
type ServerClass struct {
	// Name identifies the hardware generation, e.g. "athlon-2.0".
	Name string
	// Count is the number of installed servers of this class.
	Count int
	// Mu is the per-server service rate in requests/hour.
	Mu float64
	// IdleW and PeakW are the class's per-server power law endpoints.
	IdleW, PeakW float64
}

// Site is a heterogeneous data center.
type Site struct {
	Name string
	// Classes are the server pools; order does not matter (the local
	// optimizer sorts by efficiency).
	Classes []ServerClass
	// K is the workload variability (C_A²+C_B²)/2 shared by all classes.
	K float64
	// RespSLAHours is the response-time set point Rs.
	RespSLAHours float64
	// Net is the shared fat-tree fabric with its per-switch powers.
	Net                fattree.Topology
	EdgeW, AggW, CoreW float64
	// CoolingEff is the site's cooling efficiency coe.
	CoolingEff float64
	// PowerCapMW is the supplier's cap on the whole site.
	PowerCapMW float64
}

// Validate reports the first configuration error.
func (s *Site) Validate() error {
	if len(s.Classes) == 0 {
		return fmt.Errorf("hetero %s: no server classes", s.Name)
	}
	total := 0
	for _, c := range s.Classes {
		switch {
		case c.Count <= 0:
			return fmt.Errorf("hetero %s/%s: count %d", s.Name, c.Name, c.Count)
		case c.Mu <= 0:
			return fmt.Errorf("hetero %s/%s: service rate %v", s.Name, c.Name, c.Mu)
		case c.IdleW < 0 || c.PeakW < c.IdleW:
			return fmt.Errorf("hetero %s/%s: power law idle=%v peak=%v", s.Name, c.Name, c.IdleW, c.PeakW)
		}
		total += c.Count
	}
	if s.K <= 0 {
		return fmt.Errorf("hetero %s: variability %v", s.Name, s.K)
	}
	if s.CoolingEff <= 0 {
		return fmt.Errorf("hetero %s: cooling efficiency %v", s.Name, s.CoolingEff)
	}
	if s.PowerCapMW <= 0 {
		return fmt.Errorf("hetero %s: power cap %v", s.Name, s.PowerCapMW)
	}
	if s.Net.Capacity() < total {
		return fmt.Errorf("hetero %s: fat tree k=%d holds %d hosts < %d servers",
			s.Name, s.Net.K, s.Net.Capacity(), total)
	}
	usable := false
	for _, c := range s.Classes {
		if s.RespSLAHours > 1/c.Mu {
			usable = true
		}
	}
	if !usable {
		return fmt.Errorf("hetero %s: no class can meet the %v h SLA", s.Name, s.RespSLAHours)
	}
	return nil
}

// unitNetW returns the affine per-server network power (shared fabric).
func (s *Site) unitNetW() float64 {
	e, a, c := s.Net.Rates()
	return e*s.EdgeW + a*s.AggW + c*s.CoreW
}

// overhead is the cooling multiplier applied to IT power.
func (s *Site) overhead() float64 { return 1 + 1/s.CoolingEff }

// ClassPlan is the optimizer-facing affine model of one usable class, in
// the site's efficiency order.
type ClassPlan struct {
	Class ServerClass
	// MaxLambda is the class's SLA-feasible throughput ceiling.
	MaxLambda float64
	// A and B give class power in MW: A·λ + B while the class is active.
	A, B float64
	// MarginalW is cooled watts per (req/h) — the greedy sort key.
	MarginalW float64
}

// Plans returns the usable classes sorted by increasing marginal energy,
// with their affine power models (cooled, including the per-server share of
// the network fabric). Classes whose bare service time exceeds the SLA are
// excluded.
func (s *Site) Plans() ([]ClassPlan, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	unit := s.unitNetW()
	oh := s.overhead()
	var out []ClassPlan
	for _, c := range s.Classes {
		q := queueing.Model{Mu: c.Mu, K: s.K}
		if s.RespSLAHours <= 1/c.Mu {
			continue // cannot meet the SLA at any fleet size
		}
		maxLam, err := q.MaxThroughput(c.Count, s.RespSLAHours)
		if err != nil {
			return nil, err
		}
		alpha, beta, err := q.ServerCoefficients(s.RespSLAHours)
		if err != nil {
			return nil, err
		}
		a := oh * (c.PeakW + unit) * alpha / 1e6
		b := oh * (c.IdleW + unit) * beta / 1e6
		out = append(out, ClassPlan{
			Class:     c,
			MaxLambda: maxLam,
			A:         a,
			B:         b,
			MarginalW: a * 1e6,
		})
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].MarginalW < out[j].MarginalW })
	return out, nil
}

// Dispatch is the local optimizer's split of a site's load across classes.
type Dispatch struct {
	// LambdaByClass is keyed like Plans() (efficiency order).
	LambdaByClass []float64
	// Servers is the total active server count.
	Servers int
	// PowerMW is the realized (discrete) site power.
	PowerMW float64
	// Utilization is the load-weighted mean utilization of active classes.
	Utilization float64
}

// Evaluate runs the greedy local optimizer for the given load: fill classes
// in efficiency order up to their SLA ceilings, then price the discrete
// result (integer servers per class, shared fat-tree switches, cooling).
// Greedy filling is power-optimal here because each class's power is affine
// in its load with increasing marginal rates across the sorted classes.
func (s *Site) Evaluate(lambda float64) (Dispatch, error) {
	if lambda < 0 {
		return Dispatch{}, fmt.Errorf("hetero %s: negative load %v", s.Name, lambda)
	}
	plans, err := s.Plans()
	if err != nil {
		return Dispatch{}, err
	}
	d := Dispatch{LambdaByClass: make([]float64, len(plans))}
	if lambda == 0 {
		return d, nil
	}
	remaining := lambda
	serverW := 0.0
	totalServers := 0
	utilNum := 0.0
	for i, pl := range plans {
		if remaining <= 0 {
			break
		}
		take := math.Min(remaining, pl.MaxLambda)
		remaining -= take
		d.LambdaByClass[i] = take
		if take == 0 {
			continue
		}
		q := queueing.Model{Mu: pl.Class.Mu, K: s.K}
		n, err := q.MinServers(take, s.RespSLAHours)
		if err != nil {
			return Dispatch{}, err
		}
		if n > pl.Class.Count {
			n = pl.Class.Count
		}
		totalServers += n
		serverW += float64(n)*pl.Class.IdleW + (pl.Class.PeakW-pl.Class.IdleW)*take/pl.Class.Mu
		utilNum += take * q.Utilization(take, n)
	}
	if remaining > 1e-9*lambda {
		return Dispatch{}, fmt.Errorf("hetero %s: load %v exceeds SLA capacity %v",
			s.Name, lambda, lambda-remaining)
	}
	sw := s.Net.Active(totalServers)
	netW := float64(sw.Edge)*s.EdgeW + float64(sw.Agg)*s.AggW + float64(sw.Core)*s.CoreW
	d.Servers = totalServers
	d.PowerMW = (serverW + netW) * s.overhead() / 1e6
	if lambda > 0 {
		d.Utilization = utilNum / lambda
	}
	return d, nil
}

// MaxLambda returns the site's total SLA-feasible throughput, additionally
// limited by the power cap under the affine model.
func (s *Site) MaxLambda() (float64, error) {
	plans, err := s.Plans()
	if err != nil {
		return 0, err
	}
	slack := s.RoundingSlackMW()
	// Walk the efficiency order accumulating power until either all classes
	// are exhausted or the cap binds.
	total := 0.0
	power := 0.0
	for _, pl := range plans {
		classMax := pl.MaxLambda
		classPower := pl.A*classMax + pl.B
		if power+classPower+slack <= s.PowerCapMW {
			total += classMax
			power += classPower
			continue
		}
		// Cap binds inside this class.
		if pl.A > 0 {
			room := s.PowerCapMW - slack - power - pl.B
			if room > 0 {
				total += math.Min(classMax, room/pl.A)
			}
		}
		break
	}
	return total, nil
}

// RoundingSlackMW bounds the discrete-vs-affine gap: one server of the
// heaviest class, a pod of aggregation switches, a core and an edge switch,
// cooled.
func (s *Site) RoundingSlackMW() float64 {
	worst := 0.0
	for _, c := range s.Classes {
		if c.PeakW > worst {
			worst = c.PeakW
		}
	}
	return (worst + float64(s.Net.K/2)*s.AggW + s.CoreW + s.EdgeW) * s.overhead() / 1e6
}

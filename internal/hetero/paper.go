package hetero

import (
	"fmt"

	"billcap/internal/fattree"
)

// classSpecs are the paper's three server generations (§VI-A), reused as
// the hardware mix of a heterogeneous fleet ("data center repair,
// replacement, and expansion" — paper §IX).
var classSpecs = []struct {
	name     string
	sp80W    float64
	muPerSec float64
}{
	{"athlon-2.0", 88.88, 500},
	{"pentium-1.2", 34.10, 300},
	{"pentiumD-2.9", 49.90, 725},
}

func class(idx, count int) ServerClass {
	sp := classSpecs[idx]
	return ServerClass{
		Name:  sp.name,
		Count: count,
		Mu:    sp.muPerSec * 3600,
		IdleW: 0.5 * sp.sp80W,
		PeakW: 1.125 * sp.sp80W,
	}
}

// PaperHeteroSites returns the three paper locations refitted as
// heterogeneous fleets: each site mixes the three server generations in a
// different proportion (as a site that has been partially upgraded would),
// with the same fabric, cooling and cap parameters as the homogeneous
// model.
func PaperHeteroSites() []*Site {
	mixes := []struct {
		name               string
		counts             [3]int
		edgeW, aggW, coreW float64
		coe                float64
		capMW              float64
	}{
		{"DC1-B", [3]int{400_000, 200_000, 100_000}, 84, 84, 240, 1.94, 105},
		{"DC2-C", [3]int{100_000, 450_000, 150_000}, 70, 70, 260, 1.39, 48},
		{"DC3-D", [3]int{150_000, 100_000, 450_000}, 75, 75, 240, 1.74, 63},
	}
	out := make([]*Site, len(mixes))
	for i, m := range mixes {
		total := m.counts[0] + m.counts[1] + m.counts[2]
		net, err := fattree.ForHosts(total)
		if err != nil {
			panic(fmt.Sprintf("hetero: %v", err))
		}
		out[i] = &Site{
			Name: m.name,
			Classes: []ServerClass{
				class(0, m.counts[0]), class(1, m.counts[1]), class(2, m.counts[2]),
			},
			K:            1.0,
			RespSLAHours: 0.005 / 3600,
			Net:          net,
			EdgeW:        m.edgeW, AggW: m.aggW, CoreW: m.coreW,
			CoolingEff: m.coe,
			PowerCapMW: m.capMW,
		}
	}
	return out
}

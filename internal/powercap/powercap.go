// Package powercap implements a per-site feedback power-capping controller
// in the spirit of the cluster-level controllers the paper builds on
// (refs [10] Raghavendra et al., [11] Wang et al., [12] Fan et al.): before
// a network of data centers can cap its *bill*, each site must keep its
// *draw* under the supplier's cap to avoid penalties (paper §I).
//
// The controller is a discrete-time PI loop around an admission ratio: each
// control period it observes the site's realized power, compares it with
// the cap (minus a guard band), and trims or restores the fraction of the
// dispatched load the site actually accepts. The bill capper plans with a
// margin below the cap; this controller is the safety net for model error,
// flash crowds between invocations, and cooling-efficiency drift.
package powercap

import (
	"fmt"
	"math"
)

// Controller is a discrete-time PI admission controller. Create with New;
// the zero value is not ready.
type Controller struct {
	// CapMW is the hard limit the controller defends.
	CapMW float64
	// GuardFrac shrinks the setpoint below the cap (0.02 → aim at 98%).
	GuardFrac float64
	// Kp and Ki are the PI gains on the relative power error.
	Kp, Ki float64

	ratio    float64
	integral float64
}

// New returns a controller defending capMW with conservative default
// tuning: setpoint 2% under the cap, proportional-dominant gains that
// converge in a few periods without oscillation for plants whose power is
// roughly linear in admitted load.
func New(capMW float64) (*Controller, error) {
	if capMW <= 0 || math.IsNaN(capMW) {
		return nil, fmt.Errorf("powercap: cap %v MW", capMW)
	}
	return &Controller{
		CapMW:     capMW,
		GuardFrac: 0.02,
		Kp:        0.8,
		Ki:        0.2,
		ratio:     1,
	}, nil
}

// Ratio returns the current admission ratio in [0, 1]: the fraction of the
// dispatched load the site should accept this period.
func (c *Controller) Ratio() float64 { return c.ratio }

// Setpoint returns the power level the controller regulates to.
func (c *Controller) Setpoint() float64 { return c.CapMW * (1 - c.GuardFrac) }

// Observe feeds one period's realized power draw and updates the admission
// ratio. The error is normalized by the cap so gains are unit-free. The
// integral term is clamped (anti-windup) so long overload bursts do not
// poison recovery.
func (c *Controller) Observe(powerMW float64) {
	if powerMW < 0 || math.IsNaN(powerMW) {
		return // sensor glitch: hold the current ratio
	}
	err := (c.Setpoint() - powerMW) / c.CapMW // positive = headroom
	c.integral += err
	const windup = 1.0
	if c.integral > windup {
		c.integral = windup
	}
	if c.integral < -windup {
		c.integral = -windup
	}
	c.ratio += c.Kp*err + c.Ki*c.integral*0.1
	if c.ratio > 1 {
		c.ratio = 1
		if c.integral > 0 {
			c.integral = 0 // no windup while saturated at full admission
		}
	}
	if c.ratio < 0 {
		c.ratio = 0
	}
}

// Reset restores full admission and clears the integrator (e.g. after a
// site reconfiguration).
func (c *Controller) Reset() {
	c.ratio = 1
	c.integral = 0
}

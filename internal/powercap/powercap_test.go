package powercap

import (
	"math"
	"testing"

	"billcap/internal/dcmodel"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0); err == nil {
		t.Error("zero cap accepted")
	}
	if _, err := New(math.NaN()); err == nil {
		t.Error("NaN cap accepted")
	}
	c, err := New(50)
	if err != nil {
		t.Fatal(err)
	}
	if c.Ratio() != 1 {
		t.Errorf("initial ratio %v", c.Ratio())
	}
	if got := c.Setpoint(); math.Abs(got-49) > 1e-12 {
		t.Errorf("setpoint %v, want 49", got)
	}
}

func TestObserveSheddingAndRecovery(t *testing.T) {
	c, _ := New(50)
	// Sustained overload: the ratio must fall.
	for i := 0; i < 5; i++ {
		c.Observe(60)
	}
	if c.Ratio() >= 0.9 {
		t.Errorf("ratio %v did not shed under 20%% overload", c.Ratio())
	}
	low := c.Ratio()
	// Load vanishes: the ratio must recover to 1.
	for i := 0; i < 50; i++ {
		c.Observe(10)
	}
	if c.Ratio() != 1 {
		t.Errorf("ratio %v did not recover (was %v)", c.Ratio(), low)
	}
}

func TestObserveIgnoresGlitches(t *testing.T) {
	c, _ := New(50)
	c.Observe(60)
	r := c.Ratio()
	c.Observe(math.NaN())
	c.Observe(-5)
	if c.Ratio() != r {
		t.Errorf("ratio moved on bad sensor readings")
	}
}

func TestReset(t *testing.T) {
	c, _ := New(50)
	for i := 0; i < 10; i++ {
		c.Observe(80)
	}
	c.Reset()
	if c.Ratio() != 1 {
		t.Errorf("reset ratio %v", c.Ratio())
	}
}

// TestClosedLoopAgainstSiteModel runs the controller against the real site
// power model: a flash crowd offers more load than the cap admits, and the
// loop must converge to ≈ the setpoint without sustained violation.
func TestClosedLoopAgainstSiteModel(t *testing.T) {
	site := dcmodel.PaperSites()[0] // DC1-B: 105 MW cap, ≈110 MW at full fleet
	maxLam, err := site.Queue.MaxThroughput(site.MaxServers, site.RespSLAHours)
	if err != nil {
		t.Fatal(err)
	}
	// Offered load that would draw above the cap if fully admitted.
	offered := maxLam
	if p, err := site.TotalPowerMW(offered); err != nil || p <= site.PowerCapMW {
		t.Fatalf("test premise broken: power %v err %v", p, err)
	}

	c, err := New(site.PowerCapMW)
	if err != nil {
		t.Fatal(err)
	}
	violations := 0
	var finalPower float64
	const periods = 60
	for k := 0; k < periods; k++ {
		admitted := offered * c.Ratio()
		p, err := site.TotalPowerMW(admitted)
		if err != nil {
			t.Fatalf("period %d: %v", k, err)
		}
		if k >= 10 && p > site.PowerCapMW {
			violations++
		}
		finalPower = p
		c.Observe(p)
	}
	if violations > 0 {
		t.Errorf("%d cap violations after settling", violations)
	}
	// Converged near the setpoint (not far below — we want throughput too).
	if finalPower < 0.9*c.Setpoint() || finalPower > site.PowerCapMW {
		t.Errorf("settled at %v MW, want within [%v, %v]", finalPower, 0.9*c.Setpoint(), site.PowerCapMW)
	}
}

// TestClosedLoopTracksChangingLoad sweeps the offered load up and down and
// checks the controller follows without instability.
func TestClosedLoopTracksChangingLoad(t *testing.T) {
	site := dcmodel.PaperSites()[0] // DC1-B, cap 105 MW
	maxLam, err := site.Queue.MaxThroughput(site.MaxServers, site.RespSLAHours)
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(site.PowerCapMW)
	if err != nil {
		t.Fatal(err)
	}
	phases := []float64{0.4, 0.99, 0.6, 0.99, 0.2}
	for _, frac := range phases {
		offered := frac * maxLam
		for k := 0; k < 30; k++ {
			admitted := offered * c.Ratio()
			p, err := site.TotalPowerMW(admitted)
			if err != nil {
				t.Fatalf("frac %v period %d: %v", frac, k, err)
			}
			c.Observe(p)
		}
		// After settling: low offered load → full admission; overload →
		// power at or under the cap.
		admitted := offered * c.Ratio()
		p, _ := site.TotalPowerMW(admitted)
		if p > site.PowerCapMW+1e-9 {
			t.Errorf("frac %v: settled power %v above cap", frac, p)
		}
		if pOffered, err := site.TotalPowerMW(offered); err == nil && pOffered < c.Setpoint() {
			if c.Ratio() < 1 {
				t.Errorf("frac %v: ratio %v below 1 despite ample headroom", frac, c.Ratio())
			}
		}
	}
}

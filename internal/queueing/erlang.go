package queueing

import (
	"fmt"
	"math"
)

// ErlangC returns the M/M/m probability that an arriving request must wait
// (the Erlang-C formula), for arrival rate lambda, per-server rate mu and m
// servers. It is the exact special case (C_A² = C_B² = 1) that anchors the
// Allen–Cunneen approximation used everywhere else in this repository.
func ErlangC(lambda, mu float64, m int) (float64, error) {
	if lambda < 0 || mu <= 0 || m < 1 {
		return 0, fmt.Errorf("queueing: ErlangC(%v, %v, %d)", lambda, mu, m)
	}
	a := lambda / mu // offered load in Erlangs
	if a >= float64(m) {
		return 1, nil // unstable: everyone waits
	}
	// Iterative computation of the Erlang-B blocking probability, then the
	// standard conversion to Erlang-C; numerically stable for large m.
	b := 1.0
	for k := 1; k <= m; k++ {
		b = a * b / (float64(k) + a*b)
	}
	rho := a / float64(m)
	c := b / (1 - rho*(1-b))
	return c, nil
}

// ResponseTimeMMm returns the exact M/M/m mean response time in hours.
func (q Model) ResponseTimeMMm(lambda float64, m int) (float64, error) {
	if err := q.Validate(); err != nil {
		return 0, err
	}
	c, err := ErlangC(lambda, q.Mu, m)
	if err != nil {
		return 0, err
	}
	capacity := float64(m) * q.Mu
	if capacity <= lambda {
		return math.Inf(1), nil
	}
	return 1/q.Mu + c/(capacity-lambda), nil
}

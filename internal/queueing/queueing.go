// Package queueing models a data center as a G/G/m queue using the
// Allen–Cunneen approximation (paper §IV-B, eq. 3):
//
//	R = 1/µ + (C_A² + C_B²)/2 · ρ^(√(2(n+1))−1) / (nµ − λ)
//
// where µ is the per-server service rate, n the number of active servers,
// λ the arrival rate, ρ = λ/(nµ) the utilization, and C_A², C_B² the squared
// coefficients of variation of inter-arrival times and request sizes.
//
// The paper's local optimizer keeps just enough servers active that ρ ≈ 1,
// under which the correction term ρ^√(2(n+1)) → 1 and the waiting time
// reduces to K/(nµ − λ) with K = (C_A²+C_B²)/2. That simplified form is what
// both the optimizer and the simulator use; the full approximation is also
// provided for model-error studies.
package queueing

import (
	"fmt"
	"math"
)

// Model carries the queueing parameters of one homogeneous data center.
type Model struct {
	// Mu is the service rate of a single server, in requests per hour.
	Mu float64
	// K is (C_A² + C_B²)/2, the variability coefficient of the workload.
	// K = 1 corresponds to M/M/m-like variability.
	K float64
}

// Validate reports whether the model parameters are usable.
func (m Model) Validate() error {
	if m.Mu <= 0 {
		return fmt.Errorf("queueing: nonpositive service rate %v", m.Mu)
	}
	if m.K <= 0 {
		return fmt.Errorf("queueing: nonpositive variability coefficient %v", m.K)
	}
	return nil
}

// ResponseTime returns the simplified (ρ≈1) Allen–Cunneen mean response time
// in hours for arrival rate lambda (req/h) on n active servers. It returns
// +Inf when the system is not stable (nµ ≤ λ) or n ≤ 0.
func (m Model) ResponseTime(lambda float64, n int) float64 {
	if n <= 0 {
		return math.Inf(1)
	}
	capacity := float64(n) * m.Mu
	if capacity <= lambda {
		return math.Inf(1)
	}
	return 1/m.Mu + m.K/(capacity-lambda)
}

// ResponseTimeFull returns the full Allen–Cunneen approximation with the
// Sakasegawa waiting-probability correction ρ^(√(2(n+1))−1), in hours. The
// exponent makes the formula exact for M/M/1 and keeps it within a few
// percent of Erlang-C across server counts (validated against the
// discrete-event simulator in this package).
func (m Model) ResponseTimeFull(lambda float64, n int) float64 {
	if n <= 0 {
		return math.Inf(1)
	}
	capacity := float64(n) * m.Mu
	if capacity <= lambda {
		return math.Inf(1)
	}
	rho := lambda / capacity
	corr := math.Pow(rho, math.Sqrt(2*float64(n+1))-1)
	return 1/m.Mu + m.K*corr/(capacity-lambda)
}

// MinServersFrac returns the (continuous) minimal number of servers for which
// the simplified response time meets the set point rs (hours):
//
//	n ≥ λ/µ + K / (µ·(rs − 1/µ))
//
// This is affine in λ, which is what lets the cost model enter a MILP with
// continuous workload variables. It returns an error when rs ≤ 1/µ: no
// server count can beat the bare service time.
func (m Model) MinServersFrac(lambda, rs float64) (float64, error) {
	if err := m.Validate(); err != nil {
		return 0, err
	}
	if lambda < 0 {
		return 0, fmt.Errorf("queueing: negative arrival rate %v", lambda)
	}
	slack := rs - 1/m.Mu
	if slack <= 0 {
		return 0, fmt.Errorf("queueing: SLA %v h not achievable with service time %v h", rs, 1/m.Mu)
	}
	return lambda/m.Mu + m.K/(m.Mu*slack), nil
}

// MinServers returns the minimal integer server count meeting the set point,
// the decision the paper's per-site local optimizer makes every hour.
func (m Model) MinServers(lambda, rs float64) (int, error) {
	frac, err := m.MinServersFrac(lambda, rs)
	if err != nil {
		return 0, err
	}
	n := int(math.Ceil(frac - 1e-9))
	if n < 1 {
		n = 1
	}
	return n, nil
}

// ServerCoefficients returns (alpha, beta) of the affine relaxation
// n(λ) = alpha·λ + beta used inside the optimizer.
func (m Model) ServerCoefficients(rs float64) (alpha, beta float64, err error) {
	beta, err = m.MinServersFrac(0, rs)
	if err != nil {
		return 0, 0, err
	}
	return 1 / m.Mu, beta, nil
}

// Utilization returns ρ = λ/(nµ), clamped to [0, 1] for reporting.
func (m Model) Utilization(lambda float64, n int) float64 {
	if n <= 0 || m.Mu <= 0 {
		return 0
	}
	u := lambda / (float64(n) * m.Mu)
	if u < 0 {
		return 0
	}
	if u > 1 {
		return 1
	}
	return u
}

// MaxThroughput returns the largest arrival rate that maxServers servers can
// carry while meeting the set point rs under the simplified model:
// λ ≤ maxServers·µ − K/(rs − 1/µ).
func (m Model) MaxThroughput(maxServers int, rs float64) (float64, error) {
	if err := m.Validate(); err != nil {
		return 0, err
	}
	slack := rs - 1/m.Mu
	if slack <= 0 {
		return 0, fmt.Errorf("queueing: SLA %v h not achievable with service time %v h", rs, 1/m.Mu)
	}
	lam := float64(maxServers)*m.Mu - m.K/slack
	if lam < 0 {
		lam = 0
	}
	return lam, nil
}

package queueing

import (
	"math"
	"math/rand"
	"testing"
)

func TestErlangCKnownValues(t *testing.T) {
	// M/M/1: C = ρ.
	c, err := ErlangC(0.7, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !near(c, 0.7, 1e-12) {
		t.Errorf("M/M/1 ErlangC = %v, want 0.7", c)
	}
	// M/M/2 with a = 1 (ρ = 0.5): C = a²/(a²+... ) — textbook value 1/3.
	c, err = ErlangC(1, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !near(c, 1.0/3, 1e-12) {
		t.Errorf("M/M/2 ErlangC = %v, want 1/3", c)
	}
	// Unstable → 1.
	c, _ = ErlangC(5, 1, 2)
	if c != 1 {
		t.Errorf("unstable ErlangC = %v", c)
	}
	if _, err := ErlangC(-1, 1, 1); err == nil {
		t.Error("negative lambda accepted")
	}
	if _, err := ErlangC(1, 0, 1); err == nil {
		t.Error("zero mu accepted")
	}
}

func TestFullAllenCunneenTracksErlangC(t *testing.T) {
	// With C_A² = C_B² = 1 the full Allen-Cunneen approximation must stay
	// within a few percent of the exact M/M/m response time at moderate to
	// high utilization.
	m := Model{Mu: 1, K: 1}
	for _, tc := range []struct {
		servers int
		rho     float64
	}{
		{1, 0.8}, {4, 0.85}, {16, 0.9}, {64, 0.95},
	} {
		lambda := tc.rho * float64(tc.servers) * m.Mu
		exact, err := m.ResponseTimeMMm(lambda, tc.servers)
		if err != nil {
			t.Fatal(err)
		}
		approx := m.ResponseTimeFull(lambda, tc.servers)
		rel := math.Abs(approx-exact) / exact
		if rel > 0.08 {
			t.Errorf("m=%d ρ=%v: A-C %v vs Erlang-C %v (rel %.3f)",
				tc.servers, tc.rho, approx, exact, rel)
		}
	}
}

func TestDESConfigValidate(t *testing.T) {
	good := DESConfig{Servers: 2, Mu: 1, Lambda: 1.5, ArrivalCV2: 1, ServiceCV2: 1, Samples: 10}
	if err := good.Validate(); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
	bad := []DESConfig{
		{Servers: 0, Mu: 1, Lambda: 0.5, ArrivalCV2: 1, ServiceCV2: 1, Samples: 1},
		{Servers: 1, Mu: 0, Lambda: 0.5, ArrivalCV2: 1, ServiceCV2: 1, Samples: 1},
		{Servers: 1, Mu: 1, Lambda: 2, ArrivalCV2: 1, ServiceCV2: 1, Samples: 1}, // unstable
		{Servers: 1, Mu: 1, Lambda: 0.5, ArrivalCV2: 0, ServiceCV2: 1, Samples: 1},
		{Servers: 1, Mu: 1, Lambda: 0.5, ArrivalCV2: 1, ServiceCV2: 1, Samples: 0},
		{Servers: 1, Mu: 1, Lambda: 0.5, ArrivalCV2: 1, ServiceCV2: 1, Samples: 1, Warmup: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestDESMatchesErlangCForMMm(t *testing.T) {
	// Ground truth check: with exponential arrivals and services the DES
	// must reproduce the exact M/M/m mean response time.
	for _, tc := range []struct {
		servers int
		rho     float64
	}{
		{1, 0.7}, {4, 0.8}, {16, 0.9},
	} {
		m := Model{Mu: 1, K: 1}
		lambda := tc.rho * float64(tc.servers)
		cfg := DESConfig{
			Servers: tc.servers, Mu: 1, Lambda: lambda,
			ArrivalCV2: 1, ServiceCV2: 1,
			Warmup: 20000, Samples: 200000, Seed: 42,
		}
		res, err := SimulateGGm(cfg)
		if err != nil {
			t.Fatal(err)
		}
		exact, err := m.ResponseTimeMMm(lambda, tc.servers)
		if err != nil {
			t.Fatal(err)
		}
		rel := math.Abs(res.MeanResponse-exact) / exact
		if rel > 0.05 {
			t.Errorf("m=%d ρ=%v: DES %v vs exact %v (rel %.3f)",
				tc.servers, tc.rho, res.MeanResponse, exact, rel)
		}
		if math.Abs(res.Utilization-tc.rho) > 0.03 {
			t.Errorf("m=%d: measured utilization %v, want %v", tc.servers, res.Utilization, tc.rho)
		}
	}
}

func TestDESValidatesAllenCunneenGGm(t *testing.T) {
	// The headline validation: for non-exponential traffic the paper's
	// G/G/m approximation must track the simulated truth within ~20% in the
	// regime the local optimizer operates in (high utilization).
	cases := []struct {
		servers                int
		rho, arrivCV2, servCV2 float64
	}{
		{4, 0.85, 0.5, 0.5},
		{8, 0.9, 2.0, 1.0},
		{16, 0.9, 1.5, 2.0},
		{32, 0.92, 0.7, 1.3},
	}
	for _, tc := range cases {
		lambda := tc.rho * float64(tc.servers)
		cfg := DESConfig{
			Servers: tc.servers, Mu: 1, Lambda: lambda,
			ArrivalCV2: tc.arrivCV2, ServiceCV2: tc.servCV2,
			Warmup: 20000, Samples: 200000, Seed: 7,
		}
		res, err := SimulateGGm(cfg)
		if err != nil {
			t.Fatal(err)
		}
		m := Model{Mu: 1, K: (tc.arrivCV2 + tc.servCV2) / 2}
		approx := m.ResponseTimeFull(lambda, tc.servers)
		rel := math.Abs(approx-res.MeanResponse) / res.MeanResponse
		if rel > 0.20 {
			t.Errorf("m=%d ρ=%v cv=(%v,%v): A-C %v vs DES %v (rel %.3f)",
				tc.servers, tc.rho, tc.arrivCV2, tc.servCV2, approx, res.MeanResponse, rel)
		}
	}
}

func TestGammaSamplerMoments(t *testing.T) {
	// The gamma sampler must reproduce the requested mean and CV².
	rngSeed := int64(123)
	for _, cv2 := range []float64{0.3, 1.0, 2.5} {
		cfg := DESConfig{Servers: 1, Mu: 1, Lambda: 0.5, ArrivalCV2: cv2, ServiceCV2: 1, Samples: 1}
		_ = cfg
		rng := newTestRand(rngSeed)
		sample := gammaSampler(2.0, cv2, rng)
		n := 200000
		sum, sumsq := 0.0, 0.0
		for i := 0; i < n; i++ {
			v := sample()
			sum += v
			sumsq += v * v
		}
		mean := sum / float64(n)
		variance := sumsq/float64(n) - mean*mean
		gotCV2 := variance / (mean * mean)
		if math.Abs(mean-2)/2 > 0.02 {
			t.Errorf("cv2=%v: mean %v, want 2", cv2, mean)
		}
		if math.Abs(gotCV2-cv2)/cv2 > 0.05 {
			t.Errorf("cv2=%v: measured CV² %v", cv2, gotCV2)
		}
	}
}

// newTestRand builds a deterministic source for sampler tests.
func newTestRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

package queueing

import (
	"container/heap"
	"fmt"
	"math"
	"math/rand"
)

// DESConfig parameterizes a discrete-event simulation of a G/G/m queue,
// used to validate the Allen–Cunneen approximation against ground truth.
// Inter-arrival and service times are gamma-distributed with the requested
// squared coefficients of variation (gamma covers CV² above and below 1,
// with CV² = 1 reducing to the exponential).
type DESConfig struct {
	Servers int
	// Mu is the per-server service rate; Lambda the arrival rate. Any
	// consistent time unit works — only the ratio matters.
	Mu, Lambda float64
	// ArrivalCV2 and ServiceCV2 are the squared coefficients of variation.
	ArrivalCV2, ServiceCV2 float64
	// Warmup arrivals are discarded; Samples arrivals are measured.
	Warmup, Samples int
	Seed            int64
}

// Validate reports the first configuration error.
func (c DESConfig) Validate() error {
	switch {
	case c.Servers < 1:
		return fmt.Errorf("queueing: DES servers %d", c.Servers)
	case c.Mu <= 0 || c.Lambda <= 0:
		return fmt.Errorf("queueing: DES rates λ=%v µ=%v", c.Lambda, c.Mu)
	case c.Lambda >= float64(c.Servers)*c.Mu:
		return fmt.Errorf("queueing: DES unstable (ρ ≥ 1)")
	case c.ArrivalCV2 <= 0 || c.ServiceCV2 <= 0:
		return fmt.Errorf("queueing: DES CV² must be positive")
	case c.Samples < 1 || c.Warmup < 0:
		return fmt.Errorf("queueing: DES samples %d warmup %d", c.Samples, c.Warmup)
	}
	return nil
}

// DESResult summarizes one simulation run.
type DESResult struct {
	// MeanResponse is the average sojourn time (wait + service) in the same
	// time unit as 1/Mu.
	MeanResponse float64
	// MeanWait is the average queueing delay.
	MeanWait float64
	// Utilization is the measured busy fraction per server.
	Utilization float64
}

// completionHeap orders in-service completion times.
type completionHeap []float64

func (h completionHeap) Len() int            { return len(h) }
func (h completionHeap) Less(i, j int) bool  { return h[i] < h[j] }
func (h completionHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *completionHeap) Push(x interface{}) { *h = append(*h, x.(float64)) }
func (h *completionHeap) Pop() interface{} {
	old := *h
	n := len(old)
	v := old[n-1]
	*h = old[:n-1]
	return v
}

// SimulateGGm runs the discrete-event simulation and returns measured
// steady-state statistics.
func SimulateGGm(cfg DESConfig) (DESResult, error) {
	if err := cfg.Validate(); err != nil {
		return DESResult{}, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	interArrival := gammaSampler(1/cfg.Lambda, cfg.ArrivalCV2, rng)
	service := gammaSampler(1/cfg.Mu, cfg.ServiceCV2, rng)

	// FIFO G/G/m with identical servers: a request entering service picks
	// any idle server, so only the multiset of busy-until times matters.
	busy := &completionHeap{}
	var (
		clock     float64
		busyArea  float64 // ∫ (#busy servers) dt
		lastEvent float64
		sumResp   float64
		sumWait   float64
		measured  int
	)
	total := cfg.Warmup + cfg.Samples
	advance := func(to float64) {
		busyArea += float64(busy.Len()) * (to - lastEvent)
		lastEvent = to
	}
	measureFrom := cfg.Warmup
	arrivalsSeen := 0
	nextArrival := interArrival()
	type waiting struct {
		at    float64
		index int
	}
	var fifo []waiting

	for arrivalsSeen < total || len(fifo) > 0 || busy.Len() > 0 {
		// Next event: arrival or earliest completion.
		nextCompletion := math.Inf(1)
		if busy.Len() > 0 {
			nextCompletion = (*busy)[0]
		}
		arrivalPending := arrivalsSeen < total
		if arrivalPending && nextArrival <= nextCompletion {
			clock = nextArrival
			advance(clock)
			idx := arrivalsSeen
			arrivalsSeen++
			nextArrival = clock + interArrival()
			if busy.Len() < cfg.Servers {
				s := service()
				heap.Push(busy, clock+s)
				if idx >= measureFrom && idx < measureFrom+cfg.Samples {
					sumResp += s
					measured++
				}
			} else {
				fifo = append(fifo, waiting{at: clock, index: idx})
			}
			continue
		}
		if busy.Len() == 0 {
			break // no completions pending and no arrivals left
		}
		clock = nextCompletion
		advance(clock) // integrate busy time BEFORE freeing the server
		heap.Pop(busy)
		if len(fifo) > 0 {
			w := fifo[0]
			fifo = fifo[1:]
			s := service()
			heap.Push(busy, clock+s)
			if w.index >= measureFrom && w.index < measureFrom+cfg.Samples {
				wait := clock - w.at
				sumWait += wait
				sumResp += wait + s
				measured++
			}
		}
	}
	if measured == 0 {
		return DESResult{}, fmt.Errorf("queueing: DES measured no samples")
	}
	util := 0.0
	if clock > 0 {
		util = busyArea / (clock * float64(cfg.Servers))
	}
	return DESResult{
		MeanResponse: sumResp / float64(measured),
		MeanWait:     sumWait / float64(measured),
		Utilization:  util,
	}, nil
}

// gammaSampler returns a sampler of gamma variates with the given mean and
// squared coefficient of variation (shape k = 1/cv², scale = mean·cv²).
func gammaSampler(mean, cv2 float64, rng *rand.Rand) func() float64 {
	k := 1 / cv2
	scale := mean * cv2
	return func() float64 { return scale * gammaRand(k, rng) }
}

// gammaRand draws a Gamma(k, 1) variate by Marsaglia–Tsang, with the k < 1
// boost.
func gammaRand(k float64, rng *rand.Rand) float64 {
	if k < 1 {
		// Gamma(k) = Gamma(k+1) · U^{1/k}.
		return gammaRand(k+1, rng) * math.Pow(rng.Float64(), 1/k)
	}
	d := k - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := rng.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := rng.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

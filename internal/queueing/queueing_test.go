package queueing

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func near(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// dc1 mirrors the paper's Data Center 1: 500 req/s per server.
func dc1() Model { return Model{Mu: 500 * 3600, K: 1.0} }

func TestValidate(t *testing.T) {
	if err := dc1().Validate(); err != nil {
		t.Errorf("valid model rejected: %v", err)
	}
	if err := (Model{Mu: 0, K: 1}).Validate(); err == nil {
		t.Error("zero mu accepted")
	}
	if err := (Model{Mu: 1, K: 0}).Validate(); err == nil {
		t.Error("zero K accepted")
	}
}

func TestResponseTimeStability(t *testing.T) {
	m := dc1()
	if r := m.ResponseTime(1e9, 100); !math.IsInf(r, 1) {
		t.Errorf("overloaded system returned finite response time %v", r)
	}
	if r := m.ResponseTime(100, 0); !math.IsInf(r, 1) {
		t.Errorf("zero servers returned finite response time %v", r)
	}
	// Lightly loaded: response time close to service time 1/µ.
	r := m.ResponseTime(m.Mu/2, 10)
	if r < 1/m.Mu || r > 2/m.Mu {
		t.Errorf("light-load response time %v out of (1/µ, 2/µ)", r)
	}
}

func TestResponseTimeMonotonicInServers(t *testing.T) {
	m := dc1()
	lambda := 50 * m.Mu
	prev := math.Inf(1)
	for n := 51; n < 70; n++ {
		r := m.ResponseTime(lambda, n)
		if r > prev+1e-15 {
			t.Errorf("response time increased with servers at n=%d: %v -> %v", n, prev, r)
		}
		prev = r
	}
}

func TestMinServersMeetsSLA(t *testing.T) {
	m := dc1()
	rs := 3 / m.Mu // three service times
	for _, lambda := range []float64{0, 1, m.Mu, 10.5 * m.Mu, 1e8} {
		n, err := m.MinServers(lambda, rs)
		if err != nil {
			t.Fatalf("MinServers(%v): %v", lambda, err)
		}
		if r := m.ResponseTime(lambda, n); r > rs+1e-12 {
			t.Errorf("λ=%v: n=%d gives R=%v > Rs=%v", lambda, n, r, rs)
		}
		if n > 1 {
			if r := m.ResponseTime(lambda, n-1); r <= rs-1e-9*rs {
				t.Errorf("λ=%v: n-1=%d already meets the SLA (R=%v ≤ %v); n not minimal", lambda, n-1, r, rs)
			}
		}
	}
}

func TestMinServersInfeasibleSLA(t *testing.T) {
	m := dc1()
	if _, err := m.MinServers(100, 0.5/m.Mu); err == nil {
		t.Error("SLA below service time accepted")
	}
	if _, err := m.MinServers(-5, 3/m.Mu); err == nil {
		t.Error("negative arrival rate accepted")
	}
}

func TestServerCoefficientsMatchFrac(t *testing.T) {
	m := dc1()
	rs := 2.5 / m.Mu
	alpha, beta, err := m.ServerCoefficients(rs)
	if err != nil {
		t.Fatal(err)
	}
	for _, lambda := range []float64{0, 1e5, 3e8} {
		frac, err := m.MinServersFrac(lambda, rs)
		if err != nil {
			t.Fatal(err)
		}
		if !near(frac, alpha*lambda+beta, 1e-9*(1+frac)) {
			t.Errorf("λ=%v: frac %v != affine %v", lambda, frac, alpha*lambda+beta)
		}
	}
}

func TestFullModelUpperBoundedBySimplified(t *testing.T) {
	// ρ^√(2(n+1)) ≤ 1 for ρ ≤ 1, so the full model never exceeds the
	// simplified one in the stable region.
	m := Model{Mu: 1000, K: 1.3}
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(500)
		lambda := r.Float64() * 0.999 * float64(n) * m.Mu
		simple := m.ResponseTime(lambda, n)
		full := m.ResponseTimeFull(lambda, n)
		return full <= simple+1e-12
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func TestUtilization(t *testing.T) {
	m := dc1()
	if u := m.Utilization(m.Mu*5, 10); !near(u, 0.5, 1e-12) {
		t.Errorf("utilization = %v, want 0.5", u)
	}
	if u := m.Utilization(m.Mu*100, 10); u != 1 {
		t.Errorf("overload utilization = %v, want clamp to 1", u)
	}
	if u := m.Utilization(-1, 10); u != 0 {
		t.Errorf("negative utilization = %v, want 0", u)
	}
	if u := m.Utilization(5, 0); u != 0 {
		t.Errorf("zero-server utilization = %v, want 0", u)
	}
}

func TestMaxThroughputRoundTrip(t *testing.T) {
	m := dc1()
	rs := 3 / m.Mu
	maxServers := 1000
	lam, err := m.MaxThroughput(maxServers, rs)
	if err != nil {
		t.Fatal(err)
	}
	// The max throughput must itself require no more than maxServers.
	n, err := m.MinServers(lam, rs)
	if err != nil {
		t.Fatal(err)
	}
	if n > maxServers {
		t.Errorf("MaxThroughput %v needs %d servers > %d", lam, n, maxServers)
	}
	// Slightly more load must exceed the fleet.
	n2, err := m.MinServers(lam*1.01, rs)
	if err != nil {
		t.Fatal(err)
	}
	if n2 <= maxServers {
		t.Errorf("1%% above MaxThroughput still fits: n=%d", n2)
	}
}

func TestMinServersPropertyRandom(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := Model{Mu: 100 + r.Float64()*1e6, K: 0.2 + r.Float64()*3}
		rs := (1 + 5*r.Float64()) / m.Mu * 2
		lambda := r.Float64() * 1e8
		n, err := m.MinServers(lambda, rs)
		if err != nil {
			// Only acceptable when the SLA is genuinely unachievable.
			return rs <= 1/m.Mu
		}
		return m.ResponseTime(lambda, n) <= rs+1e-12
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

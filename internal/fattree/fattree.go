// Package fattree models the k-ary fat-tree data center network topology
// (Al-Fares et al., SIGCOMM 2008; paper §IV-B) and the number of switches
// that must stay powered for a given count of active, consolidated servers
// (ElasticTree-style right-sizing, paper ref. [4]).
//
// A k-ary fat-tree has k pods; each pod holds k/2 edge switches and k/2
// aggregation switches; (k/2)² core switches join the pods; each edge switch
// serves k/2 hosts, for a total capacity of k³/4 hosts.
package fattree

import (
	"fmt"
	"math"
)

// Topology is a k-ary fat tree.
type Topology struct {
	K int // pod parameter; must be even and ≥ 2
}

// New validates and returns a k-ary fat tree.
func New(k int) (Topology, error) {
	if k < 2 || k%2 != 0 {
		return Topology{}, fmt.Errorf("fattree: k must be even and >= 2, got %d", k)
	}
	return Topology{K: k}, nil
}

// ForHosts returns the smallest valid fat tree able to attach at least the
// given number of hosts.
func ForHosts(hosts int) (Topology, error) {
	if hosts < 1 {
		return Topology{}, fmt.Errorf("fattree: need at least 1 host, got %d", hosts)
	}
	k := 2
	for k*k*k/4 < hosts {
		k += 2
	}
	return Topology{K: k}, nil
}

// Capacity returns the maximum number of hosts, k³/4.
func (t Topology) Capacity() int { return t.K * t.K * t.K / 4 }

// TotalEdge returns the total number of edge switches, k²/2.
func (t Topology) TotalEdge() int { return t.K * t.K / 2 }

// TotalAgg returns the total number of aggregation switches, k²/2.
func (t Topology) TotalAgg() int { return t.K * t.K / 2 }

// TotalCore returns the total number of core switches, (k/2)².
func (t Topology) TotalCore() int { return (t.K / 2) * (t.K / 2) }

// HostsPerEdge returns the number of hosts attached to one edge switch, k/2.
func (t Topology) HostsPerEdge() int { return t.K / 2 }

// HostsPerPod returns the number of hosts in one pod, k²/4.
func (t Topology) HostsPerPod() int { return t.K * t.K / 4 }

// ActiveSwitches holds the switch counts that must be powered.
type ActiveSwitches struct {
	Edge, Agg, Core int
}

// Active returns the switch counts required when n servers are active and
// consolidated onto the fewest pods/racks (the paper's assumption that a
// local optimizer packs load):
//
//   - edge: ceil(n / (k/2)) — one per filled rack,
//   - agg:  (k/2) per active pod — intra-pod fabric stays up,
//   - core: a proportional share of the core layer, at least one switch
//     whenever any server is active.
//
// n is clamped to [0, Capacity].
func (t Topology) Active(n int) ActiveSwitches {
	if n <= 0 {
		return ActiveSwitches{}
	}
	if c := t.Capacity(); n > c {
		n = c
	}
	half := t.K / 2
	edge := ceilDiv(n, half)
	pods := ceilDiv(n, t.HostsPerPod())
	agg := pods * half
	core := int(math.Ceil(float64(t.TotalCore()) * float64(n) / float64(t.Capacity())))
	if core < 1 {
		core = 1
	}
	return ActiveSwitches{Edge: edge, Agg: agg, Core: core}
}

// Rates returns the continuous per-server switch rates (edge, agg, core)
// used by the affine optimizer model: 2/k, 2/k and 1/k switches per active
// server respectively. Integrality and the per-pod step of the discrete
// Active model are absorbed by the simulator's re-evaluation.
func (t Topology) Rates() (edge, agg, core float64) {
	k := float64(t.K)
	return 2 / k, 2 / k, 1 / k
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

package fattree

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(3); err == nil {
		t.Error("odd k accepted")
	}
	if _, err := New(0); err == nil {
		t.Error("k=0 accepted")
	}
	tp, err := New(4)
	if err != nil {
		t.Fatal(err)
	}
	if tp.Capacity() != 16 {
		t.Errorf("k=4 capacity = %d, want 16", tp.Capacity())
	}
}

func TestCanonicalK4Counts(t *testing.T) {
	// The textbook k=4 fat tree: 16 hosts, 8 edge, 8 agg, 4 core.
	tp, _ := New(4)
	if tp.TotalEdge() != 8 || tp.TotalAgg() != 8 || tp.TotalCore() != 4 {
		t.Errorf("k=4 totals = %d/%d/%d, want 8/8/4",
			tp.TotalEdge(), tp.TotalAgg(), tp.TotalCore())
	}
	if tp.HostsPerEdge() != 2 || tp.HostsPerPod() != 4 {
		t.Errorf("k=4 hosts per edge/pod = %d/%d, want 2/4", tp.HostsPerEdge(), tp.HostsPerPod())
	}
}

func TestForHosts(t *testing.T) {
	cases := []struct{ hosts, wantK int }{
		{1, 2}, {2, 2}, {3, 4}, {16, 4}, {17, 6}, {54, 6}, {55, 8},
		{300000, 108}, {700000, 142},
	}
	for _, c := range cases {
		tp, err := ForHosts(c.hosts)
		if err != nil {
			t.Fatalf("ForHosts(%d): %v", c.hosts, err)
		}
		if tp.K != c.wantK {
			t.Errorf("ForHosts(%d).K = %d, want %d", c.hosts, tp.K, c.wantK)
		}
		if tp.Capacity() < c.hosts {
			t.Errorf("ForHosts(%d) capacity %d too small", c.hosts, tp.Capacity())
		}
	}
	if _, err := ForHosts(0); err == nil {
		t.Error("ForHosts(0) accepted")
	}
}

func TestActiveEdgeCases(t *testing.T) {
	tp, _ := New(4)
	if a := tp.Active(0); a != (ActiveSwitches{}) {
		t.Errorf("Active(0) = %+v, want zero", a)
	}
	full := tp.Active(tp.Capacity())
	if full.Edge != tp.TotalEdge() || full.Agg != tp.TotalAgg() || full.Core != tp.TotalCore() {
		t.Errorf("Active(capacity) = %+v, want all switches %d/%d/%d",
			full, tp.TotalEdge(), tp.TotalAgg(), tp.TotalCore())
	}
	// Overload clamps.
	if over := tp.Active(10 * tp.Capacity()); over != full {
		t.Errorf("Active(overload) = %+v, want %+v", over, full)
	}
	// One active server still needs one edge, the pod's agg layer, one core.
	one := tp.Active(1)
	if one.Edge != 1 || one.Agg != 2 || one.Core != 1 {
		t.Errorf("Active(1) = %+v, want {1 2 1}", one)
	}
}

func TestActiveMonotoneAndBounded(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		k := 2 * (1 + r.Intn(20)) // even 2..40
		tp, err := New(k)
		if err != nil {
			return false
		}
		n1 := r.Intn(tp.Capacity() + 1)
		n2 := r.Intn(tp.Capacity() + 1)
		if n1 > n2 {
			n1, n2 = n2, n1
		}
		a1, a2 := tp.Active(n1), tp.Active(n2)
		if a1.Edge > a2.Edge || a1.Agg > a2.Agg || a1.Core > a2.Core {
			return false
		}
		return a2.Edge <= tp.TotalEdge() && a2.Agg <= tp.TotalAgg() && a2.Core <= tp.TotalCore()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestRatesApproximateDiscreteCounts(t *testing.T) {
	// For large n the affine rates must track the discrete counts closely.
	tp, _ := New(48)
	e, a, c := tp.Rates()
	n := tp.Capacity() * 3 / 4
	act := tp.Active(n)
	fe, fa, fc := e*float64(n), a*float64(n), c*float64(n)
	// Edge and core are tight; agg steps per-pod so allow one pod of slack.
	if diff := float64(act.Edge) - fe; diff < 0 || diff > 1 {
		t.Errorf("edge: discrete %d vs affine %v", act.Edge, fe)
	}
	if diff := float64(act.Agg) - fa; diff < 0 || diff > float64(tp.K/2) {
		t.Errorf("agg: discrete %d vs affine %v", act.Agg, fa)
	}
	if diff := float64(act.Core) - fc; diff < 0 || diff > 1 {
		t.Errorf("core: discrete %d vs affine %v", act.Core, fc)
	}
}

package lp

import (
	"math"
	"sort"
)

// luFactor is a sparse LU factorization of the basis matrix B with partial
// pivoting, plus a product-form eta file recording the basis changes since
// the factorization was last rebuilt: B = B₀·E₁·E₂·…·E_t where B₀ = P⁻¹L·U
// (up to the column ordering chosen for fill reduction) and each E is an
// identity matrix whose column p is the FTRANed entering column ã. FTRAN and
// BTRAN apply the eta file around the triangular solves; refactorization
// collapses the file back into a fresh LU (see refactorEvery).
//
// The LU arrays are immutable after factorize, so concurrent solvers — the
// per-worker warm-start clones of the parallel branch and bound — can share
// one factor as long as each clone takes the eta slice with a clamped
// capacity (clone) so its appends reallocate instead of aliasing. All dense
// scratch lives in the calling solver, never in the factor.
type luFactor struct {
	m int

	pivRow   []int // elimination step k → original row pivoted
	rowPos   []int // inverse permutation: original row → elimination step
	colOrder []int // elimination step k → basis position factored at step k
	diag     []float64

	// L columns in elimination order; the unit diagonal is implicit and the
	// entries sit at original row indices (rows not yet pivoted at step k).
	lColPtr []int
	lRow    []int
	lVal    []float64

	// U columns in elimination order; entries are (earlier step j, value).
	uColPtr []int
	uIdx    []int
	uVal    []float64

	etas []eta
}

// eta is one product-form basis update: position p was replaced by a column
// whose FTRANed form had value diag at p and val[k] at idx[k] (≠ p).
type eta struct {
	p    int
	diag float64
	idx  []int
	val  []float64
}

// clone shares the immutable LU arrays but clamps the eta slice's capacity so
// the clone's appends always reallocate. Cheap enough to run per B&B worker.
func (f *luFactor) clone() *luFactor {
	g := *f
	g.etas = f.etas[:len(f.etas):len(f.etas)]
	return &g
}

// factorize builds the LU of the basis columns basis[0..m-1] of pr using
// left-looking column elimination with partial pivoting and a dense work
// vector. Columns are processed in ascending-nonzero-count order, a cheap
// static fill reducer that handles the hour model's dense coupling rows
// (budget, Σλ) last. Returns ok == false when the basis is numerically
// singular.
func factorize(pr *revProblem, basis []int) (*luFactor, bool) {
	m := pr.m
	f := &luFactor{
		m:        m,
		pivRow:   make([]int, m),
		rowPos:   make([]int, m),
		colOrder: make([]int, m),
		diag:     make([]float64, m),
		lColPtr:  make([]int, 1, m+1),
		uColPtr:  make([]int, 1, m+1),
	}
	for i := range f.rowPos {
		f.rowPos[i] = -1
	}
	for k := range f.colOrder {
		f.colOrder[k] = k
	}
	sort.SliceStable(f.colOrder, func(a, b int) bool {
		na, nb := pr.colNNZ(basis[f.colOrder[a]]), pr.colNNZ(basis[f.colOrder[b]])
		if na != nb {
			return na < nb
		}
		return f.colOrder[a] < f.colOrder[b]
	})

	work := make([]float64, m)
	seen := make([]bool, m)
	touched := make([]int, 0, m)
	touch := func(i int) {
		if !seen[i] {
			seen[i] = true
			touched = append(touched, i)
		}
	}

	for k := 0; k < m; k++ {
		pr.colEach(basis[f.colOrder[k]], func(i int, v float64) {
			touch(i)
			work[i] = v
		})
		// Left-looking elimination: for each earlier pivot in order, the
		// value sitting in its pivot row is this column's U entry; eliminate
		// it through that pivot's L column.
		for j := 0; j < k; j++ {
			xj := work[f.pivRow[j]]
			if xj == 0 {
				continue
			}
			f.uIdx = append(f.uIdx, j)
			f.uVal = append(f.uVal, xj)
			for e := f.lColPtr[j]; e < f.lColPtr[j+1]; e++ {
				i := f.lRow[e]
				touch(i)
				work[i] -= f.lVal[e] * xj
			}
		}
		f.uColPtr = append(f.uColPtr, len(f.uIdx))

		pivot, best := -1, 0.0
		for _, i := range touched {
			if f.rowPos[i] >= 0 {
				continue
			}
			if a := math.Abs(work[i]); a > best {
				best, pivot = a, i
			}
		}
		if pivot < 0 || best < 1e-10 {
			return nil, false // singular basis
		}
		f.pivRow[k] = pivot
		f.rowPos[pivot] = k
		f.diag[k] = work[pivot]
		inv := 1 / work[pivot]
		for _, i := range touched {
			if f.rowPos[i] >= 0 {
				continue
			}
			if v := work[i]; v != 0 {
				f.lRow = append(f.lRow, i)
				f.lVal = append(f.lVal, v*inv)
			}
		}
		f.lColPtr = append(f.lColPtr, len(f.lRow))
		for _, i := range touched {
			work[i] = 0
			seen[i] = false
		}
		touched = touched[:0]
	}
	return f, true
}

// ftran solves B z = x in place: x arrives as a dense row-space vector and
// leaves as the dense basis-position-space solution. w is caller scratch of
// length m.
func (f *luFactor) ftran(x, w []float64) {
	m := f.m
	for k := 0; k < m; k++ {
		xk := x[f.pivRow[k]]
		if xk != 0 {
			for e := f.lColPtr[k]; e < f.lColPtr[k+1]; e++ {
				x[f.lRow[e]] -= f.lVal[e] * xk
			}
		}
		w[k] = xk
	}
	for k := m - 1; k >= 0; k-- {
		zk := w[k]
		if zk != 0 {
			zk /= f.diag[k]
			for e := f.uColPtr[k]; e < f.uColPtr[k+1]; e++ {
				w[f.uIdx[e]] -= f.uVal[e] * zk
			}
		}
		w[k] = zk
	}
	for k := 0; k < m; k++ {
		x[f.colOrder[k]] = w[k]
	}
	// Eta file: B = B₀E₁…E_t, so B⁻¹ applies the eta inverses in order after
	// the LU solve. Solving E u = z: u_p = z_p/ã_p, u_i = z_i − ã_i·u_p.
	for t := range f.etas {
		e := &f.etas[t]
		u := x[e.p] / e.diag
		if u != 0 {
			for k, i := range e.idx {
				x[i] -= e.val[k] * u
			}
		}
		x[e.p] = u
	}
}

// btran solves Bᵀ y = c in place: c arrives as a dense basis-position-space
// vector and leaves as the dense row-space solution. w is caller scratch of
// length m.
func (f *luFactor) btran(c, w []float64) {
	// Eta transposes peel off in reverse order: solving Eᵀu = c leaves all
	// entries but p unchanged and u_p = (c_p − Σ_{i≠p} ã_i·c_i)/ã_p.
	for t := len(f.etas) - 1; t >= 0; t-- {
		e := &f.etas[t]
		acc := c[e.p]
		for k, i := range e.idx {
			acc -= e.val[k] * c[i]
		}
		c[e.p] = acc / e.diag
	}
	m := f.m
	// Uᵀ g = c′ with c′[k] = c[colOrder[k]]: forward gather.
	for k := 0; k < m; k++ {
		acc := c[f.colOrder[k]]
		for e := f.uColPtr[k]; e < f.uColPtr[k+1]; e++ {
			acc -= f.uVal[e] * w[f.uIdx[e]]
		}
		w[k] = acc / f.diag[k]
	}
	// Lᵀ h = g: backward gather (L entries reference rows pivoted later, so
	// their elimination positions are already final).
	for k := m - 1; k >= 0; k-- {
		acc := w[k]
		for e := f.lColPtr[k]; e < f.lColPtr[k+1]; e++ {
			acc -= f.lVal[e] * w[f.rowPos[f.lRow[e]]]
		}
		w[k] = acc
	}
	for k := 0; k < m; k++ {
		c[f.pivRow[k]] = w[k]
	}
}

// update appends the product-form eta for replacing basis position p with a
// column whose FTRANed form is the dense position-space vector abar.
func (f *luFactor) update(p int, abar []float64) {
	e := eta{p: p, diag: abar[p]}
	for i, v := range abar {
		if i != p && math.Abs(v) > 1e-12 {
			e.idx = append(e.idx, i)
			e.val = append(e.val, v)
		}
	}
	f.etas = append(f.etas, e)
}

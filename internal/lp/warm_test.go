package lp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWarmStartBasic(t *testing.T) {
	// max 3x+5y s.t. x ≤ 4, 2y ≤ 12, 3x+2y ≤ 18; optimum 36 at (2,6).
	p := NewProblem()
	p.SetMaximize(true)
	x := p.AddVar("x", 3)
	y := p.AddVar("y", 5)
	p.AddConstraint([]Term{{Var: x, Coef: 1}}, LE, 4)
	p.AddConstraint([]Term{{Var: y, Coef: 2}}, LE, 12)
	p.AddConstraint([]Term{{Var: x, Coef: 3}, {Var: y, Coef: 2}}, LE, 18)
	w, root := p.SolveForWarmStart(Options{})
	if root.Status != Optimal || !near(root.Objective, 36, 1e-8) {
		t.Fatalf("root: %v obj=%v", root.Status, root.Objective)
	}
	// Branch x ≤ 1: optimum becomes 3 + 5·6 = 33.
	s := w.ReSolve([]ExtraRow{{Terms: []Term{{Var: x, Coef: 1}}, Rel: LE, RHS: 1}})
	if s.Status != Optimal || !near(s.Objective, 33, 1e-8) {
		t.Fatalf("x≤1: %v obj=%v, want 33", s.Status, s.Objective)
	}
	// Branch x ≥ 3: y ≤ (18−9)/2 = 4.5 → 9 + 22.5 = 31.5.
	s = w.ReSolve([]ExtraRow{{Terms: []Term{{Var: x, Coef: 1}}, Rel: GE, RHS: 3}})
	if s.Status != Optimal || !near(s.Objective, 31.5, 1e-8) {
		t.Fatalf("x≥3: %v obj=%v, want 31.5", s.Status, s.Objective)
	}
	// Contradictory bounds → infeasible.
	s = w.ReSolve([]ExtraRow{
		{Terms: []Term{{Var: x, Coef: 1}}, Rel: GE, RHS: 3},
		{Terms: []Term{{Var: x, Coef: 1}}, Rel: LE, RHS: 2},
	})
	if s.Status != Infeasible {
		t.Fatalf("contradiction: %v, want infeasible", s.Status)
	}
	// No extra rows → the root solution itself.
	s = w.ReSolve(nil)
	if !near(s.Objective, 36, 1e-9) {
		t.Fatalf("empty extra: obj=%v", s.Objective)
	}
}

func TestWarmStartOnInfeasibleBase(t *testing.T) {
	p := NewProblem()
	x := p.AddVar("x", 1)
	p.AddConstraint([]Term{{Var: x, Coef: 1}}, GE, 5)
	p.AddConstraint([]Term{{Var: x, Coef: 1}}, LE, 3)
	w, sol := p.SolveForWarmStart(Options{})
	if w != nil || sol.Status != Infeasible {
		t.Fatalf("got warm start %v, status %v for infeasible base", w != nil, sol.Status)
	}
}

func TestWarmStartWithEqualityBase(t *testing.T) {
	// Base problem uses EQ rows (artificials in the tableau); warm restarts
	// must keep them barred.
	p := NewProblem()
	x := p.AddVar("x", 2)
	y := p.AddVar("y", 3)
	p.AddConstraint([]Term{{Var: x, Coef: 1}, {Var: y, Coef: 1}}, EQ, 10)
	p.AddConstraint([]Term{{Var: x, Coef: 1}, {Var: y, Coef: -1}}, LE, 2)
	w, root := p.SolveForWarmStart(Options{})
	if root.Status != Optimal || !near(root.Objective, 24, 1e-8) {
		t.Fatalf("root: %v obj=%v", root.Status, root.Objective)
	}
	// Add y ≥ 7: x = 3, y = 7 → 6+21 = 27.
	s := w.ReSolve([]ExtraRow{{Terms: []Term{{Var: y, Coef: 1}}, Rel: GE, RHS: 7}})
	if s.Status != Optimal || !near(s.Objective, 27, 1e-8) {
		t.Fatalf("y≥7: %v obj=%v, want 27", s.Status, s.Objective)
	}
	if v := p.CheckFeasible(s.X, 1e-7); len(v) != 0 {
		t.Fatalf("warm solution violates base rows: %v", v)
	}
}

// TestWarmStartClone verifies that a clone answers identically to its
// original and that heavy use of either leaves the other's state intact —
// the property the parallel branch-and-bound workers rely on. Both cores are
// exercised; the deep-copy probe pokes whichever state the core records.
func TestWarmStartClone(t *testing.T) {
	for _, core := range []Core{CoreSparse, CoreDense} {
		t.Run(core.String(), func(t *testing.T) {
			p := NewProblem()
			p.SetMaximize(true)
			x := p.AddVar("x", 3)
			y := p.AddVar("y", 5)
			p.AddConstraint([]Term{{Var: x, Coef: 1}}, LE, 4)
			p.AddConstraint([]Term{{Var: y, Coef: 2}}, LE, 12)
			p.AddConstraint([]Term{{Var: x, Coef: 3}, {Var: y, Coef: 2}}, LE, 18)
			w, root := p.SolveForWarmStart(Options{Core: core})
			if root.Status != Optimal {
				t.Fatalf("root: %v", root.Status)
			}
			c := w.Clone()
			if c.Root().Objective != w.Root().Objective {
				t.Fatalf("clone root %v != original %v", c.Root().Objective, w.Root().Objective)
			}
			rows := []ExtraRow{{Terms: []Term{{Var: x, Coef: 1}}, Rel: LE, RHS: 1}}
			for i := 0; i < 50; i++ { // hammer the clone; the original must not notice
				if s := c.ReSolve(rows); s.Status != Optimal || !near(s.Objective, 33, 1e-8) {
					t.Fatalf("clone resolve %d: %v obj=%v", i, s.Status, s.Objective)
				}
			}
			if s := w.ReSolve(rows); s.Status != Optimal || !near(s.Objective, 33, 1e-8) {
				t.Fatalf("original after clone use: %v obj=%v", s.Status, s.Objective)
			}
			// The copies must be deep: mutating the clone's state may not leak.
			switch w.core {
			case CoreDense:
				c.base.a[0][0] += 1e3
				if w.base.a[0][0] == c.base.a[0][0] {
					t.Fatal("clone shares tableau storage with original")
				}
			case CoreSparse:
				c.rev.pr.hi[x] = 0.5
				c.rev.xB[0] += 1e3
				if w.rev.pr.hi[x] == 0.5 || w.rev.xB[0] == c.rev.xB[0] {
					t.Fatal("clone shares solver state with original")
				}
				if s := w.ReSolve(rows); s.Status != Optimal || !near(s.Objective, 33, 1e-8) {
					t.Fatalf("original after clone mutation: %v obj=%v", s.Status, s.Objective)
				}
			}
		})
	}
}

// TestWarmMatchesColdProperty re-solves random feasible LPs with random
// extra bound rows both warm and cold; statuses and objectives must agree.
func TestWarmMatchesColdProperty(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p, _ := randomFeasibleLP(r)
		w, root := p.SolveForWarmStart(Options{})
		if root.Status != Optimal {
			return true // nothing to warm-start; covered elsewhere
		}
		// 1-3 random single-variable bounds around the optimum.
		var extra []ExtraRow
		q := p.Clone()
		for k := 0; k < 1+r.Intn(3); k++ {
			v := r.Intn(p.NumVars())
			val := root.X[v]
			var row ExtraRow
			if r.Intn(2) == 0 {
				row = ExtraRow{Terms: []Term{{Var: v, Coef: 1}}, Rel: LE, RHS: math.Floor(val)}
			} else {
				row = ExtraRow{Terms: []Term{{Var: v, Coef: 1}}, Rel: GE, RHS: math.Ceil(val)}
			}
			extra = append(extra, row)
			q.AddConstraint(row.Terms, row.Rel, row.RHS)
		}
		warm := w.ReSolve(extra)
		cold := q.Solve()
		if warm.Status != cold.Status {
			t.Logf("seed %d: warm %v vs cold %v", seed, warm.Status, cold.Status)
			return false
		}
		if warm.Status != Optimal {
			return true
		}
		if !near(warm.Objective, cold.Objective, 1e-6*(1+math.Abs(cold.Objective))) {
			t.Logf("seed %d: warm obj %v vs cold %v", seed, warm.Objective, cold.Objective)
			return false
		}
		if v := q.CheckFeasible(warm.X, 1e-6); len(v) != 0 {
			t.Logf("seed %d: warm solution infeasible: %v", seed, v)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func TestWarmIsCheaperThanCold(t *testing.T) {
	// The point of warm starting: adding one bound row should cost far
	// fewer pivots than a cold two-phase solve on a nontrivial problem.
	r := rand.New(rand.NewSource(11))
	var warmPiv, coldPiv int
	for trial := 0; trial < 30; trial++ {
		p, _ := randomFeasibleLP(r)
		w, root := p.SolveForWarmStart(Options{})
		if root.Status != Optimal || p.NumVars() == 0 {
			continue
		}
		v := r.Intn(p.NumVars())
		row := ExtraRow{Terms: []Term{{Var: v, Coef: 1}}, Rel: LE, RHS: root.X[v] / 2}
		warm := w.ReSolve([]ExtraRow{row})
		q := p.Clone()
		q.AddConstraint(row.Terms, row.Rel, row.RHS)
		cold := q.Solve()
		if warm.Status == Optimal && cold.Status == Optimal {
			warmPiv += warm.Pivots
			coldPiv += cold.Pivots
		}
	}
	if coldPiv == 0 {
		t.Skip("no optimal pairs")
	}
	if warmPiv*2 >= coldPiv {
		t.Errorf("warm pivots %d not well below cold %d", warmPiv, coldPiv)
	}
}

package lp

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// transportLP builds a small mixed LE/GE/EQ problem whose structure stays
// fixed while supply/demand numbers move — the shape of one capper hour.
func transportLP(supply1, supply2, demand float64) *Problem {
	p := NewProblem()
	x1 := p.AddVar("x1", 3)
	x2 := p.AddVar("x2", 5)
	p.AddConstraint([]Term{{Var: x1, Coef: 1}}, LE, supply1)
	p.AddConstraint([]Term{{Var: x2, Coef: 1}}, LE, supply2)
	p.AddConstraint([]Term{{Var: x1, Coef: 1}, {Var: x2, Coef: 1}}, EQ, demand)
	p.AddConstraint([]Term{{Var: x1, Coef: 2}, {Var: x2, Coef: 1}}, GE, demand/2)
	return p
}

func TestCrashBasisReproducesColdOptimum(t *testing.T) {
	base := transportLP(10, 10, 12)
	w, root := base.SolveForWarmStart(Options{})
	if root.Status != Optimal {
		t.Fatalf("base: %v", root.Status)
	}
	basis := w.Basis()

	// Next "hour": same structure, shifted numbers.
	next := transportLP(9, 11, 14)
	cold := next.Solve()
	warm := next.SolveWithOptions(Options{CrashBasis: basis})
	if cold.Status != Optimal || warm.Status != Optimal {
		t.Fatalf("cold %v warm %v", cold.Status, warm.Status)
	}
	if !near(cold.Objective, warm.Objective, 1e-9*(1+cold.Objective)) {
		t.Errorf("warm objective %v != cold %v", warm.Objective, cold.Objective)
	}
	if res := next.CheckFeasible(warm.X, 1e-8); len(res) != 0 {
		t.Errorf("warm solution infeasible: %v", res)
	}
}

func TestCrashBasisInvalidFallsBack(t *testing.T) {
	p := transportLP(10, 10, 12)
	want := p.Solve()
	for name, basis := range map[string][]int{
		"wrong length": {0},
		"out of range": {0, 1, 99, 3},
		"duplicates":   {0, 0, 0, 0},
		"all slacks":   {2, 3, 4, 5},
	} {
		got := p.SolveWithOptions(Options{CrashBasis: basis})
		if got.Status != Optimal || !near(got.Objective, want.Objective, 1e-9) {
			t.Errorf("%s: status %v obj %v, want optimal %v", name, got.Status, got.Objective, want.Objective)
		}
	}
}

func TestCrashBasisPropertyRandom(t *testing.T) {
	// Solve a random LP, then re-solve a perturbed instance of the same
	// structure both cold and crashed from the first optimum. The crashed
	// answer must agree with the cold one bit-for-status and near-exactly in
	// objective whenever both are optimal.
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nv := 2 + rng.Intn(4)
		nc := 2 + rng.Intn(4)
		build := func(delta float64) *Problem {
			r := rand.New(rand.NewSource(seed)) // identical structure per seed
			p := NewProblem()
			for v := 0; v < nv; v++ {
				p.AddVar("v", 1+r.Float64()*5)
			}
			for k := 0; k < nc; k++ {
				terms := make([]Term, nv)
				for v := 0; v < nv; v++ {
					terms[v] = Term{Var: v, Coef: r.Float64() * 4}
				}
				rel := LE
				if k%3 == 1 {
					rel = GE
				}
				rhs := 1 + r.Float64()*10
				if rel == GE {
					rhs = r.Float64() // keep GE rows satisfiable
				}
				p.AddConstraint(terms, rel, rhs+delta)
			}
			return p
		}
		base := build(0)
		w, root := base.SolveForWarmStart(Options{})
		if root.Status != Optimal {
			return true // nothing to warm-start from
		}
		next := build(0.1 + rng.Float64())
		cold := next.Solve()
		warm := next.SolveWithOptions(Options{CrashBasis: w.Basis()})
		if cold.Status != warm.Status {
			return false
		}
		if cold.Status != Optimal {
			return true
		}
		if len(next.CheckFeasible(warm.X, 1e-7)) != 0 {
			return false
		}
		return near(cold.Objective, warm.Objective, 1e-7*(1+absf(cold.Objective)))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func absf(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

package lp

import "math"

// Numerical tolerances for the simplex method. The models in this repository
// mix magnitudes from 1e-3 (response-time seconds) to 1e8 (requests/hour), so
// callers are expected to scale their formulations into a sane range; these
// tolerances then behave well.
const (
	pivotTol = 1e-9 // minimum magnitude for a pivot element
	zeroTol  = 1e-9 // reduced-cost / feasibility tolerance
)

// Solve runs the simplex method and returns the solution.
// The zero options value is ready to use.
func (p *Problem) Solve() Solution { return p.SolveWithOptions(Options{}) }

// Options tune the solver. The zero value uses sensible defaults.
type Options struct {
	// MaxPivots caps the total number of simplex iterations across both
	// phases. 0 means 200·(rows+columns)+5000, far above what these problems
	// need.
	MaxPivots int
	// CrashBasis, when non-empty, is a basis (basis column per row, as
	// returned by WarmStart.Basis from a structurally identical problem) to
	// crash into the fresh solve, skipping phase 1. A basis that does not fit
	// this problem's shape, violates its constraints, or cannot be repaired
	// cheaply is discarded and the solve proceeds cold, so the answer is
	// always as reliable as a cold Solve. Each core interprets the basis by
	// its own column-numbering convention; a basis recorded by the other core
	// simply fails the screen and falls back cold.
	CrashBasis []int
	// Core selects the simplex implementation (sparse revised simplex by
	// default; CoreDense forces the dense tableau oracle).
	Core Core
}

// SolveWithOptions is Solve with explicit options.
func (p *Problem) SolveWithOptions(opt Options) Solution {
	if opt.core() == CoreSparse {
		if sol, _, ok := p.solveRevised(opt); ok {
			return sol
		}
		// The sparse core hit a numerical wall (singular refactorization);
		// the dense oracle is always available as the fallback.
	}
	sol, _, _ := p.solveTableau(opt)
	return sol
}

// rowKind records how a constraint row was normalized into the tableau: its
// effective relation after the rhs ≥ 0 sign flip, and whether it was flipped.
type rowKind struct {
	rel Rel
	neg bool
}

// tabBuild is a freshly constructed (unsolved) tableau plus the bookkeeping
// needed to run phases, extract duals, and undo the rhs normalization.
type tabBuild struct {
	t           *tableau
	kinds       []rowKind
	artStart    int // first artificial column
	artificials int
	auxCol      []int     // per row: column whose final tableau column is B⁻¹e_k
	costs       []float64 // minimization-sense structural costs, len NumVars
}

// solveTableau is the two-phase solve, additionally returning the final
// tableau and the first artificial column for warm restarts.
func (p *Problem) solveTableau(opt Options) (Solution, *tableau, int) {
	if len(opt.CrashBasis) > 0 {
		if sol, t, artStart, ok := p.solveFromBasis(opt); ok {
			return sol, t, artStart
		}
		// The supplied basis did not fit or could not be repaired; solve cold.
	}
	tb := p.buildTableau()
	t, artStart := tb.t, tb.artStart
	m := t.m
	total := t.n
	isArt := func(j int) bool { return j >= artStart }

	maxPivots := opt.MaxPivots
	if maxPivots == 0 {
		maxPivots = 200*(m+total) + 5000
	}
	pivots := 0

	if tb.artificials > 0 {
		// Phase 1: minimize the sum of artificial variables.
		phase1 := make([]float64, total)
		for j := artStart; j < total; j++ {
			phase1[j] = 1
		}
		st := t.optimize(phase1, nil, maxPivots, &pivots)
		if st == IterLimit {
			return Solution{Status: IterLimit, Pivots: pivots}, nil, 0
		}
		if t.objective(phase1) > 1e-7 {
			return Solution{Status: Infeasible, Pivots: pivots}, nil, 0
		}
		// Drive any basic artificials (at value 0) out of the basis where a
		// structural pivot exists; otherwise they stay at zero and are barred
		// from re-entering in phase 2.
		for i := 0; i < m; i++ {
			if !isArt(t.basis[i]) {
				continue
			}
			for j := 0; j < artStart; j++ {
				if math.Abs(t.a[i][j]) > 1e-7 {
					t.pivot(i, j)
					pivots++
					break
				}
			}
		}
	}

	// Phase 2: minimize the real objective with artificials barred.
	fullCosts := make([]float64, total)
	copy(fullCosts, tb.costs)
	st := t.optimize(fullCosts, isArt, maxPivots, &pivots)
	switch st {
	case IterLimit, Unbounded:
		return Solution{Status: st, Pivots: pivots}, nil, 0
	}
	return p.extractSolution(tb, fullCosts, pivots), t, artStart
}

// denseRows returns the rows the dense oracle builds its tableau over: the
// problem's own constraints followed by rows synthesized from non-default
// variable bounds (x_v ≤ hi when finite, x_v ≥ lo when positive). The sparse
// core handles bounds natively; lowering them into explicit rows here keeps
// the dense tableau exactly as general without touching its pivoting code.
func (p *Problem) denseRows() []Constraint {
	n := len(p.obj)
	var extra []Constraint
	for v := 0; v < n && v < len(p.lower); v++ {
		lo, hi := p.lower[v], p.upper[v]
		if !math.IsInf(hi, 1) {
			row := make([]float64, n)
			row[v] = 1
			extra = append(extra, Constraint{Coeffs: row, Rel: LE, RHS: hi})
		}
		if lo > 0 {
			row := make([]float64, n)
			row[v] = 1
			extra = append(extra, Constraint{Coeffs: row, Rel: GE, RHS: lo})
		}
	}
	if extra == nil {
		return p.constraints
	}
	return append(append([]Constraint(nil), p.constraints...), extra...)
}

// buildTableau constructs the initial canonical tableau: one slack per LE,
// one surplus + one artificial per GE, one artificial per EQ, with every row
// normalized to rhs ≥ 0 first. Variable bounds arrive as lowered rows.
func (p *Problem) buildTableau() tabBuild {
	n := len(p.obj)
	rows := p.denseRows()
	m := len(rows)

	// Effective minimization objective.
	costs := make([]float64, n)
	copy(costs, p.obj)
	if p.maximize {
		for j := range costs {
			costs[j] = -costs[j]
		}
	}

	kinds := make([]rowKind, m)
	slacks, artificials := 0, 0
	for k, c := range rows {
		rel := c.Rel
		neg := c.RHS < 0
		if neg {
			switch rel {
			case LE:
				rel = GE
			case GE:
				rel = LE
			}
		}
		kinds[k] = rowKind{rel: rel, neg: neg}
		switch rel {
		case LE:
			slacks++
		case GE:
			slacks++
			artificials++
		case EQ:
			artificials++
		}
	}

	total := n + slacks + artificials
	t := &tableau{
		m:     m,
		n:     total,
		a:     make([][]float64, m),
		basis: make([]int, m),
	}
	artStart := n + slacks
	slackCol := n
	artCol := artStart
	// auxCol[k] is a column whose initial coefficient pattern is +e_k: its
	// final tableau column is the k-th column of B⁻¹, from which the row's
	// dual value c_B·B⁻¹e_k is read off after the solve.
	auxCol := make([]int, m)
	for k, c := range rows {
		row := make([]float64, total+1)
		sign := 1.0
		if kinds[k].neg {
			sign = -1
		}
		for j := 0; j < n; j++ {
			row[j] = sign * c.Coeffs[j]
		}
		row[total] = sign * c.RHS
		switch kinds[k].rel {
		case LE:
			row[slackCol] = 1
			t.basis[k] = slackCol
			auxCol[k] = slackCol
			slackCol++
		case GE:
			row[slackCol] = -1
			slackCol++
			row[artCol] = 1
			t.basis[k] = artCol
			auxCol[k] = artCol
			artCol++
		case EQ:
			row[artCol] = 1
			t.basis[k] = artCol
			auxCol[k] = artCol
			artCol++
		}
		t.a[k] = row
	}

	return tabBuild{t: t, kinds: kinds, artStart: artStart, artificials: artificials, auxCol: auxCol, costs: costs}
}

// extractSolution reads the optimal point and row duals out of a solved
// tableau. fullCosts is the minimization-sense cost vector padded to the full
// column count (artificials at 0).
func (p *Problem) extractSolution(tb tabBuild, fullCosts []float64, pivots int) Solution {
	n := len(p.obj)
	t := tb.t
	x := make([]float64, n)
	for i, b := range t.basis {
		if b < n {
			x[b] = t.a[i][t.n]
		}
	}
	obj := 0.0
	for j := 0; j < n; j++ {
		obj += p.obj[j] * x[j]
	}

	// Row duals: y_k = c_B · B⁻¹e_k, undoing the rhs-sign normalization and
	// the minimization flip so the value is d(objective)/d(rhs_k) in the
	// problem's own direction. Only the problem's own rows get duals; the
	// internal rows lowered from variable bounds are implementation detail.
	duals := make([]float64, len(p.constraints))
	for k := range duals {
		y := 0.0
		col := tb.auxCol[k]
		for i, b := range t.basis {
			if cb := fullCosts[b]; cb != 0 {
				y += cb * t.a[i][col]
			}
		}
		if tb.kinds[k].neg {
			y = -y
		}
		if p.maximize {
			y = -y
		}
		duals[k] = y
	}
	return Solution{Status: Optimal, X: x, Objective: obj, Pivots: pivots, Duals: duals}
}

// solveFromBasis attempts to solve the problem starting from a caller-supplied
// basis instead of running phase 1. The basis is crashed into a fresh tableau
// row by row; the point it induces is then repaired to optimality by the
// primal simplex (when already feasible) or the dual simplex followed by a
// primal polish (when only dual-feasible). Any screen failure — wrong shape,
// a basic artificial carrying value, a tiny crash pivot, dual infeasibility,
// or a pivot-cap hit — reports ok == false so the caller falls back to the
// cold two-phase path. Correctness never depends on the supplied basis: it
// only decides where the simplex starts.
func (p *Problem) solveFromBasis(opt Options) (Solution, *tableau, int, bool) {
	tb := p.buildTableau()
	t := tb.t
	if len(opt.CrashBasis) != t.m {
		return Solution{}, nil, 0, false
	}
	for _, b := range opt.CrashBasis {
		if b < 0 || b >= t.n {
			return Solution{}, nil, 0, false
		}
	}
	isArt := func(j int) bool { return j >= tb.artStart }
	maxPivots := opt.MaxPivots
	if maxPivots == 0 {
		maxPivots = 200*(t.m+t.n) + 5000
	}
	pivots := 0

	// Crash: drive each target column into its row. A target whose pivot
	// element has gone tiny keeps the row's original slack/artificial — the
	// repair phases below deal with the partial basis.
	for i, col := range opt.CrashBasis {
		if t.basis[i] == col || t.isBasic(col) {
			continue
		}
		if math.Abs(t.a[i][col]) <= 1e-7 {
			continue
		}
		t.pivot(i, col)
		pivots++
	}
	// A basic artificial carrying nonzero value means the crashed point
	// violates its constraint row; phase 1 would be needed, so bail out.
	for i, b := range t.basis {
		if isArt(b) && math.Abs(t.a[i][t.n]) > 1e-7 {
			return Solution{}, nil, 0, false
		}
	}

	fullCosts := make([]float64, t.n)
	copy(fullCosts, tb.costs)
	primalFeasible := true
	for i := 0; i < t.m; i++ {
		if t.a[i][t.n] < -1e-7 {
			primalFeasible = false
			break
		}
	}
	if primalFeasible {
		for i := 0; i < t.m; i++ {
			if t.a[i][t.n] < 0 {
				t.a[i][t.n] = 0
			}
		}
		if st := t.optimize(fullCosts, isArt, maxPivots, &pivots); st != Optimal {
			return Solution{}, nil, 0, false
		}
	} else {
		// Dual simplex requires dual feasibility; verify before it clamps
		// negative reduced costs away.
		z := t.reducedCosts(fullCosts)
		for j := 0; j < t.n; j++ {
			if isArt(j) || t.isBasic(j) {
				continue
			}
			if z[j] < -1e-7 {
				return Solution{}, nil, 0, false
			}
		}
		if st := t.dualSimplex(fullCosts, isArt, maxPivots, &pivots); st != Optimal {
			return Solution{}, nil, 0, false
		}
		if ps := t.optimize(fullCosts, isArt, maxPivots, &pivots); ps != Optimal {
			return Solution{}, nil, 0, false
		}
	}
	return p.extractSolution(tb, fullCosts, pivots), t, tb.artStart, true
}

// tableau is a dense simplex tableau in canonical form: basis columns are
// unit vectors and the last column holds the (nonnegative) right-hand sides.
type tableau struct {
	m, n  int
	a     [][]float64 // m rows × (n+1) columns
	basis []int       // basis[i] = column basic in row i
}

// objective evaluates Σ c_B · b for the given cost vector.
func (t *tableau) objective(costs []float64) float64 {
	v := 0.0
	for i, b := range t.basis {
		v += costs[b] * t.a[i][t.n]
	}
	return v
}

// optimize pivots until optimality, unboundedness, or the pivot budget runs
// out. banned marks columns that may not enter (nil means none). It uses
// Dantzig's rule and falls back to Bland's rule once the iteration count
// suggests cycling.
//
// Reduced costs are kept in an explicit row updated in O(n) per pivot; it is
// rebuilt from scratch when the rule switches to Bland, bounding numerical
// drift exactly when the solve is already struggling.
func (t *tableau) optimize(costs []float64, banned func(int) bool, maxPivots int, pivots *int) Status {
	blandAfter := 20*(t.m+t.n) + 200
	iter := 0
	zrow := t.reducedCosts(costs)
	rebuilt := false
	for {
		if *pivots >= maxPivots {
			return IterLimit
		}
		useBland := iter > blandAfter
		if useBland && !rebuilt {
			zrow = t.reducedCosts(costs)
			rebuilt = true
		}
		enter := -1
		best := -zeroTol
		for j := 0; j < t.n; j++ {
			if banned != nil && banned(j) {
				continue
			}
			if t.isBasic(j) {
				continue
			}
			r := zrow[j]
			if useBland {
				if r < -zeroTol {
					enter = j
					break
				}
			} else if r < best {
				best = r
				enter = j
			}
		}
		if enter < 0 {
			return Optimal
		}

		// Ratio test: min b_i / a_{i,enter} over positive entries; ties break
		// toward the smallest basis index for anti-cycling.
		leave := -1
		bestRatio := math.Inf(1)
		for i := 0; i < t.m; i++ {
			aij := t.a[i][enter]
			if aij <= pivotTol {
				continue
			}
			ratio := t.a[i][t.n] / aij
			if ratio < bestRatio-zeroTol ||
				(ratio < bestRatio+zeroTol && (leave < 0 || t.basis[i] < t.basis[leave])) {
				bestRatio = ratio
				leave = i
			}
		}
		if leave < 0 {
			return Unbounded
		}
		t.pivot(leave, enter)
		// Eliminate the entering column from the reduced-cost row using the
		// freshly normalized pivot row.
		if f := zrow[enter]; f != 0 {
			pr := t.a[leave]
			for j := 0; j < t.n; j++ {
				zrow[j] -= f * pr[j]
			}
			zrow[enter] = 0
		}
		*pivots++
		iter++
	}
}

// reducedCosts computes c_j − c_B·T[:,j] for every column.
func (t *tableau) reducedCosts(costs []float64) []float64 {
	z := make([]float64, t.n)
	copy(z, costs[:t.n])
	for i, b := range t.basis {
		cb := costs[b]
		if cb == 0 {
			continue
		}
		row := t.a[i]
		for j := 0; j < t.n; j++ {
			if a := row[j]; a != 0 {
				z[j] -= cb * a
			}
		}
	}
	return z
}

func (t *tableau) isBasic(j int) bool {
	for _, b := range t.basis {
		if b == j {
			return true
		}
	}
	return false
}

// pivot makes column col basic in row row.
func (t *tableau) pivot(row, col int) {
	piv := t.a[row][col]
	inv := 1 / piv
	r := t.a[row]
	for j := range r {
		r[j] *= inv
	}
	r[col] = 1 // exact
	for i := 0; i < t.m; i++ {
		if i == row {
			continue
		}
		f := t.a[i][col]
		if f == 0 {
			continue
		}
		ri := t.a[i]
		for j := range ri {
			ri[j] -= f * r[j]
		}
		ri[col] = 0 // exact
	}
	t.basis[row] = col
	// Clamp tiny negative RHS noise so feasibility is preserved.
	if b := t.a[row][t.n]; b < 0 && b > -1e-9 {
		t.a[row][t.n] = 0
	}
}

package lp

import "math"

// Numerical tolerances for the simplex method. The models in this repository
// mix magnitudes from 1e-3 (response-time seconds) to 1e8 (requests/hour), so
// callers are expected to scale their formulations into a sane range; these
// tolerances then behave well.
const (
	pivotTol = 1e-9 // minimum magnitude for a pivot element
	zeroTol  = 1e-9 // reduced-cost / feasibility tolerance
)

// Solve runs the two-phase primal simplex method and returns the solution.
// The zero options value is ready to use.
func (p *Problem) Solve() Solution { return p.SolveWithOptions(Options{}) }

// Options tune the solver. The zero value uses sensible defaults.
type Options struct {
	// MaxPivots caps the total number of pivots across both phases.
	// 0 means 200·(rows+columns)+5000, far above what these problems need.
	MaxPivots int
}

// SolveWithOptions is Solve with explicit options.
func (p *Problem) SolveWithOptions(opt Options) Solution {
	sol, _, _ := p.solveTableau(opt)
	return sol
}

// solveTableau is the two-phase solve, additionally returning the final
// tableau and the first artificial column for warm restarts.
func (p *Problem) solveTableau(opt Options) (Solution, *tableau, int) {
	n := len(p.obj)
	m := len(p.constraints)

	// Effective minimization objective.
	costs := make([]float64, n)
	copy(costs, p.obj)
	if p.maximize {
		for j := range costs {
			costs[j] = -costs[j]
		}
	}

	// Count auxiliary columns: one slack per LE, one surplus + one artificial
	// per GE, one artificial per EQ. Rows are first normalized to rhs ≥ 0.
	type rowKind struct {
		rel Rel
		neg bool
	}
	kinds := make([]rowKind, m)
	slacks, artificials := 0, 0
	for k, c := range p.constraints {
		rel := c.Rel
		neg := c.RHS < 0
		if neg {
			switch rel {
			case LE:
				rel = GE
			case GE:
				rel = LE
			}
		}
		kinds[k] = rowKind{rel: rel, neg: neg}
		switch rel {
		case LE:
			slacks++
		case GE:
			slacks++
			artificials++
		case EQ:
			artificials++
		}
	}

	total := n + slacks + artificials
	t := &tableau{
		m:     m,
		n:     total,
		a:     make([][]float64, m),
		basis: make([]int, m),
	}
	artStart := n + slacks
	isArt := func(j int) bool { return j >= artStart }

	slackCol := n
	artCol := artStart
	// auxCol[k] is a column whose initial coefficient pattern is +e_k: its
	// final tableau column is the k-th column of B⁻¹, from which the row's
	// dual value c_B·B⁻¹e_k is read off after the solve.
	auxCol := make([]int, m)
	for k, c := range p.constraints {
		row := make([]float64, total+1)
		sign := 1.0
		if kinds[k].neg {
			sign = -1
		}
		for j := 0; j < n; j++ {
			row[j] = sign * c.Coeffs[j]
		}
		row[total] = sign * c.RHS
		switch kinds[k].rel {
		case LE:
			row[slackCol] = 1
			t.basis[k] = slackCol
			auxCol[k] = slackCol
			slackCol++
		case GE:
			row[slackCol] = -1
			slackCol++
			row[artCol] = 1
			t.basis[k] = artCol
			auxCol[k] = artCol
			artCol++
		case EQ:
			row[artCol] = 1
			t.basis[k] = artCol
			auxCol[k] = artCol
			artCol++
		}
		t.a[k] = row
	}

	maxPivots := opt.MaxPivots
	if maxPivots == 0 {
		maxPivots = 200*(m+total) + 5000
	}
	pivots := 0

	if artificials > 0 {
		// Phase 1: minimize the sum of artificial variables.
		phase1 := make([]float64, total)
		for j := artStart; j < total; j++ {
			phase1[j] = 1
		}
		st := t.optimize(phase1, nil, maxPivots, &pivots)
		if st == IterLimit {
			return Solution{Status: IterLimit, Pivots: pivots}, nil, 0
		}
		if t.objective(phase1) > 1e-7 {
			return Solution{Status: Infeasible, Pivots: pivots}, nil, 0
		}
		// Drive any basic artificials (at value 0) out of the basis where a
		// structural pivot exists; otherwise they stay at zero and are barred
		// from re-entering in phase 2.
		for i := 0; i < m; i++ {
			if !isArt(t.basis[i]) {
				continue
			}
			for j := 0; j < artStart; j++ {
				if math.Abs(t.a[i][j]) > 1e-7 {
					t.pivot(i, j)
					pivots++
					break
				}
			}
		}
	}

	// Phase 2: minimize the real objective with artificials barred.
	fullCosts := make([]float64, total)
	copy(fullCosts, costs)
	st := t.optimize(fullCosts, isArt, maxPivots, &pivots)
	switch st {
	case IterLimit, Unbounded:
		return Solution{Status: st, Pivots: pivots}, nil, 0
	}

	x := make([]float64, n)
	for i, b := range t.basis {
		if b < n {
			x[b] = t.a[i][total]
		}
	}
	obj := 0.0
	for j := 0; j < n; j++ {
		obj += p.obj[j] * x[j]
	}

	// Row duals: y_k = c_B · B⁻¹e_k, undoing the rhs-sign normalization and
	// the minimization flip so the value is d(objective)/d(rhs_k) in the
	// problem's own direction.
	duals := make([]float64, m)
	for k := 0; k < m; k++ {
		y := 0.0
		col := auxCol[k]
		for i, b := range t.basis {
			if cb := fullCosts[b]; cb != 0 {
				y += cb * t.a[i][col]
			}
		}
		if kinds[k].neg {
			y = -y
		}
		if p.maximize {
			y = -y
		}
		duals[k] = y
	}
	return Solution{Status: Optimal, X: x, Objective: obj, Pivots: pivots, Duals: duals}, t, artStart
}

// tableau is a dense simplex tableau in canonical form: basis columns are
// unit vectors and the last column holds the (nonnegative) right-hand sides.
type tableau struct {
	m, n  int
	a     [][]float64 // m rows × (n+1) columns
	basis []int       // basis[i] = column basic in row i
}

// objective evaluates Σ c_B · b for the given cost vector.
func (t *tableau) objective(costs []float64) float64 {
	v := 0.0
	for i, b := range t.basis {
		v += costs[b] * t.a[i][t.n]
	}
	return v
}

// optimize pivots until optimality, unboundedness, or the pivot budget runs
// out. banned marks columns that may not enter (nil means none). It uses
// Dantzig's rule and falls back to Bland's rule once the iteration count
// suggests cycling.
//
// Reduced costs are kept in an explicit row updated in O(n) per pivot; it is
// rebuilt from scratch when the rule switches to Bland, bounding numerical
// drift exactly when the solve is already struggling.
func (t *tableau) optimize(costs []float64, banned func(int) bool, maxPivots int, pivots *int) Status {
	blandAfter := 20*(t.m+t.n) + 200
	iter := 0
	zrow := t.reducedCosts(costs)
	rebuilt := false
	for {
		if *pivots >= maxPivots {
			return IterLimit
		}
		useBland := iter > blandAfter
		if useBland && !rebuilt {
			zrow = t.reducedCosts(costs)
			rebuilt = true
		}
		enter := -1
		best := -zeroTol
		for j := 0; j < t.n; j++ {
			if banned != nil && banned(j) {
				continue
			}
			if t.isBasic(j) {
				continue
			}
			r := zrow[j]
			if useBland {
				if r < -zeroTol {
					enter = j
					break
				}
			} else if r < best {
				best = r
				enter = j
			}
		}
		if enter < 0 {
			return Optimal
		}

		// Ratio test: min b_i / a_{i,enter} over positive entries; ties break
		// toward the smallest basis index for anti-cycling.
		leave := -1
		bestRatio := math.Inf(1)
		for i := 0; i < t.m; i++ {
			aij := t.a[i][enter]
			if aij <= pivotTol {
				continue
			}
			ratio := t.a[i][t.n] / aij
			if ratio < bestRatio-zeroTol ||
				(ratio < bestRatio+zeroTol && (leave < 0 || t.basis[i] < t.basis[leave])) {
				bestRatio = ratio
				leave = i
			}
		}
		if leave < 0 {
			return Unbounded
		}
		t.pivot(leave, enter)
		// Eliminate the entering column from the reduced-cost row using the
		// freshly normalized pivot row.
		if f := zrow[enter]; f != 0 {
			pr := t.a[leave]
			for j := 0; j < t.n; j++ {
				zrow[j] -= f * pr[j]
			}
			zrow[enter] = 0
		}
		*pivots++
		iter++
	}
}

// reducedCosts computes c_j − c_B·T[:,j] for every column.
func (t *tableau) reducedCosts(costs []float64) []float64 {
	z := make([]float64, t.n)
	copy(z, costs[:t.n])
	for i, b := range t.basis {
		cb := costs[b]
		if cb == 0 {
			continue
		}
		row := t.a[i]
		for j := 0; j < t.n; j++ {
			if a := row[j]; a != 0 {
				z[j] -= cb * a
			}
		}
	}
	return z
}

func (t *tableau) isBasic(j int) bool {
	for _, b := range t.basis {
		if b == j {
			return true
		}
	}
	return false
}

// pivot makes column col basic in row row.
func (t *tableau) pivot(row, col int) {
	piv := t.a[row][col]
	inv := 1 / piv
	r := t.a[row]
	for j := range r {
		r[j] *= inv
	}
	r[col] = 1 // exact
	for i := 0; i < t.m; i++ {
		if i == row {
			continue
		}
		f := t.a[i][col]
		if f == 0 {
			continue
		}
		ri := t.a[i]
		for j := range ri {
			ri[j] -= f * r[j]
		}
		ri[col] = 0 // exact
	}
	t.basis[row] = col
	// Clamp tiny negative RHS noise so feasibility is preserved.
	if b := t.a[row][t.n]; b < 0 && b > -1e-9 {
		t.a[row][t.n] = 0
	}
}

package lp

import (
	"math/rand"
	"testing"
)

func benchProblem(seed int64) (*Problem, []float64) {
	r := rand.New(rand.NewSource(seed))
	return randomFeasibleLP(r)
}

// BenchmarkColdSolve measures a full two-phase solve of a random dense LP.
func BenchmarkColdSolve(b *testing.B) {
	p, _ := benchProblem(42)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s := p.Solve(); s.Status != Optimal {
			b.Fatal(s.Status)
		}
	}
}

// BenchmarkWarmReSolve measures a dual-simplex re-solve with one extra
// bound row — the per-node cost inside branch and bound.
func BenchmarkWarmReSolve(b *testing.B) {
	p, _ := benchProblem(42)
	w, root := p.SolveForWarmStart(Options{})
	if root.Status != Optimal {
		b.Fatal(root.Status)
	}
	row := []ExtraRow{{Terms: []Term{{Var: 0, Coef: 1}}, Rel: LE, RHS: root.X[0] / 2}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s := w.ReSolve(row); s.Status != Optimal && s.Status != Infeasible {
			b.Fatal(s.Status)
		}
	}
}

package lp

import "math"

// revProblem is the equality-form instance the sparse revised simplex works
// on:
//
//	A x + I s (+ artificials) = b,   lo ≤ (x, s) ≤ hi
//
// Structural columns are 0..n-1, the slack of row i is column n+i, and
// phase-1 artificials (added lazily, one per initially infeasible row) follow
// at n+m+... Slack bounds encode the row relation: LE → [0, +Inf), GE →
// (−Inf, 0], EQ → [0, 0]. Right-hand sides keep their original sign — no
// rhs ≥ 0 normalization is needed in equality form, which is also why the
// row duals y = c_B·B⁻¹ come out in the problem's own row orientation with
// no per-row sign fixups.
type revProblem struct {
	m, n int // constraint rows, structural columns

	// A stored both ways: CSC drives column solves (FTRAN scatter, pricing
	// by column), CSR drives the pivot-row computation α_N = ρᵀA_N.
	colPtr []int
	rowIdx []int
	colVal []float64
	rowPtr []int
	colIdx []int
	rowVal []float64

	b     []float64 // row right-hand sides, original sign
	costs []float64 // minimization-sense costs: structural, then slacks (0)

	// Bounds per column; artificials appended during phase 1. Capacity is
	// reserved for n+2m entries so appends never reallocate mid-solve.
	lo, hi []float64

	nart   int       // artificial columns in use
	artRow []int     // artificial a → its row
	artSig []float64 // artificial a → its coefficient (±1)

	maximize bool
}

// newRevProblem lowers a Problem into equality form.
func newRevProblem(p *Problem) *revProblem {
	n := len(p.obj)
	m := len(p.constraints)
	pr := &revProblem{m: m, n: n, maximize: p.maximize}

	nnz := 0
	for _, c := range p.constraints {
		for _, v := range c.Coeffs {
			if v != 0 {
				nnz++
			}
		}
	}
	pr.rowPtr = make([]int, m+1)
	pr.colIdx = make([]int, 0, nnz)
	pr.rowVal = make([]float64, 0, nnz)
	colCount := make([]int, n+1)
	pr.b = make([]float64, m)
	for k, c := range p.constraints {
		pr.b[k] = c.RHS
		for j, v := range c.Coeffs {
			if v != 0 {
				pr.colIdx = append(pr.colIdx, j)
				pr.rowVal = append(pr.rowVal, v)
				colCount[j+1]++
			}
		}
		pr.rowPtr[k+1] = len(pr.colIdx)
	}

	// CSC from the CSR pass: prefix-sum column counts, then scatter.
	pr.colPtr = make([]int, n+1)
	for j := 0; j < n; j++ {
		pr.colPtr[j+1] = pr.colPtr[j] + colCount[j+1]
	}
	pr.rowIdx = make([]int, nnz)
	pr.colVal = make([]float64, nnz)
	next := append([]int(nil), pr.colPtr[:n]...)
	for i := 0; i < m; i++ {
		for e := pr.rowPtr[i]; e < pr.rowPtr[i+1]; e++ {
			j := pr.colIdx[e]
			pr.rowIdx[next[j]] = i
			pr.colVal[next[j]] = pr.rowVal[e]
			next[j]++
		}
	}

	pr.costs = make([]float64, n+m)
	for j, c := range p.obj {
		if p.maximize {
			c = -c
		}
		pr.costs[j] = c
	}

	pr.lo = make([]float64, n+m, n+2*m)
	pr.hi = make([]float64, n+m, n+2*m)
	for j := 0; j < n; j++ {
		pr.lo[j], pr.hi[j] = p.lower[j], p.upper[j]
	}
	for i, c := range p.constraints {
		switch c.Rel {
		case LE:
			pr.lo[n+i], pr.hi[n+i] = 0, math.Inf(1)
		case GE:
			pr.lo[n+i], pr.hi[n+i] = math.Inf(-1), 0
		case EQ:
			pr.lo[n+i], pr.hi[n+i] = 0, 0
		}
	}
	return pr
}

// nTot is the current total column count (structurals + slacks + artificials).
func (pr *revProblem) nTot() int { return pr.n + pr.m + pr.nart }

// cost returns the minimization-sense objective coefficient of column j under
// the given phase (phase 1 prices only the artificials).
func (pr *revProblem) cost(j int, phase1 bool) float64 {
	if phase1 {
		if j >= pr.n+pr.m {
			return 1
		}
		return 0
	}
	if j < pr.n+pr.m {
		return pr.costs[j]
	}
	return 0
}

// colEach visits the nonzeros of column j (structural, slack, or artificial).
func (pr *revProblem) colEach(j int, fn func(row int, v float64)) {
	switch {
	case j < pr.n:
		for e := pr.colPtr[j]; e < pr.colPtr[j+1]; e++ {
			fn(pr.rowIdx[e], pr.colVal[e])
		}
	case j < pr.n+pr.m:
		fn(j-pr.n, 1)
	default:
		a := j - pr.n - pr.m
		fn(pr.artRow[a], pr.artSig[a])
	}
}

// colNNZ returns the nonzero count of column j (fill-reduction heuristic).
func (pr *revProblem) colNNZ(j int) int {
	if j < pr.n {
		return pr.colPtr[j+1] - pr.colPtr[j]
	}
	return 1
}

// dotCol returns yᵀA_j for a dense row-space vector y.
func (pr *revProblem) dotCol(y []float64, j int) float64 {
	switch {
	case j < pr.n:
		acc := 0.0
		for e := pr.colPtr[j]; e < pr.colPtr[j+1]; e++ {
			acc += y[pr.rowIdx[e]] * pr.colVal[e]
		}
		return acc
	case j < pr.n+pr.m:
		return y[j-pr.n]
	default:
		a := j - pr.n - pr.m
		return pr.artSig[a] * y[pr.artRow[a]]
	}
}

// addArtificial appends an artificial column with a single ±1 entry in the
// given row and bounds [0, +Inf), returning its column index.
func (pr *revProblem) addArtificial(row int, sig float64) int {
	pr.artRow = append(pr.artRow, row)
	pr.artSig = append(pr.artSig, sig)
	pr.lo = append(pr.lo, 0)
	pr.hi = append(pr.hi, math.Inf(1))
	pr.nart++
	return pr.n + pr.m + pr.nart - 1
}

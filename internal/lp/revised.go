package lp

import "math"

// Sparse-core tuning knobs.
const (
	// refactorEvery bounds the eta file: once this many product-form updates
	// accumulate, the basis is refactorized from scratch and the primal
	// values and reduced costs are recomputed, washing out drift.
	refactorEvery = 64
	// weakPivot is the magnitude below which a pivot element is mistrusted:
	// the solver refactorizes and retries, and only if the element stays weak
	// does it exclude the column (primal) or give up to the fallback (dual).
	weakPivot = 1e-7
)

// Nonbasic/basic column statuses of the bounded revised simplex.
const (
	atLower int8 = iota // nonbasic at its (finite) lower bound
	atUpper             // nonbasic at its (finite) upper bound
	isBasic
)

// revSolver is the state of one sparse revised-simplex solve: the basis and
// its LU factor, primal values of the basic columns, reduced costs, and the
// Devex reference weights. After an optimal solve the state is frozen inside
// a WarmStart; ReSolve and per-worker B&B clones copy it (cloneForReSolve)
// and mutate only the copy.
type revSolver struct {
	pr     *revProblem
	f      *luFactor
	basis  []int  // basis position → column
	inBase []int  // column → basis position, or -1
	status []int8 // column → atLower / atUpper / isBasic
	xB     []float64
	d      []float64 // reduced costs (minimization sense of the current phase)
	w      []float64 // Devex reference weights
	y      []float64 // row duals, valid after computeDuals
	phase1 bool

	colBuf []float64 // dense m scratch: entering column / right-hand side
	rhoBuf []float64 // dense m scratch: BTRAN unit vector → pivot row ρ
	luBuf  []float64 // dense m scratch for the triangular solves
	alpha  []float64 // dense column-space scratch: pivot row over all columns

	pivots    int
	maxPivots int
	refactors int
	updates   int

	degen int  // consecutive degenerate steps (stall counter)
	bland bool // Bland's-rule fallback engaged by the stall counter
	skip  map[int]bool

	failed bool // singular refactorization: abort to the dense oracle
}

func newRevSolver(pr *revProblem, opt Options) *revSolver {
	capc := pr.n + 2*pr.m + 1
	s := &revSolver{pr: pr}
	s.basis = make([]int, pr.m)
	s.inBase = make([]int, capc)
	for j := range s.inBase {
		s.inBase[j] = -1
	}
	s.status = make([]int8, pr.nTot(), capc)
	s.d = make([]float64, pr.nTot(), capc)
	s.w = make([]float64, pr.nTot(), capc)
	for j := range s.w {
		s.w[j] = 1
	}
	s.alpha = make([]float64, capc)
	s.xB = make([]float64, pr.m)
	s.y = make([]float64, pr.m)
	s.colBuf = make([]float64, pr.m)
	s.rhoBuf = make([]float64, pr.m)
	s.luBuf = make([]float64, pr.m)
	s.maxPivots = opt.MaxPivots
	if s.maxPivots == 0 {
		s.maxPivots = 200*(pr.m+pr.nTot()) + 5000
	}
	return s
}

// growCols extends the per-column arrays after artificials were appended.
func (s *revSolver) growCols() {
	for len(s.status) < s.pr.nTot() {
		s.status = append(s.status, atLower)
		s.d = append(s.d, 0)
		s.w = append(s.w, 1)
	}
}

// value returns the current value of a nonbasic column: the bound its status
// pins it to (always finite by the solver's invariants).
func (s *revSolver) value(j int) float64 {
	if s.status[j] == atUpper {
		return s.pr.hi[j]
	}
	return s.pr.lo[j]
}

// computeXB solves B·x_B = b − A_N·x_N for the basic values.
func (s *revSolver) computeXB() {
	pr := s.pr
	copy(s.colBuf, pr.b)
	for j := 0; j < pr.nTot(); j++ {
		if s.status[j] == isBasic {
			continue
		}
		v := s.value(j)
		if v == 0 {
			continue
		}
		pr.colEach(j, func(i int, a float64) { s.colBuf[i] -= a * v })
	}
	s.f.ftran(s.colBuf, s.luBuf)
	copy(s.xB, s.colBuf)
}

// computeDuals recomputes y = B⁻ᵀc_B and the reduced costs of every column
// from scratch for the current phase's costs.
func (s *revSolver) computeDuals() {
	pr := s.pr
	for i := 0; i < pr.m; i++ {
		s.rhoBuf[i] = pr.cost(s.basis[i], s.phase1)
	}
	s.f.btran(s.rhoBuf, s.luBuf)
	copy(s.y, s.rhoBuf[:pr.m])
	for j := 0; j < pr.nTot(); j++ {
		if s.status[j] == isBasic {
			s.d[j] = 0
			continue
		}
		s.d[j] = pr.cost(j, s.phase1) - pr.dotCol(s.y, j)
	}
}

func (s *revSolver) resetDevex() {
	for j := range s.w {
		s.w[j] = 1
	}
}

// refactorize rebuilds the LU from the current basis, drops the eta file, and
// recomputes primal values and reduced costs. Returns false (and marks the
// solver failed) if the basis has gone numerically singular.
func (s *revSolver) refactorize() bool {
	f, ok := factorize(s.pr, s.basis)
	if !ok {
		s.failed = true
		return false
	}
	s.f = f
	s.refactors++
	s.computeXB()
	s.computeDuals()
	return true
}

// pivotRow fills s.alpha with α_N = (e_pᵀB⁻¹)·A over every column, using the
// CSR rows scattered by the nonzeros of ρ = B⁻ᵀe_p.
func (s *revSolver) pivotRow(p int) {
	pr := s.pr
	for j := range s.alpha[:pr.nTot()] {
		s.alpha[j] = 0
	}
	for i := range s.rhoBuf[:pr.m] {
		s.rhoBuf[i] = 0
	}
	s.rhoBuf[p] = 1
	s.f.btran(s.rhoBuf, s.luBuf)
	for i := 0; i < pr.m; i++ {
		ri := s.rhoBuf[i]
		if math.Abs(ri) < 1e-12 {
			continue
		}
		for e := pr.rowPtr[i]; e < pr.rowPtr[i+1]; e++ {
			s.alpha[pr.colIdx[e]] += ri * pr.rowVal[e]
		}
		s.alpha[pr.n+i] += ri
	}
	for a := 0; a < pr.nart; a++ {
		s.alpha[pr.n+pr.m+a] = pr.artSig[a] * s.rhoBuf[pr.artRow[a]]
	}
}

// price selects the entering column: Devex rule (max d²/w over eligible
// columns), or lowest-index eligible once the stall counter has engaged
// Bland's rule. Returns -1 when no column is eligible (optimal).
func (s *revSolver) price() int {
	pr := s.pr
	best, bestScore := -1, 0.0
	for j := 0; j < pr.nTot(); j++ {
		st := s.status[j]
		if st == isBasic || pr.lo[j] == pr.hi[j] || (s.skip != nil && s.skip[j]) {
			continue
		}
		dj := s.d[j]
		if st == atLower {
			if dj >= -zeroTol {
				continue
			}
		} else if dj <= zeroTol {
			continue
		}
		if s.bland {
			return j
		}
		if score := dj * dj / s.w[j]; score > bestScore {
			bestScore, best = score, j
		}
	}
	return best
}

// primal runs the bounded-variable primal simplex to optimality.
func (s *revSolver) primal() Status {
	pr := s.pr
	m := pr.m
	stallAfter := 100 + m
	for {
		if s.failed || s.pivots >= s.maxPivots {
			return IterLimit
		}
		q := s.price()
		if q < 0 {
			if len(s.skip) > 0 {
				// Columns were excluded after weak pivots; refresh the
				// factorization and re-price before declaring optimality.
				s.skip = nil
				if !s.refactorize() {
					return IterLimit
				}
				continue
			}
			return Optimal
		}

		for i := range s.colBuf[:m] {
			s.colBuf[i] = 0
		}
		pr.colEach(q, func(i int, v float64) { s.colBuf[i] = v })
		s.f.ftran(s.colBuf, s.luBuf)
		abar := s.colBuf

		delta := 1.0
		if s.status[q] == atUpper {
			delta = -1
		}

		// Bounded ratio test: the entering column's own opposite bound
		// competes with every basic column hitting one of its bounds. Ties
		// break toward the largest pivot magnitude for stability.
		t := pr.hi[q] - pr.lo[q]
		leave, leaveUpper, bestA := -1, false, 0.0
		for i := 0; i < m; i++ {
			a := delta * abar[i]
			bc := s.basis[i]
			var ti float64
			var toUpper bool
			if a > pivotTol {
				l := pr.lo[bc]
				if math.IsInf(l, -1) {
					continue
				}
				ti = (s.xB[i] - l) / a
			} else if a < -pivotTol {
				h := pr.hi[bc]
				if math.IsInf(h, 1) {
					continue
				}
				ti = (s.xB[i] - h) / a
				toUpper = true
			} else {
				continue
			}
			if ti < 0 {
				ti = 0
			}
			aa := math.Abs(a)
			if ti < t-zeroTol || (ti < t+zeroTol && leave >= 0 && aa > bestA) {
				t, leave, leaveUpper, bestA = ti, i, toUpper, aa
			}
		}
		if math.IsInf(t, 1) {
			return Unbounded
		}

		// Stall guard: long runs of degenerate steps trip Bland's rule (with
		// exact reduced costs) until a real step is taken again.
		if t <= zeroTol {
			s.degen++
			if s.degen > stallAfter && !s.bland {
				s.bland = true
				s.computeDuals()
			}
		} else {
			s.degen = 0
			s.bland = false
		}

		if leave < 0 {
			// Bound flip: the entering column crosses to its other bound
			// before any basic column blocks. No basis change, no eta.
			for i := 0; i < m; i++ {
				if abar[i] != 0 {
					s.xB[i] -= delta * abar[i] * t
				}
			}
			if s.status[q] == atLower {
				s.status[q] = atUpper
			} else {
				s.status[q] = atLower
			}
			s.pivots++
			s.skip = nil
			continue
		}
		if math.Abs(abar[leave]) < weakPivot {
			if len(s.f.etas) > 0 {
				if !s.refactorize() {
					return IterLimit
				}
			} else {
				if s.skip == nil {
					s.skip = make(map[int]bool)
				}
				s.skip[q] = true
			}
			continue
		}
		s.pivotStep(q, leave, delta, t, leaveUpper)
		if s.failed {
			return IterLimit
		}
		s.skip = nil
	}
}

// pivotStep performs the basis exchange at step length t: position p's column
// leaves to the bound it hit, q enters, and the reduced costs, Devex weights,
// and LU eta file are updated. s.colBuf must hold ã = B⁻¹A_q.
func (s *revSolver) pivotStep(q, p int, delta, t float64, leaveUpper bool) {
	pr := s.pr
	m := pr.m
	abar := s.colBuf

	// Pivot row against the pre-update basis (the BTRAN must see the old B).
	s.pivotRow(p)
	alphaQ := abar[p]

	vq := s.value(q) + delta*t
	for i := 0; i < m; i++ {
		if abar[i] != 0 {
			s.xB[i] -= delta * abar[i] * t
		}
	}
	r := s.basis[p]
	if leaveUpper {
		s.status[r] = atUpper
	} else {
		s.status[r] = atLower
	}
	s.inBase[r] = -1
	s.basis[p] = q
	s.inBase[q] = p
	s.status[q] = isBasic
	s.xB[p] = vq

	// d_j ← d_j − (d_q/α_q)·α_j; the leaving column lands at −d_q/α_q
	// exactly (its α is 1 in the pre-pivot basis). The same loop folds in
	// the Devex reference-weight update.
	dq := s.d[q]
	ratio := dq / alphaQ
	wq := s.w[q]
	maxW := 1.0
	for j := 0; j < pr.nTot(); j++ {
		if s.status[j] == isBasic || j == r {
			continue
		}
		aj := s.alpha[j]
		if aj == 0 {
			continue
		}
		s.d[j] -= ratio * aj
		az := aj / alphaQ
		if cand := az * az * wq; cand > s.w[j] {
			s.w[j] = cand
		}
		if s.w[j] > maxW {
			maxW = s.w[j]
		}
	}
	s.d[q] = 0
	s.d[r] = -ratio
	if wr := wq / (alphaQ * alphaQ); wr > 1 {
		s.w[r] = wr
	} else {
		s.w[r] = 1
	}
	if maxW > 1e7 {
		s.resetDevex() // start a fresh Devex reference framework
	}

	s.f.update(p, abar[:m])
	s.updates++
	s.pivots++
	if len(s.f.etas) >= refactorEvery {
		s.refactorize()
	}
}

// dual runs the bounded-variable dual simplex: while some basic column
// violates a bound, exchange it against the entering column chosen by the
// dual ratio test. Used by the crash path and by warm ReSolves, whose bound
// tightenings preserve dual feasibility.
func (s *revSolver) dual() Status {
	pr := s.pr
	m := pr.m
	for {
		if s.failed || s.pivots >= s.maxPivots {
			return IterLimit
		}
		p, below, worst := -1, false, zeroTol
		for i := 0; i < m; i++ {
			bc := s.basis[i]
			if v := pr.lo[bc] - s.xB[i]; v > worst {
				worst, p, below = v, i, true
			}
			if v := s.xB[i] - pr.hi[bc]; v > worst {
				worst, p, below = v, i, false
			}
		}
		if p < 0 {
			return Optimal
		}
		s.pivotRow(p)

		enter, bestRatio, bestA := -1, math.Inf(1), 0.0
		for j := 0; j < pr.nTot(); j++ {
			st := s.status[j]
			if st == isBasic || pr.lo[j] == pr.hi[j] {
				continue
			}
			a := s.alpha[j]
			aa := math.Abs(a)
			if aa <= pivotTol {
				continue
			}
			var elig bool
			if st == atLower {
				elig = (below && a < 0) || (!below && a > 0)
			} else {
				elig = (below && a > 0) || (!below && a < 0)
			}
			if !elig {
				continue
			}
			dj := s.d[j]
			// Clamp dual-feasibility noise so the ratio stays nonnegative.
			if st == atLower {
				if dj < 0 {
					dj = 0
				}
			} else if dj > 0 {
				dj = 0
			}
			ratio := math.Abs(dj) / aa
			if ratio < bestRatio-zeroTol || (ratio < bestRatio+zeroTol && aa > bestA) {
				bestRatio, enter, bestA = ratio, j, aa
			}
		}
		if enter < 0 {
			return Infeasible
		}

		for i := range s.colBuf[:m] {
			s.colBuf[i] = 0
		}
		pr.colEach(enter, func(i int, v float64) { s.colBuf[i] = v })
		s.f.ftran(s.colBuf, s.luBuf)
		abar := s.colBuf
		alphaQ := abar[p]
		if math.Abs(alphaQ) < weakPivot {
			if len(s.f.etas) > 0 {
				if !s.refactorize() {
					return IterLimit
				}
				continue
			}
			return IterLimit // persistently weak pivot: take the cold fallback
		}

		bc := s.basis[p]
		target := pr.hi[bc]
		if below {
			target = pr.lo[bc]
		}
		step := (s.xB[p] - target) / alphaQ
		vq := s.value(enter) + step
		for i := 0; i < m; i++ {
			if abar[i] != 0 {
				s.xB[i] -= step * abar[i]
			}
		}
		if below {
			s.status[bc] = atLower
		} else {
			s.status[bc] = atUpper
		}
		s.inBase[bc] = -1
		s.basis[p] = enter
		s.inBase[enter] = p
		s.status[enter] = isBasic
		s.xB[p] = vq

		dq := s.d[enter]
		ratio := dq / alphaQ
		for j := 0; j < pr.nTot(); j++ {
			if s.status[j] == isBasic || j == bc {
				continue
			}
			if aj := s.alpha[j]; aj != 0 {
				s.d[j] -= ratio * aj
			}
		}
		s.d[enter] = 0
		s.d[bc] = -ratio

		s.f.update(p, abar[:m])
		s.updates++
		s.pivots++
		if len(s.f.etas) >= refactorEvery {
			s.refactorize()
		}
	}
}

// coldSolve runs the two-phase solve from the all-slack basis: phase 1
// minimizes the sum of artificials covering the initially infeasible rows,
// then phase 2 minimizes the real costs with the artificials fixed at zero.
func (s *revSolver) coldSolve() Status {
	pr := s.pr
	m, n := pr.m, pr.n
	for j := 0; j < n; j++ {
		s.status[j] = atLower
	}
	for i := 0; i < m; i++ {
		sl := n + i
		s.basis[i] = sl
		s.inBase[sl] = i
		s.status[sl] = isBasic
	}
	var ok bool
	if s.f, ok = factorize(pr, s.basis); !ok {
		s.failed = true
		return IterLimit
	}
	s.computeXB()

	art := false
	for i := 0; i < m; i++ {
		sl := n + i
		v := s.xB[i]
		if v >= pr.lo[sl]-1e-9 && v <= pr.hi[sl]+1e-9 {
			continue
		}
		// Row i starts infeasible: its slack goes nonbasic at 0 (every slack
		// bound kind contains 0 as the nearest-feasible clamp) and an
		// artificial with value |v| takes its basis position.
		sig := 1.0
		if v < 0 {
			sig = -1
		}
		ac := pr.addArtificial(i, sig)
		s.growCols()
		if pr.lo[sl] == 0 {
			s.status[sl] = atLower
		} else {
			s.status[sl] = atUpper
		}
		s.inBase[sl] = -1
		s.basis[i] = ac
		s.inBase[ac] = i
		s.status[ac] = isBasic
		s.xB[i] = sig * v
		art = true
	}

	if art {
		if s.f, ok = factorize(pr, s.basis); !ok {
			s.failed = true
			return IterLimit
		}
		s.phase1 = true
		s.computeDuals()
		s.resetDevex()
		st := s.primal()
		if st == IterLimit || s.failed {
			return IterLimit
		}
		infeas := 0.0
		for i := 0; i < m; i++ {
			if s.basis[i] >= n+m {
				infeas += s.xB[i]
			}
		}
		if st == Unbounded || infeas > 1e-7 {
			return Infeasible
		}
		s.driveOut(func(col int) bool { return col >= n+m })
		if s.failed {
			return IterLimit
		}
		// Fix every artificial at zero so phase 2 cannot move them.
		for a := 0; a < pr.nart; a++ {
			pr.lo[n+m+a], pr.hi[n+m+a] = 0, 0
		}
		s.phase1 = false
	}

	s.computeDuals()
	s.resetDevex()
	s.bland, s.degen = false, 0
	st := s.primal()
	if st == Optimal && !s.failed {
		// Degenerate EQ rows can finish with their fixed slack still basic,
		// which pins that row's dual at 0. Eject fixed columns and re-polish
		// (degenerate pivots only — the point is already optimal) so the
		// duals come from a basis of marginal activities, like the dense
		// oracle's.
		if s.driveOut(func(col int) bool { return pr.lo[col] == pr.hi[col] }) && !s.failed {
			s.computeDuals()
			st = s.primal()
		}
	}
	return st
}

// driveOut pivots zero-step basic columns selected by target out of the
// basis wherever a usable non-fixed structural or slack column exists,
// reporting whether any swap happened. Phase 1 uses it to eject artificials;
// the post-optimal pass uses it to eject fixed columns (EQ slacks, leftover
// artificials), matching the dense oracle's artificial elimination so that
// degenerate duals reflect marginal activity — the convention the power-grid
// LMPs and the paper-hour budget shadow price rely on. Columns covering
// genuinely redundant rows stay basic at zero (their row blocks nothing).
func (s *revSolver) driveOut(target func(col int) bool) bool {
	pr := s.pr
	m, n := pr.m, pr.n
	swapped := false
	for pos := 0; pos < m; pos++ {
		if !target(s.basis[pos]) {
			continue
		}
		s.pivotRow(pos)
		bestJ, bestA := -1, 1e-7
		for j := 0; j < n+m; j++ {
			if s.status[j] == isBasic || pr.lo[j] == pr.hi[j] {
				continue
			}
			if a := math.Abs(s.alpha[j]); a > bestA {
				bestA, bestJ = a, j
			}
		}
		if bestJ < 0 {
			continue
		}
		for i := range s.colBuf[:m] {
			s.colBuf[i] = 0
		}
		pr.colEach(bestJ, func(i int, v float64) { s.colBuf[i] = v })
		s.f.ftran(s.colBuf, s.luBuf)
		if math.Abs(s.colBuf[pos]) < 1e-7 {
			continue
		}
		// Degenerate swap: the artificial leaves at 0, the entering column
		// keeps its bound value, no basic value moves.
		r := s.basis[pos]
		s.inBase[r] = -1
		s.status[r] = atLower
		vq := s.value(bestJ)
		s.basis[pos] = bestJ
		s.inBase[bestJ] = pos
		s.status[bestJ] = isBasic
		s.xB[pos] = vq
		s.f.update(pos, s.colBuf[:m])
		s.updates++
		swapped = true
		if len(s.f.etas) >= refactorEvery {
			if !s.refactorize() {
				return swapped
			}
		}
	}
	return swapped
}

// extract converts the solver state into a Solution (row duals recomputed
// fresh; the equality form keeps the problem's own row orientation, so no
// per-row sign fixups are needed — only the maximization flip).
func (s *revSolver) extract(p *Problem, st Status) Solution {
	sol := Solution{Status: st, Pivots: s.pivots, Refactorizations: s.refactors, BasisUpdates: s.updates}
	if st != Optimal {
		return sol
	}
	pr := s.pr
	x := make([]float64, pr.n)
	for j := 0; j < pr.n; j++ {
		if pos := s.inBase[j]; pos >= 0 {
			x[j] = s.xB[pos]
		} else {
			x[j] = s.value(j)
		}
	}
	sol.X = x
	sol.Objective = p.Eval(x)
	s.computeDuals()
	duals := make([]float64, pr.m)
	copy(duals, s.y[:pr.m])
	if p.maximize {
		for k := range duals {
			duals[k] = -duals[k]
		}
	}
	sol.Duals = duals
	return sol
}

// extractX is extract without the dual recomputation, for warm ReSolves
// (whose dense counterpart also reports no duals).
func (s *revSolver) extractX(p *Problem, st Status) Solution {
	sol := Solution{Status: st, Pivots: s.pivots, Refactorizations: s.refactors, BasisUpdates: s.updates}
	if st != Optimal {
		return sol
	}
	pr := s.pr
	x := make([]float64, pr.n)
	for j := 0; j < pr.n; j++ {
		if pos := s.inBase[j]; pos >= 0 {
			x[j] = s.xB[pos]
		} else {
			x[j] = s.value(j)
		}
	}
	sol.X = x
	sol.Objective = p.Eval(x)
	return sol
}

// cloneForReSolve copies everything a re-solve mutates: statuses, values,
// reduced costs, bounds, and the factor's eta slice (capacity-clamped so
// appends reallocate). The LU arrays, matrix, and cost vector stay shared
// read-only, which is what makes per-node B&B re-solves and per-worker
// clones cheap.
func (s *revSolver) cloneForReSolve() *revSolver {
	pr := *s.pr
	pr.lo = append([]float64(nil), s.pr.lo...)
	pr.hi = append([]float64(nil), s.pr.hi...)
	c := newRevSolver(&pr, Options{MaxPivots: 50*(pr.m+pr.nTot()) + 500})
	copy(c.basis, s.basis)
	copy(c.inBase, s.inBase[:len(c.inBase)])
	copy(c.status, s.status)
	copy(c.xB, s.xB)
	copy(c.d, s.d)
	copy(c.w, s.w)
	c.f = s.f.clone()
	c.phase1 = false
	return c
}

// solveRevised runs the sparse core. ok == false means the core hit a
// numerical wall (singular refactorization) and the caller should fall back
// to the dense oracle; every ordinary outcome (including Infeasible,
// Unbounded, IterLimit) reports ok == true.
func (p *Problem) solveRevised(opt Options) (Solution, *revSolver, bool) {
	pr := newRevProblem(p)
	if len(opt.CrashBasis) > 0 {
		if sol, s, ok := p.crashRevised(pr, opt); ok {
			return sol, s, true
		}
		// The supplied basis did not fit or could not be repaired; go cold.
	}
	s := newRevSolver(pr, opt)
	st := s.coldSolve()
	if s.failed {
		return Solution{}, nil, false
	}
	sol := s.extract(p, st)
	if st != Optimal {
		return sol, nil, true
	}
	return sol, s, true
}

// crashRevised starts from a caller-supplied basis (WarmStart.Basis of a
// structurally identical problem): factor it, then repair to optimality with
// the primal simplex (already feasible) or dual simplex plus primal polish
// (only dual-feasible). Any screen failure reports ok == false and the
// caller solves cold; correctness never depends on the supplied basis.
func (p *Problem) crashRevised(pr *revProblem, opt Options) (Solution, *revSolver, bool) {
	m, n := pr.m, pr.n
	cb := opt.CrashBasis
	if len(cb) != m {
		return Solution{}, nil, false
	}
	seen := make([]bool, n+m)
	for _, b := range cb {
		if b < 0 || b >= n+m || seen[b] {
			return Solution{}, nil, false
		}
		seen[b] = true
	}
	s := newRevSolver(pr, opt)
	copy(s.basis, cb)
	for i, b := range cb {
		s.inBase[b] = i
		s.status[b] = isBasic
	}
	for j := 0; j < n+m; j++ {
		if s.status[j] == isBasic {
			continue
		}
		if math.IsInf(pr.lo[j], -1) {
			s.status[j] = atUpper // GE slacks: the only unbounded-below columns
		} else {
			s.status[j] = atLower
		}
	}
	f, ok := factorize(pr, s.basis)
	if !ok {
		return Solution{}, nil, false
	}
	s.f = f
	s.computeXB()
	s.computeDuals()

	feasible := true
	for i := 0; i < m; i++ {
		bc := s.basis[i]
		if s.xB[i] < pr.lo[bc]-1e-7 || s.xB[i] > pr.hi[bc]+1e-7 {
			feasible = false
			break
		}
	}
	if !feasible {
		for j := 0; j < n+m; j++ {
			if s.status[j] == isBasic || pr.lo[j] == pr.hi[j] {
				continue
			}
			if (s.status[j] == atLower && s.d[j] < -1e-7) ||
				(s.status[j] == atUpper && s.d[j] > 1e-7) {
				return Solution{}, nil, false // neither feasible: phase 1 it is
			}
		}
		if st := s.dual(); st != Optimal || s.failed {
			return Solution{}, nil, false
		}
	}
	if st := s.primal(); st != Optimal || s.failed {
		return Solution{}, nil, false
	}
	return s.extract(p, Optimal), s, true
}

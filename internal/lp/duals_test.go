package lp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDualsKnownExample(t *testing.T) {
	// max 3x+5y s.t. x ≤ 4, 2y ≤ 12, 3x+2y ≤ 18 → optimum 36 at (2,6).
	// Textbook duals: y1 = 0, y2 = 3/2, y3 = 1.
	p := NewProblem()
	p.SetMaximize(true)
	x := p.AddVar("x", 3)
	y := p.AddVar("y", 5)
	p.AddConstraint([]Term{{Var: x, Coef: 1}}, LE, 4)
	p.AddConstraint([]Term{{Var: y, Coef: 2}}, LE, 12)
	p.AddConstraint([]Term{{Var: x, Coef: 3}, {Var: y, Coef: 2}}, LE, 18)
	s := p.Solve()
	if s.Status != Optimal {
		t.Fatal(s.Status)
	}
	want := []float64{0, 1.5, 1}
	for k, w := range want {
		if !near(s.Duals[k], w, 1e-8) {
			t.Errorf("dual[%d] = %v, want %v", k, s.Duals[k], w)
		}
	}
}

func TestDualsShadowPriceDirection(t *testing.T) {
	// min x s.t. x ≥ 5: relaxing b upward by 1 raises the optimum by 1, so
	// the dual is +1 (minimization sense).
	p := NewProblem()
	x := p.AddVar("x", 1)
	p.AddConstraint([]Term{{Var: x, Coef: 1}}, GE, 5)
	s := p.Solve()
	if s.Status != Optimal || !near(s.Duals[0], 1, 1e-9) {
		t.Fatalf("dual = %v, want 1", s.Duals)
	}
	// Same row written as −x ≤ −5 (negated rhs): the dual must come back in
	// the ORIGINAL row's orientation: d(obj)/d(−5) = −1.
	q := NewProblem()
	xq := q.AddVar("x", 1)
	q.AddConstraint([]Term{{Var: xq, Coef: -1}}, LE, -5)
	sq := q.Solve()
	if sq.Status != Optimal || !near(sq.Duals[0], -1, 1e-9) {
		t.Fatalf("negated-row dual = %v, want -1", sq.Duals)
	}
}

func TestDualsEqualityRow(t *testing.T) {
	// min 2x+3y s.t. x+y = 10, x ≤ 6. At optimum x=6, y=4 → 24.
	// Raising the equality rhs by δ forces more y: dObj/db = 3.
	p := NewProblem()
	x := p.AddVar("x", 2)
	y := p.AddVar("y", 3)
	p.AddConstraint([]Term{{Var: x, Coef: 1}, {Var: y, Coef: 1}}, EQ, 10)
	p.AddConstraint([]Term{{Var: x, Coef: 1}}, LE, 6)
	s := p.Solve()
	if s.Status != Optimal {
		t.Fatal(s.Status)
	}
	if !near(s.Duals[0], 3, 1e-8) {
		t.Errorf("equality dual = %v, want 3", s.Duals[0])
	}
	// The x ≤ 6 row saves 1 per unit (swap y for x): dual −1 (min sense).
	if !near(s.Duals[1], -1, 1e-8) {
		t.Errorf("binding ≤ dual = %v, want -1", s.Duals[1])
	}
}

// TestStrongDualityProperty: for feasible bounded problems with x ≥ 0,
// strong duality gives cᵀx* = Σ_k y_k b_k when the duals are the standard
// row prices (variable bounds at zero contribute nothing).
func TestStrongDualityProperty(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p, _ := randomFeasibleLP(r)
		s := p.Solve()
		if s.Status != Optimal {
			return true
		}
		yb := 0.0
		for k := 0; k < p.NumConstraints(); k++ {
			yb += s.Duals[k] * p.Constraint(k).RHS
		}
		if !near(yb, s.Objective, 1e-6*(1+math.Abs(s.Objective))) {
			t.Logf("seed %d: yᵀb = %v vs objective %v", seed, yb, s.Objective)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestDualsPredictPerturbationProperty: nudging a binding row's rhs by a
// small δ changes the optimum by ≈ y_k·δ (basis permitting).
func TestDualsPredictPerturbation(t *testing.T) {
	p := NewProblem()
	x := p.AddVar("x", 3)
	y := p.AddVar("y", 5)
	p.AddConstraint([]Term{{Var: x, Coef: 1}}, LE, 4)
	p.AddConstraint([]Term{{Var: y, Coef: 2}}, LE, 12)
	row := p.AddConstraint([]Term{{Var: x, Coef: 3}, {Var: y, Coef: 2}}, LE, 18)
	p.SetMaximize(true)
	s := p.Solve()

	const delta = 0.25
	q := p.Clone()
	// Rebuild the perturbed row: Clone has no rhs mutator, so add a fresh
	// problem with the shifted rhs.
	q2 := NewProblem()
	q2.SetMaximize(true)
	xq := q2.AddVar("x", 3)
	yq := q2.AddVar("y", 5)
	q2.AddConstraint([]Term{{Var: xq, Coef: 1}}, LE, 4)
	q2.AddConstraint([]Term{{Var: yq, Coef: 2}}, LE, 12)
	q2.AddConstraint([]Term{{Var: xq, Coef: 3}, {Var: yq, Coef: 2}}, LE, 18+delta)
	s2 := q2.Solve()
	_ = q
	want := s.Objective + s.Duals[row]*delta
	if !near(s2.Objective, want, 1e-8) {
		t.Errorf("perturbed objective %v, dual predicts %v", s2.Objective, want)
	}
}

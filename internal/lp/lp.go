// Package lp solves linear programs in the form
//
//	minimize    c·x
//	subject to  a_k·x (≤ | = | ≥) b_k   for every constraint k
//	            lo ≤ x ≤ hi             (lo ≥ 0; hi may be +Inf)
//
// Two interchangeable cores implement the same contract:
//
//   - CoreSparse (the default): a sparse revised simplex over a CSC-stored
//     constraint matrix with an LU-factorized basis, eta-file updates between
//     periodic refactorizations, native bounded-variable handling and Devex
//     pricing. Branching bounds and binary bounds are bound changes, not rows,
//     so the basis never grows during branch and bound.
//   - CoreDense: the original dense two-phase tableau simplex, retained as the
//     correctness oracle (variable bounds are lowered into explicit rows).
//
// Both cores answer identically within tolerance; the cross-oracle property
// tests in this package enforce that.
package lp

import (
	"fmt"
	"math"
	"sync/atomic"
)

// Core selects the simplex implementation.
type Core int

// Core values. The zero value defers to the package default (see
// SetDefaultCore), which is the sparse revised simplex.
const (
	CoreDefault Core = iota // package default (sparse unless overridden)
	CoreSparse              // sparse revised simplex, LU basis, Devex pricing
	CoreDense               // dense two-phase tableau (the correctness oracle)
)

// String names the core ("sparse", "dense").
func (c Core) String() string {
	switch c {
	case CoreSparse:
		return "sparse"
	case CoreDense:
		return "dense"
	case CoreDefault:
		return "default"
	}
	return fmt.Sprintf("Core(%d)", int(c))
}

// ParseCore maps "dense"/"sparse" (or "" for the default) onto a Core.
func ParseCore(s string) (Core, error) {
	switch s {
	case "", "default":
		return CoreDefault, nil
	case "sparse":
		return CoreSparse, nil
	case "dense":
		return CoreDense, nil
	}
	return CoreDefault, fmt.Errorf("lp: unknown core %q (want dense or sparse)", s)
}

// defaultCore holds the process-wide core used when Options.Core is
// CoreDefault. Atomic so benchmarks and servers can flip it concurrently.
var defaultCore atomic.Int32

// SetDefaultCore overrides the package-wide default core (CoreDefault resets
// to the built-in sparse default).
func SetDefaultCore(c Core) { defaultCore.Store(int32(c)) }

// DefaultCore reports the core a zero-value Options would use.
func DefaultCore() Core {
	if c := Core(defaultCore.Load()); c == CoreSparse || c == CoreDense {
		return c
	}
	return CoreSparse
}

// core resolves the options' core selection.
func (o Options) core() Core {
	if o.Core == CoreSparse || o.Core == CoreDense {
		return o.Core
	}
	return DefaultCore()
}

// Rel is the relation of a constraint row to its right-hand side.
type Rel int

// Constraint relations.
const (
	LE Rel = iota // a·x ≤ b
	GE            // a·x ≥ b
	EQ            // a·x = b
)

// String returns the conventional symbol for the relation.
func (r Rel) String() string {
	switch r {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "="
	}
	return fmt.Sprintf("Rel(%d)", int(r))
}

// Term is one sparse entry of a constraint or objective row.
type Term struct {
	Var  int     // variable index, 0-based
	Coef float64 // coefficient
}

// Constraint is a single linear row a·x (rel) b stored densely.
type Constraint struct {
	Coeffs []float64
	Rel    Rel
	RHS    float64
}

// Problem is a linear program under construction. The zero value is an empty
// problem ready for AddVar / AddConstraint.
type Problem struct {
	obj         []float64
	names       []string
	lower       []float64 // per-variable lower bounds (finite, ≥ 0)
	upper       []float64 // per-variable upper bounds (may be +Inf)
	constraints []Constraint
	maximize    bool
}

// NewProblem returns an empty minimization problem.
func NewProblem() *Problem { return &Problem{} }

// SetMaximize flips the optimization direction to maximization. The reported
// Solution.Objective is then the maximized value.
func (p *Problem) SetMaximize(max bool) { p.maximize = max }

// Maximizing reports whether the problem maximizes its objective.
func (p *Problem) Maximizing() bool { return p.maximize }

// AddVar appends a nonnegative variable with the given objective coefficient
// and returns its index. The name is only used for diagnostics.
func (p *Problem) AddVar(name string, objCoef float64) int {
	p.obj = append(p.obj, objCoef)
	p.names = append(p.names, name)
	p.lower = append(p.lower, 0)
	p.upper = append(p.upper, math.Inf(1))
	for i := range p.constraints {
		p.constraints[i].Coeffs = append(p.constraints[i].Coeffs, 0)
	}
	return len(p.obj) - 1
}

// SetVarBounds replaces the bounds of variable v with lo ≤ x_v ≤ hi. The
// lower bound must be finite and nonnegative (both cores keep x ≥ 0 exact);
// hi may be +Inf. The sparse core handles bounds natively — they cost no
// constraint rows — while the dense oracle lowers them into internal rows.
func (p *Problem) SetVarBounds(v int, lo, hi float64) {
	if v < 0 || v >= len(p.obj) {
		panic(fmt.Sprintf("lp: SetVarBounds on unknown variable %d", v))
	}
	if math.IsNaN(lo) || math.IsNaN(hi) || math.IsInf(lo, 0) || lo < 0 || hi < lo {
		panic(fmt.Sprintf("lp: invalid bounds [%g, %g] for variable %d", lo, hi, v))
	}
	p.lower[v] = lo
	p.upper[v] = hi
}

// VarBounds returns the [lo, hi] bounds of variable v (default [0, +Inf)).
func (p *Problem) VarBounds(v int) (lo, hi float64) { return p.lower[v], p.upper[v] }

// defaultBounds reports whether variable v still has the AddVar default
// bounds [0, +Inf).
func (p *Problem) defaultBounds(v int) bool {
	return p.lower[v] == 0 && math.IsInf(p.upper[v], 1)
}

// NumVars returns the number of variables added so far.
func (p *Problem) NumVars() int { return len(p.obj) }

// NumConstraints returns the number of constraint rows added so far.
func (p *Problem) NumConstraints() int { return len(p.constraints) }

// VarName returns the diagnostic name of variable v.
func (p *Problem) VarName(v int) string {
	if v < 0 || v >= len(p.names) {
		return fmt.Sprintf("x%d", v)
	}
	return p.names[v]
}

// ObjectiveCoef returns the objective coefficient of variable v.
func (p *Problem) ObjectiveCoef(v int) float64 { return p.obj[v] }

// SetObjectiveCoef overwrites the objective coefficient of variable v.
func (p *Problem) SetObjectiveCoef(v int, c float64) { p.obj[v] = c }

// AddConstraint appends the row Σ terms (rel) rhs and returns its index.
// Terms referencing the same variable accumulate.
func (p *Problem) AddConstraint(terms []Term, rel Rel, rhs float64) int {
	row := make([]float64, len(p.obj))
	for _, t := range terms {
		if t.Var < 0 || t.Var >= len(p.obj) {
			panic(fmt.Sprintf("lp: constraint references unknown variable %d", t.Var))
		}
		row[t.Var] += t.Coef
	}
	p.constraints = append(p.constraints, Constraint{Coeffs: row, Rel: rel, RHS: rhs})
	return len(p.constraints) - 1
}

// Constraint returns a copy-free view of row k. Callers must not mutate it.
func (p *Problem) Constraint(k int) Constraint { return p.constraints[k] }

// SetCoef overwrites the coefficient of variable v in constraint row k. It is
// the patching primitive behind incremental model reuse: a cached skeleton
// whose structure (rows, relations, variables) matches the new instance only
// needs its changed coefficients rewritten instead of a full rebuild.
func (p *Problem) SetCoef(k, v int, c float64) { p.constraints[k].Coeffs[v] = c }

// SetRHS overwrites the right-hand side of constraint row k.
func (p *Problem) SetRHS(k int, rhs float64) { p.constraints[k].RHS = rhs }

// Clone returns a deep copy of the problem, so that the copy can gain extra
// rows (e.g. branching bounds) without disturbing the original.
func (p *Problem) Clone() *Problem {
	q := &Problem{
		obj:      append([]float64(nil), p.obj...),
		names:    append([]string(nil), p.names...),
		lower:    append([]float64(nil), p.lower...),
		upper:    append([]float64(nil), p.upper...),
		maximize: p.maximize,
	}
	q.constraints = make([]Constraint, len(p.constraints))
	for i, c := range p.constraints {
		q.constraints[i] = Constraint{
			Coeffs: append([]float64(nil), c.Coeffs...),
			Rel:    c.Rel,
			RHS:    c.RHS,
		}
	}
	return q
}

// Status is the outcome of a solve.
type Status int

// Solve outcomes.
const (
	Optimal    Status = iota // an optimal basic feasible solution was found
	Infeasible               // no point satisfies all constraints
	Unbounded                // the objective decreases without bound
	IterLimit                // the pivot limit was exhausted (should not happen)
)

// String names the status.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case IterLimit:
		return "iteration-limit"
	}
	return fmt.Sprintf("Status(%d)", int(s))
}

// Solution holds the result of a solve.
type Solution struct {
	Status    Status
	X         []float64 // variable values (valid when Status == Optimal)
	Objective float64   // objective value in the problem's own direction
	Pivots    int       // simplex iterations performed across both phases
	// Duals holds one shadow price per constraint row (valid when Status ==
	// Optimal): the rate of change of the optimal objective per unit of
	// right-hand side, in the problem's own optimization direction. This is
	// what makes the locational marginal price of a power-balance row drop
	// out of an optimal power flow.
	Duals []float64
	// Refactorizations and BasisUpdates count the sparse core's LU rebuilds
	// and eta-file basis updates; both stay 0 on the dense oracle.
	Refactorizations int
	BasisUpdates     int
}

// Residual describes how much a solution violates one constraint.
type Residual struct {
	Row       int
	Violation float64 // positive amount by which the row is violated
}

// CheckFeasible returns the rows of p violated by x beyond tol, including
// variable-bound violations (reported with Row == -1-varIndex).
func (p *Problem) CheckFeasible(x []float64, tol float64) []Residual {
	var out []Residual
	for v, xv := range x {
		lo, hi := 0.0, math.Inf(1)
		if v < len(p.lower) {
			lo, hi = p.lower[v], p.upper[v]
		}
		if xv < lo-tol {
			out = append(out, Residual{Row: -1 - v, Violation: lo - xv})
		} else if xv > hi+tol {
			out = append(out, Residual{Row: -1 - v, Violation: xv - hi})
		}
	}
	for k, c := range p.constraints {
		dot := 0.0
		for j, a := range c.Coeffs {
			if j < len(x) {
				dot += a * x[j]
			}
		}
		var viol float64
		switch c.Rel {
		case LE:
			viol = dot - c.RHS
		case GE:
			viol = c.RHS - dot
		case EQ:
			viol = math.Abs(dot - c.RHS)
		}
		if viol > tol {
			out = append(out, Residual{Row: k, Violation: viol})
		}
	}
	return out
}

// Eval returns the objective value of x in the problem's own direction.
func (p *Problem) Eval(x []float64) float64 {
	dot := 0.0
	for j, c := range p.obj {
		if j < len(x) {
			dot += c * x[j]
		}
	}
	return dot
}

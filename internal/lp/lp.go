// Package lp implements a dense two-phase primal simplex solver for linear
// programs in the form
//
//	minimize    c·x
//	subject to  a_k·x (≤ | = | ≥) b_k   for every constraint k
//	            x ≥ 0
//
// All variables are nonnegative; callers that need upper bounds or branching
// bounds (as the MILP layer does) add them as explicit constraint rows. The
// problems produced by this repository are tiny (tens of variables and rows),
// so a dense tableau is both simple and fast.
package lp

import (
	"fmt"
	"math"
)

// Rel is the relation of a constraint row to its right-hand side.
type Rel int

// Constraint relations.
const (
	LE Rel = iota // a·x ≤ b
	GE            // a·x ≥ b
	EQ            // a·x = b
)

// String returns the conventional symbol for the relation.
func (r Rel) String() string {
	switch r {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "="
	}
	return fmt.Sprintf("Rel(%d)", int(r))
}

// Term is one sparse entry of a constraint or objective row.
type Term struct {
	Var  int     // variable index, 0-based
	Coef float64 // coefficient
}

// Constraint is a single linear row a·x (rel) b stored densely.
type Constraint struct {
	Coeffs []float64
	Rel    Rel
	RHS    float64
}

// Problem is a linear program under construction. The zero value is an empty
// problem ready for AddVar / AddConstraint.
type Problem struct {
	obj         []float64
	names       []string
	constraints []Constraint
	maximize    bool
}

// NewProblem returns an empty minimization problem.
func NewProblem() *Problem { return &Problem{} }

// SetMaximize flips the optimization direction to maximization. The reported
// Solution.Objective is then the maximized value.
func (p *Problem) SetMaximize(max bool) { p.maximize = max }

// Maximizing reports whether the problem maximizes its objective.
func (p *Problem) Maximizing() bool { return p.maximize }

// AddVar appends a nonnegative variable with the given objective coefficient
// and returns its index. The name is only used for diagnostics.
func (p *Problem) AddVar(name string, objCoef float64) int {
	p.obj = append(p.obj, objCoef)
	p.names = append(p.names, name)
	for i := range p.constraints {
		p.constraints[i].Coeffs = append(p.constraints[i].Coeffs, 0)
	}
	return len(p.obj) - 1
}

// NumVars returns the number of variables added so far.
func (p *Problem) NumVars() int { return len(p.obj) }

// NumConstraints returns the number of constraint rows added so far.
func (p *Problem) NumConstraints() int { return len(p.constraints) }

// VarName returns the diagnostic name of variable v.
func (p *Problem) VarName(v int) string {
	if v < 0 || v >= len(p.names) {
		return fmt.Sprintf("x%d", v)
	}
	return p.names[v]
}

// ObjectiveCoef returns the objective coefficient of variable v.
func (p *Problem) ObjectiveCoef(v int) float64 { return p.obj[v] }

// SetObjectiveCoef overwrites the objective coefficient of variable v.
func (p *Problem) SetObjectiveCoef(v int, c float64) { p.obj[v] = c }

// AddConstraint appends the row Σ terms (rel) rhs and returns its index.
// Terms referencing the same variable accumulate.
func (p *Problem) AddConstraint(terms []Term, rel Rel, rhs float64) int {
	row := make([]float64, len(p.obj))
	for _, t := range terms {
		if t.Var < 0 || t.Var >= len(p.obj) {
			panic(fmt.Sprintf("lp: constraint references unknown variable %d", t.Var))
		}
		row[t.Var] += t.Coef
	}
	p.constraints = append(p.constraints, Constraint{Coeffs: row, Rel: rel, RHS: rhs})
	return len(p.constraints) - 1
}

// Constraint returns a copy-free view of row k. Callers must not mutate it.
func (p *Problem) Constraint(k int) Constraint { return p.constraints[k] }

// SetCoef overwrites the coefficient of variable v in constraint row k. It is
// the patching primitive behind incremental model reuse: a cached skeleton
// whose structure (rows, relations, variables) matches the new instance only
// needs its changed coefficients rewritten instead of a full rebuild.
func (p *Problem) SetCoef(k, v int, c float64) { p.constraints[k].Coeffs[v] = c }

// SetRHS overwrites the right-hand side of constraint row k.
func (p *Problem) SetRHS(k int, rhs float64) { p.constraints[k].RHS = rhs }

// Clone returns a deep copy of the problem, so that the copy can gain extra
// rows (e.g. branching bounds) without disturbing the original.
func (p *Problem) Clone() *Problem {
	q := &Problem{
		obj:      append([]float64(nil), p.obj...),
		names:    append([]string(nil), p.names...),
		maximize: p.maximize,
	}
	q.constraints = make([]Constraint, len(p.constraints))
	for i, c := range p.constraints {
		q.constraints[i] = Constraint{
			Coeffs: append([]float64(nil), c.Coeffs...),
			Rel:    c.Rel,
			RHS:    c.RHS,
		}
	}
	return q
}

// Status is the outcome of a solve.
type Status int

// Solve outcomes.
const (
	Optimal    Status = iota // an optimal basic feasible solution was found
	Infeasible               // no point satisfies all constraints
	Unbounded                // the objective decreases without bound
	IterLimit                // the pivot limit was exhausted (should not happen)
)

// String names the status.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case IterLimit:
		return "iteration-limit"
	}
	return fmt.Sprintf("Status(%d)", int(s))
}

// Solution holds the result of a solve.
type Solution struct {
	Status    Status
	X         []float64 // variable values (valid when Status == Optimal)
	Objective float64   // objective value in the problem's own direction
	Pivots    int       // simplex pivots performed across both phases
	// Duals holds one shadow price per constraint row (valid when Status ==
	// Optimal): the rate of change of the optimal objective per unit of
	// right-hand side, in the problem's own optimization direction. This is
	// what makes the locational marginal price of a power-balance row drop
	// out of an optimal power flow.
	Duals []float64
}

// Residual describes how much a solution violates one constraint.
type Residual struct {
	Row       int
	Violation float64 // positive amount by which the row is violated
}

// CheckFeasible returns the rows of p violated by x beyond tol, including
// negativity of any variable (reported with Row == -1-varIndex).
func (p *Problem) CheckFeasible(x []float64, tol float64) []Residual {
	var out []Residual
	for v, xv := range x {
		if xv < -tol {
			out = append(out, Residual{Row: -1 - v, Violation: -xv})
		}
	}
	for k, c := range p.constraints {
		dot := 0.0
		for j, a := range c.Coeffs {
			if j < len(x) {
				dot += a * x[j]
			}
		}
		var viol float64
		switch c.Rel {
		case LE:
			viol = dot - c.RHS
		case GE:
			viol = c.RHS - dot
		case EQ:
			viol = math.Abs(dot - c.RHS)
		}
		if viol > tol {
			out = append(out, Residual{Row: k, Violation: viol})
		}
	}
	return out
}

// Eval returns the objective value of x in the problem's own direction.
func (p *Problem) Eval(x []float64) float64 {
	dot := 0.0
	for j, c := range p.obj {
		if j < len(x) {
			dot += c * x[j]
		}
	}
	return dot
}

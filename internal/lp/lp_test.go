package lp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func near(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSimpleMin(t *testing.T) {
	// min x+y s.t. x+2y >= 4, 3x+y >= 6, x,y >= 0. Optimum at intersection
	// (8/5, 6/5) with value 14/5.
	p := NewProblem()
	x := p.AddVar("x", 1)
	y := p.AddVar("y", 1)
	p.AddConstraint([]Term{{x, 1}, {y, 2}}, GE, 4)
	p.AddConstraint([]Term{{x, 3}, {y, 1}}, GE, 6)
	s := p.Solve()
	if s.Status != Optimal {
		t.Fatalf("status = %v, want optimal", s.Status)
	}
	if !near(s.Objective, 14.0/5, 1e-8) {
		t.Errorf("objective = %v, want 2.8", s.Objective)
	}
	if !near(s.X[x], 1.6, 1e-8) || !near(s.X[y], 1.2, 1e-8) {
		t.Errorf("x = %v, want (1.6, 1.2)", s.X)
	}
}

func TestSimpleMax(t *testing.T) {
	// max 3x+5y s.t. x <= 4, 2y <= 12, 3x+2y <= 18. Classic optimum 36 at (2,6).
	p := NewProblem()
	p.SetMaximize(true)
	x := p.AddVar("x", 3)
	y := p.AddVar("y", 5)
	p.AddConstraint([]Term{{x, 1}}, LE, 4)
	p.AddConstraint([]Term{{y, 2}}, LE, 12)
	p.AddConstraint([]Term{{x, 3}, {y, 2}}, LE, 18)
	s := p.Solve()
	if s.Status != Optimal {
		t.Fatalf("status = %v, want optimal", s.Status)
	}
	if !near(s.Objective, 36, 1e-8) {
		t.Errorf("objective = %v, want 36", s.Objective)
	}
	if !near(s.X[x], 2, 1e-8) || !near(s.X[y], 6, 1e-8) {
		t.Errorf("x = %v, want (2, 6)", s.X)
	}
}

func TestEquality(t *testing.T) {
	// min 2x+3y s.t. x+y = 10, x-y <= 2. Optimum x=10,y=0? Check: minimize
	// 2x+3y with x+y=10 prefers all weight on x, but x-y<=2 forces x <= 6,
	// y >= 4: x=6, y=4, obj = 24.
	p := NewProblem()
	x := p.AddVar("x", 2)
	y := p.AddVar("y", 3)
	p.AddConstraint([]Term{{x, 1}, {y, 1}}, EQ, 10)
	p.AddConstraint([]Term{{x, 1}, {y, -1}}, LE, 2)
	s := p.Solve()
	if s.Status != Optimal {
		t.Fatalf("status = %v, want optimal", s.Status)
	}
	if !near(s.Objective, 24, 1e-8) {
		t.Errorf("objective = %v, want 24", s.Objective)
	}
}

func TestInfeasible(t *testing.T) {
	p := NewProblem()
	x := p.AddVar("x", 1)
	p.AddConstraint([]Term{{x, 1}}, GE, 5)
	p.AddConstraint([]Term{{x, 1}}, LE, 3)
	if s := p.Solve(); s.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", s.Status)
	}
}

func TestUnbounded(t *testing.T) {
	p := NewProblem()
	x := p.AddVar("x", -1) // minimize -x with x free above
	p.AddConstraint([]Term{{x, 1}}, GE, 1)
	if s := p.Solve(); s.Status != Unbounded {
		t.Fatalf("status = %v, want unbounded", s.Status)
	}
}

func TestNegativeRHS(t *testing.T) {
	// -x - y <= -4  is  x + y >= 4; min x+2y → x=4, y=0, obj 4.
	p := NewProblem()
	x := p.AddVar("x", 1)
	y := p.AddVar("y", 2)
	p.AddConstraint([]Term{{x, -1}, {y, -1}}, LE, -4)
	s := p.Solve()
	if s.Status != Optimal {
		t.Fatalf("status = %v, want optimal", s.Status)
	}
	if !near(s.Objective, 4, 1e-8) {
		t.Errorf("objective = %v, want 4", s.Objective)
	}
}

func TestNegativeRHSEquality(t *testing.T) {
	// -x = -7 → x = 7.
	p := NewProblem()
	x := p.AddVar("x", 1)
	p.AddConstraint([]Term{{x, -1}}, EQ, -7)
	s := p.Solve()
	if s.Status != Optimal || !near(s.X[x], 7, 1e-8) {
		t.Fatalf("got %v x=%v, want optimal x=7", s.Status, s.X)
	}
}

func TestDegenerateBeale(t *testing.T) {
	// Beale's classic cycling example. With anti-cycling safeguards the
	// solver must terminate at optimum -0.05.
	p := NewProblem()
	x1 := p.AddVar("x1", -0.75)
	x2 := p.AddVar("x2", 150)
	x3 := p.AddVar("x3", -0.02)
	x4 := p.AddVar("x4", 6)
	p.AddConstraint([]Term{{x1, 0.25}, {x2, -60}, {x3, -0.04}, {x4, 9}}, LE, 0)
	p.AddConstraint([]Term{{x1, 0.5}, {x2, -90}, {x3, -0.02}, {x4, 3}}, LE, 0)
	p.AddConstraint([]Term{{x3, 1}}, LE, 1)
	s := p.Solve()
	if s.Status != Optimal {
		t.Fatalf("status = %v, want optimal", s.Status)
	}
	if !near(s.Objective, -0.05, 1e-8) {
		t.Errorf("objective = %v, want -0.05", s.Objective)
	}
}

func TestZeroConstraintProblem(t *testing.T) {
	// No constraints: min of a nonnegative-coefficient objective is 0 at x=0.
	p := NewProblem()
	p.AddVar("x", 3)
	p.AddVar("y", 1)
	s := p.Solve()
	if s.Status != Optimal || !near(s.Objective, 0, 1e-12) {
		t.Fatalf("got %v obj=%v, want optimal 0", s.Status, s.Objective)
	}
}

func TestAddVarAfterConstraint(t *testing.T) {
	p := NewProblem()
	x := p.AddVar("x", 1)
	p.AddConstraint([]Term{{x, 1}}, GE, 2)
	y := p.AddVar("y", 1) // must extend the existing row with a zero
	p.AddConstraint([]Term{{y, 1}}, GE, 3)
	s := p.Solve()
	if s.Status != Optimal || !near(s.Objective, 5, 1e-9) {
		t.Fatalf("got %v obj=%v, want optimal 5", s.Status, s.Objective)
	}
}

func TestClone(t *testing.T) {
	p := NewProblem()
	x := p.AddVar("x", 1)
	p.AddConstraint([]Term{{x, 1}}, GE, 2)
	q := p.Clone()
	q.AddConstraint([]Term{{x, 1}}, GE, 10)
	sp := p.Solve()
	sq := q.Solve()
	if !near(sp.Objective, 2, 1e-9) || !near(sq.Objective, 10, 1e-9) {
		t.Fatalf("clone leaked rows: p=%v q=%v", sp.Objective, sq.Objective)
	}
}

func TestCheckFeasible(t *testing.T) {
	p := NewProblem()
	x := p.AddVar("x", 1)
	y := p.AddVar("y", 1)
	p.AddConstraint([]Term{{x, 1}, {y, 1}}, LE, 5)
	p.AddConstraint([]Term{{x, 1}}, GE, 1)
	if v := p.CheckFeasible([]float64{2, 2}, 1e-9); len(v) != 0 {
		t.Errorf("feasible point flagged: %v", v)
	}
	viol := p.CheckFeasible([]float64{6, 0}, 1e-9)
	if len(viol) != 1 || viol[0].Row != 0 || !near(viol[0].Violation, 1, 1e-9) {
		t.Errorf("violations = %v, want row 0 by 1", viol)
	}
	if v := p.CheckFeasible([]float64{-1, 3}, 1e-9); len(v) == 0 {
		t.Errorf("negative variable not flagged")
	}
}

// randomFeasibleLP builds a random LP that is feasible by construction: a
// random nonnegative point x0 is chosen first and every ≤ row gets slack on
// top of a·x0, every ≥ row gets rhs below a·x0.
func randomFeasibleLP(r *rand.Rand) (*Problem, []float64) {
	n := 2 + r.Intn(6)
	m := 1 + r.Intn(8)
	x0 := make([]float64, n)
	for j := range x0 {
		x0[j] = 10 * r.Float64()
	}
	p := NewProblem()
	for j := 0; j < n; j++ {
		p.AddVar("x", r.Float64()*4-1) // mixed-sign costs
	}
	for k := 0; k < m; k++ {
		terms := make([]Term, n)
		dot := 0.0
		for j := 0; j < n; j++ {
			c := r.Float64()*6 - 3
			terms[j] = Term{j, c}
			dot += c * x0[j]
		}
		if r.Intn(2) == 0 {
			p.AddConstraint(terms, LE, dot+r.Float64()*5)
		} else {
			p.AddConstraint(terms, GE, dot-r.Float64()*5)
		}
	}
	// Box the variables so the problem cannot be unbounded.
	for j := 0; j < n; j++ {
		p.AddConstraint([]Term{{j, 1}}, LE, 25)
	}
	return p, x0
}

func TestRandomFeasibleProperty(t *testing.T) {
	cfg := &quick.Config{MaxCount: 300}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p, x0 := randomFeasibleLP(r)
		s := p.Solve()
		if s.Status != Optimal {
			t.Logf("seed %d: status %v on feasible-by-construction LP", seed, s.Status)
			return false
		}
		if v := p.CheckFeasible(s.X, 1e-6); len(v) != 0 {
			t.Logf("seed %d: solution infeasible: %v", seed, v)
			return false
		}
		// Optimality versus the known feasible point.
		if s.Objective > p.Eval(x0)+1e-6 {
			t.Logf("seed %d: objective %v worse than feasible point %v", seed, s.Objective, p.Eval(x0))
			return false
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestRandomMaximizeMatchesNegatedMinimize(t *testing.T) {
	cfg := &quick.Config{MaxCount: 150}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p, _ := randomFeasibleLP(r)
		q := p.Clone()
		q.SetMaximize(true)
		for j := 0; j < q.NumVars(); j++ {
			q.SetObjectiveCoef(j, -q.ObjectiveCoef(j))
		}
		sp := p.Solve()
		sq := q.Solve()
		if sp.Status != sq.Status {
			return false
		}
		if sp.Status != Optimal {
			return true
		}
		return near(sp.Objective, -sq.Objective, 1e-6*(1+math.Abs(sp.Objective)))
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestStatusString(t *testing.T) {
	cases := map[Status]string{
		Optimal: "optimal", Infeasible: "infeasible",
		Unbounded: "unbounded", IterLimit: "iteration-limit", Status(9): "Status(9)",
	}
	for st, want := range cases {
		if st.String() != want {
			t.Errorf("Status(%d).String() = %q, want %q", int(st), st.String(), want)
		}
	}
	rels := map[Rel]string{LE: "<=", GE: ">=", EQ: "=", Rel(7): "Rel(7)"}
	for rl, want := range rels {
		if rl.String() != want {
			t.Errorf("Rel String = %q, want %q", rl.String(), want)
		}
	}
}

package lp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// randomOracleProblem draws a small LP with continuous coefficients (so ties
// and alternate optima are measure-zero), mixing default, boxed, shifted and
// fixed variable bounds with LE/GE/EQ rows in both optimization directions.
func randomOracleProblem(r *rand.Rand) *Problem {
	p := NewProblem()
	p.SetMaximize(r.Intn(2) == 0)
	n := 2 + r.Intn(5)
	for j := 0; j < n; j++ {
		v := p.AddVar("x", r.Float64()*10-3)
		switch r.Intn(4) {
		case 0: // default [0, +Inf)
		case 1:
			p.SetVarBounds(v, 0, 0.5+4*r.Float64())
		case 2:
			lo := r.Float64() * 2
			p.SetVarBounds(v, lo, lo+0.5+4*r.Float64())
		case 3:
			val := r.Float64() * 3
			p.SetVarBounds(v, val, val)
		}
	}
	m := 1 + r.Intn(5)
	for k := 0; k < m; k++ {
		terms := make([]Term, 0, n)
		for j := 0; j < n; j++ {
			if r.Intn(3) == 0 {
				continue // keep some sparsity
			}
			terms = append(terms, Term{Var: j, Coef: r.Float64()*8 - 3})
		}
		rel := []Rel{LE, LE, GE, EQ}[r.Intn(4)]
		rhs := r.Float64()*20 - 4
		if rel == GE {
			rhs = -math.Abs(rhs) // keep a feasible region reasonably often
		}
		p.AddConstraint(terms, rel, rhs)
	}
	return p
}

// TestSparseMatchesDenseOracleProperty is the cross-oracle contract: on random
// bounded-variable LPs the sparse revised simplex and the dense tableau must
// agree on status, on the objective to 1e-6, and on the dual vector. Run with
// -race in CI; the two solves share nothing but the immutable Problem.
func TestSparseMatchesDenseOracleProperty(t *testing.T) {
	prop := func(seed int64) bool {
		p := randomOracleProblem(rand.New(rand.NewSource(seed)))
		ds := p.SolveWithOptions(Options{Core: CoreDense})
		ss := p.SolveWithOptions(Options{Core: CoreSparse})
		if ds.Status != ss.Status {
			t.Logf("seed %d: status dense=%v sparse=%v", seed, ds.Status, ss.Status)
			return false
		}
		if ds.Status != Optimal {
			return true
		}
		scale := 1 + math.Abs(ds.Objective)
		if math.Abs(ds.Objective-ss.Objective) > 1e-6*scale {
			t.Logf("seed %d: obj dense=%v sparse=%v", seed, ds.Objective, ss.Objective)
			return false
		}
		if res := p.CheckFeasible(ss.X, 1e-6); len(res) != 0 {
			t.Logf("seed %d: sparse point infeasible: %v", seed, res)
			return false
		}
		if len(ds.Duals) != len(ss.Duals) {
			t.Logf("seed %d: dual length %d vs %d", seed, len(ds.Duals), len(ss.Duals))
			return false
		}
		for k := range ds.Duals {
			if math.Abs(ds.Duals[k]-ss.Duals[k]) > 1e-5*(1+math.Abs(ds.Duals[k])) {
				t.Logf("seed %d: dual[%d] dense=%v sparse=%v", seed, k, ds.Duals[k], ss.Duals[k])
				return false
			}
		}
		// Work accounting sanity: eta updates happen only on basis-changing
		// pivots, and the dense oracle never reports factorization work.
		if ss.BasisUpdates > ss.Pivots {
			t.Logf("seed %d: %d basis updates exceed %d pivots", seed, ss.BasisUpdates, ss.Pivots)
			return false
		}
		if ds.Refactorizations != 0 || ds.BasisUpdates != 0 {
			t.Logf("seed %d: dense oracle reported factorization work", seed)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// TestBlandFallbackOnCyclingProne pins the stall guard: highly degenerate
// instances — every vertex ties at zero, so almost every ratio test returns a
// zero step — must still terminate at the optimum instead of cycling or
// exhausting the pivot budget. The mesh below gives the pricing rule hundreds
// of degenerate columns to churn through, which is what trips the Bland's-rule
// fallback when Devex alone keeps selecting zero-step pivots.
func TestBlandFallbackOnCyclingProne(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	p := NewProblem()
	const n = 40
	vars := make([]int, n)
	for i := range vars {
		vars[i] = p.AddVar("x", -1) // every column wants to enter
	}
	// A ring of x_i ≤ x_{i+1} plus random cross ties, all with rhs 0, and a
	// single cap Σx ≤ 0: with x ≥ 0 the only feasible point is the origin,
	// and every row is active there.
	for i := 0; i < n; i++ {
		p.AddConstraint([]Term{{vars[i], 1}, {vars[(i+1)%n], -1}}, LE, 0)
	}
	for k := 0; k < 2*n; k++ {
		i, j := r.Intn(n), r.Intn(n)
		if i == j {
			continue
		}
		p.AddConstraint([]Term{{vars[i], 1}, {vars[j], -1}}, LE, 0)
	}
	capTerms := make([]Term, n)
	for i := range capTerms {
		capTerms[i] = Term{vars[i], 1}
	}
	p.AddConstraint(capTerms, LE, 0)

	for _, core := range []Core{CoreSparse, CoreDense} {
		s := p.SolveWithOptions(Options{Core: core, MaxPivots: 20000})
		if s.Status != Optimal {
			t.Fatalf("%v core: status %v, want optimal (anti-cycling failed)", core, s.Status)
		}
		if !near(s.Objective, 0, 1e-9) {
			t.Errorf("%v core: objective %v, want 0", core, s.Objective)
		}
	}
}

// TestDegenerateBealeSparse re-runs Beale's classic cycling example pinned to
// the sparse core (TestDegenerateBeale covers whatever the default is).
func TestDegenerateBealeSparse(t *testing.T) {
	p := NewProblem()
	x1 := p.AddVar("x1", -0.75)
	x2 := p.AddVar("x2", 150)
	x3 := p.AddVar("x3", -0.02)
	x4 := p.AddVar("x4", 6)
	p.AddConstraint([]Term{{x1, 0.25}, {x2, -60}, {x3, -0.04}, {x4, 9}}, LE, 0)
	p.AddConstraint([]Term{{x1, 0.5}, {x2, -90}, {x3, -0.02}, {x4, 3}}, LE, 0)
	p.AddConstraint([]Term{{x3, 1}}, LE, 1)
	s := p.SolveWithOptions(Options{Core: CoreSparse, MaxPivots: 5000})
	if s.Status != Optimal || !near(s.Objective, -0.05, 1e-8) {
		t.Fatalf("got %v obj=%v, want optimal -0.05", s.Status, s.Objective)
	}
}

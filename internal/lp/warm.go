package lp

import "math"

// WarmStart captures an optimally solved base state so that closely related
// problems — the original plus a few extra inequality rows, exactly what
// branch-and-bound generates — can be re-solved by the dual simplex method
// from the parent's basis instead of from scratch. This is the warm-start
// strategy MILP solvers like lp_solve use, and it is what makes the B&B
// node cost a handful of pivots rather than a full two-phase solve.
//
// The state is recorded by whichever core produced the base optimum and all
// ReSolves (including their cold fallbacks) stay on that core. On the sparse
// core, single-variable extra rows — all that branch and bound ever generates
// — become bound tightenings on the frozen solver state, so a node re-solve
// works on a basis of the same size as the root instead of a grown tableau.
type WarmStart struct {
	problem *Problem
	core    Core
	root    Solution

	// Dense-oracle state.
	base     *tableau // optimal tableau of the base problem (never mutated)
	artStart int      // first artificial column; [artStart, base.n) barred
	costs    []float64

	// Sparse-core state: the frozen optimal solver; ReSolve mutates clones.
	rev *revSolver
}

// ExtraRow is an additional inequality a·x (≤|≥) b over the structural
// variables. Equality rows are not supported (branch bounds never need
// them); pass two opposing inequalities instead.
type ExtraRow struct {
	Terms []Term
	Rel   Rel
	RHS   float64
}

// SolveForWarmStart solves the problem and, when it is optimal, returns a
// WarmStart for re-solving with extra rows. The returned Solution is the
// base optimum (identical to Solve's).
func (p *Problem) SolveForWarmStart(opt Options) (*WarmStart, Solution) {
	if opt.core() == CoreSparse {
		sol, rs, ok := p.solveRevised(opt)
		if ok {
			if sol.Status != Optimal {
				return nil, sol
			}
			return &WarmStart{problem: p, core: CoreSparse, rev: rs, root: sol}, sol
		}
		// Sparse core hit a numerical wall; record a dense warm start instead.
	}
	sol, t, artStart := p.solveTableau(opt)
	if sol.Status != Optimal {
		return nil, sol
	}
	costs := make([]float64, t.n)
	for j := 0; j < len(p.obj); j++ {
		if p.maximize {
			costs[j] = -p.obj[j]
		} else {
			costs[j] = p.obj[j]
		}
	}
	return &WarmStart{problem: p, core: CoreDense, base: t, artStart: artStart, costs: costs, root: sol}, sol
}

// Root returns the base problem's optimal solution.
func (w *WarmStart) Root() Solution { return w.root }

// Basis returns a copy of the optimal basis of the base problem: one basis
// column index per row, in the recording core's own numbering. The sparse
// core's layout (structural variables 0..n-1, then the slack of row i at
// n+i) depends only on the problem's shape, so the basis can seed
// Options.CrashBasis on a later problem with the same structure — the
// cross-problem analogue of ReSolve's same-problem warm start. The dense
// oracle's layout likewise follows from its constraint relations. A basis
// handed to the other core simply fails its shape screen and the solve goes
// cold, never wrong.
func (w *WarmStart) Basis() []int {
	if w.core == CoreSparse {
		pr := w.rev.pr
		out := make([]int, pr.m)
		for i, b := range w.rev.basis {
			if b >= pr.n+pr.m {
				// A redundant row kept its phase-1 artificial basic at zero;
				// the row's slack is an equivalent crash column.
				b = pr.n + pr.artRow[b-pr.n-pr.m]
			}
			out[i] = b
		}
		return out
	}
	return append([]int(nil), w.base.basis...)
}

// Clone returns an independent copy of the warm-start state: everything a
// re-solve mutates is deep-copied so that concurrent branch-and-bound workers
// can each re-solve from a private root basis without sharing any mutable
// state. The underlying Problem is shared — it is read-only for the lifetime
// of a solve — and on the sparse core so are the immutable LU arrays and the
// constraint matrix.
func (w *WarmStart) Clone() *WarmStart {
	if w.core == CoreSparse {
		c := *w
		c.rev = w.rev.cloneForReSolve()
		return &c
	}
	t := &tableau{
		m:     w.base.m,
		n:     w.base.n,
		a:     make([][]float64, w.base.m),
		basis: append([]int(nil), w.base.basis...),
	}
	for i, row := range w.base.a {
		t.a[i] = append([]float64(nil), row...)
	}
	return &WarmStart{
		problem:  w.problem,
		base:     t,
		artStart: w.artStart,
		costs:    append([]float64(nil), w.costs...),
		root:     w.root,
	}
}

// ReSolve solves the base problem plus the extra rows, warm-starting the
// dual simplex from the base optimum. It falls back to a cold two-phase
// solve if the dual iteration struggles (pivot cap), so the answer is
// always as reliable as Solve's.
func (w *WarmStart) ReSolve(extra []ExtraRow) Solution {
	if len(extra) == 0 {
		return w.root
	}
	if w.core == CoreSparse {
		return w.reSolveSparse(extra)
	}
	nStruct := len(w.problem.obj)
	oldN := w.base.n
	newN := oldN + len(extra) // one slack per extra row
	m := w.base.m + len(extra)

	t := &tableau{m: m, n: newN, a: make([][]float64, m), basis: make([]int, m)}
	for i := 0; i < w.base.m; i++ {
		row := make([]float64, newN+1)
		copy(row, w.base.a[i][:oldN])
		row[newN] = w.base.a[i][oldN]
		t.a[i] = row
		t.basis[i] = w.base.basis[i]
	}
	costs := make([]float64, newN)
	copy(costs, w.costs)

	for k, ex := range extra {
		row := make([]float64, newN+1)
		sign := 1.0
		if ex.Rel == GE {
			sign = -1 // a·x ≥ b  →  −a·x ≤ −b
		}
		for _, term := range ex.Terms {
			if term.Var < 0 || term.Var >= nStruct {
				return Solution{Status: Infeasible}
			}
			row[term.Var] += sign * term.Coef
		}
		slack := oldN + k
		row[slack] = 1
		row[newN] = sign * ex.RHS
		// Express the row in the current basis: eliminate every basic
		// column using its defining row.
		for i := 0; i < w.base.m; i++ {
			b := t.basis[i]
			if f := row[b]; f != 0 {
				base := t.a[i]
				for j := 0; j <= newN; j++ {
					row[j] -= f * base[j]
				}
				row[b] = 0
			}
		}
		t.a[w.base.m+k] = row
		t.basis[w.base.m+k] = slack
	}

	banned := func(j int) bool { return j >= w.artStart && j < oldN }
	pivots := 0
	maxPivots := 50*(m+newN) + 500
	st := t.dualSimplex(costs, banned, maxPivots, &pivots)
	if st == Optimal {
		// Primal polish: exact optimality may have been lost to clamped
		// reduced-cost noise; the primal simplex terminates immediately when
		// the point is already optimal, so this is nearly free.
		if ps := t.optimize(costs, banned, maxPivots, &pivots); ps != Optimal {
			st = IterLimit // force the cold fallback below
		}
	}
	switch st {
	case Optimal:
		x := make([]float64, nStruct)
		for i, b := range t.basis {
			if b < nStruct {
				x[b] = t.a[i][newN]
			}
		}
		obj := 0.0
		for j := 0; j < nStruct; j++ {
			obj += w.problem.obj[j] * x[j]
		}
		return Solution{Status: Optimal, X: x, Objective: obj, Pivots: pivots}
	case Infeasible:
		return Solution{Status: Infeasible, Pivots: pivots}
	}
	// Dual iteration hit its cap (rare: heavy degeneracy). Fall back to the
	// cold solver for a guaranteed-correct answer.
	sol := w.coldExtra(extra)
	sol.Pivots += pivots
	return sol
}

// coldExtra solves problem+extra from scratch on the warm start's own core,
// the guaranteed-correct fallback shared by both ReSolve paths.
func (w *WarmStart) coldExtra(extra []ExtraRow) Solution {
	q := w.problem.Clone()
	for _, ex := range extra {
		q.AddConstraint(ex.Terms, ex.Rel, ex.RHS)
	}
	return q.SolveWithOptions(Options{Core: w.core})
}

// reSolveSparse re-solves the base problem plus the extra rows on the sparse
// core. Single-variable rows — everything branch and bound generates — become
// bound tightenings on a clone of the frozen optimal state: the reduced costs
// are untouched (costs and basis are unchanged), so the point stays dual
// feasible and the dual simplex repairs the handful of bound violations in a
// few pivots on a basis that never grew. Multi-variable rows take the cold
// fallback.
func (w *WarmStart) reSolveSparse(extra []ExtraRow) Solution {
	n := len(w.problem.obj)
	single := true
	for _, ex := range extra {
		if len(ex.Terms) != 1 || ex.Terms[0].Coef == 0 || ex.Rel == EQ {
			single = false
		}
		for _, t := range ex.Terms {
			if t.Var < 0 || t.Var >= n {
				return Solution{Status: Infeasible}
			}
		}
	}
	if !single {
		return w.coldExtra(extra)
	}

	c := w.rev.cloneForReSolve()
	pr := c.pr
	for _, ex := range extra {
		v, coef := ex.Terms[0].Var, ex.Terms[0].Coef
		bound := ex.RHS / coef
		rel := ex.Rel
		if coef < 0 {
			if rel == LE {
				rel = GE
			} else {
				rel = LE
			}
		}
		if rel == LE {
			if bound < pr.hi[v] {
				pr.hi[v] = bound
			}
		} else if bound > pr.lo[v] {
			pr.lo[v] = bound
		}
		if pr.lo[v] > pr.hi[v]+1e-9 {
			return Solution{Status: Infeasible}
		}
	}

	// Nonbasic columns whose pinned bound moved shift automatically through
	// value(); one FTRAN refreshes the basic values against the new point.
	c.computeXB()
	st := c.dual()
	if st == Optimal {
		// Primal polish: terminates immediately when already optimal.
		st = c.primal()
	}
	switch st {
	case Optimal:
		return c.extractX(w.problem, Optimal)
	case Infeasible:
		return c.extractX(w.problem, Infeasible)
	}
	// Pivot cap or numerical trouble: cold fallback, same answer guarantee.
	sol := w.coldExtra(extra)
	sol.Pivots += c.pivots
	return sol
}

// dualSimplex restores primal feasibility of a dual-feasible tableau: while
// some right-hand side is negative, pivot on that row with the entering
// column chosen by the dual ratio test. Returns Optimal when all RHS ≥ 0,
// Infeasible when a negative row has no negative entry, IterLimit at the
// pivot cap.
func (t *tableau) dualSimplex(costs []float64, banned func(int) bool, maxPivots int, pivots *int) Status {
	zrow := t.reducedCosts(costs)
	// The base tableau is optimal, so reduced costs are ≥ −tol; clamp the
	// tolerance noise to keep the ratio test sane.
	for j := range zrow {
		if zrow[j] < 0 {
			zrow[j] = 0
		}
	}
	for {
		if *pivots >= maxPivots {
			return IterLimit
		}
		// Leaving row: most negative RHS.
		leave := -1
		worst := -zeroTol
		for i := 0; i < t.m; i++ {
			if b := t.a[i][t.n]; b < worst {
				worst = b
				leave = i
			}
		}
		if leave < 0 {
			return Optimal
		}
		// Entering column: dual ratio test over negative entries of the
		// leaving row; ties break toward the lowest column index.
		row := t.a[leave]
		enter := -1
		bestRatio := math.Inf(1)
		for j := 0; j < t.n; j++ {
			if banned != nil && banned(j) {
				continue
			}
			a := row[j]
			if a >= -pivotTol {
				continue
			}
			ratio := zrow[j] / -a
			if ratio < bestRatio-zeroTol || (ratio < bestRatio+zeroTol && (enter < 0 || j < enter)) {
				bestRatio = ratio
				enter = j
			}
		}
		if enter < 0 {
			return Infeasible
		}
		t.pivot(leave, enter)
		if f := zrow[enter]; f != 0 {
			pr := t.a[leave]
			for j := 0; j < t.n; j++ {
				zrow[j] -= f * pr[j]
			}
			zrow[enter] = 0
		}
		// Pivoting can reintroduce tiny negative reduced costs; clamp to
		// preserve dual feasibility of the test.
		for j := 0; j < t.n; j++ {
			if zrow[j] < 0 && zrow[j] > -1e-7 {
				zrow[j] = 0
			}
		}
		*pivots++
	}
}

package lp

import "math"

// WarmStart captures an optimally solved tableau so that closely related
// problems — the original plus a few extra inequality rows, exactly what
// branch-and-bound generates — can be re-solved by the dual simplex method
// from the parent's basis instead of from scratch. This is the warm-start
// strategy MILP solvers like lp_solve use, and it is what makes the B&B
// node cost a handful of pivots rather than a full two-phase solve.
type WarmStart struct {
	problem  *Problem
	base     *tableau // optimal tableau of the base problem (never mutated)
	artStart int      // first artificial column; [artStart, base.n) barred
	costs    []float64
	root     Solution
}

// ExtraRow is an additional inequality a·x (≤|≥) b over the structural
// variables. Equality rows are not supported (branch bounds never need
// them); pass two opposing inequalities instead.
type ExtraRow struct {
	Terms []Term
	Rel   Rel
	RHS   float64
}

// SolveForWarmStart solves the problem and, when it is optimal, returns a
// WarmStart for re-solving with extra rows. The returned Solution is the
// base optimum (identical to Solve's).
func (p *Problem) SolveForWarmStart(opt Options) (*WarmStart, Solution) {
	sol, t, artStart := p.solveTableau(opt)
	if sol.Status != Optimal {
		return nil, sol
	}
	costs := make([]float64, t.n)
	for j := 0; j < len(p.obj); j++ {
		if p.maximize {
			costs[j] = -p.obj[j]
		} else {
			costs[j] = p.obj[j]
		}
	}
	return &WarmStart{problem: p, base: t, artStart: artStart, costs: costs, root: sol}, sol
}

// Root returns the base problem's optimal solution.
func (w *WarmStart) Root() Solution { return w.root }

// Basis returns a copy of the optimal basis of the base problem: one tableau
// column index per constraint row. The column layout (structural variables,
// then slacks/surpluses in row order, then artificials in row order) is
// determined entirely by the problem's constraint relations, so the basis can
// seed Options.CrashBasis on a later problem with the same structure — the
// cross-problem analogue of ReSolve's same-problem warm start.
func (w *WarmStart) Basis() []int { return append([]int(nil), w.base.basis...) }

// Clone returns an independent copy of the warm-start state: the optimal base
// tableau, basis and cost vector are deep-copied so that concurrent
// branch-and-bound workers can each re-solve from a private root basis
// without sharing any mutable state. The underlying Problem is shared — it is
// read-only for the lifetime of a solve.
func (w *WarmStart) Clone() *WarmStart {
	t := &tableau{
		m:     w.base.m,
		n:     w.base.n,
		a:     make([][]float64, w.base.m),
		basis: append([]int(nil), w.base.basis...),
	}
	for i, row := range w.base.a {
		t.a[i] = append([]float64(nil), row...)
	}
	return &WarmStart{
		problem:  w.problem,
		base:     t,
		artStart: w.artStart,
		costs:    append([]float64(nil), w.costs...),
		root:     w.root,
	}
}

// ReSolve solves the base problem plus the extra rows, warm-starting the
// dual simplex from the base optimum. It falls back to a cold two-phase
// solve if the dual iteration struggles (pivot cap), so the answer is
// always as reliable as Solve's.
func (w *WarmStart) ReSolve(extra []ExtraRow) Solution {
	if len(extra) == 0 {
		return w.root
	}
	nStruct := len(w.problem.obj)
	oldN := w.base.n
	newN := oldN + len(extra) // one slack per extra row
	m := w.base.m + len(extra)

	t := &tableau{m: m, n: newN, a: make([][]float64, m), basis: make([]int, m)}
	for i := 0; i < w.base.m; i++ {
		row := make([]float64, newN+1)
		copy(row, w.base.a[i][:oldN])
		row[newN] = w.base.a[i][oldN]
		t.a[i] = row
		t.basis[i] = w.base.basis[i]
	}
	costs := make([]float64, newN)
	copy(costs, w.costs)

	for k, ex := range extra {
		row := make([]float64, newN+1)
		sign := 1.0
		if ex.Rel == GE {
			sign = -1 // a·x ≥ b  →  −a·x ≤ −b
		}
		for _, term := range ex.Terms {
			if term.Var < 0 || term.Var >= nStruct {
				return Solution{Status: Infeasible}
			}
			row[term.Var] += sign * term.Coef
		}
		slack := oldN + k
		row[slack] = 1
		row[newN] = sign * ex.RHS
		// Express the row in the current basis: eliminate every basic
		// column using its defining row.
		for i := 0; i < w.base.m; i++ {
			b := t.basis[i]
			if f := row[b]; f != 0 {
				base := t.a[i]
				for j := 0; j <= newN; j++ {
					row[j] -= f * base[j]
				}
				row[b] = 0
			}
		}
		t.a[w.base.m+k] = row
		t.basis[w.base.m+k] = slack
	}

	banned := func(j int) bool { return j >= w.artStart && j < oldN }
	pivots := 0
	maxPivots := 50*(m+newN) + 500
	st := t.dualSimplex(costs, banned, maxPivots, &pivots)
	if st == Optimal {
		// Primal polish: exact optimality may have been lost to clamped
		// reduced-cost noise; the primal simplex terminates immediately when
		// the point is already optimal, so this is nearly free.
		if ps := t.optimize(costs, banned, maxPivots, &pivots); ps != Optimal {
			st = IterLimit // force the cold fallback below
		}
	}
	switch st {
	case Optimal:
		x := make([]float64, nStruct)
		for i, b := range t.basis {
			if b < nStruct {
				x[b] = t.a[i][newN]
			}
		}
		obj := 0.0
		for j := 0; j < nStruct; j++ {
			obj += w.problem.obj[j] * x[j]
		}
		return Solution{Status: Optimal, X: x, Objective: obj, Pivots: pivots}
	case Infeasible:
		return Solution{Status: Infeasible, Pivots: pivots}
	}
	// Dual iteration hit its cap (rare: heavy degeneracy). Fall back to the
	// cold solver for a guaranteed-correct answer.
	q := w.problem.Clone()
	for _, ex := range extra {
		q.AddConstraint(ex.Terms, ex.Rel, ex.RHS)
	}
	sol := q.Solve()
	sol.Pivots += pivots
	return sol
}

// dualSimplex restores primal feasibility of a dual-feasible tableau: while
// some right-hand side is negative, pivot on that row with the entering
// column chosen by the dual ratio test. Returns Optimal when all RHS ≥ 0,
// Infeasible when a negative row has no negative entry, IterLimit at the
// pivot cap.
func (t *tableau) dualSimplex(costs []float64, banned func(int) bool, maxPivots int, pivots *int) Status {
	zrow := t.reducedCosts(costs)
	// The base tableau is optimal, so reduced costs are ≥ −tol; clamp the
	// tolerance noise to keep the ratio test sane.
	for j := range zrow {
		if zrow[j] < 0 {
			zrow[j] = 0
		}
	}
	for {
		if *pivots >= maxPivots {
			return IterLimit
		}
		// Leaving row: most negative RHS.
		leave := -1
		worst := -zeroTol
		for i := 0; i < t.m; i++ {
			if b := t.a[i][t.n]; b < worst {
				worst = b
				leave = i
			}
		}
		if leave < 0 {
			return Optimal
		}
		// Entering column: dual ratio test over negative entries of the
		// leaving row; ties break toward the lowest column index.
		row := t.a[leave]
		enter := -1
		bestRatio := math.Inf(1)
		for j := 0; j < t.n; j++ {
			if banned != nil && banned(j) {
				continue
			}
			a := row[j]
			if a >= -pivotTol {
				continue
			}
			ratio := zrow[j] / -a
			if ratio < bestRatio-zeroTol || (ratio < bestRatio+zeroTol && (enter < 0 || j < enter)) {
				bestRatio = ratio
				enter = j
			}
		}
		if enter < 0 {
			return Infeasible
		}
		t.pivot(leave, enter)
		if f := zrow[enter]; f != 0 {
			pr := t.a[leave]
			for j := 0; j < t.n; j++ {
				zrow[j] -= f * pr[j]
			}
			zrow[enter] = 0
		}
		// Pivoting can reintroduce tiny negative reduced costs; clamp to
		// preserve dual feasibility of the test.
		for j := 0; j < t.n; j++ {
			if zrow[j] < 0 && zrow[j] > -1e-7 {
				zrow[j] = 0
			}
		}
		*pivots++
	}
}

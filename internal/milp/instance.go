package milp

import (
	"fmt"
	"math"

	"billcap/internal/lp"
)

// KnapsackInstance is a deterministic hard benchmark instance: a
// strongly-correlated multi-knapsack whose optimality proof needs many
// branch-and-bound nodes. The paper's hourly MILP carries ≈5·N binaries for
// N sites, so NewHardKnapsack(5*N, seed) is the standard "paper scale N"
// workload for solver benchmarks; x = 0 is always feasible, so deadline
// dives can always manufacture an incumbent.
type KnapsackInstance struct {
	*Problem
	Weights  [][]float64 // one row of item weights per knapsack constraint
	Capacity []float64   // right-hand side of each knapsack row
}

// NewHardKnapsack builds a maximization instance over n binaries with three
// correlated knapsack rows. Profits track weights closely (the classic hard
// regime, weak LP bounds), and the construction is a pure function of n and
// seed, so benchmarks and regression tests see identical instances across
// runs and machines.
func NewHardKnapsack(n int, seed uint64) KnapsackInstance {
	p := NewProblem()
	p.SetMaximize(true)
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	next := func() float64 {
		seed ^= seed << 13
		seed ^= seed >> 7
		seed ^= seed << 17
		return float64(seed%100) + 1 // 1..100
	}
	weights := make([][]float64, 3)
	for r := range weights {
		weights[r] = make([]float64, n)
	}
	for j := 0; j < n; j++ {
		w := next()
		p.AddBinVar("x", w+10) // profit ≈ weight → weak LP bounds
		weights[0][j] = w
		weights[1][j] = next()
		weights[2][j] = w + weights[1][j]/2
	}
	rhs := make([]float64, 3)
	for r, ws := range weights {
		terms := make([]lp.Term, n)
		total := 0.0
		for j, w := range ws {
			terms[j] = lp.Term{Var: j, Coef: w}
			total += w
		}
		rhs[r] = math.Floor(total / 2)
		p.AddConstraint(terms, lp.LE, rhs[r])
	}
	return KnapsackInstance{Problem: p, Weights: weights, Capacity: rhs}
}

// FleetSeg is one price segment of a fleet-instance site: while the site's
// purchased power sits in [LoMW, HiMW] it pays RateUSDPerMWh. An empty range
// (HiMW < LoMW) encodes a segment the demand shift made unreachable; Build
// still emits its rows (the binary is provably 0), matching the historical
// NewPaperHour shape bit for bit.
type FleetSeg struct {
	LoMW, HiMW    float64
	RateUSDPerMWh float64
}

// FleetSite is one site of a fleet instance: its price segments and its
// per-site hourly spend cap.
type FleetSite struct {
	Segs   []FleetSeg
	CapUSD float64
}

// FleetInstance is the data behind the hourly step-2 MILP shape: per site a
// union of price segments (exactly one active — no off state), a per-site
// spend cap, and one fleet-wide budget row coupling all sites. It is the
// shared spec of the exact MILP (Build) and the dual-decomposition path
// (internal/decomp.FromFleet), which is what makes the two solvers
// comparable on identical instances.
type FleetInstance struct {
	Sites     []FleetSite
	BudgetUSD float64
	// Epsilon is the cost tie-break weight in the throughput objective
	// max Σ p − ε·cost.
	Epsilon float64
}

// Build assembles the MILP: per site a total-power variable p, per segment a
// power variable p_k with selection binary z_k and the p_k ∈ [lo·z, hi·z]
// rows, the p = Σ p_k link, Σ z_k = 1, the site spend cap, and finally the
// fleet budget row. Variable and constraint order is part of the contract —
// warm-start and presolve benchmarks rely on instances being reproducible
// across runs and machines.
func (fi FleetInstance) Build() *Problem {
	m := NewProblem()
	m.SetMaximize(true)
	var budgetTerms []lp.Term
	for i, s := range fi.Sites {
		p := m.AddVar(fmt.Sprintf("s%d.p", i), 0)
		link := []lp.Term{{Var: p, Coef: 1}}
		var sel, siteTerms []lp.Term
		for k, g := range s.Segs {
			// max Σ p − ε·cost, the throughput objective with a cost tie-break.
			pk := m.AddVar(fmt.Sprintf("s%d.p%d", i, k), 1-fi.Epsilon*g.RateUSDPerMWh)
			zk := m.AddBinVar(fmt.Sprintf("s%d.z%d", i, k), 0)
			m.AddConstraint([]lp.Term{{Var: pk, Coef: 1}, {Var: zk, Coef: -g.HiMW}}, lp.LE, 0)
			m.AddConstraint([]lp.Term{{Var: pk, Coef: 1}, {Var: zk, Coef: -g.LoMW}}, lp.GE, 0)
			link = append(link, lp.Term{Var: pk, Coef: -1})
			sel = append(sel, lp.Term{Var: zk, Coef: 1})
			siteTerms = append(siteTerms, lp.Term{Var: pk, Coef: g.RateUSDPerMWh})
		}
		m.AddConstraint(link, lp.EQ, 0)
		m.AddConstraint(sel, lp.EQ, 1) // every site runs in exactly one segment
		m.AddConstraint(siteTerms, lp.LE, s.CapUSD)
		budgetTerms = append(budgetTerms, siteTerms...)
	}
	m.AddConstraint(budgetTerms, lp.LE, fi.BudgetUSD)
	return m
}

// NewPaperHourFleet is the spec behind NewPaperHour: 5 segments per site,
// demands with a linear per-site term so equal-bound plateaus don't blow up
// the search tree, a uniform $27 500 site cap. A pure function of
// (sites, budget).
func NewPaperHourFleet(sites int, budget float64) FleetInstance {
	const segs = 5
	fi := FleetInstance{BudgetUSD: budget, Epsilon: 1e-4, Sites: make([]FleetSite, sites)}
	for i := 0; i < sites; i++ {
		d := 40 + 10*float64(i%3) + 1.5*float64(i)
		s := FleetSite{CapUSD: 27500, Segs: make([]FleetSeg, segs)}
		for k := 0; k < segs; k++ {
			s.Segs[k] = FleetSeg{
				LoMW:          math.Max(1, float64(100*k)-d),
				HiMW:          float64(100*(k+1)) - d,
				RateUSDPerMWh: 30 + 15*float64(k),
			}
		}
		fi.Sites[i] = s
	}
	return fi
}

// NewPaperHour builds the hourly MILP shape of the capper's step 2 for N
// sites and the given fleet budget: 5 price segments per site, one selection
// binary per segment, the exact p = Σ p_k piecewise encoding, a per-site
// spend cap and a shared fleet budget row. The objective maximizes throughput
// with a small cost tie-break. The per-site cap admits a full segment 3 but
// not the top segment's minimum spend, so the LP relaxation buys fractional
// z4 capacity with the cap's slack while presolve can prove z4 = 0 at every
// site — fixing it genuinely tightens the root bound. The construction is a
// pure function of (sites, budget), so cold-vs-warm comparisons across runs
// and machines see identical instances.
func NewPaperHour(sites int, budget float64) *Problem {
	return NewPaperHourFleet(sites, budget).Build()
}

// NewPaperFleet builds a seeded heterogeneous fleet instance for the
// decomposition benchmarks (N in the hundreds): demands, per-site rate
// jitter and spend caps all vary with the seed, so greedy orderings and dual
// prices are nontrivial, and the shared budget (PaperFleetBudget) is binding.
// Like NewHardKnapsack, the construction is a pure function of (sites, seed).
func NewPaperFleet(sites int, seed uint64) FleetInstance {
	const segs = 5
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	next := func() float64 {
		seed ^= seed << 13
		seed ^= seed >> 7
		seed ^= seed << 17
		return float64(seed%1000) / 1000 // [0, 1)
	}
	fi := FleetInstance{BudgetUSD: PaperFleetBudget(sites), Epsilon: 1e-4, Sites: make([]FleetSite, sites)}
	for i := 0; i < sites; i++ {
		d := 20 + 160*next()       // all five segments stay reachable
		jitter := 0.8 + 0.4*next() // per-site price level ±20%
		cap := 27500 * (0.8 + 0.4*next())
		s := FleetSite{CapUSD: cap, Segs: make([]FleetSeg, segs)}
		for k := 0; k < segs; k++ {
			s.Segs[k] = FleetSeg{
				LoMW:          math.Max(1, float64(100*k)-d),
				HiMW:          float64(100*(k+1)) - d,
				RateUSDPerMWh: (30 + 15*float64(k)) * jitter,
			}
		}
		fi.Sites[i] = s
	}
	return fi
}

// PaperFleetBudget is the fleet budget NewPaperFleet instances carry: below
// the average per-site spend cap, so the budget row is binding and the
// budget multiplier is meaningful.
func PaperFleetBudget(sites int) float64 { return 21000 * float64(sites) }

// PaperHourBudget is the standard hour-over-hour fleet budget for
// NewPaperHour: binding at hour 0 and loosening every hour (the paper §III
// carry-forward pool grows through cheap hours), so each hour's optimum stays
// feasible — and a strong incumbent — for the next.
func PaperHourBudget(sites, hour int) float64 {
	return float64(sites) * (25000 + 150*float64(hour))
}

// CheckSolution reports whether x is a valid answer for the instance:
// integral on every binary and within every knapsack capacity.
func (k KnapsackInstance) CheckSolution(x []float64, tol float64) bool {
	for v := range x {
		if k.IsInteger(v) && x[v] != math.Round(x[v]) {
			return false
		}
	}
	for r, ws := range k.Weights {
		got := 0.0
		for j, w := range ws {
			got += w * x[j]
		}
		if got > k.Capacity[r]+tol {
			return false
		}
	}
	return true
}

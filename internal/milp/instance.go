package milp

import (
	"math"

	"billcap/internal/lp"
)

// KnapsackInstance is a deterministic hard benchmark instance: a
// strongly-correlated multi-knapsack whose optimality proof needs many
// branch-and-bound nodes. The paper's hourly MILP carries ≈5·N binaries for
// N sites, so NewHardKnapsack(5*N, seed) is the standard "paper scale N"
// workload for solver benchmarks; x = 0 is always feasible, so deadline
// dives can always manufacture an incumbent.
type KnapsackInstance struct {
	*Problem
	Weights  [][]float64 // one row of item weights per knapsack constraint
	Capacity []float64   // right-hand side of each knapsack row
}

// NewHardKnapsack builds a maximization instance over n binaries with three
// correlated knapsack rows. Profits track weights closely (the classic hard
// regime, weak LP bounds), and the construction is a pure function of n and
// seed, so benchmarks and regression tests see identical instances across
// runs and machines.
func NewHardKnapsack(n int, seed uint64) KnapsackInstance {
	p := NewProblem()
	p.SetMaximize(true)
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	next := func() float64 {
		seed ^= seed << 13
		seed ^= seed >> 7
		seed ^= seed << 17
		return float64(seed%100) + 1 // 1..100
	}
	weights := make([][]float64, 3)
	for r := range weights {
		weights[r] = make([]float64, n)
	}
	for j := 0; j < n; j++ {
		w := next()
		p.AddBinVar("x", w+10) // profit ≈ weight → weak LP bounds
		weights[0][j] = w
		weights[1][j] = next()
		weights[2][j] = w + weights[1][j]/2
	}
	rhs := make([]float64, 3)
	for r, ws := range weights {
		terms := make([]lp.Term, n)
		total := 0.0
		for j, w := range ws {
			terms[j] = lp.Term{Var: j, Coef: w}
			total += w
		}
		rhs[r] = math.Floor(total / 2)
		p.AddConstraint(terms, lp.LE, rhs[r])
	}
	return KnapsackInstance{Problem: p, Weights: weights, Capacity: rhs}
}

// CheckSolution reports whether x is a valid answer for the instance:
// integral on every binary and within every knapsack capacity.
func (k KnapsackInstance) CheckSolution(x []float64, tol float64) bool {
	for v := range x {
		if k.IsInteger(v) && x[v] != math.Round(x[v]) {
			return false
		}
	}
	for r, ws := range k.Weights {
		got := 0.0
		for j, w := range ws {
			got += w * x[j]
		}
		if got > k.Capacity[r]+tol {
			return false
		}
	}
	return true
}

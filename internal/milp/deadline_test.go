package milp

import (
	"math"
	"testing"
	"time"

	"billcap/internal/lp"
)

// hardKnapsack keeps the historical test helper shape over the exported
// deterministic generator (see instance.go): an instance whose optimality
// proof needs thousands of branch-and-bound nodes, so a millisecond deadline
// reliably fires mid-search.
func hardKnapsack(n int) (*Problem, [][]float64, []float64) {
	k := NewHardKnapsack(n, 0)
	return k.Problem, k.Weights, k.Capacity
}

func TestDeadlineReturnsFeasibleIncumbent(t *testing.T) {
	p, weights, rhs := hardKnapsack(40)
	sol := p.SolveWithOptions(Options{Deadline: time.Millisecond})
	if sol.Status != TimeLimit {
		t.Fatalf("status = %v, want time-limit (nodes=%d elapsed=%v)", sol.Status, sol.Nodes, sol.Elapsed)
	}
	if sol.X == nil {
		t.Fatal("deadline returned no incumbent")
	}
	if sol.Elapsed > 2*time.Second {
		t.Fatalf("deadline solve took %v — the deadline did not bound the search", sol.Elapsed)
	}
	if sol.Gap < 0 {
		t.Errorf("negative remaining gap %v", sol.Gap)
	}
	// The incumbent must be integral and satisfy every knapsack row.
	for v := range sol.X {
		if p.IsInteger(v) && sol.X[v] != math.Round(sol.X[v]) {
			t.Fatalf("x[%d] = %v not integral", v, sol.X[v])
		}
	}
	for r, ws := range weights {
		got := 0.0
		for j, w := range ws {
			got += w * sol.X[j]
		}
		if got > rhs[r]+1e-6 {
			t.Errorf("row %d: %v > rhs %v — incumbent infeasible", r, got, rhs[r])
		}
	}
}

func TestCancelAbortsSearch(t *testing.T) {
	p, _, _ := hardKnapsack(40)
	done := make(chan struct{})
	close(done)
	sol := p.SolveWithOptions(Options{Cancel: done})
	if sol.Status != TimeLimit {
		t.Fatalf("status = %v, want time-limit on pre-closed cancel", sol.Status)
	}
	if sol.X == nil {
		t.Fatal("cancel returned no incumbent")
	}
}

// TestDeadlineDoesNotDegradeEasySolves pins that a generous deadline leaves
// an easy problem provably optimal.
func TestDeadlineDoesNotDegradeEasySolves(t *testing.T) {
	p := NewProblem()
	x := p.AddIntVar("x", 1)
	y := p.AddVar("y", 2)
	p.AddConstraint([]lp.Term{{Var: x, Coef: 1}, {Var: y, Coef: 1}}, lp.GE, 3.5)
	sol := p.SolveWithOptions(Options{Deadline: time.Minute})
	if sol.Status != Optimal {
		t.Fatalf("status = %v, want optimal", sol.Status)
	}
	if sol.Gap != 0 {
		t.Errorf("gap = %v at optimality", sol.Gap)
	}
	_ = x
	_ = y
}

package milp

import (
	"math"
	"testing"
	"time"

	"billcap/internal/lp"
)

// hardKnapsack builds a strongly-correlated multi-knapsack over n binaries:
// the kind of instance whose optimality proof needs thousands of
// branch-and-bound nodes, so a millisecond deadline reliably fires mid-search.
// Profits track weights closely (the classic hard regime) and x = 0 is
// feasible, so a rounding dive can always manufacture an incumbent.
func hardKnapsack(n int) (*Problem, [][]float64, []float64) {
	p := NewProblem()
	p.SetMaximize(true)
	seed := uint64(0x9e3779b97f4a7c15)
	next := func() float64 {
		seed ^= seed << 13
		seed ^= seed >> 7
		seed ^= seed << 17
		return float64(seed%100) + 1 // 1..100
	}
	weights := make([][]float64, 3)
	for r := range weights {
		weights[r] = make([]float64, n)
	}
	for j := 0; j < n; j++ {
		w := next()
		p.AddBinVar("x", w+10) // profit ≈ weight → weak LP bounds
		weights[0][j] = w
		weights[1][j] = next()
		weights[2][j] = w + weights[1][j]/2
	}
	rhs := make([]float64, 3)
	for r, ws := range weights {
		terms := make([]lp.Term, n)
		total := 0.0
		for j, w := range ws {
			terms[j] = lp.Term{Var: j, Coef: w}
			total += w
		}
		rhs[r] = math.Floor(total / 2)
		p.AddConstraint(terms, lp.LE, rhs[r])
	}
	return p, weights, rhs
}

func TestDeadlineReturnsFeasibleIncumbent(t *testing.T) {
	p, weights, rhs := hardKnapsack(40)
	sol := p.SolveWithOptions(Options{Deadline: time.Millisecond})
	if sol.Status != TimeLimit {
		t.Fatalf("status = %v, want time-limit (nodes=%d elapsed=%v)", sol.Status, sol.Nodes, sol.Elapsed)
	}
	if sol.X == nil {
		t.Fatal("deadline returned no incumbent")
	}
	if sol.Elapsed > 2*time.Second {
		t.Fatalf("deadline solve took %v — the deadline did not bound the search", sol.Elapsed)
	}
	if sol.Gap < 0 {
		t.Errorf("negative remaining gap %v", sol.Gap)
	}
	// The incumbent must be integral and satisfy every knapsack row.
	for v := range sol.X {
		if p.IsInteger(v) && sol.X[v] != math.Round(sol.X[v]) {
			t.Fatalf("x[%d] = %v not integral", v, sol.X[v])
		}
	}
	for r, ws := range weights {
		got := 0.0
		for j, w := range ws {
			got += w * sol.X[j]
		}
		if got > rhs[r]+1e-6 {
			t.Errorf("row %d: %v > rhs %v — incumbent infeasible", r, got, rhs[r])
		}
	}
}

func TestCancelAbortsSearch(t *testing.T) {
	p, _, _ := hardKnapsack(40)
	done := make(chan struct{})
	close(done)
	sol := p.SolveWithOptions(Options{Cancel: done})
	if sol.Status != TimeLimit {
		t.Fatalf("status = %v, want time-limit on pre-closed cancel", sol.Status)
	}
	if sol.X == nil {
		t.Fatal("cancel returned no incumbent")
	}
}

// TestDeadlineDoesNotDegradeEasySolves pins that a generous deadline leaves
// an easy problem provably optimal.
func TestDeadlineDoesNotDegradeEasySolves(t *testing.T) {
	p := NewProblem()
	x := p.AddIntVar("x", 1)
	y := p.AddVar("y", 2)
	p.AddConstraint([]lp.Term{{Var: x, Coef: 1}, {Var: y, Coef: 1}}, lp.GE, 3.5)
	sol := p.SolveWithOptions(Options{Deadline: time.Minute})
	if sol.Status != Optimal {
		t.Fatalf("status = %v, want optimal", sol.Status)
	}
	if sol.Gap != 0 {
		t.Errorf("gap = %v at optimality", sol.Gap)
	}
	_ = x
	_ = y
}

package milp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"billcap/internal/lp"
)

func TestPresolveFixesForcedBinaries(t *testing.T) {
	// z0 is killed by a budget-style row (5·z0 ≤ 2 → z0 ≤ 0.4 → 0); z1 is
	// forced on by a coverage row (z1 ≥ 0.6 → 1); z2 stays free.
	p := NewProblem()
	p.SetMaximize(true)
	z0 := p.AddBinVar("z0", 10)
	z1 := p.AddBinVar("z1", 1)
	z2 := p.AddBinVar("z2", 1)
	p.AddConstraint([]lp.Term{{Var: z0, Coef: 5}}, lp.LE, 2)
	p.AddConstraint([]lp.Term{{Var: z1, Coef: 1}}, lp.GE, 0.6)

	pr := p.Presolve()
	if pr.Infeasible {
		t.Fatal("feasible problem reported infeasible")
	}
	if v, ok := pr.FixedValue(z0); !ok || v != 0 {
		t.Errorf("z0: fixed=%v value=%v, want fixed at 0", ok, v)
	}
	if v, ok := pr.FixedValue(z1); !ok || v != 1 {
		t.Errorf("z1: fixed=%v value=%v, want fixed at 1", ok, v)
	}
	if _, ok := pr.FixedValue(z2); ok {
		t.Error("z2 fixed despite being free")
	}
	if pr.Fixed != 2 {
		t.Errorf("Fixed = %d, want 2", pr.Fixed)
	}

	cold := p.SolveWithOptions(Options{})
	warm := p.SolveWithOptions(Options{Presolve: true})
	if warm.Status != Optimal || cold.Status != Optimal {
		t.Fatalf("statuses: cold %v warm %v", cold.Status, warm.Status)
	}
	if !near(warm.Objective, cold.Objective, 1e-9) {
		t.Errorf("presolved objective %v != cold %v", warm.Objective, cold.Objective)
	}
	if warm.PresolveFixed != 2 {
		t.Errorf("Solution.PresolveFixed = %d, want 2", warm.PresolveFixed)
	}
	if cold.PresolveFixed != 0 {
		t.Errorf("cold Solution.PresolveFixed = %d, want 0", cold.PresolveFixed)
	}
}

func TestPresolvePropagatesThroughChains(t *testing.T) {
	// Segment-encoding shape: p ≤ 100·z (hi row), p ≥ 80·z (lo row), and a
	// budget row 1·p ≤ 50. Propagation must chain p ≤ 50 → z ≤ 50/80 → z = 0.
	p := NewProblem()
	pw := p.AddVar("p", 1)
	z := p.AddBinVar("z", 0)
	p.AddConstraint([]lp.Term{{Var: pw, Coef: 1}, {Var: z, Coef: -100}}, lp.LE, 0)
	p.AddConstraint([]lp.Term{{Var: pw, Coef: 1}, {Var: z, Coef: -80}}, lp.GE, 0)
	p.AddConstraint([]lp.Term{{Var: pw, Coef: 1}}, lp.LE, 50)

	pr := p.Presolve()
	if v, ok := pr.FixedValue(z); !ok || v != 0 {
		t.Errorf("z: fixed=%v value=%v, want fixed at 0 via the budget chain", ok, v)
	}
}

func TestPresolveDetectsInfeasible(t *testing.T) {
	// Two binaries cannot sum to 3.
	p := NewProblem()
	x := p.AddBinVar("x", 1)
	y := p.AddBinVar("y", 1)
	p.AddConstraint([]lp.Term{{Var: x, Coef: 1}, {Var: y, Coef: 1}}, lp.GE, 3)

	if pr := p.Presolve(); !pr.Infeasible {
		t.Error("integer-infeasible system not detected")
	}
	if s := p.SolveWithOptions(Options{Presolve: true}); s.Status != Infeasible {
		t.Errorf("solve with presolve: %v, want infeasible", s.Status)
	}
	if s := p.SolveWithOptions(Options{}); s.Status != Infeasible {
		t.Errorf("cold solve: %v, want infeasible", s.Status)
	}
}

func TestStartXSeedsIncumbent(t *testing.T) {
	k := NewHardKnapsack(20, 3)
	cold := k.SolveWithOptions(Options{})
	if cold.Status != Optimal {
		t.Fatalf("cold: %v", cold.Status)
	}
	if cold.WarmStarted {
		t.Error("cold solve reports WarmStarted")
	}
	warm := k.SolveWithOptions(Options{StartX: cold.X, StartBasis: cold.RootBasis})
	if warm.Status != Optimal {
		t.Fatalf("warm: %v", warm.Status)
	}
	if !warm.WarmStarted {
		t.Error("accepted seed not reported as WarmStarted")
	}
	if !near(warm.Objective, cold.Objective, 1e-9*(1+math.Abs(cold.Objective))) {
		t.Errorf("warm objective %v != cold %v", warm.Objective, cold.Objective)
	}
	if warm.Nodes > cold.Nodes {
		t.Errorf("warm start explored %d nodes, cold %d — seeding must not grow the tree", warm.Nodes, cold.Nodes)
	}
}

func TestStartXRejectsBadSeeds(t *testing.T) {
	k := NewHardKnapsack(12, 5)
	cold := k.SolveWithOptions(Options{})
	if cold.Status != Optimal {
		t.Fatalf("cold: %v", cold.Status)
	}
	bad := map[string][]float64{
		"wrong length": {1, 0},
		"fractional":   make([]float64, k.NumVars()),
		"NaN":          make([]float64, k.NumVars()),
		"infeasible":   make([]float64, k.NumVars()),
	}
	bad["fractional"][0] = 0.5
	bad["NaN"][0] = math.NaN()
	for j := range bad["infeasible"] {
		bad["infeasible"][j] = 1 // all items packed: violates the knapsack rows
	}
	for name, seed := range bad {
		s := k.SolveWithOptions(Options{StartX: seed})
		if s.WarmStarted {
			t.Errorf("%s seed accepted", name)
		}
		if s.Status != Optimal || !near(s.Objective, cold.Objective, 1e-9*(1+math.Abs(cold.Objective))) {
			t.Errorf("%s seed corrupted the solve: %v obj %v, want %v", name, s.Status, s.Objective, cold.Objective)
		}
	}
}

// TestWarmPresolveMatchesColdProperty is the solver-level equivalence
// property behind the cross-hour cache: presolve plus a previous optimum fed
// back as StartX/StartBasis must return the same objective as a cold solve,
// across randomized instances and a perturbed "next hour" of each. Run under
// -race in CI alongside TestParallelMatchesSequentialProperty.
func TestWarmPresolveMatchesColdProperty(t *testing.T) {
	cfg := &quick.Config{MaxCount: 40}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		nb := 8 + r.Intn(8)
		nc := r.Intn(4)
		p, _ := randomBinaryProblem(r, nb, nc)

		cold := p.SolveWithOptions(Options{})
		warm := p.SolveWithOptions(Options{Presolve: true, StartX: cold.X, StartBasis: cold.RootBasis})
		if warm.Status != cold.Status {
			t.Logf("seed %d: warm status %v vs cold %v", seed, warm.Status, cold.Status)
			return false
		}
		if cold.Status != Optimal {
			return true
		}
		tol := 1e-5 * (1 + math.Abs(cold.Objective))
		if !near(warm.Objective, cold.Objective, tol) {
			t.Logf("seed %d: warm objective %v vs cold %v", seed, warm.Objective, cold.Objective)
			return false
		}
		if v := p.CheckFeasible(warm.X, 1e-6); len(v) != 0 {
			t.Logf("seed %d: warm incumbent infeasible: %v", seed, v)
			return false
		}

		// "Next hour": clone and tighten the first knapsack-style row a bit,
		// then seed with this hour's optimum — the seed may now be infeasible
		// and must be screened out, never crash or corrupt the solve.
		q := p.Clone()
		if q.NumConstraints() > nb { // rows beyond the per-binary ≤1 bounds exist
			c := q.Problem.Constraint(q.NumConstraints() - 1)
			q.Problem.SetRHS(q.NumConstraints()-1, c.RHS*0.9)
		}
		qc := q.SolveWithOptions(Options{})
		qw := q.SolveWithOptions(Options{Presolve: true, StartX: cold.X, StartBasis: cold.RootBasis})
		if qw.Status != qc.Status {
			t.Logf("seed %d: next-hour warm status %v vs cold %v", seed, qw.Status, qc.Status)
			return false
		}
		if qc.Status == Optimal {
			tol := 1e-5 * (1 + math.Abs(qc.Objective))
			if !near(qw.Objective, qc.Objective, tol) {
				t.Logf("seed %d: next-hour warm objective %v vs cold %v", seed, qw.Objective, qc.Objective)
				return false
			}
			if v := q.CheckFeasible(qw.X, 1e-6); len(v) != 0 {
				t.Logf("seed %d: next-hour warm incumbent infeasible: %v", seed, v)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

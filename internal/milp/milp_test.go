package milp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"billcap/internal/lp"
)

func near(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestKnapsack(t *testing.T) {
	// max 10a + 13b + 7c + 4d, weights 5,6,4,2 ≤ capacity 10.
	// Best subset: b+c = 20 (weight 10); a+c+d = 21 (weight 11, too big);
	// a+d = 14, b+d = 17, a+c = 17 (weight 9) → add d? 5+4+2=11 no.
	// Check candidates: {b,c}=20 w10 ok; {a,b}=23 w11 no; so 20.
	p := NewProblem()
	p.SetMaximize(true)
	a := p.AddBinVar("a", 10)
	b := p.AddBinVar("b", 13)
	c := p.AddBinVar("c", 7)
	d := p.AddBinVar("d", 4)
	p.AddConstraint([]lp.Term{{Var: a, Coef: 5}, {Var: b, Coef: 6}, {Var: c, Coef: 4}, {Var: d, Coef: 2}}, lp.LE, 10)
	s := p.Solve()
	if s.Status != Optimal {
		t.Fatalf("status = %v, want optimal", s.Status)
	}
	if !near(s.Objective, 20, 1e-7) {
		t.Errorf("objective = %v, want 20", s.Objective)
	}
	if !near(s.X[b], 1, 1e-9) || !near(s.X[c], 1, 1e-9) || !near(s.X[a], 0, 1e-9) || !near(s.X[d], 0, 1e-9) {
		t.Errorf("x = %v, want b=c=1 only", s.X)
	}
}

func TestGeneralInteger(t *testing.T) {
	// min 3x + 4y, x,y integer ≥ 0, 2x + y ≥ 5, x + 3y ≥ 7.
	// LP relaxation is fractional; integer optimum: enumerate small points:
	// (1,3): 2+3=5 ok, 1+9=10 ok → 15. (2,2): 6≥5, 8≥7 → 14. (3,2): 17.
	// (2,1): 5 ok, 5 < 7 no. (4,1): 9,7 → 16. So 14 at (2,2).
	p := NewProblem()
	x := p.AddIntVar("x", 3)
	y := p.AddIntVar("y", 4)
	p.AddConstraint([]lp.Term{{Var: x, Coef: 2}, {Var: y, Coef: 1}}, lp.GE, 5)
	p.AddConstraint([]lp.Term{{Var: x, Coef: 1}, {Var: y, Coef: 3}}, lp.GE, 7)
	s := p.Solve()
	if s.Status != Optimal {
		t.Fatalf("status = %v, want optimal", s.Status)
	}
	if !near(s.Objective, 14, 1e-7) {
		t.Errorf("objective = %v at %v, want 14 at (2,2)", s.Objective, s.X)
	}
}

func TestMixedIntegerContinuous(t *testing.T) {
	// Fixed-charge: min 10y + 2x, x ≤ 8y (y binary), x ≥ 3.
	// Must open y=1: cost 10 + 6 = 16.
	p := NewProblem()
	y := p.AddBinVar("y", 10)
	x := p.AddVar("x", 2)
	p.AddConstraint([]lp.Term{{Var: x, Coef: 1}, {Var: y, Coef: -8}}, lp.LE, 0)
	p.AddConstraint([]lp.Term{{Var: x, Coef: 1}}, lp.GE, 3)
	s := p.Solve()
	if s.Status != Optimal || !near(s.Objective, 16, 1e-7) {
		t.Fatalf("got %v obj=%v, want optimal 16", s.Status, s.Objective)
	}
	if !near(s.X[y], 1, 1e-9) {
		t.Errorf("y = %v, want exactly 1 (rounded)", s.X[y])
	}
}

func TestInfeasibleInteger(t *testing.T) {
	// 2x = 3 has no integer solution.
	p := NewProblem()
	x := p.AddIntVar("x", 1)
	p.AddConstraint([]lp.Term{{Var: x, Coef: 2}}, lp.EQ, 3)
	if s := p.Solve(); s.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", s.Status)
	}
}

func TestInfeasibleLP(t *testing.T) {
	p := NewProblem()
	x := p.AddIntVar("x", 1)
	p.AddConstraint([]lp.Term{{Var: x, Coef: 1}}, lp.GE, 5)
	p.AddConstraint([]lp.Term{{Var: x, Coef: 1}}, lp.LE, 3)
	if s := p.Solve(); s.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", s.Status)
	}
}

func TestUnbounded(t *testing.T) {
	p := NewProblem()
	x := p.AddIntVar("x", -1)
	p.AddConstraint([]lp.Term{{Var: x, Coef: 1}}, lp.GE, 0)
	if s := p.Solve(); s.Status != Unbounded {
		t.Fatalf("status = %v, want unbounded", s.Status)
	}
}

func TestNodeLimit(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	p, _ := randomBinaryProblem(r, 12, 6)
	s := p.SolveWithOptions(Options{MaxNodes: 2})
	if s.Status != Limit && s.Status != Optimal && s.Status != Infeasible {
		t.Fatalf("status = %v under tight node limit", s.Status)
	}
	if s.Status == Limit && s.X != nil && s.Gap < 0 {
		t.Errorf("negative gap %v", s.Gap)
	}
}

func TestPureLPPassThrough(t *testing.T) {
	// No integer variables: must match the plain LP answer in one node.
	p := NewProblem()
	x := p.AddVar("x", 1)
	y := p.AddVar("y", 1)
	p.AddConstraint([]lp.Term{{Var: x, Coef: 1}, {Var: y, Coef: 2}}, lp.GE, 4)
	p.AddConstraint([]lp.Term{{Var: x, Coef: 3}, {Var: y, Coef: 1}}, lp.GE, 6)
	s := p.Solve()
	if s.Status != Optimal || !near(s.Objective, 2.8, 1e-8) {
		t.Fatalf("got %v obj=%v, want optimal 2.8", s.Status, s.Objective)
	}
	if s.Nodes != 1 {
		t.Errorf("nodes = %d, want 1 for a pure LP", s.Nodes)
	}
}

// randomBinaryProblem builds a random maximization problem over nb binaries
// and nc continuous variables, feasible by construction (all-zeros always
// satisfies the ≤ rows with nonnegative RHS).
func randomBinaryProblem(r *rand.Rand, nb, nc int) (*Problem, int) {
	p := NewProblem()
	p.SetMaximize(true)
	for i := 0; i < nb; i++ {
		p.AddBinVar("b", math.Floor(r.Float64()*20))
	}
	for i := 0; i < nc; i++ {
		v := p.AddVar("c", r.Float64()*2)
		p.AddConstraint([]lp.Term{{Var: v, Coef: 1}}, lp.LE, 5*r.Float64())
	}
	rows := 1 + r.Intn(4)
	for k := 0; k < rows; k++ {
		terms := make([]lp.Term, 0, nb+nc)
		for j := 0; j < nb+nc; j++ {
			terms = append(terms, lp.Term{Var: j, Coef: math.Floor(r.Float64() * 8)})
		}
		p.AddConstraint(terms, lp.LE, 4+math.Floor(r.Float64()*float64(4*nb)))
	}
	return p, nb
}

// bruteForceBest enumerates all binary assignments, fixes them with equality
// rows, LP-solves the continuous remainder and returns the best objective.
func bruteForceBest(p *Problem, nb int) (float64, bool) {
	best := math.Inf(-1)
	found := false
	for mask := 0; mask < 1<<nb; mask++ {
		q := p.Problem.Clone()
		for j := 0; j < nb; j++ {
			val := float64((mask >> j) & 1)
			q.AddConstraint([]lp.Term{{Var: j, Coef: 1}}, lp.EQ, val)
		}
		s := q.Solve()
		if s.Status == lp.Optimal {
			found = true
			if s.Objective > best {
				best = s.Objective
			}
		}
	}
	return best, found
}

func TestBranchAndBoundMatchesBruteForce(t *testing.T) {
	cfg := &quick.Config{MaxCount: 60}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		nb := 3 + r.Intn(5) // 3..7 binaries → ≤ 128 enumerations
		nc := r.Intn(3)
		p, _ := randomBinaryProblem(r, nb, nc)
		want, feasible := bruteForceBest(p, nb)
		s := p.Solve()
		if !feasible {
			return s.Status == Infeasible
		}
		if s.Status != Optimal {
			t.Logf("seed %d: status %v, brute force found %v", seed, s.Status, want)
			return false
		}
		if !near(s.Objective, want, 1e-5*(1+math.Abs(want))) {
			t.Logf("seed %d: b&b %v != brute force %v", seed, s.Objective, want)
			return false
		}
		if v := p.CheckFeasible(s.X, 1e-6); len(v) != 0 {
			t.Logf("seed %d: incumbent infeasible: %v", seed, v)
			return false
		}
		for j := 0; j < nb; j++ {
			if s.X[j] != 0 && s.X[j] != 1 {
				t.Logf("seed %d: binary %d = %v not exactly integral", seed, j, s.X[j])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestNumIntegerVars(t *testing.T) {
	p := NewProblem()
	p.AddVar("c", 1)
	p.AddIntVar("i", 1)
	p.AddBinVar("b", 1)
	if got := p.NumIntegerVars(); got != 2 {
		t.Errorf("NumIntegerVars = %d, want 2", got)
	}
	if p.IsInteger(0) || !p.IsInteger(1) || !p.IsInteger(2) {
		t.Errorf("integrality flags wrong")
	}
	p.SetInteger(0, true)
	if !p.IsInteger(0) {
		t.Errorf("SetInteger did not stick")
	}
}

func TestStatusString(t *testing.T) {
	cases := map[Status]string{
		Optimal: "optimal", Infeasible: "infeasible",
		Unbounded: "unbounded", Limit: "node-limit", Status(9): "Status(9)",
	}
	for st, want := range cases {
		if st.String() != want {
			t.Errorf("Status(%d).String() = %q, want %q", int(st), st.String(), want)
		}
	}
}

package milp

import (
	"container/heap"
	"math"
	"sync"
	"time"

	"billcap/internal/lp"
)

// parSearch is the state shared by the branch-and-bound worker pool: a
// best-first frontier, the incumbent, and the effort counters, all guarded by
// one mutex. Workers hold the lock only for frontier/incumbent bookkeeping —
// every LP re-solve happens outside it, on the worker's private warm-start
// clone, so the lock is never held across simplex pivots.
type parSearch struct {
	p    *Problem
	opt  Options
	sign float64

	deadline time.Time

	mu   sync.Mutex
	cond *sync.Cond
	h    nodeHeap
	// inflight counts nodes popped from the frontier whose expansion has not
	// finished: the search is exhausted only when the frontier is empty AND
	// nothing is in flight (an in-flight node may still push children).
	inflight int

	stopped    bool
	stopStatus Status

	incumbent    []float64
	incumbentObj float64 // minimization sense
	incumbents   int
	nodes, piv   int
}

// halt records the first stop reason and wakes every worker. Callers hold mu.
func (s *parSearch) halt(st Status) {
	if !s.stopped {
		s.stopped = true
		s.stopStatus = st
	}
	s.cond.Broadcast()
}

// offer routes a solved relaxation: dominated nodes are dropped, integral
// ones become the incumbent, the rest join the frontier. Callers hold mu.
// fv is the node's most fractional variable (computed outside the lock).
func (s *parSearch) offer(bs []branch, sol lp.Solution, fv int) {
	bound := s.sign * sol.Objective
	if bound >= s.incumbentObj-s.opt.Gap {
		return // dominated by the shared incumbent
	}
	if fv < 0 {
		s.incumbentObj = bound
		s.incumbent = roundIntegral(sol.X, s.p.integer)
		s.incumbents++
		return
	}
	heap.Push(&s.h, &node{bound: bound, bounds: bs, sol: sol})
	s.cond.Signal()
}

// run is one worker's loop: pop the globally best open node, expand it on the
// private warm state, repeat until the frontier is exhausted or a limit hits.
func (s *parSearch) run(warm *lp.WarmStart) {
	relax := func(bs []branch) lp.Solution {
		return warm.ReSolve(branchRows(bs))
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.stopped {
			return
		}
		if s.nodes >= s.opt.MaxNodes {
			s.halt(Limit)
			return
		}
		if s.opt.expired(s.deadline) {
			s.halt(TimeLimit)
			return
		}
		if len(s.h) == 0 {
			if s.inflight == 0 {
				// Exhausted: nothing open and nothing that could still push
				// children. Wake the waiters so they see it too.
				s.cond.Broadcast()
				return
			}
			s.cond.Wait()
			continue
		}
		it := heap.Pop(&s.h).(*node)
		if it.bound >= s.incumbentObj-s.opt.Gap {
			continue // pruned by an incumbent found after it was pushed
		}
		s.inflight++
		s.mu.Unlock()
		s.expand(it, relax)
		s.mu.Lock()
		s.inflight--
		if s.inflight == 0 && len(s.h) == 0 {
			s.cond.Broadcast()
		}
	}
}

// expand branches on the node's already-solved relaxation: up to two child
// LPs on the worker's private warm state, results folded back under the lock.
func (s *parSearch) expand(it *node, relax func([]branch) lp.Solution) {
	sol := it.sol
	fv := s.p.mostFractional(sol.X, s.opt.IntTol)
	if fv < 0 {
		// Tolerance-drift guard, as in the sequential search: integer nodes
		// become incumbents when pushed, not heap entries.
		s.mu.Lock()
		if b := s.sign * sol.Objective; b < s.incumbentObj {
			s.incumbentObj = b
			s.incumbent = roundIntegral(sol.X, s.p.integer)
			s.incumbents++
		}
		s.mu.Unlock()
		return
	}
	v := sol.X[fv]
	downB := branch{fv, lp.LE, math.Floor(v)}
	upB := branch{fv, lp.GE, math.Ceil(v)}
	for _, nb := range []branch{downB, upB} {
		if hasBranch(it.bounds, nb) {
			// Phantom fraction from numerical noise; skip to guarantee
			// progress (same rule as the sequential search).
			continue
		}
		child := append(append([]branch(nil), it.bounds...), nb)
		cs := relax(child)
		cfv := -1
		if cs.Status == lp.Optimal {
			cfv = s.p.mostFractional(cs.X, s.opt.IntTol)
		}
		s.mu.Lock()
		s.nodes++
		s.piv += cs.Pivots
		if cs.Status == lp.Optimal {
			s.offer(child, cs, cfv)
		}
		s.mu.Unlock()
	}
}

// solveParallel runs best-first branch and bound over a pool of workers
// sharing one frontier, one incumbent and one global bound. Every worker
// re-solves node relaxations with its own clone of the root's warm-started
// dual-simplex basis, so no LP state is shared. The search is exact — the
// same pruning rule as the sequential solver against a shared incumbent —
// but node ordering depends on scheduling, so Nodes/Pivots may differ
// between runs (use Options.Deterministic to pin the sequential ordering).
// The root relaxation, presolve fixings, and optional seed incumbent arrive
// pre-computed in rs (the shared root stage in solveFromRoot).
func (p *Problem) solveParallel(opt Options, start time.Time, workers int, rs rootState) Solution {
	var deadline time.Time
	if opt.Deadline > 0 {
		deadline = start.Add(opt.Deadline)
	}

	sign := 1.0
	if p.Maximizing() {
		sign = -1
	}

	warm, root := rs.warm, rs.root
	s := &parSearch{
		p:            p,
		opt:          opt,
		sign:         sign,
		deadline:     deadline,
		incumbent:    rs.seed,
		incumbentObj: rs.seedObj,
		nodes:        rs.nodes,
		piv:          rs.piv,
	}
	s.cond = sync.NewCond(&s.mu)
	s.offer(rs.fix, root, p.mostFractional(root.X, opt.IntTol))

	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		w := warm
		if i > 0 {
			w = warm.Clone() // worker 0 keeps the original; the rest get private bases
		}
		wg.Add(1)
		go func(w *lp.WarmStart) {
			defer wg.Done()
			s.run(w)
		}(w)
	}
	wg.Wait()

	if !s.stopped {
		if s.incumbent == nil {
			return Solution{Status: Infeasible, Nodes: s.nodes, Pivots: s.piv}
		}
		return Solution{
			Status:     Optimal,
			X:          s.incumbent,
			Objective:  sign * s.incumbentObj,
			Nodes:      s.nodes,
			Pivots:     s.piv,
			Incumbents: s.incumbents,
		}
	}
	if s.stopStatus == TimeLimit && s.incumbent == nil && len(s.h) > 0 {
		// Same guarantee as the sequential deadline path: manufacture a
		// feasible incumbent with a bounded, deadline-checked dive from the
		// best open node.
		relax := func(bs []branch) lp.Solution { return warm.ReSolve(branchRows(bs)) }
		if x, obj, dn, dp := p.dive(s.h[0], relax, opt, sign, time.Now().Add(diveGrace(opt.Deadline))); x != nil {
			s.incumbent, s.incumbentObj = x, obj
			s.incumbents++
			s.nodes += dn
			s.piv += dp
		}
	}
	fin := p.finish(s.stopStatus, s.incumbent, s.incumbentObj, sign, s.nodes, s.piv, s.h)
	fin.Incumbents = s.incumbents
	return fin
}

package milp

import (
	"container/heap"
	"math"
	"sync"
	"time"

	"billcap/internal/lp"
)

// parSearch is the state shared by the branch-and-bound worker pool: a
// best-first frontier, the incumbent, and the effort counters, all guarded by
// one mutex. Workers hold the lock only for frontier/incumbent bookkeeping —
// every LP re-solve happens outside it, on the worker's private warm-start
// clone, so the lock is never held across simplex pivots.
type parSearch struct {
	p    *Problem
	opt  Options
	sign float64

	deadline time.Time

	mu   sync.Mutex
	cond *sync.Cond
	h    nodeHeap
	// inflight counts nodes popped from the frontier whose expansion has not
	// finished: the search is exhausted only when the frontier is empty AND
	// nothing is in flight (an in-flight node may still push children).
	inflight int

	stopped    bool
	stopStatus Status

	incumbent    []float64
	incumbentObj float64 // minimization sense
	incumbents   int
	nodes        int
	eff          effort
}

// halt records the first stop reason and wakes every worker. Callers hold mu.
func (s *parSearch) halt(st Status) {
	if !s.stopped {
		s.stopped = true
		s.stopStatus = st
	}
	s.cond.Broadcast()
}

// offer routes a solved relaxation: dominated nodes are dropped, repaired
// integral points become the incumbent, the rest join the frontier. Callers
// hold mu. fv is the node's most fractional variable and rx/robj the repaired
// incumbent candidate — both computed outside the lock, since the repair may
// run an LP. rx == nil with fv < 0 marks a pseudo-integral node (integral
// within tolerance but with no feasible rounding): it joins the frontier to be
// branched at zero tolerance instead of being accepted.
func (s *parSearch) offer(bs []branch, sol lp.Solution, fv int, rx []float64, robj float64) {
	bound := s.sign * sol.Objective
	if bound >= s.incumbentObj-s.opt.Gap {
		return // dominated by the shared incumbent
	}
	if fv < 0 && rx != nil {
		if b := s.sign * robj; b < s.incumbentObj {
			s.incumbentObj = b
			s.incumbent = rx
			s.incumbents++
		}
		return
	}
	heap.Push(&s.h, &node{bound: bound, bounds: bs, sol: sol, pseudo: fv < 0})
	s.cond.Signal()
}

// run is one worker's loop: pop the globally best open node, expand it on the
// private warm state, repeat until the frontier is exhausted or a limit hits.
func (s *parSearch) run(warm *lp.WarmStart) {
	relax := func(bs []branch) lp.Solution {
		return warm.ReSolve(branchRows(bs))
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.stopped {
			return
		}
		if s.nodes >= s.opt.MaxNodes {
			s.halt(Limit)
			return
		}
		if s.opt.expired(s.deadline) {
			s.halt(TimeLimit)
			return
		}
		if len(s.h) == 0 {
			if s.inflight == 0 {
				// Exhausted: nothing open and nothing that could still push
				// children. Wake the waiters so they see it too.
				s.cond.Broadcast()
				return
			}
			s.cond.Wait()
			continue
		}
		it := heap.Pop(&s.h).(*node)
		if it.bound >= s.incumbentObj-s.opt.Gap {
			continue // pruned by an incumbent found after it was pushed
		}
		s.inflight++
		s.mu.Unlock()
		s.expand(it, relax)
		s.mu.Lock()
		s.inflight--
		if s.inflight == 0 && len(s.h) == 0 {
			s.cond.Broadcast()
		}
	}
}

// expand branches on the node's already-solved relaxation: up to two child
// LPs on the worker's private warm state, results folded back under the lock.
func (s *parSearch) expand(it *node, relax func([]branch) lp.Solution) {
	sol := it.sol
	fv := s.p.mostFractional(sol.X, s.opt.IntTol)
	if fv < 0 {
		// Tolerance drift, or a pseudo-integral node re-popped from the
		// frontier: repair outside the lock (it may run an LP), unless this
		// node already failed its repair; then branch at zero tolerance.
		if !it.pseudo {
			x, obj, re, ok := s.p.repairIncumbent(it.bounds, sol, relax)
			s.mu.Lock()
			s.eff.merge(re)
			if ok {
				if b := s.sign * obj; b < s.incumbentObj {
					s.incumbentObj = b
					s.incumbent = x
					s.incumbents++
				}
				s.mu.Unlock()
				return
			}
			s.mu.Unlock()
		}
		if fv = s.p.mostFractional(sol.X, 0); fv < 0 {
			return // exactly integral yet infeasible: numerically dead
		}
	}
	v := sol.X[fv]
	downB := branch{fv, lp.LE, math.Floor(v)}
	upB := branch{fv, lp.GE, math.Ceil(v)}
	for _, nb := range []branch{downB, upB} {
		if hasBranch(it.bounds, nb) {
			// Phantom fraction from numerical noise; skip to guarantee
			// progress (same rule as the sequential search).
			continue
		}
		child := append(append([]branch(nil), it.bounds...), nb)
		cs := relax(child)
		cfv := -1
		var ceff effort
		var cx []float64
		var cobj float64
		if cs.Status == lp.Optimal {
			cfv = s.p.mostFractional(cs.X, s.opt.IntTol)
			if cfv < 0 {
				// Integral within tolerance: repair outside the lock. A failed
				// repair downgrades the child to a pseudo-integral frontier
				// node (cx == nil), or drops it when exactly integral.
				cx, cobj, ceff, _ = s.p.repairIncumbent(child, cs, relax)
			}
		}
		s.mu.Lock()
		s.nodes++
		s.eff.absorb(cs)
		s.eff.merge(ceff)
		if cs.Status == lp.Optimal && !(cfv < 0 && cx == nil && s.p.mostFractional(cs.X, 0) < 0) {
			s.offer(child, cs, cfv, cx, cobj)
		}
		s.mu.Unlock()
	}
}

// solveParallel runs best-first branch and bound over a pool of workers
// sharing one frontier, one incumbent and one global bound. Every worker
// re-solves node relaxations with its own clone of the root's warm-started
// dual-simplex basis, so no LP state is shared. The search is exact — the
// same pruning rule as the sequential solver against a shared incumbent —
// but node ordering depends on scheduling, so Nodes/Pivots may differ
// between runs (use Options.Deterministic to pin the sequential ordering).
// The root relaxation, presolve fixings, and optional seed incumbent arrive
// pre-computed in rs (the shared root stage in solveFromRoot).
func (p *Problem) solveParallel(opt Options, start time.Time, workers int, rs rootState) Solution {
	var deadline time.Time
	if opt.Deadline > 0 {
		deadline = start.Add(opt.Deadline)
	}

	sign := 1.0
	if p.Maximizing() {
		sign = -1
	}

	warm, root := rs.warm, rs.root
	s := &parSearch{
		p:            p,
		opt:          opt,
		sign:         sign,
		deadline:     deadline,
		incumbent:    rs.seed,
		incumbentObj: rs.seedObj,
		nodes:        rs.nodes,
		eff:          rs.eff,
	}
	s.cond = sync.NewCond(&s.mu)
	rootFv := p.mostFractional(root.X, opt.IntTol)
	var rootX []float64
	var rootObj float64
	if rootFv < 0 {
		var re effort
		rootX, rootObj, re, _ = p.repairIncumbent(rs.fix, root,
			func(bs []branch) lp.Solution { return warm.ReSolve(branchRows(bs)) })
		s.eff.merge(re)
	}
	if !(rootFv < 0 && rootX == nil && p.mostFractional(root.X, 0) < 0) {
		s.offer(rs.fix, root, rootFv, rootX, rootObj)
	}

	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		w := warm
		if i > 0 {
			w = warm.Clone() // worker 0 keeps the original; the rest get private bases
		}
		wg.Add(1)
		go func(w *lp.WarmStart) {
			defer wg.Done()
			s.run(w)
		}(w)
	}
	wg.Wait()

	if !s.stopped {
		if s.incumbent == nil {
			return s.eff.stamp(Solution{Status: Infeasible, Nodes: s.nodes})
		}
		return s.eff.stamp(Solution{
			Status:     Optimal,
			X:          s.incumbent,
			Objective:  sign * s.incumbentObj,
			Nodes:      s.nodes,
			Incumbents: s.incumbents,
		})
	}
	if s.stopStatus == TimeLimit && s.incumbent == nil && len(s.h) > 0 {
		// Same guarantee as the sequential deadline path: manufacture a
		// feasible incumbent with a bounded, deadline-checked dive from the
		// best open node.
		relax := func(bs []branch) lp.Solution { return warm.ReSolve(branchRows(bs)) }
		if x, obj, dn, de := p.dive(s.h[0], relax, opt, sign, time.Now().Add(diveGrace(opt.Deadline))); x != nil {
			s.incumbent, s.incumbentObj = x, obj
			s.incumbents++
			s.nodes += dn
			s.eff.merge(de)
		}
	}
	fin := p.finish(s.stopStatus, s.incumbent, s.incumbentObj, sign, s.nodes, s.eff, s.h)
	fin.Incumbents = s.incumbents
	return fin
}

package milp

import (
	"math/rand"
	"testing"
)

// BenchmarkBranchAndBound measures a complete solve of a 14-binary random
// problem — roughly the binary count of a 3-site, 5-price-level hour.
func BenchmarkBranchAndBound(b *testing.B) {
	r := rand.New(rand.NewSource(9))
	p, _ := randomBinaryProblem(r, 14, 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s := p.Solve(); s.Status != Optimal && s.Status != Infeasible {
			b.Fatal(s.Status)
		}
	}
}

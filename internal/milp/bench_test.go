package milp

import (
	"fmt"
	"math/rand"
	"testing"
)

// BenchmarkBranchAndBound measures a complete solve of a 14-binary random
// problem — roughly the binary count of a 3-site, 5-price-level hour.
func BenchmarkBranchAndBound(b *testing.B) {
	r := rand.New(rand.NewSource(9))
	p, _ := randomBinaryProblem(r, 14, 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s := p.Solve(); s.Status != Optimal && s.Status != Infeasible {
			b.Fatal(s.Status)
		}
	}
}

// BenchmarkPaperScaleBnB sweeps the paper's site counts against the worker
// pool. Each sub-benchmark explores a fixed node budget on the deterministic
// hard knapsack at 5·N binaries (the hourly MILP's binary count for N sites),
// so wall time per iteration is directly comparable across worker counts.
// cmd/benchmilp runs the same workload standalone and writes BENCH_milp.json.
func BenchmarkPaperScaleBnB(b *testing.B) {
	const maxNodes = 1000
	for _, sites := range []int{5, 10, 20} {
		k := NewHardKnapsack(5*sites, 0)
		for _, workers := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("sites=%d/workers=%d", sites, workers), func(b *testing.B) {
				b.ReportAllocs()
				var nodes int
				for i := 0; i < b.N; i++ {
					s := k.SolveWithOptions(Options{Workers: workers, MaxNodes: maxNodes})
					if s.Status != Optimal && s.Status != Limit {
						b.Fatal(s.Status)
					}
					nodes += s.Nodes
				}
				b.ReportMetric(float64(nodes)/b.Elapsed().Seconds(), "nodes/s")
			})
		}
		// Cold vs warm hour-over-hour re-solve on the paper-hour family
		// (NewPaperHour closes to proven optimality, unlike the knapsack):
		// hour 1's optimum and root basis seed hour 2's solve, plus presolve
		// — the incremental path the core solve cache drives in production.
		// cmd/benchmilp's incremental section measures the same comparison
		// across a full hour sequence.
		seed := NewPaperHour(sites, PaperHourBudget(sites, 1)).
			SolveWithOptions(Options{MaxNodes: maxNodes})
		if seed.Status != Optimal {
			b.Fatalf("paper-hour seed solve: %v", seed.Status)
		}
		for _, mode := range []string{"cold", "warm"} {
			opt := Options{MaxNodes: maxNodes}
			if mode == "warm" {
				opt.Presolve = true
				opt.StartX = seed.X
				opt.StartBasis = seed.RootBasis
			}
			b.Run(fmt.Sprintf("sites=%d/resolve=%s", sites, mode), func(b *testing.B) {
				b.ReportAllocs()
				var nodes, pivots int
				for i := 0; i < b.N; i++ {
					s := NewPaperHour(sites, PaperHourBudget(sites, 2)).SolveWithOptions(opt)
					if s.Status != Optimal {
						b.Fatal(s.Status)
					}
					nodes += s.Nodes
					pivots += s.Pivots
				}
				b.ReportMetric(float64(nodes)/float64(b.N), "nodes/op")
				b.ReportMetric(float64(pivots)/float64(b.N), "pivots/op")
			})
		}
	}
}

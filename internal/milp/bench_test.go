package milp

import (
	"fmt"
	"math/rand"
	"testing"
)

// BenchmarkBranchAndBound measures a complete solve of a 14-binary random
// problem — roughly the binary count of a 3-site, 5-price-level hour.
func BenchmarkBranchAndBound(b *testing.B) {
	r := rand.New(rand.NewSource(9))
	p, _ := randomBinaryProblem(r, 14, 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s := p.Solve(); s.Status != Optimal && s.Status != Infeasible {
			b.Fatal(s.Status)
		}
	}
}

// BenchmarkPaperScaleBnB sweeps the paper's site counts against the worker
// pool. Each sub-benchmark explores a fixed node budget on the deterministic
// hard knapsack at 5·N binaries (the hourly MILP's binary count for N sites),
// so wall time per iteration is directly comparable across worker counts.
// cmd/benchmilp runs the same workload standalone and writes BENCH_milp.json.
func BenchmarkPaperScaleBnB(b *testing.B) {
	const maxNodes = 1000
	for _, sites := range []int{5, 10, 20} {
		k := NewHardKnapsack(5*sites, 0)
		for _, workers := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("sites=%d/workers=%d", sites, workers), func(b *testing.B) {
				b.ReportAllocs()
				var nodes int
				for i := 0; i < b.N; i++ {
					s := k.SolveWithOptions(Options{Workers: workers, MaxNodes: maxNodes})
					if s.Status != Optimal && s.Status != Limit {
						b.Fatal(s.Status)
					}
					nodes += s.Nodes
				}
				b.ReportMetric(float64(nodes)/b.Elapsed().Seconds(), "nodes/s")
			})
		}
	}
}

package milp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"billcap/internal/lp"
)

// TestParallelMatchesSequentialProperty is the parallel-vs-sequential
// equivalence property: on randomized paper-scale instances, Workers ∈
// {1, 2, 8} must agree on the status, agree on the optimal objective within
// the solver's own gap, and return feasible, exactly-integral incumbents.
// Run under -race in CI, this is also the data-race probe for the shared
// frontier and incumbent.
func TestParallelMatchesSequentialProperty(t *testing.T) {
	cfg := &quick.Config{MaxCount: 40}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		nb := 8 + r.Intn(8) // 8..15 binaries ≈ a 2-3 site hour
		nc := r.Intn(4)
		p, _ := randomBinaryProblem(r, nb, nc)

		seq := p.SolveWithOptions(Options{Workers: 1})
		for _, w := range []int{2, 8} {
			par := p.SolveWithOptions(Options{Workers: w})
			if par.Status != seq.Status {
				t.Logf("seed %d workers %d: status %v vs sequential %v", seed, w, par.Status, seq.Status)
				return false
			}
			if par.Workers != w {
				t.Logf("seed %d: Solution.Workers = %d, want %d", seed, par.Workers, w)
				return false
			}
			if seq.Status != Optimal {
				continue
			}
			tol := 1e-5 * (1 + math.Abs(seq.Objective))
			if !near(par.Objective, seq.Objective, tol) {
				t.Logf("seed %d workers %d: objective %v vs sequential %v", seed, w, par.Objective, seq.Objective)
				return false
			}
			if v := p.CheckFeasible(par.X, 1e-6); len(v) != 0 {
				t.Logf("seed %d workers %d: incumbent infeasible: %v", seed, w, v)
				return false
			}
			for j := 0; j < nb; j++ {
				if par.X[j] != 0 && par.X[j] != 1 {
					t.Logf("seed %d workers %d: binary %d = %v not integral", seed, w, j, par.X[j])
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestParallelSolvesHardInstance checks the pool on a single instance large
// enough for real contention on the shared frontier: the parallel optimum
// must match the sequential one exactly (both proven).
func TestParallelSolvesHardInstance(t *testing.T) {
	k := NewHardKnapsack(24, 7)
	seq := k.SolveWithOptions(Options{Workers: 1})
	if seq.Status != Optimal {
		t.Fatalf("sequential: %v", seq.Status)
	}
	par := k.SolveWithOptions(Options{Workers: 8})
	if par.Status != Optimal {
		t.Fatalf("parallel: %v", par.Status)
	}
	if !near(par.Objective, seq.Objective, 1e-6*(1+math.Abs(seq.Objective))) {
		t.Fatalf("parallel objective %v != sequential %v", par.Objective, seq.Objective)
	}
	if !k.CheckSolution(par.X, 1e-6) {
		t.Fatal("parallel incumbent infeasible")
	}
}

// TestDeterministicReproducesSequential pins the Deterministic knob: with it
// set, any Workers value must reproduce the sequential search bit-for-bit —
// same node count, same pivots, same incumbent vector.
func TestDeterministicReproducesSequential(t *testing.T) {
	k := NewHardKnapsack(18, 3)
	want := k.SolveWithOptions(Options{Workers: 1})
	got := k.SolveWithOptions(Options{Workers: 8, Deterministic: true})
	if got.Workers != 1 {
		t.Errorf("deterministic solve reports %d workers, want 1 (sequential ordering)", got.Workers)
	}
	if got.Status != want.Status || got.Nodes != want.Nodes || got.Pivots != want.Pivots {
		t.Fatalf("deterministic run diverged: status %v/%v nodes %d/%d pivots %d/%d",
			got.Status, want.Status, got.Nodes, want.Nodes, got.Pivots, want.Pivots)
	}
	if got.Objective != want.Objective {
		t.Fatalf("deterministic objective %v != sequential %v", got.Objective, want.Objective)
	}
	for i := range want.X {
		if got.X[i] != want.X[i] {
			t.Fatalf("x[%d] = %v != sequential %v", i, got.X[i], want.X[i])
		}
	}
}

// TestParallelDeadlineReturnsFeasibleIncumbent mirrors the sequential
// deadline contract for the worker pool: an expiring parallel solve answers
// TimeLimit with a feasible incumbent and a nonnegative gap.
func TestParallelDeadlineReturnsFeasibleIncumbent(t *testing.T) {
	k := NewHardKnapsack(40, 0)
	sol := k.SolveWithOptions(Options{Deadline: 2 * time.Millisecond, Workers: 4})
	if sol.Status != TimeLimit {
		t.Skipf("instance solved to %v before the deadline fired", sol.Status)
	}
	if sol.X == nil {
		t.Fatal("parallel deadline answer carries no incumbent")
	}
	if !k.CheckSolution(sol.X, 1e-6) {
		t.Fatal("parallel deadline incumbent infeasible")
	}
	if sol.Gap < 0 {
		t.Errorf("negative remaining gap %v", sol.Gap)
	}
	if sol.Elapsed > 2*time.Second {
		t.Errorf("deadline solve took %v — the pool did not stop", sol.Elapsed)
	}
}

// TestParallelCancelAbortsSearch: a pre-closed cancel channel must stop the
// pool after at most the root solve, with the usual incumbent manufacture.
func TestParallelCancelAbortsSearch(t *testing.T) {
	k := NewHardKnapsack(40, 0)
	done := make(chan struct{})
	close(done)
	sol := k.SolveWithOptions(Options{Cancel: done, Workers: 4})
	if sol.Status != TimeLimit {
		t.Fatalf("status = %v, want time-limit on pre-closed cancel", sol.Status)
	}
	if sol.X == nil {
		t.Fatal("cancel returned no incumbent")
	}
}

// TestParallelTerminalStatuses pins the pass-through of root-level outcomes.
func TestParallelTerminalStatuses(t *testing.T) {
	inf := NewProblem()
	x := inf.AddIntVar("x", 1)
	inf.AddConstraint([]lp.Term{{Var: x, Coef: 2}}, lp.EQ, 3)
	if s := inf.SolveWithOptions(Options{Workers: 4}); s.Status != Infeasible {
		t.Errorf("integer-infeasible: %v, want infeasible", s.Status)
	}

	unb := NewProblem()
	y := unb.AddIntVar("y", -1)
	unb.AddConstraint([]lp.Term{{Var: y, Coef: 1}}, lp.GE, 0)
	if s := unb.SolveWithOptions(Options{Workers: 4}); s.Status != Unbounded {
		t.Errorf("unbounded: %v, want unbounded", s.Status)
	}
}

// TestParallelMaxNodes: the shared node counter must stop the pool near the
// cap with a valid limit answer.
func TestParallelMaxNodes(t *testing.T) {
	k := NewHardKnapsack(30, 5)
	sol := k.SolveWithOptions(Options{Workers: 4, MaxNodes: 50})
	switch sol.Status {
	case Limit:
		if sol.X != nil && sol.Gap < 0 {
			t.Errorf("negative gap %v", sol.Gap)
		}
		if sol.X == nil && !math.IsInf(sol.Gap, 1) {
			t.Errorf("no incumbent but gap %v, want +Inf", sol.Gap)
		}
	case Optimal, Infeasible:
		// Fine: the instance closed inside the cap.
	default:
		t.Fatalf("status %v under node cap", sol.Status)
	}
	// Granularity: every worker may finish its in-flight expansion (≤ 2 LP
	// solves each) after the cap trips, nothing more.
	if sol.Nodes > 50+2*8 {
		t.Errorf("nodes = %d, far past the cap of 50", sol.Nodes)
	}
}

package milp

import (
	"math"
	"testing"
	"time"

	"billcap/internal/lp"
)

// TestRootIterLimitReportsInfiniteGap pins the gap-reporting contract of the
// root pivot-limit path: with no incumbent there is nothing to bound, so Gap
// must be +Inf. The pre-fix code returned a bare Solution whose zero-value
// Gap == 0 — callers reading "gap 0" concluded the answer was proven optimal
// when the solver had in fact proven nothing at all.
func TestRootIterLimitReportsInfiniteGap(t *testing.T) {
	// max x + y over x ≤ 1, y ≤ 1 needs two pivots; cap at one so the root
	// relaxation exhausts its budget.
	p := NewProblem()
	x := p.AddIntVar("x", 1)
	y := p.AddIntVar("y", 1)
	p.SetMaximize(true)
	p.AddConstraint([]lp.Term{{Var: x, Coef: 1}}, lp.LE, 1)
	p.AddConstraint([]lp.Term{{Var: y, Coef: 1}}, lp.LE, 1)

	for _, workers := range []int{1, 4} {
		sol := p.SolveWithOptions(Options{MaxLPPivots: 1, Workers: workers})
		if sol.Status != Limit {
			t.Fatalf("workers=%d: status = %v, want node-limit from root pivot cap", workers, sol.Status)
		}
		if sol.X != nil {
			t.Errorf("workers=%d: X = %v, want no incumbent", workers, sol.X)
		}
		if !math.IsInf(sol.Gap, 1) {
			t.Errorf("workers=%d: gap = %v with no incumbent, want +Inf — a zero gap reads as proven optimal",
				workers, sol.Gap)
		}
	}
}

// TestDiveRespectsDeadline pins the overshoot bound of the deadline path's
// incumbent-manufacturing dive. Pre-fix, the dive performed up to
// 2·NumIntegerVars warm LP re-solves with no deadline check of its own, so a
// near-zero deadline on a large instance overshot by the whole dive —
// hundreds of re-solves on steadily growing tableaus, multiple seconds.
// Post-fix the dive re-checks the clock every level and stops inside its
// bounded grace budget.
func TestDiveRespectsDeadline(t *testing.T) {
	k := NewHardKnapsack(400, 0)
	start := time.Now()
	sol := k.SolveWithOptions(Options{Deadline: time.Nanosecond})
	elapsed := time.Since(start)
	if sol.Status != TimeLimit {
		t.Fatalf("status = %v, want time-limit", sol.Status)
	}
	// Budget: one root LP solve (the cooperative floor), the dive's clamped
	// grace (≤ 250ms), and scheduler slack. The pre-fix full dive runs
	// ~2·300 re-solves and blows far past this.
	const bound = 2 * time.Second
	if elapsed > bound {
		t.Fatalf("near-zero deadline took %v, want < %v — the dive is not deadline-checked", elapsed, bound)
	}
	// Whatever the dive salvaged must be honest: either a feasible integral
	// incumbent with a finite gap, or no incumbent and an infinite gap.
	if sol.X != nil {
		if !k.CheckSolution(sol.X, 1e-6) {
			t.Fatalf("salvaged incumbent is infeasible: %v", sol.X)
		}
		if math.IsInf(sol.Gap, 1) || sol.Gap < 0 {
			t.Errorf("incumbent present but gap = %v", sol.Gap)
		}
	} else if !math.IsInf(sol.Gap, 1) {
		t.Errorf("no incumbent but gap = %v, want +Inf", sol.Gap)
	}
}

// TestDeadlineStillManufacturesIncumbent pins that the bounded dive keeps the
// original guarantee on the paper-scale regime: the grace budget is enough to
// manufacture a feasible incumbent for instances the controller actually
// solves (the flag-day failure would be a deadline answer with no plan).
func TestDeadlineStillManufacturesIncumbent(t *testing.T) {
	k := NewHardKnapsack(40, 0)
	sol := k.SolveWithOptions(Options{Deadline: time.Millisecond})
	if sol.Status != TimeLimit {
		t.Skipf("instance solved to %v before the deadline fired", sol.Status)
	}
	if sol.X == nil {
		t.Fatal("deadline answer carries no incumbent")
	}
	if !k.CheckSolution(sol.X, 1e-6) {
		t.Fatalf("manufactured incumbent infeasible: %v", sol.X)
	}
}

// TestBigMIncumbentRepair pins the incumbent-repair contract: a binary within
// IntTol of 0 still licenses real continuous load through its big-M capacity
// row (x ≤ M·y with y ≈ 1e-5 admits x = M·1e-5), and naive rounding then
// reports an infeasible incumbent whose "objective" beats the true optimum.
// The model mirrors the capper's premium-only hour: two sites, the cheap one
// capacity-limited so the relaxation parks its binary at x/M — far inside the
// integrality tolerance but not at zero.
func TestBigMIncumbentRepair(t *testing.T) {
	build := func() (*Problem, int, int, int) {
		p := NewProblem()
		x1 := p.AddVar("x1", 1)
		x2 := p.AddVar("x2", 0.5)
		y2 := p.AddBinVar("y2", 5)
		p.AddConstraint([]lp.Term{{Var: x1, Coef: 1}}, lp.LE, 1000)
		p.AddConstraint([]lp.Term{{Var: x2, Coef: 1}}, lp.LE, 0.01)
		p.AddConstraint([]lp.Term{{Var: x2, Coef: 1}, {Var: y2, Coef: -1000}}, lp.LE, 0)
		p.AddConstraint([]lp.Term{{Var: x1, Coef: 1}, {Var: x2, Coef: 1}}, lp.EQ, 1000)
		return p, x1, x2, y2
	}
	// Relaxation: x2 = 0.01, y2 = 1e-5 (integral within the default 1e-4),
	// objective ≈ 999.995. Snapping y2 to 0 strands x2 = 0.01 against the
	// big-M row; the only feasible completions are (1000, 0, 0) at 1000 and
	// (999.99, 0.01, 1) at 1004.995, so the answer must be exactly 1000.
	for _, workers := range []int{1, 4} {
		p, x1, x2, y2 := build()
		sol := p.SolveWithOptions(Options{Workers: workers, Deterministic: workers == 1})
		if sol.Status != Optimal {
			t.Fatalf("workers=%d: status = %v", workers, sol.Status)
		}
		if viol := p.CheckFeasible(sol.X, 1e-6); len(viol) != 0 {
			t.Fatalf("workers=%d: incumbent infeasible: %v (x=%v)", workers, viol, sol.X)
		}
		if math.Abs(sol.Objective-1000) > 1e-6 {
			t.Fatalf("workers=%d: objective = %v, want 1000", workers, sol.Objective)
		}
		if sol.X[y2] != 0 || sol.X[x2] != 0 || math.Abs(sol.X[x1]-1000) > 1e-9 {
			t.Fatalf("workers=%d: x = (%v, %v, %v), want (1000, 0, 0)",
				workers, sol.X[x1], sol.X[x2], sol.X[y2])
		}
	}
}

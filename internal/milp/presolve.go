package milp

import (
	"math"

	"billcap/internal/lp"
)

// PresolveResult is the outcome of Problem.Presolve.
type PresolveResult struct {
	// Fixed counts integer variables whose value is implied by the constraint
	// system alone, i.e. holds at every integer-feasible point.
	Fixed int
	// Infeasible reports that bound propagation proved no integer-feasible
	// point exists (the LP relaxation may still be feasible).
	Infeasible bool

	fixed []fixedVar
}

type fixedVar struct {
	v   int
	val float64
}

// FixedValue returns the proven value of variable v, if presolve fixed it.
func (r PresolveResult) FixedValue(v int) (float64, bool) {
	for _, f := range r.fixed {
		if f.v == v {
			return f.val, true
		}
	}
	return 0, false
}

// fixings converts the proven values into branch bounds to be applied
// permanently at the root of the search: x ≤ val always, plus x ≥ val when
// val > 0 (the variables' built-in x ≥ 0 covers val = 0).
func (r PresolveResult) fixings() []branch {
	var bs []branch
	for _, f := range r.fixed {
		bs = append(bs, branch{v: f.v, rel: lp.LE, value: f.val})
		if f.val > 0 {
			bs = append(bs, branch{v: f.v, rel: lp.GE, value: f.val})
		}
	}
	return bs
}

// Presolve tightens variable bounds by iterative constraint-activity
// propagation and derives the integer variables whose value is thereby
// forced. In the capper's models this is what proves a price-segment binary
// unreachable before the first simplex pivot: a budget row caps the segment
// power below the segment's own lower bound, so its binary is fixed to 0 —
// and when a site must run and a single segment survives, that segment's
// binary is fixed to 1. The derived fixings are valid for every
// integer-feasible point, so applying them never changes the optimum; they
// only shrink the branch-and-bound tree. The problem itself is not modified.
func (p *Problem) Presolve() PresolveResult {
	const (
		tol     = 1e-9 // minimum improvement worth recording
		intEps  = 1e-6 // slack when rounding bounds to integers
		feasTol = 1e-7 // violation proving infeasibility
		maxPass = 20   // propagation almost always fixpoints in 2-3 passes
	)
	n := p.NumVars()
	lo := make([]float64, n) // seeded from the declared variable bounds
	hi := make([]float64, n)
	for j := range hi {
		lo[j], hi[j] = p.VarBounds(j)
	}

	// View every row as one or two ≤ inequalities.
	type ineq struct {
		coef []float64
		rhs  float64
	}
	negated := func(c []float64) []float64 {
		out := make([]float64, len(c))
		for j, a := range c {
			out[j] = -a
		}
		return out
	}
	var rows []ineq
	for k := 0; k < p.NumConstraints(); k++ {
		c := p.Problem.Constraint(k)
		switch c.Rel {
		case lp.LE:
			rows = append(rows, ineq{c.Coeffs, c.RHS})
		case lp.GE:
			rows = append(rows, ineq{negated(c.Coeffs), -c.RHS})
		case lp.EQ:
			rows = append(rows, ineq{c.Coeffs, c.RHS}, ineq{negated(c.Coeffs), -c.RHS})
		}
	}

	var out PresolveResult
	for pass, changed := 0, true; changed && pass < maxPass; pass++ {
		changed = false
		for _, r := range rows {
			// Minimum activity Σ_{a>0} a·lo + Σ_{a<0} a·hi, tracking columns
			// whose contribution is −∞ (a < 0 with an unbounded hi).
			minAct := 0.0
			infCount, infVar := 0, -1
			for j, a := range r.coef {
				switch {
				case a > 0:
					minAct += a * lo[j]
				case a < 0:
					if math.IsInf(hi[j], 1) {
						infCount++
						infVar = j
					} else {
						minAct += a * hi[j]
					}
				}
			}
			if infCount == 0 && minAct > r.rhs+feasTol {
				out.Infeasible = true
				return out
			}
			// Implied bound per column: a_j·x_j ≤ rhs − (minimum activity of
			// the other columns). Only finite residuals yield bounds.
			for j, a := range r.coef {
				if a == 0 {
					continue
				}
				if a > 0 {
					if infCount > 0 {
						continue // some other column contributes −∞
					}
					nb := (r.rhs - (minAct - a*lo[j])) / a
					if p.integer[j] {
						nb = math.Floor(nb + intEps)
					}
					if nb < hi[j]-tol {
						hi[j] = nb
						changed = true
					}
				} else {
					if infCount > 1 || (infCount == 1 && infVar != j) {
						continue
					}
					rest := minAct
					if infCount == 0 {
						rest -= a * hi[j] // exclude j's own contribution
					}
					nb := (r.rhs - rest) / a // negative divisor: x_j ≥ nb
					if p.integer[j] {
						nb = math.Ceil(nb - intEps)
					}
					if nb > lo[j]+tol {
						lo[j] = nb
						changed = true
					}
				}
			}
		}
		for j := 0; j < n; j++ {
			if lo[j] > hi[j]+feasTol {
				out.Infeasible = true
				return out
			}
		}
	}

	for j := 0; j < n; j++ {
		if !p.integer[j] {
			continue
		}
		l := math.Ceil(lo[j] - intEps)
		h := math.Floor(hi[j] + intEps)
		if l == h {
			out.fixed = append(out.fixed, fixedVar{v: j, val: l})
		}
	}
	out.Fixed = len(out.fixed)
	return out
}

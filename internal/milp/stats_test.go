package milp

import (
	"testing"

	"billcap/internal/lp"
)

// TestSolveReportsEffort checks the observability fields of a solve: a
// branched problem must report at least one incumbent improvement and a
// measured wall time.
func TestSolveReportsEffort(t *testing.T) {
	// max x + y with binaries coupled so the relaxation is fractional:
	// 2x + 2y ≤ 3 forces branching.
	p := NewProblem()
	x := p.AddBinVar("x", 0)
	y := p.AddBinVar("y", 0)
	p.AddConstraint([]lp.Term{{Var: x, Coef: 2}, {Var: y, Coef: 2}}, lp.LE, 3)
	p.SetMaximize(true)
	p.SetObjectiveCoef(x, 1)
	p.SetObjectiveCoef(y, 1)

	sol := p.Solve()
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if sol.Objective != 1 {
		t.Fatalf("objective = %v, want 1", sol.Objective)
	}
	if sol.Incumbents < 1 {
		t.Errorf("incumbents = %d, want ≥ 1", sol.Incumbents)
	}
	if sol.Elapsed <= 0 {
		t.Errorf("elapsed = %v, want > 0", sol.Elapsed)
	}
	if sol.Nodes < 2 {
		t.Errorf("nodes = %d, want branching to have happened", sol.Nodes)
	}
}

// Package milp solves small mixed integer linear programs by LP-based branch
// and bound on top of the internal simplex solver.
//
// It is the replacement for the lp_solve library the paper uses: the paper's
// electricity-cost problems have one binary per price level per data center
// (≈ 5·N binaries for N sites), which is comfortably within reach of a plain
// best-first branch-and-bound with dense LP relaxations.
package milp

import (
	"container/heap"
	"fmt"
	"math"
	"time"

	"billcap/internal/lp"
)

// Problem is a linear program plus integrality markers.
type Problem struct {
	*lp.Problem
	integer []bool
}

// NewProblem returns an empty minimization MILP.
func NewProblem() *Problem {
	return &Problem{Problem: lp.NewProblem()}
}

// AddVar adds a continuous nonnegative variable.
func (p *Problem) AddVar(name string, objCoef float64) int {
	v := p.Problem.AddVar(name, objCoef)
	p.integer = append(p.integer, false)
	return v
}

// AddIntVar adds a nonnegative integer variable.
func (p *Problem) AddIntVar(name string, objCoef float64) int {
	v := p.Problem.AddVar(name, objCoef)
	p.integer = append(p.integer, true)
	return v
}

// AddBinVar adds a {0,1} variable (integer with an upper bound row of 1).
func (p *Problem) AddBinVar(name string, objCoef float64) int {
	v := p.AddIntVar(name, objCoef)
	p.AddConstraint([]lp.Term{{Var: v, Coef: 1}}, lp.LE, 1)
	return v
}

// SetInteger marks or unmarks integrality of an existing variable.
func (p *Problem) SetInteger(v int, isInt bool) { p.integer[v] = isInt }

// IsInteger reports whether variable v is integral.
func (p *Problem) IsInteger(v int) bool { return p.integer[v] }

// NumIntegerVars counts integral variables.
func (p *Problem) NumIntegerVars() int {
	c := 0
	for _, b := range p.integer {
		if b {
			c++
		}
	}
	return c
}

// Status is the outcome of a MILP solve.
type Status int

// Solve outcomes.
const (
	Optimal    Status = iota // proven optimal integer solution
	Infeasible               // no integer-feasible point exists
	Unbounded                // the LP relaxation is unbounded
	Limit                    // stopped at the node limit; Solution may hold an incumbent
	TimeLimit                // deadline expired or canceled; Solution may hold an incumbent
)

// String names the status.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case Limit:
		return "node-limit"
	case TimeLimit:
		return "time-limit"
	}
	return fmt.Sprintf("Status(%d)", int(s))
}

// Solution is the result of a branch-and-bound run.
type Solution struct {
	Status     Status
	X          []float64     // incumbent (integral entries exactly rounded)
	Objective  float64       // objective of X in the problem's own direction
	Nodes      int           // branch-and-bound nodes explored
	Pivots     int           // total simplex pivots across all LP relaxations
	Incumbents int           // times the incumbent improved during the search
	Elapsed    time.Duration // wall time of the solve
	Gap        float64       // |bound − incumbent| remaining at stop (0 when Optimal)
}

// Options tune the search. The zero value uses defaults suitable for the
// paper's problem sizes.
type Options struct {
	MaxNodes int // 0 → 200000
	// IntTol is the integrality tolerance. 0 → 1e-4: it must sit above the
	// LP solver's accumulated pivot noise (relative to row magnitudes up to
	// ~1e3 in this repository), or branching on a phantom fraction like
	// 1.000002 adds the already-present bound x ≤ 1 and makes no progress.
	IntTol float64
	Gap    float64 // absolute optimality gap at which to stop, 0 → 1e-7
	// Deadline is the wall-clock budget for the whole solve; 0 → unlimited.
	// The check is cooperative, between LP relaxations, so the effective
	// floor is one simplex solve. On expiry the search stops and returns the
	// best incumbent with Status == TimeLimit and the remaining Gap; if no
	// incumbent exists yet, a bounded rounding dive (at most one LP re-solve
	// per integer variable, plus backtracks) manufactures a feasible one
	// before returning, so callers get an answer instead of a hang.
	Deadline time.Duration
	// Cancel, when non-nil, cooperatively aborts the search once it is
	// closed (e.g. an http request context's Done channel). Cancellation is
	// reported as TimeLimit, with the same incumbent guarantees as Deadline.
	Cancel <-chan struct{}
}

// expired reports whether the solve must stop: the deadline passed (zero
// deadline never expires) or the cancel channel is closed.
func (o Options) expired(deadline time.Time) bool {
	if o.Cancel != nil {
		select {
		case <-o.Cancel:
			return true
		default:
		}
	}
	return !deadline.IsZero() && time.Now().After(deadline)
}

type node struct {
	bound  float64     // LP relaxation objective (minimization sense)
	bounds []branch    // branching bounds accumulated from the root
	sol    lp.Solution // the already-solved relaxation at this node
}

type branch struct {
	v     int
	rel   lp.Rel // LE (x ≤ val) or GE (x ≥ val)
	value float64
}

type nodeHeap []*node

func (h nodeHeap) Len() int            { return len(h) }
func (h nodeHeap) Less(i, j int) bool  { return h[i].bound < h[j].bound }
func (h nodeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *nodeHeap) Push(x interface{}) { *h = append(*h, x.(*node)) }
func (h *nodeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// Solve runs best-first branch and bound.
func (p *Problem) Solve() Solution { return p.SolveWithOptions(Options{}) }

// SolveWithOptions is Solve with explicit options.
func (p *Problem) SolveWithOptions(opt Options) Solution {
	start := time.Now()
	sol := p.solveWithOptions(opt, start)
	sol.Elapsed = time.Since(start)
	return sol
}

func (p *Problem) solveWithOptions(opt Options, start time.Time) Solution {
	if opt.MaxNodes == 0 {
		opt.MaxNodes = 200000
	}
	if opt.IntTol == 0 {
		opt.IntTol = 1e-4
	}
	if opt.Gap == 0 {
		opt.Gap = 1e-7
	}
	var deadline time.Time
	if opt.Deadline > 0 {
		deadline = start.Add(opt.Deadline)
	}

	sign := 1.0
	if p.Maximizing() {
		sign = -1 // internal bounds are kept in minimization sense
	}

	var (
		incumbent    []float64
		incumbentObj = math.Inf(1) // minimization sense
		incumbents   int           // incumbent improvements (exposed for observability)
		nodes, piv   int
		h            nodeHeap
	)

	// Solve the root once and keep its optimal basis; every node's
	// relaxation (root + branch bound rows) is then re-solved by the
	// warm-started dual simplex — the same strategy lp_solve's
	// branch-and-bound uses.
	warm, root := p.Problem.SolveForWarmStart(lp.Options{})
	relax := func(bs []branch) lp.Solution {
		rows := make([]lp.ExtraRow, len(bs))
		for i, b := range bs {
			rows[i] = lp.ExtraRow{
				Terms: []lp.Term{{Var: b.v, Coef: 1}},
				Rel:   b.rel,
				RHS:   b.value,
			}
		}
		return warm.ReSolve(rows)
	}
	piv += root.Pivots
	nodes++
	switch root.Status {
	case lp.Unbounded:
		return Solution{Status: Unbounded, Nodes: nodes, Pivots: piv}
	case lp.Infeasible:
		return Solution{Status: Infeasible, Nodes: nodes, Pivots: piv}
	case lp.IterLimit:
		return Solution{Status: Limit, Nodes: nodes, Pivots: piv}
	}

	process := func(bs []branch, sol lp.Solution) {
		bound := sign * sol.Objective
		if bound >= incumbentObj-opt.Gap {
			return // dominated
		}
		fv := p.mostFractional(sol.X, opt.IntTol)
		if fv < 0 {
			// Integer feasible: new incumbent.
			incumbentObj = bound
			incumbent = roundIntegral(sol.X, p.integer)
			incumbents++
			return
		}
		heap.Push(&h, &node{bound: bound, bounds: bs, sol: sol})
	}
	process(nil, root)

	for h.Len() > 0 {
		if nodes >= opt.MaxNodes {
			s := p.finish(Limit, incumbent, incumbentObj, sign, nodes, piv, h)
			s.Incumbents = incumbents
			return s
		}
		if opt.expired(deadline) {
			if incumbent == nil {
				// The deadline fired before best-first search reached any
				// integer point: dive from the best open node so the caller
				// still gets a feasible answer, not an empty solution.
				if x, obj, dn, dp := p.dive(h[0], relax, opt.IntTol, sign); x != nil {
					incumbent, incumbentObj = x, obj
					incumbents++
					nodes += dn
					piv += dp
				}
			}
			s := p.finish(TimeLimit, incumbent, incumbentObj, sign, nodes, piv, h)
			s.Incumbents = incumbents
			return s
		}
		it := heap.Pop(&h).(*node)
		if it.bound >= incumbentObj-opt.Gap {
			continue // pruned by a newer incumbent
		}
		// The node's relaxation was solved when it was pushed; branch on it
		// directly.
		sol := it.sol
		fv := p.mostFractional(sol.X, opt.IntTol)
		if fv < 0 {
			// Cannot happen (integer nodes become incumbents, not heap
			// entries), but guard against tolerance drift.
			if b := sign * sol.Objective; b < incumbentObj {
				incumbentObj = b
				incumbent = roundIntegral(sol.X, p.integer)
				incumbents++
			}
			continue
		}
		v := sol.X[fv]
		downB := branch{fv, lp.LE, math.Floor(v)}
		upB := branch{fv, lp.GE, math.Ceil(v)}
		for _, nb := range []branch{downB, upB} {
			if hasBranch(it.bounds, nb) {
				// The exact same bound row is already active, so re-adding it
				// cannot change the relaxation: numerical noise produced a
				// phantom fraction. Skip the child to guarantee progress.
				continue
			}
			child := append(append([]branch(nil), it.bounds...), nb)
			s := relax(child)
			piv += s.Pivots
			nodes++
			if s.Status == lp.Optimal {
				process(child, s)
			}
		}
	}
	if incumbent == nil {
		return Solution{Status: Infeasible, Nodes: nodes, Pivots: piv}
	}
	return Solution{
		Status:     Optimal,
		X:          incumbent,
		Objective:  sign * incumbentObj,
		Nodes:      nodes,
		Pivots:     piv,
		Incumbents: incumbents,
	}
}

func (p *Problem) finish(st Status, inc []float64, incObj, sign float64, nodes, piv int, h nodeHeap) Solution {
	s := Solution{Status: st, Nodes: nodes, Pivots: piv}
	if inc != nil {
		s.X = inc
		s.Objective = sign * incObj
		best := incObj
		for _, n := range h {
			if n.bound < best {
				best = n.bound
			}
		}
		s.Gap = incObj - best
	} else {
		s.Gap = math.Inf(1)
	}
	return s
}

// dive greedily rounds the most fractional variable of the node's relaxation
// toward its nearest integer, re-solving the warm-started LP after each added
// bound, until an integer-feasible point emerges or the attempt is exhausted.
// At each level the opposite rounding direction is tried when the preferred
// one is infeasible, so the LP work is bounded by ~2·NumIntegerVars re-solves.
// This is the deadline path's incumbent manufacturer; a nil x means even the
// dive found nothing feasible in its bounded budget.
func (p *Problem) dive(it *node, relax func([]branch) lp.Solution, tol, sign float64) (x []float64, obj float64, nodes, piv int) {
	bounds := it.bounds
	sol := it.sol
	for depth := 0; depth <= 2*p.NumIntegerVars()+1; depth++ {
		fv := p.mostFractional(sol.X, tol)
		if fv < 0 {
			return roundIntegral(sol.X, p.integer), sign * sol.Objective, nodes, piv
		}
		v := sol.X[fv]
		near := branch{fv, lp.LE, math.Floor(v)}
		far := branch{fv, lp.GE, math.Ceil(v)}
		if v-math.Floor(v) > 0.5 {
			near, far = far, near
		}
		advanced := false
		for _, nb := range []branch{near, far} {
			if hasBranch(bounds, nb) {
				continue
			}
			child := append(append([]branch(nil), bounds...), nb)
			s := relax(child)
			nodes++
			piv += s.Pivots
			if s.Status == lp.Optimal {
				bounds, sol = child, s
				advanced = true
				break
			}
		}
		if !advanced {
			return nil, 0, nodes, piv
		}
	}
	return nil, 0, nodes, piv
}

// hasBranch reports whether the exact bound is already in the list.
func hasBranch(bs []branch, b branch) bool {
	for _, x := range bs {
		if x == b {
			return true
		}
	}
	return false
}

// mostFractional returns the integral variable whose relaxation value is
// farthest from an integer, or -1 if all integral variables are integral
// within tol.
func (p *Problem) mostFractional(x []float64, tol float64) int {
	best, bestFrac := -1, tol
	for v, isInt := range p.integer {
		if !isInt || v >= len(x) {
			continue
		}
		f := math.Abs(x[v] - math.Round(x[v]))
		if f > bestFrac {
			bestFrac = f
			best = v
		}
	}
	return best
}

func roundIntegral(x []float64, integer []bool) []float64 {
	out := append([]float64(nil), x...)
	for v, isInt := range integer {
		if isInt && v < len(out) {
			out[v] = math.Round(out[v])
		}
	}
	return out
}

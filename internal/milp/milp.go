// Package milp solves small mixed integer linear programs by LP-based branch
// and bound on top of the internal simplex solver.
//
// It is the replacement for the lp_solve library the paper uses: the paper's
// electricity-cost problems have one binary per price level per data center
// (≈ 5·N binaries for N sites), which is comfortably within reach of a plain
// best-first branch-and-bound with dense LP relaxations.
package milp

import (
	"container/heap"
	"fmt"
	"math"
	"runtime"
	"time"

	"billcap/internal/lp"
)

// Problem is a linear program plus integrality markers.
type Problem struct {
	*lp.Problem
	integer []bool
}

// NewProblem returns an empty minimization MILP.
func NewProblem() *Problem {
	return &Problem{Problem: lp.NewProblem()}
}

// AddVar adds a continuous nonnegative variable.
func (p *Problem) AddVar(name string, objCoef float64) int {
	v := p.Problem.AddVar(name, objCoef)
	p.integer = append(p.integer, false)
	return v
}

// AddIntVar adds a nonnegative integer variable.
func (p *Problem) AddIntVar(name string, objCoef float64) int {
	v := p.Problem.AddVar(name, objCoef)
	p.integer = append(p.integer, true)
	return v
}

// AddBinVar adds a {0,1} variable: integer with native bounds [0, 1]. The
// bound lives on the variable, not in a constraint row — the sparse LP core
// handles it in the ratio test for free, and the dense oracle lowers it to an
// explicit row itself, so neither core sees a basis row per binary.
func (p *Problem) AddBinVar(name string, objCoef float64) int {
	v := p.AddIntVar(name, objCoef)
	p.SetVarBounds(v, 0, 1)
	return v
}

// Clone returns a deep copy of the MILP, so the copy can be patched (e.g.
// per-hour coefficients on a cached model skeleton) or gain extra rows
// without disturbing the original.
func (p *Problem) Clone() *Problem {
	return &Problem{
		Problem: p.Problem.Clone(),
		integer: append([]bool(nil), p.integer...),
	}
}

// SetInteger marks or unmarks integrality of an existing variable.
func (p *Problem) SetInteger(v int, isInt bool) { p.integer[v] = isInt }

// IsInteger reports whether variable v is integral.
func (p *Problem) IsInteger(v int) bool { return p.integer[v] }

// NumIntegerVars counts integral variables.
func (p *Problem) NumIntegerVars() int {
	c := 0
	for _, b := range p.integer {
		if b {
			c++
		}
	}
	return c
}

// Status is the outcome of a MILP solve.
type Status int

// Solve outcomes.
const (
	Optimal    Status = iota // proven optimal integer solution
	Infeasible               // no integer-feasible point exists
	Unbounded                // the LP relaxation is unbounded
	Limit                    // stopped at the node limit; Solution may hold an incumbent
	TimeLimit                // deadline expired or canceled; Solution may hold an incumbent
)

// String names the status.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case Limit:
		return "node-limit"
	case TimeLimit:
		return "time-limit"
	}
	return fmt.Sprintf("Status(%d)", int(s))
}

// Solution is the result of a branch-and-bound run.
type Solution struct {
	Status    Status
	X         []float64 // incumbent (integral entries exactly rounded)
	Objective float64   // objective of X in the problem's own direction
	Nodes     int       // branch-and-bound nodes explored
	Pivots    int       // total simplex pivots across all LP relaxations
	// LPRefactorizations and LPBasisUpdates aggregate the sparse LP core's
	// basis-factorization work across every relaxation of the search: LU
	// rebuilds and product-form eta updates respectively. Both stay zero when
	// the dense oracle (Options.LPCore == lp.CoreDense) ran the relaxations.
	LPRefactorizations int
	LPBasisUpdates     int
	Incumbents         int           // times the incumbent improved during the search
	Elapsed            time.Duration // wall time of the solve
	Gap                float64       // |bound − incumbent| remaining at stop (0 when Optimal)
	Workers            int           // branch-and-bound workers that ran the search
	// PresolveFixed counts integer variables fixed by Options.Presolve before
	// the search started (0 when presolve was off or fixed nothing).
	PresolveFixed int
	// WarmStarted reports that Options.StartX passed its feasibility screen
	// and seeded the search as the starting incumbent.
	WarmStarted bool
	// RootBasis is the optimal simplex basis of the base LP relaxation (nil
	// when the root did not solve to optimality). Feeding it back as
	// Options.StartBasis on a structurally identical problem — the next hour
	// of a diurnal sequence — lets the LP crash straight to a near-optimal
	// basis instead of running phase 1.
	RootBasis []int
}

// Options tune the search. The zero value uses defaults suitable for the
// paper's problem sizes.
type Options struct {
	MaxNodes int // 0 → 200000
	// IntTol is the integrality tolerance. 0 → 1e-4: it must sit above the
	// LP solver's accumulated pivot noise (relative to row magnitudes up to
	// ~1e3 in this repository), or branching on a phantom fraction like
	// 1.000002 adds the already-present bound x ≤ 1 and makes no progress.
	IntTol float64
	Gap    float64 // absolute optimality gap at which to stop, 0 → 1e-7
	// Deadline is the wall-clock budget for the whole solve; 0 → unlimited.
	// The check is cooperative, between LP relaxations, so the effective
	// floor is one simplex solve. On expiry the search stops and returns the
	// best incumbent with Status == TimeLimit and the remaining Gap; if no
	// incumbent exists yet, a bounded rounding dive (at most one LP re-solve
	// per integer variable, plus backtracks) manufactures a feasible one
	// before returning, so callers get an answer instead of a hang.
	Deadline time.Duration
	// Cancel, when non-nil, cooperatively aborts the search once it is
	// closed (e.g. an http request context's Done channel). Cancellation is
	// reported as TimeLimit, with the same incumbent guarantees as Deadline.
	Cancel <-chan struct{}
	// Workers is the branch-and-bound worker-pool size: 0 → GOMAXPROCS,
	// 1 → the sequential best-first search. Each worker owns a private clone
	// of the root's warm-started dual-simplex state and pulls nodes from a
	// shared best-first frontier; the incumbent and global bound are shared
	// so every worker prunes against the best solution found anywhere.
	Workers int
	// Deterministic forces the exact sequential node ordering regardless of
	// Workers, so tests and replays reproduce a solve bit-for-bit. The
	// parallel search stays exact (same optimum, same feasibility) but its
	// node ordering — and therefore Nodes/Pivots — depends on scheduling.
	Deterministic bool
	// MaxLPPivots caps simplex pivots of the root relaxation solve; 0 → the
	// LP solver's default. A root that exhausts the cap stops the search with
	// Status Limit, no incumbent and Gap +Inf.
	MaxLPPivots int
	// Presolve runs bound-propagation presolve before the search, fixing
	// integer variables whose value is forced by the constraints (see
	// Problem.Presolve). The fixings are exact — every integer-feasible point
	// satisfies them — so the reported optimum is unchanged; only the tree
	// shrinks. Solution.PresolveFixed reports how many variables were fixed.
	Presolve bool
	// StartX, when non-nil, proposes a starting incumbent — typically the
	// previous hour's optimum re-checked against this hour's constraints. It
	// is used only if it has the right length, its integer entries are
	// integral within IntTol, every entry is finite, and the snapped point
	// satisfies every constraint; otherwise it is silently ignored, so a
	// stale or infeasible seed can never corrupt the solve. An accepted seed
	// gives the search an immediate primal bound (Solution.WarmStarted).
	StartX []float64
	// StartBasis, when non-nil, is forwarded to the root LP solve as
	// lp.Options.CrashBasis — usually Solution.RootBasis of the previous
	// hour's solve. An unusable basis falls back to the cold two-phase solve.
	StartBasis []int
	// LPCore selects the LP core for the root relaxation — and, through the
	// warm start it records, for every node re-solve of the search. The zero
	// value follows the lp package default (the sparse revised simplex);
	// lp.CoreDense pins the dense tableau oracle for A/B comparison.
	LPCore lp.Core
}

// effectiveWorkers resolves the worker count: Deterministic pins the
// sequential search, 0 means one worker per CPU.
func (o Options) effectiveWorkers() int {
	if o.Deterministic {
		return 1
	}
	w := o.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w < 1 {
		w = 1
	}
	return w
}

// withDefaults fills the zero-value knobs shared by both search modes.
func (o Options) withDefaults() Options {
	if o.MaxNodes == 0 {
		o.MaxNodes = 200000
	}
	if o.IntTol == 0 {
		o.IntTol = 1e-4
	}
	if o.Gap == 0 {
		o.Gap = 1e-7
	}
	return o
}

// expired reports whether the solve must stop: the deadline passed (zero
// deadline never expires) or the cancel channel is closed.
func (o Options) expired(deadline time.Time) bool {
	if o.Cancel != nil {
		select {
		case <-o.Cancel:
			return true
		default:
		}
	}
	return !deadline.IsZero() && time.Now().After(deadline)
}

type node struct {
	bound  float64     // LP relaxation objective (minimization sense)
	bounds []branch    // branching bounds accumulated from the root
	sol    lp.Solution // the already-solved relaxation at this node
	pseudo bool        // integral within IntTol but with no feasible rounding:
	// already failed an incumbent repair, must be branched at zero tolerance
}

type branch struct {
	v     int
	rel   lp.Rel // LE (x ≤ val) or GE (x ≥ val)
	value float64
}

type nodeHeap []*node

func (h nodeHeap) Len() int            { return len(h) }
func (h nodeHeap) Less(i, j int) bool  { return h[i].bound < h[j].bound }
func (h nodeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *nodeHeap) Push(x interface{}) { *h = append(*h, x.(*node)) }
func (h *nodeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// Solve runs best-first branch and bound.
func (p *Problem) Solve() Solution { return p.SolveWithOptions(Options{}) }

// SolveWithOptions is Solve with explicit options: the sequential best-first
// search for Workers ≤ 1 (or Deterministic), the shared-frontier worker pool
// otherwise. Both searches start from the same shared root stage: one base LP
// solve (optionally crashed from StartBasis), optional presolve fixings
// applied as permanent root bounds, and an optional StartX incumbent.
func (p *Problem) SolveWithOptions(opt Options) Solution {
	start := time.Now()
	opt = opt.withDefaults()
	sol := p.solveFromRoot(opt, start)
	sol.Elapsed = time.Since(start)
	return sol
}

// rootState is everything the sequential and parallel searches inherit from
// the shared root stage.
type rootState struct {
	warm      *lp.WarmStart
	root      lp.Solution // relaxation at the root, fixings applied
	fix       []branch    // permanent bounds from presolve (every node inherits them)
	seed      []float64   // accepted starting incumbent, nil when none
	seedObj   float64     // seed objective, minimization sense (+Inf when none)
	fixed     int         // integer variables fixed by presolve
	rootBasis []int       // optimal basis of the base LP, for the next hour
	nodes     int
	eff       effort
}

// effort aggregates the LP work spent across relaxation solves: simplex
// pivots plus the sparse core's basis-factorization counters (both zero when
// the dense oracle ran). It is the accumulator behind Solution.Pivots,
// Solution.LPRefactorizations and Solution.LPBasisUpdates.
type effort struct {
	pivots, refactors, updates int
}

// absorb adds one LP solve's counters.
func (e *effort) absorb(s lp.Solution) {
	e.pivots += s.Pivots
	e.refactors += s.Refactorizations
	e.updates += s.BasisUpdates
}

// merge adds another accumulator (a dive's or a repair's sub-total).
func (e *effort) merge(o effort) {
	e.pivots += o.pivots
	e.refactors += o.refactors
	e.updates += o.updates
}

// stamp writes the accumulated counters onto a Solution and returns it.
func (e effort) stamp(s Solution) Solution {
	s.Pivots = e.pivots
	s.LPRefactorizations = e.refactors
	s.LPBasisUpdates = e.updates
	return s
}

func (p *Problem) solveFromRoot(opt Options, start time.Time) Solution {
	sign := 1.0
	if p.Maximizing() {
		sign = -1 // internal bounds are kept in minimization sense
	}
	rs := rootState{seedObj: math.Inf(1)}

	if opt.Presolve {
		pr := p.Presolve()
		if pr.Infeasible {
			return Solution{Status: Infeasible, Nodes: 1, PresolveFixed: pr.Fixed, Workers: 1}
		}
		rs.fix = pr.fixings()
		rs.fixed = pr.Fixed
	}

	// Solve the root once and keep its optimal basis; every node's relaxation
	// (root + branch bound rows) is then re-solved by the warm-started dual
	// simplex — the same strategy lp_solve's branch-and-bound uses.
	warm, root := p.Problem.SolveForWarmStart(lp.Options{MaxPivots: opt.MaxLPPivots, CrashBasis: opt.StartBasis, Core: opt.LPCore})
	rs.nodes = 1
	rs.eff.absorb(root)
	switch root.Status {
	case lp.Unbounded:
		return rs.eff.stamp(Solution{Status: Unbounded, Nodes: rs.nodes, PresolveFixed: rs.fixed, Workers: 1})
	case lp.Infeasible:
		return rs.eff.stamp(Solution{Status: Infeasible, Nodes: rs.nodes, PresolveFixed: rs.fixed, Workers: 1})
	case lp.IterLimit:
		// Through finish, so Gap reads +Inf: there is no incumbent, and the
		// zero-value Gap of a bare Solution would tell callers "proven
		// optimal" when nothing was proven at all.
		s := p.finish(Limit, nil, math.Inf(1), sign, rs.nodes, rs.eff, nil)
		s.PresolveFixed = rs.fixed
		s.Workers = 1
		return s
	}
	rs.warm, rs.root = warm, root
	rs.rootBasis = warm.Basis()

	if len(rs.fix) > 0 {
		fs := warm.ReSolve(branchRows(rs.fix))
		rs.nodes++
		rs.eff.absorb(fs)
		switch fs.Status {
		case lp.Optimal:
			rs.root = fs
		case lp.Infeasible:
			// The fixings hold at every integer-feasible point, so an
			// LP-infeasible fixed system means the MILP is infeasible.
			return rs.eff.stamp(Solution{Status: Infeasible, Nodes: rs.nodes,
				PresolveFixed: rs.fixed, RootBasis: rs.rootBasis, Workers: 1})
		default:
			// Numerical trouble under the fixing rows: search from the plain
			// root instead — correctness over speed.
			rs.fix = nil
		}
	}

	if opt.StartX != nil {
		if x, obj, ok := p.acceptStart(opt.StartX, opt.IntTol); ok {
			rs.seed, rs.seedObj = x, sign*obj
		}
	}

	var sol Solution
	if w := opt.effectiveWorkers(); w > 1 && p.NumIntegerVars() > 0 {
		sol = p.solveParallel(opt, start, w, rs)
		sol.Workers = w
	} else {
		sol = p.solveSequential(opt, start, rs)
		sol.Workers = 1
	}
	sol.PresolveFixed = rs.fixed
	sol.WarmStarted = rs.seed != nil
	sol.RootBasis = rs.rootBasis
	return sol
}

// acceptStart screens a proposed starting incumbent: right length, finite,
// integral within tol on the integer variables, and feasible after snapping
// those to exact integers. Returns the snapped point and its objective in the
// problem's own direction.
func (p *Problem) acceptStart(x0 []float64, tol float64) ([]float64, float64, bool) {
	if len(x0) != p.NumVars() {
		return nil, 0, false
	}
	for v, xv := range x0 {
		if math.IsNaN(xv) || math.IsInf(xv, 0) {
			return nil, 0, false
		}
		if p.integer[v] && math.Abs(xv-math.Round(xv)) > tol {
			return nil, 0, false
		}
	}
	x := roundIntegral(x0, p.integer)
	if len(p.Problem.CheckFeasible(x, 1e-6)) != 0 {
		return nil, 0, false
	}
	return x, p.Problem.Eval(x), true
}

func (p *Problem) solveSequential(opt Options, start time.Time, rs rootState) Solution {
	var deadline time.Time
	if opt.Deadline > 0 {
		deadline = start.Add(opt.Deadline)
	}

	sign := 1.0
	if p.Maximizing() {
		sign = -1
	}

	var (
		incumbent    = rs.seed
		incumbentObj = rs.seedObj // minimization sense
		incumbents   int          // incumbent improvements (exposed for observability)
		nodes        = rs.nodes
		eff          = rs.eff
		h            nodeHeap
	)
	warm, root := rs.warm, rs.root
	relax := func(bs []branch) lp.Solution {
		return warm.ReSolve(branchRows(bs))
	}

	process := func(bs []branch, sol lp.Solution) {
		bound := sign * sol.Objective
		if bound >= incumbentObj-opt.Gap {
			return // dominated
		}
		pseudo := false
		fv := p.mostFractional(sol.X, opt.IntTol)
		if fv < 0 {
			// Integral within tolerance: repair into an exactly feasible
			// incumbent (rounding can strand continuous load behind big-M
			// rows; see repairIncumbent).
			x, obj, re, ok := p.repairIncumbent(bs, sol, relax)
			eff.merge(re)
			if ok {
				if b := sign * obj; b < incumbentObj {
					incumbentObj = b
					incumbent = x
					incumbents++
				}
				return
			}
			// No feasible completion at the rounded integers: branch on the
			// worst residual fraction instead of accepting a bogus point.
			if fv = p.mostFractional(sol.X, 0); fv < 0 {
				return // exactly integral yet infeasible: numerically dead
			}
			pseudo = true
		}
		heap.Push(&h, &node{bound: bound, bounds: bs, sol: sol, pseudo: pseudo})
	}
	process(rs.fix, root)

	for h.Len() > 0 {
		if nodes >= opt.MaxNodes {
			s := p.finish(Limit, incumbent, incumbentObj, sign, nodes, eff, h)
			s.Incumbents = incumbents
			return s
		}
		if opt.expired(deadline) {
			if incumbent == nil {
				// The deadline fired before best-first search reached any
				// integer point: dive from the best open node so the caller
				// still gets a feasible answer, not an empty solution. The
				// dive runs on borrowed time, so it gets its own bounded
				// grace deadline rather than a free pass to overshoot by
				// 2·NumIntegerVars LP re-solves.
				if x, obj, dn, de := p.dive(h[0], relax, opt, sign, time.Now().Add(diveGrace(opt.Deadline))); x != nil {
					incumbent, incumbentObj = x, obj
					incumbents++
					nodes += dn
					eff.merge(de)
				}
			}
			s := p.finish(TimeLimit, incumbent, incumbentObj, sign, nodes, eff, h)
			s.Incumbents = incumbents
			return s
		}
		it := heap.Pop(&h).(*node)
		if it.bound >= incumbentObj-opt.Gap {
			continue // pruned by a newer incumbent
		}
		// The node's relaxation was solved when it was pushed; branch on it
		// directly.
		sol := it.sol
		fv := p.mostFractional(sol.X, opt.IntTol)
		if fv < 0 {
			// Tolerance drift on a re-popped node: try the repair unless this
			// node already failed it (pseudo), then branch at zero tolerance.
			if !it.pseudo {
				x, obj, re, ok := p.repairIncumbent(it.bounds, sol, relax)
				eff.merge(re)
				if ok {
					if b := sign * obj; b < incumbentObj {
						incumbentObj = b
						incumbent = x
						incumbents++
					}
					continue
				}
			}
			if fv = p.mostFractional(sol.X, 0); fv < 0 {
				continue // exactly integral yet infeasible: numerically dead
			}
		}
		v := sol.X[fv]
		downB := branch{fv, lp.LE, math.Floor(v)}
		upB := branch{fv, lp.GE, math.Ceil(v)}
		for _, nb := range []branch{downB, upB} {
			if hasBranch(it.bounds, nb) {
				// The exact same bound row is already active, so re-adding it
				// cannot change the relaxation: numerical noise produced a
				// phantom fraction. Skip the child to guarantee progress.
				continue
			}
			child := append(append([]branch(nil), it.bounds...), nb)
			s := relax(child)
			eff.absorb(s)
			nodes++
			if s.Status == lp.Optimal {
				process(child, s)
			}
		}
	}
	if incumbent == nil {
		return eff.stamp(Solution{Status: Infeasible, Nodes: nodes})
	}
	return eff.stamp(Solution{
		Status:     Optimal,
		X:          incumbent,
		Objective:  sign * incumbentObj,
		Nodes:      nodes,
		Incumbents: incumbents,
	})
}

func (p *Problem) finish(st Status, inc []float64, incObj, sign float64, nodes int, eff effort, h nodeHeap) Solution {
	s := eff.stamp(Solution{Status: st, Nodes: nodes})
	if inc != nil {
		s.X = inc
		s.Objective = sign * incObj
		best := incObj
		for _, n := range h {
			if n.bound < best {
				best = n.bound
			}
		}
		s.Gap = incObj - best
	} else {
		s.Gap = math.Inf(1)
	}
	return s
}

// diveGrace bounds the wall-clock budget of the incumbent-manufacturing dive
// that runs after the main deadline has already expired. It tracks the
// caller's own deadline (a caller tolerating 50ms of search tolerates a
// comparable dive) but is clamped so a near-zero deadline still buys enough
// time to manufacture an incumbent, and a multi-minute one cannot let the
// dive overshoot unboundedly.
func diveGrace(d time.Duration) time.Duration {
	const (
		minGrace = 10 * time.Millisecond
		maxGrace = 250 * time.Millisecond
	)
	if d < minGrace {
		return minGrace
	}
	if d > maxGrace {
		return maxGrace
	}
	return d
}

// repairIncumbent turns a relaxation point whose integer variables are all
// integral within IntTol into an exactly feasible incumbent. Rounding alone is
// not enough: through a big-M row like x ≤ M·y, a binary at 1e-5 — integral
// under any practical tolerance — still licenses M·1e-5 worth of continuous x,
// which becomes a constraint violation the moment y snaps to 0. When the
// rounded point violates a row, one more warm re-solve with every integer
// pinned to its rounded value lets the LP re-place the continuous variables
// against the honest integer assignment. ok == false means no feasible
// completion exists at those integer values: the point is only
// pseudo-integral and must be branched further (on its worst sub-tolerance
// fraction), never accepted. The returned objective is in the problem's own
// optimization sense; eff counts the repair solve's LP work.
func (p *Problem) repairIncumbent(bs []branch, sol lp.Solution, relax func([]branch) lp.Solution) (x []float64, obj float64, eff effort, ok bool) {
	x = roundIntegral(sol.X, p.integer)
	if len(p.Problem.CheckFeasible(x, 1e-6)) == 0 {
		return x, p.Problem.Eval(x), eff, true
	}
	pins := append([]branch(nil), bs...)
	for v, isInt := range p.integer {
		if !isInt || v >= len(x) {
			continue
		}
		pins = append(pins, branch{v, lp.LE, x[v]}, branch{v, lp.GE, x[v]})
	}
	rs := relax(pins)
	eff.absorb(rs)
	if rs.Status != lp.Optimal {
		return nil, 0, eff, false
	}
	rx := roundIntegral(rs.X, p.integer)
	if len(p.Problem.CheckFeasible(rx, 1e-6)) != 0 {
		return nil, 0, eff, false
	}
	return rx, p.Problem.Eval(rx), eff, true
}

// branchRows converts accumulated branching bounds into warm-start rows.
func branchRows(bs []branch) []lp.ExtraRow {
	rows := make([]lp.ExtraRow, len(bs))
	for i, b := range bs {
		rows[i] = lp.ExtraRow{
			Terms: []lp.Term{{Var: b.v, Coef: 1}},
			Rel:   b.rel,
			RHS:   b.value,
		}
	}
	return rows
}

// dive greedily rounds the most fractional variable of the node's relaxation
// toward its nearest integer, re-solving the warm-started LP after each added
// bound, until an integer-feasible point emerges or the attempt is exhausted.
// At each level the opposite rounding direction is tried when the preferred
// one is infeasible, so the LP work is bounded by ~2·NumIntegerVars re-solves
// AND by the hard deadline: the dive runs after the solve's own deadline has
// expired, so each level re-checks the clock and on expiry returns the best
// it can salvage from the partial descent (the current point snapped to
// integers, if that happens to be feasible) instead of overshooting by the
// whole dive. A nil x means nothing feasible was found in the budget.
func (p *Problem) dive(it *node, relax func([]branch) lp.Solution, opt Options, sign float64, hard time.Time) (x []float64, obj float64, nodes int, eff effort) {
	bounds := it.bounds
	sol := it.sol
	for depth := 0; depth <= 2*p.NumIntegerVars()+1; depth++ {
		fv := p.mostFractional(sol.X, opt.IntTol)
		if fv < 0 {
			x, obj, re, ok := p.repairIncumbent(bounds, sol, relax)
			eff.merge(re)
			if ok {
				return x, sign * obj, nodes, eff
			}
			// Pseudo-integral (see repairIncumbent): keep diving on the worst
			// residual fraction rather than returning an infeasible point.
			if fv = p.mostFractional(sol.X, 0); fv < 0 {
				return nil, 0, nodes, eff
			}
		}
		if opt.expired(hard) {
			if x, obj, ok := p.snapRound(sol); ok {
				return x, sign * obj, nodes, eff
			}
			return nil, 0, nodes, eff
		}
		v := sol.X[fv]
		near := branch{fv, lp.LE, math.Floor(v)}
		far := branch{fv, lp.GE, math.Ceil(v)}
		if v-math.Floor(v) > 0.5 {
			near, far = far, near
		}
		advanced := false
		for _, nb := range []branch{near, far} {
			if hasBranch(bounds, nb) {
				continue
			}
			child := append(append([]branch(nil), bounds...), nb)
			s := relax(child)
			nodes++
			eff.absorb(s)
			if s.Status == lp.Optimal {
				bounds, sol = child, s
				advanced = true
				break
			}
		}
		if !advanced {
			break // both rounding directions infeasible; salvage below
		}
	}
	if x, obj, ok := p.snapRound(sol); ok {
		return x, sign * obj, nodes, eff
	}
	return nil, 0, nodes, eff
}

// snapRound is the dive's last gasp on expiry: snap the current fractional
// point to integers and keep the result only if it satisfies every
// constraint. It tries nearest-rounding first, then floor-rounding — which
// always survives the ≤-rows-with-nonnegative-coefficients family the
// paper's models (and knapsacks) live in. No LP work, just feasibility
// sweeps over the rows. The objective is in the problem's own direction,
// like lp.Solution.Objective.
func (p *Problem) snapRound(sol lp.Solution) (x []float64, obj float64, ok bool) {
	nearest := roundIntegral(sol.X, p.integer)
	floored := append([]float64(nil), sol.X...)
	for v, isInt := range p.integer {
		if isInt && v < len(floored) {
			// Snap numerical noise (a binary at -1e-12 or 1+1e-12) to the
			// integer it already is before flooring — a raw floor would turn
			// -1e-12 into -1 and manufacture an infeasibility.
			if f, r := floored[v], math.Round(floored[v]); math.Abs(f-r) <= 1e-6 {
				floored[v] = r
			} else {
				floored[v] = math.Floor(f)
			}
		}
	}
	for _, cand := range [][]float64{nearest, floored} {
		if len(p.Problem.CheckFeasible(cand, 1e-6)) == 0 {
			return cand, p.Problem.Eval(cand), true
		}
	}
	return nil, 0, false
}

// hasBranch reports whether the exact bound is already in the list.
func hasBranch(bs []branch, b branch) bool {
	for _, x := range bs {
		if x == b {
			return true
		}
	}
	return false
}

// mostFractional returns the integral variable whose relaxation value is
// farthest from an integer, or -1 if all integral variables are integral
// within tol.
func (p *Problem) mostFractional(x []float64, tol float64) int {
	best, bestFrac := -1, tol
	for v, isInt := range p.integer {
		if !isInt || v >= len(x) {
			continue
		}
		f := math.Abs(x[v] - math.Round(x[v]))
		if f > bestFrac {
			bestFrac = f
			best = v
		}
	}
	return best
}

func roundIntegral(x []float64, integer []bool) []float64 {
	out := append([]float64(nil), x...)
	for v, isInt := range integer {
		if isInt && v < len(out) {
			out[v] = math.Round(out[v])
		}
	}
	return out
}

package api

import (
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"billcap/internal/core"
	"billcap/internal/dcmodel"
	"billcap/internal/pricing"
)

// newRouteTestServer returns both the Server (for RoutePlane access) and its
// HTTP front.
func newRouteTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(dcmodel.PaperSites(), pricing.PaperPolicies(pricing.Policy1), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// decideOnce installs a routing table by solving one uncapped hour.
func decideOnce(t *testing.T, ts *httptest.Server, total, premium float64, hour int) {
	t.Helper()
	var dec DecideResponse
	resp := postJSON(t, ts.URL+"/v1/decide", DecideRequest{
		TotalLambda: total, PremiumLambda: premium,
		DemandMW: []float64{170, 190, 150}, Hour: hour, Resilient: true,
	}, &dec)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("decide = %d", resp.StatusCode)
	}
}

// TestRouteLifecycle walks the data plane's happy path: 503 before any
// decision, then decide → route → introspect → metrics.
func TestRouteLifecycle(t *testing.T) {
	s, ts := newRouteTestServer(t)

	var errBody errorBody
	if resp := postJSON(t, ts.URL+"/v1/route", RouteRequest{}, &errBody); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("route before decide = %d, want 503", resp.StatusCode)
	}
	if resp := getJSON(t, ts.URL+"/v1/route/table", &errBody); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("table before decide = %d, want 503", resp.StatusCode)
	}

	decideOnce(t, ts, 1e12, 4e11, 1)

	var rr RouteResponse
	if resp := postJSON(t, ts.URL+"/v1/route", RouteRequest{Class: "premium"}, &rr); resp.StatusCode != http.StatusOK {
		t.Fatalf("route = %d", resp.StatusCode)
	}
	if !rr.Admitted || rr.Site == "" || rr.SiteIndex < 0 || rr.SiteIndex > 2 || rr.Version != 1 {
		t.Fatalf("route response %+v", rr)
	}
	if resp := postJSON(t, ts.URL+"/v1/route", RouteRequest{Class: "bogus"}, &errBody); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bogus class = %d, want 400", resp.StatusCode)
	}

	var tbl RouteTableResponse
	if resp := getJSON(t, ts.URL+"/v1/route/table", &tbl); resp.StatusCode != http.StatusOK {
		t.Fatalf("table = %d", resp.StatusCode)
	}
	if tbl.Version != 1 || tbl.Hour != 1 || tbl.Routed != 1 || tbl.Arrivals != 1 {
		t.Fatalf("table %+v", tbl)
	}
	sum := 0.0
	for _, w := range tbl.Weights {
		sum += w
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("weights sum %v", sum)
	}
	if tbl.DriftRatio != defaultDriftRatio || tbl.DriftPredicted != 1e12 {
		t.Errorf("drift posture %v/%v", tbl.DriftRatio, tbl.DriftPredicted)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(body)
	for _, want := range []string{
		"billcap_routes_total{site=", "billcap_route_table_swaps_total 1",
		"billcap_route_drift_resolves_total 0",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	if s.RoutePlane().Snapshot().Routed() != 1 {
		t.Error("snapshot routed count off")
	}
}

// TestRouteBatch exercises the closed-form batch path and its validation.
func TestRouteBatch(t *testing.T) {
	_, ts := newRouteTestServer(t)
	decideOnce(t, ts, 1e12, 4e11, 0)

	var br RouteBatchResponse
	if resp := postJSON(t, ts.URL+"/v1/route/batch", RouteBatchRequest{Total: 100000, Premium: 40000}, &br); resp.StatusCode != http.StatusOK {
		t.Fatalf("batch = %d", resp.StatusCode)
	}
	if br.Requests != 100000 || br.Routed != 40000+br.AdmittedOrd || br.AdmittedOrd+br.DroppedOrd != 60000 {
		t.Fatalf("batch accounting %+v", br)
	}
	var sum int64
	for _, sc := range br.Sites {
		sum += sc.Count
	}
	if sum != br.Routed {
		t.Fatalf("site counts sum %d, routed %d", sum, br.Routed)
	}
	var errBody errorBody
	for _, bad := range []RouteBatchRequest{
		{Total: 0}, {Total: -5}, {Total: maxBatchRoute + 1},
		{Total: 10, Premium: 11}, {Total: 10, Premium: -1},
	} {
		if resp := postJSON(t, ts.URL+"/v1/route/batch", bad, &errBody); resp.StatusCode != http.StatusBadRequest {
			t.Errorf("batch %+v = %d, want 400", bad, resp.StatusCode)
		}
	}
}

// TestRouteConcurrentSwap is the chaos-soak of the data plane: goroutines
// route continuously while the control plane installs new tables and a
// drift-triggered re-solve swaps one in mid-hour. Zero requests may be lost
// (every Route call lands in exactly one site counter) and post-swap traffic
// must converge to the new table's weights. Run with -race.
func TestRouteConcurrentSwap(t *testing.T) {
	s, ts := newRouteTestServer(t)
	if err := s.SetDriftRatio(1.5); err != nil {
		t.Fatal(err)
	}
	plane := s.RoutePlane()
	decideOnce(t, ts, 1e12, 4e11, 0)

	const routers = 6
	const perRouter = 30000
	var issued atomic.Int64
	var wg sync.WaitGroup
	stop := make(chan struct{})

	for g := 0; g < routers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perRouter; i++ {
				snap := plane.Snapshot()
				if g%2 == 0 {
					if site := snap.Route(); site < 0 || site >= snap.NumSites() {
						t.Errorf("misrouted to site %d", site)
						return
					}
					issued.Add(1)
				} else if i%64 == 0 {
					snap.RouteBatch(64)
					issued.Add(64)
				}
			}
		}(g)
	}

	// Control plane: swap tables mid-flight (staying within the flush ring so
	// conservation over the registry is exact).
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 1; i <= 3; i++ {
			decideOnce(t, ts, float64(1+i)*2e11, 1e11, i)
			time.Sleep(5 * time.Millisecond)
		}
		close(stop)
	}()

	// Drift: push arrivals far past ratio×predicted and wait for the async
	// re-solve to swap in a scaled table.
	wg.Wait()
	<-stop
	versionBefore := plane.Snapshot().Version()
	plane.noteArrivals(plane.Snapshot(), 2<<40)
	deadline := time.Now().Add(10 * time.Second)
	for plane.Snapshot().Version() == versionBefore {
		if time.Now().After(deadline) {
			t.Fatal("drift re-solve never swapped a table")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Conservation: every issued route appears in the flushed counters.
	plane.FlushMetrics()
	var flushed float64
	for _, name := range plane.siteNames {
		flushed += plane.routes.With(name).Value()
	}
	if int64(flushed) != issued.Load() {
		t.Fatalf("flushed %v routes, issued %d (lost %d)", flushed, issued.Load(), issued.Load()-int64(flushed))
	}
	if got := plane.swaps.Value(); got < 5 {
		t.Errorf("swaps %v, want ≥ 5 (4 decides + ≥1 drift re-solve)", got)
	}
	if got := plane.driftResolves.Value(); got < 1 {
		t.Errorf("drift resolves %v, want ≥ 1", got)
	}

	// Convergence: traffic on the final table follows its weights.
	final := plane.Snapshot()
	const n = 200000
	counts := final.RouteBatch(n)
	w := final.Weights()
	for i, c := range counts {
		if dev := math.Abs(float64(c) - n*w[i]); dev > float64(n/final.PatternLen())+2 {
			t.Errorf("site %d deviates by %v on the new table", i, dev)
		}
	}
}

// TestRouteDriftDisabled proves ratio 0 switches the detector off entirely.
func TestRouteDriftDisabled(t *testing.T) {
	s, ts := newRouteTestServer(t)
	if err := s.SetDriftRatio(0); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []float64{1, 0.5, -3, math.NaN(), math.Inf(1)} {
		if err := s.SetDriftRatio(bad); err == nil {
			t.Errorf("SetDriftRatio(%v) accepted", bad)
		}
	}
	decideOnce(t, ts, 1e12, 4e11, 0)
	plane := s.RoutePlane()
	plane.noteArrivals(plane.Snapshot(), 2<<40)
	time.Sleep(50 * time.Millisecond)
	if v := plane.Snapshot().Version(); v != 1 {
		t.Errorf("version %d after disabled-drift arrivals, want 1", v)
	}
	if plane.driftResolves.Value() != 0 {
		t.Error("drift re-solve fired while disabled")
	}
	var tbl RouteTableResponse
	getJSON(t, ts.URL+"/v1/route/table", &tbl)
	if tbl.DriftRatio != 0 {
		t.Errorf("table reports drift ratio %v, want 0", tbl.DriftRatio)
	}
}

// TestRouteInstallShedKeepsTable: a decision with nothing to route (shed)
// must not displace the live table.
func TestRouteInstallShedKeepsTable(t *testing.T) {
	s, ts := newRouteTestServer(t)
	decideOnce(t, ts, 1e12, 4e11, 0)
	plane := s.RoutePlane()
	if plane.Snapshot().Version() != 1 {
		t.Fatal("no table installed")
	}
	shed := core.Decision{} // zero sites, zero lambdas
	if plane.Install(core.HourInput{TotalLambda: 1}, shed) {
		t.Fatal("shed decision installed")
	}
	if v := plane.Snapshot().Version(); v != 1 {
		t.Fatalf("version %d after failed install, want 1", v)
	}
}

// TestRouteMetricsFlushIsDelta: scraping twice must not double-count.
func TestRouteMetricsFlushIsDelta(t *testing.T) {
	s, ts := newRouteTestServer(t)
	decideOnce(t, ts, 1e12, 4e11, 0)
	plane := s.RoutePlane()
	plane.Snapshot().RouteBatch(1000)
	plane.FlushMetrics()
	plane.FlushMetrics()
	var total float64
	for _, name := range plane.siteNames {
		total += plane.routes.With(name).Value()
	}
	if total != 1000 {
		t.Fatalf("flushed %v, want 1000", total)
	}
}

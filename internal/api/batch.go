package api

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"time"

	"billcap/internal/core"
)

// maxBatchHours caps a batch at one week of hourly decisions; beyond that a
// client should page, and the cap bounds both the response size and the
// goroutines one request can fan out.
const maxBatchHours = 168

// BatchDecideRequest is the body of POST /v1/decide/batch: independent hours
// solved concurrently through one solver-worker budget (see -solver-workers).
// TimeoutMS bounds the whole batch, not each hour. Per-hour TimeoutMS and
// Resilient are rejected — the batch path is the plain optimal-or-error
// contract; clients needing the degradation ladder call /v1/decide per hour.
type BatchDecideRequest struct {
	Hours     []DecideRequest `json:"hours"`
	TimeoutMS float64         `json:"timeoutMS,omitempty"`
}

// BatchHourResponse is one hour's slot in a BatchDecideResponse: exactly one
// of Decision or Error is set. Errors are per-hour so one infeasible hour
// does not void the rest of the horizon.
type BatchHourResponse struct {
	Decision *DecideResponse `json:"decision,omitempty"`
	Error    string          `json:"error,omitempty"`
}

// BatchDecideResponse answers POST /v1/decide/batch, index-aligned with the
// request's hours.
type BatchDecideResponse struct {
	Hours []BatchHourResponse `json:"hours"`
}

func (s *Server) handleDecideBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, errors.New("POST only"))
		return
	}
	var req BatchDecideRequest
	if !readJSON(w, r, &req) {
		return
	}
	if len(req.Hours) == 0 {
		writeErr(w, http.StatusBadRequest, errors.New("batch has no hours"))
		return
	}
	if len(req.Hours) > maxBatchHours {
		writeErr(w, http.StatusBadRequest,
			fmt.Errorf("batch of %d hours exceeds the %d-hour cap", len(req.Hours), maxBatchHours))
		return
	}
	ins := make([]core.HourInput, len(req.Hours))
	for i, h := range req.Hours {
		if h.TimeoutMS != 0 || h.Resilient {
			writeErr(w, http.StatusBadRequest,
				fmt.Errorf("hours[%d]: timeoutMS and resilient are batch-level only", i))
			return
		}
		ins[i] = s.hourInputFrom(h)
		if err := s.sys.ValidateInput(ins[i]); err != nil {
			writeErr(w, statusFor(err), fmt.Errorf("hours[%d]: %w", i, err))
			return
		}
	}
	ctx := r.Context()
	if req.TimeoutMS > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(req.TimeoutMS*float64(time.Millisecond)))
		defer cancel()
	}
	decs, errs := s.sys.DecideBatch(ctx, ins)
	resp := BatchDecideResponse{Hours: make([]BatchHourResponse, len(ins))}
	for i := range ins {
		if errs[i] != nil {
			resp.Hours[i].Error = errs[i].Error()
			continue
		}
		d := s.decideResponseFrom(decs[i])
		resp.Hours[i].Decision = &d
	}
	writeJSON(w, http.StatusOK, resp)
}

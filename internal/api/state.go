package api

import (
	"sync"

	"billcap/internal/core"
	"billcap/internal/obs"
	"billcap/internal/state"
)

// snapshotEveryDecisions is how many persisted resilient decisions pass
// between checkpoint snapshots; between snapshots the WAL alone carries the
// ladder state.
const snapshotEveryDecisions = 24

// stateLayer is the server's optional crash-safe persistence: a state.Store
// plus the serialization the concurrent HTTP handlers need around it.
type stateLayer struct {
	mu      sync.Mutex
	store   *state.Store
	info    state.RestoreInfo
	appends int

	persistErrors *obs.Counter
}

// EnableState opens (creating if needed) the state directory, restores the
// degradation ladder from the newest consistent checkpoint, and starts
// persisting every resilient decision. It reports what was recovered — the
// same structure /readyz then serves — and registers the restore metrics.
func (s *Server) EnableState(dir string) (state.RestoreInfo, error) {
	store, cp, info, err := state.Open(dir)
	if err != nil {
		return info, err
	}
	if cp != nil && cp.Resilient != nil {
		if err := s.resilient.Restore(*cp.Resilient); err != nil {
			store.Close()
			return info, err
		}
	}
	if cp != nil {
		if err := s.restoreTariff(cp.Peaks, cp.BatterySoCMWh); err != nil {
			store.Close()
			return info, err
		}
	}
	s.state = &stateLayer{
		store: store,
		info:  info,
		persistErrors: s.reg.Counter("billcap_state_persist_errors_total",
			"Decisions whose durable WAL append failed (the decision was still served)."),
	}

	restores := s.reg.Counter("billcap_state_restores_total",
		"Successful ladder restores from the state directory at startup.")
	if info.Restored {
		restores.Inc()
	}
	s.reg.Counter("billcap_wal_corruptions_total",
		"Torn or CRC-mismatched WAL records dropped by truncate-and-continue at startup.").
		Add(float64(info.WALCorruptions))
	return info, nil
}

// CloseState writes a final checkpoint and releases the state directory.
// Safe to call when state was never enabled.
func (s *Server) CloseState() error {
	if s.state == nil {
		return nil
	}
	s.state.mu.Lock()
	defer s.state.mu.Unlock()
	ls := s.resilient.Snapshot()
	peaks, socs := s.tariffSnapshot()
	err := s.state.store.WriteSnapshot(state.Checkpoint{
		Hour: nextHour(ls), Resilient: &ls, Peaks: peaks, BatterySoCMWh: socs,
	})
	if cerr := s.state.store.Close(); err == nil {
		err = cerr
	}
	return err
}

// persistDecision durably logs the ladder state after a resilient decision.
// Persistence failures are counted, not surfaced: the decision was already
// made and serving it beats failing the hour over a full disk.
func (s *Server) persistDecision(hour int) {
	if s.state == nil {
		return
	}
	s.state.mu.Lock()
	defer s.state.mu.Unlock()
	ls := s.resilient.Snapshot()
	peaks, socs := s.tariffSnapshot()
	if err := s.state.store.Append(state.Entry{
		Hour: hour, Resilient: &ls, Peaks: peaks, BatterySoCMWh: socs,
	}); err != nil {
		s.state.persistErrors.Inc()
		return
	}
	s.state.appends++
	if s.state.appends%snapshotEveryDecisions == 0 {
		cp := state.Checkpoint{Hour: nextHour(ls), Resilient: &ls, Peaks: peaks, BatterySoCMWh: socs}
		if err := s.state.store.WriteSnapshot(cp); err != nil {
			s.state.persistErrors.Inc()
		}
	}
}

// nextHour derives a checkpoint's hour cursor from the ladder state.
func nextHour(ls core.ResilientState) int {
	if ls.LastGood == nil || ls.LastGoodHour < 0 {
		return 0
	}
	return ls.LastGoodHour + 1
}

package api

import (
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"

	"billcap/internal/core"
	"billcap/internal/dispatch"
	"billcap/internal/forecast"
	"billcap/internal/obs"
)

// defaultDriftRatio is the observed/predicted arrival ratio beyond which the
// data plane triggers an asynchronous re-solve; capperd's -drift-ratio flag
// overrides it.
const defaultDriftRatio = 2.0

// maxBatchRoute bounds one /v1/route/batch request so the closed-form batch
// arithmetic stays in comfortable integer range.
const maxBatchRoute = 1 << 31

// flushRingSize is how many superseded snapshots keep their delta-flush
// state: a route that started on an old table finishes its counter increment
// there, so recently swapped-out snapshots must stay flushable or those
// routes would vanish from billcap_routes_total.
const flushRingSize = 8

// RoutePlane is the server's lock-free request data plane. Each capper
// decision is compiled into an immutable dispatch.Snapshot (routing wheel +
// admission rate) and swapped whole behind an atomic pointer; the hot path —
// handleRoute, handleRouteBatch — loads the pointer and routes with atomic
// fetch-adds, never taking a lock and never solving. The mutex below guards
// only the cold control side: installs, the metric flush ring, and the
// remembered hour input the drift re-solve re-poses.
//
// Drift closes the loop between the planes: every snapshot counts the
// arrivals it observes, and when that count exceeds ratio × the arrivals the
// installed decision was solved for, the plane re-solves asynchronously
// through the resilient ladder (scaled to the observed rate) and swaps in
// the result — the request path never blocks on the solver.
type RoutePlane struct {
	snap     atomic.Pointer[dispatch.Snapshot]
	detector atomic.Pointer[forecast.DriftDetector]

	resilient *core.Resilient
	siteNames []string

	routes        *obs.CounterVec // billcap_routes_total{site}
	swaps         *obs.Counter    // billcap_route_table_swaps_total
	driftResolves *obs.Counter    // billcap_route_drift_resolves_total
	dropped       *obs.Counter    // billcap_route_dropped_total

	resolving atomic.Bool

	mu      sync.Mutex
	version uint64
	lastIn  core.HourInput
	haveIn  bool
	ring    []*flushState // newest last; ring[len-1] is the live snapshot
}

// flushState remembers how much of one snapshot's striped counters has been
// flushed into the registry, so each flush adds only the delta.
type flushState struct {
	snap           *dispatch.Snapshot
	flushed        []int64
	droppedFlushed int64
}

func newRoutePlane(resilient *core.Resilient, reg *obs.Registry, siteNames []string, driftRatio float64) (*RoutePlane, error) {
	p := &RoutePlane{
		resilient: resilient,
		siteNames: siteNames,
		routes: reg.CounterVec("billcap_routes_total",
			"Requests routed by the data plane, by destination site.", "site"),
		swaps: reg.Counter("billcap_route_table_swaps_total",
			"Routing snapshots atomically installed (decisions and drift re-solves)."),
		driftResolves: reg.Counter("billcap_route_drift_resolves_total",
			"Asynchronous re-solves triggered by arrival drift beyond the configured ratio."),
		dropped: reg.Counter("billcap_route_dropped_total",
			"Ordinary requests rejected by the data plane's admission pacing."),
	}
	if err := p.SetDriftRatio(driftRatio); err != nil {
		return nil, err
	}
	return p, nil
}

// SetDriftRatio replaces the drift detector: ratio 0 disables drift
// re-solves entirely; any other ratio must be finite and > 1. A replacement
// detector is armed from the currently installed decision, so tightening the
// ratio mid-hour takes effect without waiting for the next install.
func (p *RoutePlane) SetDriftRatio(ratio float64) error {
	if ratio == 0 {
		p.detector.Store(nil)
		return nil
	}
	d, err := forecast.NewDriftDetector(ratio)
	if err != nil {
		return err
	}
	p.mu.Lock()
	if p.haveIn {
		d.Arm(p.lastIn.TotalLambda)
	}
	p.detector.Store(d)
	p.mu.Unlock()
	return nil
}

// DriftRatio returns the active trip ratio (0 when drift is disabled).
func (p *RoutePlane) DriftRatio() float64 {
	if d := p.detector.Load(); d != nil {
		return d.Ratio()
	}
	return 0
}

// Snapshot returns the live routing snapshot (nil before the first install).
func (p *RoutePlane) Snapshot() *dispatch.Snapshot { return p.snap.Load() }

// Install compiles a decision into a fresh snapshot and swaps it live,
// reporting whether the swap happened. A decision with nothing to route — a
// shed hour allocates zero everywhere — cannot become a table; the previous
// snapshot stays live and Install returns false.
func (p *RoutePlane) Install(in core.HourInput, dec core.Decision) bool {
	arrivedOrdinary := in.TotalLambda - in.PremiumLambda
	if arrivedOrdinary < 0 {
		arrivedOrdinary = 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	snap, err := dispatch.NewSnapshot(dec.Lambdas(), dec.ServedOrdinary, arrivedOrdinary, in.Hour, p.version+1)
	if err != nil {
		return false
	}
	p.version++
	p.lastIn = in
	p.haveIn = true
	p.ring = append(p.ring, &flushState{snap: snap, flushed: make([]int64, len(p.siteNames))})
	if len(p.ring) > flushRingSize {
		// The evicted snapshot can no longer be flushed; drain it first so
		// any routes it served are not lost from the counters.
		p.flushOneLocked(p.ring[0])
		p.ring = append([]*flushState(nil), p.ring[1:]...)
	}
	if d := p.detector.Load(); d != nil {
		d.Arm(in.TotalLambda)
	}
	p.snap.Store(snap)
	p.swaps.Inc()
	return true
}

// noteArrivals records n observed requests on the live snapshot and, when
// the drift detector trips, starts (at most one) asynchronous re-solve.
func (p *RoutePlane) noteArrivals(snap *dispatch.Snapshot, n int) {
	observed := snap.NoteArrivals(n)
	d := p.detector.Load()
	if d == nil || !d.Exceeded(float64(observed)) {
		return
	}
	if !p.resolving.CompareAndSwap(false, true) {
		return
	}
	go p.resolveDrift(float64(observed))
}

// resolveDrift re-poses the remembered hour at the observed arrival rate,
// solves it through the resilient ladder (never blocking the request path),
// and installs the result. If the answer is uninstallable — the ladder shed
// the hour — the detector is disarmed so the still-climbing arrival count
// cannot re-trip a re-solve loop against an unroutable decision.
func (p *RoutePlane) resolveDrift(observed float64) {
	defer p.resolving.Store(false)
	d := p.detector.Load()
	if d == nil {
		return
	}
	predicted := d.Predicted()
	p.mu.Lock()
	in, ok := p.lastIn, p.haveIn
	p.mu.Unlock()
	if !ok || predicted <= 0 {
		return
	}
	scaled := in.ScaleLoad(observed / predicted)
	dec := p.resilient.Decide(scaled)
	p.driftResolves.Inc()
	if !p.Install(scaled, dec) {
		d.Arm(0)
	}
}

// FlushMetrics folds every tracked snapshot's striped counters into the
// registry (delta since the previous flush); the /metrics handler calls it
// so scrapes always see current routing totals.
func (p *RoutePlane) FlushMetrics() {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, fs := range p.ring {
		p.flushOneLocked(fs)
	}
}

func (p *RoutePlane) flushOneLocked(fs *flushState) {
	counts := fs.snap.SiteCounts()
	for i, c := range counts {
		if delta := c - fs.flushed[i]; delta > 0 {
			p.routes.With(p.siteNames[i]).Add(float64(delta))
			fs.flushed[i] = c
		}
	}
	if d := fs.snap.DroppedOrdinary(); d > fs.droppedFlushed {
		p.dropped.Add(float64(d - fs.droppedFlushed))
		fs.droppedFlushed = d
	}
}

// RouteRequest is the body of POST /v1/route. Class is "premium",
// "ordinary", or omitted (ordinary).
type RouteRequest struct {
	Class string `json:"class,omitempty"`
}

// RouteResponse is one routed request: which site answers it (absent when
// the admission gate dropped it), under which table.
type RouteResponse struct {
	Admitted  bool   `json:"admitted"`
	Site      string `json:"site,omitempty"`
	SiteIndex int    `json:"siteIndex"`
	Version   uint64 `json:"version"`
	Hour      int    `json:"hour"`
}

// classOf parses the wire class; empty means ordinary.
func classOf(s string) (dispatch.Class, error) {
	switch s {
	case "premium":
		return dispatch.Premium, nil
	case "", "ordinary":
		return dispatch.Ordinary, nil
	}
	return 0, fmt.Errorf("unknown class %q (want \"premium\" or \"ordinary\")", s)
}

// liveSnapshot loads the routing table, answering 503 (and returning nil)
// before the first decision installs one.
func (s *Server) liveSnapshot(w http.ResponseWriter) *dispatch.Snapshot {
	snap := s.route.Snapshot()
	if snap == nil {
		writeErr(w, http.StatusServiceUnavailable,
			errors.New("no routing table installed; POST /v1/decide first"))
	}
	return snap
}

// handleRoute answers POST /v1/route: admit-and-route one request on the
// live snapshot. No solving, no locks — two atomic fetch-adds.
func (s *Server) handleRoute(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, errors.New("POST only"))
		return
	}
	var req RouteRequest
	if !readJSON(w, r, &req) {
		return
	}
	class, err := classOf(req.Class)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	snap := s.liveSnapshot(w)
	if snap == nil {
		return
	}
	resp := RouteResponse{Version: snap.Version(), Hour: snap.Hour(), SiteIndex: -1}
	if snap.Admit(class) {
		resp.Admitted = true
		resp.SiteIndex = snap.Route()
		resp.Site = s.sites[resp.SiteIndex].Name
	}
	s.route.noteArrivals(snap, 1)
	writeJSON(w, http.StatusOK, resp)
}

// RouteBatchRequest is the body of POST /v1/route/batch: total requests, of
// which premium bypass the admission gate.
type RouteBatchRequest struct {
	Total   int64 `json:"total"`
	Premium int64 `json:"premium"`
}

// SiteRouteCount is one site's share of a routed batch.
type SiteRouteCount struct {
	Site  string `json:"site"`
	Count int64  `json:"count"`
}

// RouteBatchResponse reports how a batch fared: every premium request and
// every admitted ordinary request is routed; the rest are dropped by pacing.
type RouteBatchResponse struct {
	Requests        int64            `json:"requests"`
	Routed          int64            `json:"routed"`
	AdmittedOrd     int64            `json:"admittedOrdinary"`
	DroppedOrd      int64            `json:"droppedOrdinary"`
	Version         uint64           `json:"version"`
	Hour            int              `json:"hour"`
	Sites           []SiteRouteCount `json:"sites"`
	OrdinaryRate    float64          `json:"ordinaryRate"`
	TotalArrivals   uint64           `json:"totalArrivals"`
	PatternRequests int              `json:"patternLen"`
}

// handleRouteBatch answers POST /v1/route/batch: admit-and-route n requests
// with closed-form batch arithmetic — two fetch-adds however large n is.
func (s *Server) handleRouteBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, errors.New("POST only"))
		return
	}
	var req RouteBatchRequest
	if !readJSON(w, r, &req) {
		return
	}
	switch {
	case req.Total <= 0 || req.Total > maxBatchRoute:
		writeErr(w, http.StatusBadRequest, fmt.Errorf("total %d outside [1, %d]", req.Total, int64(maxBatchRoute)))
		return
	case req.Premium < 0 || req.Premium > req.Total:
		writeErr(w, http.StatusBadRequest, fmt.Errorf("premium %d outside [0, total=%d]", req.Premium, req.Total))
		return
	}
	snap := s.liveSnapshot(w)
	if snap == nil {
		return
	}
	ordinary := req.Total - req.Premium
	admitted := int64(snap.AdmitBatch(int(ordinary)))
	counts := snap.RouteBatch(int(req.Premium + admitted))
	arrivals := snap.NoteArrivals(int(req.Total))
	// The arrivals were already recorded above; feed only the drift check.
	s.route.noteArrivals(snap, 0)
	resp := RouteBatchResponse{
		Requests:        req.Total,
		Routed:          req.Premium + admitted,
		AdmittedOrd:     admitted,
		DroppedOrd:      ordinary - admitted,
		Version:         snap.Version(),
		Hour:            snap.Hour(),
		OrdinaryRate:    snap.OrdinaryRate(),
		TotalArrivals:   arrivals,
		PatternRequests: snap.PatternLen(),
	}
	for i, c := range counts {
		resp.Sites = append(resp.Sites, SiteRouteCount{Site: s.sites[i].Name, Count: c})
	}
	writeJSON(w, http.StatusOK, resp)
}

// RouteTableResponse is the introspection view of GET /v1/route/table.
type RouteTableResponse struct {
	Version        uint64             `json:"version"`
	Hour           int                `json:"hour"`
	Weights        map[string]float64 `json:"weights"`
	OrdinaryRate   float64            `json:"ordinaryRate"`
	Routed         uint64             `json:"routed"`
	Arrivals       uint64             `json:"arrivals"`
	PatternLen     int                `json:"patternLen"`
	DriftRatio     float64            `json:"driftRatio"`
	DriftPredicted float64            `json:"driftPredicted"`
}

// handleRouteTable answers GET /v1/route/table with the live snapshot's
// weights and drift posture, for operators checking what the data plane is
// actually doing.
func (s *Server) handleRouteTable(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, errors.New("GET only"))
		return
	}
	snap := s.liveSnapshot(w)
	if snap == nil {
		return
	}
	weights := snap.Weights()
	resp := RouteTableResponse{
		Version:      snap.Version(),
		Hour:         snap.Hour(),
		Weights:      make(map[string]float64, len(weights)),
		OrdinaryRate: snap.OrdinaryRate(),
		Routed:       snap.Routed(),
		Arrivals:     snap.Arrivals(),
		PatternLen:   snap.PatternLen(),
		DriftRatio:   s.route.DriftRatio(),
	}
	if d := s.route.detector.Load(); d != nil {
		resp.DriftPredicted = d.Predicted()
	}
	for i, wgt := range weights {
		resp.Weights[s.sites[i].Name] = wgt
	}
	writeJSON(w, http.StatusOK, resp)
}

package api

import (
	"fmt"
	"net/http"
	"strconv"
	"time"

	"billcap/internal/obs"
)

// httpMetrics instruments every API endpoint: request counts by route,
// method and status, latency histograms by route, and an in-flight gauge.
type httpMetrics struct {
	requests *obs.CounterVec   // route, method, code
	seconds  *obs.HistogramVec // route
	inflight *obs.Gauge
}

func newHTTPMetrics(reg *obs.Registry) *httpMetrics {
	return &httpMetrics{
		requests: reg.CounterVec("billcap_http_requests_total",
			"API requests by route, method and status code.", "route", "method", "code"),
		seconds: reg.HistogramVec("billcap_http_request_seconds",
			"API request latency in seconds by route.", obs.DefBuckets, "route"),
		inflight: reg.Gauge("billcap_http_inflight_requests", "API requests currently being served."),
	}
}

// statusWriter remembers the status code a handler sent.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// recovered converts a handler panic into the JSON 500 envelope. Without it
// a panicking handler kills the connection mid-response and the client sees
// a transport error instead of a diagnosable failure; the controller daemon
// must stay up and accountable through solver bugs.
func recovered(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if p := recover(); p != nil {
				writeErr(w, http.StatusInternalServerError,
					fmt.Errorf("internal panic serving %s: %v", r.URL.Path, p))
			}
		}()
		h(w, r)
	}
}

// instrument wraps a handler with the per-route middleware. The route label
// is the registered pattern, not the raw URL, so cardinality stays bounded.
func (m *httpMetrics) instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		m.inflight.Inc()
		sw := &statusWriter{ResponseWriter: w}
		h(sw, r)
		m.inflight.Dec()
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		m.requests.With(route, r.Method, strconv.Itoa(sw.status)).Inc()
		m.seconds.With(route).Observe(time.Since(start).Seconds())
	}
}

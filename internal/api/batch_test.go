package api

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"testing"
)

func TestDecideBatch(t *testing.T) {
	ts := newTestServer(t)
	hour := DecideRequest{
		TotalLambda:   1.5e12,
		PremiumLambda: 1.2e12,
		DemandMW:      []float64{170, 190, 150},
	}
	req := BatchDecideRequest{Hours: []DecideRequest{hour, hour, hour, hour}}
	var out BatchDecideResponse
	resp := postJSON(t, ts.URL+"/v1/decide/batch", req, &out)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if len(out.Hours) != len(req.Hours) {
		t.Fatalf("got %d hours, want %d", len(out.Hours), len(req.Hours))
	}
	for i, h := range out.Hours {
		if h.Error != "" || h.Decision == nil {
			t.Fatalf("hours[%d] = %+v, want a decision", i, h)
		}
		if h.Decision.Step != "cost-min" || h.Decision.Served <= 0 || len(h.Decision.Sites) != 3 {
			t.Fatalf("hours[%d].decision = %+v", i, h.Decision)
		}
		// Identical inputs must produce identical answers regardless of which
		// pool slot solved them.
		if h.Decision.Served != out.Hours[0].Decision.Served {
			t.Errorf("hours[%d] served %v != hours[0] %v", i, h.Decision.Served, out.Hours[0].Decision.Served)
		}
	}
}

// TestDecideBatchPerHourErrors pins that one bad hour fails only its own
// slot: validation errors surface at batch level (the request is malformed),
// while solver-level failures stay per-hour. Here every hour is valid, so we
// check the validation rejection separately.
func TestDecideBatchRejectsBadRequests(t *testing.T) {
	ts := newTestServer(t)
	good := DecideRequest{TotalLambda: 1e12, DemandMW: []float64{170, 190, 150}}

	cases := []struct {
		name string
		req  BatchDecideRequest
	}{
		{"empty", BatchDecideRequest{}},
		{"per-hour timeout", BatchDecideRequest{Hours: []DecideRequest{{
			TotalLambda: 1e12, DemandMW: []float64{170, 190, 150}, TimeoutMS: 5,
		}}}},
		{"per-hour resilient", BatchDecideRequest{Hours: []DecideRequest{{
			TotalLambda: 1e12, DemandMW: []float64{170, 190, 150}, Resilient: true,
		}}}},
		{"invalid hour", BatchDecideRequest{Hours: []DecideRequest{good, {
			TotalLambda: -1, DemandMW: []float64{170, 190, 150},
		}}}},
	}
	for _, tc := range cases {
		var e errorBody
		resp := postJSON(t, ts.URL+"/v1/decide/batch", tc.req, &e)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%v)", tc.name, resp.StatusCode, e.Error)
		}
	}

	over := BatchDecideRequest{}
	for i := 0; i < maxBatchHours+1; i++ {
		over.Hours = append(over.Hours, good)
	}
	if resp := postJSON(t, ts.URL+"/v1/decide/batch", over, nil); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("oversized batch: status %d, want 400", resp.StatusCode)
	}
}

// TestConcurrentDecides hammers POST /v1/decide from many goroutines against
// one shared System. Run under -race in CI, it is the regression probe for
// the handler-sharing audit: every decision-path field of core.System is
// immutable after construction and the metrics pointer is atomic, so
// concurrent decisions must neither race nor disagree.
func TestConcurrentDecides(t *testing.T) {
	ts := newTestServer(t)
	req := DecideRequest{
		TotalLambda:   1.5e12,
		PremiumLambda: 1.2e12,
		DemandMW:      []float64{170, 190, 150},
	}
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	const clients, perClient = 8, 5
	served := make([][]float64, clients)
	failures := make([]error, clients)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				resp, err := http.Post(ts.URL+"/v1/decide", "application/json", bytes.NewReader(body))
				if err != nil {
					failures[c] = err
					return
				}
				var dec DecideResponse
				err = json.NewDecoder(resp.Body).Decode(&dec)
				resp.Body.Close()
				if err != nil {
					failures[c] = err
					return
				}
				if resp.StatusCode != http.StatusOK {
					failures[c] = fmt.Errorf("status %d", resp.StatusCode)
					return
				}
				served[c] = append(served[c], dec.Served)
			}
		}(c)
	}
	wg.Wait()
	for c, err := range failures {
		if err != nil {
			t.Fatalf("client %d: %v", c, err)
		}
	}
	for c := range served {
		for _, got := range served[c] {
			if got != served[0][0] {
				t.Fatalf("client %d served %v, first answer %v — shared state leaked between decides", c, got, served[0][0])
			}
		}
	}
}

package api

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

// TestMetricsEndpoint is the issue's acceptance check: after one
// POST /v1/decide, GET /metrics shows a non-zero billcap_decide_total,
// per-step decision counters, MILP node/pivot counters, and the HTTP
// middleware's own series.
func TestMetricsEndpoint(t *testing.T) {
	ts := newTestServer(t)
	var dec DecideResponse
	resp := postJSON(t, ts.URL+"/v1/decide", DecideRequest{
		TotalLambda:   1.5e12,
		PremiumLambda: 1.2e12,
		DemandMW:      []float64{170, 190, 150},
	}, &dec)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("decide status %d", resp.StatusCode)
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	if mresp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status %d", mresp.StatusCode)
	}
	if ct := mresp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type %q", ct)
	}
	body, err := io.ReadAll(mresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := string(body)
	for _, want := range []string{
		"billcap_decide_total 1",
		`billcap_decide_step_total{step="cost-min"} 1`,
		`billcap_decide_step_total{step="premium-only"} 0`,
		`billcap_http_requests_total{route="/v1/decide",method="POST",code="200"} 1`,
		"billcap_http_request_seconds_bucket",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	// MILP effort counters must be non-zero after a real decision.
	for _, prefix := range []string{"billcap_milp_nodes_total ", "billcap_milp_pivots_total ", "billcap_milp_solves_total "} {
		line := findLine(out, prefix)
		if line == "" || strings.HasSuffix(line, " 0") {
			t.Errorf("counter %q zero or missing (line %q)", prefix, line)
		}
	}
}

func findLine(out, prefix string) string {
	for _, ln := range strings.Split(out, "\n") {
		if strings.HasPrefix(ln, prefix) {
			return ln
		}
	}
	return ""
}

func TestBodyCap(t *testing.T) {
	ts := newTestServer(t)
	// A syntactically valid but oversized (> 1 MiB) body.
	big := `{"totalLambda": 1, "demandMW": [` + strings.Repeat("1,", 600_000) + `1]}`
	resp, err := http.Post(ts.URL+"/v1/decide", "application/json", strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413", resp.StatusCode)
	}
	var e struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || e.Error == "" {
		t.Fatalf("413 body not the JSON envelope: %v %+v", err, e)
	}
}

func TestNotFoundIsJSON(t *testing.T) {
	ts := newTestServer(t)
	for _, path := range []string{"/nope", "/", "/v2/decide"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		var e struct {
			Error string `json:"error"`
		}
		err = json.NewDecoder(resp.Body).Decode(&e)
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound || err != nil || e.Error == "" {
			t.Errorf("GET %s = %d (decode err %v, envelope %+v), want JSON 404", path, resp.StatusCode, err, e)
		}
	}
}

func TestPprofMounted(t *testing.T) {
	ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !bytes.Contains(body, []byte("goroutine")) {
		t.Fatalf("pprof index = %d, %d bytes", resp.StatusCode, len(body))
	}
}

// TestErrorsCountedByStatus checks the middleware labels failures with
// their status code.
func TestErrorsCountedByStatus(t *testing.T) {
	ts := newTestServer(t)
	postJSON(t, ts.URL+"/v1/decide", DecideRequest{TotalLambda: -1, DemandMW: []float64{1, 2, 3}}, nil)
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	want := `billcap_http_requests_total{route="/v1/decide",method="POST",code="400"} 1`
	if !strings.Contains(string(body), want) {
		t.Errorf("metrics missing %q", want)
	}
}

package api

import (
	"math"
	"net/http"
	"net/http/httptest"
	"testing"

	"billcap/internal/core"
	"billcap/internal/dcmodel"
	"billcap/internal/pricing"
)

func tariffSpecs(n int) []core.BatterySpec {
	specs := make([]core.BatterySpec, n)
	for i := range specs {
		specs[i] = core.BatterySpec{
			CapacityMWh:    40,
			MaxChargeMW:    15,
			MaxDischargeMW: 15,
			Efficiency:     0.9,
			SoCMWh:         20,
		}
	}
	return specs
}

func tariffServer(t *testing.T, rate float64, batteries bool) *Server {
	t.Helper()
	s, err := New(dcmodel.PaperSites(), pricing.PaperPolicies(pricing.Policy1), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var specs []core.BatterySpec
	if batteries {
		specs = tariffSpecs(len(dcmodel.PaperSites()))
	}
	if err := s.EnableTariff(rate, specs); err != nil {
		t.Fatal(err)
	}
	return s
}

// TestTariffEndpointAndCommit pins the server-held billing position: a
// served decision ratchets the demand-charge ledger and moves real battery
// energy, both visible on GET /v1/tariff; an override (what-if) request
// leaves the position untouched.
func TestTariffEndpointAndCommit(t *testing.T) {
	s := tariffServer(t, 1000, true)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var pos TariffResponse
	if resp := getJSON(t, ts.URL+"/v1/tariff", &pos); resp.StatusCode != http.StatusOK {
		t.Fatalf("tariff: %d", resp.StatusCode)
	}
	if pos.DemandChargeUSDPerMWMonth != 1000 || len(pos.Sites) != 3 {
		t.Fatalf("position = %+v", pos)
	}
	for _, row := range pos.Sites {
		if row.PeakMW != 0 {
			t.Errorf("site %s peak %v before any decision", row.Site, row.PeakMW)
		}
		if row.BatCapacityMWh != 40 || row.BatSoCMWh != 20 {
			t.Errorf("site %s battery %+v", row.Site, row)
		}
	}

	req := DecideRequest{
		TotalLambda:   1.5e12,
		PremiumLambda: 1.2e12,
		DemandMW:      []float64{170, 190, 150},
	}
	var dec DecideResponse
	if resp := postJSON(t, ts.URL+"/v1/decide", req, &dec); resp.StatusCode != http.StatusOK {
		t.Fatalf("decide: %d", resp.StatusCode)
	}
	if dec.DemandChargeUSD <= 0 {
		t.Errorf("decision carries no demand charge: %+v", dec)
	}

	var after TariffResponse
	getJSON(t, ts.URL+"/v1/tariff", &after)
	sum := 0.0
	for i, row := range after.Sites {
		if math.Abs(row.PeakMW-dec.Sites[i].GridMW) > 1e-9 {
			t.Errorf("site %s ledger %v, decision grid %v", row.Site, row.PeakMW, dec.Sites[i].GridMW)
		}
		sum += row.PeakMW
	}
	if sum <= 0 {
		t.Fatal("ledger never ratcheted")
	}
	if after.DemandChargeSoFarUSD <= 0 {
		t.Errorf("demand charge so far = %v", after.DemandChargeSoFarUSD)
	}

	// A what-if request (explicit ledger override) must not move the position.
	what := req
	what.PeakMW = []float64{500, 500, 500}
	var whatDec DecideResponse
	postJSON(t, ts.URL+"/v1/decide", what, &whatDec)
	if whatDec.DemandChargeUSD != 0 {
		t.Errorf("grid below the 500 MW override still billed %v", whatDec.DemandChargeUSD)
	}
	var again TariffResponse
	getJSON(t, ts.URL+"/v1/tariff", &again)
	for i, row := range again.Sites {
		if row.PeakMW != after.Sites[i].PeakMW {
			t.Errorf("what-if moved the ledger: %v -> %v", after.Sites[i].PeakMW, row.PeakMW)
		}
	}

	// Batch is always what-if: same ledger after a batch decide.
	batch := BatchDecideRequest{Hours: []DecideRequest{req, req}}
	var bresp BatchDecideResponse
	if resp := postJSON(t, ts.URL+"/v1/decide/batch", batch, &bresp); resp.StatusCode != http.StatusOK {
		t.Fatalf("batch: %d", resp.StatusCode)
	}
	getJSON(t, ts.URL+"/v1/tariff", &again)
	for i, row := range again.Sites {
		if row.PeakMW != after.Sites[i].PeakMW {
			t.Errorf("batch moved the ledger: %v -> %v", after.Sites[i].PeakMW, row.PeakMW)
		}
	}
}

// TestTariffStateSurvivesRestart extends the crash-recovery contract to the
// billing position: the peak ledger and battery charge ride the WAL, so a
// restarted server bills demand charges against the same month-to-date peak.
func TestTariffStateSurvivesRestart(t *testing.T) {
	dir := t.TempDir()

	boot := func() *Server {
		s := tariffServer(t, 1500, true)
		if _, err := s.EnableState(dir); err != nil {
			t.Fatal(err)
		}
		return s
	}

	s1 := boot()
	ts1 := httptest.NewServer(s1.Handler())
	var dec DecideResponse
	if resp := postJSON(t, ts1.URL+"/v1/decide", resilientReq(3), &dec); resp.StatusCode != 200 {
		t.Fatalf("decide: %d", resp.StatusCode)
	}
	var pos1 TariffResponse
	getJSON(t, ts1.URL+"/v1/tariff", &pos1)
	ts1.Close()
	// Simulate SIGKILL: no CloseState, the WAL alone carries the position.

	s2 := boot()
	defer s2.CloseState()
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	var pos2 TariffResponse
	getJSON(t, ts2.URL+"/v1/tariff", &pos2)
	for i, row := range pos2.Sites {
		if row.PeakMW != pos1.Sites[i].PeakMW {
			t.Errorf("site %s restored peak %v, want %v", row.Site, row.PeakMW, pos1.Sites[i].PeakMW)
		}
		if math.Abs(row.BatSoCMWh-pos1.Sites[i].BatSoCMWh) > 1e-9 {
			t.Errorf("site %s restored SoC %v, want %v", row.Site, row.BatSoCMWh, pos1.Sites[i].BatSoCMWh)
		}
	}
}

// TestEnableTariffValidates pins the constructor's input checks.
func TestEnableTariffValidates(t *testing.T) {
	s, err := New(dcmodel.PaperSites(), pricing.PaperPolicies(pricing.Policy1), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.EnableTariff(-1, nil); err == nil {
		t.Error("negative demand charge accepted")
	}
	if err := s.EnableTariff(math.NaN(), nil); err == nil {
		t.Error("NaN demand charge accepted")
	}
	if err := s.EnableTariff(0, tariffSpecs(2)); err == nil {
		t.Error("2 battery specs for 3 sites accepted")
	}
	bad := tariffSpecs(3)
	bad[1].Efficiency = 1.5
	if err := s.EnableTariff(0, bad); err == nil {
		t.Error("efficiency 1.5 accepted")
	}
}

package api

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"billcap/internal/core"
	"billcap/internal/dcmodel"
	"billcap/internal/pricing"
)

// newTestServerHandle is newTestServer but also returns the *Server so tests
// can reach the drain flag and the degradation ladder's injection seams.
func newTestServerHandle(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(dcmodel.PaperSites(), pricing.PaperPolicies(pricing.Policy1), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func readyStatus(t *testing.T, url string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Get(url + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("decode /readyz: %v", err)
	}
	return resp.StatusCode, body
}

func TestReadyzDrainToggle(t *testing.T) {
	srv, ts := newTestServerHandle(t)
	if code, body := readyStatus(t, ts.URL); code != http.StatusOK || body["status"] != "ready" {
		t.Fatalf("fresh server /readyz = %d %v", code, body)
	}
	srv.SetDraining(true)
	if code, body := readyStatus(t, ts.URL); code != http.StatusServiceUnavailable || body["status"] != "draining" {
		t.Fatalf("draining /readyz = %d %v", code, body)
	}
	srv.SetDraining(false)
	if code, _ := readyStatus(t, ts.URL); code != http.StatusOK {
		t.Fatalf("undrained /readyz = %d", code)
	}
}

// decideAt posts one resilient decision for the given hour and returns the
// response. The inputs mirror the paper's nominal hour so the healthy path is
// a clean optimal solve.
func decideAt(t *testing.T, url string, hour int) DecideResponse {
	t.Helper()
	var dec DecideResponse
	resp := postJSON(t, url+"/v1/decide", DecideRequest{
		TotalLambda:   1.5e12,
		PremiumLambda: 1.2e12,
		DemandMW:      []float64{170, 190, 150},
		Hour:          hour,
		Resilient:     true,
	}, &dec)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("resilient decide hour %d = %d", hour, resp.StatusCode)
	}
	return dec
}

// TestReadyzDegradedTrip drives the readiness trip end to end: three
// consecutive resilient decisions forced onto the fallback rung flip /readyz
// to 503, and one healthy decision resets it.
func TestReadyzDegradedTrip(t *testing.T) {
	srv, ts := newTestServerHandle(t)
	for h := 1; h <= maxConsecutiveDegraded; h++ {
		srv.Resilient().InjectSolverFailure(h)
		dec := decideAt(t, ts.URL, h)
		if dec.Degraded != "fallback" {
			t.Fatalf("hour %d degraded = %q, want fallback", h, dec.Degraded)
		}
		code, _ := readyStatus(t, ts.URL)
		if h < maxConsecutiveDegraded && code != http.StatusOK {
			t.Fatalf("/readyz tripped after only %d degraded decisions", h)
		}
		if h == maxConsecutiveDegraded && code != http.StatusServiceUnavailable {
			t.Fatalf("/readyz still %d after %d consecutive degraded decisions", code, h)
		}
	}
	if code, body := readyStatus(t, ts.URL); code != http.StatusServiceUnavailable || body["status"] != "degraded" {
		t.Fatalf("tripped /readyz = %d %v", code, body)
	}
	// One healthy decision resets the trip.
	if dec := decideAt(t, ts.URL, maxConsecutiveDegraded+1); dec.Degraded != "" {
		t.Fatalf("healthy hour degraded = %q", dec.Degraded)
	}
	if code, _ := readyStatus(t, ts.URL); code != http.StatusOK {
		t.Fatalf("/readyz did not recover after a healthy decision: %d", code)
	}
}

// TestResilientDecideDegradedResponse pins the wire shape of a degraded
// answer: 200, degraded "fallback", and a usable allocation.
func TestResilientDecideDegradedResponse(t *testing.T) {
	srv, ts := newTestServerHandle(t)
	srv.Resilient().InjectSolverFailure(7)
	dec := decideAt(t, ts.URL, 7)
	if dec.Degraded != "fallback" {
		t.Errorf("degraded = %q, want fallback", dec.Degraded)
	}
	if dec.Served <= 0 || len(dec.Sites) != 3 {
		t.Errorf("degraded decision not usable: served %v, %d sites", dec.Served, len(dec.Sites))
	}
}

// TestResilientDecideTinyTimeout: on the resilient path an exhausted request
// deadline can never surface as an error — the ladder answers 200 with a
// degraded allocation instead.
func TestResilientDecideTinyTimeout(t *testing.T) {
	_, ts := newTestServerHandle(t)
	var dec DecideResponse
	resp := postJSON(t, ts.URL+"/v1/decide", DecideRequest{
		TotalLambda:   1.5e12,
		PremiumLambda: 1.2e12,
		DemandMW:      []float64{170, 190, 150},
		TimeoutMS:     1e-6,
		Resilient:     true,
	}, &dec)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("resilient decide with expired deadline = %d", resp.StatusCode)
	}
	if dec.Degraded == "" {
		t.Error("expired deadline produced an allegedly optimal answer")
	}
	if dec.Served <= 0 {
		t.Errorf("degraded decision served %v", dec.Served)
	}
}

// TestStrictDecideTinyTimeout: the non-resilient path under an exhausted
// deadline either fails fast with 504 or answers 200 carrying its best
// incumbent, explicitly marked degraded — never a silent pseudo-optimum.
func TestStrictDecideTinyTimeout(t *testing.T) {
	_, ts := newTestServerHandle(t)
	var dec DecideResponse
	resp := postJSON(t, ts.URL+"/v1/decide", DecideRequest{
		TotalLambda:   1.5e12,
		PremiumLambda: 1.2e12,
		DemandMW:      []float64{170, 190, 150},
		TimeoutMS:     1e-6,
	}, &dec)
	switch resp.StatusCode {
	case http.StatusGatewayTimeout:
		// Deadline expired before the solver could produce anything.
	case http.StatusOK:
		if dec.Degraded == "" {
			t.Error("timed-out solve answered 200 without a degraded marker")
		}
	default:
		t.Fatalf("strict decide with expired deadline = %d", resp.StatusCode)
	}
}

// TestRecoveredMiddleware pins the panic envelope without going through a
// real route: any handler panic becomes a JSON 500, not a dropped connection.
func TestRecoveredMiddleware(t *testing.T) {
	h := recovered(func(w http.ResponseWriter, r *http.Request) {
		panic("solver bug")
	})
	rec := httptest.NewRecorder()
	h(rec, httptest.NewRequest(http.MethodPost, "/v1/decide", strings.NewReader("{}")))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("panicking handler = %d", rec.Code)
	}
	var body errorBody
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("panic response is not the JSON envelope: %v", err)
	}
	if !strings.Contains(body.Error, "solver bug") || !strings.Contains(body.Error, "/v1/decide") {
		t.Errorf("panic envelope %q missing cause or path", body.Error)
	}
}

// TestPanickingRouteStaysInstrumented checks the full middleware stack: a
// panic inside a registered route still yields the envelope through the
// instrumented handler chain.
func TestPanickingRouteStaysInstrumented(t *testing.T) {
	srv, _ := newTestServerHandle(t)
	srv.handle("/v1/boom", func(w http.ResponseWriter, r *http.Request) {
		panic("boom")
	})
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/boom", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("instrumented panic route = %d", rec.Code)
	}
	var body errorBody
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil || body.Error == "" {
		t.Fatalf("instrumented panic lost the envelope: %v %q", err, rec.Body.String())
	}
}

package api

import (
	"bytes"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"billcap/internal/core"
	"billcap/internal/dcmodel"
	"billcap/internal/pricing"
)

func newTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	s, err := New(dcmodel.PaperSites(), pricing.PaperPolicies(pricing.Policy1), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts
}

func getJSON(t *testing.T, url string, out any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
	return resp
}

func postJSON(t *testing.T, url string, body any, out any) *http.Response {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
	return resp
}

func TestHealth(t *testing.T) {
	ts := newTestServer(t)
	var body map[string]string
	resp := getJSON(t, ts.URL+"/healthz", &body)
	if resp.StatusCode != http.StatusOK || body["status"] != "ok" {
		t.Fatalf("health = %d %v", resp.StatusCode, body)
	}
}

func TestSites(t *testing.T) {
	ts := newTestServer(t)
	var sites []SiteInfo
	resp := getJSON(t, ts.URL+"/v1/sites", &sites)
	if resp.StatusCode != http.StatusOK || len(sites) != 3 {
		t.Fatalf("sites = %d, status %d", len(sites), resp.StatusCode)
	}
	if sites[0].Name != "DC1-B" || sites[0].MaxLambda <= 0 || sites[0].PowerCapMW != 105 {
		t.Errorf("site[0] = %+v", sites[0])
	}
}

func TestPolicies(t *testing.T) {
	ts := newTestServer(t)
	var pols []PolicyInfo
	resp := getJSON(t, ts.URL+"/v1/policies", &pols)
	if resp.StatusCode != http.StatusOK || len(pols) != 3 {
		t.Fatalf("policies = %d, status %d", len(pols), resp.StatusCode)
	}
	if len(pols[0].Rates) != 5 || pols[0].Rates[0] != 10 {
		t.Errorf("policy[0] = %+v", pols[0])
	}
}

func TestDecideUncappedAndCapped(t *testing.T) {
	ts := newTestServer(t)
	req := DecideRequest{
		TotalLambda:   1.5e12,
		PremiumLambda: 1.2e12,
		DemandMW:      []float64{170, 190, 150},
	}
	var dec DecideResponse
	resp := postJSON(t, ts.URL+"/v1/decide", req, &dec)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if dec.Step != "cost-min" || dec.Served <= 0 || len(dec.Sites) != 3 {
		t.Fatalf("decision = %+v", dec)
	}

	tiny := 1.0
	req.BudgetUSD = &tiny
	var capped DecideResponse
	resp = postJSON(t, ts.URL+"/v1/decide", req, &capped)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if capped.Step != "premium-only" {
		t.Errorf("step = %q, want premium-only under a $1 budget", capped.Step)
	}
	if capped.ServedOrdinary != 0 {
		t.Errorf("ordinary served %v", capped.ServedOrdinary)
	}
}

func TestDecideDecomposedReportsGap(t *testing.T) {
	// A server running the fleet-scale decomposition path must surface the
	// subgradient effort and the proven primal–dual gap on the wire.
	s, err := New(dcmodel.PaperSites(), pricing.PaperPolicies(pricing.Policy1),
		core.Options{Decompose: true, DecomposeThreshold: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var dec DecideResponse
	resp := postJSON(t, ts.URL+"/v1/decide", DecideRequest{
		TotalLambda: 1.5e12, PremiumLambda: 1.2e12,
		DemandMW: []float64{170, 190, 150},
	}, &dec)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if dec.SolverDecompIterations == 0 {
		t.Errorf("no decomposition iterations reported: %+v", dec)
	}
	if dec.SolverDecompDualBound == 0 {
		t.Errorf("no dual bound reported: %+v", dec)
	}
	if dec.SolverNodes != 0 {
		t.Errorf("decomposed decision still explored %d MILP nodes", dec.SolverNodes)
	}
	if dec.Served <= 0 || len(dec.Sites) != 3 {
		t.Fatalf("decision = %+v", dec)
	}
}

func TestDecideThenRealizeRoundTrip(t *testing.T) {
	ts := newTestServer(t)
	var dec DecideResponse
	postJSON(t, ts.URL+"/v1/decide", DecideRequest{
		TotalLambda: 1e12, DemandMW: []float64{170, 190, 150},
	}, &dec)
	lams := make([]float64, len(dec.Sites))
	for i, sd := range dec.Sites {
		lams[i] = sd.Lambda
	}
	var real RealizeResponse
	resp := postJSON(t, ts.URL+"/v1/realize", RealizeRequest{
		Lambdas: lams, DemandMW: []float64{170, 190, 150},
	}, &real)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if real.BillUSD <= 0 || real.CapViolations != 0 {
		t.Fatalf("realize = %+v", real)
	}
	if math.Abs(real.BillUSD-dec.PredictedCostUSD) > 0.05*dec.PredictedCostUSD {
		t.Errorf("bill %v far from prediction %v", real.BillUSD, dec.PredictedCostUSD)
	}
}

// TestErrorStatuses pins the API's status-code contract: client mistakes —
// wrong method, undecodable or semantically invalid bodies — are 4xx, and
// the exact code for each failure class is part of the interface.
func TestErrorStatuses(t *testing.T) {
	ts := newTestServer(t)
	cases := []struct {
		name   string
		method string
		path   string
		body   string
		want   int
	}{
		{"wrong method on sites", http.MethodPost, "/v1/sites", "{}", http.StatusMethodNotAllowed},
		{"wrong method on decide", http.MethodGet, "/v1/decide", "", http.StatusMethodNotAllowed},
		{"wrong method on realize", http.MethodGet, "/v1/realize", "", http.StatusMethodNotAllowed},
		{"wrong method on model", http.MethodGet, "/v1/model", "", http.StatusMethodNotAllowed},
		{"undecodable body", http.MethodPost, "/v1/decide", "{nope", http.StatusBadRequest},
		{"negative workload", http.MethodPost, "/v1/decide",
			`{"totalLambda": -1, "demandMW": [1, 2, 3]}`, http.StatusBadRequest},
		{"premium above total", http.MethodPost, "/v1/decide",
			`{"totalLambda": 1, "premiumLambda": 2, "demandMW": [1, 2, 3]}`, http.StatusBadRequest},
		{"demand arity", http.MethodPost, "/v1/decide",
			`{"totalLambda": 1, "demandMW": [1]}`, http.StatusBadRequest},
		{"negative budget", http.MethodPost, "/v1/decide",
			`{"totalLambda": 1, "demandMW": [1, 2, 3], "budgetUSD": -5}`, http.StatusBadRequest},
		{"availability arity", http.MethodPost, "/v1/decide",
			`{"totalLambda": 1, "demandMW": [1, 2, 3], "down": [true]}`, http.StatusBadRequest},
		{"realize arity", http.MethodPost, "/v1/realize",
			`{"lambdas": [1], "demandMW": [1, 2, 3]}`, http.StatusBadRequest},
		{"realize negative load", http.MethodPost, "/v1/realize",
			`{"lambdas": [-1, 0, 0], "demandMW": [1, 2, 3]}`, http.StatusBadRequest},
		{"model negative workload", http.MethodPost, "/v1/model",
			`{"totalLambda": -1, "demandMW": [1, 2, 3]}`, http.StatusBadRequest},
		{"unknown endpoint", http.MethodGet, "/v1/nope", "", http.StatusNotFound},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req, err := http.NewRequest(tc.method, ts.URL+tc.path, strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			req.Header.Set("Content-Type", "application/json")
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != tc.want {
				t.Errorf("%s %s = %d, want %d", tc.method, tc.path, resp.StatusCode, tc.want)
			}
			var body errorBody
			if err := json.NewDecoder(resp.Body).Decode(&body); err != nil || body.Error == "" {
				t.Errorf("%s %s: error envelope missing (%v)", tc.method, tc.path, err)
			}
		})
	}
}

func TestModelDump(t *testing.T) {
	ts := newTestServer(t)
	buf, _ := json.Marshal(DecideRequest{
		TotalLambda: 1e12, DemandMW: []float64{170, 190, 150},
	})
	resp, err := http.Post(ts.URL+"/v1/model", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	if !strings.Contains(text, "min:") || !strings.Contains(text, "int ") {
		t.Fatalf("dump does not look like an LP model:\n%.200s", text)
	}
	// Bad input → 400.
	bad, _ := json.Marshal(DecideRequest{TotalLambda: -1, DemandMW: []float64{1, 2, 3}})
	resp2, err := http.Post(ts.URL+"/v1/model", "application/json", bytes.NewReader(bad))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Errorf("bad input status %d", resp2.StatusCode)
	}
}

package api

import (
	"errors"
	"fmt"
	"math"
	"net/http"
	"sync"

	"billcap/internal/battery"
	"billcap/internal/core"
	"billcap/internal/obs"
	"billcap/internal/pricing"
)

// tariffState is the server's billing-period tariff position: the demand
// charge rate, the peak-so-far ledger it ratchets against, and the physical
// batteries whose state of charge the MILP plans around. One mutex serializes
// attach (read) and commit (mutate): concurrent /v1/decide requests may solve
// in parallel, but ledger observation and battery actions apply in arrival
// order. Only POST /v1/decide commits; /v1/decide/batch is what-if analysis
// and never mutates the position.
type tariffState struct {
	mu     sync.Mutex
	rate   float64 // demand charge, $/MW-month
	ledger *pricing.PeakLedger
	bats   []*battery.Battery
	specs  []core.BatterySpec

	peakGauge *obs.GaugeVec
	socGauge  *obs.GaugeVec
}

// EnableTariff switches the server's billing model beyond plain energy
// charges: a demand charge at the given $/MW-month rate (0 disables that
// component) and optional per-site batteries (nil, or one spec per site; a
// zero-capacity spec means no battery at that site). Call before EnableState
// so a restart restores the peak ledger and battery charge into the enabled
// tariff.
func (s *Server) EnableTariff(demandChargeUSDPerMWMonth float64, batteries []core.BatterySpec) error {
	if math.IsNaN(demandChargeUSDPerMWMonth) || math.IsInf(demandChargeUSDPerMWMonth, 0) || demandChargeUSDPerMWMonth < 0 {
		return fmt.Errorf("api: demand charge %v $/MW-month", demandChargeUSDPerMWMonth)
	}
	if len(batteries) != 0 && len(batteries) != len(s.sites) {
		return fmt.Errorf("api: %d battery specs for %d sites", len(batteries), len(s.sites))
	}
	t := &tariffState{
		rate:   demandChargeUSDPerMWMonth,
		ledger: pricing.NewPeakLedger(len(s.sites)),
		peakGauge: s.reg.GaugeVec("billcap_tariff_peak_mw",
			"Billing-period peak metered draw per site (the demand-charge ledger).", "site"),
		socGauge: s.reg.GaugeVec("billcap_tariff_battery_soc_mwh",
			"Battery state of charge per site.", "site"),
	}
	s.reg.Gauge("billcap_tariff_demand_charge_usd_per_mw_month",
		"Configured demand charge rate.").Set(demandChargeUSDPerMWMonth)
	if len(batteries) > 0 {
		t.bats = make([]*battery.Battery, len(s.sites))
		t.specs = make([]core.BatterySpec, len(s.sites))
		for i, spec := range batteries {
			if spec.CapacityMWh == 0 {
				continue
			}
			b, err := battery.New(spec.CapacityMWh, spec.MaxChargeMW, spec.MaxDischargeMW, spec.Efficiency)
			if err != nil {
				return fmt.Errorf("api: site %s battery: %w", s.sites[i].Name, err)
			}
			b.SetSoC(spec.SoCMWh)
			if spec.ValueUSDPerMWh == 0 {
				spec.ValueUSDPerMWh = s.policies[i].Fn.Mean()
			}
			t.bats[i] = b
			t.specs[i] = spec
		}
	}
	s.tariff = t
	s.handle("/v1/tariff", s.handleTariff)
	return nil
}

// attachTariff fills the hour input's tariff fields from the server's
// position. Explicit request fields win: an operator replaying a scenario can
// override the ledger or the battery state for one decision without touching
// the server's own position.
func (s *Server) attachTariff(in *core.HourInput, req DecideRequest) {
	t := s.tariff
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if in.DemandChargeUSDPerMW == 0 {
		in.DemandChargeUSDPerMW = t.rate
	}
	if in.PeakMW == nil && t.rate > 0 {
		in.PeakMW = t.ledger.Peaks()
	}
	if in.Batteries == nil && t.bats != nil {
		specs := make([]core.BatterySpec, len(t.specs))
		copy(specs, t.specs)
		for i, b := range t.bats {
			if b != nil {
				specs[i].SoCMWh = b.SoC()
			}
		}
		in.Batteries = specs
	}
}

// commitTariff applies a served decision to the billing position: planned
// battery actions move real stored energy and the ledger ratchets on the
// metered draw. Skipped when the request overrode the position (what-if).
func (s *Server) commitTariff(req DecideRequest, in core.HourInput, dec core.Decision) {
	t := s.tariff
	if t == nil || req.PeakMW != nil || req.Batteries != nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	grids := make([]float64, len(dec.Sites))
	for i, a := range dec.Sites {
		if t.bats != nil && i < len(t.bats) && t.bats[i] != nil {
			g := t.bats[i].Discharge(math.Min(a.DischargeMW, a.PowerMW))
			c := t.bats[i].Charge(a.ChargeMW)
			grids[i] = a.PowerMW + c - g
			t.socGauge.With(s.sites[i].Name).Set(t.bats[i].SoC())
		} else {
			grids[i] = a.GridMW
		}
	}
	if t.rate > 0 {
		t.ledger.Observe(grids)
		for i, p := range t.ledger.Peaks() {
			t.peakGauge.With(s.sites[i].Name).Set(p)
		}
	}
}

// tariffSnapshot captures the position for persistence and /v1/tariff.
// Returns nils when the tariff engine is disabled.
func (s *Server) tariffSnapshot() (*pricing.PeakState, []float64) {
	t := s.tariff
	if t == nil {
		return nil, nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	ps := t.ledger.Snapshot()
	var socs []float64
	if t.bats != nil {
		socs = make([]float64, len(t.bats))
		for i, b := range t.bats {
			if b != nil {
				socs[i] = b.SoC()
			}
		}
	}
	return &ps, socs
}

// restoreTariff folds a recovered checkpoint back into the position.
func (s *Server) restoreTariff(peaks *pricing.PeakState, socMWh []float64) error {
	t := s.tariff
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if peaks != nil {
		if err := t.ledger.Restore(*peaks); err != nil {
			return fmt.Errorf("api: %w", err)
		}
		for i, p := range t.ledger.Peaks() {
			t.peakGauge.With(s.sites[i].Name).Set(p)
		}
	}
	if socMWh != nil && t.bats != nil {
		if len(socMWh) != len(t.bats) {
			return fmt.Errorf("api: restored %d battery states for %d sites", len(socMWh), len(t.bats))
		}
		for i, b := range t.bats {
			if b != nil {
				b.SetSoC(socMWh[i])
				t.socGauge.With(s.sites[i].Name).Set(b.SoC())
			}
		}
	}
	return nil
}

// TariffSite is one site's row in GET /v1/tariff.
type TariffSite struct {
	Site   string  `json:"site"`
	PeakMW float64 `json:"peakMW"`
	// Battery fields are zero when the site has no battery.
	BatCapacityMWh float64 `json:"batCapacityMWh,omitempty"`
	BatSoCMWh      float64 `json:"batSoCMWh,omitempty"`
	BatValueUSD    float64 `json:"batValueUSDPerMWh,omitempty"`
}

// TariffResponse is the server's billing position.
type TariffResponse struct {
	DemandChargeUSDPerMWMonth float64      `json:"demandChargeUSDPerMWMonth"`
	DemandChargeSoFarUSD      float64      `json:"demandChargeSoFarUSD"`
	Sites                     []TariffSite `json:"sites"`
}

// handleTariff serves the billing position: the demand-charge ledger and the
// battery bank. Registered only when EnableTariff ran.
func (s *Server) handleTariff(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, errors.New("GET only"))
		return
	}
	t := s.tariff
	t.mu.Lock()
	defer t.mu.Unlock()
	resp := TariffResponse{DemandChargeUSDPerMWMonth: t.rate}
	for i, dc := range s.sites {
		row := TariffSite{Site: dc.Name, PeakMW: t.ledger.Peak(i)}
		if t.bats != nil && t.bats[i] != nil {
			row.BatCapacityMWh = t.specs[i].CapacityMWh
			row.BatSoCMWh = t.bats[i].SoC()
			row.BatValueUSD = t.specs[i].ValueUSDPerMWh
		}
		resp.Sites = append(resp.Sites, row)
		resp.DemandChargeSoFarUSD += t.rate * t.ledger.Peak(i)
	}
	writeJSON(w, http.StatusOK, resp)
}

package api

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"billcap/internal/core"
	"billcap/internal/dcmodel"
	"billcap/internal/pricing"
)

func stateServer(t *testing.T, dir string) *Server {
	t.Helper()
	s, err := New(dcmodel.PaperSites(), pricing.PaperPolicies(pricing.Policy1), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.EnableState(dir); err != nil {
		t.Fatal(err)
	}
	return s
}

func resilientReq(hour int) DecideRequest {
	return DecideRequest{
		TotalLambda:   1.5e12,
		PremiumLambda: 1.2e12,
		DemandMW:      []float64{170, 190, 150},
		Hour:          hour,
		Resilient:     true,
	}
}

// TestStateSurvivesRestart is the daemon-level crash-recovery contract: a
// second server over the same -state-dir resumes the ladder, so its stale
// rung can replay the first server's last-known-good decision, /readyz shows
// the restore, and /metrics counts it.
func TestStateSurvivesRestart(t *testing.T) {
	dir := t.TempDir()

	s1 := stateServer(t, dir)
	ts1 := httptest.NewServer(s1.Handler())
	var dec DecideResponse
	if resp := postJSON(t, ts1.URL+"/v1/decide", resilientReq(7), &dec); resp.StatusCode != 200 {
		t.Fatalf("decide: %d", resp.StatusCode)
	}
	if dec.Degraded != "" {
		t.Fatalf("healthy decision degraded: %q", dec.Degraded)
	}
	ts1.Close()
	// Simulate SIGKILL: no CloseState, the WAL alone carries the state.

	s2 := stateServer(t, dir)
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	defer s2.CloseState()

	// The restored ladder serves the stale rung when both solver rungs fail.
	s2.Resilient().InjectSolverFailure(8)
	s2.Resilient().InjectFallbackFailure(8)
	var dec2 DecideResponse
	postJSON(t, ts2.URL+"/v1/decide", resilientReq(8), &dec2)
	if dec2.Degraded != "stale" {
		t.Fatalf("restored ladder degraded to %q, want stale", dec2.Degraded)
	}
	if dec2.Served <= 0 {
		t.Error("restored stale reuse served nothing")
	}

	var ready map[string]any
	getJSON(t, ts2.URL+"/readyz", &ready)
	restore, ok := ready["restore"].(map[string]any)
	if !ok {
		t.Fatalf("/readyz has no restore status: %v", ready)
	}
	if restore["restored"] != true {
		t.Errorf("restore status %v, want restored=true", restore)
	}

	mresp, err := http.Get(ts2.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	metrics := string(body)
	for _, want := range []string{
		"billcap_state_restores_total 1",
		"billcap_wal_corruptions_total 0",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestStateFreshDirReportsNoRestore pins the first-boot shape: state enabled,
// nothing to restore, /readyz says so.
func TestStateFreshDirReportsNoRestore(t *testing.T) {
	s := stateServer(t, t.TempDir())
	defer s.CloseState()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var ready map[string]any
	getJSON(t, ts.URL+"/readyz", &ready)
	restore, ok := ready["restore"].(map[string]any)
	if !ok {
		t.Fatalf("/readyz has no restore status: %v", ready)
	}
	if restore["restored"] != false {
		t.Errorf("fresh dir reports restore: %v", restore)
	}
}

// Package api exposes the bill capper as a JSON-over-HTTP control service —
// the interface a production request-routing tier (e.g. an authoritative
// DNS dispatcher, paper §III) would call once per invocation period.
//
// Endpoints:
//
//	GET  /healthz       liveness
//	GET  /readyz        readiness (503 while draining or persistently degraded)
//	GET  /metrics       Prometheus text exposition (controller + HTTP metrics)
//	GET  /debug/pprof/  runtime profiling (CPU, heap, goroutines, …)
//	GET  /v1/sites      site inventory (capacity, caps, market)
//	GET  /v1/policies   locational pricing policies
//	POST /v1/decide     one hour's two-step capping decision
//	POST /v1/decide/batch  many independent hours, solved concurrently
//	POST /v1/realize    ground-truth billing of an allocation
//	POST /v1/model      dump the hour's MILP in lp_solve-style text
//	POST /v1/route      admit-and-route one request on the live snapshot (O(1))
//	POST /v1/route/batch  admit-and-route n requests in closed form
//	GET  /v1/route/table  live routing snapshot (weights, drift posture)
//
// All errors — including 404s, panics and oversized bodies — use one JSON
// envelope: {"error": "..."}. Status codes follow one contract: malformed or
// invalid requests are 400 (the client's fault), solver and model failures
// are 500 (ours), and a request whose own deadline expired before the solver
// could start is 504.
package api

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"net/http/pprof"
	"sync/atomic"
	"time"

	"billcap/internal/core"
	"billcap/internal/dcmodel"
	"billcap/internal/obs"
	"billcap/internal/pricing"
)

// maxBodyBytes caps POST request bodies; the control payloads are a few
// hundred bytes, so 1 MiB is generous headroom against abuse.
const maxBodyBytes = 1 << 20

// maxConsecutiveDegraded is how many back-to-back degraded resilient
// decisions (fallback rung or below) flip /readyz to 503: the controller is
// still answering, but a load balancer with a healthier replica should
// prefer it.
const maxConsecutiveDegraded = 3

// Server handles the control API for one system.
type Server struct {
	sys       *core.System
	resilient *core.Resilient
	sites     []*dcmodel.Site
	policies  []pricing.Policy
	mux       *http.ServeMux
	reg       *obs.Registry
	metrics   *httpMetrics
	// route is the lock-free request data plane: every decision installs an
	// immutable routing snapshot that /v1/route and /v1/route/batch serve
	// without locks or solving (see route.go).
	route *RoutePlane
	// state, when non-nil (see EnableState), persists every resilient
	// decision so a restart resumes the ladder instead of zeroing it.
	state *stateLayer
	// tariff, when non-nil (see EnableTariff), bills beyond plain energy
	// charges: demand-charge peak ledger and per-site batteries.
	tariff *tariffState

	draining       atomic.Bool
	consecDegraded atomic.Int64
}

// New builds the server over an assembled system, instrumented on a fresh
// metrics registry (see Registry).
func New(dcs []*dcmodel.Site, policies []pricing.Policy, opts core.Options) (*Server, error) {
	sys, err := core.NewSystem(dcs, policies, opts)
	if err != nil {
		return nil, err
	}
	reg := obs.NewRegistry()
	sys.SetMetrics(core.NewMetrics(reg))
	s := &Server{
		sys: sys, resilient: core.NewResilient(sys, core.ResilientOptions{}),
		sites: dcs, policies: policies,
		mux: http.NewServeMux(), reg: reg, metrics: newHTTPMetrics(reg),
	}
	names := make([]string, len(dcs))
	for i, dc := range dcs {
		names[i] = dc.Name
	}
	s.route, err = newRoutePlane(s.resilient, reg, names, defaultDriftRatio)
	if err != nil {
		return nil, err
	}
	s.handle("/healthz", s.handleHealth)
	s.handle("/readyz", s.handleReady)
	s.handle("/v1/sites", s.handleSites)
	s.handle("/v1/policies", s.handlePolicies)
	s.handle("/v1/decide", s.handleDecide)
	s.handle("/v1/decide/batch", s.handleDecideBatch)
	s.handle("/v1/realize", s.handleRealize)
	s.handle("/v1/model", s.handleModel)
	s.handle("/v1/route", s.handleRoute)
	s.handle("/v1/route/batch", s.handleRouteBatch)
	s.handle("/v1/route/table", s.handleRouteTable)
	// Routing totals live in the snapshots' striped counters; fold the
	// deltas into the registry so every scrape is current.
	s.handle("/metrics", func(w http.ResponseWriter, r *http.Request) {
		s.route.FlushMetrics()
		obs.Handler(reg).ServeHTTP(w, r)
	})
	// Profiling surface, on the explicit handlers (not DefaultServeMux).
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	// Everything unmatched gets the JSON error envelope instead of the
	// mux's plain-text 404.
	s.handle("/", s.handleNotFound)
	return s, nil
}

// handle registers a route wrapped in panic recovery and the
// counting/timing middleware.
func (s *Server) handle(route string, h http.HandlerFunc) {
	s.mux.HandleFunc(route, s.metrics.instrument(route, recovered(h)))
}

// Handler returns the HTTP handler (for http.Server or tests).
func (s *Server) Handler() http.Handler { return s.mux }

// SetDraining flips /readyz to 503 (true) or back (false) so load balancers
// stop routing new work while in-flight requests finish; the daemon calls it
// when the shutdown signal arrives.
func (s *Server) SetDraining(v bool) { s.draining.Store(v) }

// Resilient exposes the server's degradation ladder — the seam through which
// an operator (or a chaos test) can force rung failures.
func (s *Server) Resilient() *core.Resilient { return s.resilient }

// noteRung feeds the readiness trip: consecutive decisions at the fallback
// rung or below mark the replica unready; any healthier decision resets it.
func (s *Server) noteRung(d core.Degrade) {
	if d >= core.DegradeFallback {
		s.consecDegraded.Add(1)
	} else {
		s.consecDegraded.Store(0)
	}
}

// Registry exposes the server's metrics registry so the daemon (or an
// embedding test) can add process-level series next to the controller's.
func (s *Server) Registry() *obs.Registry { return s.reg }

// RoutePlane exposes the request data plane (for the daemon and tests).
func (s *Server) RoutePlane() *RoutePlane { return s.route }

// SetDriftRatio reconfigures the data plane's drift trip ratio: 0 disables
// drift re-solves, any other value must be finite and > 1.
func (s *Server) SetDriftRatio(ratio float64) error { return s.route.SetDriftRatio(ratio) }

type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // the status line is already out; nothing to recover
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorBody{Error: err.Error()})
}

// statusFor maps a controller error onto the API contract: malformed input
// is the client's fault (400), an exhausted request deadline is 504, and
// everything else — solver failures, model bugs — is ours (500).
func statusFor(err error) int {
	switch {
	case errors.Is(err, core.ErrBadInput):
		return http.StatusBadRequest
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return http.StatusGatewayTimeout
	default:
		return http.StatusInternalServerError
	}
}

// readJSON decodes a capped request body into v. On failure it writes the
// JSON error envelope (413 for oversized bodies, 400 otherwise) and
// reports false.
func readJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeErr(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("request body exceeds %d bytes", tooBig.Limit))
			return false
		}
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return false
	}
	return true
}

func (s *Server) handleNotFound(w http.ResponseWriter, r *http.Request) {
	writeErr(w, http.StatusNotFound, fmt.Errorf("no such endpoint %s", r.URL.Path))
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReady reports whether this replica should receive traffic: 503 while
// draining for shutdown, and 503 once maxConsecutiveDegraded resilient
// decisions in a row have run at the fallback rung or below.
func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	if n := s.consecDegraded.Load(); n >= maxConsecutiveDegraded {
		body := map[string]any{
			"status": "degraded", "consecutiveDegradedDecisions": n,
		}
		s.addRestoreStatus(body)
		writeJSON(w, http.StatusServiceUnavailable, body)
		return
	}
	body := map[string]any{"status": "ready"}
	s.addRestoreStatus(body)
	writeJSON(w, http.StatusOK, body)
}

// addRestoreStatus attaches what the state layer recovered at startup, so an
// operator checking /readyz after a restart sees whether the ladder resumed
// and whether any corruption was truncated on the way.
func (s *Server) addRestoreStatus(body map[string]any) {
	if s.state != nil {
		body["restore"] = s.state.info
	}
}

// SiteInfo is the inventory entry of /v1/sites.
type SiteInfo struct {
	Name          string  `json:"name"`
	MaxServers    int     `json:"maxServers"`
	PowerCapMW    float64 `json:"powerCapMW"`
	MaxLambda     float64 `json:"maxLambdaReqPerHour"`
	Market        string  `json:"market"`
	FatTreeK      int     `json:"fatTreeK"`
	CoolingEff    float64 `json:"coolingEfficiency"`
	ServiceRateHz float64 `json:"perServerReqPerSec"`
}

func (s *Server) handleSites(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, errors.New("GET only"))
		return
	}
	out := make([]SiteInfo, len(s.sites))
	for i, dc := range s.sites {
		maxLam, err := dc.MaxLambda()
		if err != nil {
			writeErr(w, http.StatusInternalServerError, err)
			return
		}
		out[i] = SiteInfo{
			Name:          dc.Name,
			MaxServers:    dc.MaxServers,
			PowerCapMW:    dc.PowerCapMW,
			MaxLambda:     maxLam,
			Market:        s.policies[i].Name,
			FatTreeK:      dc.Net.K,
			CoolingEff:    dc.CoolingEff,
			ServiceRateHz: dc.Queue.Mu / 3600,
		}
	}
	writeJSON(w, http.StatusOK, out)
}

// PolicyInfo is one region's step policy in /v1/policies.
type PolicyInfo struct {
	Name     string    `json:"name"`
	Location string    `json:"location"`
	StepsMW  []float64 `json:"stepThresholdsMW"`
	Rates    []float64 `json:"ratesUSDPerMWh"`
}

func (s *Server) handlePolicies(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, errors.New("GET only"))
		return
	}
	out := make([]PolicyInfo, len(s.policies))
	for i, p := range s.policies {
		out[i] = PolicyInfo{
			Name:     p.Name,
			Location: p.Location,
			StepsMW:  p.Fn.Thresholds(),
			Rates:    p.Fn.Rates(),
		}
	}
	writeJSON(w, http.StatusOK, out)
}

// DecideRequest is the body of POST /v1/decide. A null/omitted budget means
// uncapped.
type DecideRequest struct {
	TotalLambda   float64   `json:"totalLambda"`
	PremiumLambda float64   `json:"premiumLambda"`
	DemandMW      []float64 `json:"demandMW"`
	BudgetUSD     *float64  `json:"budgetUSD"`
	// Hour is the absolute hour index (used by the staleness bound of the
	// resilient path); 0 is fine for one-shot requests.
	Hour int `json:"hour,omitempty"`
	// Down marks sites unavailable this hour (site order as /v1/sites).
	Down []bool `json:"down,omitempty"`
	// TimeoutMS bounds the decision's wall-clock budget; a solve that
	// expires answers with its best incumbent (degraded "time-limit")
	// rather than holding the request. 0 → the server's solver options.
	TimeoutMS float64 `json:"timeoutMS,omitempty"`
	// Resilient routes the request through the degradation ladder: the
	// answer may be degraded (see "degraded" in the response) but solver
	// failures never surface as errors.
	Resilient bool `json:"resilient,omitempty"`

	// Tariff overrides (all optional). When the server runs with the tariff
	// engine enabled (-tariff and friends), omitted fields are filled from
	// its live position — the demand-charge rate, the peak-so-far ledger and
	// the battery bank — and the decision commits back into that position.
	// Supplying PeakMW or Batteries explicitly makes the request what-if:
	// the answer reflects them but nothing is committed.
	DemandChargeUSDPerMW float64            `json:"demandChargeUSDPerMW,omitempty"`
	PeakMW               []float64          `json:"peakMW,omitempty"`
	RTPriceUSDPerMWh     []float64          `json:"rtPriceUSDPerMWh,omitempty"`
	CommitMW             []float64          `json:"commitMW,omitempty"`
	Batteries            []core.BatterySpec `json:"batteries,omitempty"`
}

// SiteDecision is one site's share in a DecideResponse.
type SiteDecision struct {
	Site           string  `json:"site"`
	Lambda         float64 `json:"lambda"`
	PowerMW        float64 `json:"powerMW"`
	PriceUSDPerMWh float64 `json:"priceUSDPerMWh"`
	CostUSD        float64 `json:"costUSD"`
	On             bool    `json:"on"`
	// Tariff fields (omitted outside tariff decisions): the metered supplier
	// draw, planned battery actions, and the cost decomposition.
	GridMW      float64 `json:"gridMW,omitempty"`
	ChargeMW    float64 `json:"chargeMW,omitempty"`
	DischargeMW float64 `json:"dischargeMW,omitempty"`
	EnergyUSD   float64 `json:"energyUSD,omitempty"`
	DemandUSD   float64 `json:"demandUSD,omitempty"`
}

// DecideResponse is the capper's answer.
type DecideResponse struct {
	Step string `json:"step"`
	// Degraded names the degradation rung that produced the answer
	// ("time-limit", "fallback", "stale", "shed"); empty when the solve was
	// proven optimal.
	Degraded         string  `json:"degraded,omitempty"`
	Served           float64 `json:"served"`
	ServedPremium    float64 `json:"servedPremium"`
	ServedOrdinary   float64 `json:"servedOrdinary"`
	PredictedCostUSD float64 `json:"predictedCostUSD"`
	// EnergyCostUSD / DemandChargeUSD / SettlementUSD decompose
	// PredictedCostUSD when the tariff engine priced the hour; all omitted
	// on plain energy-only decisions.
	EnergyCostUSD    float64        `json:"energyCostUSD,omitempty"`
	DemandChargeUSD  float64        `json:"demandChargeUSD,omitempty"`
	SettlementUSD    float64        `json:"settlementUSD,omitempty"`
	Sites            []SiteDecision `json:"sites"`
	SolverNodes      int            `json:"solverNodes"`
	SolverSolves     int            `json:"solverSolves"`
	SolverPivots     int            `json:"solverPivots"`
	SolverIncumbents int            `json:"solverIncumbents"`
	SolverTimeouts   int            `json:"solverTimeouts,omitempty"`
	SolverWorkers    int            `json:"solverWorkers,omitempty"`
	SolverWallMS     float64        `json:"solverWallMS"`
	// SolverPresolveFixed / SolverWarmStarted report the incremental-solving
	// path (presolved binaries, warm-started solves); 0 unless the server
	// runs with the solve cache enabled.
	SolverPresolveFixed int `json:"solverPresolveFixed,omitempty"`
	SolverWarmStarted   int `json:"solverWarmStarted,omitempty"`
	// SolverLPRefactorizations / SolverLPBasisUpdates expose the sparse LP
	// core's basis-factorization work (0 when the dense oracle ran).
	SolverLPRefactorizations int `json:"solverLPRefactorizations,omitempty"`
	SolverLPBasisUpdates     int `json:"solverLPBasisUpdates,omitempty"`
	// SolverDecompIterations / SolverDecompGap / SolverDecompDualBound report
	// the Lagrangian dual-decomposition effort when the fleet-scale path
	// answered (subgradient iterations, worst proven relative primal–dual
	// gap, last dual bound); all omitted on the exact-MILP path.
	SolverDecompIterations int     `json:"solverDecompIterations,omitempty"`
	SolverDecompGap        float64 `json:"solverDecompGap,omitempty"`
	SolverDecompDualBound  float64 `json:"solverDecompDualBound,omitempty"`
}

// hourInputFrom maps the wire request onto the controller's input; a
// null/omitted budget means uncapped. Tariff fields the request leaves out
// are filled from the server's live position when the engine is enabled.
func (s *Server) hourInputFrom(req DecideRequest) core.HourInput {
	in := core.HourInput{
		Hour:          req.Hour,
		TotalLambda:   req.TotalLambda,
		PremiumLambda: req.PremiumLambda,
		DemandMW:      req.DemandMW,
		BudgetUSD:     math.Inf(1),
		Down:          req.Down,

		DemandChargeUSDPerMW: req.DemandChargeUSDPerMW,
		PeakMW:               req.PeakMW,
		RTPriceUSDPerMWh:     req.RTPriceUSDPerMWh,
		CommitMW:             req.CommitMW,
		Batteries:            req.Batteries,
	}
	if req.BudgetUSD != nil {
		in.BudgetUSD = *req.BudgetUSD
	}
	s.attachTariff(&in, req)
	return in
}

// decideResponseFrom renders a controller decision onto the wire shape
// shared by /v1/decide and /v1/decide/batch.
func (s *Server) decideResponseFrom(dec core.Decision) DecideResponse {
	resp := DecideResponse{
		Step:             dec.Step.String(),
		Served:           dec.Served,
		ServedPremium:    dec.ServedPremium,
		ServedOrdinary:   dec.ServedOrdinary,
		PredictedCostUSD: dec.PredictedCostUSD,
		SolverNodes:      dec.Solver.Nodes,
		SolverSolves:     dec.Solver.Solves,
		SolverPivots:     dec.Solver.LPIterations,
		SolverIncumbents: dec.Solver.Incumbents,
		SolverTimeouts:   dec.Solver.Timeouts,
		SolverWorkers:    dec.Solver.Workers,
		SolverWallMS:     float64(dec.Solver.WallTime.Microseconds()) / 1e3,

		SolverPresolveFixed: dec.Solver.PresolveFixed,
		SolverWarmStarted:   dec.Solver.WarmStarted,

		SolverLPRefactorizations: dec.Solver.LPRefactorizations,
		SolverLPBasisUpdates:     dec.Solver.LPBasisUpdates,

		SolverDecompIterations: dec.Solver.DecompIterations,
		SolverDecompGap:        dec.Solver.DecompGap,
		SolverDecompDualBound:  dec.Solver.DecompDualBound,
	}
	if dec.Degraded != core.DegradeNone {
		resp.Degraded = dec.Degraded.String()
	}
	if dec.EnergyCostUSD != 0 || dec.DemandChargeUSD != 0 || dec.SettlementUSD != 0 {
		resp.EnergyCostUSD = dec.EnergyCostUSD
		resp.DemandChargeUSD = dec.DemandChargeUSD
		resp.SettlementUSD = dec.SettlementUSD
	}
	for i, a := range dec.Sites {
		resp.Sites = append(resp.Sites, SiteDecision{
			Site:           s.sites[i].Name,
			Lambda:         a.Lambda,
			PowerMW:        a.PowerMW,
			PriceUSDPerMWh: a.PriceUSDPerMWh,
			CostUSD:        a.CostUSD,
			On:             a.On,

			GridMW:      a.GridMW,
			ChargeMW:    a.ChargeMW,
			DischargeMW: a.DischargeMW,
			EnergyUSD:   a.EnergyUSD,
			DemandUSD:   a.DemandUSD,
		})
	}
	return resp
}

func (s *Server) handleDecide(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, errors.New("POST only"))
		return
	}
	var req DecideRequest
	if !readJSON(w, r, &req) {
		return
	}
	in := s.hourInputFrom(req)
	// A malformed request is the client's bug even on the resilient path;
	// the ladder's input patching is for feed dropouts, not API misuse.
	if err := s.sys.ValidateInput(in); err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	ctx := r.Context()
	if req.TimeoutMS > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(req.TimeoutMS*float64(time.Millisecond)))
		defer cancel()
	}
	var dec core.Decision
	if req.Resilient {
		dec = s.resilient.DecideCtx(ctx, in)
		s.noteRung(dec.Degraded)
	} else {
		var err error
		dec, err = s.sys.DecideHourCtx(ctx, in)
		if err != nil {
			writeErr(w, statusFor(err), err)
			return
		}
	}
	// Every decision refreshes the data plane (a shed decision with nothing
	// to route leaves the previous table live).
	s.route.Install(in, dec)
	// A served (non-override) decision is what the sites will do this hour:
	// move the stored energy and ratchet the demand-charge ledger. Commit
	// before persisting so the WAL entry carries the post-hour position.
	s.commitTariff(req, in, dec)
	if req.Resilient {
		s.persistDecision(in.Hour)
	}
	writeJSON(w, http.StatusOK, s.decideResponseFrom(dec))
}

// handleModel dumps the hour's Step-1 MILP in lp_solve-style text, for
// offline inspection with cmd/milpsolve. The request body is a
// DecideRequest; the response is text/plain.
func (s *Server) handleModel(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, errors.New("POST only"))
		return
	}
	var req DecideRequest
	if !readJSON(w, r, &req) {
		return
	}
	in := core.HourInput{
		TotalLambda:   req.TotalLambda,
		PremiumLambda: req.PremiumLambda,
		DemandMW:      req.DemandMW,
		BudgetUSD:     math.Inf(1),
	}
	var buf bytes.Buffer
	if err := s.sys.WriteHourModel(&buf, in, in.TotalLambda); err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_, _ = buf.WriteTo(w)
}

// RealizeRequest is the body of POST /v1/realize.
type RealizeRequest struct {
	Lambdas  []float64 `json:"lambdas"`
	DemandMW []float64 `json:"demandMW"`
}

// SiteRealized is one site's billed outcome.
type SiteRealized struct {
	Site           string  `json:"site"`
	Lambda         float64 `json:"lambda"`
	Servers        int     `json:"servers"`
	PowerMW        float64 `json:"powerMW"`
	RegionLoadMW   float64 `json:"regionLoadMW"`
	PriceUSDPerMWh float64 `json:"priceUSDPerMWh"`
	CostUSD        float64 `json:"costUSD"`
	PenaltyUSD     float64 `json:"penaltyUSD"`
	CapViolated    bool    `json:"capViolated"`
}

// RealizeResponse is the billed ground truth.
type RealizeResponse struct {
	CostUSD       float64        `json:"costUSD"`
	PenaltyUSD    float64        `json:"penaltyUSD"`
	BillUSD       float64        `json:"billUSD"`
	Served        float64        `json:"served"`
	Dropped       float64        `json:"dropped"`
	CapViolations int            `json:"capViolations"`
	Sites         []SiteRealized `json:"sites"`
}

func (s *Server) handleRealize(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, errors.New("POST only"))
		return
	}
	var req RealizeRequest
	if !readJSON(w, r, &req) {
		return
	}
	real, err := s.sys.Realize(req.Lambdas, req.DemandMW)
	if err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	resp := RealizeResponse{
		CostUSD:       real.CostUSD,
		PenaltyUSD:    real.PenaltyUSD,
		BillUSD:       real.BillUSD(),
		Served:        real.ServedLambda,
		Dropped:       real.DroppedLambda,
		CapViolations: real.CapViolations,
	}
	for i, sr := range real.Sites {
		resp.Sites = append(resp.Sites, SiteRealized{
			Site:           s.sites[i].Name,
			Lambda:         sr.Lambda,
			Servers:        sr.Breakdown.Servers,
			PowerMW:        sr.PowerMW,
			RegionLoadMW:   sr.RegionLoadMW,
			PriceUSDPerMWh: sr.PriceUSDPerMWh,
			CostUSD:        sr.CostUSD,
			PenaltyUSD:     sr.PenaltyUSD,
			CapViolated:    sr.CapViolated,
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

// Package baseline implements the state-of-the-art comparison strategy the
// paper evaluates against (§VII-A): Min-Only, an optimization-based
// electricity-cost minimizer for Internet-scale data centers in the style of
// the paper's reference [2] (Rao et al., INFOCOM 2010).
//
// Min-Only differs from the paper's Cost Capping in exactly the three ways
// the paper lists:
//
//  1. it treats data centers as price takers — a constant locational price
//     per site, either the average of the step prices (Avg) or the lowest
//     (Low);
//  2. it models only server power, ignoring cooling and networking;
//  3. it has no notion of a cost budget: every arriving request is served
//     regardless of what the hour will cost.
package baseline

import (
	"errors"
	"fmt"
	"math"

	"billcap/internal/core"
	"billcap/internal/dcmodel"
	"billcap/internal/pricing"
)

// Variant selects the price-taker flattening.
type Variant int

// Min-Only variants.
const (
	// Avg prices each site at the mean of its policy's steps.
	Avg Variant = iota
	// Low prices each site at the lowest step.
	Low
)

// String names the variant as in the paper's figures.
func (v Variant) String() string {
	switch v {
	case Avg:
		return "Min-Only (Avg)"
	case Low:
		return "Min-Only (Low)"
	}
	return fmt.Sprintf("Variant(%d)", int(v))
}

// MinOnly is the baseline decider.
type MinOnly struct {
	sys     *core.System
	variant Variant
}

// New builds a Min-Only baseline over the given sites and true policies; the
// flattened price view is derived internally.
func New(dcs []*dcmodel.Site, policies []pricing.Policy, v Variant) (*MinOnly, error) {
	view := core.ViewFlatAvg
	if v == Low {
		view = core.ViewFlatLow
	}
	sys, err := core.NewSystem(dcs, policies, core.Options{
		Scope:     dcmodel.ServerOnly,
		PriceView: view,
	})
	if err != nil {
		return nil, err
	}
	return &MinOnly{sys: sys, variant: v}, nil
}

// Name returns the paper's label for the strategy.
func (m *MinOnly) Name() string { return m.variant.String() }

// System exposes the underlying system (e.g. for realization in tests).
func (m *MinOnly) System() *core.System { return m.sys }

// Decide serves the entire workload at minimum believed cost, ignoring the
// hourly budget entirely (the paper: "all the incoming requests are serviced
// in Min-Only regardless of the given cost budget"). Arrivals beyond what
// the baseline believes the fleet carries are truncated to its believed
// capacity.
func (m *MinOnly) Decide(in core.HourInput) (core.Decision, error) {
	var stats core.SolverStats
	d, err := m.sys.MinimizeCost(in, in.TotalLambda, &stats)
	if err == nil {
		d.Step = core.StepCostMin
		d.ServedPremium = math.Min(in.PremiumLambda, d.Served)
		d.ServedOrdinary = d.Served - d.ServedPremium
		return d, nil
	}
	if !errors.Is(err, core.ErrInfeasible) {
		return core.Decision{}, err
	}
	// Over believed capacity: serve as much as possible, still no budget.
	unc := in
	unc.BudgetUSD = math.Inf(1)
	d, err = m.sys.MaximizeThroughput(unc, &stats)
	if err != nil {
		return core.Decision{}, err
	}
	d.Step = core.StepOverCapacity
	d.ServedPremium = math.Min(in.PremiumLambda, d.Served)
	d.ServedOrdinary = d.Served - d.ServedPremium
	return d, nil
}

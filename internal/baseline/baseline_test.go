package baseline

import (
	"math"
	"testing"

	"billcap/internal/core"
	"billcap/internal/dcmodel"
	"billcap/internal/pricing"
)

func newBaseline(t *testing.T, v Variant) *MinOnly {
	t.Helper()
	m, err := New(dcmodel.PaperSites(), pricing.PaperPolicies(pricing.Policy1), v)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNames(t *testing.T) {
	if got := newBaseline(t, Avg).Name(); got != "Min-Only (Avg)" {
		t.Errorf("name = %q", got)
	}
	if got := newBaseline(t, Low).Name(); got != "Min-Only (Low)" {
		t.Errorf("name = %q", got)
	}
	if got := Variant(9).String(); got != "Variant(9)" {
		t.Errorf("unknown variant = %q", got)
	}
}

func TestDecideIgnoresBudget(t *testing.T) {
	m := newBaseline(t, Avg)
	in := core.HourInput{
		TotalLambda:   1.5e12,
		PremiumLambda: 1.2e12,
		DemandMW:      []float64{170, 190, 150},
		BudgetUSD:     0.01, // absurdly tight; Min-Only must not care
	}
	d, err := m.Decide(in)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d.Served-in.TotalLambda) > 1e-6*in.TotalLambda {
		t.Errorf("served %v, want all %v despite budget", d.Served, in.TotalLambda)
	}
	if d.ServedPremium != in.PremiumLambda {
		t.Errorf("premium %v, want %v", d.ServedPremium, in.PremiumLambda)
	}
	if d.PredictedCostUSD <= in.BudgetUSD {
		t.Errorf("cost %v did not blow through the budget", d.PredictedCostUSD)
	}
}

func TestDecideOverCapacityTruncates(t *testing.T) {
	m := newBaseline(t, Low)
	over := 2 * m.System().MaxThroughput()
	in := core.HourInput{
		TotalLambda:   over,
		PremiumLambda: over / 2,
		DemandMW:      []float64{170, 190, 150},
		BudgetUSD:     math.Inf(1),
	}
	d, err := m.Decide(in)
	if err != nil {
		t.Fatal(err)
	}
	if d.Step != core.StepOverCapacity {
		t.Errorf("step = %v, want over-capacity", d.Step)
	}
	if d.Served > m.System().MaxThroughput()*(1+1e-9) {
		t.Errorf("served %v beyond believed capacity %v", d.Served, m.System().MaxThroughput())
	}
}

func TestAvgAndLowAllocateDifferently(t *testing.T) {
	// The two price views rank sites differently, so at moderate load their
	// allocations should differ somewhere.
	avg := newBaseline(t, Avg)
	low := newBaseline(t, Low)
	in := core.HourInput{
		TotalLambda:   2e12,
		PremiumLambda: 1.6e12,
		DemandMW:      []float64{170, 190, 150},
		BudgetUSD:     math.Inf(1),
	}
	da, err := avg.Decide(in)
	if err != nil {
		t.Fatal(err)
	}
	dl, err := low.Decide(in)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range da.Sites {
		if math.Abs(da.Sites[i].Lambda-dl.Sites[i].Lambda) > 1e-3*in.TotalLambda {
			same = false
		}
	}
	if same {
		t.Log("Avg and Low chose identical allocations at this load (acceptable but unexpected)")
	}
	// Both must serve everything.
	if math.Abs(da.Served-in.TotalLambda) > 1e-6*in.TotalLambda ||
		math.Abs(dl.Served-in.TotalLambda) > 1e-6*in.TotalLambda {
		t.Errorf("baselines dropped load: %v / %v of %v", da.Served, dl.Served, in.TotalLambda)
	}
}

func TestBaselineBelievedCostUnderestimatesRealizedBill(t *testing.T) {
	// Min-Only's two blind spots (flat prices, server-only power) mean its
	// predicted cost must undershoot the true bill.
	m := newBaseline(t, Low)
	in := core.HourInput{
		TotalLambda:   1.5e12,
		PremiumLambda: 1.2e12,
		DemandMW:      []float64{170, 190, 150},
		BudgetUSD:     math.Inf(1),
	}
	d, err := m.Decide(in)
	if err != nil {
		t.Fatal(err)
	}
	r, err := m.System().Realize(d.Lambdas(), in.DemandMW)
	if err != nil {
		t.Fatal(err)
	}
	if d.PredictedCostUSD >= r.BillUSD() {
		t.Errorf("believed cost %v not below realized bill %v", d.PredictedCostUSD, r.BillUSD())
	}
}

package baseline

import (
	"math"
	"testing"

	"billcap/internal/core"
	"billcap/internal/dcmodel"
	"billcap/internal/pricing"
)

func newTOU(t *testing.T) *TimeOfUse {
	t.Helper()
	tou, err := NewTimeOfUse(dcmodel.PaperSites(), pricing.PaperPolicies(pricing.Policy1))
	if err != nil {
		t.Fatal(err)
	}
	return tou
}

func TestOnPeakWindow(t *testing.T) {
	cases := map[int]bool{
		0: false, 7: false, 8: true, 12: true, 19: true, 20: false, 23: false,
		24: false, 24 + 9: true, // next day
		-1: false, // hour before the epoch still well-defined
	}
	for hour, want := range cases {
		if got := OnPeak(hour); got != want {
			t.Errorf("OnPeak(%d) = %v, want %v", hour, got, want)
		}
	}
}

func TestTOUName(t *testing.T) {
	if got := newTOU(t).Name(); got != "TOU (two-price)" {
		t.Errorf("name = %q", got)
	}
}

func TestTOUServesEverythingIgnoringBudget(t *testing.T) {
	tou := newTOU(t)
	in := core.HourInput{
		Hour:          12,
		TotalLambda:   1.5e12,
		PremiumLambda: 1.2e12,
		DemandMW:      []float64{170, 190, 150},
		BudgetUSD:     0.01,
	}
	d, err := tou.Decide(in)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d.Served-in.TotalLambda) > 1e-6*in.TotalLambda {
		t.Errorf("served %v of %v", d.Served, in.TotalLambda)
	}
}

func TestTOUTariffSwitchChangesBelief(t *testing.T) {
	// The same load must look cheaper to the off-peak system than to the
	// on-peak one (its believed prices are lower).
	tou := newTOU(t)
	base := core.HourInput{
		TotalLambda:   1e12,
		PremiumLambda: 8e11,
		DemandMW:      []float64{170, 190, 150},
		BudgetUSD:     math.Inf(1),
	}
	night := base
	night.Hour = 3
	day := base
	day.Hour = 13
	dn, err := tou.Decide(night)
	if err != nil {
		t.Fatal(err)
	}
	dd, err := tou.Decide(day)
	if err != nil {
		t.Fatal(err)
	}
	if dn.PredictedCostUSD >= dd.PredictedCostUSD {
		t.Errorf("off-peak belief %v not below on-peak %v", dn.PredictedCostUSD, dd.PredictedCostUSD)
	}
}

func TestTOUOverCapacity(t *testing.T) {
	tou := newTOU(t)
	// Way over fleet capacity.
	in := core.HourInput{
		Hour:        1,
		TotalLambda: 1e14,
		DemandMW:    []float64{170, 190, 150},
		BudgetUSD:   math.Inf(1),
	}
	d, err := tou.Decide(in)
	if err != nil {
		t.Fatal(err)
	}
	if d.Step != core.StepOverCapacity {
		t.Errorf("step = %v", d.Step)
	}
	if d.Served >= in.TotalLambda {
		t.Errorf("served everything despite over-capacity load")
	}
}

package baseline

import (
	"errors"
	"math"

	"billcap/internal/core"
	"billcap/internal/dcmodel"
	"billcap/internal/piecewise"
	"billcap/internal/pricing"
)

// Time-of-use (TOU) window: the industry-standard on-peak block. The
// paper's related work (Le et al., refs [32]-[34]) "assume two electricity
// prices at each data center, one for on-peak hours and another for
// off-peak hours" — time-aware but still load-blind.
const (
	onPeakStartHour = 8
	onPeakEndHour   = 20 // exclusive
)

// TimeOfUse is a Le-style baseline: it knows that peak hours are expensive
// and off-peak hours are cheap (two flat prices per site derived from the
// true step policy), but not that its own dispatch moves the price. Like
// Min-Only it models only server power and ignores budgets.
type TimeOfUse struct {
	peak, offpeak *core.System
}

// NewTimeOfUse derives the two-tariff view from the true policies: the
// on-peak price of a site is the mean of its upper half of step rates, the
// off-peak price the mean of the lower half.
func NewTimeOfUse(dcs []*dcmodel.Site, policies []pricing.Policy) (*TimeOfUse, error) {
	peakPols := make([]pricing.Policy, len(policies))
	offPols := make([]pricing.Policy, len(policies))
	for i, p := range policies {
		rates := p.Fn.Rates()
		half := len(rates) / 2
		if half == 0 {
			half = 1
		}
		offPols[i] = flatPolicy(p, "offpeak", mean(rates[:half]))
		peakPols[i] = flatPolicy(p, "onpeak", mean(rates[len(rates)-half:]))
	}
	mk := func(pols []pricing.Policy) (*core.System, error) {
		return core.NewSystem(dcs, pols, core.Options{
			Scope:     dcmodel.ServerOnly,
			PriceView: core.ViewLMP, // the flat policies ARE the view
		})
	}
	peak, err := mk(peakPols)
	if err != nil {
		return nil, err
	}
	off, err := mk(offPols)
	if err != nil {
		return nil, err
	}
	return &TimeOfUse{peak: peak, offpeak: off}, nil
}

func mean(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func flatPolicy(src pricing.Policy, tag string, rate float64) pricing.Policy {
	return pricing.Policy{
		Name:     src.Name + "/" + tag,
		Location: src.Location,
		Fn:       piecewise.Flat(rate),
	}
}

// Name labels the strategy.
func (t *TimeOfUse) Name() string { return "TOU (two-price)" }

// OnPeak reports whether the absolute hour falls in the on-peak window.
func OnPeak(hour int) bool {
	h := ((hour % 24) + 24) % 24
	return h >= onPeakStartHour && h < onPeakEndHour
}

// Decide serves everything at minimum believed cost under the tariff of the
// hour, ignoring the budget like Min-Only does.
func (t *TimeOfUse) Decide(in core.HourInput) (core.Decision, error) {
	sys := t.offpeak
	if OnPeak(in.Hour) {
		sys = t.peak
	}
	var stats core.SolverStats
	d, err := sys.MinimizeCost(in, in.TotalLambda, &stats)
	if err == nil {
		d.Step = core.StepCostMin
		d.ServedPremium = math.Min(in.PremiumLambda, d.Served)
		d.ServedOrdinary = d.Served - d.ServedPremium
		return d, nil
	}
	if !errors.Is(err, core.ErrInfeasible) {
		return core.Decision{}, err
	}
	unc := in
	unc.BudgetUSD = math.Inf(1)
	d, err = sys.MaximizeThroughput(unc, &stats)
	if err != nil {
		return core.Decision{}, err
	}
	d.Step = core.StepOverCapacity
	d.ServedPremium = math.Min(in.PremiumLambda, d.Served)
	d.ServedOrdinary = d.Served - d.ServedPremium
	return d, nil
}

package state

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"billcap/internal/budget"
	"billcap/internal/core"
	"billcap/internal/timeseries"
)

func newLedger(t *testing.T, hours int) *budget.Budgeter {
	t.Helper()
	pred := make(timeseries.Series, hours)
	for i := range pred {
		pred[i] = 1
	}
	b, err := budget.New(1000, pred)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestOpenFreshDir(t *testing.T) {
	s, cp, info, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if cp != nil || info.Restored {
		t.Fatalf("fresh dir restored state: cp=%v info=%+v", cp, info)
	}
}

func TestWALRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, _, _, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}

	ref := newLedger(t, 10)
	spends := []float64{3, 7, 2}
	for h, sp := range spends {
		if err := ref.Record(sp); err != nil {
			t.Fatal(err)
		}
		st := ref.Snapshot()
		e := Entry{Hour: h, SpentUSD: sp}
		if h == 0 {
			// First entry has no snapshot beneath it; seed the budget via a
			// snapshot so replay has a ledger to fold into.
			init := newLedger(t, 10).Snapshot()
			if err := s.WriteSnapshot(Checkpoint{Hour: 0, Budget: &init}); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.Append(e); err != nil {
			t.Fatal(err)
		}
		_ = st
	}
	s.Close()

	s2, cp, info, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if cp == nil || !info.Restored {
		t.Fatal("no checkpoint restored")
	}
	if cp.Hour != len(spends) {
		t.Fatalf("restored hour %d, want %d", cp.Hour, len(spends))
	}
	if info.WALEntriesReplayed != len(spends) {
		t.Fatalf("replayed %d entries, want %d", info.WALEntriesReplayed, len(spends))
	}
	want := ref.Snapshot()
	got := *cp.Budget
	if got.PoolUSD != want.PoolUSD || got.SpentUSD != want.SpentUSD || got.NextHour != want.NextHour {
		t.Fatalf("replayed ledger %+v != live ledger %+v", got, want)
	}
}

func TestSnapshotPlusTailReplay(t *testing.T) {
	dir := t.TempDir()
	s, _, _, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}

	ref := newLedger(t, 8)
	for h := 0; h < 2; h++ {
		if err := ref.Record(5); err != nil {
			t.Fatal(err)
		}
	}
	bst := ref.Snapshot()
	res := &core.ResilientState{LastGoodHour: 1, LastBudget: 5, HaveBudget: true}
	if err := s.WriteSnapshot(Checkpoint{Hour: 2, Budget: &bst, Resilient: res}); err != nil {
		t.Fatal(err)
	}
	if err := ref.Record(9); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(Entry{Hour: 2, SpentUSD: 9, Resilient: &core.ResilientState{LastGoodHour: 2, LastBudget: 9, HaveBudget: true}}); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2, cp, info, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if cp == nil || cp.Hour != 3 {
		t.Fatalf("restored checkpoint %+v, want hour 3", cp)
	}
	if cp.Budget.SpentUSD != ref.Spent() || cp.Budget.PoolUSD != ref.Pool() {
		t.Fatalf("ledger mismatch: %+v vs spent=%v pool=%v", cp.Budget, ref.Spent(), ref.Pool())
	}
	if cp.Resilient == nil || cp.Resilient.LastGoodHour != 2 {
		t.Fatalf("resilient state not taken from WAL tail: %+v", cp.Resilient)
	}
	if info.WALEntriesReplayed != 1 {
		t.Fatalf("replayed %d, want 1", info.WALEntriesReplayed)
	}
}

func TestCorruptWALTailTruncated(t *testing.T) {
	dir := t.TempDir()
	s, _, _, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	init := newLedger(t, 8).Snapshot()
	if err := s.WriteSnapshot(Checkpoint{Hour: 0, Budget: &init}); err != nil {
		t.Fatal(err)
	}
	for h := 0; h < 2; h++ {
		if err := s.Append(Entry{Hour: h, SpentUSD: 1}); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()

	// Simulate a torn write: half a record at the end.
	walPath := filepath.Join(dir, walName)
	f, err := os.OpenFile(walPath, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"crc":123,"v":{"hour":2,"spen`)
	f.Close()

	s2, cp, info, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if cp == nil || cp.Hour != 2 {
		t.Fatalf("restored %+v, want the 2 intact hours", cp)
	}
	if info.WALCorruptions == 0 {
		t.Fatal("torn tail not counted as corruption")
	}

	// The tail is gone from disk: appending and reopening must work cleanly.
	if err := s2.Append(Entry{Hour: 2, SpentUSD: 1}); err != nil {
		t.Fatal(err)
	}
	s2.Close()
	s3, cp3, info3, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	if cp3.Hour != 3 || info3.WALCorruptions != 0 {
		t.Fatalf("after truncate-and-continue: cp=%+v info=%+v", cp3, info3)
	}
}

func TestCRCMismatchDropsRecord(t *testing.T) {
	dir := t.TempDir()
	s, _, _, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	init := newLedger(t, 8).Snapshot()
	if err := s.WriteSnapshot(Checkpoint{Hour: 0, Budget: &init}); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(Entry{Hour: 0, SpentUSD: 1}); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(Entry{Hour: 1, SpentUSD: 2}); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// Flip the second record's spend in place: still valid JSON, wrong CRC.
	walPath := filepath.Join(dir, walName)
	data, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	mutated := strings.Replace(string(data), `"spentUSD":2`, `"spentUSD":9`, 1)
	if mutated == string(data) {
		t.Fatal("test setup: spend not found in WAL")
	}
	if err := os.WriteFile(walPath, []byte(mutated), 0o644); err != nil {
		t.Fatal(err)
	}

	s2, cp, info, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if cp == nil || cp.Hour != 1 {
		t.Fatalf("restored %+v, want only the intact first hour", cp)
	}
	if info.WALCorruptions == 0 {
		t.Fatal("CRC mismatch not counted")
	}
}

func TestCorruptSnapshotFallsBackAndReplaysWAL(t *testing.T) {
	dir := t.TempDir()
	s, _, _, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	ref := newLedger(t, 8)
	if err := ref.Record(4); err != nil {
		t.Fatal(err)
	}
	old := ref.Snapshot()
	if err := s.WriteSnapshot(Checkpoint{Hour: 1, Budget: &old}); err != nil {
		t.Fatal(err)
	}
	if err := ref.Record(6); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(Entry{Hour: 1, SpentUSD: 6}); err != nil {
		t.Fatal(err)
	}
	newer := ref.Snapshot()
	if err := s.WriteSnapshot(Checkpoint{Hour: 2, Budget: &newer}); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// Corrupt the newest snapshot wholesale: restore must fall back to the
	// hour-1 generation and rebuild hour 1 from the compacted WAL.
	names := snapshotNames(dir)
	if len(names) != 2 {
		t.Fatalf("want 2 snapshot generations, have %v", names)
	}
	if err := os.WriteFile(filepath.Join(dir, names[1]), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}

	s2, cp, info, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if cp == nil || cp.Hour != 2 {
		t.Fatalf("restored %+v, want hour 2 via fallback snapshot + WAL", cp)
	}
	if cp.Budget.SpentUSD != ref.Spent() || cp.Budget.PoolUSD != ref.Pool() {
		t.Fatalf("ledger %+v, want spent=%v pool=%v", cp.Budget, ref.Spent(), ref.Pool())
	}
	if info.SnapshotFallbacks != 1 {
		t.Fatalf("fallbacks = %d, want 1", info.SnapshotFallbacks)
	}
	if info.WALEntriesReplayed != 1 {
		t.Fatalf("replayed %d WAL entries, want 1", info.WALEntriesReplayed)
	}
}

func TestSnapshotPruning(t *testing.T) {
	dir := t.TempDir()
	s, _, _, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for h := 1; h <= 5; h++ {
		if err := s.WriteSnapshot(Checkpoint{Hour: h}); err != nil {
			t.Fatal(err)
		}
	}
	names := snapshotNames(dir)
	if len(names) != snapKeep {
		t.Fatalf("pruning kept %d snapshots (%v), want %d", len(names), names, snapKeep)
	}
}

func TestReplayGapFailsLoudly(t *testing.T) {
	init := newLedger(t, 8).Snapshot()
	cp := &Checkpoint{Hour: 0, Budget: &init}
	_, _, err := Replay(cp, []Entry{{Hour: 0, SpentUSD: 1}, {Hour: 2, SpentUSD: 1}})
	if err == nil {
		t.Fatal("replay accepted a WAL gap")
	}
}

func TestReplaySkipsSupersededEntries(t *testing.T) {
	ref := newLedger(t, 8)
	if err := ref.Record(3); err != nil {
		t.Fatal(err)
	}
	snap := ref.Snapshot()
	// The WAL still holds hour 0 (crash between snapshot rename and WAL
	// truncation): replay must skip it, not double-record.
	cp, replayed, err := Replay(&Checkpoint{Hour: 1, Budget: &snap}, []Entry{{Hour: 0, SpentUSD: 3}})
	if err != nil {
		t.Fatal(err)
	}
	if replayed != 0 || cp.Budget.SpentUSD != 3 {
		t.Fatalf("superseded entry not skipped: replayed=%d ledger=%+v", replayed, cp.Budget)
	}
}

// Package state makes the controller's budgeting ledger crash-safe. The bill
// cap is a stateful contract — the weekly carry-forward pool and the stale
// rung's last-known-good decision are what keep the cap honored across hours
// — so a restart must not zero them. The design is the classic pairing of an
// append-only JSON-lines WAL (one fsync'd, CRC-guarded record per recorded
// hour) with periodic snapshots (atomic temp-file + fsync + rename, two
// generations kept): restore loads the newest valid snapshot, falls back to
// the older one if the newest is corrupt, and replays the WAL tail on top. A
// torn or corrupt WAL tail is truncated and counted, never fatal; everything
// before the tear is still good.
package state

import (
	"bufio"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"billcap/internal/budget"
	"billcap/internal/core"
	"billcap/internal/forecast"
	"billcap/internal/pricing"
)

const (
	walName    = "wal.log"
	snapPrefix = "snap-"
	snapSuffix = ".json"
	// snapKeep is how many snapshot generations survive pruning: the newest
	// plus one fallback in case the newest is torn by a crash mid-write (the
	// atomic rename makes that nearly impossible, but "nearly" is what this
	// package exists for).
	snapKeep = 2
)

// Checkpoint is the full durable state of one controller: the budget ledger,
// the degradation-ladder state, and the forecast state. Every field is
// optional — capperd, which receives its budget per-request, persists only
// the ladder, while the sim harness persists all of it.
type Checkpoint struct {
	// Hour is the number of hours fully recorded when the checkpoint was
	// taken; WAL entries with Hour >= this replay on top.
	Hour      int                       `json:"hour"`
	Budget    *budget.State             `json:"budget,omitempty"`
	Resilient *core.ResilientState      `json:"resilient,omitempty"`
	Forecast  *forecast.HourOfWeekState `json:"forecast,omitempty"`
	EWMA      *forecast.EWMAState       `json:"ewma,omitempty"`
	// Peaks is the demand-charge ledger: each site's billing-period peak
	// metered draw so far. Losing it across a restart would let the
	// controller re-pay demand charges the month already incurred (or worse,
	// under-predict the bill), so tariff-aware runs persist it every hour.
	Peaks *pricing.PeakState `json:"peaks,omitempty"`
	// BatterySoCMWh is the per-site battery state of charge (site order).
	BatterySoCMWh []float64 `json:"batterySoCMWh,omitempty"`
}

// Entry is one WAL record: the outcome of one recorded hour. It carries the
// full post-hour ladder state rather than a delta so that replaying the last
// entry is byte-identical to never having crashed.
type Entry struct {
	Hour      int                  `json:"hour"`
	SpentUSD  float64              `json:"spentUSD"`
	Resilient *core.ResilientState `json:"resilient,omitempty"`
	EWMA      *forecast.EWMAState  `json:"ewma,omitempty"`
	// Peaks and BatterySoCMWh mirror the checkpoint fields at per-hour
	// granularity: the full post-hour tariff state, not a delta, so replaying
	// the last entry is byte-identical to never having crashed.
	Peaks         *pricing.PeakState `json:"peaks,omitempty"`
	BatterySoCMWh []float64          `json:"batterySoCMWh,omitempty"`
}

// RestoreInfo reports what Open found, for /readyz and the restore metrics.
type RestoreInfo struct {
	// Restored is true when any prior state (snapshot or WAL entry) was
	// recovered; a fresh directory restores nothing.
	Restored bool `json:"restored"`
	// Hour is the next hour to be decided after restore.
	Hour int `json:"hour"`
	// WALCorruptions counts torn or CRC-mismatched WAL records dropped by
	// truncate-and-continue.
	WALCorruptions int `json:"walCorruptions"`
	// SnapshotFallbacks counts corrupt snapshots skipped before a valid (or
	// no) snapshot was found.
	SnapshotFallbacks int `json:"snapshotFallbacks"`
	// WALEntriesReplayed counts WAL records folded on top of the snapshot.
	WALEntriesReplayed int `json:"walEntriesReplayed"`
}

// Store is an open state directory. Methods are not safe for concurrent use;
// the controller's hour loop is sequential by construction.
type Store struct {
	dir string
	wal *os.File
	// tail mirrors the entries currently durable in the WAL file, so
	// WriteSnapshot can rewrite the WAL keeping exactly the records the
	// oldest retained snapshot generation still needs for replay.
	tail []Entry
}

// record is the on-disk framing: one JSON line per record, the payload's
// CRC-32 (IEEE) alongside the payload itself. json.RawMessage preserves the
// exact payload bytes, so the checksum verifies what was actually written.
type record struct {
	CRC uint32          `json:"crc"`
	V   json.RawMessage `json:"v"`
}

func seal(v any) ([]byte, error) {
	p, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	return json.Marshal(record{CRC: crc32.ChecksumIEEE(p), V: p})
}

func unseal(line []byte, v any) error {
	var r record
	if err := json.Unmarshal(line, &r); err != nil {
		return err
	}
	if crc32.ChecksumIEEE(r.V) != r.CRC {
		return fmt.Errorf("state: CRC mismatch")
	}
	return json.Unmarshal(r.V, v)
}

// Open opens (creating if needed) the state directory, restores the newest
// consistent checkpoint, and leaves the WAL ready for appends. A corrupt or
// torn WAL tail is truncated in place; a corrupt snapshot falls back to the
// previous generation and then to pure WAL replay.
func Open(dir string) (*Store, *Checkpoint, RestoreInfo, error) {
	var info RestoreInfo
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, info, fmt.Errorf("state: %w", err)
	}

	cp, fallbacks := loadSnapshot(dir)
	info.SnapshotFallbacks = fallbacks
	entries, corruptions, err := loadWAL(filepath.Join(dir, walName))
	if err != nil {
		return nil, nil, info, err
	}
	info.WALCorruptions = corruptions

	cp, replayed, err := Replay(cp, entries)
	if err != nil {
		return nil, nil, info, err
	}
	info.WALEntriesReplayed = replayed
	if cp != nil {
		info.Restored = true
		info.Hour = cp.Hour
	}

	wal, err := os.OpenFile(filepath.Join(dir, walName), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, info, fmt.Errorf("state: %w", err)
	}
	return &Store{dir: dir, wal: wal, tail: entries}, cp, info, nil
}

// Append durably logs one recorded hour: the record is written and fsync'd
// before Append returns, so a crash immediately after never loses it.
func (s *Store) Append(e Entry) error {
	line, err := seal(e)
	if err != nil {
		return fmt.Errorf("state: %w", err)
	}
	if _, err := s.wal.Write(append(line, '\n')); err != nil {
		return fmt.Errorf("state: %w", err)
	}
	if err := s.wal.Sync(); err != nil {
		return fmt.Errorf("state: %w", err)
	}
	s.tail = append(s.tail, e)
	return nil
}

// WriteSnapshot atomically persists a checkpoint (temp file, fsync, rename,
// directory fsync), prunes old generations, and compacts the WAL down to the
// records the oldest retained snapshot still needs — so if the newest
// snapshot turns out corrupt, the previous generation plus the WAL can still
// reconstruct every hour. A crash between the rename and the compaction is
// benign: replay skips WAL entries older than the snapshot's hour.
func (s *Store) WriteSnapshot(cp Checkpoint) error {
	line, err := seal(cp)
	if err != nil {
		return fmt.Errorf("state: %w", err)
	}
	name := fmt.Sprintf("%s%08d%s", snapPrefix, cp.Hour, snapSuffix)
	tmp, err := os.CreateTemp(s.dir, name+".tmp-")
	if err != nil {
		return fmt.Errorf("state: %w", err)
	}
	if _, err := tmp.Write(append(line, '\n')); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("state: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("state: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("state: %w", err)
	}
	if err := os.Rename(tmp.Name(), filepath.Join(s.dir, name)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("state: %w", err)
	}
	syncDir(s.dir)

	// Prune: keep the newest snapKeep generations.
	names := snapshotNames(s.dir)
	for i := 0; i+snapKeep < len(names); i++ {
		os.Remove(filepath.Join(s.dir, names[i]))
	}
	names = snapshotNames(s.dir)

	// Compact the WAL: the oldest retained snapshot is the furthest back a
	// restore can ever fall, so entries older than its hour are dead weight.
	floor := cp.Hour
	if len(names) > 0 {
		if h, err := snapshotHour(names[0]); err == nil && h < floor {
			floor = h
		}
	}
	keep := s.tail[:0:0]
	for _, e := range s.tail {
		if e.Hour >= floor {
			keep = append(keep, e)
		}
	}
	return s.rewriteWAL(keep)
}

// rewriteWAL atomically replaces the WAL file with the given entries and
// repoints the append handle at the new file.
func (s *Store) rewriteWAL(entries []Entry) error {
	tmp, err := os.CreateTemp(s.dir, walName+".tmp-")
	if err != nil {
		return fmt.Errorf("state: %w", err)
	}
	for _, e := range entries {
		line, err := seal(e)
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
			return fmt.Errorf("state: %w", err)
		}
		if _, err := tmp.Write(append(line, '\n')); err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
			return fmt.Errorf("state: %w", err)
		}
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("state: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("state: %w", err)
	}
	if err := os.Rename(tmp.Name(), filepath.Join(s.dir, walName)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("state: %w", err)
	}
	syncDir(s.dir)

	wal, err := os.OpenFile(filepath.Join(s.dir, walName), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("state: %w", err)
	}
	s.wal.Close()
	s.wal = wal
	s.tail = entries
	return nil
}

// snapshotHour parses the hour out of a snapshot file name.
func snapshotHour(name string) (int, error) {
	var h int
	_, err := fmt.Sscanf(name, snapPrefix+"%d"+snapSuffix, &h)
	return h, err
}

// Close releases the WAL file handle.
func (s *Store) Close() error { return s.wal.Close() }

// Dir returns the state directory path.
func (s *Store) Dir() string { return s.dir }

// snapshotNames lists snapshot files sorted oldest-first (the zero-padded
// hour in the name makes lexicographic order chronological).
func snapshotNames(dir string) []string {
	des, err := os.ReadDir(dir)
	if err != nil {
		return nil
	}
	var names []string
	for _, de := range des {
		n := de.Name()
		if strings.HasPrefix(n, snapPrefix) && strings.HasSuffix(n, snapSuffix) {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	return names
}

// loadSnapshot returns the newest snapshot that parses and verifies, counting
// how many corrupt generations were skipped on the way.
func loadSnapshot(dir string) (*Checkpoint, int) {
	names := snapshotNames(dir)
	fallbacks := 0
	for i := len(names) - 1; i >= 0; i-- {
		data, err := os.ReadFile(filepath.Join(dir, names[i]))
		if err == nil {
			var cp Checkpoint
			if unseal([]byte(strings.TrimSpace(string(data))), &cp) == nil && cp.Hour >= 0 {
				return &cp, fallbacks
			}
		}
		fallbacks++
	}
	return nil, fallbacks
}

// loadWAL reads every valid record and truncates the file at the first torn
// or corrupt one: records past a tear are unordered garbage by WAL semantics.
func loadWAL(path string) ([]Entry, int, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, 0, nil
	}
	if err != nil {
		return nil, 0, fmt.Errorf("state: %w", err)
	}
	defer f.Close()

	var entries []Entry
	var good int64
	corruptions := 0
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 16<<20)
	for sc.Scan() {
		line := sc.Bytes()
		var e Entry
		if err := unseal(line, &e); err != nil {
			corruptions++
			break
		}
		entries = append(entries, e)
		good += int64(len(line)) + 1
	}
	if err := sc.Err(); err != nil {
		corruptions++
	}

	if fi, err := os.Stat(path); err == nil && fi.Size() > good {
		if corruptions == 0 {
			corruptions++ // trailing bytes that never formed a full line
		}
		if err := os.Truncate(path, good); err != nil {
			return nil, corruptions, fmt.Errorf("state: truncating corrupt WAL tail: %w", err)
		}
	}
	return entries, corruptions, nil
}

// Replay folds WAL entries on top of a snapshot and returns the resulting
// checkpoint plus how many entries were applied. Entries older than the
// snapshot are skipped (they were superseded by it); a gap beyond the next
// expected hour is an error — it means a durably-recorded hour went missing,
// which must fail loudly rather than silently skip budget accounting.
func Replay(cp *Checkpoint, entries []Entry) (*Checkpoint, int, error) {
	if cp == nil && len(entries) == 0 {
		return nil, 0, nil
	}
	out := Checkpoint{}
	if cp != nil {
		out = *cp
	}

	var b *budget.Budgeter
	if out.Budget != nil {
		var err error
		if b, err = budget.Restore(*out.Budget); err != nil {
			return nil, 0, err
		}
	}

	replayed := 0
	for _, e := range entries {
		if b != nil {
			// With a ledger, hours must be gapless: every spend is part of the
			// budget contract, so a durably-recorded hour going missing must
			// fail loudly, and entries the snapshot supersedes are skipped.
			if e.Hour < out.Hour {
				continue
			}
			if e.Hour > out.Hour {
				return nil, replayed, fmt.Errorf("state: WAL gap: have hour %d, want %d", e.Hour, out.Hour)
			}
			if math.IsNaN(e.SpentUSD) || e.SpentUSD < 0 {
				return nil, replayed, fmt.Errorf("state: WAL hour %d: bad spend %v", e.Hour, e.SpentUSD)
			}
			if err := b.Record(e.SpentUSD); err != nil {
				return nil, replayed, fmt.Errorf("state: WAL hour %d: %w", e.Hour, err)
			}
			out.Hour = e.Hour + 1
		} else if e.Hour+1 > out.Hour {
			// Without a ledger (capperd persists only the ladder, and request
			// hours arrive at the caller's whim) entries fold in WAL order —
			// the last written state wins, gaps are harmless.
			out.Hour = e.Hour + 1
		}
		if e.Resilient != nil {
			out.Resilient = e.Resilient
		}
		if e.EWMA != nil {
			out.EWMA = e.EWMA
		}
		if e.Peaks != nil {
			out.Peaks = e.Peaks
		}
		if e.BatterySoCMWh != nil {
			out.BatterySoCMWh = e.BatterySoCMWh
		}
		replayed++
	}
	if b != nil {
		st := b.Snapshot()
		out.Budget = &st
	}
	return &out, replayed, nil
}

// syncDir fsyncs a directory so a rename survives power loss. Errors are
// swallowed: some filesystems refuse directory fsync, and the rename itself
// already happened.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}

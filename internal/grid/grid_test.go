package grid

import "testing"

func TestValidate(t *testing.T) {
	good := GenConfig{Hours: 24, BaseMW: 200, DailyAmp: 50, NoiseMW: 5, FloorMW: 80}
	if err := good.Validate(); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
	bad := []GenConfig{
		{Hours: 0, BaseMW: 200},
		{Hours: 24, BaseMW: 0},
		{Hours: 24, BaseMW: 200, DailyAmp: -1},
		{Hours: 24, BaseMW: 200, FloorMW: 300},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestSyntheticDeterministicAndFloored(t *testing.T) {
	c := GenConfig{Seed: 42, Hours: 400, BaseMW: 200, DailyAmp: 120, PeakHour: 17, NoiseMW: 30, FloorMW: 90}
	a, err := Synthetic("B", c)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Synthetic("B", c)
	for i := 0; i < a.Len(); i++ {
		if a.At(i) != b.At(i) {
			t.Fatalf("hour %d differs for identical seeds", i)
		}
		if a.At(i) < c.FloorMW {
			t.Fatalf("hour %d = %v below floor %v", i, a.At(i), c.FloorMW)
		}
	}
	if a.Region != "B" {
		t.Errorf("region = %q", a.Region)
	}
}

func TestPaperRegions(t *testing.T) {
	ds, err := PaperRegions(720, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 3 {
		t.Fatalf("len = %d, want 3", len(ds))
	}
	for _, d := range ds {
		if d.Len() != 720 {
			t.Errorf("region %s has %d hours", d.Region, d.Len())
		}
		// The PJM five-bus policies have first steps at 180–220 MW; the
		// background demand must roam below and up to that band so the data
		// center's own draw decides the price level.
		if d.MW.Min() > 180 {
			t.Errorf("region %s min %v never below the first step", d.Region, d.MW.Min())
		}
		if d.MW.Max() < 180 || d.MW.Max() > 350 {
			t.Errorf("region %s max %v outside (180, 350)", d.Region, d.MW.Max())
		}
	}
	// Distinct regions differ.
	if ds[0].At(0) == ds[1].At(0) {
		t.Errorf("regions B and C identical at hour 0")
	}
}

func TestSyntheticRegions(t *testing.T) {
	ds, err := SyntheticRegions(13, 100, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 13 {
		t.Fatalf("len = %d", len(ds))
	}
	// Cycle offset applied.
	if ds[3].At(0) <= ds[0].At(0) {
		t.Errorf("cycle offset missing: %v vs %v", ds[3].At(0), ds[0].At(0))
	}
	names := map[string]bool{}
	for _, d := range ds {
		if names[d.Region] {
			t.Errorf("duplicate region %s", d.Region)
		}
		names[d.Region] = true
	}
}

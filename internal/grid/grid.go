// Package grid models the background power demand d_i(t) of the consumers
// sharing each data center's regional power market.
//
// The paper replays a June 2005 demand trace from Rockland Electric (RECO)
// in the PJM system. That trace is not redistributable, so Synthetic
// reconstructs a demand series with the same character — a diurnal cycle in
// the 100–450 MW band of the PJM five-bus pricing policies, mild weekday
// structure and noise — deterministically from a seed. Real traces load via
// timeseries.ReadCSV. The ISO is assumed to publish d_i to the bill capper
// every invocation period (paper §IV-A).
package grid

import (
	"fmt"
	"math"
	"math/rand"

	"billcap/internal/timeseries"
)

// Demand is an hourly background-demand series for one region, in MW.
type Demand struct {
	Region string
	MW     timeseries.Series
}

// At returns the demand of hour i.
func (d Demand) At(i int) float64 { return d.MW[i] }

// Len returns the number of hours.
func (d Demand) Len() int { return len(d.MW) }

// GenConfig parameterizes the synthetic demand generator.
type GenConfig struct {
	Seed     int64
	Hours    int
	BaseMW   float64 // long-run mean demand
	DailyAmp float64 // absolute MW amplitude of the diurnal cycle
	PeakHour float64 // hour of the daily peak
	NoiseMW  float64 // σ of additive Gaussian noise
	FloorMW  float64 // demand never drops below this
}

// Validate reports the first configuration error.
func (c GenConfig) Validate() error {
	switch {
	case c.Hours <= 0:
		return fmt.Errorf("grid: Hours = %d", c.Hours)
	case c.BaseMW <= 0:
		return fmt.Errorf("grid: BaseMW = %v", c.BaseMW)
	case c.DailyAmp < 0 || c.NoiseMW < 0 || c.FloorMW < 0:
		return fmt.Errorf("grid: negative amplitude/noise/floor")
	case c.FloorMW > c.BaseMW:
		return fmt.Errorf("grid: floor %v above base %v", c.FloorMW, c.BaseMW)
	}
	return nil
}

// Synthetic generates one region's demand series.
func Synthetic(region string, c GenConfig) (Demand, error) {
	if err := c.Validate(); err != nil {
		return Demand{}, err
	}
	rng := rand.New(rand.NewSource(c.Seed))
	mw := make(timeseries.Series, c.Hours)
	for h := 0; h < c.Hours; h++ {
		hourOfDay := float64(h % 24)
		v := c.BaseMW + c.DailyAmp*math.Cos(2*math.Pi*(hourOfDay-c.PeakHour)/24)
		if c.NoiseMW > 0 {
			v += c.NoiseMW * rng.NormFloat64()
		}
		if v < c.FloorMW {
			v = c.FloorMW
		}
		mw[h] = v
	}
	return Demand{Region: region, MW: mw}, nil
}

// PaperRegions returns background demand for the paper's three locations
// (B, C, D) over the given horizon: RECO-like diurnal series whose levels put
// the regions within reach of the PJM five-bus price steps (200–620 MW) once
// a cloud-scale data center's draw is added.
func PaperRegions(hours int, seed int64) ([]Demand, error) {
	// Levels sit just below each region's first price step (200/220/180 MW),
	// so that routing tens of MW of data-center load into a region decides
	// whether its price steps up — the regime where price-maker awareness
	// matters. Diurnal swings sweep the regions across the boundaries.
	cfgs := []struct {
		region string
		cfg    GenConfig
	}{
		{"B", GenConfig{BaseMW: 170, DailyAmp: 60, PeakHour: 17, NoiseMW: 7, FloorMW: 90}},
		{"C", GenConfig{BaseMW: 190, DailyAmp: 70, PeakHour: 18, NoiseMW: 8, FloorMW: 95}},
		{"D", GenConfig{BaseMW: 150, DailyAmp: 55, PeakHour: 16, NoiseMW: 6, FloorMW: 80}},
	}
	out := make([]Demand, len(cfgs))
	for i, c := range cfgs {
		c.cfg.Hours = hours
		c.cfg.Seed = seed + int64(i)*7919
		d, err := Synthetic(c.region, c.cfg)
		if err != nil {
			return nil, err
		}
		out[i] = d
	}
	return out, nil
}

// SyntheticRegions returns n regions for scalability experiments, cycling
// the paper regions with per-cycle level offsets.
func SyntheticRegions(n, hours int, seed int64) ([]Demand, error) {
	base, err := PaperRegions(hours, seed)
	if err != nil {
		return nil, err
	}
	out := make([]Demand, n)
	for i := 0; i < n; i++ {
		src := base[i%len(base)]
		offset := float64(i/len(base)) * 12
		mw := src.MW.Clone()
		for h := range mw {
			mw[h] += offset
		}
		out[i] = Demand{Region: fmt.Sprintf("%s#%d", src.Region, i), MW: mw}
	}
	return out, nil
}

package core

import (
	"errors"
	"fmt"
	"io"
	"math"
	"time"

	"billcap/internal/decomp"
	"billcap/internal/lp"
	"billcap/internal/lpparse"
	"billcap/internal/milp"
	"billcap/internal/piecewise"
)

// ErrInfeasible reports that no allocation satisfies the constraints (e.g.
// the hour's arrivals exceed what the fleet can carry within SLA and power
// caps).
var ErrInfeasible = errors.New("core: no feasible allocation")

// SolverStats aggregates branch-and-bound effort across the MILP solves of
// one decision.
type SolverStats struct {
	Solves int
	Nodes  int
	// LPIterations counts simplex pivots across every LP relaxation solved
	// for the decision (all cores).
	LPIterations int
	Incumbents   int
	// Timeouts counts solves that hit their wall-clock deadline and
	// answered with a best-effort incumbent instead of a proven optimum.
	Timeouts int
	// WallTime is the wall-clock time spent inside MILP solves.
	WallTime time.Duration
	// Workers is the largest branch-and-bound worker-pool size any solve in
	// the decision ran with (1 = sequential).
	Workers int
	// PresolveFixed counts integer variables fixed by presolve before the
	// searches started (0 unless the solve cache is enabled).
	PresolveFixed int
	// WarmStarted counts solves that accepted a previous hour's optimum as
	// their starting incumbent.
	WarmStarted int
	// LPRefactorizations and LPBasisUpdates are the sparse LP core's basis
	// work — LU rebuilds and eta-file updates — across the decision's
	// relaxations. Both stay 0 when the dense oracle ran the solves.
	LPRefactorizations int
	LPBasisUpdates     int
	// DecompSolves counts hour solves routed to the dual-decomposition path
	// (Options.Decompose above the fleet-size threshold); all stay 0 on the
	// exact MILP path.
	DecompSolves int
	// DecompIterations is the total subgradient iterations across the
	// decision's decomposition solves.
	DecompIterations int
	// DecompGap is the worst relative primal–dual gap any decomposition
	// solve of the decision proved (0 = every solve closed its gap).
	DecompGap float64
	// DecompDualBound is the latest decomposition solve's Lagrangian bound:
	// a lower bound on cost for min-cost solves, an upper bound on the
	// throughput objective for budget-capped solves.
	DecompDualBound float64
}

func (st *SolverStats) add(sol milp.Solution) {
	st.Solves++
	st.Nodes += sol.Nodes
	st.LPIterations += sol.Pivots
	st.Incumbents += sol.Incumbents
	st.WallTime += sol.Elapsed
	st.PresolveFixed += sol.PresolveFixed
	st.LPRefactorizations += sol.LPRefactorizations
	st.LPBasisUpdates += sol.LPBasisUpdates
	if sol.WarmStarted {
		st.WarmStarted++
	}
	if sol.Workers > st.Workers {
		st.Workers = sol.Workers
	}
	if sol.Status == milp.TimeLimit {
		st.Timeouts++
	}
}

// addDecomp folds one dual-decomposition solve into the stats. The polish
// LPs' pivots count toward LPIterations like any other relaxation work.
func (st *SolverStats) addDecomp(r decomp.Result) {
	st.DecompSolves++
	st.DecompIterations += r.Iterations
	st.LPIterations += r.LPPivots
	st.WallTime += r.Elapsed
	if !math.IsInf(r.Gap, 1) && r.Gap > st.DecompGap {
		st.DecompGap = r.Gap
	}
	st.DecompDualBound = r.DualBound
}

// Accumulate folds another decision's stats into st (simulators and
// hierarchical coordinators sum effort across many decisions).
func (st *SolverStats) Accumulate(o SolverStats) {
	st.Solves += o.Solves
	st.Nodes += o.Nodes
	st.LPIterations += o.LPIterations
	st.Incumbents += o.Incumbents
	st.Timeouts += o.Timeouts
	st.WallTime += o.WallTime
	st.PresolveFixed += o.PresolveFixed
	st.WarmStarted += o.WarmStarted
	st.LPRefactorizations += o.LPRefactorizations
	st.LPBasisUpdates += o.LPBasisUpdates
	st.DecompSolves += o.DecompSolves
	st.DecompIterations += o.DecompIterations
	if o.DecompGap > st.DecompGap {
		st.DecompGap = o.DecompGap
	}
	if o.DecompSolves > 0 {
		st.DecompDualBound = o.DecompDualBound
	}
	if o.Workers > st.Workers {
		st.Workers = o.Workers
	}
}

// SiteAlloc is the optimizer's plan for one site in one hour.
type SiteAlloc struct {
	// Lambda is the workload routed to the site, requests/hour.
	Lambda float64
	// PowerMW is the optimizer's predicted IT draw under its affine model.
	PowerMW float64
	// PriceUSDPerMWh is the price level the optimizer expects to pay for
	// grid energy (the RT price under two-settlement).
	PriceUSDPerMWh float64
	// CostUSD is the site's predicted hourly cost attributable to the
	// decision: the energy charge plus the demand-charge increment.
	CostUSD float64
	// On reports whether the site is powered at all.
	On bool

	// GridMW is the metered grid draw: IT power + battery charge −
	// battery discharge. Equal to PowerMW when the site has no battery.
	GridMW float64
	// ChargeMW and DischargeMW are the hour's planned battery actions.
	ChargeMW, DischargeMW float64
	// EnergyUSD and DemandUSD split CostUSD into tariff components.
	EnergyUSD, DemandUSD float64
}

// Step identifies which branch of the two-step algorithm produced a decision.
type Step int

// Decision branches.
const (
	// StepCostMin: step 1 alone fit the budget (or capping was disabled).
	StepCostMin Step = iota
	// StepBudgetCapped: step 2 admitted all premium and part of the ordinary
	// traffic within the budget.
	StepBudgetCapped
	// StepPremiumOnly: even ordinary-free service exceeded the budget; the
	// budget is knowingly violated to keep premium QoS (paper §V-B).
	StepPremiumOnly
	// StepOverCapacity: arrivals exceeded fleet capacity; the maximum
	// carryable load is served irrespective of budget.
	StepOverCapacity
)

// String names the step.
func (st Step) String() string {
	switch st {
	case StepCostMin:
		return "cost-min"
	case StepBudgetCapped:
		return "budget-capped"
	case StepPremiumOnly:
		return "premium-only"
	case StepOverCapacity:
		return "over-capacity"
	}
	return fmt.Sprintf("Step(%d)", int(st))
}

// Degrade identifies which rung of the graceful-degradation ladder produced
// a decision. The real-time controller must answer every invocation period,
// so when the optimal path fails it steps down the ladder instead of
// returning nothing; the rung is recorded for traces and metrics.
type Degrade int

// Ladder rungs, in descending order of answer quality.
const (
	// DegradeNone: the MILP proved optimality within its budget.
	DegradeNone Degrade = iota
	// DegradeTimeLimit: a solve hit its wall-clock deadline; the decision is
	// its best feasible incumbent, not a proven optimum.
	DegradeTimeLimit
	// DegradeFallback: the MILP failed (panic, error, forced fault) and the
	// greedy dispatcher produced the plan.
	DegradeFallback
	// DegradeAudit: the MILP/decomp path answered, but the independent
	// feasibility audit rejected the allocation (capacity, balance, budget or
	// NaN violation); the greedy dispatcher's plan was used instead. Same
	// answer quality as DegradeFallback, but the cause — a wrong-but-plausible
	// solver answer — is worth distinguishing in traces and metrics.
	DegradeAudit
	// DegradeStale: both solvers failed; a recent last-known-good decision
	// was reused within the staleness bound.
	DegradeStale
	// DegradeShed: everything failed with nothing to reuse; the controller
	// sheds the hour's load (all sites off) rather than crash.
	DegradeShed
)

// String names the rung.
func (d Degrade) String() string {
	switch d {
	case DegradeNone:
		return "none"
	case DegradeTimeLimit:
		return "time-limit"
	case DegradeFallback:
		return "fallback"
	case DegradeAudit:
		return "audit-reject"
	case DegradeStale:
		return "stale"
	case DegradeShed:
		return "shed"
	}
	return fmt.Sprintf("Degrade(%d)", int(d))
}

// Decision is the capper's output for one hour.
type Decision struct {
	Sites []SiteAlloc
	// PredictedCostUSD is the hour's predicted bill under the optimizer's
	// models: energy + demand-charge increment + two-settlement position.
	// (Energy-only inputs reduce it to the paper's Σ Pr·p.)
	PredictedCostUSD float64
	// EnergyCostUSD, DemandChargeUSD and SettlementUSD decompose
	// PredictedCostUSD by tariff component. SettlementUSD is the
	// decision-independent day-ahead position and can be negative.
	EnergyCostUSD, DemandChargeUSD, SettlementUSD float64
	// Served splits the admitted traffic.
	Served, ServedPremium, ServedOrdinary float64
	Step                                  Step
	// Degraded records which ladder rung produced the decision
	// (DegradeNone for a clean optimal solve).
	Degraded Degrade
	Solver   SolverStats
}

// siteVars holds the MILP variable handles of one site, plus the indices of
// the rows whose coefficients move hour to hour (the solve cache patches
// exactly these on a cloned skeleton instead of rebuilding the model).
type siteVars struct {
	x      int // scaled workload
	y      int // on/off binary
	enc    piecewise.Encoded
	powRow int // affine power link: x coefficient is −a·scale
	capRow int // capacity link: y coefficient is −xmax/scale

	// Tariff-engine variables, −1 when absent. The solve cache never sees
	// them: tariff hours bypass the skeleton cache (HourInput.hasTariffExtras).
	chg  int // battery charge draw, MW
	dis  int // battery discharge, MW
	peak int // demand-charge exceedance above the ledger's peak-so-far, MW
}

// lambdaScale returns the scaling that keeps workload variables around ≤1e3
// so the tableau mixes well with MW- and binary-magnitude rows.
func lambdaScale(totalLambda float64) float64 {
	return math.Max(1, totalLambda/1e3)
}

// buildBase assembles the shared MILP skeleton: per-site workload and on/off
// variables, the affine power link, capacity rows and the price encoding.
// maxLoad is the hour's total workload, which tightens the on/off big-M: the
// raw site capacity can be ~1e4× the scaled workload for light hours, wide
// enough that a y within integrality tolerance of zero still licenses the
// whole hour's load (an "all sites off" answer that serves everything).
// min(capacity, hour's load) keeps the link coefficient at the workload's
// own magnitude, so y is forced to an honest 1 whenever x carries load.
func (s *System) buildBase(in HourInput, scale, maxLoad float64) (*milp.Problem, []siteVars, error) {
	m := milp.NewProblem()
	vars := make([]siteVars, len(s.Sites))
	for i, sm := range s.models {
		name := sm.site.DC.Name
		x := m.AddVar(name+".x", 0)
		y := m.AddBinVar(name+".y", 0)
		enc, err := piecewise.Encode(m, s.viewFn(i).Fn, in.DemandMW[i],
			sm.site.DC.PowerCapMW, sm.site.DC.RoundingSlackMW(), name)
		if err != nil {
			return nil, nil, fmt.Errorf("core: site %s: %w", name, err)
		}
		// Exactly one price segment is active iff the site is on.
		sel := append(enc.SelectorTerms(), lp.Term{Var: y, Coef: -1})
		m.AddConstraint(sel, lp.EQ, 0)
		sv := siteVars{x: x, y: y, enc: enc, chg: -1, dis: -1, peak: -1}
		// Grid link: the encoded power variable is the *metered* draw (that
		// is what the tariff and the supplier cap see). Without a battery it
		// equals the IT draw and this is the paper's affine power link
		// p − a·scale·x − b·y = 0; with one it is p − a·scale·x − b·y − c + g = 0.
		link := []lp.Term{
			{Var: enc.Power, Coef: 1},
			{Var: x, Coef: -sm.affine.A * scale},
			{Var: y, Coef: -sm.affine.B},
		}
		if bat := in.battery(i); bat.active() && !in.SiteDown(i) {
			// Charge/discharge bounded natively by rate, room and charge:
			// η·c ≤ capacity − SoC and g ≤ SoC make any within-bounds plan
			// realizable by battery.Battery without inter-hour rows.
			room := math.Max(0, bat.CapacityMWh-bat.SoCMWh)
			sv.chg = m.AddVar(name+".bchg", 0)
			m.SetVarBounds(sv.chg, 0, math.Min(bat.MaxChargeMW, room/bat.Efficiency))
			sv.dis = m.AddVar(name+".bdis", 0)
			m.SetVarBounds(sv.dis, 0, math.Min(bat.MaxDischargeMW, bat.SoCMWh))
			link = append(link,
				lp.Term{Var: sv.chg, Coef: -1},
				lp.Term{Var: sv.dis, Coef: 1})
			// No export: the discharge can at most offset the IT draw
			// (g ≤ a·scale·x + b·y); the meter never runs backwards.
			m.AddConstraint([]lp.Term{
				{Var: sv.dis, Coef: 1},
				{Var: x, Coef: -sm.affine.A * scale},
				{Var: y, Coef: -sm.affine.B},
			}, lp.LE, 0)
		}
		powRow := m.NumConstraints()
		m.AddConstraint(link, lp.EQ, 0)
		if in.DemandChargeUSDPerMW > 0 {
			// Demand-charge exceedance: e ≥ grid − peak-so-far, e ≥ 0. The
			// objective prices e at the demand rate, so e settles at
			// max(0, grid − peak) — the hour pays only for raising the
			// billing-period peak.
			sv.peak = m.AddVar(name+".peak", 0)
			m.AddConstraint([]lp.Term{
				{Var: enc.Power, Coef: 1},
				{Var: sv.peak, Coef: -1},
			}, lp.LE, in.peak(i))
		}
		// Capacity: x ≤ min(xmax, λ)·y links load to the on/off state.
		xmax := math.Min(sm.maxLambda, maxLoad)
		capRow := m.NumConstraints()
		m.AddConstraint([]lp.Term{
			{Var: x, Coef: 1},
			{Var: y, Coef: -xmax / scale},
		}, lp.LE, 0)
		if in.SiteDown(i) {
			// Outage: force the site off; the capacity row then pins x = 0.
			m.AddConstraint([]lp.Term{{Var: y, Coef: 1}}, lp.EQ, 0)
		}
		sv.powRow, sv.capRow = powRow, capRow
		vars[i] = sv
	}
	return m, vars, nil
}

// costTerms collects the hour's real-money cost terms: the energy charge —
// Σᵢ Σₖ rate·p under spot settlement, RTᵢ·gridᵢ under two-settlement — plus
// the demand-charge exceedance terms. These are what the budget row bounds.
// The two-settlement position (DA−RT)·C is a constant handled by the caller.
func (s *System) costTerms(vars []siteVars, in HourInput) []lp.Term {
	var out []lp.Term
	for i, v := range vars {
		if in.twoSettlement() {
			out = append(out, lp.Term{Var: v.enc.Power, Coef: in.RTPriceUSDPerMWh[i]})
		} else {
			out = append(out, v.enc.CostTerms()...)
		}
		if v.peak >= 0 {
			out = append(out, lp.Term{Var: v.peak, Coef: in.DemandChargeUSDPerMW})
		}
	}
	return out
}

// batteryValueTerms prices stored energy in the objective: discharging g MW
// spends ν·g of banked value, charging c MW banks ν·η·c. Not money — they
// never enter the budget row — but they are what makes the battery arbitrage
// instead of draining on sight.
func batteryValueTerms(vars []siteVars, in HourInput) []lp.Term {
	var out []lp.Term
	for i, v := range vars {
		if v.chg < 0 {
			continue
		}
		bat := in.battery(i)
		if bat.ValueUSDPerMWh <= 0 {
			continue
		}
		out = append(out,
			lp.Term{Var: v.dis, Coef: bat.ValueUSDPerMWh},
			lp.Term{Var: v.chg, Coef: -bat.ValueUSDPerMWh * bat.Efficiency})
	}
	return out
}

// decisionFrom extracts per-site allocations from a solved MILP. Cost
// components are re-derived from the solution *values* (rate × grid,
// rate × max(0, grid − peak)) rather than read off objective terms, so the
// claims the audit re-checks are exact by construction.
func (s *System) decisionFrom(sol milp.Solution, vars []siteVars, scale float64, in HourInput) Decision {
	d := Decision{Sites: make([]SiteAlloc, len(vars))}
	for i, v := range vars {
		lam := sol.X[v.x] * scale
		if lam < 0 {
			lam = 0
		}
		on := sol.X[v.y] > 0.5
		if !on {
			lam = 0
		}
		alloc := SiteAlloc{Lambda: lam, On: on}
		if on {
			alloc.GridMW = sol.X[v.enc.Power]
			if v.chg >= 0 {
				alloc.ChargeMW = math.Max(0, sol.X[v.chg])
				alloc.DischargeMW = math.Max(0, sol.X[v.dis])
			}
			alloc.PowerMW = alloc.GridMW - alloc.ChargeMW + alloc.DischargeMW
			if in.twoSettlement() {
				alloc.PriceUSDPerMWh = in.RTPriceUSDPerMWh[i]
				alloc.EnergyUSD = alloc.PriceUSDPerMWh * alloc.GridMW
			} else {
				for j, pv := range v.enc.SegPower {
					alloc.EnergyUSD += v.enc.SegRate[j] * sol.X[pv]
				}
				for j, zv := range v.enc.SegBin {
					if sol.X[zv] > 0.5 {
						alloc.PriceUSDPerMWh = v.enc.SegRate[j]
						break
					}
				}
			}
			if in.DemandChargeUSDPerMW > 0 {
				alloc.DemandUSD = in.DemandChargeUSDPerMW * math.Max(0, alloc.GridMW-in.peak(i))
			}
			alloc.CostUSD = alloc.EnergyUSD + alloc.DemandUSD
		}
		d.Sites[i] = alloc
		d.EnergyCostUSD += alloc.EnergyUSD
		d.DemandChargeUSD += alloc.DemandUSD
		d.Served += lam
	}
	d.SettlementUSD = s.settlementUSD(in)
	d.PredictedCostUSD = d.EnergyCostUSD + d.DemandChargeUSD + d.SettlementUSD
	return d
}

// MinimizeCost solves step 1 (paper eq. 1–2) for the given workload: route
// lambda requests/hour at minimum predicted electricity cost subject to the
// SLA, per-site power caps and the optimizer's price model.
func (s *System) MinimizeCost(in HourInput, lambda float64, stats *SolverStats) (Decision, error) {
	return s.minimizeCost(in, lambda, stats, s.solveOptions(), kindMinCostTotal)
}

func (s *System) minimizeCost(in HourInput, lambda float64, stats *SolverStats, so milp.Options, kind solveKind) (Decision, error) {
	if err := s.ValidateInput(in); err != nil {
		return Decision{}, err
	}
	if lambda < 0 || math.IsNaN(lambda) {
		return Decision{}, fmt.Errorf("%w: negative workload %v", ErrBadInput, lambda)
	}
	scale := lambdaScale(lambda)
	m, vars, sig, err := s.buildHour(in, scale, lambda)
	if err != nil {
		return Decision{}, err
	}
	// Σ x = λ: all arrivals must be served in step 1.
	terms := make([]lp.Term, len(vars))
	for i, v := range vars {
		terms[i] = lp.Term{Var: v.x, Coef: 1}
	}
	m.AddConstraint(terms, lp.EQ, lambda/scale)
	for _, t := range s.costTerms(vars, in) {
		m.SetObjectiveCoef(t.Var, m.ObjectiveCoef(t.Var)+t.Coef)
	}
	for _, t := range batteryValueTerms(vars, in) {
		m.SetObjectiveCoef(t.Var, m.ObjectiveCoef(t.Var)+t.Coef)
	}
	so = s.warmOptions(so, kind, sig, m, vars, in, scale, lambda, true, math.Inf(1))
	sol := m.SolveWithOptions(so)
	if stats != nil {
		stats.add(sol)
	}
	s.rememberSolve(kind, sig, sol, m, vars, scale)
	switch sol.Status {
	case milp.Optimal:
	case milp.TimeLimit:
		if len(sol.X) == 0 {
			return Decision{}, fmt.Errorf("core: cost minimization timed out with no incumbent")
		}
	case milp.Infeasible:
		return Decision{}, fmt.Errorf("%w: %v req/h over %d sites", ErrInfeasible, lambda, len(vars))
	default:
		return Decision{}, fmt.Errorf("core: cost minimization ended %v", sol.Status)
	}
	d := s.decisionFrom(sol, vars, scale, in)
	if sol.Status == milp.TimeLimit {
		d.Degraded = DegradeTimeLimit
	}
	if stats != nil {
		d.Solver = *stats
	}
	return d, nil
}

// WriteHourModel builds the hour's Step-1 cost-minimization MILP and writes
// it in the lp_solve-style text format, so an operator can inspect or
// re-solve any decision with cmd/milpsolve:
//
//	capperd says hour 412 looks odd → dump it → milpsolve hour412.lp
func (s *System) WriteHourModel(w io.Writer, in HourInput, lambda float64) error {
	if err := s.ValidateInput(in); err != nil {
		return err
	}
	if lambda < 0 || math.IsNaN(lambda) {
		return fmt.Errorf("%w: negative workload %v", ErrBadInput, lambda)
	}
	scale := lambdaScale(lambda)
	m, vars, err := s.buildBase(in, scale, lambda)
	if err != nil {
		return err
	}
	terms := make([]lp.Term, len(vars))
	for i, v := range vars {
		terms[i] = lp.Term{Var: v.x, Coef: 1}
	}
	m.AddConstraint(terms, lp.EQ, lambda/scale)
	for _, t := range s.costTerms(vars, in) {
		m.SetObjectiveCoef(t.Var, m.ObjectiveCoef(t.Var)+t.Coef)
	}
	for _, t := range batteryValueTerms(vars, in) {
		m.SetObjectiveCoef(t.Var, m.ObjectiveCoef(t.Var)+t.Coef)
	}
	return lpparse.Write(w, m)
}

// MaximizeThroughput solves step 2 (paper eq. 8–9): admit as many requests
// as possible (up to the hour's arrivals) while keeping predicted cost within
// the budget. Ties in throughput break toward cheaper allocations via a tiny
// cost penalty.
func (s *System) MaximizeThroughput(in HourInput, stats *SolverStats) (Decision, error) {
	return s.maximizeThroughput(in, stats, s.solveOptions(), kindMaxThroughput)
}

func (s *System) maximizeThroughput(in HourInput, stats *SolverStats, so milp.Options, kind solveKind) (Decision, error) {
	if err := s.ValidateInput(in); err != nil {
		return Decision{}, err
	}
	scale := lambdaScale(in.TotalLambda)
	m, vars, sig, err := s.buildHour(in, scale, in.TotalLambda)
	if err != nil {
		return Decision{}, err
	}
	// Σ x ≤ λ: cannot serve more than arrives.
	terms := make([]lp.Term, len(vars))
	for i, v := range vars {
		terms[i] = lp.Term{Var: v.x, Coef: 1}
	}
	m.AddConstraint(terms, lp.LE, in.TotalLambda/scale)
	// Budget row (omitted when capping is off). The two-settlement position
	// is a sunk constant, so the controllable spend must fit what remains of
	// the budget after it.
	if !math.IsInf(in.BudgetUSD, 1) {
		m.AddConstraint(s.costTerms(vars, in), lp.LE, math.Max(0, in.BudgetUSD-s.settlementUSD(in)))
	}
	// max Σ x − ε·cost.
	m.SetMaximize(true)
	for _, v := range vars {
		m.SetObjectiveCoef(v.x, 1)
	}
	eps := s.opts.epsilon()
	for _, t := range s.costTerms(vars, in) {
		m.SetObjectiveCoef(t.Var, m.ObjectiveCoef(t.Var)-eps*t.Coef)
	}
	for _, t := range batteryValueTerms(vars, in) {
		m.SetObjectiveCoef(t.Var, m.ObjectiveCoef(t.Var)-eps*t.Coef)
	}
	so = s.warmOptions(so, kind, sig, m, vars, in, scale, in.TotalLambda, false, in.BudgetUSD)
	sol := m.SolveWithOptions(so)
	if stats != nil {
		stats.add(sol)
	}
	s.rememberSolve(kind, sig, sol, m, vars, scale)
	switch {
	case sol.Status == milp.Optimal:
	case sol.Status == milp.TimeLimit && len(sol.X) > 0:
	default:
		// x = 0 with all sites off is always feasible, so anything but
		// optimal (or a timed-out incumbent) indicates a solver-level
		// failure worth surfacing.
		return Decision{}, fmt.Errorf("core: throughput maximization ended %v", sol.Status)
	}
	d := s.decisionFrom(sol, vars, scale, in)
	if sol.Status == milp.TimeLimit {
		d.Degraded = DegradeTimeLimit
	}
	if stats != nil {
		d.Solver = *stats
	}
	return d, nil
}

package core

import (
	"math"
	"testing"

	"billcap/internal/dcmodel"
	"billcap/internal/pricing"
)

// syntheticSystem builds an n-site fleet from the synthetic generators used
// by the scalability experiments.
func syntheticSystem(t *testing.T, n int, opts Options) *System {
	t.Helper()
	s, err := NewSystem(dcmodel.SyntheticSites(n), pricing.Synthetic(n), opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func syntheticDemand(n int) []float64 {
	d := make([]float64, n)
	for i := range d {
		d[i] = 150 + 15*float64(i%4)
	}
	return d
}

// TestDecomposeMatchesExact drives the full two-step decision through both
// solve paths on the same 8-site fleet and requires the decomposition to land
// within 1% of the exact MILP on every branch of the algorithm.
func TestDecomposeMatchesExact(t *testing.T) {
	const n = 8
	exact := syntheticSystem(t, n, Options{})
	dec := syntheticSystem(t, n, Options{Decompose: true, DecomposeThreshold: 1})
	demand := syntheticDemand(n)
	cap := exact.MaxThroughput()

	// Find an uncapped cost to derive binding budgets from.
	base, err := exact.DecideHour(HourInput{
		TotalLambda: 0.7 * cap, PremiumLambda: 0.3 * cap,
		DemandMW: demand, BudgetUSD: math.Inf(1),
	})
	if err != nil {
		t.Fatal(err)
	}

	down := make([]bool, n)
	down[2] = true
	cases := []struct {
		name string
		in   HourInput
	}{
		{"uncapped", HourInput{TotalLambda: 0.7 * cap, PremiumLambda: 0.3 * cap,
			DemandMW: demand, BudgetUSD: math.Inf(1)}},
		{"tight budget", HourInput{TotalLambda: 0.7 * cap, PremiumLambda: 0.2 * cap,
			DemandMW: demand, BudgetUSD: 0.6 * base.PredictedCostUSD}},
		{"premium only", HourInput{TotalLambda: 0.7 * cap, PremiumLambda: 0.65 * cap,
			DemandMW: demand, BudgetUSD: 0.3 * base.PredictedCostUSD}},
		{"site down", HourInput{TotalLambda: 0.5 * cap, PremiumLambda: 0.1 * cap,
			DemandMW: demand, BudgetUSD: math.Inf(1), Down: down}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ed, err := exact.DecideHour(tc.in)
			if err != nil {
				t.Fatal(err)
			}
			dd, err := dec.DecideHour(tc.in)
			if err != nil {
				t.Fatal(err)
			}
			if ed.Step != dd.Step {
				t.Errorf("step %v (decomp) != %v (exact)", dd.Step, ed.Step)
			}
			if dd.Served < ed.Served*0.99-1e-9 {
				t.Errorf("served %v, exact %v", dd.Served, ed.Served)
			}
			if dd.Step == StepCostMin && dd.PredictedCostUSD > ed.PredictedCostUSD*1.01+1e-9 {
				t.Errorf("cost %v, exact %v", dd.PredictedCostUSD, ed.PredictedCostUSD)
			}
			if dd.Step != StepPremiumOnly && !math.IsInf(tc.in.BudgetUSD, 1) &&
				dd.PredictedCostUSD > tc.in.BudgetUSD*(1+1e-6) {
				t.Errorf("cost %v over budget %v", dd.PredictedCostUSD, tc.in.BudgetUSD)
			}
			if dd.Solver.DecompSolves == 0 || dd.Solver.DecompIterations == 0 {
				t.Errorf("decomp path reported no decomposition effort: %+v", dd.Solver)
			}
			if dd.Solver.Nodes != 0 {
				t.Errorf("decomp path still explored %d MILP nodes", dd.Solver.Nodes)
			}
			if ed.Solver.DecompSolves != 0 {
				t.Errorf("exact path reported %d decomposition solves", ed.Solver.DecompSolves)
			}
			for i := range dd.Sites {
				if tc.in.SiteDown(i) && dd.Sites[i].On {
					t.Errorf("down site %d left on", i)
				}
			}
		})
	}
}

// TestDecomposeBelowThresholdStaysExact keeps the exact solver as the oracle
// at or below the fleet-size threshold even when decomposition is enabled.
func TestDecomposeBelowThresholdStaysExact(t *testing.T) {
	const n = 8
	s := syntheticSystem(t, n, Options{Decompose: true}) // default threshold 20
	d, err := s.DecideHour(HourInput{
		TotalLambda: 0.5 * s.MaxThroughput(), PremiumLambda: 0,
		DemandMW: syntheticDemand(n), BudgetUSD: math.Inf(1),
	})
	if err != nil {
		t.Fatal(err)
	}
	if d.Solver.DecompSolves != 0 {
		t.Errorf("below-threshold decision used %d decomposition solves", d.Solver.DecompSolves)
	}
	if d.Solver.Solves == 0 {
		t.Error("below-threshold decision reported no MILP solves")
	}
}

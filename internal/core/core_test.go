package core

import (
	"errors"
	"math"
	"testing"

	"billcap/internal/dcmodel"
	"billcap/internal/pricing"
)

func paperSystem(t *testing.T, opts Options) *System {
	t.Helper()
	s, err := NewSystem(dcmodel.PaperSites(), pricing.PaperPolicies(pricing.Policy1), opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func demand3() []float64 { return []float64{170, 190, 150} }

func TestNewSystemValidation(t *testing.T) {
	if _, err := NewSystem(nil, nil, Options{}); err == nil {
		t.Error("empty system accepted")
	}
	if _, err := NewSystem(dcmodel.PaperSites(), pricing.PaperPolicies(pricing.Policy1)[:2], Options{}); err == nil {
		t.Error("site/policy count mismatch accepted")
	}
	bad := dcmodel.PaperSites()
	bad[0].CoolingEff = -1
	if _, err := NewSystem(bad, pricing.PaperPolicies(pricing.Policy1), Options{}); err == nil {
		t.Error("invalid site accepted")
	}
}

func TestValidateInput(t *testing.T) {
	s := paperSystem(t, Options{})
	ok := HourInput{TotalLambda: 1e11, PremiumLambda: 8e10, DemandMW: demand3(), BudgetUSD: math.Inf(1)}
	if err := s.ValidateInput(ok); err != nil {
		t.Fatalf("good input rejected: %v", err)
	}
	bad := []HourInput{
		{TotalLambda: -1, DemandMW: demand3(), BudgetUSD: 1},
		{TotalLambda: 1, PremiumLambda: 2, DemandMW: demand3(), BudgetUSD: 1},
		{TotalLambda: 1, DemandMW: []float64{1}, BudgetUSD: 1},
		{TotalLambda: 1, DemandMW: demand3(), BudgetUSD: -5},
		{TotalLambda: 1, DemandMW: []float64{-1, 2, 3}, BudgetUSD: 1},
		{TotalLambda: 1, DemandMW: demand3(), BudgetUSD: math.NaN()},
	}
	for i, in := range bad {
		if err := s.ValidateInput(in); err == nil {
			t.Errorf("bad input %d accepted", i)
		}
	}
}

func TestScaleLoad(t *testing.T) {
	in := HourInput{Hour: 3, TotalLambda: 100, PremiumLambda: 40, DemandMW: demand3(), BudgetUSD: 7}
	up := in.ScaleLoad(1.5)
	if up.TotalLambda != 150 || up.PremiumLambda != 60 {
		t.Errorf("scaled to %v/%v", up.TotalLambda, up.PremiumLambda)
	}
	if up.Hour != 3 || up.BudgetUSD != 7 || len(up.DemandMW) != 3 {
		t.Error("ScaleLoad touched non-load fields")
	}
	if in.TotalLambda != 100 {
		t.Error("ScaleLoad mutated the receiver")
	}
	for _, f := range []float64{0, -2, math.NaN(), math.Inf(1)} {
		if got := in.ScaleLoad(f); got.TotalLambda != 100 || got.PremiumLambda != 40 {
			t.Errorf("ScaleLoad(%v) changed loads to %v/%v", f, got.TotalLambda, got.PremiumLambda)
		}
	}
}

func TestMinimizeCostServesEverything(t *testing.T) {
	s := paperSystem(t, Options{})
	in := HourInput{TotalLambda: 1.5e12, PremiumLambda: 1.2e12, DemandMW: demand3(), BudgetUSD: math.Inf(1)}
	var stats SolverStats
	d, err := s.MinimizeCost(in, in.TotalLambda, &stats)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d.Served-in.TotalLambda) > 1e-6*in.TotalLambda {
		t.Errorf("served %v, want all of %v", d.Served, in.TotalLambda)
	}
	if d.PredictedCostUSD <= 0 {
		t.Errorf("predicted cost = %v, want positive", d.PredictedCostUSD)
	}
	if stats.Solves != 1 || stats.Nodes < 1 {
		t.Errorf("stats = %+v", stats)
	}
	// Realization tracks the prediction within the integer-rounding slack.
	r, err := s.Realize(d.Lambdas(), in.DemandMW)
	if err != nil {
		t.Fatal(err)
	}
	if r.DroppedLambda > 1e-6*in.TotalLambda {
		t.Errorf("dropped %v", r.DroppedLambda)
	}
	if r.CapViolations != 0 {
		t.Errorf("cap violations = %d", r.CapViolations)
	}
	rel := math.Abs(r.CostUSD-d.PredictedCostUSD) / d.PredictedCostUSD
	if rel > 0.02 {
		t.Errorf("realized cost %v vs predicted %v (rel %.3f)", r.CostUSD, d.PredictedCostUSD, rel)
	}
}

func TestMinimizeCostZeroLoad(t *testing.T) {
	s := paperSystem(t, Options{})
	in := HourInput{TotalLambda: 0, PremiumLambda: 0, DemandMW: demand3(), BudgetUSD: math.Inf(1)}
	d, err := s.MinimizeCost(in, 0, &SolverStats{})
	if err != nil {
		t.Fatal(err)
	}
	if d.PredictedCostUSD != 0 || d.Served != 0 {
		t.Errorf("zero load: cost %v served %v", d.PredictedCostUSD, d.Served)
	}
}

func TestMinimizeCostInfeasibleOverCapacity(t *testing.T) {
	s := paperSystem(t, Options{})
	over := 2 * s.MaxThroughput()
	in := HourInput{TotalLambda: over, PremiumLambda: 0, DemandMW: demand3(), BudgetUSD: math.Inf(1)}
	_, err := s.MinimizeCost(in, over, &SolverStats{})
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

func TestLMPAwareBeatsPriceTaker(t *testing.T) {
	// The headline claim (paper Fig. 3): at identical load, the LMP-aware
	// optimizer's realized bill is never above the price-taker baselines',
	// and is strictly lower somewhere in the load range.
	lmp := paperSystem(t, Options{Scope: dcmodel.FullPower, PriceView: ViewLMP})
	avg := paperSystem(t, Options{Scope: dcmodel.ServerOnly, PriceView: ViewFlatAvg})
	low := paperSystem(t, Options{Scope: dcmodel.ServerOnly, PriceView: ViewFlatLow})

	strictlyBetter := 0
	for _, lam := range []float64{4e11, 9e11, 1.4e12, 1.9e12, 2.4e12} {
		in := HourInput{TotalLambda: lam, PremiumLambda: 0.8 * lam, DemandMW: demand3(), BudgetUSD: math.Inf(1)}
		dl, err := lmp.MinimizeCost(in, lam, &SolverStats{})
		if err != nil {
			t.Fatalf("λ=%v lmp: %v", lam, err)
		}
		rl, err := lmp.Realize(dl.Lambdas(), in.DemandMW)
		if err != nil {
			t.Fatal(err)
		}
		for _, base := range []*System{avg, low} {
			db, err := base.MinimizeCost(in, lam, &SolverStats{})
			if err != nil {
				t.Fatalf("λ=%v baseline: %v", lam, err)
			}
			rb, err := lmp.Realize(db.Lambdas(), in.DemandMW) // bill at the TRUE policy
			if err != nil {
				t.Fatal(err)
			}
			if rl.BillUSD() > rb.BillUSD()*1.001 {
				t.Errorf("λ=%v: LMP-aware bill %v above baseline %v", lam, rl.BillUSD(), rb.BillUSD())
			}
			if rl.BillUSD() < rb.BillUSD()*0.995 {
				strictlyBetter++
			}
		}
	}
	if strictlyBetter == 0 {
		t.Error("LMP-aware never strictly beat the price takers across the load range")
	}
}

func TestDecideHourAbundantBudget(t *testing.T) {
	s := paperSystem(t, Options{})
	in := HourInput{TotalLambda: 1e12, PremiumLambda: 8e11, DemandMW: demand3(), BudgetUSD: 1e9}
	d, err := s.DecideHour(in)
	if err != nil {
		t.Fatal(err)
	}
	if d.Step != StepCostMin {
		t.Errorf("step = %v, want cost-min", d.Step)
	}
	if math.Abs(d.ServedPremium-8e11) > 1 || math.Abs(d.ServedOrdinary-2e11) > 1 {
		t.Errorf("served premium/ordinary = %v/%v", d.ServedPremium, d.ServedOrdinary)
	}
}

func TestDecideHourUncapped(t *testing.T) {
	s := paperSystem(t, Options{})
	in := HourInput{TotalLambda: 1e12, PremiumLambda: 8e11, DemandMW: demand3(), BudgetUSD: math.Inf(1)}
	d, err := s.DecideHour(in)
	if err != nil {
		t.Fatal(err)
	}
	if d.Step != StepCostMin {
		t.Errorf("step = %v, want cost-min", d.Step)
	}
}

func TestDecideHourTightBudgetKeepsPremium(t *testing.T) {
	s := paperSystem(t, Options{})
	lam := 1.5e12
	in := HourInput{TotalLambda: lam, PremiumLambda: 0.8 * lam, DemandMW: demand3(), BudgetUSD: math.Inf(1)}
	// Find the uncapped cost, then budget below it but above premium-only.
	full, err := s.DecideHour(in)
	if err != nil {
		t.Fatal(err)
	}
	var prem Decision
	prem, err = s.MinimizeCost(in, in.PremiumLambda, &SolverStats{})
	if err != nil {
		t.Fatal(err)
	}
	in.BudgetUSD = (full.PredictedCostUSD + prem.PredictedCostUSD) / 2
	d, err := s.DecideHour(in)
	if err != nil {
		t.Fatal(err)
	}
	if d.Step != StepBudgetCapped {
		t.Fatalf("step = %v, want budget-capped (budget %v between %v and %v)",
			d.Step, in.BudgetUSD, prem.PredictedCostUSD, full.PredictedCostUSD)
	}
	if d.ServedPremium < in.PremiumLambda*(1-1e-9) {
		t.Errorf("premium served %v < %v", d.ServedPremium, in.PremiumLambda)
	}
	if d.ServedOrdinary >= 0.2*lam {
		t.Errorf("ordinary served %v, want partial (< %v)", d.ServedOrdinary, 0.2*lam)
	}
	if d.PredictedCostUSD > in.BudgetUSD*(1+1e-6) {
		t.Errorf("predicted cost %v over budget %v", d.PredictedCostUSD, in.BudgetUSD)
	}
}

func TestDecideHourPremiumOnlyViolatesBudget(t *testing.T) {
	s := paperSystem(t, Options{})
	lam := 1.5e12
	in := HourInput{TotalLambda: lam, PremiumLambda: 0.8 * lam, DemandMW: demand3(), BudgetUSD: 1}
	d, err := s.DecideHour(in)
	if err != nil {
		t.Fatal(err)
	}
	if d.Step != StepPremiumOnly {
		t.Fatalf("step = %v, want premium-only", d.Step)
	}
	if math.Abs(d.ServedPremium-in.PremiumLambda) > 1e-6*lam {
		t.Errorf("premium served %v, want all %v", d.ServedPremium, in.PremiumLambda)
	}
	if d.ServedOrdinary != 0 {
		t.Errorf("ordinary served %v, want 0", d.ServedOrdinary)
	}
	if d.PredictedCostUSD <= in.BudgetUSD {
		t.Errorf("cost %v did not exceed the token budget", d.PredictedCostUSD)
	}
}

func TestDecideHourOverCapacity(t *testing.T) {
	s := paperSystem(t, Options{})
	over := 1.5 * s.MaxThroughput()
	in := HourInput{TotalLambda: over, PremiumLambda: 0.5 * over, DemandMW: demand3(), BudgetUSD: math.Inf(1)}
	d, err := s.DecideHour(in)
	if err != nil {
		t.Fatal(err)
	}
	if d.Step != StepOverCapacity {
		t.Fatalf("step = %v, want over-capacity", d.Step)
	}
	if d.Served > s.MaxThroughput()*(1+1e-9) {
		t.Errorf("served %v beyond capacity %v", d.Served, s.MaxThroughput())
	}
	if d.Served < 0.95*s.MaxThroughput() {
		t.Errorf("served %v, want close to capacity %v", d.Served, s.MaxThroughput())
	}
}

func TestDecideHourPremiumOverCapacity(t *testing.T) {
	s := paperSystem(t, Options{})
	over := 1.5 * s.MaxThroughput()
	in := HourInput{TotalLambda: over, PremiumLambda: over, DemandMW: demand3(), BudgetUSD: 1}
	d, err := s.DecideHour(in)
	if err != nil {
		t.Fatal(err)
	}
	if d.Step != StepOverCapacity {
		t.Fatalf("step = %v, want over-capacity", d.Step)
	}
	if d.ServedOrdinary != 0 {
		t.Errorf("ordinary served %v, want 0", d.ServedOrdinary)
	}
}

func TestRealizeValidation(t *testing.T) {
	s := paperSystem(t, Options{})
	if _, err := s.Realize([]float64{1}, demand3()); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := s.Realize([]float64{-1, 0, 0}, demand3()); err == nil {
		t.Error("negative load accepted")
	}
}

func TestRealizeClampsToPhysicalCapacity(t *testing.T) {
	s := paperSystem(t, Options{})
	huge := []float64{1e14, 0, 0}
	r, err := s.Realize(huge, demand3())
	if err != nil {
		t.Fatal(err)
	}
	if r.DroppedLambda <= 0 {
		t.Errorf("no load dropped despite impossible allocation")
	}
	if r.Sites[0].CapViolated == false {
		t.Errorf("site at physical max should violate its power cap")
	}
}

func TestRealizePriceMatchesPolicy(t *testing.T) {
	s := paperSystem(t, Options{})
	lams := []float64{5e11, 3e11, 4e11}
	d := demand3()
	r, err := s.Realize(lams, d)
	if err != nil {
		t.Fatal(err)
	}
	for i, sr := range r.Sites {
		wantPrice := s.Sites[i].Policy.Price(d[i] + sr.PowerMW)
		if sr.PriceUSDPerMWh != wantPrice {
			t.Errorf("site %d price %v, want %v", i, sr.PriceUSDPerMWh, wantPrice)
		}
		if math.Abs(sr.CostUSD-wantPrice*sr.PowerMW) > 1e-9 {
			t.Errorf("site %d cost %v, want price×power %v", i, sr.CostUSD, wantPrice*sr.PowerMW)
		}
		if sr.RespTimeHours > s.Sites[i].DC.RespSLAHours*(1+1e-9) {
			t.Errorf("site %d response time %v above SLA %v", i, sr.RespTimeHours, s.Sites[i].DC.RespSLAHours)
		}
	}
}

func TestStepAndViewStrings(t *testing.T) {
	steps := map[Step]string{
		StepCostMin: "cost-min", StepBudgetCapped: "budget-capped",
		StepPremiumOnly: "premium-only", StepOverCapacity: "over-capacity",
		Step(9): "Step(9)",
	}
	for st, want := range steps {
		if st.String() != want {
			t.Errorf("Step.String() = %q, want %q", st.String(), want)
		}
	}
	views := map[PriceView]string{
		ViewLMP: "lmp", ViewFlatAvg: "flat-avg", ViewFlatLow: "flat-low",
		PriceView(9): "PriceView(9)",
	}
	for v, want := range views {
		if v.String() != want {
			t.Errorf("PriceView.String() = %q, want %q", v.String(), want)
		}
	}
}

package core

import (
	"math"
	"strings"
	"testing"

	"billcap/internal/dcmodel"
	"billcap/internal/obs"
	"billcap/internal/pricing"
)

func TestDecideHourMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	sys, err := NewSystem(dcmodel.PaperSites(), pricing.PaperPolicies(pricing.Policy1), Options{})
	if err != nil {
		t.Fatal(err)
	}
	sys.SetMetrics(NewMetrics(reg))

	in := HourInput{
		TotalLambda:   1.5e12,
		PremiumLambda: 1.2e12,
		DemandMW:      []float64{170, 190, 150},
		BudgetUSD:     math.Inf(1),
	}
	dec, err := sys.DecideHour(in)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Step != StepCostMin {
		t.Fatalf("step = %v", dec.Step)
	}
	if dec.Solver.Incumbents < 1 {
		t.Errorf("incumbents = %d, want ≥ 1", dec.Solver.Incumbents)
	}
	if dec.Solver.WallTime <= 0 {
		t.Errorf("wall time = %v, want > 0", dec.Solver.WallTime)
	}

	// A $1 budget forces the premium-only branch.
	in.BudgetUSD = 1
	if _, err := sys.DecideHour(in); err != nil {
		t.Fatal(err)
	}
	// An invalid input counts as an error.
	bad := in
	bad.TotalLambda = -1
	if _, err := sys.DecideHour(bad); err == nil {
		t.Fatal("bad input accepted")
	}

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"billcap_decide_total 3",
		"billcap_decide_errors_total 1",
		`billcap_decide_step_total{step="cost-min"} 1`,
		`billcap_decide_step_total{step="premium-only"} 1`,
		`billcap_decide_step_total{step="budget-capped"} 0`, // pre-registered at zero
		"billcap_decide_budget_binding 1",
		"billcap_decide_sites_on",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	if reg.Counter("billcap_milp_nodes_total", "").Value() <= 0 {
		t.Error("no MILP nodes recorded")
	}
	if reg.Counter("billcap_milp_pivots_total", "").Value() <= 0 {
		t.Error("no simplex pivots recorded")
	}
	// The sparse LP core (the default) reports its basis work; the counters
	// must at least be exposed, and eta updates accrue on any nontrivial hour.
	if !strings.Contains(out, "billcap_lp_refactorizations_total") ||
		!strings.Contains(out, "billcap_lp_basis_updates_total") {
		t.Error("LP factorization counters not exposed")
	}
	if reg.Counter("billcap_lp_basis_updates_total", "").Value() <= 0 {
		t.Error("no LP basis updates recorded on the sparse core")
	}
	if reg.Histogram("billcap_decide_seconds", "", obs.DefBuckets).Count() != 3 {
		t.Error("latency histogram did not see every call")
	}
}

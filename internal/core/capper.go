package core

import (
	"context"
	"errors"
	"math"
	"time"

	"billcap/internal/milp"
)

// budgetSlack absorbs floating-point noise when comparing a predicted cost
// against the hourly budget.
const budgetSlack = 1e-6

// DecideHour runs the full two-step bill capping algorithm (paper §III):
//
//  1. Minimize cost for the whole workload. If the minimum fits the hourly
//     budget, enforce it.
//  2. Otherwise maximize admitted throughput within the budget. If that
//     serves at least the premium traffic, premium gets full QoS and
//     ordinary traffic gets the remainder. If not even premium fits, fall
//     back to cost-minimizing the premium traffic alone — the budget is
//     knowingly violated because premium QoS is mandatory.
//
// Arrivals beyond fleet capacity are handled by serving the maximum
// carryable load (StepOverCapacity).
//
// When metrics are attached (SetMetrics), every call records its branch,
// latency and MILP effort.
func (s *System) DecideHour(in HourInput) (Decision, error) {
	return s.decideWith(in, s.solveOptions())
}

// DecideHourCtx is DecideHour bounded by ctx: the context's deadline and
// cancellation are translated into the MILP's wall-clock budget, so a
// per-request HTTP timeout propagates all the way into branch-and-bound. A
// solve that expires mid-search answers with its best incumbent
// (DegradeTimeLimit) instead of hanging past the caller's patience.
func (s *System) DecideHourCtx(ctx context.Context, in HourInput) (Decision, error) {
	so, err := boundByCtx(ctx, s.solveOptions())
	if err != nil {
		return Decision{}, err
	}
	return s.decideWith(in, so)
}

// boundByCtx narrows solve options to the context: the tighter of the two
// deadlines wins and the context's cancellation reaches the solver. An
// already-expired context is an error — there is no budget left to solve in.
func boundByCtx(ctx context.Context, so milp.Options) (milp.Options, error) {
	if dl, ok := ctx.Deadline(); ok {
		remain := time.Until(dl)
		if remain <= 0 {
			return so, ctx.Err()
		}
		if so.Deadline == 0 || remain < so.Deadline {
			so.Deadline = remain
		}
	}
	so.Cancel = ctx.Done()
	return so, nil
}

func (s *System) decideWith(in HourInput, so milp.Options) (Decision, error) {
	m := s.metrics.Load()
	if m == nil {
		return s.decideHour(in, so)
	}
	start := time.Now()
	dec, err := s.decideHour(in, so)
	m.observe(s, dec, err, time.Since(start))
	return dec, err
}

func (s *System) decideHour(in HourInput, so milp.Options) (Decision, error) {
	dec, err := s.decideSteps(in, so)
	if err == nil && dec.Solver.Timeouts > 0 {
		// Any timed-out solve taints the whole decision: the branch taken may
		// rest on a suboptimal cost estimate.
		dec.Degraded = DegradeTimeLimit
	}
	return dec, err
}

func (s *System) decideSteps(in HourInput, so milp.Options) (Decision, error) {
	if err := s.ValidateInput(in); err != nil {
		return Decision{}, err
	}
	var stats SolverStats

	// Above the decomposition threshold every step solves by Lagrangian
	// dual decomposition (internal/decomp) instead of the exact MILP; the
	// branch structure of the two-step algorithm is identical either way.
	minCost, maxThroughput := s.minimizeCost, s.maximizeThroughput
	if s.routeDecomp(in) {
		minCost, maxThroughput = s.decompMinCost, s.decompMaxThroughput
	}

	// Step 1: minimize cost for everything.
	d1, err := minCost(in, in.TotalLambda, &stats, so, kindMinCostTotal)
	switch {
	case err == nil:
		if d1.PredictedCostUSD <= in.BudgetUSD*(1+budgetSlack)+budgetSlack {
			d1.Step = StepCostMin
			d1.ServedPremium = math.Min(in.PremiumLambda, d1.Served)
			d1.ServedOrdinary = d1.Served - d1.ServedPremium
			d1.Solver = stats
			return d1, nil
		}
	case errors.Is(err, ErrInfeasible):
		// Over capacity; fall through to throughput maximization.
	default:
		return Decision{}, err
	}
	overCapacity := err != nil

	// Step 2: maximize throughput within the budget.
	d2, err := maxThroughput(in, &stats, so, kindMaxThroughput)
	if err != nil {
		return Decision{}, err
	}
	if d2.Served+budgetSlack*in.TotalLambda >= in.PremiumLambda {
		d2.Step = StepBudgetCapped
		if overCapacity {
			d2.Step = StepOverCapacity
		}
		d2.ServedPremium = math.Min(in.PremiumLambda, d2.Served)
		d2.ServedOrdinary = d2.Served - d2.ServedPremium
		d2.Solver = stats
		return d2, nil
	}

	// Step 2 fallback: serve premium only, at minimum cost, over budget.
	d3, err := minCost(in, in.PremiumLambda, &stats, so, kindMinCostPremium)
	if err == nil {
		d3.Step = StepPremiumOnly
		d3.ServedPremium = d3.Served
		d3.ServedOrdinary = 0
		d3.Solver = stats
		return d3, nil
	}
	if !errors.Is(err, ErrInfeasible) {
		return Decision{}, err
	}

	// Premium alone exceeds capacity: serve the maximum carryable premium
	// load, ignoring the budget.
	inPrem := in
	inPrem.TotalLambda = in.PremiumLambda
	inPrem.BudgetUSD = math.Inf(1)
	d4, err := maxThroughput(inPrem, &stats, so, kindMaxPremiumUncapped)
	if err != nil {
		return Decision{}, err
	}
	d4.Step = StepOverCapacity
	d4.ServedPremium = d4.Served
	d4.ServedOrdinary = 0
	d4.Solver = stats
	return d4, nil
}

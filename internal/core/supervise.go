package core

import (
	"context"
	"errors"
	"fmt"
	"time"

	"billcap/internal/audit"
)

// errAuditRejected wraps an audit failure so the ladder can distinguish "the
// solver answered wrong" from "the solver failed": the former must not be
// retried (the solve is deterministic — it would return the same wrong
// answer) and demotes with its own rung for attribution.
var errAuditRejected = errors.New("core: audit rejected decision")

// supervision tunes solveSupervised's retry loop. Fixed constants rather than
// options: the retry budget must fit comfortably inside any plausible hourly
// deadline, and three attempts with sub-second backoff is enough to ride out
// a transient (GC pause, scheduler hiccup, injected fault) without eating
// into the rungs below.
const (
	superviseMaxAttempts = 3
	superviseBackoffBase = 25 * time.Millisecond
	superviseBackoffCap  = 200 * time.Millisecond
)

// solveSupervised runs the MILP/decomposition path under supervision: it
// retries transient failures with capped exponential backoff inside the
// hour's deadline, and runs every successful answer through the independent
// feasibility auditor before accepting it. Deterministic failures (bad input,
// proven infeasibility, context expiry) and audit rejections are surfaced
// immediately — retrying them would burn deadline to reproduce the same
// outcome. Callers hold r.mu.
func (r *Resilient) solveSupervised(ctx context.Context, in HourInput) (Decision, error) {
	backoff := superviseBackoffBase
	var err error
	for attempt := 1; ; attempt++ {
		var dec Decision
		dec, err = r.tryMILP(ctx, in)
		if err == nil {
			if r.failAudit[in.Hour] {
				err = fmt.Errorf("%w: injected fault", errAuditRejected)
			} else if aerr := r.auditDecision(in, dec); aerr != nil {
				err = fmt.Errorf("%w: %v", errAuditRejected, aerr)
			} else {
				return dec, nil
			}
		}
		if attempt >= superviseMaxAttempts || !transient(err) {
			return Decision{}, err
		}
		if !sleepWithin(ctx, backoff) {
			return Decision{}, err
		}
		backoff = min(backoff*2, superviseBackoffCap)
	}
}

// transient reports whether a solve failure is worth retrying: panics and
// unclassified errors are; deterministic rejections and an expired hour are
// not.
func transient(err error) bool {
	switch {
	case err == nil,
		errors.Is(err, errAuditRejected),
		errors.Is(err, ErrBadInput),
		errors.Is(err, ErrInfeasible),
		errors.Is(err, context.Canceled),
		errors.Is(err, context.DeadlineExceeded):
		return false
	}
	return true
}

// sleepWithin waits d unless the context expires first or the deadline would
// pass mid-sleep; it reports whether a retry is still worthwhile.
func sleepWithin(ctx context.Context, d time.Duration) bool {
	if dl, ok := ctx.Deadline(); ok && time.Until(dl) <= d {
		return false
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}

// auditDecision re-checks a decision with the independent auditor, feeding it
// the system's site models and tariff closures but none of the solver's
// arithmetic. Callers hold r.mu.
func (r *Resilient) auditDecision(in HourInput, dec Decision) error {
	sites := make([]audit.Site, len(r.sys.models))
	for i, sm := range r.sys.models {
		dc := sm.site.DC
		fn := r.sys.viewFn(i).Fn
		site := audit.Site{
			MaxLambda:   sm.maxLambda,
			MWPerLambda: sm.affine.A,
			IdleMW:      sm.affine.B,
			PowerCapMW:  dc.PowerCapMW,
			SlackMW:     dc.RoundingSlackMW(),
			DemandMW:    in.DemandMW[i],
			Down:        in.SiteDown(i),
			Price:       fn.Eval,

			DemandRateUSDPerMW: in.DemandChargeUSDPerMW,
			PeakMW:             in.peak(i),
		}
		if in.twoSettlement() {
			site.TwoSettlement = true
			site.RTPriceUSDPerMWh = in.RTPriceUSDPerMWh[i]
			site.CommitMW = in.commit(i)
		}
		if bat := in.battery(i); bat.active() {
			site.BatCapacityMWh = bat.CapacityMWh
			site.BatMaxChargeMW = bat.MaxChargeMW
			site.BatMaxDischargeMW = bat.MaxDischargeMW
			site.BatEfficiency = bat.Efficiency
			site.BatSoCMWh = bat.SoCMWh
		}
		sites[i] = site
	}
	claims := make([]audit.Claim, len(dec.Sites))
	for i, a := range dec.Sites {
		claims[i] = audit.Claim{
			Lambda:  a.Lambda,
			PowerMW: a.PowerMW,
			Rate:    a.PriceUSDPerMWh,
			CostUSD: a.CostUSD,
			On:      a.On,

			GridMW:      a.GridMW,
			ChargeMW:    a.ChargeMW,
			DischargeMW: a.DischargeMW,
			EnergyUSD:   a.EnergyUSD,
			DemandUSD:   a.DemandUSD,
		}
	}
	if len(claims) != len(sites) {
		return fmt.Errorf("audit: decision has %d sites, system has %d", len(claims), len(sites))
	}
	return audit.Check(sites, claims, audit.Input{
		TotalLambda:   in.TotalLambda,
		PremiumLambda: in.PremiumLambda,
		BudgetUSD:     in.BudgetUSD,
		SettlementUSD: dec.SettlementUSD,
		ServeAll:      dec.Step == StepCostMin,
		BudgetExempt:  dec.Step == StepPremiumOnly || dec.Step == StepOverCapacity,
	})
}

package core

import (
	"time"

	"billcap/internal/obs"
)

// Metrics is the controller's instrumentation bundle over an obs.Registry.
// Attach it to a System with SetMetrics; every DecideHour then records its
// branch, latency, MILP effort and constraint posture. One bundle can be
// shared by several Systems over the same registry (the metrics are
// concurrency-safe), which is how a fleet of per-group cappers reports to
// one scrape endpoint.
type Metrics struct {
	decideTotal    *obs.Counter
	decideErrors   *obs.Counter
	decideStep     *obs.CounterVec
	decideDegraded *obs.CounterVec
	decideSeconds  *obs.Histogram

	fallbackUsed    *obs.Counter
	solverTimeouts  *obs.Counter
	staleDecisions  *obs.Counter
	auditRejections *obs.Counter

	milpSolves     *obs.Counter
	milpNodes      *obs.Counter
	milpPivots     *obs.Counter
	milpIncumbents *obs.Counter
	milpSeconds    *obs.Histogram
	milpWorkers    *obs.Gauge
	presolveFixed  *obs.Counter
	warmstartHits  *obs.Counter

	lpRefactorizations *obs.Counter
	lpBasisUpdates     *obs.Counter

	decompSolves     *obs.Counter
	decompIterations *obs.Counter
	decompGap        *obs.Gauge

	predictedCost *obs.Gauge
	servedLambda  *obs.Gauge
	budgetBinding *obs.Gauge
	sitesOn       *obs.Gauge
	sitesAtCap    *obs.Gauge
}

// NewMetrics registers the controller metrics on reg. Step counters are
// pre-created at zero so a scrape sees every branch of the algorithm from
// the first sample on.
func NewMetrics(reg *obs.Registry) *Metrics {
	m := &Metrics{
		decideTotal:  reg.Counter("billcap_decide_total", "Two-step capping decisions taken."),
		decideErrors: reg.Counter("billcap_decide_errors_total", "Decisions that returned an error."),
		decideStep: reg.CounterVec("billcap_decide_step_total",
			"Decisions by algorithm branch (paper §IV–§V).", "step"),
		decideDegraded: reg.CounterVec("billcap_decide_degraded_total",
			"Decisions by degradation-ladder rung (none = proven optimal).", "rung"),
		decideSeconds: reg.Histogram("billcap_decide_seconds",
			"End-to-end DecideHour latency in seconds.", obs.DefBuckets),

		fallbackUsed: reg.Counter("billcap_fallback_used_total",
			"Decisions produced by the greedy fallback dispatcher after MILP failure."),
		solverTimeouts: reg.Counter("billcap_solver_timeouts_total",
			"MILP solves that hit their wall-clock deadline and answered with an incumbent."),
		staleDecisions: reg.Counter("billcap_stale_decisions_total",
			"Decisions reusing a last-known-good plan because both solvers failed."),
		auditRejections: reg.Counter("billcap_audit_rejections_total",
			"Solver answers rejected by the independent feasibility audit."),

		milpSolves: reg.Counter("billcap_milp_solves_total", "MILP solves issued by the two-step algorithm."),
		milpNodes:  reg.Counter("billcap_milp_nodes_total", "Branch-and-bound nodes explored."),
		milpPivots: reg.Counter("billcap_milp_pivots_total", "Simplex pivots across all LP relaxations."),
		lpRefactorizations: reg.Counter("billcap_lp_refactorizations_total",
			"LU basis refactorizations performed by the sparse LP core."),
		lpBasisUpdates: reg.Counter("billcap_lp_basis_updates_total",
			"Eta-file basis updates performed by the sparse LP core between refactorizations."),
		decompSolves: reg.Counter("billcap_decomp_solves_total",
			"Step solves answered by Lagrangian dual decomposition instead of the exact MILP."),
		decompIterations: reg.Counter("billcap_decomp_iterations_total",
			"Subgradient iterations across dual-decomposition solves."),
		decompGap: reg.Gauge("billcap_decomp_gap",
			"Worst relative primal–dual gap among the last decision's decomposition solves."),
		milpIncumbents: reg.Counter("billcap_milp_incumbents_total",
			"Incumbent improvements found during branch-and-bound."),
		milpSeconds: reg.Histogram("billcap_milp_seconds",
			"Wall time spent inside MILP solves per decision, seconds.", obs.DefBuckets),
		milpWorkers: reg.Gauge("billcap_milp_workers",
			"Branch-and-bound workers used by the last decision's MILP solves."),
		presolveFixed: reg.Counter("billcap_solver_presolve_fixed_total",
			"Integer variables fixed by MILP presolve before branch-and-bound started."),
		warmstartHits: reg.Counter("billcap_solver_warmstart_hits_total",
			"MILP solves seeded with a previous hour's optimum as the starting incumbent."),

		predictedCost: reg.Gauge("billcap_decide_predicted_cost_usd",
			"Predicted electricity cost of the last decision."),
		servedLambda: reg.Gauge("billcap_decide_served_lambda",
			"Admitted requests/hour of the last decision."),
		budgetBinding: reg.Gauge("billcap_decide_budget_binding",
			"1 when the last decision was budget- or capacity-constrained (any branch but cost-min)."),
		sitesOn: reg.Gauge("billcap_decide_sites_on", "Sites powered on in the last decision."),
		sitesAtCap: reg.Gauge("billcap_decide_sites_at_power_cap",
			"Sites whose planned draw sits within rounding slack of the supplier power cap."),
	}
	for st := StepCostMin; st <= StepOverCapacity; st++ {
		m.decideStep.With(st.String())
	}
	for d := DegradeNone; d <= DegradeShed; d++ {
		m.decideDegraded.With(d.String())
	}
	return m
}

// RecordDegraded notes a decision produced below the MILP path — the
// Resilient ladder calls it for rungs the System itself never sees (the MILP
// erred or panicked, so observe() only recorded the failure). Safe on a nil
// receiver so callers need not guard for detached instrumentation.
func (m *Metrics) RecordDegraded(d Degrade) {
	if m == nil {
		return
	}
	switch d {
	case DegradeFallback, DegradeAudit:
		m.fallbackUsed.Inc()
	case DegradeStale:
		m.staleDecisions.Inc()
	}
	m.decideDegraded.With(d.String()).Inc()
}

// RecordAuditRejection counts an independent-audit rejection of a solver
// answer, whatever rung ultimately produced the hour's plan. Nil-safe.
func (m *Metrics) RecordAuditRejection() {
	if m == nil {
		return
	}
	m.auditRejections.Inc()
}

// SetMetrics attaches (or, with nil, detaches) instrumentation to the
// system. The swap is atomic, so it is safe to call while decisions are in
// flight; a decision that started before the swap reports to the bundle it
// loaded at observation time.
func (s *System) SetMetrics(m *Metrics) { s.metrics.Store(m) }

// Metrics returns the currently attached instrumentation bundle (nil when
// detached). The Metrics methods are nil-safe where noted.
func (s *System) Metrics() *Metrics { return s.metrics.Load() }

// observe records one DecideHour outcome.
func (m *Metrics) observe(s *System, dec Decision, err error, elapsed time.Duration) {
	m.decideTotal.Inc()
	m.decideSeconds.Observe(elapsed.Seconds())
	if err != nil {
		m.decideErrors.Inc()
		return
	}
	m.decideStep.With(dec.Step.String()).Inc()
	m.decideDegraded.With(dec.Degraded.String()).Inc()
	m.solverTimeouts.Add(float64(dec.Solver.Timeouts))
	m.milpSolves.Add(float64(dec.Solver.Solves))
	m.milpNodes.Add(float64(dec.Solver.Nodes))
	m.milpPivots.Add(float64(dec.Solver.LPIterations))
	m.lpRefactorizations.Add(float64(dec.Solver.LPRefactorizations))
	m.lpBasisUpdates.Add(float64(dec.Solver.LPBasisUpdates))
	m.milpIncumbents.Add(float64(dec.Solver.Incumbents))
	m.milpSeconds.Observe(dec.Solver.WallTime.Seconds())
	m.milpWorkers.Set(float64(dec.Solver.Workers))
	m.presolveFixed.Add(float64(dec.Solver.PresolveFixed))
	m.warmstartHits.Add(float64(dec.Solver.WarmStarted))
	m.decompSolves.Add(float64(dec.Solver.DecompSolves))
	m.decompIterations.Add(float64(dec.Solver.DecompIterations))
	if dec.Solver.DecompSolves > 0 {
		m.decompGap.Set(dec.Solver.DecompGap)
	}

	m.predictedCost.Set(dec.PredictedCostUSD)
	m.servedLambda.Set(dec.Served)
	binding := 0.0
	if dec.Step != StepCostMin {
		binding = 1
	}
	m.budgetBinding.Set(binding)
	on, atCap := 0, 0
	for i, a := range dec.Sites {
		if !a.On {
			continue
		}
		on++
		dc := s.Sites[i].DC
		if a.PowerMW >= dc.PowerCapMW-dc.RoundingSlackMW() {
			atCap++
		}
	}
	m.sitesOn.Set(float64(on))
	m.sitesAtCap.Set(float64(atCap))
}

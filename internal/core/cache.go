package core

import (
	"math"
	"sync"

	"billcap/internal/milp"
	"billcap/internal/piecewise"
)

// solveKind distinguishes the MILP families the two-step algorithm issues.
// The cross-hour cache keeps one warm-start seed per kind, because the
// problems differ structurally (equality vs inequality load row, budget row
// present or not) and their optima drift apart — step 1's cost-minimal plan
// is a poor incumbent for step 2's throughput maximization.
type solveKind int

const (
	// kindMinCostTotal is step 1: minimize cost serving all arrivals.
	kindMinCostTotal solveKind = iota
	// kindMaxThroughput is step 2: maximize admitted load within the budget.
	kindMaxThroughput
	// kindMinCostPremium is the step-2 fallback: cost-minimize premium only.
	kindMinCostPremium
	// kindMaxPremiumUncapped is the over-capacity rung: maximum carryable
	// premium load, budget ignored.
	kindMaxPremiumUncapped

	numKinds
)

// skeletonEntry is the memoized hour-invariant model: the pristine output of
// buildBase (no Σ-load row, no budget row, no objective) plus the variable
// and row handles needed to patch a clone for a new hour.
type skeletonEntry struct {
	sig  uint64
	m    *milp.Problem
	vars []siteVars
}

// seedEntry is one kind's warm-start state from its last optimal solve: the
// per-site workloads (the integer solution compressed to what survives an
// hour boundary) and the root LP basis with the dimensions it was taken at.
type seedEntry struct {
	sig          uint64
	lambdas      []float64
	basis        []int
	nvars, ncons int
}

// SolveCache memoizes the hour-invariant MILP skeleton and the previous
// hour's optima so consecutive hours solve incrementally (paper workloads are
// diurnal: hour h+1 looks like hour h with shifted numbers). It is purely an
// acceleration layer — the skeleton is patched only under an exact structure
// signature match, basis seeds are gated on identical dimensions and crash
// safely in the LP layer, and incumbent seeds are re-screened for integer
// feasibility by the MILP layer — so a stale or mismatched entry costs a cold
// solve, never a wrong answer. All methods are safe for concurrent use.
type SolveCache struct {
	mu       sync.Mutex
	skeleton *skeletonEntry
	seeds    [numKinds]*seedEntry

	hits, misses int
}

func newSolveCache() *SolveCache { return &SolveCache{} }

// Stats reports skeleton cache hits and misses (for tests and debugging).
func (c *SolveCache) Stats() (hits, misses int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

func (c *SolveCache) loadSkeleton(sig uint64) *skeletonEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.skeleton != nil && c.skeleton.sig == sig {
		c.hits++
		return c.skeleton
	}
	c.misses++
	return nil
}

func (c *SolveCache) storeSkeleton(e *skeletonEntry) {
	c.mu.Lock()
	c.skeleton = e
	c.mu.Unlock()
}

func (c *SolveCache) loadSeed(kind solveKind, sig uint64) *seedEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	e := c.seeds[kind]
	if e == nil || e.sig != sig {
		return nil
	}
	return e
}

func (c *SolveCache) store(kind solveKind, sig uint64, lambdas []float64, basis []int, nvars, ncons int) {
	c.mu.Lock()
	c.seeds[kind] = &seedEntry{sig: sig, lambdas: lambdas, basis: basis, nvars: nvars, ncons: ncons}
	c.mu.Unlock()
}

// hourSig is an FNV-1a hash over everything that determines the skeleton's
// row/column structure: the per-site reachable price segments, which of them
// carry a lower-bound row, and the outage pattern. Coefficient values (scale,
// capacity, segment bounds) are deliberately excluded — those are what the
// patch path rewrites. Any change to the site set or policies produces a
// different reachable-segment pattern or is a different System entirely, so
// the cache drops stale skeletons by construction.
type hourSig struct{ h uint64 }

func newHourSig() hourSig { return hourSig{h: 14695981039346656037} }

func (s *hourSig) add(v uint64) {
	for i := 0; i < 8; i++ {
		s.h ^= v & 0xff
		s.h *= 1099511628211
		v >>= 8
	}
}

func (s *hourSig) addInt(v int) { s.add(uint64(int64(v))) }

func (s *hourSig) addBool(b bool) {
	if b {
		s.add(1)
	} else {
		s.add(0)
	}
}

// planHour derives every site's reachable-segment plan for the hour and the
// structure signature over the plans. The plans double as the patch input.
func (s *System) planHour(in HourInput) ([][]piecewise.SegPlan, uint64, error) {
	plans := make([][]piecewise.SegPlan, len(s.models))
	h := newHourSig()
	h.addInt(len(s.models))
	for i, sm := range s.models {
		plan, err := piecewise.PlanSegments(s.viewFn(i).Fn, in.DemandMW[i],
			sm.site.DC.PowerCapMW, sm.site.DC.RoundingSlackMW())
		if err != nil {
			return nil, 0, err
		}
		plans[i] = plan
		h.addInt(len(plan))
		for _, sp := range plan {
			h.addInt(sp.Seg)
			h.addBool(sp.Lo > 0)
		}
		h.addBool(in.SiteDown(i))
	}
	return plans, h.h, nil
}

// buildHour returns the hour's model skeleton and variable handles — through
// the cache when one is attached: a signature hit clones the memoized
// skeleton and patches only the hour-dependent coefficients (affine link,
// capacity big-M, segment bounds), skipping the full rebuild.
func (s *System) buildHour(in HourInput, scale, maxLoad float64) (*milp.Problem, []siteVars, uint64, error) {
	if s.cache == nil || in.hasTariffExtras() {
		// Tariff hours bypass the cache: the skeleton lacks the battery and
		// demand-charge variables and their bounds move with the state of
		// charge and the peak ledger, so sig 0 also disables warm-start
		// seeds (warmOptions/rememberSolve ignore it).
		m, vars, err := s.buildBase(in, scale, maxLoad)
		return m, vars, 0, err
	}
	plans, sig, err := s.planHour(in)
	if err != nil {
		// Mirror buildBase's error wrapping so callers see identical failures
		// with and without the cache.
		m, vars, berr := s.buildBase(in, scale, maxLoad)
		if berr != nil {
			return nil, nil, 0, berr
		}
		return m, vars, 0, nil
	}
	if sk := s.cache.loadSkeleton(sig); sk != nil {
		m := sk.m.Clone()
		vars := cloneSiteVars(sk.vars)
		if s.patchHour(m, vars, plans, scale, maxLoad) {
			return m, vars, sig, nil
		}
	}
	m, vars, err := s.buildBase(in, scale, maxLoad)
	if err != nil {
		return nil, nil, 0, err
	}
	s.cache.storeSkeleton(&skeletonEntry{sig: sig, m: m.Clone(), vars: cloneSiteVars(vars)})
	return m, vars, sig, nil
}

// patchHour rewrites the hour-dependent coefficients of a cloned skeleton:
// the affine power link's −a·scale, the capacity row's −xmax/scale, and every
// segment's demand-shifted bounds. Returns false on any shape drift (the
// caller then rebuilds cold).
func (s *System) patchHour(m *milp.Problem, vars []siteVars, plans [][]piecewise.SegPlan, scale, maxLoad float64) bool {
	for i := range s.models {
		sm := &s.models[i]
		v := &vars[i]
		if !v.enc.Patch(m, plans[i]) {
			return false
		}
		m.SetCoef(v.powRow, v.x, -sm.affine.A*scale)
		xmax := math.Min(sm.maxLambda, maxLoad)
		m.SetCoef(v.capRow, v.y, -xmax/scale)
	}
	return true
}

func cloneSiteVars(vs []siteVars) []siteVars {
	out := make([]siteVars, len(vs))
	for i, v := range vs {
		out[i] = v
		out[i].enc = v.enc.Clone()
	}
	return out
}

// warmOptions upgrades the solve options with the cache's acceleration for
// this kind: presolve always, plus — when a previous hour's optimum exists
// under the same structure signature — its root basis (dimensions permitting)
// and its workloads re-assembled into a feasible starting incumbent. A seed
// that cannot be made feasible is simply dropped; the MILP layer re-screens
// whatever is passed, so this path cannot change any answer.
func (s *System) warmOptions(so milp.Options, kind solveKind, sig uint64, m *milp.Problem,
	vars []siteVars, in HourInput, scale, target float64, exactSum bool, budget float64) milp.Options {
	if s.cache == nil || sig == 0 {
		// sig 0 marks a tariff-extras hour: the seed's cost arithmetic and
		// variable layout do not cover the extra variables, so neither
		// presolve-by-skeleton nor warm seeds apply.
		return so
	}
	so.Presolve = true
	e := s.cache.loadSeed(kind, sig)
	if e == nil {
		return so
	}
	if x0 := s.assembleSeed(m, vars, in, scale, target, exactSum, budget, e.lambdas); x0 != nil {
		so.StartX = x0
	}
	if e.nvars == m.NumVars() && e.ncons == m.NumConstraints() {
		so.StartBasis = e.basis
	}
	return so
}

// rememberSolve records an optimal solve's per-site workloads and root basis
// as the next hour's seed for the same kind.
func (s *System) rememberSolve(kind solveKind, sig uint64, sol milp.Solution, m *milp.Problem, vars []siteVars, scale float64) {
	if s.cache == nil || sig == 0 || sol.Status != milp.Optimal {
		return
	}
	lam := make([]float64, len(vars))
	for i, v := range vars {
		if sol.X[v.y] > 0.5 {
			if l := sol.X[v.x] * scale; l > 0 {
				lam[i] = l
			}
		}
	}
	s.cache.store(kind, sig, lam, sol.RootBasis, m.NumVars(), m.NumConstraints())
}

// assembleSeed reconstructs a full MILP starting point from the previous
// hour's per-site workloads: redistribute them onto this hour's capacities
// and total, then rebuild the dependent variables (power, segment powers,
// binaries) exactly as the constraints demand. Best-effort by design — any
// nil return only costs the warm start, and the MILP layer independently
// verifies feasibility of whatever is returned.
func (s *System) assembleSeed(m *milp.Problem, vars []siteVars, in HourInput,
	scale, target float64, exactSum bool, budget float64, prev []float64) []float64 {
	n := len(vars)
	if len(prev) != n || target < 0 {
		return nil
	}
	xmax := make([]float64, n)
	lam := make([]float64, n)
	sum := 0.0
	for i := range s.models {
		if in.SiteDown(i) {
			continue // xmax stays 0: the down row forces the site off
		}
		xmax[i] = math.Min(s.models[i].maxLambda, target)
		lam[i] = math.Min(prev[i], xmax[i])
		sum += lam[i]
	}
	if exactSum {
		if !rebalance(lam, xmax, target) {
			return nil
		}
	} else if sum > target && sum > 0 {
		f := target / sum
		for i := range lam {
			lam[i] *= f
		}
	}
	for tries := 0; tries < 2; tries++ {
		x0, cost, ok := s.seedFromLambdas(m, vars, lam, scale)
		if !ok {
			return nil
		}
		if math.IsInf(budget, 1) || cost <= budget {
			return x0
		}
		if exactSum || cost <= 0 {
			return nil // an equality-sum seed cannot shed load to fit a budget
		}
		// Over budget: shrink toward it and retry once. Idle power makes cost
		// sublinear in load, so undershoot a little to land inside.
		f := budget / cost * 0.95
		for i := range lam {
			lam[i] *= f
		}
	}
	return nil
}

// rebalance adjusts lam in place so Σ lam = target with 0 ≤ lam[i] ≤ xmax[i],
// staying as close to the incoming proportions as possible. Returns false
// when the capacities cannot carry the target.
func rebalance(lam, xmax []float64, target float64) bool {
	sum := 0.0
	for _, l := range lam {
		sum += l
	}
	if sum > target && sum > 0 {
		f := target / sum
		for i := range lam {
			lam[i] *= f
		}
	} else if sum < target {
		deficit := target - sum
		for i := range lam {
			if deficit <= 0 {
				break
			}
			room := xmax[i] - lam[i]
			if room <= 0 {
				continue
			}
			add := math.Min(room, deficit)
			lam[i] += add
			deficit -= add
		}
		if deficit > 1e-9*(1+target) {
			return false
		}
	}
	// Float exactness: park the residual on any site with room for it, so the
	// Σ x = target/scale equality row holds to solver tolerance.
	sum = 0
	for _, l := range lam {
		sum += l
	}
	diff := target - sum
	if diff == 0 {
		return true
	}
	for i := range lam {
		if v := lam[i] + diff; v >= 0 && v <= xmax[i] {
			lam[i] = v
			return true
		}
	}
	return false
}

// seedFromLambdas expands per-site workloads into the full variable vector:
// x from the scaling, y on iff the site carries load, p from the affine
// model, and the one price segment whose bounds contain p selected. Returns
// ok=false when some site's power lands outside every reachable segment
// (demand moved the breakpoints past it).
func (s *System) seedFromLambdas(m *milp.Problem, vars []siteVars, lam []float64, scale float64) ([]float64, float64, bool) {
	x0 := make([]float64, m.NumVars())
	cost := 0.0
	for i, v := range vars {
		if lam[i] <= 0 {
			continue // all-zero block: site off, every row satisfied
		}
		aff := s.models[i].affine
		p := aff.A*lam[i] + aff.B
		seg := -1
		for j := range v.enc.SegLo {
			if p >= v.enc.SegLo[j] && p <= v.enc.SegHi[j] {
				seg = j
				break
			}
		}
		if seg < 0 {
			return nil, 0, false
		}
		x0[v.x] = lam[i] / scale
		x0[v.y] = 1
		x0[v.enc.Power] = p
		x0[v.enc.SegPower[seg]] = p
		x0[v.enc.SegBin[seg]] = 1
		cost += v.enc.SegRate[seg] * p
	}
	return x0, cost, true
}

package core

import (
	"math"
	"strings"
	"testing"

	"billcap/internal/dcmodel"
	"billcap/internal/lpparse"
	"billcap/internal/pricing"
)

// predictedCost evaluates the optimizer's own model (affine power, step
// price, margin-adjusted boundaries) at an explicit two-site allocation, so
// the MILP optimum can be checked against an exhaustive grid search.
func predictedCost(s *System, lambdas, demand []float64) (float64, bool) {
	total := 0.0
	for i, lam := range lambdas {
		if lam < 0 {
			return 0, false
		}
		m := s.models[i]
		if lam > m.maxLambda*(1+1e-12) {
			return 0, false
		}
		if lam == 0 {
			continue
		}
		p := m.affine.PowerMW(lam)
		if p > s.Sites[i].DC.PowerCapMW {
			return 0, false
		}
		load := demand[i] + p
		fn := s.Sites[i].Policy.Fn
		seg := fn.Segment(load)
		// The optimizer refuses to park power within the rounding slack of
		// a boundary; mirror that by charging the next segment's rate there.
		if _, hi := fn.SegmentBounds(seg); !math.IsInf(hi, 1) &&
			load > hi-s.Sites[i].DC.RoundingSlackMW() {
			seg++
		}
		total += fn.Rates()[seg] * p
	}
	return total, true
}

func TestMinimizeCostMatchesGridSearch(t *testing.T) {
	// Two paper sites (B with its 200/300 MW steps, D with the trap policy);
	// the MILP optimum must match a fine grid search over the λ split.
	dcs := dcmodel.PaperSites()[:2:2]
	dcs[1] = dcmodel.PaperSites()[2]
	pols := []pricing.Policy{
		pricing.PaperPolicies(pricing.Policy1)[0],
		pricing.PaperPolicies(pricing.Policy1)[2],
	}
	s, err := NewSystem(dcs, pols, Options{})
	if err != nil {
		t.Fatal(err)
	}
	demand := []float64{185, 128} // both regions near a step boundary

	for _, frac := range []float64{0.15, 0.4, 0.6, 0.8, 0.95} {
		lam := frac * s.MaxThroughput()
		in := HourInput{TotalLambda: lam, DemandMW: demand, BudgetUSD: math.Inf(1)}
		d, err := s.MinimizeCost(in, lam, &SolverStats{})
		if err != nil {
			t.Fatalf("frac %v: %v", frac, err)
		}

		const steps = 4000
		best := math.Inf(1)
		for k := 0; k <= steps; k++ {
			l0 := lam * float64(k) / steps
			c, ok := predictedCost(s, []float64{l0, lam - l0}, demand)
			if ok && c < best {
				best = c
			}
		}
		if math.IsInf(best, 1) {
			t.Fatalf("frac %v: grid found no feasible split", frac)
		}
		// The MILP may not beat the grid by more than grid resolution, nor
		// lose to it by more than a small tolerance.
		tol := 0.002*best + 1e-6
		if d.PredictedCostUSD > best+tol {
			t.Errorf("frac %v: MILP %v above grid optimum %v", frac, d.PredictedCostUSD, best)
		}
		if d.PredictedCostUSD < best-tol-0.01*best {
			t.Errorf("frac %v: MILP %v implausibly below grid optimum %v (model mismatch)",
				frac, d.PredictedCostUSD, best)
		}
	}
}

func TestDecideHourZeroBudget(t *testing.T) {
	s := paperSystem(t, Options{})
	in := HourInput{TotalLambda: 1e12, PremiumLambda: 0, DemandMW: demand3(), BudgetUSD: 0}
	d, err := s.DecideHour(in)
	if err != nil {
		t.Fatal(err)
	}
	// No premium traffic: a zero budget admits nothing.
	if d.Step != StepBudgetCapped || d.Served > 1e-3 {
		t.Errorf("step %v served %v, want budget-capped 0", d.Step, d.Served)
	}
}

func TestDecideHourZeroBudgetWithPremium(t *testing.T) {
	s := paperSystem(t, Options{})
	in := HourInput{TotalLambda: 1e12, PremiumLambda: 8e11, DemandMW: demand3(), BudgetUSD: 0}
	d, err := s.DecideHour(in)
	if err != nil {
		t.Fatal(err)
	}
	if d.Step != StepPremiumOnly {
		t.Errorf("step = %v, want premium-only", d.Step)
	}
	if math.Abs(d.ServedPremium-8e11) > 1 {
		t.Errorf("premium served %v", d.ServedPremium)
	}
}

func TestSingleSiteSystem(t *testing.T) {
	dcs := dcmodel.PaperSites()[:1]
	pols := pricing.PaperPolicies(pricing.Policy1)[:1]
	s, err := NewSystem(dcs, pols, Options{})
	if err != nil {
		t.Fatal(err)
	}
	lam := 0.5 * s.MaxThroughput()
	in := HourInput{TotalLambda: lam, PremiumLambda: lam / 2, DemandMW: []float64{170}, BudgetUSD: math.Inf(1)}
	d, err := s.DecideHour(in)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d.Served-lam) > 1e-6*lam {
		t.Errorf("served %v of %v", d.Served, lam)
	}
}

func TestDemandExactlyAtThreshold(t *testing.T) {
	// Background demand parked exactly on a price breakpoint must not break
	// the encoding (the region starts in the upper segment).
	s := paperSystem(t, Options{})
	in := HourInput{TotalLambda: 1e12, PremiumLambda: 0, DemandMW: []float64{200, 220, 140}, BudgetUSD: math.Inf(1)}
	d, err := s.MinimizeCost(in, in.TotalLambda, &SolverStats{})
	if err != nil {
		t.Fatal(err)
	}
	r, err := s.Realize(d.Lambdas(), in.DemandMW)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(r.CostUSD-d.PredictedCostUSD) / d.PredictedCostUSD; rel > 0.02 {
		t.Errorf("realized %v vs predicted %v", r.CostUSD, d.PredictedCostUSD)
	}
}

func TestHugeDemandOnlyTopSegmentReachable(t *testing.T) {
	// Region demand beyond every breakpoint: only the last price level
	// exists; the solve must still work.
	s := paperSystem(t, Options{})
	in := HourInput{TotalLambda: 8e11, PremiumLambda: 0, DemandMW: []float64{900, 900, 900}, BudgetUSD: math.Inf(1)}
	d, err := s.MinimizeCost(in, in.TotalLambda, &SolverStats{})
	if err != nil {
		t.Fatal(err)
	}
	for i, a := range d.Sites {
		if a.On && a.PriceUSDPerMWh != s.Sites[i].Policy.Fn.Max() {
			t.Errorf("site %d price %v, want the top rate %v", i, a.PriceUSDPerMWh, s.Sites[i].Policy.Fn.Max())
		}
	}
}

func TestWriteHourModelRoundTrip(t *testing.T) {
	s := paperSystem(t, Options{})
	in := HourInput{TotalLambda: 1e12, PremiumLambda: 0, DemandMW: demand3(), BudgetUSD: math.Inf(1)}
	var buf strings.Builder
	if err := s.WriteHourModel(&buf, in, in.TotalLambda); err != nil {
		t.Fatal(err)
	}
	parsed, err := lpparse.Parse(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatalf("dumped model does not parse: %v", err)
	}
	ext := parsed.Problem.Solve()
	d, err := s.MinimizeCost(in, in.TotalLambda, &SolverStats{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ext.Objective-d.PredictedCostUSD) > 1e-5*(1+d.PredictedCostUSD) {
		t.Errorf("external solve %v vs internal %v", ext.Objective, d.PredictedCostUSD)
	}
	if err := s.WriteHourModel(&buf, in, -1); err == nil {
		t.Error("negative workload accepted")
	}
}

package core

import (
	"math"
	"math/rand"
	"testing"
)

// tariffIn builds a serve-all hour over the paper fleet with room to spare.
func tariffIn() HourInput {
	return HourInput{
		Hour:          10,
		TotalLambda:   1.5e11,
		PremiumLambda: 1.0e11,
		DemandMW:      demand3(),
		BudgetUSD:     math.Inf(1),
	}
}

func decide(t *testing.T, s *System, in HourInput) Decision {
	t.Helper()
	d, err := s.DecideHour(in)
	if err != nil {
		t.Fatalf("DecideHour: %v", err)
	}
	return d
}

// TestDemandChargeGolden checks the demand-charge decomposition against hand
// arithmetic: every site pays rate × max(0, grid − peak-so-far), the hour's
// DemandChargeUSD is their sum, and the predicted cost is energy + demand.
func TestDemandChargeGolden(t *testing.T) {
	s := paperSystem(t, Options{})
	base := decide(t, s, tariffIn())

	in := tariffIn()
	in.DemandChargeUSDPerMW = 1000
	in.PeakMW = []float64{0, 0, 0}
	d := decide(t, s, in)

	wantDemand := 0.0
	for i, a := range d.Sites {
		inc := in.DemandChargeUSDPerMW * math.Max(0, a.GridMW-in.PeakMW[i])
		if math.Abs(a.DemandUSD-inc) > 1e-9 {
			t.Errorf("site %d DemandUSD = %v, want %v", i, a.DemandUSD, inc)
		}
		if math.Abs(a.CostUSD-(a.EnergyUSD+a.DemandUSD)) > 1e-9 {
			t.Errorf("site %d CostUSD = %v, want energy %v + demand %v",
				i, a.CostUSD, a.EnergyUSD, a.DemandUSD)
		}
		wantDemand += inc
	}
	if wantDemand == 0 {
		t.Fatal("zero-peak ledger produced no demand charge at all")
	}
	if math.Abs(d.DemandChargeUSD-wantDemand) > 1e-9 {
		t.Errorf("DemandChargeUSD = %v, want %v", d.DemandChargeUSD, wantDemand)
	}
	if math.Abs(d.PredictedCostUSD-(d.EnergyCostUSD+d.DemandChargeUSD)) > 1e-9 {
		t.Errorf("PredictedCostUSD = %v, want energy %v + demand %v",
			d.PredictedCostUSD, d.EnergyCostUSD, d.DemandChargeUSD)
	}
	if d.PredictedCostUSD < base.PredictedCostUSD-1e-9 {
		t.Errorf("adding a demand charge lowered the bill: %v < %v",
			d.PredictedCostUSD, base.PredictedCostUSD)
	}

	// A ledger already above every site's draw makes the increment free: the
	// hour must cost exactly the energy-only baseline.
	in.PeakMW = []float64{1000, 1000, 1000}
	high := decide(t, s, in)
	if high.DemandChargeUSD != 0 {
		t.Errorf("above-peak ledger still charged %v", high.DemandChargeUSD)
	}
	if math.Abs(high.PredictedCostUSD-base.PredictedCostUSD) > 1e-6 {
		t.Errorf("free-increment hour cost %v, energy-only baseline %v",
			high.PredictedCostUSD, base.PredictedCostUSD)
	}
}

// TestTwoSettlementGolden checks the two-settlement algebra: energy is billed
// at the RT price on the metered draw, and the settlement position is
// Σ (DA − RT) · C, decision-independent and included in the predicted cost.
func TestTwoSettlementGolden(t *testing.T) {
	s := paperSystem(t, Options{})
	in := tariffIn()
	in.RTPriceUSDPerMWh = []float64{70, 40, 55}
	in.CommitMW = []float64{120, 150, 90}
	d := decide(t, s, in)

	wantSettle := 0.0
	for i := range in.CommitMW {
		da := s.viewFn(i).Price(in.DemandMW[i] + in.CommitMW[i])
		wantSettle += (da - in.RTPriceUSDPerMWh[i]) * in.CommitMW[i]
	}
	if math.Abs(d.SettlementUSD-wantSettle) > 1e-9 {
		t.Errorf("SettlementUSD = %v, want %v", d.SettlementUSD, wantSettle)
	}
	wantEnergy := 0.0
	for i, a := range d.Sites {
		if a.On && math.Abs(a.PriceUSDPerMWh-in.RTPriceUSDPerMWh[i]) > 1e-12 {
			t.Errorf("site %d priced at %v, want RT %v", i, a.PriceUSDPerMWh, in.RTPriceUSDPerMWh[i])
		}
		wantEnergy += in.RTPriceUSDPerMWh[i] * a.GridMW
	}
	if math.Abs(d.EnergyCostUSD-wantEnergy) > 1e-6 {
		t.Errorf("EnergyCostUSD = %v, want RT×grid %v", d.EnergyCostUSD, wantEnergy)
	}
	if math.Abs(d.PredictedCostUSD-(d.EnergyCostUSD+d.SettlementUSD)) > 1e-9 {
		t.Errorf("PredictedCostUSD = %v, want %v",
			d.PredictedCostUSD, d.EnergyCostUSD+d.SettlementUSD)
	}
}

// tariffBattery gives every site a battery with headroom both ways.
func tariffBattery(socMWh, valueUSDPerMWh float64) []BatterySpec {
	specs := make([]BatterySpec, 3)
	for i := range specs {
		specs[i] = BatterySpec{
			CapacityMWh:    40,
			MaxChargeMW:    20,
			MaxDischargeMW: 20,
			Efficiency:     0.9,
			SoCMWh:         socMWh,
			ValueUSDPerMWh: valueUSDPerMWh,
		}
	}
	return specs
}

// TestBatteryDischargeLowersBill: stored energy valued below the market price
// should be spent — the solver discharges, the metered draw drops below the
// IT draw, and the hour's bill lands at or below the energy-only baseline.
func TestBatteryDischargeLowersBill(t *testing.T) {
	s := paperSystem(t, Options{})
	base := decide(t, s, tariffIn())

	in := tariffIn()
	in.Batteries = tariffBattery(40, 10) // full, valued far below any LMP band
	d := decide(t, s, in)

	totalDis := 0.0
	for i, a := range d.Sites {
		totalDis += a.DischargeMW
		if math.Abs(a.GridMW-(a.PowerMW+a.ChargeMW-a.DischargeMW)) > 1e-6 {
			t.Errorf("site %d grid %v != power %v + charge %v - discharge %v",
				i, a.GridMW, a.PowerMW, a.ChargeMW, a.DischargeMW)
		}
		if a.DischargeMW > a.PowerMW+1e-6 {
			t.Errorf("site %d exports: discharge %v > IT draw %v", i, a.DischargeMW, a.PowerMW)
		}
	}
	if totalDis <= 0 {
		t.Fatal("cheap stored energy was not discharged")
	}
	if d.PredictedCostUSD > base.PredictedCostUSD+1e-6 {
		t.Errorf("battery bill %v exceeds energy-only baseline %v",
			d.PredictedCostUSD, base.PredictedCostUSD)
	}
	if d.Served < base.Served-1e-6 {
		t.Errorf("battery hour served %v, baseline %v", d.Served, base.Served)
	}
}

// TestBatteryChargesWhenValuedAboveMarket: an empty battery whose stored
// energy is valued above every price band should charge — paying today's rate
// to bank energy the objective credits at ν·η per MWh stored.
func TestBatteryChargesWhenValuedAboveMarket(t *testing.T) {
	s := paperSystem(t, Options{})
	in := tariffIn()
	in.Batteries = tariffBattery(0, 500) // empty, valued far above any LMP band
	d := decide(t, s, in)

	totalChg := 0.0
	for _, a := range d.Sites {
		totalChg += a.ChargeMW
	}
	if totalChg <= 0 {
		t.Fatal("high-value empty battery was not charged")
	}
	for i, a := range d.Sites {
		bat := in.Batteries[i]
		if a.ChargeMW > bat.MaxChargeMW+1e-9 {
			t.Errorf("site %d charge %v exceeds rate %v", i, a.ChargeMW, bat.MaxChargeMW)
		}
		if a.ChargeMW*bat.Efficiency > bat.CapacityMWh-bat.SoCMWh+1e-6 {
			t.Errorf("site %d charge %v overfills capacity", i, a.ChargeMW)
		}
	}
}

// TestBatteryIdleWhenValueNeutral: with the stored-energy value pinned at the
// site's flat price and a round-trip loss, neither charging nor discharging
// is profitable; the decision must match the energy-only baseline.
func TestBatteryRespectsSoCBounds(t *testing.T) {
	s := paperSystem(t, Options{})
	in := tariffIn()
	in.Batteries = tariffBattery(0, 10) // empty and cheap: nothing to discharge
	d := decide(t, s, in)
	for i, a := range d.Sites {
		if a.DischargeMW > 1e-9 {
			t.Errorf("site %d discharged %v from an empty battery", i, a.DischargeMW)
		}
	}
}

// TestTariffPropertyAuditMatches is the satellite property test: across
// seeded random tariff hours (demand charges, two-settlement, batteries, and
// their combinations), the audit's independently re-derived bill must agree
// with the solver's claimed decomposition within 1e-6, and the supervised
// path must accept every decision.
func TestTariffPropertyAuditMatches(t *testing.T) {
	s := paperSystem(t, Options{})
	r := NewResilient(s, ResilientOptions{})
	rng := rand.New(rand.NewSource(42))

	for trial := 0; trial < 40; trial++ {
		in := tariffIn()
		in.Hour = trial
		in.TotalLambda = 0.8e11 + rng.Float64()*1.4e11
		in.PremiumLambda = in.TotalLambda * 0.6
		if trial%2 == 0 {
			in.DemandChargeUSDPerMW = 200 + rng.Float64()*2000
			in.PeakMW = []float64{rng.Float64() * 250, rng.Float64() * 250, rng.Float64() * 250}
		}
		if trial%3 == 0 {
			in.RTPriceUSDPerMWh = []float64{
				30 + rng.Float64()*60, 30 + rng.Float64()*60, 30 + rng.Float64()*60}
			in.CommitMW = []float64{rng.Float64() * 200, rng.Float64() * 200, rng.Float64() * 200}
		}
		if trial%4 == 0 {
			soc := rng.Float64() * 40
			in.Batteries = tariffBattery(soc, 20+rng.Float64()*80)
		}
		if trial%5 == 0 {
			in.BudgetUSD = 20000 + rng.Float64()*30000
		}

		dec, err := s.DecideHour(in)
		if err != nil {
			t.Fatalf("trial %d: DecideHour: %v", trial, err)
		}

		// Re-derive every component from the allocation values alone.
		energy, demand := 0.0, 0.0
		for i, a := range dec.Sites {
			var rate float64
			if in.twoSettlement() {
				rate = in.RTPriceUSDPerMWh[i]
			} else if a.On {
				rate = s.viewFn(i).Price(in.DemandMW[i] + a.GridMW)
			}
			energy += rate * a.GridMW
			demand += in.DemandChargeUSDPerMW * math.Max(0, a.GridMW-in.peak(i))
		}
		settle := s.settlementUSD(in)
		bill := energy + demand + settle
		tol := 1e-6 * (1 + math.Abs(bill))
		if math.Abs(dec.PredictedCostUSD-bill) > tol {
			t.Errorf("trial %d: claimed bill %v, re-derived %v", trial, dec.PredictedCostUSD, bill)
		}
		if math.Abs(dec.EnergyCostUSD-energy) > tol ||
			math.Abs(dec.DemandChargeUSD-demand) > tol ||
			math.Abs(dec.SettlementUSD-settle) > tol {
			t.Errorf("trial %d: components (%v,%v,%v), re-derived (%v,%v,%v)", trial,
				dec.EnergyCostUSD, dec.DemandChargeUSD, dec.SettlementUSD, energy, demand, settle)
		}

		// The independent auditor must reach the same verdict.
		if err := r.auditDecision(in, dec); err != nil {
			t.Errorf("trial %d: audit rejected solver decision: %v", trial, err)
		}
	}
}

// TestTariffValidation exercises the tariff-input arm of ValidateInput.
func TestTariffValidation(t *testing.T) {
	s := paperSystem(t, Options{})
	bad := []func(*HourInput){
		func(in *HourInput) { in.DemandChargeUSDPerMW = math.NaN() },
		func(in *HourInput) { in.DemandChargeUSDPerMW = -5 },
		func(in *HourInput) { in.PeakMW = []float64{1} },
		func(in *HourInput) { in.PeakMW = []float64{1, math.NaN(), 2} },
		func(in *HourInput) { in.RTPriceUSDPerMWh = []float64{50, 50} },
		func(in *HourInput) { in.RTPriceUSDPerMWh = []float64{50, -1, 50} },
		func(in *HourInput) { in.CommitMW = []float64{10, 10, 10} }, // commits need RT prices
		func(in *HourInput) {
			in.RTPriceUSDPerMWh = []float64{50, 50, 50}
			in.CommitMW = []float64{10, 10}
		},
		func(in *HourInput) { in.Batteries = make([]BatterySpec, 2) },
		func(in *HourInput) {
			in.Batteries = tariffBattery(0, 50)
			in.Batteries[1].Efficiency = 1.5
		},
		func(in *HourInput) {
			in.Batteries = tariffBattery(0, 50)
			in.Batteries[0].SoCMWh = 99 // above capacity
		},
	}
	for i, mutate := range bad {
		in := tariffIn()
		mutate(&in)
		if err := s.ValidateInput(in); err == nil {
			t.Errorf("bad tariff input %d accepted", i)
		}
	}
	ok := tariffIn()
	ok.DemandChargeUSDPerMW = 100
	ok.PeakMW = []float64{10, 20, 30}
	ok.RTPriceUSDPerMWh = []float64{50, 60, 70}
	ok.CommitMW = []float64{10, 10, 10}
	ok.Batteries = tariffBattery(20, 40)
	if err := s.ValidateInput(ok); err != nil {
		t.Errorf("good tariff input rejected: %v", err)
	}
}

package core

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"billcap/internal/obs"
)

func TestAuditRejectionDemotesToAuditRung(t *testing.T) {
	reg := obs.NewRegistry()
	sys := paperSystem(t, Options{})
	sys.SetMetrics(NewMetrics(reg))
	r := NewResilient(sys, ResilientOptions{})
	r.InjectAuditFailure(3)

	dec := r.Decide(goodInput(3))
	if dec.Degraded != DegradeAudit {
		t.Fatalf("degraded = %v, want %v", dec.Degraded, DegradeAudit)
	}
	if dec.Served <= 0 {
		t.Error("audit-demoted hour served nothing")
	}
	// The greedy plan must still be remembered: the next failure should find
	// a stale reserve, not shed.
	r.InjectSolverFailure(4)
	r.InjectFallbackFailure(4)
	if dec := r.Decide(goodInput(4)); dec.Degraded != DegradeStale {
		t.Errorf("hour after audit demotion degraded to %v, want stale reuse", dec.Degraded)
	}

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	for _, want := range []string{
		"billcap_audit_rejections_total 1",
		`billcap_decide_degraded_total{rung="audit-reject"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

func TestAuditPassesHealthyDecisions(t *testing.T) {
	reg := obs.NewRegistry()
	sys := paperSystem(t, Options{})
	sys.SetMetrics(NewMetrics(reg))
	r := NewResilient(sys, ResilientOptions{})
	for h := 0; h < 3; h++ {
		in := goodInput(h)
		if h == 1 {
			in.BudgetUSD = 500 // budget-capped branch must also pass audit
		}
		if dec := r.Decide(in); dec.Degraded != DegradeNone {
			t.Fatalf("hour %d: healthy decision rejected by audit: %v", h, dec.Degraded)
		}
	}
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "billcap_audit_rejections_total 0") {
		t.Error("audit rejections counted on healthy decisions")
	}
}

func TestTransientClassification(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{fmt.Errorf("core: solver panic: boom"), true},
		{errors.New("some wrapped io weirdness"), true},
		{fmt.Errorf("%w: cap broken", errAuditRejected), false},
		{fmt.Errorf("wrapped: %w", ErrBadInput), false},
		{fmt.Errorf("wrapped: %w", ErrInfeasible), false},
		{context.Canceled, false},
		{context.DeadlineExceeded, false},
		{nil, false},
	}
	for _, tc := range cases {
		if got := transient(tc.err); got != tc.want {
			t.Errorf("transient(%v) = %v, want %v", tc.err, got, tc.want)
		}
	}
}

func TestSleepWithinRespectsDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	if sleepWithin(ctx, time.Second) {
		t.Error("sleepWithin slept past the deadline")
	}

	cancelled, cancel2 := context.WithCancel(context.Background())
	cancel2()
	start := time.Now()
	if sleepWithin(cancelled, 10*time.Second) {
		t.Error("sleepWithin ignored cancellation")
	}
	if time.Since(start) > time.Second {
		t.Error("sleepWithin blocked on a cancelled context")
	}
}

func TestResilientSnapshotRestoreRoundTrip(t *testing.T) {
	sys := paperSystem(t, Options{})
	r := NewResilient(sys, ResilientOptions{})
	if dec := r.Decide(goodInput(7)); dec.Degraded != DegradeNone {
		t.Fatalf("seed hour degraded: %v", dec.Degraded)
	}
	st := r.Snapshot()
	if st.LastGood == nil || st.LastGoodHour != 7 {
		t.Fatalf("snapshot missing last-good state: %+v", st)
	}

	// A fresh ladder restored from the snapshot must serve the stale rung as
	// if it had decided hour 7 itself.
	r2 := NewResilient(paperSystem(t, Options{}), ResilientOptions{})
	if err := r2.Restore(st); err != nil {
		t.Fatal(err)
	}
	r2.InjectSolverFailure(8)
	r2.InjectFallbackFailure(8)
	dec := r2.Decide(goodInput(8))
	if dec.Degraded != DegradeStale {
		t.Fatalf("restored ladder degraded to %v, want stale reuse", dec.Degraded)
	}
	if dec.Served <= 0 {
		t.Error("restored stale reuse served nothing")
	}
}

func TestResilientRestoreRejectsWrongFleet(t *testing.T) {
	sys := paperSystem(t, Options{})
	r := NewResilient(sys, ResilientOptions{})
	if err := r.Restore(ResilientState{
		LastGood: &Decision{Sites: make([]SiteAlloc, 99)},
	}); err == nil {
		t.Fatal("restore accepted a checkpoint from a different fleet")
	}
	if err := r.Restore(ResilientState{LastBudget: -5}); err == nil {
		t.Fatal("restore accepted a negative budget")
	}
}

package core

import (
	"math"
	"testing"

	"billcap/internal/lp"
)

// TestSparseWeekMatchesDenseOracle is the tentpole's cross-core acceptance
// property: a seeded 168-hour week decided hour by hour on the sparse revised
// simplex must reproduce the dense tableau oracle's decisions — same algorithm
// branch every hour, same step objective within tolerance — while actually
// exercising the sparse machinery (basis updates and refactorizations
// reported, and none on the dense side). Run under -race in CI.
func TestSparseWeekMatchesDenseOracle(t *testing.T) {
	dense := paperSystem(t, Options{DeterministicSolver: true, LPCore: lp.CoreDense})
	sparse := paperSystem(t, Options{DeterministicSolver: true, LPCore: lp.CoreSparse})

	probe := HourInput{TotalLambda: 1.2e12, PremiumLambda: 6e11, DemandMW: demand3(), BudgetUSD: math.Inf(1)}
	d, err := dense.DecideHour(probe)
	if err != nil {
		t.Fatal(err)
	}
	tight, loose := d.PredictedCostUSD*0.5, d.PredictedCostUSD*10

	var denseStats, sparseStats SolverStats
	for _, in := range simWeek(11, tight, loose) {
		dd, errD := dense.DecideHour(in)
		ds, errS := sparse.DecideHour(in)
		if (errD == nil) != (errS == nil) {
			t.Fatalf("hour %d: dense err %v vs sparse err %v", in.Hour, errD, errS)
		}
		if errD != nil {
			continue
		}
		denseStats.Accumulate(dd.Solver)
		sparseStats.Accumulate(ds.Solver)
		if dd.Step != ds.Step {
			t.Fatalf("hour %d: dense step %v vs sparse step %v", in.Hour, dd.Step, ds.Step)
		}
		// Step objective equivalence, same convention as the solve-cache week
		// test: step 1 branches minimize cost, step 2 branches maximize
		// Σx − ε·cost in scaled units (alternate optima may differ in cost).
		switch dd.Step {
		case StepCostMin, StepPremiumOnly:
			tol := 1e-9*(1+math.Abs(dd.PredictedCostUSD)) + 1e-6
			if diff := math.Abs(dd.PredictedCostUSD - ds.PredictedCostUSD); diff > tol {
				t.Errorf("hour %d (%v): sparse cost %v vs dense %v (diff %g)",
					in.Hour, dd.Step, ds.PredictedCostUSD, dd.PredictedCostUSD, diff)
			}
		default:
			scale := lambdaScale(in.TotalLambda)
			eps := dense.Options().epsilon()
			objD := dd.Served/scale - eps*dd.PredictedCostUSD
			objS := ds.Served/scale - eps*ds.PredictedCostUSD
			tol := 1e-9*(1+math.Abs(objD)) + 1e-6
			if diff := math.Abs(objD - objS); diff > tol {
				t.Errorf("hour %d (%v): sparse objective %v vs dense %v (diff %g)",
					in.Hour, dd.Step, objS, objD, diff)
			}
		}
		// The sparse decision must be feasible in its own right.
		if ds.Served > in.TotalLambda*(1+1e-9)+1e-6 {
			t.Errorf("hour %d: sparse serves %v of %v arrivals", in.Hour, ds.Served, in.TotalLambda)
		}
		for i, a := range ds.Sites {
			site := sparse.Sites[i].DC
			if a.On && a.PowerMW > site.PowerCapMW+1e-6 {
				t.Errorf("hour %d site %d: power %v exceeds cap %v", in.Hour, i, a.PowerMW, site.PowerCapMW)
			}
			if in.SiteDown(i) && a.On {
				t.Errorf("hour %d site %d: down site powered on", in.Hour, i)
			}
		}
	}

	// The factorization counters must tell the two cores apart: a week of
	// MILP solves on the sparse core performs eta updates (and, on the bigger
	// hours, periodic refactorizations), while the dense oracle reports none.
	if sparseStats.LPBasisUpdates == 0 {
		t.Error("a full sparse week reported no basis updates")
	}
	if denseStats.LPRefactorizations != 0 || denseStats.LPBasisUpdates != 0 {
		t.Errorf("dense oracle reported factorization work: %+v", denseStats)
	}
	if denseStats.LPIterations == 0 || sparseStats.LPIterations == 0 {
		t.Error("a full week reported no simplex iterations")
	}
}

package core

import (
	"fmt"
	"math"

	"billcap/internal/dcmodel"
)

// SiteRealization is the ground truth of one site for one hour: discrete
// server/switch counts and the price the market actually charges at the
// realized regional load — independent of whatever model the optimizer used.
type SiteRealization struct {
	Lambda         float64
	Breakdown      dcmodel.PowerBreakdown
	PowerMW        float64
	RegionLoadMW   float64
	PriceUSDPerMWh float64
	CostUSD        float64
	// CapViolated reports a draw above the supplier's cap Ps — the event the
	// paper says suppliers "penalize heavily" (§I). Optimizers that model
	// power fully avoid it; server-only optimizers can trip it.
	CapViolated bool
	// PenaltyUSD is the supplier's charge for the excess above the cap.
	PenaltyUSD float64
	// RespTimeHours is the realized mean response time (0 when off).
	RespTimeHours float64
}

// Realization aggregates the ground truth of one hour.
type Realization struct {
	Sites []SiteRealization
	// CostUSD is the true energy charge of the hour (Σ price × power).
	CostUSD float64
	// PenaltyUSD is the total cap-violation charge of the hour.
	PenaltyUSD float64
	// ServedLambda is the load actually carried (after clamping to what each
	// site's installed servers can hold within SLA).
	ServedLambda float64
	// DroppedLambda is load the dispatcher had to shed because an allocation
	// exceeded a site's physical capacity (should be ~0 for sane deciders).
	DroppedLambda float64
	// CapViolations counts sites above their power cap.
	CapViolations int
}

// Realize evaluates an allocation against the discrete site models and the
// true locational pricing policies. lambdas[i] is the load dispatched to
// site i; demand[i] is that region's background draw in MW.
func (s *System) Realize(lambdas, demand []float64) (Realization, error) {
	if len(lambdas) != len(s.Sites) || len(demand) != len(s.Sites) {
		return Realization{}, fmt.Errorf("%w: realize got %d/%d entries for %d sites",
			ErrBadInput, len(lambdas), len(demand), len(s.Sites))
	}
	out := Realization{Sites: make([]SiteRealization, len(s.Sites))}
	for i, site := range s.Sites {
		lam := lambdas[i]
		if lam < 0 || math.IsNaN(lam) {
			return Realization{}, fmt.Errorf("%w: bad load %v for site %s", ErrBadInput, lam, site.DC.Name)
		}
		// Physical ceiling: the dispatcher cannot make installed servers
		// serve more than the SLA admits; excess is dropped and accounted.
		maxLam, err := site.DC.Queue.MaxThroughput(site.DC.MaxServers, site.DC.RespSLAHours)
		if err != nil {
			return Realization{}, fmt.Errorf("core: site %s: %w", site.DC.Name, err)
		}
		if lam > maxLam {
			out.DroppedLambda += lam - maxLam
			lam = maxLam
		}
		b, err := site.DC.Evaluate(lam)
		if err != nil {
			return Realization{}, fmt.Errorf("core: site %s: %w", site.DC.Name, err)
		}
		p := b.TotalMW()
		load := demand[i] + p
		price := site.Policy.Price(load)
		r := SiteRealization{
			Lambda:         lam,
			Breakdown:      b,
			PowerMW:        p,
			RegionLoadMW:   load,
			PriceUSDPerMWh: price,
			CostUSD:        price * p, // one-hour invocation period: MW ≡ MWh
			CapViolated:    p > site.DC.PowerCapMW+1e-9,
		}
		if r.CapViolated {
			r.PenaltyUSD = s.opts.capPenalty() * (p - site.DC.PowerCapMW)
		}
		if lam > 0 {
			r.RespTimeHours = site.DC.Queue.ResponseTime(lam, b.Servers)
		}
		out.Sites[i] = r
		out.CostUSD += r.CostUSD
		out.PenaltyUSD += r.PenaltyUSD
		out.ServedLambda += lam
		if r.CapViolated {
			out.CapViolations++
		}
	}
	return out, nil
}

// BillUSD is the full hourly bill: energy charges plus cap penalties.
func (r Realization) BillUSD() float64 { return r.CostUSD + r.PenaltyUSD }

// Lambdas extracts the per-site loads from a decision, in site order.
func (d Decision) Lambdas() []float64 {
	out := make([]float64, len(d.Sites))
	for i, a := range d.Sites {
		out[i] = a.Lambda
	}
	return out
}

package core

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"billcap/internal/lpparse"
)

// TestBuildHourPatchMatchesRebuild proves the skeleton-patching path emits
// exactly the model a cold rebuild would: two hours with different demand,
// load and scale, where the second build is a cache hit, must produce a
// byte-identical lp_solve dump to a from-scratch buildBase.
func TestBuildHourPatchMatchesRebuild(t *testing.T) {
	s := paperSystem(t, Options{SolverCache: true})
	inA := HourInput{TotalLambda: 9e11, PremiumLambda: 5e11, DemandMW: demand3(), BudgetUSD: math.Inf(1)}
	inB := HourInput{TotalLambda: 1.3e12, PremiumLambda: 6e11, DemandMW: []float64{180, 175, 160}, BudgetUSD: math.Inf(1)}

	// Hour A populates the cache.
	scaleA := lambdaScale(inA.TotalLambda)
	if _, _, _, err := s.buildHour(inA, scaleA, inA.TotalLambda); err != nil {
		t.Fatal(err)
	}
	// Hour B should hit and patch.
	scaleB := lambdaScale(inB.TotalLambda)
	patched, _, _, err := s.buildHour(inB, scaleB, inB.TotalLambda)
	if err != nil {
		t.Fatal(err)
	}
	if hits, _ := s.cache.Stats(); hits == 0 {
		t.Fatal("second hour with the same reachable segments did not hit the skeleton cache")
	}
	fresh, _, err := s.buildBase(inB, scaleB, inB.TotalLambda)
	if err != nil {
		t.Fatal(err)
	}
	var got, want bytes.Buffer
	if err := lpparse.Write(&got, patched); err != nil {
		t.Fatal(err)
	}
	if err := lpparse.Write(&want, fresh); err != nil {
		t.Fatal(err)
	}
	if got.String() != want.String() {
		t.Errorf("patched skeleton differs from a cold rebuild:\n--- patched ---\n%s\n--- rebuilt ---\n%s",
			got.String(), want.String())
	}
}

// TestBuildHourSignatureMiss: demand high enough to change the reachable
// segment set must miss the cache and rebuild rather than patch the wrong
// shape.
func TestBuildHourSignatureMiss(t *testing.T) {
	s := paperSystem(t, Options{SolverCache: true})
	inA := HourInput{TotalLambda: 9e11, PremiumLambda: 5e11, DemandMW: demand3(), BudgetUSD: math.Inf(1)}
	scale := lambdaScale(inA.TotalLambda)
	if _, _, sigA, err := s.buildHour(inA, scale, inA.TotalLambda); err != nil {
		t.Fatal(err)
	} else if sigA == 0 {
		t.Fatal("cache-enabled build returned zero signature")
	}
	// Push demand past the first breakpoints: lower segments become
	// unreachable, so the skeleton has fewer rows and must not be patched.
	inB := inA
	inB.DemandMW = []float64{260, 280, 240}
	if _, _, sigB, err := s.buildHour(inB, scale, inB.TotalLambda); err != nil {
		t.Fatal(err)
	} else if _, _, sigA, _ := s.buildHour(inA, scale, inA.TotalLambda); sigA == sigB {
		t.Error("demand shift that changes segment reachability kept the same signature")
	}
}

// simWeek builds a deterministic pseudo-diurnal week of inputs that walks
// through every branch of the two-step algorithm: abundant and tight budgets,
// light and heavy hours, and a few single-site outages.
func simWeek(seed int64, tightBudget, looseBudget float64) []HourInput {
	r := rand.New(rand.NewSource(seed))
	ins := make([]HourInput, 168)
	for h := range ins {
		diurnal := 0.6 + 0.4*math.Sin(2*math.Pi*float64(h%24)/24)
		total := 1.4e12 * diurnal * (0.9 + 0.2*r.Float64())
		in := HourInput{
			Hour:          h,
			TotalLambda:   total,
			PremiumLambda: total * (0.3 + 0.2*r.Float64()),
			DemandMW: []float64{
				150 + 60*r.Float64(),
				160 + 60*r.Float64(),
				140 + 60*r.Float64(),
			},
			BudgetUSD: looseBudget,
		}
		if h%3 == 1 {
			in.BudgetUSD = tightBudget
		}
		if h%41 == 40 {
			in.Down = []bool{false, false, false}
			in.Down[r.Intn(3)] = true
		}
		ins[h] = in
	}
	return ins
}

// TestSolverCacheWeekMatchesCold is the tentpole's end-to-end equivalence
// property: a seeded simulated week decided hour by hour with the solve cache
// on (presolve + skeleton patching + basis/incumbent seeding) must reproduce
// the cold system's decisions — same branch every hour and the same step
// objective to within the solver's optimality gap — while actually exercising
// the incremental machinery (warm starts taken, binaries presolved away,
// skeleton hits). Run under -race in CI alongside the parallel-solver
// property tests.
func TestSolverCacheWeekMatchesCold(t *testing.T) {
	cold := paperSystem(t, Options{DeterministicSolver: true})
	warm := paperSystem(t, Options{DeterministicSolver: true, SolverCache: true})

	// Calibrate the tight budget at half of an average hour's uncapped cost,
	// so step 2 binds often and its budget row gives presolve something to
	// prove about the expensive price segments.
	probe := HourInput{TotalLambda: 1.2e12, PremiumLambda: 6e11, DemandMW: demand3(), BudgetUSD: math.Inf(1)}
	d, err := cold.DecideHour(probe)
	if err != nil {
		t.Fatal(err)
	}
	tight, loose := d.PredictedCostUSD*0.5, d.PredictedCostUSD*10

	var coldStats, warmStats SolverStats
	for _, in := range simWeek(7, tight, loose) {
		dc, errC := cold.DecideHour(in)
		dw, errW := warm.DecideHour(in)
		if (errC == nil) != (errW == nil) {
			t.Fatalf("hour %d: cold err %v vs warm err %v", in.Hour, errC, errW)
		}
		if errC != nil {
			continue
		}
		coldStats.Accumulate(dc.Solver)
		warmStats.Accumulate(dw.Solver)
		if dc.Step != dw.Step {
			t.Fatalf("hour %d: cold step %v vs warm step %v", in.Hour, dc.Step, dw.Step)
		}
		// Step objective equivalence. Step 1 branches minimize cost; step 2
		// branches maximize Σx − ε·cost in scaled units.
		switch dc.Step {
		case StepCostMin, StepPremiumOnly:
			tol := 1e-9*(1+math.Abs(dc.PredictedCostUSD)) + 1e-6
			if diff := math.Abs(dc.PredictedCostUSD - dw.PredictedCostUSD); diff > tol {
				t.Errorf("hour %d (%v): warm cost %v vs cold %v (diff %g)",
					in.Hour, dc.Step, dw.PredictedCostUSD, dc.PredictedCostUSD, diff)
			}
		default:
			scale := lambdaScale(in.TotalLambda)
			eps := cold.Options().epsilon()
			objC := dc.Served/scale - eps*dc.PredictedCostUSD
			objW := dw.Served/scale - eps*dw.PredictedCostUSD
			tol := 1e-9*(1+math.Abs(objC)) + 1e-6
			if diff := math.Abs(objC - objW); diff > tol {
				t.Errorf("hour %d (%v): warm objective %v vs cold %v (diff %g)",
					in.Hour, dc.Step, objW, objC, diff)
			}
		}
		// The warm decision must be feasible in its own right.
		if dw.Served > in.TotalLambda*(1+1e-9)+1e-6 {
			t.Errorf("hour %d: warm serves %v of %v arrivals", in.Hour, dw.Served, in.TotalLambda)
		}
		for i, a := range dw.Sites {
			dcSite := warm.Sites[i].DC
			if a.On && a.PowerMW > dcSite.PowerCapMW+1e-6 {
				t.Errorf("hour %d site %d: power %v exceeds cap %v", in.Hour, i, a.PowerMW, dcSite.PowerCapMW)
			}
			if in.SiteDown(i) && a.On {
				t.Errorf("hour %d site %d: down site powered on", in.Hour, i)
			}
		}
		if dw.Step == StepBudgetCapped && dw.PredictedCostUSD > in.BudgetUSD*(1+budgetSlack)+1e-4 {
			t.Errorf("hour %d: budget-capped warm decision costs %v over budget %v",
				in.Hour, dw.PredictedCostUSD, in.BudgetUSD)
		}
	}

	if warmStats.WarmStarted == 0 {
		t.Error("a full week warm-started no solve — the cross-hour cache never seeded an incumbent")
	}
	if warmStats.PresolveFixed == 0 {
		t.Error("a full week of tight-budget hours presolve-fixed no binaries")
	}
	if coldStats.WarmStarted != 0 || coldStats.PresolveFixed != 0 {
		t.Errorf("cold system reports incremental-solving stats: %+v", coldStats)
	}
	if hits, _ := warm.cache.Stats(); hits == 0 {
		t.Error("skeleton cache recorded no hits across a week of structurally similar hours")
	}
	// Node counts include the extra root re-solve that applies presolve
	// fixings (one bookkeeping "node" per fixed solve), so compare the work
	// that actually costs time: simplex pivots. Incremental solving must not
	// make the week materially more expensive than cold.
	if float64(warmStats.LPIterations) > 1.1*float64(coldStats.LPIterations) {
		t.Errorf("warm week spent %d pivots, cold %d — incremental solving must not grow the search",
			warmStats.LPIterations, coldStats.LPIterations)
	}
}

package core

import (
	"context"
	"math"
	"strings"
	"testing"
	"time"

	"billcap/internal/obs"
)

func goodInput(hour int) HourInput {
	return HourInput{
		Hour:          hour,
		TotalLambda:   1.5e12,
		PremiumLambda: 1.2e12,
		DemandMW:      demand3(),
		BudgetUSD:     math.Inf(1),
	}
}

func TestResilientOptimalPath(t *testing.T) {
	r := NewResilient(paperSystem(t, Options{}), ResilientOptions{})
	dec := r.Decide(goodInput(0))
	if dec.Degraded != DegradeNone {
		t.Fatalf("healthy hour degraded to %v", dec.Degraded)
	}
	if rel := math.Abs(dec.Served-1.5e12) / 1.5e12; rel > 1e-6 {
		t.Errorf("served %v of 1.5e12", dec.Served)
	}
}

func TestSolveDeadlineYieldsTimeLimitIncumbent(t *testing.T) {
	// A deadline that expires before the first branch-and-bound check forces
	// the incumbent-manufacturing path. The hour must actually branch for a
	// deadline to be interruptible: with the tightened on/off big-M the
	// uncapped paper hour solves integrally at the root LP (one solve, which
	// is the cooperative floor and yields a proven optimum regardless of
	// deadline), so use a binding budget, whose step-2/premium solves have
	// fractional roots.
	s := paperSystem(t, Options{SolveDeadline: time.Nanosecond})
	in := goodInput(0)
	in.BudgetUSD = 500
	dec, err := s.DecideHour(in)
	if err != nil {
		t.Fatalf("deadline-limited decide failed: %v", err)
	}
	if dec.Degraded != DegradeTimeLimit {
		t.Fatalf("degraded = %v, want %v", dec.Degraded, DegradeTimeLimit)
	}
	if dec.Solver.Timeouts == 0 {
		t.Error("no timeout recorded in solver stats")
	}
	if dec.Served <= 0 {
		t.Error("incumbent served nothing")
	}
	for i, a := range dec.Sites {
		dc := s.Sites[i].DC
		if a.PowerMW > dc.PowerCapMW+1e-9 {
			t.Errorf("site %d incumbent draw %v exceeds cap %v", i, a.PowerMW, dc.PowerCapMW)
		}
	}
}

func TestResilientFallbackOnSolverFailure(t *testing.T) {
	sys := paperSystem(t, Options{})
	r := NewResilient(sys, ResilientOptions{})
	r.InjectSolverFailure(5)
	dec := r.Decide(goodInput(5))
	if dec.Degraded != DegradeFallback {
		t.Fatalf("degraded = %v, want %v", dec.Degraded, DegradeFallback)
	}
	if rel := math.Abs(dec.ServedPremium-1.2e12) / 1.2e12; rel > 1e-6 {
		t.Errorf("fallback served %v premium of 1.2e12", dec.ServedPremium)
	}
	for i, a := range dec.Sites {
		dc := sys.Sites[i].DC
		if a.PowerMW > dc.PowerCapMW+1e-9 {
			t.Errorf("site %d fallback draw %v exceeds cap %v", i, a.PowerMW, dc.PowerCapMW)
		}
	}
}

func TestResilientStaleReuseAndShed(t *testing.T) {
	r := NewResilient(paperSystem(t, Options{}), ResilientOptions{MaxStaleHours: 2})
	good := r.Decide(goodInput(0))
	if good.Degraded != DegradeNone {
		t.Fatalf("seed hour degraded: %v", good.Degraded)
	}

	// Both solver rungs down, last good decision 1 hour old → stale reuse,
	// scaled down to the smaller arrivals.
	for h := 1; h <= 4; h++ {
		r.InjectSolverFailure(h)
		r.InjectFallbackFailure(h)
	}
	in := goodInput(1)
	in.TotalLambda = 1e12
	in.PremiumLambda = 8e11
	dec := r.Decide(in)
	if dec.Degraded != DegradeStale {
		t.Fatalf("degraded = %v, want %v", dec.Degraded, DegradeStale)
	}
	if dec.Served > in.TotalLambda*(1+1e-9) {
		t.Errorf("stale reuse served %v > arrivals %v", dec.Served, in.TotalLambda)
	}
	if dec.Served <= 0 {
		t.Error("stale reuse served nothing")
	}

	// 4 hours past the last good decision with MaxStaleHours=2 → shed.
	dec = r.Decide(goodInput(4))
	if dec.Degraded != DegradeShed {
		t.Fatalf("degraded = %v, want %v", dec.Degraded, DegradeShed)
	}
	if dec.Served != 0 {
		t.Errorf("shed hour served %v", dec.Served)
	}
	if len(dec.Sites) != r.System().NumSites() {
		t.Errorf("shed decision has %d site entries", len(dec.Sites))
	}
}

func TestResilientStaleUnloadsDownSites(t *testing.T) {
	r := NewResilient(paperSystem(t, Options{}), ResilientOptions{})
	if dec := r.Decide(goodInput(0)); dec.Degraded != DegradeNone {
		t.Fatalf("seed hour degraded: %v", dec.Degraded)
	}
	r.InjectSolverFailure(1)
	r.InjectFallbackFailure(1)
	in := goodInput(1)
	in.Down = []bool{true, false, false}
	dec := r.Decide(in)
	if dec.Degraded != DegradeStale {
		t.Fatalf("degraded = %v, want %v", dec.Degraded, DegradeStale)
	}
	if dec.Sites[0].Lambda != 0 || dec.Sites[0].On {
		t.Errorf("down site still loaded in stale reuse: %+v", dec.Sites[0])
	}
}

func TestResilientSanitizesCorruptFeeds(t *testing.T) {
	r := NewResilient(paperSystem(t, Options{}), ResilientOptions{})
	if dec := r.Decide(goodInput(0)); dec.Degraded != DegradeNone {
		t.Fatalf("seed hour degraded: %v", dec.Degraded)
	}
	// Hour 1: the demand feed drops (NaN) and the budget goes negative. The
	// last pristine values substitute and the MILP still answers.
	in := goodInput(1)
	in.DemandMW = []float64{math.NaN(), math.NaN(), math.NaN()}
	in.BudgetUSD = -100
	dec := r.Decide(in)
	if dec.Degraded != DegradeNone {
		t.Fatalf("patched input degraded to %v", dec.Degraded)
	}
	if dec.Served <= 0 {
		t.Error("patched hour served nothing")
	}
	// A wrong-arity demand feed is also survivable.
	in = goodInput(2)
	in.DemandMW = []float64{170}
	if dec := r.Decide(in); dec.Served <= 0 {
		t.Error("short demand feed served nothing")
	}
}

func TestResilientCancelledContextStillDecides(t *testing.T) {
	r := NewResilient(paperSystem(t, Options{}), ResilientOptions{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	// Budget-capped so the hour branches; a root-integral hour would finish
	// its single LP solve (the cooperative floor) and legitimately report a
	// clean optimum even under a dead context.
	in := goodInput(0)
	in.BudgetUSD = 500
	dec := r.DecideCtx(ctx, in)
	if dec.Served <= 0 {
		t.Fatalf("cancelled context produced an empty decision (%v rung)", dec.Degraded)
	}
	if dec.Degraded == DegradeNone {
		// A pre-cancelled context cannot complete a clean branching solve; it
		// must land on a degraded rung (time-limit incumbent or below).
		t.Errorf("cancelled context claims a clean optimal solve")
	}
}

func TestDecideHourDownSite(t *testing.T) {
	s := paperSystem(t, Options{})
	in := goodInput(0)
	in.TotalLambda = 1e12
	in.PremiumLambda = 8e11
	in.Down = []bool{false, true, false}
	dec, err := s.DecideHour(in)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Sites[1].On || dec.Sites[1].Lambda != 0 {
		t.Fatalf("down site powered: %+v", dec.Sites[1])
	}
	if dec.Served <= 0 {
		t.Error("outage hour served nothing")
	}
}

func TestResilientMetricsCountRungs(t *testing.T) {
	reg := obs.NewRegistry()
	sys := paperSystem(t, Options{})
	sys.SetMetrics(NewMetrics(reg))
	r := NewResilient(sys, ResilientOptions{MaxStaleHours: 1})
	r.Decide(goodInput(0))
	r.InjectSolverFailure(1)
	r.Decide(goodInput(1))
	r.InjectSolverFailure(2)
	r.InjectFallbackFailure(2)
	r.Decide(goodInput(2))
	r.InjectSolverFailure(9)
	r.InjectFallbackFailure(9)
	r.Decide(goodInput(9)) // too stale → shed

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"billcap_fallback_used_total 1",
		"billcap_stale_decisions_total 1",
		`billcap_decide_degraded_total{rung="fallback"} 1`,
		`billcap_decide_degraded_total{rung="stale"} 1`,
		`billcap_decide_degraded_total{rung="shed"} 1`,
		`billcap_decide_degraded_total{rung="none"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"billcap/internal/dcmodel"
	"billcap/internal/pricing"
)

// TestDecideHourInvariantsProperty drives the two-step algorithm with
// random hours and checks the contracts the rest of the system relies on.
func TestDecideHourInvariantsProperty(t *testing.T) {
	s := paperSystem(t, Options{})
	capacity := s.MaxThroughput()
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		lam := r.Float64() * 1.2 * capacity // sometimes over capacity
		premFrac := r.Float64()
		budget := math.Inf(1)
		switch r.Intn(3) {
		case 0:
			budget = r.Float64() * 2000 // possibly binding hourly budget
		case 1:
			budget = 0
		}
		in := HourInput{
			TotalLambda:   lam,
			PremiumLambda: premFrac * lam,
			DemandMW: []float64{
				90 + 200*r.Float64(), 95 + 200*r.Float64(), 80 + 200*r.Float64(),
			},
			BudgetUSD: budget,
		}
		d, err := s.DecideHour(in)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		// Never serve more than arrives (within float tolerance).
		if d.Served > lam*(1+1e-9)+1 {
			t.Logf("seed %d: served %v > arrivals %v", seed, d.Served, lam)
			return false
		}
		// Premium + ordinary = served.
		if math.Abs(d.ServedPremium+d.ServedOrdinary-d.Served) > 1e-6*(1+d.Served) {
			t.Logf("seed %d: split %v+%v != %v", seed, d.ServedPremium, d.ServedOrdinary, d.Served)
			return false
		}
		// Premium is sacrificed only past physical capacity.
		if d.Step != StepOverCapacity && d.ServedPremium < in.PremiumLambda*(1-1e-9)-1 {
			t.Logf("seed %d: step %v dropped premium %v of %v", seed, d.Step, d.ServedPremium, in.PremiumLambda)
			return false
		}
		// Budget respected except in the premium-mandatory branches.
		if d.Step == StepCostMin || d.Step == StepBudgetCapped {
			if d.PredictedCostUSD > budget*(1+1e-6)+1e-3 {
				t.Logf("seed %d: step %v cost %v over budget %v", seed, d.Step, d.PredictedCostUSD, budget)
				return false
			}
		}
		// Per-site allocations are nonnegative and within believed limits.
		for i, a := range d.Sites {
			if a.Lambda < 0 {
				t.Logf("seed %d: site %d negative λ", seed, i)
				return false
			}
			if !a.On && a.Lambda != 0 {
				t.Logf("seed %d: site %d off but loaded", seed, i)
				return false
			}
		}
		// The realization never drops meaningful load for in-capacity hours.
		real, err := s.Realize(d.Lambdas(), in.DemandMW)
		if err != nil {
			t.Logf("seed %d: realize: %v", seed, err)
			return false
		}
		if real.DroppedLambda > 1e-6*(1+d.Served) {
			t.Logf("seed %d: realization dropped %v", seed, real.DroppedLambda)
			return false
		}
		if real.CapViolations != 0 {
			t.Logf("seed %d: %d cap violations from the cap-aware capper", seed, real.CapViolations)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestAblationOrderingProperty: on any in-capacity hour, the fully informed
// optimizer's realized bill is never worse than the degraded variants'
// beyond discretization noise.
func TestAblationOrderingProperty(t *testing.T) {
	full := paperSystem(t, Options{})
	a1 := paperSystem(t, Options{Scope: dcmodel.ServerOnly, PriceView: ViewLMP})
	a2 := paperSystem(t, Options{Scope: dcmodel.FullPower, PriceView: ViewFlatAvg})
	_ = pricing.Policy1
	capacity := full.MaxThroughput()
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		lam := (0.1 + 0.8*r.Float64()) * capacity
		in := HourInput{
			TotalLambda: lam,
			DemandMW: []float64{
				90 + 180*r.Float64(), 95 + 180*r.Float64(), 80 + 180*r.Float64(),
			},
			BudgetUSD: math.Inf(1),
		}
		df, err := full.MinimizeCost(in, lam, &SolverStats{})
		if err != nil {
			return false
		}
		rf, err := full.Realize(df.Lambdas(), in.DemandMW)
		if err != nil {
			return false
		}
		for _, sys := range []*System{a1, a2} {
			da, err := sys.MinimizeCost(in, lam, &SolverStats{})
			if err != nil {
				return false
			}
			ra, err := full.Realize(da.Lambdas(), in.DemandMW)
			if err != nil {
				return false
			}
			// 2% discretization/boundary tolerance.
			if rf.BillUSD() > ra.BillUSD()*1.02+1 {
				t.Logf("seed %d: full model %v worse than ablated %v", seed, rf.BillUSD(), ra.BillUSD())
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestLightHourServesLoad pins the big-M tightening of the on/off capacity
// link. With the raw site capacity as big-M, a light hour (λ ≈ 1e4× below
// fleet capacity) admits a relaxation point whose on/off y is within
// integrality tolerance of zero yet still licenses the full load — the MILP
// then "optimally" serves everything with every site off, and extraction
// zeroes the hour. Found by TestDecideHourInvariantsProperty at seed
// 6909396765408288749.
func TestLightHourServesLoad(t *testing.T) {
	s := paperSystem(t, Options{})
	in := HourInput{
		TotalLambda:   1.855848815864389e+07, // ≈1e-5 of fleet capacity
		PremiumLambda: 5.296395220644906e+06,
		DemandMW:      []float64{271.88, 274.26, 278.81},
		BudgetUSD:     math.Inf(1),
	}
	d, err := s.DecideHour(in)
	if err != nil {
		t.Fatal(err)
	}
	if d.Served < in.TotalLambda*(1-1e-9)-1 {
		t.Fatalf("light hour served %v of %v", d.Served, in.TotalLambda)
	}
	if d.ServedPremium < in.PremiumLambda*(1-1e-9)-1 {
		t.Fatalf("light hour served premium %v of %v", d.ServedPremium, in.PremiumLambda)
	}
	on := 0
	for _, a := range d.Sites {
		if a.On {
			on++
		}
	}
	if on == 0 {
		t.Fatal("load served with every site off")
	}
}

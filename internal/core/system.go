// Package core implements the paper's contribution: the two-step electricity
// bill capping algorithm for a network of cloud-scale, price-making data
// centers (paper §IV–§V).
//
// Step 1 (cost minimization) routes the hour's arrivals across sites to
// minimize Σᵢ Prᵢ·pᵢ where the price Prᵢ = Fᵢ(pᵢ + dᵢ) is a step function of
// the total regional load — a non-convex problem solved exactly as a MILP.
// Step 2 (throughput maximization within budget) engages when the minimized
// cost exceeds the hourly budget: it serves all premium traffic, admits as
// much ordinary traffic as the budget allows, and only violates the budget
// when premium traffic alone demands it.
package core

import (
	"errors"
	"fmt"
	"math"
	"sync/atomic"
	"time"

	"billcap/internal/dcmodel"
	"billcap/internal/lp"
	"billcap/internal/milp"
	"billcap/internal/pricing"
)

// Site pairs one data center with the pricing policy of its power market.
type Site struct {
	DC     *dcmodel.Site
	Policy pricing.Policy
}

// PriceView selects how an optimizer models prices. The paper's contribution
// uses the true locational step policies; the Min-Only baselines and the A2
// ablation flatten them.
type PriceView int

// Price views.
const (
	// ViewLMP models the full locational step policy (price maker).
	ViewLMP PriceView = iota
	// ViewFlatAvg models a constant price at the mean of the steps
	// (Min-Only (Avg), paper §VII-A).
	ViewFlatAvg
	// ViewFlatLow models a constant price at the lowest step
	// (Min-Only (Low)).
	ViewFlatLow
)

// String names the view.
func (v PriceView) String() string {
	switch v {
	case ViewLMP:
		return "lmp"
	case ViewFlatAvg:
		return "flat-avg"
	case ViewFlatLow:
		return "flat-low"
	}
	return fmt.Sprintf("PriceView(%d)", int(v))
}

// Options configure an optimizer over a System.
type Options struct {
	// Scope selects the power components the optimizer models.
	Scope dcmodel.ModelScope
	// PriceView selects the optimizer's price model.
	PriceView PriceView
	// Epsilon is the cost tie-break weight in the throughput-maximization
	// objective; 0 → 1e-4 (small enough to never trade throughput for cost).
	Epsilon float64
	// CapPenaltyUSDPerMWh is what the supplier charges for every MWh drawn
	// above the site's power cap Ps (paper §I: suppliers "penalize those
	// price makers heavily if this cap is exceeded"). 0 → 250 $/MWh, an
	// order of magnitude above the highest Policy 1 rate.
	CapPenaltyUSDPerMWh float64
	// SolveDeadline bounds the wall-clock time of each MILP solve inside a
	// decision; 0 → unlimited. When a solve expires, its best incumbent is
	// used and the decision is marked DegradeTimeLimit — a feasible but
	// possibly suboptimal answer instead of a hang (the real-time controller
	// must answer every invocation period).
	SolveDeadline time.Duration
	// MaxSolveNodes caps branch-and-bound nodes per solve; 0 → the solver
	// default.
	MaxSolveNodes int
	// SolverWorkers is the branch-and-bound worker-pool size per MILP solve
	// (milp.Options.Workers): 0 → GOMAXPROCS, 1 → the sequential solver.
	SolverWorkers int
	// DeterministicSolver pins the sequential node ordering regardless of
	// SolverWorkers, for reproducible replays and tests.
	DeterministicSolver bool
	// LPCore selects the simplex implementation behind every LP relaxation
	// (lp.CoreSparse, the default, or lp.CoreDense — the dense tableau
	// retained as the correctness oracle).
	LPCore lp.Core
	// Decompose enables the Lagrangian dual-decomposition solve path for
	// fleet-scale hour decisions: when the fleet exceeds DecomposeThreshold
	// sites, decideSteps routes each step's solve to internal/decomp —
	// per-site subproblems under dualized balance and budget rows, a
	// subgradient loop on the two multipliers, and a greedy-plus-LP primal
	// recovery — instead of the exact MILP. The decision then reports its
	// proven primal–dual gap in SolverStats{DecompIterations, DecompGap,
	// DecompDualBound}.
	Decompose bool
	// DecomposeThreshold is the fleet size above which Decompose routes away
	// from the exact MILP; 0 → 20. At or below the threshold the exact
	// branch-and-bound remains the oracle.
	DecomposeThreshold int
	// SolverCache enables incremental hour-over-hour solving: the MILP
	// presolve runs before every search, the hour-invariant model skeleton is
	// memoized (subsequent hours clone it and patch only the changed
	// coefficients), and each solve is seeded with the previous hour's
	// optimal basis and integer solution (re-checked for feasibility) as the
	// starting incumbent. Purely an acceleration: every seed is screened
	// before use, so decisions are bitwise-equivalent in objective to cold
	// solves up to the solver's optimality gap.
	SolverCache bool
}

// solveOptions derives the per-solve MILP options from the system options.
func (s *System) solveOptions() milp.Options {
	return milp.Options{
		Deadline:      s.opts.SolveDeadline,
		MaxNodes:      s.opts.MaxSolveNodes,
		Workers:       s.opts.SolverWorkers,
		Deterministic: s.opts.DeterministicSolver,
		LPCore:        s.opts.LPCore,
	}
}

func (o Options) capPenalty() float64 {
	if o.CapPenaltyUSDPerMWh == 0 {
		return 250
	}
	return o.CapPenaltyUSDPerMWh
}

func (o Options) epsilon() float64 {
	if o.Epsilon == 0 {
		return 1e-4
	}
	return o.Epsilon
}

// siteModel caches the per-site derived quantities the MILP builders need.
type siteModel struct {
	site      Site
	affine    dcmodel.AffineModel // per the optimizer's scope
	maxLambda float64             // per the optimizer's scope
}

// System is a network of data centers under one bill-capping controller.
//
// Concurrency: after NewSystem returns, every field the decision paths read
// (opts, models, Sites) is immutable, so DecideHour / DecideHourCtx /
// DecideBatch and the step solvers are safe for concurrent use from many
// goroutines — capperd serves all HTTP handlers from one System. The
// instrumentation pointer is the only mutable cell and is accessed
// atomically, so SetMetrics may race with in-flight decisions without
// corruption (decisions started before the swap report to the old bundle).
type System struct {
	Sites []Site

	opts    Options
	models  []siteModel
	metrics atomic.Pointer[Metrics] // optional instrumentation (see SetMetrics)
	// cache is the cross-hour solve cache (nil unless Options.SolverCache).
	// It is internally locked, so the concurrency contract above still holds:
	// concurrent decisions race only on which hour's optimum seeds the next
	// solve, never on correctness.
	cache *SolveCache
}

// NewSystem validates and assembles a system with the given optimizer
// options.
func NewSystem(dcs []*dcmodel.Site, policies []pricing.Policy, opts Options) (*System, error) {
	if len(dcs) == 0 {
		return nil, fmt.Errorf("core: no data centers")
	}
	if len(dcs) != len(policies) {
		return nil, fmt.Errorf("core: %d data centers but %d policies", len(dcs), len(policies))
	}
	s := &System{opts: opts}
	if opts.SolverCache {
		s.cache = newSolveCache()
	}
	for i, dc := range dcs {
		if err := dc.Validate(); err != nil {
			return nil, fmt.Errorf("core: site %d: %w", i, err)
		}
		site := Site{DC: dc, Policy: policies[i]}
		aff, err := dc.Affine(opts.Scope)
		if err != nil {
			return nil, fmt.Errorf("core: site %s: %w", dc.Name, err)
		}
		// Capacity limits always come from the full power model: every
		// operator enforces its supplier cap (the paper's §I — caps "must
		// first be enforced to avoid financial penalty"), even an optimizer
		// that prices only server power. The scope blinds the cost model,
		// not cap compliance.
		maxLam, err := dc.MaxLambda()
		if err != nil {
			return nil, fmt.Errorf("core: site %s: %w", dc.Name, err)
		}
		s.Sites = append(s.Sites, site)
		s.models = append(s.models, siteModel{site: site, affine: aff, maxLambda: maxLam})
	}
	return s, nil
}

// Options returns the optimizer options the system was built with.
func (s *System) Options() Options { return s.opts }

// NumSites returns the number of data centers.
func (s *System) NumSites() int { return len(s.Sites) }

// CapPenaltyUSDPerMWh returns the effective supplier penalty rate (the
// configured value or the package default), so harnesses billing metered
// grid draws outside Realize charge cap violations at the same rate.
func (s *System) CapPenaltyUSDPerMWh() float64 { return s.opts.capPenalty() }

// MaxThroughput returns the total arrival rate the system can accept under
// the optimizer's site models.
func (s *System) MaxThroughput() float64 {
	t := 0.0
	for _, m := range s.models {
		t += m.maxLambda
	}
	return t
}

// viewFn returns the price function of site i as the optimizer sees it.
func (s *System) viewFn(i int) pricing.Policy {
	p := s.Sites[i].Policy
	switch s.opts.PriceView {
	case ViewFlatAvg:
		return pricing.FlattenAvg(p)
	case ViewFlatLow:
		return pricing.FlattenLow(p)
	default:
		return p
	}
}

// HourInput is everything the capper needs for one invocation period.
type HourInput struct {
	// Hour is the absolute hour index since the scenario epoch (Monday
	// 00:00). The two-step capper itself is time-blind; time-of-use
	// baselines use Hour%24 to pick their tariff window.
	Hour int
	// TotalLambda is the hour's total arrivals in requests/hour.
	TotalLambda float64
	// PremiumLambda is the portion from paying customers, ≤ TotalLambda.
	PremiumLambda float64
	// DemandMW is the background regional demand d_i per site.
	DemandMW []float64
	// BudgetUSD is the hour's cost budget; +Inf disables capping.
	BudgetUSD float64
	// Down marks sites that are unavailable this hour (outage); nil means
	// every site is up. A down site is forced off in the MILP and receives
	// no load from the fallback dispatcher.
	Down []bool

	// The remaining fields extend the paper's energy-only bill to the tariff
	// engine (pricing.Tariff). All zero/nil values reproduce the original
	// model exactly.

	// DemandChargeUSDPerMW is the billing-period demand charge rate. When
	// positive, each site pays it for every MW its grid draw rises above
	// PeakMW[i] — the incremental form of peak-MW × $/MW-month billing that
	// keeps hours separable (the increments telescope to rate × final peak).
	DemandChargeUSDPerMW float64
	// PeakMW is the peak-so-far grid draw per site from the demand-charge
	// ledger (pricing.PeakLedger); nil means all zero.
	PeakMW []float64
	// RTPriceUSDPerMWh switches the hour to two-settlement: grid draw is
	// priced at this real-time rate per site instead of the step policy, and
	// the day-ahead position (DA − RT)·CommitMW is a decision-independent
	// constant folded into the predicted cost and the budget. nil = spot.
	RTPriceUSDPerMWh []float64
	// CommitMW is the day-ahead committed grid draw per site (two-settlement
	// only); nil means no commitments.
	CommitMW []float64
	// Batteries gives each site's storage for the hour; nil or a zero
	// CapacityMWh spec means no battery at that site. The MILP gains
	// charge/discharge variables bounded by the spec and by the current
	// state of charge.
	Batteries []BatterySpec
}

// BatterySpec is one site's storage as the hour MILP sees it: the physical
// bounds plus the planner's value of stored energy. It deliberately carries
// plain numbers rather than a *battery.Battery so decisions stay pure
// functions of their input.
type BatterySpec struct {
	// CapacityMWh, MaxChargeMW, MaxDischargeMW, Efficiency mirror
	// battery.Battery. CapacityMWh 0 = no battery.
	CapacityMWh    float64
	MaxChargeMW    float64
	MaxDischargeMW float64
	Efficiency     float64
	// SoCMWh is the state of charge entering the hour.
	SoCMWh float64
	// ValueUSDPerMWh prices stored energy in the objective (a Lagrangian
	// relaxation of the inter-hour SoC coupling): charging c MW banks
	// η·c MWh valued at ν each, discharging g MW spends ν·g. The hour then
	// charges exactly when the marginal energy price is below ν·η and
	// discharges when it is above ν. 0 makes the battery invisible to the
	// optimizer (it would discharge for free and never recharge), so
	// callers should set ν near the site's mid-band price.
	ValueUSDPerMWh float64
}

// active reports whether the spec describes a usable battery.
func (b BatterySpec) active() bool {
	return b.CapacityMWh > 0 && b.Efficiency > 0 && (b.MaxChargeMW > 0 || b.MaxDischargeMW > 0)
}

// SiteDown reports whether site i is marked unavailable.
func (in HourInput) SiteDown(i int) bool { return i < len(in.Down) && in.Down[i] }

// peak returns site i's peak-so-far grid draw.
func (in HourInput) peak(i int) float64 {
	if i < len(in.PeakMW) {
		return in.PeakMW[i]
	}
	return 0
}

// battery returns site i's battery spec (zero value = none).
func (in HourInput) battery(i int) BatterySpec {
	if i < len(in.Batteries) {
		return in.Batteries[i]
	}
	return BatterySpec{}
}

// twoSettlement reports whether the hour settles in the two-price market.
func (in HourInput) twoSettlement() bool { return len(in.RTPriceUSDPerMWh) > 0 }

// commit returns site i's day-ahead committed grid draw.
func (in HourInput) commit(i int) float64 {
	if i < len(in.CommitMW) {
		return in.CommitMW[i]
	}
	return 0
}

// hasBatteries reports whether any site has an active battery this hour.
func (in HourInput) hasBatteries() bool {
	for i := range in.Batteries {
		if in.battery(i).active() {
			return true
		}
	}
	return false
}

// hasTariffExtras reports whether the hour uses any tariff component beyond
// the energy-only model — the condition under which the solve cache's
// skeleton (built without the extra variables and rows) must be bypassed.
func (in HourInput) hasTariffExtras() bool {
	return in.DemandChargeUSDPerMW > 0 || in.twoSettlement() || in.hasBatteries()
}

// settlementUSD is the hour's decision-independent two-settlement position
// Σᵢ (DAᵢ − RTᵢ)·Cᵢ, where DA is the optimizer's price view evaluated at the
// committed load. Zero under spot settlement.
func (s *System) settlementUSD(in HourInput) float64 {
	if !in.twoSettlement() {
		return 0
	}
	total := 0.0
	for i := range s.models {
		c := in.commit(i)
		if c <= 0 {
			continue
		}
		da := s.viewFn(i).Price(in.DemandMW[i] + c)
		total += (da - in.RTPriceUSDPerMWh[i]) * c
	}
	return total
}

// ScaleLoad returns a copy of the input with TotalLambda and PremiumLambda
// multiplied by f, preserving the premium fraction — the drift re-solve's
// way of re-posing the hour at the observed arrival rate. A non-finite or
// non-positive factor returns the input unchanged (scaling to nothing or to
// infinity is never a useful re-solve).
func (in HourInput) ScaleLoad(f float64) HourInput {
	if math.IsNaN(f) || math.IsInf(f, 0) || f <= 0 {
		return in
	}
	in.TotalLambda *= f
	in.PremiumLambda *= f
	return in
}

// ErrBadInput marks validation failures: the request itself is malformed
// (negative loads, NaN demand, wrong arity), as opposed to solver or model
// failures. API layers map it to HTTP 400.
var ErrBadInput = errors.New("core: bad input")

// Validate reports the first problem with the input against the system.
func (s *System) ValidateInput(in HourInput) error {
	switch {
	case math.IsNaN(in.TotalLambda) || in.TotalLambda < 0:
		return fmt.Errorf("%w: negative total load %v", ErrBadInput, in.TotalLambda)
	case math.IsNaN(in.PremiumLambda) || in.PremiumLambda < 0 || in.PremiumLambda > in.TotalLambda+1e-9:
		return fmt.Errorf("%w: premium load %v outside [0, %v]", ErrBadInput, in.PremiumLambda, in.TotalLambda)
	case len(in.DemandMW) != len(s.Sites):
		return fmt.Errorf("%w: %d demand entries for %d sites", ErrBadInput, len(in.DemandMW), len(s.Sites))
	case math.IsNaN(in.BudgetUSD) || in.BudgetUSD < 0:
		return fmt.Errorf("%w: bad budget %v", ErrBadInput, in.BudgetUSD)
	case len(in.Down) != 0 && len(in.Down) != len(s.Sites):
		return fmt.Errorf("%w: %d availability entries for %d sites", ErrBadInput, len(in.Down), len(s.Sites))
	}
	for i, d := range in.DemandMW {
		if d < 0 || math.IsNaN(d) {
			return fmt.Errorf("%w: bad demand %v at site %d", ErrBadInput, d, i)
		}
	}
	return s.validateTariffInput(in)
}

// validateTariffInput checks the tariff-engine extensions of HourInput.
func (s *System) validateTariffInput(in HourInput) error {
	n := len(s.Sites)
	if r := in.DemandChargeUSDPerMW; math.IsNaN(r) || math.IsInf(r, 0) || r < 0 {
		return fmt.Errorf("%w: demand charge rate %v", ErrBadInput, r)
	}
	if len(in.PeakMW) != 0 && len(in.PeakMW) != n {
		return fmt.Errorf("%w: %d peak entries for %d sites", ErrBadInput, len(in.PeakMW), n)
	}
	for i, p := range in.PeakMW {
		if math.IsNaN(p) || math.IsInf(p, 0) || p < 0 {
			return fmt.Errorf("%w: bad peak %v MW at site %d", ErrBadInput, p, i)
		}
	}
	if len(in.RTPriceUSDPerMWh) != 0 && len(in.RTPriceUSDPerMWh) != n {
		return fmt.Errorf("%w: %d RT prices for %d sites", ErrBadInput, len(in.RTPriceUSDPerMWh), n)
	}
	for i, r := range in.RTPriceUSDPerMWh {
		if math.IsNaN(r) || math.IsInf(r, 0) || r < 0 {
			return fmt.Errorf("%w: bad RT price %v at site %d", ErrBadInput, r, i)
		}
	}
	if len(in.CommitMW) != 0 && len(in.CommitMW) != n {
		return fmt.Errorf("%w: %d commitments for %d sites", ErrBadInput, len(in.CommitMW), n)
	}
	if len(in.CommitMW) != 0 && !in.twoSettlement() {
		return fmt.Errorf("%w: day-ahead commitments without a real-time price series", ErrBadInput)
	}
	for i, c := range in.CommitMW {
		if math.IsNaN(c) || math.IsInf(c, 0) || c < 0 {
			return fmt.Errorf("%w: bad commitment %v MW at site %d", ErrBadInput, c, i)
		}
	}
	if len(in.Batteries) != 0 && len(in.Batteries) != n {
		return fmt.Errorf("%w: %d battery specs for %d sites", ErrBadInput, len(in.Batteries), n)
	}
	for i, b := range in.Batteries {
		switch {
		case math.IsNaN(b.CapacityMWh) || math.IsInf(b.CapacityMWh, 0) || b.CapacityMWh < 0:
			return fmt.Errorf("%w: battery capacity %v MWh at site %d", ErrBadInput, b.CapacityMWh, i)
		case b.CapacityMWh == 0:
			continue // no battery at this site
		case math.IsNaN(b.MaxChargeMW) || b.MaxChargeMW < 0 || math.IsNaN(b.MaxDischargeMW) || b.MaxDischargeMW < 0:
			return fmt.Errorf("%w: battery rates %v/%v MW at site %d", ErrBadInput, b.MaxChargeMW, b.MaxDischargeMW, i)
		case math.IsInf(b.MaxChargeMW, 0) || math.IsInf(b.MaxDischargeMW, 0):
			return fmt.Errorf("%w: battery rates %v/%v MW at site %d", ErrBadInput, b.MaxChargeMW, b.MaxDischargeMW, i)
		case b.Efficiency <= 0 || b.Efficiency > 1 || math.IsNaN(b.Efficiency):
			return fmt.Errorf("%w: battery efficiency %v at site %d", ErrBadInput, b.Efficiency, i)
		case math.IsNaN(b.SoCMWh) || b.SoCMWh < 0 || b.SoCMWh > b.CapacityMWh*(1+1e-9):
			return fmt.Errorf("%w: battery state of charge %v MWh outside [0, %v] at site %d",
				ErrBadInput, b.SoCMWh, b.CapacityMWh, i)
		case math.IsNaN(b.ValueUSDPerMWh) || math.IsInf(b.ValueUSDPerMWh, 0) || b.ValueUSDPerMWh < 0:
			return fmt.Errorf("%w: battery energy value %v at site %d", ErrBadInput, b.ValueUSDPerMWh, i)
		}
	}
	return nil
}

// Package core implements the paper's contribution: the two-step electricity
// bill capping algorithm for a network of cloud-scale, price-making data
// centers (paper §IV–§V).
//
// Step 1 (cost minimization) routes the hour's arrivals across sites to
// minimize Σᵢ Prᵢ·pᵢ where the price Prᵢ = Fᵢ(pᵢ + dᵢ) is a step function of
// the total regional load — a non-convex problem solved exactly as a MILP.
// Step 2 (throughput maximization within budget) engages when the minimized
// cost exceeds the hourly budget: it serves all premium traffic, admits as
// much ordinary traffic as the budget allows, and only violates the budget
// when premium traffic alone demands it.
package core

import (
	"errors"
	"fmt"
	"math"
	"sync/atomic"
	"time"

	"billcap/internal/dcmodel"
	"billcap/internal/lp"
	"billcap/internal/milp"
	"billcap/internal/pricing"
)

// Site pairs one data center with the pricing policy of its power market.
type Site struct {
	DC     *dcmodel.Site
	Policy pricing.Policy
}

// PriceView selects how an optimizer models prices. The paper's contribution
// uses the true locational step policies; the Min-Only baselines and the A2
// ablation flatten them.
type PriceView int

// Price views.
const (
	// ViewLMP models the full locational step policy (price maker).
	ViewLMP PriceView = iota
	// ViewFlatAvg models a constant price at the mean of the steps
	// (Min-Only (Avg), paper §VII-A).
	ViewFlatAvg
	// ViewFlatLow models a constant price at the lowest step
	// (Min-Only (Low)).
	ViewFlatLow
)

// String names the view.
func (v PriceView) String() string {
	switch v {
	case ViewLMP:
		return "lmp"
	case ViewFlatAvg:
		return "flat-avg"
	case ViewFlatLow:
		return "flat-low"
	}
	return fmt.Sprintf("PriceView(%d)", int(v))
}

// Options configure an optimizer over a System.
type Options struct {
	// Scope selects the power components the optimizer models.
	Scope dcmodel.ModelScope
	// PriceView selects the optimizer's price model.
	PriceView PriceView
	// Epsilon is the cost tie-break weight in the throughput-maximization
	// objective; 0 → 1e-4 (small enough to never trade throughput for cost).
	Epsilon float64
	// CapPenaltyUSDPerMWh is what the supplier charges for every MWh drawn
	// above the site's power cap Ps (paper §I: suppliers "penalize those
	// price makers heavily if this cap is exceeded"). 0 → 250 $/MWh, an
	// order of magnitude above the highest Policy 1 rate.
	CapPenaltyUSDPerMWh float64
	// SolveDeadline bounds the wall-clock time of each MILP solve inside a
	// decision; 0 → unlimited. When a solve expires, its best incumbent is
	// used and the decision is marked DegradeTimeLimit — a feasible but
	// possibly suboptimal answer instead of a hang (the real-time controller
	// must answer every invocation period).
	SolveDeadline time.Duration
	// MaxSolveNodes caps branch-and-bound nodes per solve; 0 → the solver
	// default.
	MaxSolveNodes int
	// SolverWorkers is the branch-and-bound worker-pool size per MILP solve
	// (milp.Options.Workers): 0 → GOMAXPROCS, 1 → the sequential solver.
	SolverWorkers int
	// DeterministicSolver pins the sequential node ordering regardless of
	// SolverWorkers, for reproducible replays and tests.
	DeterministicSolver bool
	// LPCore selects the simplex implementation behind every LP relaxation
	// (lp.CoreSparse, the default, or lp.CoreDense — the dense tableau
	// retained as the correctness oracle).
	LPCore lp.Core
	// Decompose enables the Lagrangian dual-decomposition solve path for
	// fleet-scale hour decisions: when the fleet exceeds DecomposeThreshold
	// sites, decideSteps routes each step's solve to internal/decomp —
	// per-site subproblems under dualized balance and budget rows, a
	// subgradient loop on the two multipliers, and a greedy-plus-LP primal
	// recovery — instead of the exact MILP. The decision then reports its
	// proven primal–dual gap in SolverStats{DecompIterations, DecompGap,
	// DecompDualBound}.
	Decompose bool
	// DecomposeThreshold is the fleet size above which Decompose routes away
	// from the exact MILP; 0 → 20. At or below the threshold the exact
	// branch-and-bound remains the oracle.
	DecomposeThreshold int
	// SolverCache enables incremental hour-over-hour solving: the MILP
	// presolve runs before every search, the hour-invariant model skeleton is
	// memoized (subsequent hours clone it and patch only the changed
	// coefficients), and each solve is seeded with the previous hour's
	// optimal basis and integer solution (re-checked for feasibility) as the
	// starting incumbent. Purely an acceleration: every seed is screened
	// before use, so decisions are bitwise-equivalent in objective to cold
	// solves up to the solver's optimality gap.
	SolverCache bool
}

// solveOptions derives the per-solve MILP options from the system options.
func (s *System) solveOptions() milp.Options {
	return milp.Options{
		Deadline:      s.opts.SolveDeadline,
		MaxNodes:      s.opts.MaxSolveNodes,
		Workers:       s.opts.SolverWorkers,
		Deterministic: s.opts.DeterministicSolver,
		LPCore:        s.opts.LPCore,
	}
}

func (o Options) capPenalty() float64 {
	if o.CapPenaltyUSDPerMWh == 0 {
		return 250
	}
	return o.CapPenaltyUSDPerMWh
}

func (o Options) epsilon() float64 {
	if o.Epsilon == 0 {
		return 1e-4
	}
	return o.Epsilon
}

// siteModel caches the per-site derived quantities the MILP builders need.
type siteModel struct {
	site      Site
	affine    dcmodel.AffineModel // per the optimizer's scope
	maxLambda float64             // per the optimizer's scope
}

// System is a network of data centers under one bill-capping controller.
//
// Concurrency: after NewSystem returns, every field the decision paths read
// (opts, models, Sites) is immutable, so DecideHour / DecideHourCtx /
// DecideBatch and the step solvers are safe for concurrent use from many
// goroutines — capperd serves all HTTP handlers from one System. The
// instrumentation pointer is the only mutable cell and is accessed
// atomically, so SetMetrics may race with in-flight decisions without
// corruption (decisions started before the swap report to the old bundle).
type System struct {
	Sites []Site

	opts    Options
	models  []siteModel
	metrics atomic.Pointer[Metrics] // optional instrumentation (see SetMetrics)
	// cache is the cross-hour solve cache (nil unless Options.SolverCache).
	// It is internally locked, so the concurrency contract above still holds:
	// concurrent decisions race only on which hour's optimum seeds the next
	// solve, never on correctness.
	cache *SolveCache
}

// NewSystem validates and assembles a system with the given optimizer
// options.
func NewSystem(dcs []*dcmodel.Site, policies []pricing.Policy, opts Options) (*System, error) {
	if len(dcs) == 0 {
		return nil, fmt.Errorf("core: no data centers")
	}
	if len(dcs) != len(policies) {
		return nil, fmt.Errorf("core: %d data centers but %d policies", len(dcs), len(policies))
	}
	s := &System{opts: opts}
	if opts.SolverCache {
		s.cache = newSolveCache()
	}
	for i, dc := range dcs {
		if err := dc.Validate(); err != nil {
			return nil, fmt.Errorf("core: site %d: %w", i, err)
		}
		site := Site{DC: dc, Policy: policies[i]}
		aff, err := dc.Affine(opts.Scope)
		if err != nil {
			return nil, fmt.Errorf("core: site %s: %w", dc.Name, err)
		}
		// Capacity limits always come from the full power model: every
		// operator enforces its supplier cap (the paper's §I — caps "must
		// first be enforced to avoid financial penalty"), even an optimizer
		// that prices only server power. The scope blinds the cost model,
		// not cap compliance.
		maxLam, err := dc.MaxLambda()
		if err != nil {
			return nil, fmt.Errorf("core: site %s: %w", dc.Name, err)
		}
		s.Sites = append(s.Sites, site)
		s.models = append(s.models, siteModel{site: site, affine: aff, maxLambda: maxLam})
	}
	return s, nil
}

// Options returns the optimizer options the system was built with.
func (s *System) Options() Options { return s.opts }

// NumSites returns the number of data centers.
func (s *System) NumSites() int { return len(s.Sites) }

// MaxThroughput returns the total arrival rate the system can accept under
// the optimizer's site models.
func (s *System) MaxThroughput() float64 {
	t := 0.0
	for _, m := range s.models {
		t += m.maxLambda
	}
	return t
}

// viewFn returns the price function of site i as the optimizer sees it.
func (s *System) viewFn(i int) pricing.Policy {
	p := s.Sites[i].Policy
	switch s.opts.PriceView {
	case ViewFlatAvg:
		return pricing.FlattenAvg(p)
	case ViewFlatLow:
		return pricing.FlattenLow(p)
	default:
		return p
	}
}

// HourInput is everything the capper needs for one invocation period.
type HourInput struct {
	// Hour is the absolute hour index since the scenario epoch (Monday
	// 00:00). The two-step capper itself is time-blind; time-of-use
	// baselines use Hour%24 to pick their tariff window.
	Hour int
	// TotalLambda is the hour's total arrivals in requests/hour.
	TotalLambda float64
	// PremiumLambda is the portion from paying customers, ≤ TotalLambda.
	PremiumLambda float64
	// DemandMW is the background regional demand d_i per site.
	DemandMW []float64
	// BudgetUSD is the hour's cost budget; +Inf disables capping.
	BudgetUSD float64
	// Down marks sites that are unavailable this hour (outage); nil means
	// every site is up. A down site is forced off in the MILP and receives
	// no load from the fallback dispatcher.
	Down []bool
}

// SiteDown reports whether site i is marked unavailable.
func (in HourInput) SiteDown(i int) bool { return i < len(in.Down) && in.Down[i] }

// ScaleLoad returns a copy of the input with TotalLambda and PremiumLambda
// multiplied by f, preserving the premium fraction — the drift re-solve's
// way of re-posing the hour at the observed arrival rate. A non-finite or
// non-positive factor returns the input unchanged (scaling to nothing or to
// infinity is never a useful re-solve).
func (in HourInput) ScaleLoad(f float64) HourInput {
	if math.IsNaN(f) || math.IsInf(f, 0) || f <= 0 {
		return in
	}
	in.TotalLambda *= f
	in.PremiumLambda *= f
	return in
}

// ErrBadInput marks validation failures: the request itself is malformed
// (negative loads, NaN demand, wrong arity), as opposed to solver or model
// failures. API layers map it to HTTP 400.
var ErrBadInput = errors.New("core: bad input")

// Validate reports the first problem with the input against the system.
func (s *System) ValidateInput(in HourInput) error {
	switch {
	case math.IsNaN(in.TotalLambda) || in.TotalLambda < 0:
		return fmt.Errorf("%w: negative total load %v", ErrBadInput, in.TotalLambda)
	case math.IsNaN(in.PremiumLambda) || in.PremiumLambda < 0 || in.PremiumLambda > in.TotalLambda+1e-9:
		return fmt.Errorf("%w: premium load %v outside [0, %v]", ErrBadInput, in.PremiumLambda, in.TotalLambda)
	case len(in.DemandMW) != len(s.Sites):
		return fmt.Errorf("%w: %d demand entries for %d sites", ErrBadInput, len(in.DemandMW), len(s.Sites))
	case math.IsNaN(in.BudgetUSD) || in.BudgetUSD < 0:
		return fmt.Errorf("%w: bad budget %v", ErrBadInput, in.BudgetUSD)
	case len(in.Down) != 0 && len(in.Down) != len(s.Sites):
		return fmt.Errorf("%w: %d availability entries for %d sites", ErrBadInput, len(in.Down), len(s.Sites))
	}
	for i, d := range in.DemandMW {
		if d < 0 || math.IsNaN(d) {
			return fmt.Errorf("%w: bad demand %v at site %d", ErrBadInput, d, i)
		}
	}
	return nil
}

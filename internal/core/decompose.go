package core

import (
	"fmt"
	"math"

	"billcap/internal/decomp"
	"billcap/internal/milp"
	"billcap/internal/piecewise"
)

// routeDecomp reports whether decideSteps should take the dual-decomposition
// path instead of the exact MILP: opted in and above the fleet-size
// threshold. Below it the exact solver stays the oracle. Battery hours also
// fall back to the exact MILP: the storage variables couple charge and
// discharge to the load inside each site in a way the closed-form segment
// subproblem does not model (demand charges and two-settlement, by contrast,
// stay separable and are absorbed into the segment costs below).
func (s *System) routeDecomp(in HourInput) bool {
	return s.opts.Decompose && len(s.models) > s.opts.decomposeThreshold() && !in.hasBatteries()
}

func (o Options) decomposeThreshold() int {
	if o.DecomposeThreshold <= 0 {
		return 20
	}
	return o.DecomposeThreshold
}

// decompOptions maps the per-solve MILP options onto the decomposition
// loop: deadline, cancellation, worker-pool bound and LP core carry over.
func (s *System) decompOptions(so milp.Options) decomp.Options {
	return decomp.Options{
		Workers:  so.Workers,
		Deadline: so.Deadline,
		Cancel:   so.Cancel,
		LPCore:   so.LPCore,
	}
}

// decompSites converts the hour into decomposition form, one site at a time:
// each reachable power segment from the piecewise plan becomes a load
// interval (power p = a·λ + b inverts to λ = (p − b)/a), with cost and power
// affine in the load. Down sites keep only their off state.
//
// The tariff engine's separable components are absorbed exactly rather than
// dualized: under two-settlement the energy rate is the flat RT price, and a
// demand charge splits each segment at the load where the grid draw crosses
// the ledger's peak-so-far — the above-peak part carries the extra
// dc·(p − peak) in its affine cost. No new coupling rows are needed, so the
// decomposition's gap guarantees carry over unchanged. (Batteries are the
// one non-separable extension; routeDecomp falls back to the exact MILP for
// them.)
func (s *System) decompSites(in HourInput) ([]decomp.Site, error) {
	sites := make([]decomp.Site, len(s.models))
	dc := in.DemandChargeUSDPerMW
	for i, sm := range s.models {
		name := sm.site.DC.Name
		site := decomp.Site{Name: name, CanOff: true}
		if in.SiteDown(i) {
			sites[i] = site
			continue
		}
		plan, err := piecewise.PlanSegments(s.viewFn(i).Fn, in.DemandMW[i],
			sm.site.DC.PowerCapMW, sm.site.DC.RoundingSlackMW())
		if err != nil {
			return nil, fmt.Errorf("core: site %s: %w", name, err)
		}
		a, b := sm.affine.A, sm.affine.B
		peak := in.peak(i)
		for _, sp := range plan {
			rate := sp.Rate
			if in.twoSettlement() {
				rate = in.RTPriceUSDPerMWh[i]
			}
			var lo, hi float64
			if a > 0 {
				lo = math.Max(0, (sp.Lo-b)/a)
				hi = math.Min(sm.maxLambda, (sp.Hi-b)/a)
			} else {
				// Constant draw b: only the segment containing it is live,
				// and the load is bounded by capacity alone.
				if b < sp.Lo || b > sp.Hi {
					continue
				}
				lo, hi = 0, sm.maxLambda
				seg := decomp.Segment{
					Seg: sp.Seg, LoadLo: lo, LoadHi: hi,
					Cost0: rate * b, Power0: b, Rate: rate,
				}
				if dc > 0 && b > peak {
					seg.Cost0 += dc * (b - peak)
				}
				site.Segments = append(site.Segments, seg)
				continue
			}
			if hi < lo {
				continue // the power segment sits outside the site's λ range
			}
			add := func(l0, l1 float64, abovePeak bool) {
				if l1 < l0 {
					return
				}
				seg := decomp.Segment{
					Seg:    sp.Seg,
					LoadLo: l0,
					LoadHi: l1,
					Cost0:  rate * b,
					Cost1:  rate * a,
					Power0: b,
					Power1: a,
					Rate:   rate,
				}
				if abovePeak {
					// rate·p + dc·(p − peak) with p = a·λ + b.
					seg.Cost0 += dc * (b - peak)
					seg.Cost1 += dc * a
				}
				site.Segments = append(site.Segments, seg)
			}
			if dc <= 0 {
				add(lo, hi, false)
				continue
			}
			// Split at the load where the grid draw crosses the peak ledger.
			loadAtPeak := (peak - b) / a
			switch {
			case loadAtPeak <= lo:
				add(lo, hi, true)
			case loadAtPeak >= hi:
				add(lo, hi, false)
			default:
				add(lo, loadAtPeak, false)
				add(loadAtPeak, hi, true)
			}
		}
		sites[i] = site
	}
	return sites, nil
}

// decompMinCost is the decomposition drop-in for minimizeCost: serve exactly
// lambda at minimum predicted cost. Signature-compatible with minimizeCost
// so decideSteps can swap solvers per call site.
func (s *System) decompMinCost(in HourInput, lambda float64, stats *SolverStats, so milp.Options, kind solveKind) (Decision, error) {
	if err := s.ValidateInput(in); err != nil {
		return Decision{}, err
	}
	if lambda < 0 || math.IsNaN(lambda) {
		return Decision{}, fmt.Errorf("%w: negative workload %v", ErrBadInput, lambda)
	}
	sites, err := s.decompSites(in)
	if err != nil {
		return Decision{}, err
	}
	inst := decomp.Instance{
		Sites:      sites,
		Sense:      decomp.MinCostServeAll,
		TargetLoad: lambda,
		BudgetUSD:  math.Inf(1),
	}
	res, err := decomp.Solve(inst, s.decompOptions(so))
	if err != nil {
		return Decision{}, err
	}
	if stats != nil {
		stats.addDecomp(res)
	}
	if res.Status == decomp.Infeasible {
		return Decision{}, fmt.Errorf("%w: %v req/h over %d sites", ErrInfeasible, lambda, len(sites))
	}
	d := s.decisionFromDecomp(res, in)
	if stats != nil {
		d.Solver = *stats
	}
	return d, nil
}

// decompMaxThroughput is the decomposition drop-in for maximizeThroughput:
// admit as much load as possible within the budget.
func (s *System) decompMaxThroughput(in HourInput, stats *SolverStats, so milp.Options, kind solveKind) (Decision, error) {
	if err := s.ValidateInput(in); err != nil {
		return Decision{}, err
	}
	sites, err := s.decompSites(in)
	if err != nil {
		return Decision{}, err
	}
	budget := in.BudgetUSD
	if !math.IsInf(budget, 1) {
		// The two-settlement position is sunk; only the remainder of the
		// budget constrains the dispatch (segment costs already include the
		// demand-charge increments).
		budget = math.Max(0, budget-s.settlementUSD(in))
	}
	inst := decomp.Instance{
		Sites:      sites,
		Sense:      decomp.MaxLoadWithinBudget,
		TargetLoad: in.TotalLambda,
		BudgetUSD:  budget,
		Epsilon:    s.opts.epsilon(),
	}
	res, err := decomp.Solve(inst, s.decompOptions(so))
	if err != nil {
		return Decision{}, err
	}
	if stats != nil {
		stats.addDecomp(res)
	}
	if res.Status == decomp.Infeasible {
		// All sites can switch off, so an empty plan is always feasible;
		// this is a solver-level failure worth surfacing.
		return Decision{}, fmt.Errorf("core: decomposed throughput maximization found no feasible plan")
	}
	d := s.decisionFromDecomp(res, in)
	if stats != nil {
		d.Solver = *stats
	}
	return d, nil
}

// decisionFromDecomp maps a recovered primal onto the capper's decision
// shape, re-deriving the tariff components from the allocation values (the
// same exactness discipline as decisionFrom: the audit re-checks claims, so
// they must be rate×power arithmetic, not objective readbacks).
func (s *System) decisionFromDecomp(res decomp.Result, in HourInput) Decision {
	d := Decision{Sites: make([]SiteAlloc, len(res.Sites))}
	for i, a := range res.Sites {
		alloc := SiteAlloc{
			Lambda:         a.Load,
			PowerMW:        a.PowerMW,
			GridMW:         a.PowerMW, // no batteries on the decomp path
			PriceUSDPerMWh: a.Rate,
			On:             a.On,
		}
		if a.On {
			alloc.EnergyUSD = a.Rate * a.PowerMW
			if in.DemandChargeUSDPerMW > 0 {
				alloc.DemandUSD = in.DemandChargeUSDPerMW * math.Max(0, a.PowerMW-in.peak(i))
			}
			alloc.CostUSD = alloc.EnergyUSD + alloc.DemandUSD
		}
		d.Sites[i] = alloc
		d.EnergyCostUSD += alloc.EnergyUSD
		d.DemandChargeUSD += alloc.DemandUSD
	}
	d.SettlementUSD = s.settlementUSD(in)
	d.PredictedCostUSD = d.EnergyCostUSD + d.DemandChargeUSD + d.SettlementUSD
	d.Served = res.Load
	return d
}

package core

import (
	"fmt"
	"math"

	"billcap/internal/decomp"
	"billcap/internal/milp"
	"billcap/internal/piecewise"
)

// routeDecomp reports whether decideSteps should take the dual-decomposition
// path instead of the exact MILP: opted in and above the fleet-size
// threshold. Below it the exact solver stays the oracle.
func (s *System) routeDecomp() bool {
	return s.opts.Decompose && len(s.models) > s.opts.decomposeThreshold()
}

func (o Options) decomposeThreshold() int {
	if o.DecomposeThreshold <= 0 {
		return 20
	}
	return o.DecomposeThreshold
}

// decompOptions maps the per-solve MILP options onto the decomposition
// loop: deadline, cancellation, worker-pool bound and LP core carry over.
func (s *System) decompOptions(so milp.Options) decomp.Options {
	return decomp.Options{
		Workers:  so.Workers,
		Deadline: so.Deadline,
		Cancel:   so.Cancel,
		LPCore:   so.LPCore,
	}
}

// decompSites converts the hour into decomposition form, one site at a time:
// each reachable power segment from the piecewise plan becomes a load
// interval (power p = a·λ + b inverts to λ = (p − b)/a), with cost and power
// affine in the load. Down sites keep only their off state.
func (s *System) decompSites(in HourInput) ([]decomp.Site, error) {
	sites := make([]decomp.Site, len(s.models))
	for i, sm := range s.models {
		name := sm.site.DC.Name
		site := decomp.Site{Name: name, CanOff: true}
		if in.SiteDown(i) {
			sites[i] = site
			continue
		}
		plan, err := piecewise.PlanSegments(s.viewFn(i).Fn, in.DemandMW[i],
			sm.site.DC.PowerCapMW, sm.site.DC.RoundingSlackMW())
		if err != nil {
			return nil, fmt.Errorf("core: site %s: %w", name, err)
		}
		a, b := sm.affine.A, sm.affine.B
		for _, sp := range plan {
			var lo, hi float64
			if a > 0 {
				lo = math.Max(0, (sp.Lo-b)/a)
				hi = math.Min(sm.maxLambda, (sp.Hi-b)/a)
			} else {
				// Constant draw b: only the segment containing it is live,
				// and the load is bounded by capacity alone.
				if b < sp.Lo || b > sp.Hi {
					continue
				}
				lo, hi = 0, sm.maxLambda
			}
			if hi < lo {
				continue // the power segment sits outside the site's λ range
			}
			site.Segments = append(site.Segments, decomp.Segment{
				Seg:    sp.Seg,
				LoadLo: lo,
				LoadHi: hi,
				Cost0:  sp.Rate * b,
				Cost1:  sp.Rate * a,
				Power0: b,
				Power1: a,
				Rate:   sp.Rate,
			})
		}
		sites[i] = site
	}
	return sites, nil
}

// decompMinCost is the decomposition drop-in for minimizeCost: serve exactly
// lambda at minimum predicted cost. Signature-compatible with minimizeCost
// so decideSteps can swap solvers per call site.
func (s *System) decompMinCost(in HourInput, lambda float64, stats *SolverStats, so milp.Options, kind solveKind) (Decision, error) {
	if err := s.ValidateInput(in); err != nil {
		return Decision{}, err
	}
	if lambda < 0 || math.IsNaN(lambda) {
		return Decision{}, fmt.Errorf("%w: negative workload %v", ErrBadInput, lambda)
	}
	sites, err := s.decompSites(in)
	if err != nil {
		return Decision{}, err
	}
	inst := decomp.Instance{
		Sites:      sites,
		Sense:      decomp.MinCostServeAll,
		TargetLoad: lambda,
		BudgetUSD:  math.Inf(1),
	}
	res, err := decomp.Solve(inst, s.decompOptions(so))
	if err != nil {
		return Decision{}, err
	}
	if stats != nil {
		stats.addDecomp(res)
	}
	if res.Status == decomp.Infeasible {
		return Decision{}, fmt.Errorf("%w: %v req/h over %d sites", ErrInfeasible, lambda, len(sites))
	}
	d := decisionFromDecomp(res)
	if stats != nil {
		d.Solver = *stats
	}
	return d, nil
}

// decompMaxThroughput is the decomposition drop-in for maximizeThroughput:
// admit as much load as possible within the budget.
func (s *System) decompMaxThroughput(in HourInput, stats *SolverStats, so milp.Options, kind solveKind) (Decision, error) {
	if err := s.ValidateInput(in); err != nil {
		return Decision{}, err
	}
	sites, err := s.decompSites(in)
	if err != nil {
		return Decision{}, err
	}
	inst := decomp.Instance{
		Sites:      sites,
		Sense:      decomp.MaxLoadWithinBudget,
		TargetLoad: in.TotalLambda,
		BudgetUSD:  in.BudgetUSD,
		Epsilon:    s.opts.epsilon(),
	}
	res, err := decomp.Solve(inst, s.decompOptions(so))
	if err != nil {
		return Decision{}, err
	}
	if stats != nil {
		stats.addDecomp(res)
	}
	if res.Status == decomp.Infeasible {
		// All sites can switch off, so an empty plan is always feasible;
		// this is a solver-level failure worth surfacing.
		return Decision{}, fmt.Errorf("core: decomposed throughput maximization found no feasible plan")
	}
	d := decisionFromDecomp(res)
	if stats != nil {
		d.Solver = *stats
	}
	return d, nil
}

// decisionFromDecomp maps a recovered primal onto the capper's decision
// shape.
func decisionFromDecomp(res decomp.Result) Decision {
	d := Decision{Sites: make([]SiteAlloc, len(res.Sites))}
	for i, a := range res.Sites {
		d.Sites[i] = SiteAlloc{
			Lambda:         a.Load,
			PowerMW:        a.PowerMW,
			PriceUSDPerMWh: a.Rate,
			CostUSD:        a.CostUSD,
			On:             a.On,
		}
	}
	d.PredictedCostUSD = res.CostUSD
	d.Served = res.Load
	return d
}

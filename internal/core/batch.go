package core

import (
	"context"
	"runtime"
	"sync"
)

// DecideBatch solves many independent hours concurrently through one worker
// budget — the bulk path for re-optimizing a horizon (day-ahead sweeps,
// what-if studies) without either serializing the hours or oversubscribing
// the CPU with hours × workers goroutines.
//
// The budget is Options.SolverWorkers (0 → GOMAXPROCS). Hour-level
// parallelism comes first, because independent solves scale embarrassingly:
// up to budget hours run at once, and the per-solve branch-and-bound pool
// shrinks to budget/concurrency workers so the total stays at the budget.
// With a batch smaller than the budget, the leftover goes back into
// per-solve workers.
//
// Results are index-aligned with ins: decs[i] answers ins[i], errs[i] is its
// error (nil on success). The context bounds every solve; its deadline and
// cancellation propagate into branch-and-bound exactly as in DecideHourCtx.
//
// The batch is split into contiguous chunks, one per concurrent worker, each
// processed in input order. For hour sequences this is the cache-friendly
// order: with Options.SolverCache on, hour h's optimum seeds hour h+1 inside
// the same chunk, so a re-optimized horizon warm-starts almost every solve
// instead of interleaving unrelated hours through the shared cache.
func (s *System) DecideBatch(ctx context.Context, ins []HourInput) ([]Decision, []error) {
	decs := make([]Decision, len(ins))
	errs := make([]error, len(ins))
	if len(ins) == 0 {
		return decs, errs
	}
	budget := s.opts.SolverWorkers
	if budget <= 0 {
		budget = runtime.GOMAXPROCS(0)
	}
	conc := budget
	if conc > len(ins) {
		conc = len(ins)
	}
	perSolve := budget / conc
	chunk := (len(ins) + conc - 1) / conc

	var wg sync.WaitGroup
	for lo := 0; lo < len(ins); lo += chunk {
		hi := lo + chunk
		if hi > len(ins) {
			hi = len(ins)
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				so, err := boundByCtx(ctx, s.solveOptions())
				if err != nil {
					errs[i] = err
					continue
				}
				so.Workers = perSolve
				decs[i], errs[i] = s.decideWith(ins[i], so)
			}
		}(lo, hi)
	}
	wg.Wait()
	return decs, errs
}

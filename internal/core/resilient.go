package core

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"sync"

	"billcap/internal/fallback"
)

// ResilientOptions tune the degradation ladder.
type ResilientOptions struct {
	// MaxStaleHours bounds how old a last-known-good decision may be before
	// the stale rung refuses to reuse it; 0 → 3 hours. Beyond that the
	// workload and prices have drifted too far for yesterday's plan to be a
	// defensible answer, and shedding is honest.
	MaxStaleHours int
}

func (o ResilientOptions) maxStale() int {
	if o.MaxStaleHours == 0 {
		return 3
	}
	return o.MaxStaleHours
}

// Resilient wraps a System in the graceful-degradation ladder: the real-time
// controller must produce an allocation every invocation period, so instead
// of propagating solver failures it steps down through progressively cruder
// but safer answers:
//
//	optimal MILP → deadline-limited incumbent → greedy dispatch →
//	last-known-good reuse → shed
//
// Every rung respects power caps and the SLA admission limit; what degrades
// is cost optimality and, at the bottom, served throughput — never safety.
// The rung taken is recorded in Decision.Degraded and, when the wrapped
// system carries metrics, in the billcap_fallback_used_total /
// billcap_stale_decisions_total / billcap_decide_degraded_total counters.
//
// Corrupt inputs (NaN demand, negative budgets, wrong-arity feeds) are
// patched with the last pristine values seen before deciding, so a price- or
// demand-feed dropout degrades the answer instead of killing the hour.
//
// Decide is safe for concurrent use.
type Resilient struct {
	sys  *System
	opts ResilientOptions

	mu           sync.Mutex
	lastGood     *Decision
	lastGoodHour int
	lastDemand   []float64
	lastBudget   float64
	haveBudget   bool
	failSolver   map[int]bool
	failFallback map[int]bool
	failAudit    map[int]bool
}

// NewResilient wraps sys in the ladder.
func NewResilient(sys *System, opts ResilientOptions) *Resilient {
	return &Resilient{
		sys:          sys,
		opts:         opts,
		lastGoodHour: math.MinInt32,
		failSolver:   map[int]bool{},
		failFallback: map[int]bool{},
		failAudit:    map[int]bool{},
	}
}

// System exposes the wrapped optimizer system.
func (r *Resilient) System() *System { return r.sys }

// InjectSolverFailure forces the MILP rung to fail at the given hour — the
// fault-injection hook the chaos harness uses to exercise the ladder.
func (r *Resilient) InjectSolverFailure(hour int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.failSolver[hour] = true
}

// InjectFallbackFailure forces the greedy rung to fail at the given hour.
func (r *Resilient) InjectFallbackFailure(hour int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.failFallback[hour] = true
}

// InjectAuditFailure forces the feasibility audit to reject the MILP rung's
// answer at the given hour, exercising the audit-demotion path without
// needing a solver that actually answers wrong.
func (r *Resilient) InjectAuditFailure(hour int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.failAudit[hour] = true
}

// Decide runs the ladder for one hour. It is total: it always returns a
// decision (possibly the zero "shed" decision) and never panics.
func (r *Resilient) Decide(in HourInput) Decision {
	return r.DecideCtx(context.Background(), in)
}

// DecideCtx is Decide with the context's deadline and cancellation bounding
// the MILP rung (see System.DecideHourCtx). The greedy and stale rungs need
// no solver, so even an already-expired context still yields an allocation.
func (r *Resilient) DecideCtx(ctx context.Context, in HourInput) Decision {
	r.mu.Lock()
	defer r.mu.Unlock()

	in = r.sanitize(in)

	audited := false
	if !r.failSolver[in.Hour] {
		dec, err := r.solveSupervised(ctx, in)
		if err == nil {
			r.remember(in.Hour, dec)
			return dec
		}
		if errors.Is(err, errAuditRejected) {
			audited = true
			r.sys.Metrics().RecordAuditRejection()
		}
	}

	if !r.failFallback[in.Hour] {
		if dec, ok := r.tryGreedy(in); ok {
			rung := DegradeFallback
			if audited {
				rung = DegradeAudit
			}
			dec.Degraded = rung
			r.sys.Metrics().RecordDegraded(rung)
			r.remember(in.Hour, dec)
			return dec
		}
	}

	if dec, ok := r.staleReuse(in); ok {
		dec.Degraded = DegradeStale
		r.sys.Metrics().RecordDegraded(DegradeStale)
		return dec
	}

	// Shed: everything failed with nothing recent to reuse. All sites off is
	// always safe (caps trivially hold); the hour's load is dropped.
	r.sys.Metrics().RecordDegraded(DegradeShed)
	return Decision{
		Sites:    make([]SiteAlloc, len(r.sys.Sites)),
		Step:     StepOverCapacity,
		Degraded: DegradeShed,
	}
}

// sanitize patches corrupt fields with the last pristine values seen, and
// remembers this hour's pristine fields for the next dropout. It never
// rejects: a feed outage must degrade the answer, not abort the hour.
func (r *Resilient) sanitize(in HourInput) HourInput {
	n := len(r.sys.Sites)
	if r.lastDemand == nil {
		r.lastDemand = make([]float64, n)
	}

	demand := make([]float64, n)
	for i := range demand {
		var d float64
		if i < len(in.DemandMW) {
			d = in.DemandMW[i]
		} else {
			d = math.NaN() // missing entry: treat as corrupt
		}
		if math.IsNaN(d) || math.IsInf(d, 0) || d < 0 {
			demand[i] = r.lastDemand[i]
		} else {
			demand[i] = d
			r.lastDemand[i] = d
		}
	}
	in.DemandMW = demand

	if math.IsNaN(in.TotalLambda) || in.TotalLambda < 0 {
		in.TotalLambda = 0
	}
	if math.IsInf(in.TotalLambda, 1) {
		in.TotalLambda = r.sys.MaxThroughput()
	}
	if math.IsNaN(in.PremiumLambda) || in.PremiumLambda < 0 {
		in.PremiumLambda = 0
	}
	if in.PremiumLambda > in.TotalLambda {
		in.PremiumLambda = in.TotalLambda
	}

	if math.IsNaN(in.BudgetUSD) || in.BudgetUSD < 0 {
		if r.haveBudget {
			in.BudgetUSD = r.lastBudget
		} else {
			in.BudgetUSD = 0 // no history: serve premium only, the safe read
		}
	} else {
		r.lastBudget = in.BudgetUSD
		r.haveBudget = true
	}

	if len(in.Down) != 0 && len(in.Down) != n {
		in.Down = nil // unusable availability feed: assume every site up
	}

	// Tariff extras: a corrupt component is dropped for the hour (the bill
	// model degrades to energy-only) rather than aborting — same philosophy
	// as the feeds above. Every rung below indexes these slices, so arity
	// must be right or nil.
	if r := in.DemandChargeUSDPerMW; math.IsNaN(r) || math.IsInf(r, 0) || r < 0 {
		in.DemandChargeUSDPerMW = 0
	}
	if len(in.PeakMW) != 0 && len(in.PeakMW) != n {
		in.PeakMW = nil
	}
	for i, p := range in.PeakMW {
		if math.IsNaN(p) || math.IsInf(p, 0) || p < 0 {
			peaks := append([]float64(nil), in.PeakMW...)
			peaks[i] = 0
			in.PeakMW = peaks
		}
	}
	dropTS := len(in.RTPriceUSDPerMWh) != 0 && len(in.RTPriceUSDPerMWh) != n
	for _, p := range in.RTPriceUSDPerMWh {
		if math.IsNaN(p) || math.IsInf(p, 0) || p < 0 {
			dropTS = true
		}
	}
	if dropTS {
		in.RTPriceUSDPerMWh, in.CommitMW = nil, nil
	}
	if len(in.CommitMW) != 0 && (len(in.CommitMW) != n || !in.twoSettlement()) {
		in.CommitMW = nil
	}
	for i, c := range in.CommitMW {
		if math.IsNaN(c) || math.IsInf(c, 0) || c < 0 {
			commits := append([]float64(nil), in.CommitMW...)
			commits[i] = 0
			in.CommitMW = commits
		}
	}
	if len(in.Batteries) != 0 && len(in.Batteries) != n {
		in.Batteries = nil
	}
	for i, b := range in.Batteries {
		if badBatterySpec(b) {
			bats := append([]BatterySpec(nil), in.Batteries...)
			bats[i] = BatterySpec{}
			in.Batteries = bats
		}
	}
	return in
}

// badBatterySpec reports whether a spec would fail validation (the sanitizer
// zeroes it — no battery at that site this hour — instead of rejecting).
func badBatterySpec(b BatterySpec) bool {
	if b.CapacityMWh == 0 && !math.IsNaN(b.CapacityMWh) {
		return false // explicit "no battery"
	}
	return math.IsNaN(b.CapacityMWh) || math.IsInf(b.CapacityMWh, 0) || b.CapacityMWh < 0 ||
		math.IsNaN(b.MaxChargeMW) || math.IsInf(b.MaxChargeMW, 0) || b.MaxChargeMW < 0 ||
		math.IsNaN(b.MaxDischargeMW) || math.IsInf(b.MaxDischargeMW, 0) || b.MaxDischargeMW < 0 ||
		math.IsNaN(b.Efficiency) || b.Efficiency <= 0 || b.Efficiency > 1 ||
		math.IsNaN(b.SoCMWh) || b.SoCMWh < 0 || b.SoCMWh > b.CapacityMWh*(1+1e-9) ||
		math.IsNaN(b.ValueUSDPerMWh) || math.IsInf(b.ValueUSDPerMWh, 0) || b.ValueUSDPerMWh < 0
}

// tryMILP runs the two-step algorithm with panic recovery: a solver bug
// becomes a ladder step instead of a crashed controller.
func (r *Resilient) tryMILP(ctx context.Context, in HourInput) (dec Decision, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("core: solver panic: %v", p)
		}
	}()
	return r.sys.DecideHourCtx(ctx, in)
}

// tryGreedy runs the fallback dispatcher, also panic-recovered.
func (r *Resilient) tryGreedy(in HourInput) (dec Decision, ok bool) {
	defer func() {
		if recover() != nil {
			ok = false
		}
	}()
	sites := make([]fallback.Site, len(r.sys.models))
	for i, sm := range r.sys.models {
		dc := sm.site.DC
		sites[i] = fallback.Site{
			Name:        dc.Name,
			MaxLambda:   sm.maxLambda,
			MWPerLambda: sm.affine.A,
			IdleMW:      sm.affine.B,
			PowerCapMW:  dc.PowerCapMW,
			SlackMW:     dc.RoundingSlackMW(),
			DemandMW:    in.DemandMW[i],
			Price:       r.sys.viewFn(i).Fn,
			Down:        in.SiteDown(i),
		}
	}
	fd := fallback.Dispatch(sites, fallback.Input{
		TotalLambda:   in.TotalLambda,
		PremiumLambda: in.PremiumLambda,
		BudgetUSD:     in.BudgetUSD,
	})
	lambdas := make([]float64, len(fd.Sites))
	for i, a := range fd.Sites {
		lambdas[i] = a.Lambda
	}
	return r.planFrom(in, lambdas), true
}

// staleReuse replays the last-known-good allocation if it is recent enough,
// with this hour's outages unloaded and the total scaled down to this hour's
// arrivals. Power caps and SLA limits are per-site properties of the lambdas
// themselves, so a cap-safe plan stays cap-safe under reuse.
func (r *Resilient) staleReuse(in HourInput) (Decision, bool) {
	if r.lastGood == nil {
		return Decision{}, false
	}
	age := in.Hour - r.lastGoodHour
	if age < 0 || age > r.opts.maxStale() {
		return Decision{}, false
	}
	lambdas := make([]float64, len(r.lastGood.Sites))
	total := 0.0
	for i, a := range r.lastGood.Sites {
		if in.SiteDown(i) {
			continue
		}
		lambdas[i] = a.Lambda
		total += a.Lambda
	}
	if total > in.TotalLambda && total > 0 {
		f := in.TotalLambda / total
		for i := range lambdas {
			lambdas[i] *= f
		}
	}
	return r.planFrom(in, lambdas), true
}

// planFrom prices a per-site allocation under the optimizer's models and
// assembles a Decision, clamping each site to its SLA/cap limit. The
// degraded rungs never operate batteries (safety: the crude plan should not
// touch stored energy), but demand-charge increments and the two-settlement
// position are still accounted so budget arithmetic stays truthful.
func (r *Resilient) planFrom(in HourInput, lambdas []float64) Decision {
	d := Decision{Sites: make([]SiteAlloc, len(r.sys.models))}
	for i, sm := range r.sys.models {
		lam := lambdas[i]
		if lam <= 0 || in.SiteDown(i) {
			continue
		}
		if lam > sm.maxLambda {
			lam = sm.maxLambda
		}
		p := sm.affine.A*lam + sm.affine.B
		rate := r.sys.viewFn(i).Fn.Eval(in.DemandMW[i] + p)
		if in.twoSettlement() {
			rate = in.RTPriceUSDPerMWh[i]
		}
		alloc := SiteAlloc{
			Lambda:         lam,
			PowerMW:        p,
			GridMW:         p,
			PriceUSDPerMWh: rate,
			EnergyUSD:      rate * p,
			On:             true,
		}
		if in.DemandChargeUSDPerMW > 0 {
			alloc.DemandUSD = in.DemandChargeUSDPerMW * math.Max(0, p-in.peak(i))
		}
		alloc.CostUSD = alloc.EnergyUSD + alloc.DemandUSD
		d.Sites[i] = alloc
		d.Served += lam
		d.EnergyCostUSD += alloc.EnergyUSD
		d.DemandChargeUSD += alloc.DemandUSD
	}
	d.SettlementUSD = r.sys.settlementUSD(in)
	d.PredictedCostUSD = d.EnergyCostUSD + d.DemandChargeUSD + d.SettlementUSD
	d.ServedPremium = math.Min(in.PremiumLambda, d.Served)
	d.ServedOrdinary = d.Served - d.ServedPremium
	d.Step = stepFor(in, d)
	return d
}

// stepFor maps a degraded plan onto the closest two-step branch, so step
// accounting stays meaningful across rungs.
func stepFor(in HourInput, d Decision) Step {
	slack := 1e-9 * (1 + in.TotalLambda)
	switch {
	case d.Served >= in.TotalLambda-slack:
		return StepCostMin
	case d.ServedPremium >= in.PremiumLambda-slack:
		return StepBudgetCapped
	default:
		return StepOverCapacity
	}
}

// ResilientState is the ladder's durable state: the last-known-good decision
// the stale rung replays after a restart, plus the sanitizer's last pristine
// feed values. It round-trips through JSON for the crash-safe checkpoint
// layer (internal/state). Fault-injection maps are deliberately excluded —
// injected faults are a property of a test run, not of the controller.
type ResilientState struct {
	LastGood     *Decision `json:"lastGood,omitempty"`
	LastGoodHour int       `json:"lastGoodHour"`
	LastDemand   []float64 `json:"lastDemand,omitempty"`
	LastBudget   float64   `json:"lastBudget"`
	HaveBudget   bool      `json:"haveBudget"`
}

// resilientStateJSON is the wire form: JSON has no +Inf, so the sanitizer's
// uncapped-budget sentinel travels as a flag instead of killing the marshal.
type resilientStateJSON struct {
	LastGood       *Decision `json:"lastGood,omitempty"`
	LastGoodHour   int       `json:"lastGoodHour"`
	LastDemand     []float64 `json:"lastDemand,omitempty"`
	LastBudget     float64   `json:"lastBudget"`
	BudgetUncapped bool      `json:"budgetUncapped,omitempty"`
	HaveBudget     bool      `json:"haveBudget"`
}

// MarshalJSON encodes the state, folding a +Inf last budget into the
// budgetUncapped flag.
func (st ResilientState) MarshalJSON() ([]byte, error) {
	w := resilientStateJSON{
		LastGood:     st.LastGood,
		LastGoodHour: st.LastGoodHour,
		LastDemand:   st.LastDemand,
		LastBudget:   st.LastBudget,
		HaveBudget:   st.HaveBudget,
	}
	if math.IsInf(st.LastBudget, 1) {
		w.LastBudget = 0
		w.BudgetUncapped = true
	}
	return json.Marshal(w)
}

// UnmarshalJSON decodes the wire form, restoring the +Inf sentinel.
func (st *ResilientState) UnmarshalJSON(b []byte) error {
	var w resilientStateJSON
	if err := json.Unmarshal(b, &w); err != nil {
		return err
	}
	*st = ResilientState{
		LastGood:     w.LastGood,
		LastGoodHour: w.LastGoodHour,
		LastDemand:   w.LastDemand,
		LastBudget:   w.LastBudget,
		HaveBudget:   w.HaveBudget,
	}
	if w.BudgetUncapped {
		st.LastBudget = math.Inf(1)
	}
	return nil
}

// Snapshot captures the ladder state. Slices are deep-copied so the snapshot
// stays valid while the ladder keeps deciding.
func (r *Resilient) Snapshot() ResilientState {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := ResilientState{
		LastGoodHour: r.lastGoodHour,
		LastBudget:   r.lastBudget,
		HaveBudget:   r.haveBudget,
	}
	if r.lastGood != nil {
		cp := *r.lastGood
		cp.Sites = append([]SiteAlloc(nil), r.lastGood.Sites...)
		st.LastGood = &cp
	}
	if r.lastDemand != nil {
		st.LastDemand = append([]float64(nil), r.lastDemand...)
	}
	return st
}

// Restore replaces the ladder state with a snapshot, validating arity and
// finiteness against the wrapped system — a checkpoint from a different fleet
// must fail loudly, not feed the stale rung a wrong-shaped plan.
func (r *Resilient) Restore(st ResilientState) error {
	n := len(r.sys.Sites)
	if st.LastGood != nil && len(st.LastGood.Sites) != n {
		return fmt.Errorf("core: restore: last-good decision has %d sites, system has %d", len(st.LastGood.Sites), n)
	}
	if st.LastDemand != nil && len(st.LastDemand) != n {
		return fmt.Errorf("core: restore: last demand has %d sites, system has %d", len(st.LastDemand), n)
	}
	for i, v := range st.LastDemand {
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			return fmt.Errorf("core: restore: bad demand %v at site %d", v, i)
		}
	}
	// +Inf is the legitimate "uncapped" sentinel the sanitizer may have seen.
	if math.IsNaN(st.LastBudget) || math.IsInf(st.LastBudget, -1) || st.LastBudget < 0 {
		return fmt.Errorf("core: restore: bad budget %v", st.LastBudget)
	}
	if st.LastGood != nil {
		for i, a := range st.LastGood.Sites {
			if math.IsNaN(a.Lambda) || math.IsInf(a.Lambda, 0) || a.Lambda < 0 ||
				math.IsNaN(a.PowerMW) || math.IsInf(a.PowerMW, 0) || a.PowerMW < 0 {
				return fmt.Errorf("core: restore: bad allocation at site %d", i)
			}
		}
	}

	r.mu.Lock()
	defer r.mu.Unlock()
	if st.LastGood != nil {
		cp := *st.LastGood
		cp.Sites = append([]SiteAlloc(nil), st.LastGood.Sites...)
		r.lastGood = &cp
		r.lastGoodHour = st.LastGoodHour
	} else {
		r.lastGood = nil
		r.lastGoodHour = math.MinInt32
	}
	if st.LastDemand != nil {
		r.lastDemand = append([]float64(nil), st.LastDemand...)
	} else {
		r.lastDemand = nil
	}
	r.lastBudget = st.LastBudget
	r.haveBudget = st.HaveBudget
	return nil
}

// remember stores a successful decision as the stale rung's reserve.
func (r *Resilient) remember(hour int, dec Decision) {
	cp := dec
	cp.Sites = append([]SiteAlloc(nil), dec.Sites...)
	r.lastGood = &cp
	r.lastGoodHour = hour
}

package core

import (
	"context"
	"fmt"
	"math"
	"sync"

	"billcap/internal/fallback"
)

// ResilientOptions tune the degradation ladder.
type ResilientOptions struct {
	// MaxStaleHours bounds how old a last-known-good decision may be before
	// the stale rung refuses to reuse it; 0 → 3 hours. Beyond that the
	// workload and prices have drifted too far for yesterday's plan to be a
	// defensible answer, and shedding is honest.
	MaxStaleHours int
}

func (o ResilientOptions) maxStale() int {
	if o.MaxStaleHours == 0 {
		return 3
	}
	return o.MaxStaleHours
}

// Resilient wraps a System in the graceful-degradation ladder: the real-time
// controller must produce an allocation every invocation period, so instead
// of propagating solver failures it steps down through progressively cruder
// but safer answers:
//
//	optimal MILP → deadline-limited incumbent → greedy dispatch →
//	last-known-good reuse → shed
//
// Every rung respects power caps and the SLA admission limit; what degrades
// is cost optimality and, at the bottom, served throughput — never safety.
// The rung taken is recorded in Decision.Degraded and, when the wrapped
// system carries metrics, in the billcap_fallback_used_total /
// billcap_stale_decisions_total / billcap_decide_degraded_total counters.
//
// Corrupt inputs (NaN demand, negative budgets, wrong-arity feeds) are
// patched with the last pristine values seen before deciding, so a price- or
// demand-feed dropout degrades the answer instead of killing the hour.
//
// Decide is safe for concurrent use.
type Resilient struct {
	sys  *System
	opts ResilientOptions

	mu           sync.Mutex
	lastGood     *Decision
	lastGoodHour int
	lastDemand   []float64
	lastBudget   float64
	haveBudget   bool
	failSolver   map[int]bool
	failFallback map[int]bool
}

// NewResilient wraps sys in the ladder.
func NewResilient(sys *System, opts ResilientOptions) *Resilient {
	return &Resilient{
		sys:          sys,
		opts:         opts,
		lastGoodHour: math.MinInt32,
		failSolver:   map[int]bool{},
		failFallback: map[int]bool{},
	}
}

// System exposes the wrapped optimizer system.
func (r *Resilient) System() *System { return r.sys }

// InjectSolverFailure forces the MILP rung to fail at the given hour — the
// fault-injection hook the chaos harness uses to exercise the ladder.
func (r *Resilient) InjectSolverFailure(hour int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.failSolver[hour] = true
}

// InjectFallbackFailure forces the greedy rung to fail at the given hour.
func (r *Resilient) InjectFallbackFailure(hour int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.failFallback[hour] = true
}

// Decide runs the ladder for one hour. It is total: it always returns a
// decision (possibly the zero "shed" decision) and never panics.
func (r *Resilient) Decide(in HourInput) Decision {
	return r.DecideCtx(context.Background(), in)
}

// DecideCtx is Decide with the context's deadline and cancellation bounding
// the MILP rung (see System.DecideHourCtx). The greedy and stale rungs need
// no solver, so even an already-expired context still yields an allocation.
func (r *Resilient) DecideCtx(ctx context.Context, in HourInput) Decision {
	r.mu.Lock()
	defer r.mu.Unlock()

	in = r.sanitize(in)

	if !r.failSolver[in.Hour] {
		if dec, err := r.tryMILP(ctx, in); err == nil {
			r.remember(in.Hour, dec)
			return dec
		}
	}

	if !r.failFallback[in.Hour] {
		if dec, ok := r.tryGreedy(in); ok {
			dec.Degraded = DegradeFallback
			r.sys.Metrics().RecordDegraded(DegradeFallback)
			r.remember(in.Hour, dec)
			return dec
		}
	}

	if dec, ok := r.staleReuse(in); ok {
		dec.Degraded = DegradeStale
		r.sys.Metrics().RecordDegraded(DegradeStale)
		return dec
	}

	// Shed: everything failed with nothing recent to reuse. All sites off is
	// always safe (caps trivially hold); the hour's load is dropped.
	r.sys.Metrics().RecordDegraded(DegradeShed)
	return Decision{
		Sites:    make([]SiteAlloc, len(r.sys.Sites)),
		Step:     StepOverCapacity,
		Degraded: DegradeShed,
	}
}

// sanitize patches corrupt fields with the last pristine values seen, and
// remembers this hour's pristine fields for the next dropout. It never
// rejects: a feed outage must degrade the answer, not abort the hour.
func (r *Resilient) sanitize(in HourInput) HourInput {
	n := len(r.sys.Sites)
	if r.lastDemand == nil {
		r.lastDemand = make([]float64, n)
	}

	demand := make([]float64, n)
	for i := range demand {
		var d float64
		if i < len(in.DemandMW) {
			d = in.DemandMW[i]
		} else {
			d = math.NaN() // missing entry: treat as corrupt
		}
		if math.IsNaN(d) || math.IsInf(d, 0) || d < 0 {
			demand[i] = r.lastDemand[i]
		} else {
			demand[i] = d
			r.lastDemand[i] = d
		}
	}
	in.DemandMW = demand

	if math.IsNaN(in.TotalLambda) || in.TotalLambda < 0 {
		in.TotalLambda = 0
	}
	if math.IsInf(in.TotalLambda, 1) {
		in.TotalLambda = r.sys.MaxThroughput()
	}
	if math.IsNaN(in.PremiumLambda) || in.PremiumLambda < 0 {
		in.PremiumLambda = 0
	}
	if in.PremiumLambda > in.TotalLambda {
		in.PremiumLambda = in.TotalLambda
	}

	if math.IsNaN(in.BudgetUSD) || in.BudgetUSD < 0 {
		if r.haveBudget {
			in.BudgetUSD = r.lastBudget
		} else {
			in.BudgetUSD = 0 // no history: serve premium only, the safe read
		}
	} else {
		r.lastBudget = in.BudgetUSD
		r.haveBudget = true
	}

	if len(in.Down) != 0 && len(in.Down) != n {
		in.Down = nil // unusable availability feed: assume every site up
	}
	return in
}

// tryMILP runs the two-step algorithm with panic recovery: a solver bug
// becomes a ladder step instead of a crashed controller.
func (r *Resilient) tryMILP(ctx context.Context, in HourInput) (dec Decision, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("core: solver panic: %v", p)
		}
	}()
	return r.sys.DecideHourCtx(ctx, in)
}

// tryGreedy runs the fallback dispatcher, also panic-recovered.
func (r *Resilient) tryGreedy(in HourInput) (dec Decision, ok bool) {
	defer func() {
		if recover() != nil {
			ok = false
		}
	}()
	sites := make([]fallback.Site, len(r.sys.models))
	for i, sm := range r.sys.models {
		dc := sm.site.DC
		sites[i] = fallback.Site{
			Name:        dc.Name,
			MaxLambda:   sm.maxLambda,
			MWPerLambda: sm.affine.A,
			IdleMW:      sm.affine.B,
			PowerCapMW:  dc.PowerCapMW,
			SlackMW:     dc.RoundingSlackMW(),
			DemandMW:    in.DemandMW[i],
			Price:       r.sys.viewFn(i).Fn,
			Down:        in.SiteDown(i),
		}
	}
	fd := fallback.Dispatch(sites, fallback.Input{
		TotalLambda:   in.TotalLambda,
		PremiumLambda: in.PremiumLambda,
		BudgetUSD:     in.BudgetUSD,
	})
	lambdas := make([]float64, len(fd.Sites))
	for i, a := range fd.Sites {
		lambdas[i] = a.Lambda
	}
	return r.planFrom(in, lambdas), true
}

// staleReuse replays the last-known-good allocation if it is recent enough,
// with this hour's outages unloaded and the total scaled down to this hour's
// arrivals. Power caps and SLA limits are per-site properties of the lambdas
// themselves, so a cap-safe plan stays cap-safe under reuse.
func (r *Resilient) staleReuse(in HourInput) (Decision, bool) {
	if r.lastGood == nil {
		return Decision{}, false
	}
	age := in.Hour - r.lastGoodHour
	if age < 0 || age > r.opts.maxStale() {
		return Decision{}, false
	}
	lambdas := make([]float64, len(r.lastGood.Sites))
	total := 0.0
	for i, a := range r.lastGood.Sites {
		if in.SiteDown(i) {
			continue
		}
		lambdas[i] = a.Lambda
		total += a.Lambda
	}
	if total > in.TotalLambda && total > 0 {
		f := in.TotalLambda / total
		for i := range lambdas {
			lambdas[i] *= f
		}
	}
	return r.planFrom(in, lambdas), true
}

// planFrom prices a per-site allocation under the optimizer's models and
// assembles a Decision, clamping each site to its SLA/cap limit.
func (r *Resilient) planFrom(in HourInput, lambdas []float64) Decision {
	d := Decision{Sites: make([]SiteAlloc, len(r.sys.models))}
	for i, sm := range r.sys.models {
		lam := lambdas[i]
		if lam <= 0 || in.SiteDown(i) {
			continue
		}
		if lam > sm.maxLambda {
			lam = sm.maxLambda
		}
		p := sm.affine.A*lam + sm.affine.B
		rate := r.sys.viewFn(i).Fn.Eval(in.DemandMW[i] + p)
		d.Sites[i] = SiteAlloc{
			Lambda:         lam,
			PowerMW:        p,
			PriceUSDPerMWh: rate,
			CostUSD:        rate * p,
			On:             true,
		}
		d.Served += lam
		d.PredictedCostUSD += d.Sites[i].CostUSD
	}
	d.ServedPremium = math.Min(in.PremiumLambda, d.Served)
	d.ServedOrdinary = d.Served - d.ServedPremium
	d.Step = stepFor(in, d)
	return d
}

// stepFor maps a degraded plan onto the closest two-step branch, so step
// accounting stays meaningful across rungs.
func stepFor(in HourInput, d Decision) Step {
	slack := 1e-9 * (1 + in.TotalLambda)
	switch {
	case d.Served >= in.TotalLambda-slack:
		return StepCostMin
	case d.ServedPremium >= in.PremiumLambda-slack:
		return StepBudgetCapped
	default:
		return StepOverCapacity
	}
}

// remember stores a successful decision as the stale rung's reserve.
func (r *Resilient) remember(hour int, dec Decision) {
	cp := dec
	cp.Sites = append([]SiteAlloc(nil), dec.Sites...)
	r.lastGood = &cp
	r.lastGoodHour = hour
}

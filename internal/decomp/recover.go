package decomp

import (
	"fmt"
	"math"
	"sort"

	"billcap/internal/lp"
)

// sel is one site's primal state: a segment choice and a load (seg -1 = off).
type sel struct {
	seg  int
	load float64
}

// candidate is one recovered primal plan with its totals and objective.
type candidate struct {
	sel  []sel
	load float64
	cost float64
	obj  float64
}

func (c candidate) betterThan(o candidate, maxSense bool) bool {
	if maxSense {
		return c.obj > o.obj
	}
	return c.obj < o.obj
}

// recoverer turns dual iterates into feasible primal plans: trim coupling
// violations worst-unit-cost first, fill remaining headroom cheapest-chunk
// first (the shape of internal/fallback's dispatcher: all-or-nothing segment
// entries, partial within-segment extensions), then polish the continuous
// loads with a tiny LP on the chosen segments.
type recoverer struct {
	inst *Instance
	core lp.Core
	// expired, when non-nil, reports that the solve's deadline or Cancel has
	// fired: recovery then bails out of the greedy fill and skips the polish
	// LP, so a primal pass in flight cannot overrun the hour's budget.
	expired  func() bool
	pivots   int
	polishes int
}

func (r *recoverer) done() bool { return r.expired != nil && r.expired() }

func (r *recoverer) balTol() float64 { return 1e-7 * (1 + math.Abs(r.inst.TargetLoad)) }
func (r *recoverer) budTol() float64 {
	if math.IsInf(r.inst.BudgetUSD, 1) {
		return 0
	}
	return 1e-7 * (1 + r.inst.BudgetUSD)
}

// minimalState is every site at its cheapest admissible point: off when
// allowed, else the lowest segment at its minimum load.
func (r *recoverer) minimalState() []sel {
	out := make([]sel, len(r.inst.Sites))
	for i := range r.inst.Sites {
		s := &r.inst.Sites[i]
		if s.CanOff || len(s.Segments) == 0 {
			out[i] = sel{seg: -1}
		} else {
			out[i] = sel{seg: 0, load: s.Segments[0].LoadLo}
		}
	}
	return out
}

func stateFromChoices(choices []choice) []sel {
	out := make([]sel, len(choices))
	for i, c := range choices {
		out[i] = sel{seg: c.seg, load: c.load}
	}
	return out
}

func (r *recoverer) totals(st []sel) (load, cost float64) {
	for i, c := range st {
		if c.seg >= 0 {
			g := r.inst.Sites[i].Segments[c.seg]
			load += c.load
			cost += g.Cost(c.load)
		}
	}
	return load, cost
}

func (r *recoverer) objective(load, cost float64) float64 {
	if r.inst.Sense == MaxLoadWithinBudget {
		return load - r.inst.Epsilon*cost
	}
	return cost
}

// recoverFrom restores feasibility starting from st and returns the best of
// the greedy plan and its LP polish. st is consumed.
func (r *recoverer) recoverFrom(st []sel) (candidate, bool) {
	inst := r.inst
	if inst.Sense == MinCostServeAll {
		// Quick capacity screen: mandatory minima must fit under the target
		// and total capacity must reach it.
		var minL, maxL float64
		for i := range inst.Sites {
			s := &inst.Sites[i]
			maxL += s.maxLoad()
			if !s.CanOff && len(s.Segments) > 0 {
				minL += s.Segments[0].LoadLo
			}
		}
		if maxL < inst.TargetLoad-r.balTol() || minL > inst.TargetLoad+r.balTol() {
			return candidate{}, false
		}
	}
	r.trim(st)
	r.fill(st)
	cand, ok := r.candidateFrom(st)
	// The polish LP is the expensive half of recovery; past the deadline the
	// greedy plan (already validated above) is the answer.
	if !r.done() {
		if pol, pok := r.polish(st); pok {
			if !ok || pol.betterThan(cand, inst.Sense == MaxLoadWithinBudget) {
				cand, ok = pol, true
			}
		}
	}
	return cand, ok
}

// trim reduces st until the coupling rows hold: first shrink loads within
// their segments (highest marginal cost first — the reverse of the greedy
// fill order), then step whole sites down a segment or off.
func (r *recoverer) trim(st []sel) {
	inst := r.inst
	maxSense := inst.Sense == MaxLoadWithinBudget
	useBal := !math.IsInf(inst.TargetLoad, 1)
	useBud := maxSense && !math.IsInf(inst.BudgetUSD, 1)

	load, cost := r.totals(st)
	violated := func() bool {
		if useBal && load > inst.TargetLoad+r.balTol() {
			return true
		}
		return useBud && cost > inst.BudgetUSD+r.budTol()
	}
	if !violated() {
		return
	}

	// Pass 1: within-segment reductions, most expensive marginal unit first.
	order := make([]int, 0, len(st))
	for i, c := range st {
		if c.seg >= 0 {
			order = append(order, i)
		}
	}
	sort.Slice(order, func(a, b int) bool {
		ga := inst.Sites[order[a]].Segments[st[order[a]].seg]
		gb := inst.Sites[order[b]].Segments[st[order[b]].seg]
		return ga.Cost1 > gb.Cost1
	})
	for _, i := range order {
		if !violated() {
			return
		}
		g := inst.Sites[i].Segments[st[i].seg]
		room := st[i].load - g.LoadLo
		if room <= 0 {
			continue
		}
		// Give back just enough to clear the worse of the two violations,
		// bounded by the segment's room.
		need := 0.0
		if useBal {
			need = math.Max(need, load-inst.TargetLoad)
		}
		if useBud && g.Cost1 > 0 {
			need = math.Max(need, (cost-inst.BudgetUSD)/g.Cost1)
		}
		d := math.Min(room, need)
		if d <= 0 {
			continue
		}
		st[i].load -= d
		load -= d
		cost -= g.Cost1 * d
	}

	// Pass 2: step sites down a segment (or off) until feasible. Each step
	// strictly lowers a site's segment index, so the loop is bounded.
	for violated() {
		stepped := false
		for _, i := range order {
			if !violated() {
				return
			}
			c := st[i]
			if c.seg < 0 {
				continue
			}
			s := &inst.Sites[i]
			g := s.Segments[c.seg]
			load -= c.load
			cost -= g.Cost(c.load)
			if c.seg == 0 {
				if !s.CanOff {
					// Mandatory site at its floor: restore and move on.
					load += c.load
					cost += g.Cost(c.load)
					continue
				}
				st[i] = sel{seg: -1}
			} else {
				down := s.Segments[c.seg-1]
				l := math.Min(down.LoadHi, c.load)
				st[i] = sel{seg: c.seg - 1, load: l}
				load += l
				cost += down.Cost(l)
			}
			stepped = true
		}
		if !stepped {
			return // nothing left to give back; candidateFrom will reject
		}
		// Re-run within-segment trimming after the structural change.
		for _, i := range order {
			if !violated() {
				return
			}
			c := st[i]
			if c.seg < 0 {
				continue
			}
			g := inst.Sites[i].Segments[c.seg]
			room := c.load - g.LoadLo
			if room <= 0 {
				continue
			}
			need := 0.0
			if useBal {
				need = math.Max(need, load-inst.TargetLoad)
			}
			if useBud && g.Cost1 > 0 {
				need = math.Max(need, (cost-inst.BudgetUSD)/g.Cost1)
			}
			d := math.Min(room, need)
			if d <= 0 {
				continue
			}
			st[i].load -= d
			load -= d
			cost -= g.Cost1 * d
		}
	}
}

// move is the next advance available to one site along its fill path: go to
// segment seg at load `to`, committing at least `min` (the all-or-nothing
// entry floor; within-segment extensions have min = current load).
type move struct {
	site     int
	seg      int
	to, min  float64
	unit     float64 // Δcost per unit Δload over the full chunk
	from     sel
	fromCost float64
}

// nextMove computes site i's next chunk from state c, mirroring
// fallback.Dispatch: extend to the top of the current segment, else jump to
// the next reachable segment (entry paid in full, extension to its top
// amortized into the chunk's unit cost).
func (r *recoverer) nextMove(i int, c sel) (move, bool) {
	s := &r.inst.Sites[i]
	var fromCost float64
	start := 0
	if c.seg >= 0 {
		g := s.Segments[c.seg]
		fromCost = g.Cost(c.load)
		eps := 1e-9 * (1 + math.Abs(g.LoadHi))
		if c.load < g.LoadHi-eps {
			m := move{site: i, seg: c.seg, to: g.LoadHi, min: c.load, from: c, fromCost: fromCost}
			m.unit = (g.Cost(m.to) - fromCost) / (m.to - c.load)
			return m, true
		}
		start = c.seg + 1
	}
	for k := start; k < len(s.Segments); k++ {
		g := s.Segments[k]
		eps := 1e-9 * (1 + math.Abs(g.LoadHi))
		if g.LoadHi <= c.load+eps {
			continue // no load gain in this segment
		}
		m := move{site: i, seg: k, to: g.LoadHi, min: math.Max(g.LoadLo, c.load), from: c, fromCost: fromCost}
		m.unit = (g.Cost(m.to) - fromCost) / (m.to - c.load)
		return m, true
	}
	return move{}, false
}

// moveHeap orders moves by unit cost (cheapest chunk first).
type moveHeap []move

func (h moveHeap) less(a, b int) bool { return h[a].unit < h[b].unit }
func (h *moveHeap) push(m move) {
	*h = append(*h, m)
	i := len(*h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !h.less(i, p) {
			break
		}
		(*h)[i], (*h)[p] = (*h)[p], (*h)[i]
		i = p
	}
}
func (h *moveHeap) pop() move {
	old := *h
	top := old[0]
	n := len(old) - 1
	old[0] = old[n]
	*h = old[:n]
	i := 0
	for {
		l, rch := 2*i+1, 2*i+2
		small := i
		if l < n && h.less(l, small) {
			small = l
		}
		if rch < n && h.less(rch, small) {
			small = rch
		}
		if small == i {
			break
		}
		(*h)[i], (*h)[small] = (*h)[small], (*h)[i]
		i = small
	}
	return top
}

// fill advances st cheapest-chunk first until the balance target, the
// budget, or the fleet's moves are exhausted. For MinCostServeAll it lands
// on the target exactly when it can, taking one overshooting segment entry
// and trimming it back elsewhere if the last gap is smaller than the
// cheapest remaining entry commitment.
func (r *recoverer) fill(st []sel) {
	inst := r.inst
	maxSense := inst.Sense == MaxLoadWithinBudget
	useBal := !math.IsInf(inst.TargetLoad, 1)
	useBud := maxSense && !math.IsInf(inst.BudgetUSD, 1)

	load, cost := r.totals(st)
	var h moveHeap
	for i := range st {
		if m, ok := r.nextMove(i, st[i]); ok {
			h.push(m)
		}
	}
	// deferred holds segment entries that did not fit the remaining balance
	// headroom; the min-cost overshoot pass revisits the smallest one.
	var deferred []move
	for len(h) > 0 {
		if r.done() {
			// Deadline fired mid-fill: stop with what is placed so far. A
			// partial fill is feasible for max-load (just less of it) and is
			// rejected by candidateFrom for min-cost, both safe.
			return
		}
		if useBal && load >= inst.TargetLoad-r.balTol() {
			break
		}
		if useBud && cost >= inst.BudgetUSD-r.budTol() {
			break
		}
		m := h.pop()
		if st[m.site] != m.from {
			// Stale entry (state advanced by the overshoot pass): recompute.
			if nm, ok := r.nextMove(m.site, st[m.site]); ok {
				h.push(nm)
			}
			continue
		}
		to := m.to
		if useBal {
			if room := inst.TargetLoad - load; to > m.from.load+room {
				to = m.from.load + room
			}
		}
		g := r.inst.Sites[m.site].Segments[m.seg]
		if useBud {
			if avail := inst.BudgetUSD - cost; g.Cost(to)-m.fromCost > avail {
				if g.Cost1 <= 0 {
					continue // entry alone busts the budget; drop the move
				}
				to = (avail + m.fromCost - g.Cost0) / g.Cost1
			}
		}
		if to < m.min-1e-12*(1+m.min) {
			// The all-or-nothing entry does not fit. Other sites may still
			// have cheaper partial room; remember the entry for the min-cost
			// overshoot pass.
			deferred = append(deferred, m)
			continue
		}
		to = math.Max(to, m.min)
		dl := to - m.from.load
		dc := g.Cost(to) - m.fromCost
		if dl <= 0 {
			continue
		}
		if maxSense && dl-inst.Epsilon*dc <= 0 {
			continue // the chunk would lower the step-2 objective
		}
		st[m.site] = sel{seg: m.seg, load: to}
		load += dl
		cost += dc
		if nm, ok := r.nextMove(m.site, st[m.site]); ok {
			h.push(nm)
		}
	}

	// Min-cost must land exactly: when the last gap was smaller than every
	// remaining entry commitment, take the smallest such entry and give the
	// overshoot back from other sites' within-segment room.
	if !maxSense && useBal && load < inst.TargetLoad-r.balTol() && len(deferred) > 0 {
		bi := 0
		for j := 1; j < len(deferred); j++ {
			if deferred[j].min-deferred[j].from.load < deferred[bi].min-deferred[bi].from.load {
				bi = j
			}
		}
		m := deferred[bi]
		if st[m.site] == m.from {
			g := inst.Sites[m.site].Segments[m.seg]
			st[m.site] = sel{seg: m.seg, load: m.min}
			load += m.min - m.from.load
			cost += g.Cost(m.min) - m.fromCost
			r.giveBack(st, &load, &cost, load-inst.TargetLoad, m.site)
		}
	}
}

// giveBack sheds `over` units of load from within-segment room on sites
// other than keep, cheapest savings last (most expensive marginal first).
func (r *recoverer) giveBack(st []sel, load, cost *float64, over float64, keep int) {
	if over <= 0 {
		return
	}
	type room struct {
		i    int
		c1   float64
		slac float64
	}
	var rooms []room
	for i, c := range st {
		if i == keep || c.seg < 0 {
			continue
		}
		g := r.inst.Sites[i].Segments[c.seg]
		if slack := c.load - g.LoadLo; slack > 0 {
			rooms = append(rooms, room{i, g.Cost1, slack})
		}
	}
	sort.Slice(rooms, func(a, b int) bool { return rooms[a].c1 > rooms[b].c1 })
	for _, rm := range rooms {
		if over <= 0 {
			return
		}
		d := math.Min(rm.slac, over)
		st[rm.i].load -= d
		*load -= d
		*cost -= rm.c1 * d
		over -= d
	}
}

// candidateFrom checks st against the coupling rows and segment bounds and
// stamps the totals. Loads are snapped into their segment bounds first to
// shed floating-point noise.
func (r *recoverer) candidateFrom(st []sel) (candidate, bool) {
	inst := r.inst
	for i := range st {
		s := &inst.Sites[i]
		c := st[i]
		if c.seg < 0 {
			if !s.CanOff {
				return candidate{}, false
			}
			continue
		}
		g := s.Segments[c.seg]
		snapTol := 1e-7 * (1 + math.Abs(g.LoadHi))
		switch {
		case c.load < g.LoadLo-snapTol || c.load > g.LoadHi+snapTol:
			return candidate{}, false
		case c.load < g.LoadLo:
			st[i].load = g.LoadLo
		case c.load > g.LoadHi:
			st[i].load = g.LoadHi
		}
	}
	load, cost := r.totals(st)
	if inst.Sense == MinCostServeAll {
		if math.Abs(load-inst.TargetLoad) > r.balTol() {
			return candidate{}, false
		}
	} else {
		if !math.IsInf(inst.TargetLoad, 1) && load > inst.TargetLoad+r.balTol() {
			return candidate{}, false
		}
		if !math.IsInf(inst.BudgetUSD, 1) && cost > inst.BudgetUSD+r.budTol() {
			return candidate{}, false
		}
	}
	out := make([]sel, len(st))
	copy(out, st)
	return candidate{sel: out, load: load, cost: cost, obj: r.objective(load, cost)}, true
}

// polish fixes st's segment choices and re-optimizes the continuous loads
// exactly: a tiny LP — one bounded variable per running site, at most two
// rows — on the sparse revised-simplex core. This recovers most of the
// integrality gap the greedy restoration leaves behind.
func (r *recoverer) polish(st []sel) (candidate, bool) {
	inst := r.inst
	maxSense := inst.Sense == MaxLoadWithinBudget
	useBal := !math.IsInf(inst.TargetLoad, 1)
	useBud := maxSense && !math.IsInf(inst.BudgetUSD, 1)

	pb := lp.NewProblem()
	pb.SetMaximize(maxSense)
	idx := make([]int, len(st))
	var balTerms, budTerms []lp.Term
	fixedCost := 0.0
	for i, c := range st {
		idx[i] = -1
		if c.seg < 0 {
			continue
		}
		g := inst.Sites[i].Segments[c.seg]
		obj := g.Cost1
		if maxSense {
			obj = 1 - inst.Epsilon*g.Cost1
		}
		v := pb.AddVar(fmt.Sprintf("x%d", i), obj)
		pb.SetVarBounds(v, g.LoadLo, g.LoadHi)
		idx[i] = v
		balTerms = append(balTerms, lp.Term{Var: v, Coef: 1})
		if useBud {
			budTerms = append(budTerms, lp.Term{Var: v, Coef: g.Cost1})
		}
		fixedCost += g.Cost0
	}
	if len(balTerms) == 0 {
		return candidate{}, false
	}
	if inst.Sense == MinCostServeAll {
		pb.AddConstraint(balTerms, lp.EQ, inst.TargetLoad)
	} else if useBal {
		pb.AddConstraint(balTerms, lp.LE, inst.TargetLoad)
	}
	if useBud {
		rhs := inst.BudgetUSD - fixedCost
		if rhs < 0 {
			return candidate{}, false
		}
		pb.AddConstraint(budTerms, lp.LE, rhs)
	}
	sol := pb.SolveWithOptions(lp.Options{Core: r.core})
	r.polishes++
	r.pivots += sol.Pivots
	if sol.Status != lp.Optimal {
		return candidate{}, false
	}
	out := make([]sel, len(st))
	copy(out, st)
	for i, v := range idx {
		if v >= 0 {
			out[i].load = sol.X[v]
		}
	}
	return r.candidateFrom(out)
}

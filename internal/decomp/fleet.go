package decomp

import (
	"fmt"
	"math"

	"billcap/internal/milp"
)

// FromFleet converts a milp.FleetInstance — the paper-hour step-2 family —
// into a decomposition instance over the same feasible set: load is the
// site's purchased power p, cost is rate·p, the per-site spend cap folds
// into each segment's upper load bound, and Σz = 1 means no off state.
// Segments the demand shift or the spend cap make unreachable are dropped
// (the MILP's presolve proves their binaries 0; here they simply never
// appear). Objectives match too, so the exact MILP optimum and the
// decomposition's primal/dual values are directly comparable.
func FromFleet(fi milp.FleetInstance) Instance {
	inst := Instance{
		Sense:      MaxLoadWithinBudget,
		TargetLoad: math.Inf(1),
		BudgetUSD:  fi.BudgetUSD,
		Epsilon:    fi.Epsilon,
		Sites:      make([]Site, len(fi.Sites)),
	}
	for i, fs := range fi.Sites {
		s := Site{Name: fmt.Sprintf("s%d", i)}
		for k, g := range fs.Segs {
			hi := g.HiMW
			if g.RateUSDPerMWh > 0 {
				hi = math.Min(hi, fs.CapUSD/g.RateUSDPerMWh)
			}
			if hi < g.LoMW {
				continue // unreachable under the demand shift or the spend cap
			}
			s.Segments = append(s.Segments, Segment{
				Seg:    k,
				LoadLo: g.LoMW,
				LoadHi: hi,
				Cost1:  g.RateUSDPerMWh,
				Power1: 1, // load here is the purchased power itself
				Rate:   g.RateUSDPerMWh,
			})
		}
		inst.Sites[i] = s
	}
	return inst
}

// Package decomp prices fleet-scale hour decisions by Lagrangian dual
// decomposition. The hour MILP of internal/core is block-separable per site
// once its two coupling rows — the fleet balance Σλᵢ = λ and the budget
// Σ costᵢ ≤ B — are dualized: what remains is one tiny subproblem per site
// (pick a price segment and a load within it), solvable in closed form over
// the site's reachable segments. A projected-subgradient loop with
// Polyak-style step sizing drives the two multipliers toward the dual
// optimum; every iterate doubles as a primal seed for a greedy restoration
// pass (internal/fallback's dispatch shape) followed by an LP polish on the
// sparse revised-simplex core. The result carries both the best feasible
// primal and the best dual bound, so callers see a proven primal–dual gap
// instead of an unquantified heuristic.
//
// The exact MILP stays the oracle at small N (internal/core routes to this
// package only above Options.DecomposeThreshold); at N in the hundreds the
// decomposition answers in milliseconds where branch-and-bound hits its
// node or time limit.
package decomp

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"time"

	"billcap/internal/lp"
)

// Sense selects which hour decision the instance encodes.
type Sense int

// Instance senses.
const (
	// MinCostServeAll is step 1 of the two-step algorithm: serve exactly
	// TargetLoad at minimum cost. The dual is a lower bound on the optimum.
	MinCostServeAll Sense = iota
	// MaxLoadWithinBudget is step 2: serve as much load as possible, at most
	// TargetLoad, spending at most BudgetUSD, with an Epsilon cost tie-break.
	// The dual is an upper bound on the optimum.
	MaxLoadWithinBudget
)

// String names the sense.
func (s Sense) String() string {
	switch s {
	case MinCostServeAll:
		return "min-cost"
	case MaxLoadWithinBudget:
		return "max-load"
	}
	return fmt.Sprintf("Sense(%d)", int(s))
}

// Segment is one reachable price segment of a site: while the site's load
// sits in [LoadLo, LoadHi] it pays Rate, so cost and power are affine in the
// load. The segment index Seg refers to the originating price step (for
// traceability; gaps are fine — unreachable steps are simply absent).
type Segment struct {
	Seg            int
	LoadLo, LoadHi float64
	// Cost0 + Cost1·load is the segment's hourly cost in USD.
	Cost0, Cost1 float64
	// Power0 + Power1·load is the site's predicted draw in MW.
	Power0, Power1 float64
	// Rate is the segment's price in USD/MWh (what Cost is built from).
	Rate float64
}

// Cost evaluates the segment's hourly cost at the given load.
func (g Segment) Cost(l float64) float64 { return g.Cost0 + g.Cost1*l }

// Power evaluates the segment's predicted draw at the given load.
func (g Segment) Power(l float64) float64 { return g.Power0 + g.Power1*l }

// Site is one data center's hour model: a union of reachable price segments,
// plus an optional off state (load 0, cost 0, power 0). Segments must be
// sorted by LoadLo.
type Site struct {
	Name     string
	Segments []Segment
	// CanOff permits the off state. A site with CanOff=false must run in one
	// of its segments (the paper-hour family's Σz = 1).
	CanOff bool
}

// maxLoad returns the largest load the site can carry.
func (s *Site) maxLoad() float64 {
	m := 0.0
	for _, g := range s.Segments {
		if g.LoadHi > m {
			m = g.LoadHi
		}
	}
	return m
}

// Instance is one hour decision over the fleet.
type Instance struct {
	Sites []Site
	Sense Sense
	// TargetLoad is the hour's workload λ: an equality for MinCostServeAll,
	// an upper bound for MaxLoadWithinBudget (+Inf = no balance row).
	TargetLoad float64
	// BudgetUSD bounds Σ cost for MaxLoadWithinBudget (+Inf = no budget row).
	// Ignored for MinCostServeAll.
	BudgetUSD float64
	// Epsilon is the cost tie-break weight in the MaxLoadWithinBudget
	// objective Σ load − ε·Σ cost (0 = pure load maximization).
	Epsilon float64
}

func (inst *Instance) validate() error {
	if math.IsNaN(inst.TargetLoad) || inst.TargetLoad < 0 {
		return fmt.Errorf("decomp: bad target load %v", inst.TargetLoad)
	}
	if inst.Sense == MinCostServeAll && math.IsInf(inst.TargetLoad, 1) {
		return fmt.Errorf("decomp: min-cost needs a finite target load")
	}
	if math.IsNaN(inst.BudgetUSD) || inst.BudgetUSD < 0 {
		return fmt.Errorf("decomp: bad budget %v", inst.BudgetUSD)
	}
	if math.IsNaN(inst.Epsilon) || inst.Epsilon < 0 {
		return fmt.Errorf("decomp: bad epsilon %v", inst.Epsilon)
	}
	if len(inst.Sites) == 0 {
		return fmt.Errorf("decomp: no sites")
	}
	for i := range inst.Sites {
		s := &inst.Sites[i]
		if !s.CanOff && len(s.Segments) == 0 {
			return fmt.Errorf("decomp: site %d (%s) has no segments and no off state", i, s.Name)
		}
		prev := math.Inf(-1)
		for k, g := range s.Segments {
			switch {
			case math.IsNaN(g.LoadLo) || math.IsNaN(g.LoadHi) || g.LoadLo < 0:
				return fmt.Errorf("decomp: site %d segment %d: bad load bounds [%v, %v]", i, k, g.LoadLo, g.LoadHi)
			case g.LoadHi < g.LoadLo:
				return fmt.Errorf("decomp: site %d segment %d: empty load range [%v, %v]", i, k, g.LoadLo, g.LoadHi)
			case math.IsNaN(g.Cost0) || math.IsNaN(g.Cost1) || math.IsInf(g.Cost0, 0) || math.IsInf(g.Cost1, 0):
				return fmt.Errorf("decomp: site %d segment %d: bad cost coefficients", i, k)
			case g.LoadLo < prev:
				return fmt.Errorf("decomp: site %d: segments not sorted by LoadLo", i)
			}
			prev = g.LoadLo
		}
	}
	return nil
}

// normalize rescales the instance so the largest load and cost magnitudes
// are 1 — a pure change of units. Without it the Polyak step is conditioned
// by whichever coupling row has the larger residual: core instances carry
// loads in req/h (~1e12) against costs in USD (~1e3), so ‖g‖² is dominated
// by the balance row and the budget multiplier can never reach its useful
// magnitude within the iteration cap. Power coefficients absorb the load
// scale so Segment.Power still reports original MW; the returned factors
// undo the scaling on the result.
func (inst *Instance) normalize() (Instance, float64, float64) {
	sL, sC := 0.0, 0.0
	for i := range inst.Sites {
		for _, g := range inst.Sites[i].Segments {
			if g.LoadHi > sL {
				sL = g.LoadHi
			}
			for _, l := range [2]float64{g.LoadLo, g.LoadHi} {
				if c := math.Abs(g.Cost(l)); c > sC {
					sC = c
				}
			}
		}
	}
	if sL <= 0 {
		sL = 1
	}
	if sC <= 0 {
		sC = 1
	}
	out := *inst
	out.Sites = make([]Site, len(inst.Sites))
	for i, s := range inst.Sites {
		ns := s
		ns.Segments = make([]Segment, len(s.Segments))
		for k, g := range s.Segments {
			g.LoadLo /= sL
			g.LoadHi /= sL
			g.Cost0 /= sC
			g.Cost1 *= sL / sC
			g.Power1 *= sL
			ns.Segments[k] = g
		}
		out.Sites[i] = ns
	}
	if !math.IsInf(out.TargetLoad, 1) {
		out.TargetLoad /= sL
	}
	if !math.IsInf(out.BudgetUSD, 1) {
		out.BudgetUSD /= sC
	}
	// Objective load − ε·cost divides through by sL, so ε picks up sC/sL.
	out.Epsilon *= sC / sL
	return out, sL, sC
}

// Options tune a Solve. The zero value is ready to use.
type Options struct {
	// MaxIters caps the subgradient iterations; 0 → 160.
	MaxIters int
	// GapTol is the relative primal–dual gap at which the loop declares
	// convergence; 0 → 1e-3.
	GapTol float64
	// Workers bounds the subproblem worker pool; 0 → GOMAXPROCS.
	Workers int
	// Deadline bounds wall-clock time; 0 → unbounded. An expiring solve
	// answers with its best primal and bound so far.
	Deadline time.Duration
	// Cancel aborts the loop early when closed (a context's Done channel).
	Cancel <-chan struct{}
	// Theta is the initial Polyak step scale; 0 → 1. It halves after
	// several consecutive iterations without dual progress.
	Theta float64
	// LPCore selects the simplex core behind the primal polish LPs.
	LPCore lp.Core
}

func (o Options) maxIters() int {
	if o.MaxIters <= 0 {
		return 160
	}
	return o.MaxIters
}

func (o Options) gapTol() float64 {
	if o.GapTol <= 0 {
		return 1e-3
	}
	return o.GapTol
}

func (o Options) workers() int {
	w := o.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	return w
}

func (o Options) theta() float64 {
	if o.Theta <= 0 {
		return 1
	}
	return o.Theta
}

// Status reports how a Solve ended.
type Status int

// Solve outcomes.
const (
	// Converged: the primal–dual gap closed below Options.GapTol.
	Converged Status = iota
	// GapLimit: the iteration, deadline or cancellation budget ran out; the
	// best feasible primal and dual bound found so far are returned.
	GapLimit
	// Infeasible: no feasible primal exists (e.g. the target load exceeds
	// fleet capacity, or mandatory minimum loads overshoot it).
	Infeasible
)

// String names the status.
func (s Status) String() string {
	switch s {
	case Converged:
		return "converged"
	case GapLimit:
		return "gap-limit"
	case Infeasible:
		return "infeasible"
	}
	return fmt.Sprintf("Status(%d)", int(s))
}

// SiteAlloc is the recovered primal plan for one site.
type SiteAlloc struct {
	Load    float64
	PowerMW float64
	CostUSD float64
	// Rate is the price level of the chosen segment (0 when off).
	Rate float64
	// Seg is the chosen segment's price-step index (-1 when off).
	Seg int
	On  bool
}

// Result is the outcome of one decomposition solve.
type Result struct {
	Status Status
	// Sites is the best feasible primal found (empty when Infeasible).
	Sites []SiteAlloc
	// Load and CostUSD are the primal's totals.
	Load    float64
	CostUSD float64
	// Objective is the primal objective in the instance's sense
	// (MinCostServeAll: Σ cost; MaxLoadWithinBudget: Σ load − ε·Σ cost).
	Objective float64
	// DualBound is the best Lagrangian bound: a lower bound on the optimum
	// for MinCostServeAll, an upper bound for MaxLoadWithinBudget.
	DualBound float64
	// Gap is the relative primal–dual gap |DualBound − Objective| / max(1, |Objective|).
	Gap float64
	// Iterations counts subgradient iterations performed.
	Iterations int
	// LPPivots counts simplex pivots across the primal polish LPs.
	LPPivots int
	// Polishes counts polish LPs solved.
	Polishes int
	Elapsed  time.Duration
}

// choice is one site subproblem's answer under the current multipliers.
type choice struct {
	seg  int // -1 = off
	load float64
	val  float64 // wL·load − wC·cost
}

// bestChoice solves one site's Lagrangian subproblem max wL·load − wC·cost
// over the site's segments ∪ off state. Within a segment the objective is
// linear in the load, so the maximum sits at a segment endpoint — the whole
// "DP over reachable price segments" collapses to 2·|segments| evaluations.
func bestChoice(s *Site, wL, wC float64) choice {
	best := choice{seg: -1}
	if !s.CanOff {
		best.val = math.Inf(-1)
	}
	for k := range s.Segments {
		g := &s.Segments[k]
		for _, l := range [2]float64{g.LoadLo, g.LoadHi} {
			if v := wL*l - wC*g.Cost(l); v > best.val {
				best = choice{seg: k, load: l, val: v}
			}
		}
	}
	return best
}

// pool is the bounded worker pool evaluating site subproblems. Workers are
// started once per Solve and fed one contiguous chunk of sites per round.
type pool struct {
	workers int
	jobs    chan func()
	wg      sync.WaitGroup
}

func newPool(workers int) *pool {
	p := &pool{workers: workers}
	if workers > 1 {
		p.jobs = make(chan func(), workers)
		for i := 0; i < workers; i++ {
			go func() {
				for f := range p.jobs {
					f()
					p.wg.Done()
				}
			}()
		}
	}
	return p
}

func (p *pool) close() {
	if p.jobs != nil {
		close(p.jobs)
	}
}

// solveSites evaluates every site's subproblem under the weights into out.
// Small fleets run inline: the pool pays off only when the per-round work
// dwarfs the handoff.
func (p *pool) solveSites(sites []Site, wL, wC float64, out []choice) {
	if p.jobs == nil || len(sites) < 4*p.workers || len(sites) < 64 {
		for i := range sites {
			out[i] = bestChoice(&sites[i], wL, wC)
		}
		return
	}
	chunk := (len(sites) + p.workers - 1) / p.workers
	for lo := 0; lo < len(sites); lo += chunk {
		lo, hi := lo, lo+chunk
		if hi > len(sites) {
			hi = len(sites)
		}
		p.wg.Add(1)
		p.jobs <- func() {
			for i := lo; i < hi; i++ {
				out[i] = bestChoice(&sites[i], wL, wC)
			}
		}
	}
	p.wg.Wait()
}

// Solve runs the dual-decomposition loop on the instance: dualize the
// coupling rows, iterate per-site subproblems and a projected subgradient
// step on the multipliers (Polyak sizing against the best feasible primal),
// and recover a feasible primal from every iterate. It returns the best
// primal together with the best dual bound and their gap.
func Solve(inst Instance, opt Options) (Result, error) {
	start := time.Now()
	if err := inst.validate(); err != nil {
		return Result{}, err
	}
	var sL, sC float64
	inst, sL, sC = inst.normalize()
	n := len(inst.Sites)
	maxSense := inst.Sense == MaxLoadWithinBudget
	useBal := !math.IsInf(inst.TargetLoad, 1)
	useBud := maxSense && !math.IsInf(inst.BudgetUSD, 1)

	var deadline time.Time
	if opt.Deadline > 0 {
		deadline = start.Add(opt.Deadline)
	}
	expired := func() bool {
		if !deadline.IsZero() && time.Now().After(deadline) {
			return true
		}
		select {
		case <-opt.Cancel:
			return true
		default:
			return false
		}
	}

	res := Result{Status: GapLimit}
	rec := &recoverer{inst: &inst, core: opt.LPCore, expired: expired}

	// Bootstrap a feasible primal from the minimal state (everything off or
	// at its cheapest mandatory minimum), greedily filled and polished —
	// the Polyak numerator needs a primal value to aim at.
	var best candidate
	haveBest := false
	if c, ok := rec.recoverFrom(rec.minimalState()); ok {
		best, haveBest = c, true
	}

	// Multiplier initialization. For min-cost the balance multiplier is the
	// marginal cost of load; the bootstrap primal's average cost per unit is
	// a cheap, scale-correct first guess.
	var mu, nu float64
	if !maxSense && haveBest && inst.TargetLoad > 0 {
		mu = best.cost / inst.TargetLoad
	}

	dualBest := math.Inf(1)
	if !maxSense {
		dualBest = math.Inf(-1)
	}
	theta := opt.theta()
	stall := 0
	const stallLimit = 6

	pw := newPool(opt.workers())
	defer pw.close()
	choices := make([]choice, n)

	for it := 1; it <= opt.maxIters(); it++ {
		res.Iterations = it
		if expired() {
			break
		}
		var wL, wC float64
		if maxSense {
			wL, wC = 1-mu, inst.Epsilon+nu
		} else {
			wL, wC = mu, 1
		}
		pw.solveSites(inst.Sites, wL, wC, choices)
		var sumL, sumC, sumV float64
		for i := range choices {
			c := choices[i]
			sumV += c.val
			if c.seg >= 0 {
				sumL += c.load
				sumC += inst.Sites[i].Segments[c.seg].Cost(c.load)
			}
		}
		// Lagrangian dual value at the current multipliers.
		var dual float64
		if maxSense {
			dual = sumV
			if useBal {
				dual += mu * inst.TargetLoad
			}
			if useBud {
				dual += nu * inst.BudgetUSD
			}
			if dual < dualBest {
				dualBest, stall = dual, 0
			} else {
				stall++
			}
		} else {
			dual = mu*inst.TargetLoad - sumV
			if dual > dualBest {
				dualBest, stall = dual, 0
			} else {
				stall++
			}
		}
		if stall >= stallLimit {
			theta, stall = math.Max(theta/2, 1e-4), 0
		}

		// Primal recovery from this iterate's subproblem selections.
		if c, ok := rec.recoverFrom(stateFromChoices(choices)); ok {
			if !haveBest || c.betterThan(best, maxSense) {
				best, haveBest = c, true
			}
		}
		if haveBest {
			res.Gap = relGap(dualBest, best.obj, maxSense)
			if res.Gap <= opt.gapTol() {
				res.Status = Converged
				break
			}
		}

		// Projected subgradient step with Polyak sizing
		// t = θ·(dual − primal)/‖g‖² toward closing the gap.
		var gMu, gNu float64
		if useBal {
			gMu = inst.TargetLoad - sumL
		}
		if useBud {
			gNu = inst.BudgetUSD - sumC
		}
		g2 := gMu*gMu + gNu*gNu
		if g2 <= 1e-30 {
			// Zero subgradient: the multipliers are dual-optimal; further
			// iterations cannot move the bound.
			break
		}
		var target float64
		if haveBest {
			if maxSense {
				target = dual - best.obj
			} else {
				target = best.obj - dual
			}
			if target <= 0 {
				break // bound meets the primal: numerically converged
			}
		} else {
			target = 0.05 * (1 + math.Abs(dual))
		}
		t := theta * target / g2
		if maxSense {
			mu = math.Max(0, mu-t*gMu)
			nu = math.Max(0, nu-t*gNu)
		} else {
			mu += t * gMu
		}
	}

	res.LPPivots, res.Polishes = rec.pivots, rec.polishes
	// Undo the unit normalization: the objective (and its bound) carries the
	// load unit under MaxLoadWithinBudget and the cost unit under
	// MinCostServeAll; the gap is relative and needs no unscaling.
	objUnit := sL
	if !maxSense {
		objUnit = sC
	}
	res.DualBound = dualBest * objUnit
	res.Elapsed = time.Since(start)
	if !haveBest {
		res.Status = Infeasible
		res.Gap = math.Inf(1)
		return res, nil
	}
	res.Gap = relGap(dualBest, best.obj, maxSense)
	if res.Status != Converged && res.Gap <= opt.gapTol() {
		res.Status = Converged
	}
	res.Load, res.CostUSD = best.load*sL, best.cost*sC
	res.Objective = best.obj * objUnit
	res.Sites = make([]SiteAlloc, n)
	for i, c := range best.sel {
		a := SiteAlloc{Seg: -1}
		if c.seg >= 0 {
			g := inst.Sites[i].Segments[c.seg]
			a = SiteAlloc{
				Load:    c.load * sL,
				PowerMW: g.Power(c.load), // Power1 absorbed sL: already MW
				CostUSD: g.Cost(c.load) * sC,
				Rate:    g.Rate,
				Seg:     g.Seg,
				On:      true,
			}
		}
		res.Sites[i] = a
	}
	return res, nil
}

// relGap is the relative primal–dual gap, clamped at 0 (floating-point noise
// can push the bound a hair past the primal).
func relGap(dual, primal float64, maxSense bool) float64 {
	d := dual - primal
	if !maxSense {
		d = -d
	}
	if d <= 0 || math.IsInf(dual, 0) {
		if math.IsInf(dual, 0) {
			return math.Inf(1)
		}
		return 0
	}
	return d / math.Max(1, math.Abs(primal))
}

package decomp

import (
	"math"
	"testing"

	"billcap/internal/lp"
	"billcap/internal/milp"
)

// checkFleetFeasible verifies a recovered primal against the fleet
// instance's own semantics: every site runs in exactly one reachable
// segment within its load bounds and spend cap, and the fleet budget holds.
func checkFleetFeasible(t *testing.T, fi milp.FleetInstance, res Result) {
	t.Helper()
	if len(res.Sites) != len(fi.Sites) {
		t.Fatalf("%d allocations for %d sites", len(res.Sites), len(fi.Sites))
	}
	total := 0.0
	for i, a := range res.Sites {
		fs := fi.Sites[i]
		if !a.On {
			t.Fatalf("site %d off: the fleet family has no off state", i)
		}
		if a.Seg < 0 || a.Seg >= len(fs.Segs) {
			t.Fatalf("site %d: bad segment %d", i, a.Seg)
		}
		g := fs.Segs[a.Seg]
		tol := 1e-6 * (1 + math.Abs(g.HiMW))
		if a.Load < g.LoMW-tol || a.Load > g.HiMW+tol {
			t.Fatalf("site %d: load %v outside segment %d bounds [%v, %v]",
				i, a.Load, a.Seg, g.LoMW, g.HiMW)
		}
		cost := g.RateUSDPerMWh * a.Load
		if cost > fs.CapUSD+1e-6*(1+fs.CapUSD) {
			t.Fatalf("site %d: cost %v over cap %v", i, cost, fs.CapUSD)
		}
		if math.Abs(cost-a.CostUSD) > 1e-6*(1+cost) {
			t.Fatalf("site %d: reported cost %v, recomputed %v", i, a.CostUSD, cost)
		}
		total += cost
	}
	if total > fi.BudgetUSD+1e-6*(1+fi.BudgetUSD) {
		t.Fatalf("fleet cost %v over budget %v", total, fi.BudgetUSD)
	}
}

// TestFleetDualBoundAndPrimalVsExact is the equivalence oracle: on seeded
// NewPaperFleet and NewPaperHour instances with N ≤ 20, the decomposition's
// dual bound must never cut off the exact MILP optimum, and its recovered
// primal must be feasible and within 1% of that optimum. Run under -race in
// CI, which also exercises the subproblem worker pool.
func TestFleetDualBoundAndPrimalVsExact(t *testing.T) {
	type tc struct {
		name string
		fi   milp.FleetInstance
	}
	var cases []tc
	for _, n := range []int{2, 5, 11, 20} {
		for _, seed := range []uint64{1, 7, 42} {
			cases = append(cases, tc{
				name: "fleet",
				fi:   milp.NewPaperFleet(n, seed+uint64(n)),
			})
		}
	}
	for _, n := range []int{3, 8, 13, 20} {
		cases = append(cases, tc{
			name: "paper-hour",
			fi:   milp.NewPaperHourFleet(n, milp.PaperHourBudget(n, 0)),
		})
	}
	for _, c := range cases {
		n := len(c.fi.Sites)
		exact := c.fi.Build().SolveWithOptions(milp.Options{Workers: 1})
		if exact.Status != milp.Optimal {
			t.Fatalf("%s n=%d: exact MILP ended %v", c.name, n, exact.Status)
		}
		res, err := Solve(FromFleet(c.fi), Options{Workers: 4})
		if err != nil {
			t.Fatalf("%s n=%d: %v", c.name, n, err)
		}
		if res.Status == Infeasible {
			t.Fatalf("%s n=%d: decomposition found no feasible primal", c.name, n)
		}
		checkFleetFeasible(t, c.fi, res)
		scale := 1 + math.Abs(exact.Objective)
		if res.DualBound < exact.Objective-1e-6*scale {
			t.Errorf("%s n=%d: dual bound %v cuts off the exact optimum %v",
				c.name, n, res.DualBound, exact.Objective)
		}
		if res.Objective > exact.Objective+1e-6*scale {
			t.Errorf("%s n=%d: primal %v exceeds the exact optimum %v",
				c.name, n, res.Objective, exact.Objective)
		}
		if res.Objective < exact.Objective*0.99-1e-9 {
			t.Errorf("%s n=%d: primal %v more than 1%% below the exact optimum %v (gap %.3f%%)",
				c.name, n, res.Objective, exact.Objective,
				100*(exact.Objective-res.Objective)/exact.Objective)
		}
		t.Logf("%s n=%d: exact=%.2f primal=%.2f dual=%.2f gap=%.4f%% iters=%d",
			c.name, n, exact.Objective, res.Objective, res.DualBound, 100*res.Gap, res.Iterations)
	}
}

// TestMinCostVsExhaustive checks the serve-all sense against an exhaustive
// oracle: enumerate every segment combination of a tiny fleet and solve the
// continuous split exactly per combination with the LP core. The
// decomposition's dual bound must stay at or below the true minimum cost and
// its primal within 1% above it.
func TestMinCostVsExhaustive(t *testing.T) {
	sites := []Site{
		{Name: "a", CanOff: true, Segments: []Segment{
			{Seg: 0, LoadLo: 0, LoadHi: 60, Cost0: 12, Cost1: 3, Rate: 3},
			{Seg: 1, LoadLo: 60, LoadHi: 140, Cost0: 12, Cost1: 5, Rate: 5},
		}},
		{Name: "b", CanOff: true, Segments: []Segment{
			{Seg: 0, LoadLo: 0, LoadHi: 90, Cost0: 30, Cost1: 2, Rate: 2},
			{Seg: 1, LoadLo: 90, LoadHi: 150, Cost0: 30, Cost1: 7, Rate: 7},
		}},
		{Name: "c", CanOff: false, Segments: []Segment{
			{Seg: 0, LoadLo: 10, LoadHi: 80, Cost0: 0, Cost1: 4, Rate: 4},
			{Seg: 1, LoadLo: 80, LoadHi: 120, Cost0: 0, Cost1: 6, Rate: 6},
		}},
	}
	for _, target := range []float64{10, 75, 130, 220, 300, 380} {
		inst := Instance{Sites: sites, Sense: MinCostServeAll, TargetLoad: target, BudgetUSD: math.Inf(1)}
		opt := exhaustiveMinCost(t, inst)
		res, err := Solve(inst, Options{})
		if err != nil {
			t.Fatalf("target %v: %v", target, err)
		}
		if math.IsInf(opt, 1) {
			if res.Status != Infeasible {
				t.Errorf("target %v: want infeasible, got %v with cost %v", target, res.Status, res.CostUSD)
			}
			continue
		}
		if res.Status == Infeasible {
			t.Fatalf("target %v: infeasible but oracle found cost %v", target, opt)
		}
		if math.Abs(res.Load-target) > 1e-6*(1+target) {
			t.Errorf("target %v: served %v", target, res.Load)
		}
		if res.DualBound > opt+1e-6*(1+opt) {
			t.Errorf("target %v: dual bound %v exceeds true minimum %v", target, res.DualBound, opt)
		}
		if res.Objective > opt*1.01+1e-9 {
			t.Errorf("target %v: primal cost %v more than 1%% above minimum %v", target, res.Objective, opt)
		}
	}
}

// exhaustiveMinCost brute-forces the serve-all minimum: every combination of
// segment choices (including off where allowed), each with its continuous
// split solved as an LP. Returns +Inf when nothing is feasible.
func exhaustiveMinCost(t *testing.T, inst Instance) float64 {
	t.Helper()
	n := len(inst.Sites)
	choices := make([]int, n) // -1 = off, else segment index
	best := math.Inf(1)
	var rec func(i int)
	rec = func(i int) {
		if i == n {
			pb := lp.NewProblem()
			var terms []lp.Term
			fixed := 0.0
			for j, k := range choices {
				if k < 0 {
					continue
				}
				g := inst.Sites[j].Segments[k]
				v := pb.AddVar("x", g.Cost1)
				pb.SetVarBounds(v, g.LoadLo, g.LoadHi)
				terms = append(terms, lp.Term{Var: v, Coef: 1})
				fixed += g.Cost0
			}
			if len(terms) == 0 {
				if inst.TargetLoad <= 1e-9 && best > 0 {
					best = 0
				}
				return
			}
			pb.AddConstraint(terms, lp.EQ, inst.TargetLoad)
			if sol := pb.Solve(); sol.Status == lp.Optimal && sol.Objective+fixed < best {
				best = sol.Objective + fixed
			}
			return
		}
		s := inst.Sites[i]
		if s.CanOff {
			choices[i] = -1
			rec(i + 1)
		}
		for k := range s.Segments {
			choices[i] = k
			rec(i + 1)
		}
	}
	rec(0)
	return best
}

package decomp

import (
	"math"
	"testing"
	"time"

	"billcap/internal/milp"
)

func twoSites() []Site {
	return []Site{
		{Name: "a", CanOff: true, Segments: []Segment{
			{Seg: 0, LoadLo: 0, LoadHi: 100, Cost1: 2, Power1: 1, Rate: 2},
			{Seg: 1, LoadLo: 100, LoadHi: 200, Cost1: 5, Power1: 1, Rate: 5},
		}},
		{Name: "b", CanOff: true, Segments: []Segment{
			{Seg: 0, LoadLo: 0, LoadHi: 150, Cost1: 3, Power1: 1, Rate: 3},
		}},
	}
}

func TestValidate(t *testing.T) {
	bad := []Instance{
		{Sense: MinCostServeAll, TargetLoad: math.Inf(1), Sites: twoSites()},
		{TargetLoad: -1, Sites: twoSites()},
		{TargetLoad: 10, BudgetUSD: -2, Sites: twoSites()},
		{TargetLoad: 10, Sites: nil},
		{TargetLoad: 10, Sites: []Site{{Name: "x", CanOff: false}}},
		{TargetLoad: 10, Sites: []Site{{Name: "x", CanOff: true,
			Segments: []Segment{{LoadLo: 5, LoadHi: 2}}}}},
		{TargetLoad: 10, Sites: []Site{{Name: "x", CanOff: true,
			Segments: []Segment{{LoadLo: 5, LoadHi: 9}, {LoadLo: 1, LoadHi: 3}}}}},
	}
	for i, inst := range bad {
		if _, err := Solve(inst, Options{}); err == nil {
			t.Errorf("bad instance %d accepted", i)
		}
	}
}

func TestMinCostServesExactly(t *testing.T) {
	inst := Instance{
		Sites: twoSites(), Sense: MinCostServeAll,
		TargetLoad: 220, BudgetUSD: math.Inf(1),
	}
	res, err := Solve(inst, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status == Infeasible {
		t.Fatal("feasible target declared infeasible")
	}
	if math.Abs(res.Load-220) > 1e-6*220 {
		t.Fatalf("served %v, want 220", res.Load)
	}
	// Cheapest split: a at 100 ($2/u), b at 120 ($3/u) = 200+360 = 560.
	if math.Abs(res.CostUSD-560) > 1e-6*560 {
		t.Errorf("cost %v, want 560", res.CostUSD)
	}
	if res.DualBound > res.Objective+1e-9 {
		t.Errorf("lower bound %v above primal %v", res.DualBound, res.Objective)
	}
}

func TestMinCostOverCapacityIsInfeasible(t *testing.T) {
	inst := Instance{
		Sites: twoSites(), Sense: MinCostServeAll,
		TargetLoad: 351, BudgetUSD: math.Inf(1), // capacity is 200+150
	}
	res, err := Solve(inst, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Infeasible {
		t.Fatalf("status %v, want infeasible", res.Status)
	}
}

func TestMandatoryMinimumOverTargetIsInfeasible(t *testing.T) {
	sites := twoSites()
	sites[0].CanOff = false
	sites[0].Segments[0].LoadLo = 50
	inst := Instance{
		Sites: sites, Sense: MinCostServeAll,
		TargetLoad: 10, BudgetUSD: math.Inf(1),
	}
	res, err := Solve(inst, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Infeasible {
		t.Fatalf("status %v, want infeasible", res.Status)
	}
}

func TestMaxLoadRespectsBudgetAndBalance(t *testing.T) {
	inst := Instance{
		Sites: twoSites(), Sense: MaxLoadWithinBudget,
		TargetLoad: 300, BudgetUSD: 500, Epsilon: 1e-4,
	}
	res, err := Solve(inst, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Load > 300+1e-6 {
		t.Errorf("served %v over the balance bound 300", res.Load)
	}
	if res.CostUSD > 500+1e-6*500 {
		t.Errorf("cost %v over budget 500", res.CostUSD)
	}
	// $500 buys a:100@2 + b:100@3 = 200 load for 500; check we got there.
	if res.Load < 200-1e-6 {
		t.Errorf("served %v, want 200", res.Load)
	}
	if res.DualBound < res.Objective-1e-9 {
		t.Errorf("upper bound %v below primal %v", res.DualBound, res.Objective)
	}
}

func TestMaxLoadUncoupledIsExact(t *testing.T) {
	// No balance row, no budget row: the instance is separable, so the dual
	// bound and the primal must coincide immediately.
	inst := Instance{
		Sites: twoSites(), Sense: MaxLoadWithinBudget,
		TargetLoad: math.Inf(1), BudgetUSD: math.Inf(1), Epsilon: 1e-4,
	}
	res, err := Solve(inst, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Converged {
		t.Fatalf("status %v, want converged", res.Status)
	}
	want := 350.0 // both sites at their top segments
	if math.Abs(res.Load-want) > 1e-6*want {
		t.Errorf("served %v, want %v", res.Load, want)
	}
	if res.Gap > 1e-9 {
		t.Errorf("gap %v on a separable instance", res.Gap)
	}
}

func TestBadlyScaledUnitsStillCloseTheGap(t *testing.T) {
	// Core instances carry loads in req/h (~1e12) against costs in USD
	// (~1e3). Before Solve normalized units, ‖g‖² was dominated by the
	// balance residual and the budget multiplier ν could move only ~1e-12
	// per iteration — the dual bound stayed near fleet capacity and the
	// reported gap was ~50% on a near-optimal primal.
	sites := []Site{
		{Name: "a", CanOff: true, Segments: []Segment{
			{Seg: 0, LoadLo: 0, LoadHi: 6e11, Cost1: 2e-9, Power1: 1e-10, Rate: 20},
			{Seg: 1, LoadLo: 6e11, LoadHi: 1.2e12, Cost1: 5e-9, Power1: 1e-10, Rate: 50},
		}},
		{Name: "b", CanOff: true, Segments: []Segment{
			{Seg: 0, LoadLo: 0, LoadHi: 9e11, Cost1: 3e-9, Power1: 1e-10, Rate: 30},
		}},
	}
	inst := Instance{
		Sites: sites, Sense: MaxLoadWithinBudget,
		TargetLoad: 1.8e12, BudgetUSD: 2000, Epsilon: 1e-4,
	}
	res, err := Solve(inst, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status == Infeasible {
		t.Fatal("feasible instance declared infeasible")
	}
	if res.CostUSD > 2000*(1+1e-6) {
		t.Errorf("cost %v over budget 2000", res.CostUSD)
	}
	// $2000 buys a:6e11@2e-9 ($1200) + b:~2.67e11@3e-9 ($800) ≈ 8.67e11.
	if res.Load < 8.6e11 {
		t.Errorf("served %v, want ≈8.67e11", res.Load)
	}
	if res.Gap > 0.02 {
		t.Errorf("gap %.2f%% on a badly scaled instance, want < 2%%", 100*res.Gap)
	}
}

func TestDeadlineAndCancelStopTheLoop(t *testing.T) {
	fi := milp.NewPaperFleet(30, 3)
	res, err := Solve(FromFleet(fi), Options{Deadline: time.Nanosecond, GapTol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations > 1 {
		t.Errorf("expired deadline still ran %d iterations", res.Iterations)
	}
	done := make(chan struct{})
	close(done)
	res, err = Solve(FromFleet(fi), Options{Cancel: done, GapTol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations > 1 {
		t.Errorf("closed cancel channel still ran %d iterations", res.Iterations)
	}
}

// TestCancelStopsPrimalRecovery pins the recovery path's deadline contract:
// the bootstrap primal (which runs before the first loop-top expiry check)
// must not polish after Cancel has fired. Before recovery honored Cancel,
// this test failed with Polishes >= 1.
func TestCancelStopsPrimalRecovery(t *testing.T) {
	fi := milp.NewPaperFleet(30, 3)
	done := make(chan struct{})
	close(done)
	res, err := Solve(FromFleet(fi), Options{Cancel: done, GapTol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	if res.Polishes != 0 {
		t.Errorf("cancelled solve still ran %d polish LPs", res.Polishes)
	}
	if res.LPPivots != 0 {
		t.Errorf("cancelled solve still ran %d LP pivots", res.LPPivots)
	}
}

func TestWorkerPoolMatchesSequential(t *testing.T) {
	// The pool only changes who evaluates the subproblems, never the math:
	// identical instances must give identical iterates and results.
	fi := milp.NewPaperFleet(80, 9)
	seq, err := Solve(FromFleet(fi), Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Solve(FromFleet(fi), Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if seq.Objective != par.Objective || seq.DualBound != par.DualBound || seq.Iterations != par.Iterations {
		t.Errorf("sequential (obj=%v dual=%v it=%d) != parallel (obj=%v dual=%v it=%d)",
			seq.Objective, seq.DualBound, seq.Iterations,
			par.Objective, par.DualBound, par.Iterations)
	}
}

func TestFleetScaleCompletes(t *testing.T) {
	// The N=500 hour decision — 2500 binaries in MILP terms — must come back
	// in interactive time with a sub-1% proven gap.
	fi := milp.NewPaperFleet(500, 0)
	start := time.Now()
	res, err := Solve(FromFleet(fi), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status == Infeasible {
		t.Fatal("fleet instance declared infeasible")
	}
	if res.Gap > 0.01 {
		t.Errorf("gap %.4f%% above 1%%", 100*res.Gap)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("N=500 solve took %v", elapsed)
	}
}

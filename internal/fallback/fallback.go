// Package fallback implements the controller's deterministic greedy
// dispatcher — the safety rung of the degradation ladder. When the MILP
// stalls, panics or is forced to fail, this dispatcher still has to route
// the hour's traffic, so it is built to be total: it never returns an
// error, never panics on corrupt numbers, and its plan always respects
// per-site power caps and the SLA admission limit.
//
// The algorithm fills the cheapest price segments first: each site's cost
// curve under a locational step policy is piecewise linear in its load, so
// the dispatcher repeatedly takes the chunk of capacity (up to the next
// price boundary, the power cap or the remaining demand) with the lowest
// cost per admitted request. Premium traffic is served first and
// unconditionally (the paper's premium-QoS-first mandate, §V-B); ordinary
// traffic is then admitted only while the predicted bill stays within the
// hour's budget.
//
// The result is deliberately suboptimal — it ignores the price-maker
// feedback subtleties the MILP models exactly — but it is O(sites ×
// segments), needs no solver, and is safe by construction.
package fallback

import (
	"math"

	"billcap/internal/piecewise"
)

// Site describes one data center as the greedy dispatcher sees it.
type Site struct {
	// Name labels the site in reports.
	Name string
	// MaxLambda is the largest arrival rate the site can carry within its
	// SLA, in requests/hour. The dispatcher never allocates above it.
	MaxLambda float64
	// MWPerLambda (a) and IdleMW (b) form the affine power model
	// p = a·λ + b used for planning.
	MWPerLambda float64
	IdleMW      float64
	// PowerCapMW is the supplier cap Ps; planned draw stays at least
	// SlackMW below it so the discrete realization cannot trip it.
	PowerCapMW float64
	// SlackMW is the headroom reserved for discretization (e.g.
	// dcmodel.Site.RoundingSlackMW); 0 reserves none.
	SlackMW float64
	// DemandMW is the observed background regional draw.
	DemandMW float64
	// Price maps total regional load in MW to $/MWh.
	Price piecewise.StepFunction
	// Down marks the site unavailable (outage); it receives no load.
	Down bool
}

// Input is one hour's dispatching demand.
type Input struct {
	// TotalLambda and PremiumLambda are the hour's arrivals in
	// requests/hour; premium is served first and regardless of budget.
	TotalLambda   float64
	PremiumLambda float64
	// BudgetUSD bounds the predicted bill while admitting ordinary
	// traffic; +Inf disables the bound. NaN or negative is treated as 0
	// (serve premium only) — the conservative reading of a corrupt budget.
	BudgetUSD float64
}

// Alloc is the dispatcher's plan for one site.
type Alloc struct {
	Lambda         float64
	PowerMW        float64
	PriceUSDPerMWh float64
	CostUSD        float64
	On             bool
}

// Decision is the greedy dispatch plan.
type Decision struct {
	Sites                                 []Alloc
	Served, ServedPremium, ServedOrdinary float64
	// CostUSD is the predicted bill of the plan under the observed demand.
	CostUSD float64
}

// siteState is the mutable fill state of one usable site.
type siteState struct {
	idx    int     // index into the input slice
	a, b   float64 // affine power model
	demand float64 // sanitized background draw
	capLam float64 // min(SLA limit, power-cap limit)
	price  piecewise.StepFunction
	lam    float64 // current allocation
	cost   float64 // current predicted cost at lam
	slack  float64
}

// sanitize clamps a corrupt scalar into [0, ∞); NaN becomes 0.
func sanitize(v float64) float64 {
	if math.IsNaN(v) || v < 0 {
		return 0
	}
	return v
}

// Dispatch routes the hour's traffic greedily. It is a pure function: the
// same sites and input always produce the identical plan (ties break toward
// the lower site index), which keeps the fallback rung reproducible in
// traces and tests.
func Dispatch(sites []Site, in Input) Decision {
	total := sanitize(in.TotalLambda)
	if math.IsInf(total, 1) {
		total = 0
	}
	premium := sanitize(in.PremiumLambda)
	if premium > total {
		premium = total
	}
	budget := in.BudgetUSD
	if math.IsNaN(budget) || budget < 0 {
		budget = 0
	}

	states := usable(sites)
	servePhase(states, premium, math.Inf(1))
	served := 0.0
	for _, st := range states {
		served += st.lam
	}
	servedPremium := math.Min(premium, served)
	servePhase(states, total-premium, budget)

	out := Decision{Sites: make([]Alloc, len(sites))}
	for _, st := range states {
		if st.lam <= 0 {
			continue
		}
		p := st.a*st.lam + st.b
		rate := st.price.Eval(st.demand + p)
		alloc := Alloc{
			Lambda:         st.lam,
			PowerMW:        p,
			PriceUSDPerMWh: rate,
			CostUSD:        rate * p,
			On:             true,
		}
		out.Sites[st.idx] = alloc
		out.Served += st.lam
		out.CostUSD += alloc.CostUSD
	}
	out.ServedPremium = math.Min(servedPremium, out.Served)
	out.ServedOrdinary = out.Served - out.ServedPremium
	return out
}

// usable filters and sanitizes the sites the greedy can actually load.
func usable(sites []Site) []*siteState {
	var out []*siteState
	for i, s := range sites {
		if s.Down {
			continue
		}
		a, b := s.MWPerLambda, s.IdleMW
		if math.IsNaN(a) || a < 0 || math.IsNaN(b) || b < 0 {
			continue
		}
		maxLam := sanitize(s.MaxLambda)
		if maxLam <= 0 || math.IsInf(maxLam, 1) {
			continue
		}
		slack := sanitize(s.SlackMW)
		capMW := s.PowerCapMW - slack
		if math.IsNaN(capMW) || b > capMW {
			continue // cannot even idle under the cap
		}
		capLam := maxLam
		if a > 0 {
			capLam = math.Min(capLam, (capMW-b)/a)
		}
		if capLam <= 0 {
			continue
		}
		out = append(out, &siteState{
			idx: i, a: a, b: b,
			demand: sanitize(s.DemandMW),
			capLam: capLam, price: s.Price, slack: slack,
		})
	}
	return out
}

// chunkEnd returns the next allocation level at which site st's marginal
// price changes: the smallest price-boundary crossing above the current
// fill, or the site's capacity limit.
func (st *siteState) chunkEnd() float64 {
	end := st.capLam
	if st.a <= 0 {
		return end
	}
	for _, t := range st.price.Thresholds() {
		// Load t is where the next segment starts; stay slack below it so
		// discretization cannot push the realized draw across.
		p := t - st.demand - st.slack
		lam := (p - st.b) / st.a
		if lam > st.lam+st.eps() && lam < end {
			end = lam
		}
	}
	return end
}

// eps is the site's scale-aware progress floor: workloads run around 1e12
// requests/hour, where absolute tolerances drown in float ULPs.
func (st *siteState) eps() float64 { return 1e-9 * (1 + st.capLam) }

// costAt is the predicted bill of site st when loaded to lam, priced at the
// step rate that load level actually lands in.
func (st *siteState) costAt(lam float64) float64 {
	if lam <= 0 {
		return 0
	}
	p := st.a*lam + st.b
	return st.price.Eval(st.demand+p) * p
}

// servePhase admits up to amount requests/hour across the sites, cheapest
// chunk first, keeping the total predicted cost within budget. It mutates
// the states in place; premium calls it with an infinite budget.
func servePhase(states []*siteState, amount, budget float64) {
	remaining := amount
	if math.IsNaN(remaining) || remaining <= 0 {
		return
	}
	floor := 1e-9 * (1 + amount)
	totalCost := 0.0
	for _, st := range states {
		totalCost += st.cost
	}
	for remaining > floor {
		// Pick the cheapest next chunk across all sites.
		var best *siteState
		bestEnd, bestUnit := 0.0, math.Inf(1)
		for _, st := range states {
			if st.lam >= st.capLam-st.eps() {
				continue
			}
			end := st.chunkEnd()
			if end <= st.lam+st.eps() {
				continue
			}
			unit := (st.costAt(end) - st.cost) / (end - st.lam)
			if unit < bestUnit {
				best, bestEnd, bestUnit = st, end, unit
			}
		}
		if best == nil {
			return // fleet exhausted
		}
		delta := math.Min(remaining, bestEnd-best.lam)
		// Within the chunk the rate is constant, so cost is affine in the
		// allocation: trim delta to what the budget still affords (the
		// chunk's entry jump — a price-segment crossing or turning the site
		// on — is paid in full or not at all).
		if !math.IsInf(budget, 1) {
			mid := best.lam + delta/2
			rate := best.price.Eval(best.demand + best.a*mid + best.b)
			afford := func(d float64) float64 {
				return totalCost - best.cost + rate*(best.a*(best.lam+d)+best.b)
			}
			if afford(delta) > budget+1e-9 {
				if best.a <= 0 || rate <= 0 {
					return // the jump alone busts the budget
				}
				d := (budget - (totalCost - best.cost) - rate*best.b) / (rate * best.a)
				d -= best.lam
				if d <= best.eps() {
					return // cheapest chunk is unaffordable; pricier ones are too
				}
				delta = math.Min(delta, d)
			}
		}
		newLam := best.lam + delta
		newCost := best.costAt(newLam)
		if !math.IsInf(budget, 1) && totalCost-best.cost+newCost > budget+1e-9*(1+budget) {
			// The constant-rate estimate under-priced a segment crossing
			// inside the discretization backoff window; drop the move and
			// stop rather than overrun the budget.
			return
		}
		totalCost += newCost - best.cost
		best.lam, best.cost = newLam, newCost
		remaining -= delta
	}
}

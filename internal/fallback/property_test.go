package fallback

import (
	"math"
	"math/rand"
	"testing"

	"billcap/internal/piecewise"
)

// randomFleet builds a fleet with realistic-but-randomized physics: a few
// sites around 100 MW caps serving ~1e11–1e12 req/h, step policies with
// 2–6 segments, and a sprinkle of outages.
func randomFleet(rng *rand.Rand) []Site {
	n := 1 + rng.Intn(6)
	sites := make([]Site, n)
	for i := range sites {
		segs := 2 + rng.Intn(5)
		thresholds := make([]float64, segs-1)
		lo := 50 + rng.Float64()*150
		for k := range thresholds {
			lo += 30 + rng.Float64()*200
			thresholds[k] = lo
		}
		rates := make([]float64, segs)
		r := 5 + rng.Float64()*10
		for k := range rates {
			rates[k] = r
			// Mostly increasing, occasionally dipping: the dispatcher must
			// not assume monotone prices.
			r += -2 + rng.Float64()*12
			if r < 1 {
				r = 1
			}
		}
		sites[i] = Site{
			Name:        "s",
			MaxLambda:   1e11 + rng.Float64()*9e11,
			MWPerLambda: 5e-11 + rng.Float64()*3e-10,
			IdleMW:      2 + rng.Float64()*40,
			PowerCapMW:  40 + rng.Float64()*160,
			SlackMW:     rng.Float64() * 2,
			DemandMW:    rng.Float64() * 500,
			Price:       piecewise.MustNew(thresholds, rates),
			Down:        rng.Intn(5) == 0,
		}
	}
	return sites
}

// TestDispatchProperties is the fallback's safety contract: for randomized
// fleets and hours, the greedy plan always (1) stays within every site's
// power cap (minus the discretization slack), (2) respects the SLA
// admission limit per site, (3) serves premium before ordinary traffic, and
// (4) only admits ordinary traffic while the predicted bill fits the budget.
func TestDispatchProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(20260805))
	for trial := 0; trial < 500; trial++ {
		sites := randomFleet(rng)
		capacity := 0.0
		for _, s := range sites {
			if !s.Down {
				capacity += s.MaxLambda
			}
		}
		total := rng.Float64() * 2 * (capacity + 1)
		in := Input{
			TotalLambda:   total,
			PremiumLambda: rng.Float64() * total * 1.1, // sometimes > total
			BudgetUSD:     math.Inf(1),
		}
		switch rng.Intn(3) {
		case 0:
			in.BudgetUSD = 0
		case 1:
			in.BudgetUSD = rng.Float64() * 5000
		}

		d := Dispatch(sites, in)

		premium := math.Min(math.Max(in.PremiumLambda, 0), total)
		if d.Served > total*(1+1e-9)+1 {
			t.Fatalf("trial %d: served %v > arrivals %v", trial, d.Served, total)
		}
		for i, a := range d.Sites {
			s := sites[i]
			if a.Lambda == 0 {
				continue
			}
			if s.Down {
				t.Fatalf("trial %d: down site %d loaded with %v", trial, i, a.Lambda)
			}
			if a.Lambda > s.MaxLambda*(1+1e-9) {
				t.Fatalf("trial %d: site %d lambda %v exceeds SLA limit %v",
					trial, i, a.Lambda, s.MaxLambda)
			}
			planned := s.MWPerLambda*a.Lambda + s.IdleMW
			if planned > s.PowerCapMW-s.SlackMW+1e-9*(1+s.PowerCapMW) {
				t.Fatalf("trial %d: site %d draw %v MW exceeds cap %v − slack %v",
					trial, i, planned, s.PowerCapMW, s.SlackMW)
			}
		}
		// Premium-first: ordinary traffic is only served once premium is
		// fully admitted (or the fleet ran out of capacity serving it).
		wantPremium := math.Min(premium, d.Served)
		if math.Abs(d.ServedPremium-wantPremium) > 1e-6*(1+wantPremium) {
			t.Fatalf("trial %d: servedPremium %v, want min(premium=%v, served=%v)",
				trial, d.ServedPremium, premium, d.Served)
		}
		// Budget: admitting ordinary traffic never busts the budget
		// (premium alone may, by mandate).
		if !math.IsInf(in.BudgetUSD, 1) && d.ServedOrdinary > 1e-6*(1+total) {
			if d.CostUSD > in.BudgetUSD*(1+1e-9)+1e-6 {
				t.Fatalf("trial %d: cost %v > budget %v with ordinary traffic %v admitted",
					trial, d.CostUSD, in.BudgetUSD, d.ServedOrdinary)
			}
		}
	}
}

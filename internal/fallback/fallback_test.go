package fallback

import (
	"math"
	"reflect"
	"testing"

	"billcap/internal/piecewise"
)

// twoSites is a hand-checkable fleet: a cheap flat-priced site and an
// expensive one, both with the affine model p = 1e-10·λ + 10 MW.
func twoSites() []Site {
	return []Site{
		{
			Name: "cheap", MaxLambda: 5e11, MWPerLambda: 1e-10, IdleMW: 10,
			PowerCapMW: 100, DemandMW: 50, Price: piecewise.Flat(10),
		},
		{
			Name: "dear", MaxLambda: 5e11, MWPerLambda: 1e-10, IdleMW: 10,
			PowerCapMW: 100, DemandMW: 50, Price: piecewise.Flat(30),
		},
	}
}

func TestFillsCheapestSiteFirst(t *testing.T) {
	d := Dispatch(twoSites(), Input{TotalLambda: 4e11, PremiumLambda: 0, BudgetUSD: math.Inf(1)})
	if d.Sites[0].Lambda < 3.99e11 || d.Sites[1].On {
		t.Fatalf("cheap site got %v, dear site on=%v; want all load on the cheap site",
			d.Sites[0].Lambda, d.Sites[1].On)
	}
	if math.Abs(d.Served-4e11) > 1e9*1e-6 {
		t.Errorf("served %v of 4e11", d.Served)
	}
}

func TestOverflowsToSecondSiteAtCap(t *testing.T) {
	// Cap limit per site: (100−10)/1e-10 = 9e11, SLA limit 5e11 → 5e11 each.
	d := Dispatch(twoSites(), Input{TotalLambda: 8e11, BudgetUSD: math.Inf(1)})
	if !d.Sites[0].On || !d.Sites[1].On {
		t.Fatalf("both sites should be on: %+v", d.Sites)
	}
	if d.Sites[0].Lambda > 5e11*(1+1e-9) || d.Sites[1].Lambda > 5e11*(1+1e-9) {
		t.Errorf("SLA limit exceeded: %+v", d.Sites)
	}
	if rel := math.Abs(d.Served-8e11) / 8e11; rel > 1e-6 {
		t.Errorf("served %v of 8e11", d.Served)
	}
}

func TestPremiumServedEvenOnZeroBudget(t *testing.T) {
	d := Dispatch(twoSites(), Input{TotalLambda: 6e11, PremiumLambda: 2e11, BudgetUSD: 0})
	if rel := math.Abs(d.ServedPremium-2e11) / 2e11; rel > 1e-6 {
		t.Fatalf("premium served %v of 2e11 under a zero budget", d.ServedPremium)
	}
	if d.ServedOrdinary > 6e11*1e-9 {
		t.Errorf("ordinary %v admitted despite a zero budget", d.ServedOrdinary)
	}
	if d.CostUSD <= 0 {
		t.Errorf("premium service cannot be free, cost=%v", d.CostUSD)
	}
}

func TestBudgetBoundsOrdinaryAdmission(t *testing.T) {
	uncapped := Dispatch(twoSites(), Input{TotalLambda: 8e11, PremiumLambda: 1e11, BudgetUSD: math.Inf(1)})
	budget := uncapped.CostUSD / 2
	d := Dispatch(twoSites(), Input{TotalLambda: 8e11, PremiumLambda: 1e11, BudgetUSD: budget})
	if d.CostUSD > budget*(1+1e-9)+1e-6 {
		t.Fatalf("cost %v exceeds budget %v", d.CostUSD, budget)
	}
	if d.ServedOrdinary <= 0 {
		t.Errorf("a half budget should still admit some ordinary traffic")
	}
	if d.Served >= uncapped.Served {
		t.Errorf("capped run served %v ≥ uncapped %v", d.Served, uncapped.Served)
	}
}

func TestDownSiteGetsNothing(t *testing.T) {
	sites := twoSites()
	sites[0].Down = true
	d := Dispatch(sites, Input{TotalLambda: 4e11, BudgetUSD: math.Inf(1)})
	if d.Sites[0].On || d.Sites[0].Lambda != 0 {
		t.Fatalf("down site was loaded: %+v", d.Sites[0])
	}
	if !d.Sites[1].On {
		t.Errorf("surviving site should carry the load")
	}
}

func TestStepBoundaryRespected(t *testing.T) {
	// One site whose price jumps at 120 MW regional load. Demand 50, idle
	// 10: the cheap segment ends at 60 MW own draw → λ = 5e11.
	s := []Site{{
		Name: "stepped", MaxLambda: 9e11, MWPerLambda: 1e-10, IdleMW: 10,
		PowerCapMW: 200, DemandMW: 50,
		Price: piecewise.MustNew([]float64{120}, []float64{10, 40}),
	}}
	d := Dispatch(s, Input{TotalLambda: 9e11, BudgetUSD: math.Inf(1)})
	// Uncapped budget: everything is admitted, crossing into the dear
	// segment, and the whole draw is billed at the dear rate.
	if rel := math.Abs(d.Served-9e11) / 9e11; rel > 1e-6 {
		t.Fatalf("served %v of 9e11 with no budget", d.Served)
	}
	if d.Sites[0].PriceUSDPerMWh != 40 {
		t.Errorf("price %v, want the 40 $/MWh segment", d.Sites[0].PriceUSDPerMWh)
	}

	// A budget that only affords the cheap segment keeps the plan below
	// the boundary: 10 $/MWh × 70 MW = 700 $.
	d = Dispatch(s, Input{TotalLambda: 9e11, BudgetUSD: 700})
	if load := d.Sites[0].PowerMW + 50; load > 120 {
		t.Errorf("regional load %v crossed the 120 MW boundary on a cheap-only budget", load)
	}
	if d.Sites[0].PriceUSDPerMWh > 10 {
		t.Errorf("price %v, want the cheap segment", d.Sites[0].PriceUSDPerMWh)
	}
}

func TestCorruptInputsNeverPanic(t *testing.T) {
	nan := math.NaN()
	sites := []Site{
		{Name: "nan", MaxLambda: nan, MWPerLambda: nan, IdleMW: nan,
			PowerCapMW: nan, DemandMW: nan, Price: piecewise.Flat(nan)},
		{Name: "neg", MaxLambda: -5, MWPerLambda: -1, IdleMW: -3,
			PowerCapMW: -10, DemandMW: -50, Price: piecewise.Flat(10)},
		twoSites()[0],
	}
	for _, in := range []Input{
		{TotalLambda: nan, PremiumLambda: nan, BudgetUSD: nan},
		{TotalLambda: math.Inf(1), PremiumLambda: 1e11, BudgetUSD: -4},
		{TotalLambda: 1e11, PremiumLambda: 2e11, BudgetUSD: math.Inf(1)},
	} {
		d := Dispatch(sites, in)
		if len(d.Sites) != len(sites) {
			t.Fatalf("lost site entries: %d for %d sites", len(d.Sites), len(sites))
		}
		for i, a := range d.Sites {
			if math.IsNaN(a.Lambda) || a.Lambda < 0 {
				t.Errorf("input %+v: site %d got lambda %v", in, i, a.Lambda)
			}
		}
	}
}

func TestDispatchIsDeterministic(t *testing.T) {
	in := Input{TotalLambda: 7.3e11, PremiumLambda: 2.9e11, BudgetUSD: 1234}
	a := Dispatch(twoSites(), in)
	b := Dispatch(twoSites(), in)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same input produced different plans:\n%+v\n%+v", a, b)
	}
}

package hierarchy

import (
	"math"
	"strings"
	"testing"

	"billcap/internal/core"
	"billcap/internal/dcmodel"
	"billcap/internal/grid"
	"billcap/internal/pricing"
)

func nineSiteFleet(t *testing.T) ([]*dcmodel.Site, []pricing.Policy, []float64) {
	t.Helper()
	dcs := dcmodel.SyntheticSites(9)
	pols := pricing.Synthetic(9)
	regions, err := grid.SyntheticRegions(9, 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	demand := make([]float64, 9)
	for i := range demand {
		demand[i] = regions[i].At(0)
	}
	return dcs, pols, demand
}

func TestNewValidation(t *testing.T) {
	dcs, pols, _ := nineSiteFleet(t)
	if _, err := New(dcs, pols[:5], []int{3, 3, 3}); err == nil {
		t.Error("policy arity mismatch accepted")
	}
	if _, err := New(dcs, pols, []int{3, 3}); err == nil {
		t.Error("wrong group-size sum accepted")
	}
	if _, err := New(dcs, pols, []int{3, 0, 6}); err == nil {
		t.Error("zero group size accepted")
	} else if !strings.Contains(err.Error(), "group 1") {
		t.Errorf("zero-size error %q does not name the offending group", err)
	}
	if _, err := New(dcs, pols, []int{3, -3, 9}); err == nil {
		t.Error("negative group size accepted")
	}
	// A coordinator with no sites or no groups has nothing to decide over;
	// both used to slip through (nil/nil trivially satisfied the sum check).
	if _, err := New(nil, nil, nil); err == nil {
		t.Error("empty fleet accepted")
	}
	if _, err := New(dcs, pols, nil); err == nil {
		t.Error("empty group list accepted")
	}
	c, err := New(dcs, pols, []int{3, 3, 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Groups) != 3 || c.Capacity() <= 0 {
		t.Fatalf("groups=%d capacity=%v", len(c.Groups), c.Capacity())
	}
}

func TestHierarchicalServesEverythingUncapped(t *testing.T) {
	dcs, pols, demand := nineSiteFleet(t)
	c, err := New(dcs, pols, []int{3, 3, 3})
	if err != nil {
		t.Fatal(err)
	}
	lam := 0.6 * c.Capacity()
	d, err := c.DecideHour(core.HourInput{
		TotalLambda:   lam,
		PremiumLambda: 0.8 * lam,
		DemandMW:      demand,
		BudgetUSD:     math.Inf(1),
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d.Served-lam) > 1e-6*lam {
		t.Errorf("served %v of %v", d.Served, lam)
	}
	if math.Abs(d.ServedPremium-0.8*lam) > 1e-6*lam {
		t.Errorf("premium served %v of %v", d.ServedPremium, 0.8*lam)
	}
	total := 0.0
	for _, l := range d.Lambdas {
		total += l
	}
	if math.Abs(total-lam) > 1e-6*lam {
		t.Errorf("site lambdas sum %v, want %v", total, lam)
	}
}

func TestHierarchicalCloseToCentralized(t *testing.T) {
	// The two-level split must land within a few percent of the centralized
	// optimum on predicted cost.
	dcs, pols, demand := nineSiteFleet(t)
	c, err := New(dcs, pols, []int{3, 3, 3})
	if err != nil {
		t.Fatal(err)
	}
	central, err := core.NewSystem(dcs, pols, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, frac := range []float64{0.3, 0.6, 0.85} {
		lam := frac * c.Capacity()
		in := core.HourInput{TotalLambda: lam, PremiumLambda: 0, DemandMW: demand, BudgetUSD: math.Inf(1)}
		hd, err := c.DecideHour(in)
		if err != nil {
			t.Fatalf("frac %v: %v", frac, err)
		}
		cd, err := central.DecideHour(in)
		if err != nil {
			t.Fatalf("frac %v central: %v", frac, err)
		}
		if hd.PredictedCostUSD < cd.PredictedCostUSD*(1-1e-6) {
			t.Errorf("frac %v: hierarchical %v below centralized optimum %v (impossible)",
				frac, hd.PredictedCostUSD, cd.PredictedCostUSD)
		}
		gap := (hd.PredictedCostUSD - cd.PredictedCostUSD) / cd.PredictedCostUSD
		if gap > 0.10 {
			t.Errorf("frac %v: hierarchical gap %.1f%% over centralized", frac, 100*gap)
		}
	}
}

func TestHierarchicalBudgetSplit(t *testing.T) {
	dcs, pols, demand := nineSiteFleet(t)
	c, err := New(dcs, pols, []int{3, 3, 3})
	if err != nil {
		t.Fatal(err)
	}
	lam := 0.7 * c.Capacity()
	// Find the uncapped cost, then halve it as a binding budget.
	un, err := c.DecideHour(core.HourInput{TotalLambda: lam, PremiumLambda: 0.5 * lam, DemandMW: demand, BudgetUSD: math.Inf(1)})
	if err != nil {
		t.Fatal(err)
	}
	budget := un.PredictedCostUSD * 0.7
	d, err := c.DecideHour(core.HourInput{TotalLambda: lam, PremiumLambda: 0.5 * lam, DemandMW: demand, BudgetUSD: budget})
	if err != nil {
		t.Fatal(err)
	}
	// Group budgets sum to the hour's budget.
	sum := 0.0
	for _, b := range d.GroupBudget {
		sum += b
	}
	if math.Abs(sum-budget) > 1e-6*budget {
		t.Errorf("group budgets sum %v, want %v", sum, budget)
	}
	// Premium is preserved; ordinary is throttled.
	if d.ServedPremium < 0.5*lam*(1-1e-6) {
		t.Errorf("premium served %v of %v", d.ServedPremium, 0.5*lam)
	}
	if d.Served >= lam*(1-1e-9) {
		t.Errorf("budget %v did not throttle anything (served %v of %v)", budget, d.Served, lam)
	}
	if d.PredictedCostUSD > budget*1.05 {
		t.Errorf("predicted cost %v far above budget %v", d.PredictedCostUSD, budget)
	}
}

func TestHierarchicalOverCapacityClamps(t *testing.T) {
	dcs, pols, demand := nineSiteFleet(t)
	c, err := New(dcs, pols, []int{4, 5})
	if err != nil {
		t.Fatal(err)
	}
	lam := 1.5 * c.Capacity()
	d, err := c.DecideHour(core.HourInput{TotalLambda: lam, PremiumLambda: 0, DemandMW: demand, BudgetUSD: math.Inf(1)})
	if err != nil {
		t.Fatal(err)
	}
	if d.Served > c.Capacity()*(1+1e-9) {
		t.Errorf("served %v beyond capacity %v", d.Served, c.Capacity())
	}
	if d.Served < 0.9*c.Capacity() {
		t.Errorf("served %v, want close to capacity %v", d.Served, c.Capacity())
	}
}

func TestDemandArity(t *testing.T) {
	dcs, pols, _ := nineSiteFleet(t)
	c, err := New(dcs, pols, []int{3, 3, 3})
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.DecideHour(core.HourInput{TotalLambda: 1, DemandMW: []float64{1, 2}, BudgetUSD: 1})
	if err == nil {
		t.Error("demand arity mismatch accepted")
	}
}

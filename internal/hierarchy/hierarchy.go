// Package hierarchy implements the two-level bill-capping architecture the
// paper leaves as future work (§IX): the centralized capper "may not have
// good scalability ... Extending the electricity bill capping architecture
// to work in a hierarchical way is our future work."
//
// The fleet is partitioned into groups (e.g. per continent). Every hour a
// lightweight coordinator
//
//  1. samples each group's cost-vs-load curve by solving the group's Step-1
//     MILP at a few load levels,
//  2. splits the hour's workload across groups by greedy marginal cost on
//     the sampled curves, and
//  3. splits the hourly budget across groups in proportion to their
//     estimated cost shares;
//
// then each group's local capper runs the full two-step algorithm on its
// own (small) MILPs. Decision quality approaches the centralized optimum
// while per-hour MILP size stays bounded by the largest group.
package hierarchy

import (
	"fmt"
	"math"
	"sort"

	"billcap/internal/core"
	"billcap/internal/dcmodel"
	"billcap/internal/pricing"
)

// Group is one independently capped subset of the fleet.
type Group struct {
	Name string
	// SiteIdx are the indices of this group's sites in the global site
	// order (and thus in HourInput.DemandMW).
	SiteIdx []int

	sys      *core.System
	capacity float64
}

// System exposes the group's optimizer.
func (g *Group) System() *core.System { return g.sys }

// Coordinator is the top-level splitter plus the per-group cappers.
type Coordinator struct {
	Groups []*Group
	// SamplePoints is the number of load levels used to sample each
	// group's cost curve (≥ 2; default 5).
	SamplePoints int
	// Chunks is the granularity of the greedy workload split (default 24).
	Chunks int

	numSites int
}

// New partitions the sites into groups of the given sizes (in order) and
// builds one capper per group. Sizes must sum to len(dcs).
func New(dcs []*dcmodel.Site, policies []pricing.Policy, groupSizes []int) (*Coordinator, error) {
	if len(dcs) == 0 {
		return nil, fmt.Errorf("hierarchy: no sites")
	}
	if len(dcs) != len(policies) {
		return nil, fmt.Errorf("hierarchy: %d sites but %d policies", len(dcs), len(policies))
	}
	if len(groupSizes) == 0 {
		return nil, fmt.Errorf("hierarchy: no groups for %d sites", len(dcs))
	}
	total := 0
	for gi, s := range groupSizes {
		if s <= 0 {
			return nil, fmt.Errorf("hierarchy: group %d has size %d, want positive", gi, s)
		}
		total += s
	}
	if total != len(dcs) {
		return nil, fmt.Errorf("hierarchy: %d group sizes sum to %d, have %d sites",
			len(groupSizes), total, len(dcs))
	}
	c := &Coordinator{SamplePoints: 5, Chunks: 24, numSites: len(dcs)}
	at := 0
	for gi, size := range groupSizes {
		idx := make([]int, size)
		for k := range idx {
			idx[k] = at + k
		}
		sys, err := core.NewSystem(dcs[at:at+size], policies[at:at+size], core.Options{})
		if err != nil {
			return nil, err
		}
		c.Groups = append(c.Groups, &Group{
			Name:     fmt.Sprintf("group%d", gi),
			SiteIdx:  idx,
			sys:      sys,
			capacity: sys.MaxThroughput(),
		})
		at += size
	}
	return c, nil
}

// Capacity is the fleet capacity across all groups.
func (c *Coordinator) Capacity() float64 {
	t := 0.0
	for _, g := range c.Groups {
		t += g.capacity
	}
	return t
}

// Decision is the hierarchical outcome of one hour.
type Decision struct {
	// Lambdas is the per-site allocation in global site order.
	Lambdas []float64
	// GroupLambda and GroupBudget record the coordinator's split.
	GroupLambda, GroupBudget []float64
	// PredictedCostUSD sums the groups' predictions.
	PredictedCostUSD float64
	// Served splits as in the flat capper.
	Served, ServedPremium, ServedOrdinary float64
	// Solver aggregates the groups' MILP effort.
	Solver core.SolverStats
}

// costCurve is a sampled piecewise-linear cost-vs-load curve.
type costCurve struct {
	loads, costs []float64
}

// at interpolates the curve (linear between samples, +Inf past capacity).
func (cc costCurve) at(x float64) float64 {
	n := len(cc.loads)
	if x <= cc.loads[0] {
		return cc.costs[0]
	}
	if x > cc.loads[n-1]+1e-9 {
		return math.Inf(1)
	}
	i := sort.SearchFloat64s(cc.loads, x)
	if i >= n {
		return cc.costs[n-1]
	}
	lo, hi := cc.loads[i-1], cc.loads[i]
	if hi == lo {
		return cc.costs[i]
	}
	f := (x - lo) / (hi - lo)
	return cc.costs[i-1] + f*(cc.costs[i]-cc.costs[i-1])
}

// groupDemand extracts a group's demand slice from the global vector.
func (g *Group) groupDemand(all []float64) []float64 {
	out := make([]float64, len(g.SiteIdx))
	for k, i := range g.SiteIdx {
		out[k] = all[i]
	}
	return out
}

// DecideHour runs the full two-level decision.
func (c *Coordinator) DecideHour(in core.HourInput) (Decision, error) {
	if len(in.DemandMW) != c.numSites {
		return Decision{}, fmt.Errorf("hierarchy: %d demand entries for %d sites", len(in.DemandMW), c.numSites)
	}
	var stats core.SolverStats

	// 1. Sample every group's cost curve.
	curves := make([]costCurve, len(c.Groups))
	for gi, g := range c.Groups {
		samples := c.SamplePoints
		if samples < 2 {
			samples = 5
		}
		gin := in
		gin.DemandMW = g.groupDemand(in.DemandMW)
		gin.PremiumLambda = 0
		gin.BudgetUSD = math.Inf(1)
		cc := costCurve{}
		for s := 0; s < samples; s++ {
			load := g.capacity * float64(s) / float64(samples-1)
			d, err := g.sys.MinimizeCost(gin, load, &stats)
			if err != nil {
				return Decision{}, fmt.Errorf("hierarchy: sampling %s at %v: %w", g.Name, load, err)
			}
			cc.loads = append(cc.loads, load)
			cc.costs = append(cc.costs, d.PredictedCostUSD)
		}
		curves[gi] = cc
	}

	// 2. Greedy marginal-cost split of the workload.
	groupLambda := make([]float64, len(c.Groups))
	chunks := c.Chunks
	if chunks < 1 {
		chunks = 24
	}
	remaining := math.Min(in.TotalLambda, c.Capacity())
	chunk := remaining / float64(chunks)
	for k := 0; k < chunks && chunk > 0; k++ {
		best, bestCost := -1, math.Inf(1)
		for gi, g := range c.Groups {
			if groupLambda[gi]+chunk > g.capacity*(1+1e-12) {
				continue
			}
			marginal := curves[gi].at(groupLambda[gi]+chunk) - curves[gi].at(groupLambda[gi])
			if marginal < bestCost {
				bestCost = marginal
				best = gi
			}
		}
		if best < 0 {
			break
		}
		groupLambda[best] += chunk
	}

	// 3. Split the budget by estimated cost share and run the local cappers.
	estTotal := 0.0
	est := make([]float64, len(c.Groups))
	for gi := range c.Groups {
		est[gi] = curves[gi].at(groupLambda[gi])
		estTotal += est[gi]
	}
	dec := Decision{
		Lambdas:     make([]float64, c.numSites),
		GroupLambda: groupLambda,
		GroupBudget: make([]float64, len(c.Groups)),
	}
	assigned := 0.0
	for _, l := range groupLambda {
		assigned += l
	}
	for gi, g := range c.Groups {
		gin := in
		gin.DemandMW = g.groupDemand(in.DemandMW)
		gin.TotalLambda = groupLambda[gi]
		// Premium traffic follows the workload split proportionally.
		gin.PremiumLambda = 0
		if assigned > 0 {
			gin.PremiumLambda = math.Min(groupLambda[gi],
				in.PremiumLambda*groupLambda[gi]/assigned)
		}
		if math.IsInf(in.BudgetUSD, 1) || estTotal <= 0 {
			dec.GroupBudget[gi] = in.BudgetUSD
		} else {
			dec.GroupBudget[gi] = in.BudgetUSD * est[gi] / estTotal
		}
		gin.BudgetUSD = dec.GroupBudget[gi]
		gd, err := g.sys.DecideHour(gin)
		if err != nil {
			return Decision{}, fmt.Errorf("hierarchy: group %s: %w", g.Name, err)
		}
		for k, i := range g.SiteIdx {
			dec.Lambdas[i] = gd.Sites[k].Lambda
		}
		dec.PredictedCostUSD += gd.PredictedCostUSD
		dec.Served += gd.Served
		dec.ServedPremium += gd.ServedPremium
		dec.ServedOrdinary += gd.ServedOrdinary
		stats.Accumulate(gd.Solver)
	}
	dec.Solver = stats
	return dec, nil
}

// Package experiments regenerates every table and figure of the paper's
// evaluation (§VII) on the reproduction's scenario, as plain-text tables and
// named hourly series. The cmd/capsim tool renders them; the repository's
// benchmarks time them; EXPERIMENTS.md records them against the paper.
package experiments

import (
	"encoding/csv"
	"fmt"
	"strings"

	"billcap/internal/timeseries"
)

// Table is a rendered experiment result.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Render formats the table with aligned columns.
func (t Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// RenderMarkdown formats the table as GitHub-flavored markdown (the format
// EXPERIMENTS.md uses).
func (t Table) RenderMarkdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "## %s\n\n", t.Title)
	writeRow := func(cells []string) {
		b.WriteString("|")
		for _, c := range cells {
			b.WriteString(" ")
			b.WriteString(strings.ReplaceAll(c, "|", "\\|"))
			b.WriteString(" |")
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	b.WriteString("|")
	for range t.Header {
		b.WriteString("---|")
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "\n*%s*\n", n)
	}
	return b.String()
}

// RenderCSV formats the table as CSV (header row first; notes omitted).
func (t Table) RenderCSV() string {
	var b strings.Builder
	w := csv.NewWriter(&b)
	_ = w.Write(t.Header)
	for _, row := range t.Rows {
		_ = w.Write(row)
	}
	w.Flush()
	return b.String()
}

// Result bundles a table with the hourly series behind the paper's plots.
type Result struct {
	Table  Table
	Series map[string]timeseries.Series
}

// Render formats the table part.
func (r Result) Render() string { return r.Table.Render() }

func usd(v float64) string  { return fmt.Sprintf("$%.0f", v) }
func pct(v float64) string  { return fmt.Sprintf("%.1f%%", 100*v) }
func rate(v float64) string { return fmt.Sprintf("%.4f", v) }

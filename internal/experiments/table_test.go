package experiments

import (
	"strings"
	"testing"
)

func sampleTable() Table {
	return Table{
		Title:  "Sample",
		Header: []string{"name", "value"},
		Rows: [][]string{
			{"alpha", "1"},
			{"beta|gamma", "2"},
		},
		Notes: []string{"a note"},
	}
}

func TestRenderText(t *testing.T) {
	out := sampleTable().Render()
	for _, want := range []string{"== Sample ==", "name", "alpha", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Errorf("text output missing %q:\n%s", want, out)
		}
	}
	// Columns aligned: the separator line matches the widest cell.
	if !strings.Contains(out, "----------") {
		t.Errorf("missing separator:\n%s", out)
	}
}

func TestRenderMarkdown(t *testing.T) {
	out := sampleTable().RenderMarkdown()
	for _, want := range []string{"## Sample", "| name | value |", "|---|---|", "*a note*"} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown missing %q:\n%s", want, out)
		}
	}
	// Pipes inside cells must be escaped.
	if !strings.Contains(out, `beta\|gamma`) {
		t.Errorf("unescaped pipe:\n%s", out)
	}
}

func TestRenderCSV(t *testing.T) {
	out := sampleTable().RenderCSV()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if lines[0] != "name,value" {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.Contains(lines[2], "beta|gamma") {
		t.Errorf("row 2 = %q", lines[2])
	}
}

func TestFig1Shapes(t *testing.T) {
	r := Fig1()
	if len(r.Table.Rows) != 15 {
		t.Errorf("Fig1 rows = %d, want 15 (3 regions × 5 segments)", len(r.Table.Rows))
	}
	if len(r.Table.Header) != 4 {
		t.Errorf("Fig1 header = %v", r.Table.Header)
	}
}

func TestFig1DerivedLandmarks(t *testing.T) {
	r, err := Fig1Derived()
	if err != nil {
		t.Fatal(err)
	}
	// The paper's two landmark steps must appear in the derived table.
	joined := r.Render()
	for _, want := range []string{"605", "715", "10.00"} {
		if !strings.Contains(joined, want) {
			t.Errorf("derived Fig. 1 missing landmark %q:\n%s", want, joined)
		}
	}
}

func TestSolverExperimentShape(t *testing.T) {
	r, err := Solver([]int{3})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Table.Rows) != 1 {
		t.Fatalf("rows = %d", len(r.Table.Rows))
	}
	if r.Table.Rows[0][0] != "3" || r.Table.Rows[0][1] != "5" {
		t.Errorf("row = %v", r.Table.Rows[0])
	}
}

func TestWeeklyExperimentsQuick(t *testing.T) {
	// One-week smoke run of every weekly experiment; detailed assertions
	// live in the sim integration tests.
	for name, f := range map[string]func(int) (Result, error){
		"fig3": Fig3, "fig56": Fig56, "fig78": Fig78, "fig9": Fig9,
		"robustness": Robustness, "ablation": Ablation, "baselines": Baselines,
		"battery": Battery,
	} {
		r, err := f(1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(r.Table.Rows) == 0 {
			t.Errorf("%s: empty table", name)
		}
	}
}

func TestHeavierExperimentsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run experiments")
	}
	for name, f := range map[string]func(int) (Result, error){
		"fig4": Fig4, "fig10": Fig10, "flashcrowd": FlashCrowd,
	} {
		r, err := f(1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(r.Table.Rows) == 0 {
			t.Errorf("%s: empty", name)
		}
	}
	for name, f := range map[string]func() (Result, error){
		"hetero": Hetero, "hierarchy": Hierarchy,
	} {
		r, err := f()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(r.Table.Rows) == 0 {
			t.Errorf("%s: empty", name)
		}
	}
}

package experiments

import (
	"fmt"
	"math"
	"time"

	"billcap/internal/baseline"
	"billcap/internal/battery"
	"billcap/internal/core"
	"billcap/internal/dcmodel"
	"billcap/internal/grid"
	"billcap/internal/hetero"
	"billcap/internal/hierarchy"
	"billcap/internal/powergrid"
	"billcap/internal/pricing"
	"billcap/internal/sim"
	"billcap/internal/timeseries"
	"billcap/internal/workload"
)

// scenario builds the canonical setup, truncated to the requested number of
// month weeks (≤ 0 or ≥ 4 → the full four-week month). Budgets are scaled
// pro rata when the month is truncated so "tight" stays tight.
func scenario(variant pricing.PolicyVariant, monthlyBudget float64, weeks int) (sim.Config, float64, error) {
	if weeks <= 0 || weeks > 4 {
		weeks = 4
	}
	scaled := monthlyBudget
	if !math.IsInf(monthlyBudget, 1) {
		scaled = monthlyBudget * float64(weeks) / 4
	}
	cfg, err := sim.ShortScenario(variant, scaled, weeks)
	return cfg, scaled, err
}

func strategies(cfg sim.Config) (*sim.CostCapping, *baseline.MinOnly, *baseline.MinOnly, error) {
	cc, err := sim.NewCostCapping(cfg.DCs, cfg.Policies)
	if err != nil {
		return nil, nil, nil, err
	}
	avg, err := baseline.New(cfg.DCs, cfg.Policies, baseline.Avg)
	if err != nil {
		return nil, nil, nil, err
	}
	low, err := baseline.New(cfg.DCs, cfg.Policies, baseline.Low)
	if err != nil {
		return nil, nil, nil, err
	}
	return cc, avg, low, nil
}

// Fig1 reproduces the paper's Figure 1: the locational step pricing
// policies of the three regions.
func Fig1() Result {
	t := Table{
		Title:  "Fig. 1 — Locational pricing policies (Policy 1, $/MWh vs regional load)",
		Header: []string{"region", "segment", "load range (MW)", "price ($/MWh)"},
	}
	for _, p := range pricing.PaperPolicies(pricing.Policy1) {
		for k := 0; k < p.Fn.NumSegments(); k++ {
			lo, hi := p.Fn.SegmentBounds(k)
			hiStr := "inf"
			if !math.IsInf(hi, 1) {
				hiStr = fmt.Sprintf("%.0f", hi)
			}
			t.Rows = append(t.Rows, []string{
				p.Location,
				fmt.Sprintf("%d", k+1),
				fmt.Sprintf("[%.0f, %s)", lo, hiStr),
				fmt.Sprintf("%.2f", p.Fn.Rates()[k]),
			})
		}
	}
	t.Notes = append(t.Notes,
		"location B uses the paper's quoted rates; C and D are reconstructions (see DESIGN.md)")
	return Result{Table: t}
}

// Fig1Derived re-derives Figure 1 from first principles: a DC optimal
// power flow over the PJM five-bus system, swept over the system load, with
// each consumer bus's LMP trace compressed into a step policy. The paper
// (§II) quotes two landmarks from this derivation — a step at 600 MW when
// Brighton hits its capacity and another at ≈712 MW when the Brighton–
// Sundance line binds — both of which must fall out of the sweep.
func Fig1Derived() (Result, error) {
	s := powergrid.PJM5Bus()
	shares := []float64{0, 1.0 / 3, 1.0 / 3, 1.0 / 3, 0}
	fns, err := powergrid.DeriveStepPolicies(s, shares, powergrid.ConsumerBuses(), 1600, 5)
	if err != nil {
		return Result{}, err
	}
	names := []string{"B", "C", "D"}
	t := Table{
		Title:  "Fig. 1 (derived) — LMP step policies from the five-bus DC-OPF",
		Header: []string{"bus", "segment", "system load from (MW)", "LMP ($/MWh)"},
	}
	for ci, fn := range fns {
		thr := append([]float64{0}, fn.Thresholds()...)
		for k, rate := range fn.Rates() {
			t.Rows = append(t.Rows, []string{
				names[ci], fmt.Sprintf("%d", k+1),
				fmt.Sprintf("%.0f", thr[k]), fmt.Sprintf("%.2f", rate),
			})
		}
	}
	t.Notes = append(t.Notes,
		"paper landmarks: step at 600 MW (Brighton at capacity) and ≈712 MW (Brighton–Sundance line limit); the sweep reproduces both (605 and 715 MW at 5 MW resolution)",
		"the evaluation scenario uses the calibrated per-region policies of internal/pricing; this derivation shows where such curves come from")
	return Result{Table: t}, nil
}

// Fig3 reproduces Figure 3: hourly electricity cost of Cost Capping vs the
// Min-Only baselines over the evaluated month, uncapped.
func Fig3(weeks int) (Result, error) {
	cfg, _, err := scenario(pricing.Policy1, sim.Uncapped(), weeks)
	if err != nil {
		return Result{}, err
	}
	cc, avg, low, err := strategies(cfg)
	if err != nil {
		return Result{}, err
	}
	series := map[string]timeseries.Series{}
	t := Table{
		Title:  "Fig. 3 — Hourly/monthly electricity cost, Cost Capping vs Min-Only (uncapped)",
		Header: []string{"strategy", "monthly bill", "mean hourly", "max hourly", "savings vs strategy"},
	}
	results, err := sim.RunAll(cfg, cc, avg, low)
	if err != nil {
		return Result{}, err
	}
	ccBill := results[0].TotalBillUSD()
	for i, res := range results {
		bills := res.HourlyBills()
		series[res.Strategy] = bills
		saving := "—"
		if i > 0 {
			saving = pct((res.TotalBillUSD() - ccBill) / res.TotalBillUSD())
		}
		t.Rows = append(t.Rows, []string{
			res.Strategy, usd(res.TotalBillUSD()), usd(bills.Mean()), usd(bills.Max()), saving,
		})
	}
	t.Notes = append(t.Notes, "paper reports 17.9% (Avg) and 33.5% (Low) savings; shape (CC < Avg < Low) is the target")
	return Result{Table: t, Series: series}, nil
}

// Fig4 reproduces Figure 4: monthly bills under Pricing Policies 0–3.
func Fig4(weeks int) (Result, error) {
	t := Table{
		Title:  "Fig. 4 — Monthly electricity bill under Pricing Policies 0–3",
		Header: []string{"policy", "Cost Capping", "Min-Only (Avg)", "Min-Only (Low)"},
	}
	for _, v := range []pricing.PolicyVariant{pricing.Policy0, pricing.Policy1, pricing.Policy2, pricing.Policy3} {
		cfg, _, err := scenario(v, sim.Uncapped(), weeks)
		if err != nil {
			return Result{}, err
		}
		cc, avg, low, err := strategies(cfg)
		if err != nil {
			return Result{}, err
		}
		row := []string{v.String()}
		results, err := sim.RunAll(cfg, cc, avg, low)
		if err != nil {
			return Result{}, err
		}
		for _, res := range results {
			row = append(row, usd(res.TotalBillUSD()))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"under Policy 0 (price takers) all strategies should be close; the gap widens with steeper policies")
	return Result{Table: t}, nil
}

// budgetFigure runs Cost Capping under a budget and reports the
// throughput/cost behaviour of Figures 5+6 (abundant) or 7+8 (tight).
func budgetFigure(title string, budget float64, weeks int) (Result, error) {
	cfg, scaled, err := scenario(pricing.Policy1, budget, weeks)
	if err != nil {
		return Result{}, err
	}
	cc, err := sim.NewCostCapping(cfg.DCs, cfg.Policies)
	if err != nil {
		return Result{}, err
	}
	res, err := sim.Run(cfg, cc)
	if err != nil {
		return Result{}, err
	}
	series := map[string]timeseries.Series{
		"hourly bill":   res.HourlyBills(),
		"hourly budget": res.HourlyBudgets(),
	}
	arrP := make(timeseries.Series, len(res.Hours))
	arrO := make(timeseries.Series, len(res.Hours))
	srvP := make(timeseries.Series, len(res.Hours))
	srvO := make(timeseries.Series, len(res.Hours))
	for i, h := range res.Hours {
		arrP[i], arrO[i], srvP[i], srvO[i] = h.ArrivedPremium, h.ArrivedOrdinary, h.ServedPremium, h.ServedOrdinary
	}
	series["premium arrivals"] = arrP
	series["ordinary arrivals"] = arrO
	series["premium throughput"] = srvP
	series["ordinary throughput"] = srvO

	zeroOrdinaryHours := 0
	for _, h := range res.Hours {
		if h.ArrivedOrdinary > 0 && h.ServedOrdinary < 1e-6*h.ArrivedOrdinary {
			zeroOrdinaryHours++
		}
	}
	t := Table{
		Title:  title,
		Header: []string{"metric", "value"},
		Rows: [][]string{
			{"monthly budget", usd(scaled)},
			{"monthly bill", usd(res.TotalBillUSD())},
			{"budget utilization", pct(res.BudgetUtilization())},
			{"premium service rate", rate(res.PremiumServiceRate())},
			{"ordinary service rate", rate(res.OrdinaryServiceRate())},
			{"hours violating hourly budget", fmt.Sprintf("%d", res.BudgetViolationHours)},
			{"hours with zero ordinary service", fmt.Sprintf("%d", zeroOrdinaryHours)},
			{"hours by step", fmt.Sprintf("%v", res.StepCounts)},
		},
	}
	return Result{Table: t, Series: series}, nil
}

// Fig56 reproduces Figures 5 and 6: behaviour under the abundant budget.
func Fig56(weeks int) (Result, error) {
	return budgetFigure("Figs. 5+6 — Cost Capping under the abundant budget (paper $2.5M)",
		sim.AbundantBudget(), weeks)
}

// Fig78 reproduces Figures 7 and 8: behaviour under the tight budget.
func Fig78(weeks int) (Result, error) {
	return budgetFigure("Figs. 7+8 — Cost Capping under the tight budget (paper $1.5M)",
		sim.TightBudget(), weeks)
}

// Fig9 reproduces Figure 9: cost and throughput of all strategies under the
// tight budget, normalized as in the paper (cost against the budget,
// throughput against arrivals).
func Fig9(weeks int) (Result, error) {
	cfg, scaled, err := scenario(pricing.Policy1, sim.TightBudget(), weeks)
	if err != nil {
		return Result{}, err
	}
	cc, avg, low, err := strategies(cfg)
	if err != nil {
		return Result{}, err
	}
	t := Table{
		Title:  "Fig. 9 — Cost and throughput under the tight budget (paper $1.5M)",
		Header: []string{"strategy", "bill / budget", "premium throughput", "ordinary throughput", "budget utilization"},
	}
	results, err := sim.RunAll(cfg, cc, avg, low)
	if err != nil {
		return Result{}, err
	}
	for _, res := range results {
		t.Rows = append(t.Rows, []string{
			res.Strategy,
			fmt.Sprintf("%.3f", res.TotalBillUSD()/scaled),
			pct(res.PremiumServiceRate()),
			pct(res.OrdinaryServiceRate()),
			pct(res.BudgetUtilization()),
		})
	}
	t.Notes = append(t.Notes,
		"paper: Min-Only exceeds the budget by 23.3% (Avg) and 39.5% (Low); Cost Capping holds 98.5% utilization with 100% premium and ≈80% ordinary throughput")
	return Result{Table: t}, nil
}

// Fig10 reproduces Figure 10: monthly throughput across the budget sweep.
func Fig10(weeks int) (Result, error) {
	t := Table{
		Title:  "Fig. 10 — Monthly throughput vs monthly budget",
		Header: []string{"budget", "paper analog", "premium served", "ordinary served", "bill", "utilization"},
	}
	analogs := []string{"$0.5M", "$1.0M", "$1.5M", "$2.0M", "$2.5M"}
	for i, b := range sim.PaperBudgets() {
		cfg, scaled, err := scenario(pricing.Policy1, b, weeks)
		if err != nil {
			return Result{}, err
		}
		cc, err := sim.NewCostCapping(cfg.DCs, cfg.Policies)
		if err != nil {
			return Result{}, err
		}
		res, err := sim.Run(cfg, cc)
		if err != nil {
			return Result{}, err
		}
		_ = scaled
		t.Rows = append(t.Rows, []string{
			usd(scaled), analogs[i],
			pct(res.PremiumServiceRate()), pct(res.OrdinaryServiceRate()),
			usd(res.TotalBillUSD()), pct(res.BudgetUtilization()),
		})
	}
	t.Notes = append(t.Notes,
		"premium is always 100%; ordinary throughput grows with the budget and reaches 100% at the largest")
	return Result{Table: t}, nil
}

// Solver reproduces the paper's §IV-C solver-latency claim: per-invocation
// MILP time for systems of up to 13 data centers with 5 price levels each.
func Solver(siteCounts []int) (Result, error) {
	if len(siteCounts) == 0 {
		siteCounts = []int{3, 7, 10, 13}
	}
	t := Table{
		Title:  "§IV-C — Cost-minimization MILP latency vs system size",
		Header: []string{"data centers", "price levels", "mean solve (ms)", "max solve (ms)", "mean B&B nodes"},
	}
	for _, n := range siteCounts {
		dcs := dcmodel.SyntheticSites(n)
		policies := pricing.Synthetic(n)
		regions, err := grid.SyntheticRegions(n, 1, 20050601)
		if err != nil {
			return Result{}, err
		}
		sys, err := core.NewSystem(dcs, policies, core.Options{})
		if err != nil {
			return Result{}, err
		}
		demand := make([]float64, n)
		for i := range demand {
			demand[i] = regions[i].At(0)
		}
		lambda := 0.6 * sys.MaxThroughput()
		const trials = 20
		var total, worst time.Duration
		nodes := 0
		for k := 0; k < trials; k++ {
			in := core.HourInput{
				TotalLambda:   lambda * (0.7 + 0.03*float64(k)),
				PremiumLambda: 0,
				DemandMW:      demand,
				BudgetUSD:     math.Inf(1),
			}
			var st core.SolverStats
			start := time.Now()
			if _, err := sys.MinimizeCost(in, in.TotalLambda, &st); err != nil {
				return Result{}, err
			}
			el := time.Since(start)
			total += el
			if el > worst {
				worst = el
			}
			nodes += st.Nodes
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", n), "5",
			fmt.Sprintf("%.2f", total.Seconds()*1000/trials),
			fmt.Sprintf("%.2f", worst.Seconds()*1000),
			fmt.Sprintf("%d", nodes/trials),
		})
	}
	t.Notes = append(t.Notes, "paper: lp_solve needs at most ~2 ms for 13 data centers and 5 price levels")
	return Result{Table: t}, nil
}

// Robustness sweeps the budgeter's prediction error (paper §IX defers
// "when the workload prediction is inaccurate" to future work): the
// hour-of-week forecast is corrupted with mean-one lognormal error and the
// tight-budget month is replayed.
func Robustness(weeks int) (Result, error) {
	t := Table{
		Title:  "Robustness — Cost Capping under workload-prediction error (tight budget)",
		Header: []string{"prediction error", "premium served", "ordinary served", "bill", "budget utilization", "hourly overruns"},
	}
	for _, relErr := range []float64{0, 0.1, 0.3, 0.5} {
		cfg, _, err := scenario(pricing.Policy1, sim.TightBudget(), weeks)
		if err != nil {
			return Result{}, err
		}
		cfg.PredictionError = relErr
		cfg.PredictionSeed = 42
		cc, err := sim.NewCostCapping(cfg.DCs, cfg.Policies)
		if err != nil {
			return Result{}, err
		}
		res, err := sim.Run(cfg, cc)
		if err != nil {
			return Result{}, err
		}
		t.Rows = append(t.Rows, []string{
			pct(relErr),
			pct(res.PremiumServiceRate()), pct(res.OrdinaryServiceRate()),
			usd(res.TotalBillUSD()), pct(res.BudgetUtilization()),
			fmt.Sprintf("%d", res.BudgetViolationHours),
		})
	}
	t.Notes = append(t.Notes,
		"premium QoS and the monthly cap must hold even with badly wrong forecasts; only ordinary admission degrades")
	return Result{Table: t}, nil
}

// Hetero exercises the heterogeneous-fleet extension (paper §IX): each site
// mixes the three paper server generations and the optimizer dispatches per
// class. Compares the class-aware MILP against a capacity-proportional
// dispatch at several load levels, both billed by the true market.
func Hetero() (Result, error) {
	n, err := hetero.NewNetwork(hetero.PaperHeteroSites(), pricing.PaperPolicies(pricing.Policy1))
	if err != nil {
		return Result{}, err
	}
	demand := []float64{170, 190, 150}
	t := Table{
		Title:  "Extension — heterogeneous fleets (per-class dispatch vs proportional)",
		Header: []string{"load (fleet fraction)", "class-aware bill/h", "proportional bill/h", "saving"},
	}
	cap := n.MaxThroughput()
	for _, frac := range []float64{0.3, 0.5, 0.7, 0.9} {
		lam := frac * cap
		a, err := n.MinimizeCost(lam, demand)
		if err != nil {
			return Result{}, err
		}
		opt, err := n.Realize(a.LambdaBySite, demand)
		if err != nil {
			return Result{}, err
		}
		naive := make([]float64, len(n.Sites))
		for i := range naive {
			st := n.Sites[i]
			siteMax, err := st.MaxLambda()
			if err != nil {
				return Result{}, err
			}
			naive[i] = lam * siteMax / cap
		}
		nv, err := n.Realize(naive, demand)
		if err != nil {
			return Result{}, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.0f%%", 100*frac),
			usd(opt.BillUSD()), usd(nv.BillUSD()),
			pct((nv.BillUSD() - opt.BillUSD()) / nv.BillUSD()),
		})
	}
	t.Notes = append(t.Notes,
		"each site mixes the paper's three server generations; the optimizer fills efficient classes first and steers regional prices")
	return Result{Table: t}, nil
}

// Baselines widens Fig. 3's comparison with the related-work family the
// paper discusses (§VIII): a Le-style two-price time-of-use dispatcher
// (refs [32]-[34]) sits between the fully price-blind Min-Only baselines
// and the LMP-aware Cost Capping.
func Baselines(weeks int) (Result, error) {
	cfg, _, err := scenario(pricing.Policy1, sim.Uncapped(), weeks)
	if err != nil {
		return Result{}, err
	}
	cc, avg, low, err := strategies(cfg)
	if err != nil {
		return Result{}, err
	}
	tou, err := baseline.NewTimeOfUse(cfg.DCs, cfg.Policies)
	if err != nil {
		return Result{}, err
	}
	t := Table{
		Title:  "Extension — baseline family (uncapped month, billed at true LMP)",
		Header: []string{"strategy", "price awareness", "monthly bill", "vs Cost Capping"},
	}
	aware := map[string]string{
		"Cost Capping":    "full step policies (price maker)",
		"TOU (two-price)": "on/off-peak tariffs (time only)",
		"Min-Only (Avg)":  "single average price",
		"Min-Only (Low)":  "single lowest price",
	}
	results, err := sim.RunAll(cfg, cc, tou, avg, low)
	if err != nil {
		return Result{}, err
	}
	ccBill := results[0].TotalBillUSD()
	for i, res := range results {
		delta := "—"
		if i > 0 {
			delta = "+" + pct((res.TotalBillUSD()-ccBill)/ccBill)
		}
		t.Rows = append(t.Rows, []string{res.Strategy, aware[res.Strategy], usd(res.TotalBillUSD()), delta})
	}
	return Result{Table: t}, nil
}

// FlashCrowd quantifies the paper's §I motivating scenario: "breaking news
// on major newspaper websites may incur a huge number of accesses in a
// short time and thus lead to unexpectedly high electricity costs". A ×3
// half-day spike is injected into the tight-budget month, with and without
// capping.
func FlashCrowd(weeks int) (Result, error) {
	t := Table{
		Title:  "Motivation — flash crowd under the tight budget (paper §I)",
		Header: []string{"scenario", "bill", "vs budget", "premium served", "ordinary served"},
	}
	type variant struct {
		name   string
		crowd  bool
		budget float64
	}
	// The crowd hits mid-week every week of the truncated month.
	for _, v := range []variant{
		{"calm, capped", false, sim.TightBudget()},
		{"crowd, capped", true, sim.TightBudget()},
		{"crowd, uncapped", true, sim.Uncapped()},
	} {
		cfg, scaled, err := scenario(pricing.Policy1, v.budget, weeks)
		if err != nil {
			return Result{}, err
		}
		if v.crowd {
			month := cfg.Month
			for w := 0; w*168 < month.Len(); w++ {
				month = month.Inject(workload.FlashCrowd{StartHour: w*168 + 58, Duration: 12, Peak: 3})
			}
			cfg.Month = month
		}
		cc, err := sim.NewCostCapping(cfg.DCs, cfg.Policies)
		if err != nil {
			return Result{}, err
		}
		res, err := sim.Run(cfg, cc)
		if err != nil {
			return Result{}, err
		}
		vsBudget := "—"
		if !math.IsInf(scaled, 1) {
			vsBudget = pct(res.TotalBillUSD() / scaled)
		}
		t.Rows = append(t.Rows, []string{
			v.name, usd(res.TotalBillUSD()), vsBudget,
			pct(res.PremiumServiceRate()), pct(res.OrdinaryServiceRate()),
		})
	}
	t.Notes = append(t.Notes,
		"capping absorbs the crowd by shedding ordinary admissions; uncapped, the same crowd simply inflates the bill")
	return Result{Table: t}, nil
}

// Battery exercises the stored-energy extension (paper §VIII, refs [37],
// [38]): each site gets a battery whose threshold-arbitrage operator buys
// energy in cheap price segments and serves load from the store in dear
// ones, on top of the Cost Capping dispatch. Reports the monthly bill
// across battery sizes.
func Battery(weeks int) (Result, error) {
	cfg, _, err := scenario(pricing.Policy1, sim.Uncapped(), weeks)
	if err != nil {
		return Result{}, err
	}
	cc, err := sim.NewCostCapping(cfg.DCs, cfg.Policies)
	if err != nil {
		return Result{}, err
	}
	res, err := sim.Run(cfg, cc)
	if err != nil {
		return Result{}, err
	}
	t := Table{
		Title:  "Extension — stored energy: monthly bill vs per-site battery size",
		Header: []string{"battery per site", "monthly bill", "saving vs no battery"},
	}
	base := res.TotalCostUSD
	for _, capMWh := range []float64{0, 10, 50, 100} {
		bill := 0.0
		ops := make([]*battery.Operator, len(cfg.DCs))
		for i, dc := range cfg.DCs {
			b, err := battery.New(capMWh, capMWh/4, capMWh/4, 0.85)
			if err != nil {
				return Result{}, err
			}
			ops[i] = battery.NewOperator(b, cfg.Policies[i], dc.PowerCapMW)
		}
		for _, h := range res.Hours {
			for i := range cfg.DCs {
				grid, price := ops[i].Step(h.SitePowerMW[i], cfg.Demand[i].At(h.Hour))
				bill += price * grid
			}
		}
		saving := "—"
		if capMWh > 0 {
			saving = pct((base - bill) / base)
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.0f MWh", capMWh), usd(bill), saving,
		})
	}
	t.Notes = append(t.Notes,
		"the operator never charges across a price-step boundary or above the site cap — stored energy obeys price-maker rules too",
		"savings are small by design: price-maker-aware dispatch already flattens the realized price series, leaving little spread for storage to arbitrage (refs [37][38] measured against price-taking dispatch)")
	return Result{Table: t}, nil
}

// Tariff exercises the tariff engine end to end (DESIGN.md §13): the same
// uncapped month is billed under progressively richer tariffs — plain energy
// charges, energy + a demand charge on the billing-period peak, and the full
// stack with per-site batteries inside the MILP and a two-settlement market
// position. Each tariff-aware dispatch is compared against a tariff-blind
// dispatch (the same optimizer with the extras hidden) billed under the same
// tariff, isolating what tariff awareness is worth.
func Tariff(weeks int) (Result, error) {
	const demandCharge = 1500.0 // $/MW-month
	bat := core.BatterySpec{
		CapacityMWh: 40, MaxChargeMW: 15, MaxDischargeMW: 15,
		Efficiency: 0.9, SoCMWh: 20,
	}
	type variant struct {
		name                string
		dc, bats, twoSettle bool
	}
	variants := []variant{
		{"energy only", false, false, false},
		{"+ demand charge", true, false, false},
		{"+ demand charge + battery", true, true, false},
		{"+ demand charge + battery + two-settlement", true, true, true},
	}
	t := Table{
		Title:  "Extension — tariff engine: demand charges, storage and two-settlement (uncapped month)",
		Header: []string{"tariff", "aware bill", "blind bill", "aware saving", "energy", "demand charge", "fleet peak (MW)"},
	}
	for _, v := range variants {
		cfg, _, err := scenario(pricing.Policy1, sim.Uncapped(), weeks)
		if err != nil {
			return Result{}, err
		}
		if v.dc {
			cfg.DemandChargeUSDPerMWMonth = demandCharge
		}
		if v.bats {
			cfg.Batteries = make([]core.BatterySpec, len(cfg.DCs))
			for i := range cfg.Batteries {
				cfg.Batteries[i] = bat
			}
		}
		if v.twoSettle {
			cfg.TwoSettlement = true
			cfg.RTSeed = 20120101 // deterministic RT price draw
		}
		cc, err := sim.NewCostCapping(cfg.DCs, cfg.Policies)
		if err != nil {
			return Result{}, err
		}
		aware, err := sim.Run(cfg, cc)
		if err != nil {
			return Result{}, err
		}
		blindBill, saving := "—", "—"
		energy, demand, peakStr := usd(aware.TotalBillUSD()), "—", "—"
		if v.dc || v.bats || v.twoSettle {
			ccBlind, err := sim.NewCostCapping(cfg.DCs, cfg.Policies)
			if err != nil {
				return Result{}, err
			}
			blind, err := sim.Run(cfg, sim.TariffBlind(ccBlind))
			if err != nil {
				return Result{}, err
			}
			blindBill = usd(blind.TotalBillUSD())
			saving = pct((blind.TotalBillUSD() - aware.TotalBillUSD()) / blind.TotalBillUSD())
			peak := 0.0
			for _, p := range aware.PeakMW {
				peak += p
			}
			energy = usd(aware.TotalEnergyUSD)
			demand = usd(aware.TotalDemandUSD)
			peakStr = fmt.Sprintf("%.1f", peak)
		}
		t.Rows = append(t.Rows, []string{
			v.name, usd(aware.TotalBillUSD()), blindBill, saving,
			energy, demand, peakStr,
		})
	}
	t.Notes = append(t.Notes,
		"aware and blind run the same optimizer under the same tariff; blind dispatches as if the demand charge, batteries and market position did not exist",
		"the demand charge bills each site's billing-period peak metered draw; batteries let the MILP shave that peak and arbitrage price steps",
		"two-settlement adds a sunk day-ahead position settled at seeded real-time prices, so aware and blind differ only through dispatch")
	return Result{Table: t}, nil
}

// Hierarchy exercises the two-level capping extension (paper §IX): a
// coordinator splits load and budget across groups of data centers, each
// with its own local capper. Reports the cost gap against the centralized
// optimum and the per-hour decision latency of both, at growing fleet
// sizes.
func Hierarchy() (Result, error) {
	t := Table{
		Title:  "Extension — hierarchical capping vs centralized",
		Header: []string{"sites", "groups", "central cost/h", "hier cost/h", "gap", "central ms", "hier ms"},
	}
	for _, n := range []int{6, 9, 12} {
		dcs := dcmodel.SyntheticSites(n)
		pols := pricing.Synthetic(n)
		regions, err := grid.SyntheticRegions(n, 1, 7)
		if err != nil {
			return Result{}, err
		}
		demand := make([]float64, n)
		for i := range demand {
			demand[i] = regions[i].At(0)
		}
		central, err := core.NewSystem(dcs, pols, core.Options{})
		if err != nil {
			return Result{}, err
		}
		sizes := make([]int, n/3)
		for i := range sizes {
			sizes[i] = 3
		}
		coord, err := hierarchy.New(dcs, pols, sizes)
		if err != nil {
			return Result{}, err
		}
		lam := 0.65 * coord.Capacity()
		in := core.HourInput{TotalLambda: lam, PremiumLambda: 0.8 * lam, DemandMW: demand, BudgetUSD: math.Inf(1)}

		start := time.Now()
		cd, err := central.DecideHour(in)
		if err != nil {
			return Result{}, err
		}
		centralMS := time.Since(start).Seconds() * 1000

		start = time.Now()
		hd, err := coord.DecideHour(in)
		if err != nil {
			return Result{}, err
		}
		hierMS := time.Since(start).Seconds() * 1000

		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", n), fmt.Sprintf("%d", len(sizes)),
			usd(cd.PredictedCostUSD), usd(hd.PredictedCostUSD),
			pct((hd.PredictedCostUSD - cd.PredictedCostUSD) / cd.PredictedCostUSD),
			fmt.Sprintf("%.1f", centralMS), fmt.Sprintf("%.1f", hierMS),
		})
	}
	t.Notes = append(t.Notes,
		"the coordinator samples each group's cost curve and splits load by marginal cost; groups solve small MILPs independently (parallelizable)")
	return Result{Table: t}, nil
}

// Ablation quantifies the value of the paper's two modeling choices by
// knocking each out of the Cost Capping optimizer: A1 prices only server
// power (no cooling/network), A2 is a price taker (flat average price) with
// the full power model. Both are billed by the true market.
func Ablation(weeks int) (Result, error) {
	cfg, _, err := scenario(pricing.Policy1, sim.Uncapped(), weeks)
	if err != nil {
		return Result{}, err
	}
	full, err := sim.NewCostCapping(cfg.DCs, cfg.Policies)
	if err != nil {
		return Result{}, err
	}
	a1, err := sim.NewCostCappingVariant("A1: server-only power model", cfg.DCs, cfg.Policies,
		core.Options{Scope: dcmodel.ServerOnly, PriceView: core.ViewLMP})
	if err != nil {
		return Result{}, err
	}
	a2, err := sim.NewCostCappingVariant("A2: price-taker view", cfg.DCs, cfg.Policies,
		core.Options{Scope: dcmodel.FullPower, PriceView: core.ViewFlatAvg})
	if err != nil {
		return Result{}, err
	}
	t := Table{
		Title:  "Ablation — value of the paper's modeling choices (uncapped month)",
		Header: []string{"optimizer", "monthly bill", "overhead vs full model"},
	}
	var fullBill float64
	for _, d := range []sim.Decider{full, a1, a2} {
		res, err := sim.Run(cfg, d)
		if err != nil {
			return Result{}, err
		}
		over := "—"
		if d == full {
			fullBill = res.TotalBillUSD()
		} else {
			over = pct((res.TotalBillUSD() - fullBill) / fullBill)
		}
		t.Rows = append(t.Rows, []string{res.Strategy, usd(res.TotalBillUSD()), over})
	}
	return Result{Table: t}, nil
}

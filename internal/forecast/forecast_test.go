package forecast

import (
	"math"
	"testing"

	"billcap/internal/timeseries"
	"billcap/internal/workload"
)

func TestFitHourOfWeekEmpty(t *testing.T) {
	if _, err := FitHourOfWeek(nil); err == nil {
		t.Error("empty history accepted")
	}
}

func TestFitHourOfWeekShortHistoryFallsBack(t *testing.T) {
	// 24 hours of history: buckets 24..167 must fall back to the mean.
	hist := make(timeseries.Series, 24)
	for i := range hist {
		hist[i] = float64(i + 1)
	}
	f, err := FitHourOfWeek(hist)
	if err != nil {
		t.Fatal(err)
	}
	mean := hist.Mean()
	if got := f.Predict(30); got != mean {
		t.Errorf("untouched bucket = %v, want overall mean %v", got, mean)
	}
	if got := f.Predict(5); got != 6 {
		t.Errorf("bucket 5 = %v, want 6", got)
	}
}

func TestHourOfWeekPredictsWikipediaShape(t *testing.T) {
	// Fit on "October", predict "November": the weekly pattern must carry
	// over with a small MAPE (the paper found two weeks of history enough).
	cfg := workload.DefaultWikipedia()
	tr, err := workload.Synthetic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	october := tr.Slice(0, 4*168)
	november := tr.Slice(4*168, 8*168)
	f, err := FitHourOfWeek(october.Rates[2*168:]) // last two weeks
	if err != nil {
		t.Fatal(err)
	}
	pred := f.PredictSeries(november.Len())
	if m := MAPE(pred, november.Rates); m > 0.12 {
		t.Errorf("MAPE = %v, want ≤ 0.12 for a structured trace", m)
	}
}

func TestPredictNegativeHour(t *testing.T) {
	// Negative hours count backwards from the epoch: h = −1 is Sunday 23:00
	// (bucket 167), not Monday 01:00 (bucket 1), which the old `h = -h`
	// mirroring produced.
	hist := make(timeseries.Series, 168)
	for i := range hist {
		hist[i] = float64(i)
	}
	f, _ := FitHourOfWeek(hist)
	cases := []struct{ h, bucket int }{
		{-1, 167}, {-3, 165}, {-168, 0}, {-169, 167}, {-336, 0},
		{0, 0}, {167, 167}, {168, 0},
	}
	for _, c := range cases {
		if got, want := f.Predict(c.h), f.Predict(c.bucket); got != want {
			t.Errorf("Predict(%d) = %v, want bucket %d = %v", c.h, got, c.bucket, want)
		}
	}
}

func TestEWMAAlphaNormalizedOnFirstObservation(t *testing.T) {
	// The invalid-Alpha default must apply from the very first observation,
	// not only on the second-and-later path: after one Observe the field
	// itself holds the normalized value.
	for _, bad := range []float64{-1, 0, 7, math.NaN()} {
		e := EWMA{Alpha: bad}
		e.Observe(10)
		if e.Alpha != DefaultAlpha {
			t.Errorf("Alpha %v not normalized on first observation: got %v, want %v", bad, e.Alpha, DefaultAlpha)
		}
		e.Observe(0)
		if got := e.Predict(); math.Abs(got-8) > 1e-12 {
			t.Errorf("Alpha %v: prediction after {10, 0} = %v, want 8", bad, got)
		}
	}
	// A valid Alpha is left alone.
	e := EWMA{Alpha: 0.5}
	e.Observe(10)
	if e.Alpha != 0.5 {
		t.Errorf("valid Alpha rewritten to %v", e.Alpha)
	}
}

func TestEWMA(t *testing.T) {
	e := EWMA{Alpha: 0.5}
	if e.Predict() != 0 {
		t.Errorf("initial prediction = %v", e.Predict())
	}
	e.Observe(10)
	if e.Predict() != 10 {
		t.Errorf("first observation = %v, want 10", e.Predict())
	}
	e.Observe(20)
	if e.Predict() != 15 {
		t.Errorf("after 20 = %v, want 15", e.Predict())
	}
	// Out-of-range alpha falls back to 0.2.
	bad := EWMA{Alpha: 7}
	bad.Observe(10)
	bad.Observe(20)
	if got := bad.Predict(); math.Abs(got-12) > 1e-12 {
		t.Errorf("fallback alpha prediction = %v, want 12", got)
	}
}

func TestWithError(t *testing.T) {
	pred := timeseries.Series{100, 100, 100, 100}
	same := WithError(pred, 0, 1)
	for i := range pred {
		if same[i] != pred[i] {
			t.Errorf("zero error changed predictions")
		}
	}
	noisy := WithError(pred, 0.3, 1)
	diff := false
	for i := range pred {
		if noisy[i] != pred[i] {
			diff = true
		}
		if noisy[i] <= 0 {
			t.Errorf("lognormal error produced nonpositive value %v", noisy[i])
		}
	}
	if !diff {
		t.Errorf("nonzero error changed nothing")
	}
	// Deterministic per seed.
	again := WithError(pred, 0.3, 1)
	for i := range noisy {
		if noisy[i] != again[i] {
			t.Errorf("same seed produced different errors")
		}
	}
}

func TestMAPE(t *testing.T) {
	if m := MAPE(timeseries.Series{110, 90}, timeseries.Series{100, 100}); math.Abs(m-0.1) > 1e-12 {
		t.Errorf("MAPE = %v, want 0.1", m)
	}
	if m := MAPE(timeseries.Series{1, 2}, timeseries.Series{0, 0}); m != 0 {
		t.Errorf("all-zero actuals MAPE = %v, want 0", m)
	}
	if m := MAPE(nil, nil); m != 0 {
		t.Errorf("empty MAPE = %v", m)
	}
}

package forecast

import (
	"fmt"
	"math"
	"sync/atomic"
)

// DriftDetector is the data plane's intra-hour tripwire: it compares the
// arrivals a routing tier actually observes against the prediction the
// current allocation was solved for, and trips once the observation exceeds
// Ratio times the prediction. The capper solves once per hour from a
// forecast (HourOfWeek or EWMA); when real traffic runs well past that
// forecast mid-hour, the hourly plan is stale and an asynchronous re-solve
// is warranted — the detector is the cheap, lock-free test on the request
// path that says so.
//
// All methods are safe for concurrent use; Exceeded is two atomic loads and
// a multiply, cheap enough to call per request.
type DriftDetector struct {
	ratio     float64
	predicted atomic.Uint64 // float64 bits; 0 (disarmed) until Arm
}

// NewDriftDetector builds a detector that trips when observed arrivals
// exceed ratio × predicted. The ratio must be finite and > 1: a ratio ≤ 1
// would re-solve on the forecast being merely met.
func NewDriftDetector(ratio float64) (*DriftDetector, error) {
	if math.IsNaN(ratio) || math.IsInf(ratio, 0) || ratio <= 1 {
		return nil, fmt.Errorf("forecast: drift ratio %v, want a finite ratio > 1", ratio)
	}
	return &DriftDetector{ratio: ratio}, nil
}

// Ratio returns the configured trip ratio.
func (d *DriftDetector) Ratio() float64 { return d.ratio }

// Arm sets the prediction the next observations are judged against —
// typically the TotalLambda the installed allocation was solved for. A
// non-finite or non-positive prediction disarms the detector (there is
// nothing meaningful to compare against, and a disarmed detector never
// trips), so a shed hour cannot wedge the plane into a re-solve loop.
func (d *DriftDetector) Arm(predicted float64) {
	if math.IsNaN(predicted) || math.IsInf(predicted, 0) || predicted <= 0 {
		predicted = 0
	}
	d.predicted.Store(math.Float64bits(predicted))
}

// Predicted returns the armed prediction (0 when disarmed).
func (d *DriftDetector) Predicted() float64 {
	return math.Float64frombits(d.predicted.Load())
}

// Exceeded reports whether the observed arrival count has drifted beyond
// ratio × the armed prediction. Always false while disarmed.
func (d *DriftDetector) Exceeded(observed float64) bool {
	p := d.Predicted()
	return p > 0 && observed > d.ratio*p
}

// Package forecast predicts hourly workload from history. The paper's
// budgeter keeps "a history of the request arrival rate seen during each
// hour of the week over the past several weeks" (two weeks suffice for the
// Wikipedia trace, §VI-B) and uses the per-hour-of-week means as weights for
// splitting the monthly budget. An EWMA predictor and a deterministic
// error-injection wrapper support the robustness experiments the paper
// defers to future work (§IX).
package forecast

import (
	"fmt"
	"math"
	"math/rand"

	"billcap/internal/timeseries"
)

// HoursPerWeek is the weekly bucket count.
const HoursPerWeek = 168

// HourOfWeek predicts by the historical mean of the same hour of the week.
type HourOfWeek struct {
	means [HoursPerWeek]float64
}

// FitHourOfWeek folds the history (hour 0 = Monday 00:00) into hour-of-week
// means. History shorter than one week leaves untouched buckets at the
// overall mean so predictions stay positive.
func FitHourOfWeek(history timeseries.Series) (*HourOfWeek, error) {
	if len(history) == 0 {
		return nil, fmt.Errorf("forecast: empty history")
	}
	f := &HourOfWeek{means: history.HourOfWeekMeans()}
	overall := history.Mean()
	for b := range f.means {
		if f.means[b] == 0 {
			f.means[b] = overall
		}
	}
	return f, nil
}

// Predict returns the expected value for absolute hour h (same epoch as the
// history: hour 0 = Monday 00:00). Negative hours index backwards from that
// epoch, so h = −1 is Sunday 23:00 of the previous week.
func (f *HourOfWeek) Predict(h int) float64 {
	return f.means[((h%HoursPerWeek)+HoursPerWeek)%HoursPerWeek]
}

// PredictSeries materializes predictions for hours [0, n).
func (f *HourOfWeek) PredictSeries(n int) timeseries.Series {
	out := make(timeseries.Series, n)
	for h := range out {
		out[h] = f.Predict(h)
	}
	return out
}

// HourOfWeekState is the predictor's durable state: the 168 per-hour-of-week
// means. It round-trips through JSON for the crash-safe checkpoint layer.
type HourOfWeekState struct {
	MeansPerHour []float64 `json:"meansPerHour"`
}

// Snapshot captures the fitted means.
func (f *HourOfWeek) Snapshot() HourOfWeekState {
	return HourOfWeekState{MeansPerHour: append([]float64(nil), f.means[:]...)}
}

// RestoreHourOfWeek rebuilds a predictor from a snapshot, validating shape
// and finiteness: a corrupt checkpoint must fail loudly, not skew a month of
// budget shares.
func RestoreHourOfWeek(st HourOfWeekState) (*HourOfWeek, error) {
	if len(st.MeansPerHour) != HoursPerWeek {
		return nil, fmt.Errorf("forecast: restore: %d hour-of-week means, want %d", len(st.MeansPerHour), HoursPerWeek)
	}
	f := &HourOfWeek{}
	for b, v := range st.MeansPerHour {
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			return nil, fmt.Errorf("forecast: restore: bad mean %v at bucket %d", v, b)
		}
		f.means[b] = v
	}
	return f, nil
}

// EWMAState is the smoother's durable state.
type EWMAState struct {
	Alpha float64 `json:"alpha"`
	Value float64 `json:"value"`
	Seen  bool    `json:"seen"`
}

// Snapshot captures the smoother.
func (e *EWMA) Snapshot() EWMAState {
	return EWMAState{Alpha: e.Alpha, Value: e.value, Seen: e.seen}
}

// RestoreEWMA rebuilds a smoother from a snapshot. An out-of-range Alpha is
// normalized exactly as Observe would, so a restored smoother behaves like
// one that never crashed.
func RestoreEWMA(st EWMAState) (*EWMA, error) {
	if math.IsNaN(st.Value) || math.IsInf(st.Value, 0) {
		return nil, fmt.Errorf("forecast: restore: bad EWMA value %v", st.Value)
	}
	e := &EWMA{Alpha: st.Alpha, value: st.Value, seen: st.Seen}
	if !(e.Alpha > 0 && e.Alpha <= 1) { // also catches NaN
		e.Alpha = DefaultAlpha
	}
	return e, nil
}

// EWMA is an exponentially weighted moving average predictor.
type EWMA struct {
	Alpha float64 // smoothing factor in (0, 1]; out-of-range values are normalized to DefaultAlpha on first use
	value float64
	seen  bool
}

// DefaultAlpha replaces an out-of-range or non-finite EWMA.Alpha.
const DefaultAlpha = 0.2

// Observe feeds one observation. An Alpha outside (0, 1] (including NaN) is
// normalized to DefaultAlpha before any observation is applied, so the
// smoothing factor in effect never depends on which observation arrived
// first.
func (e *EWMA) Observe(v float64) {
	if !(e.Alpha > 0 && e.Alpha <= 1) { // also catches NaN
		e.Alpha = DefaultAlpha
	}
	if !e.seen {
		e.value = v
		e.seen = true
		return
	}
	e.value = e.Alpha*v + (1-e.Alpha)*e.value
}

// Predict returns the current estimate (0 before any observation).
func (e *EWMA) Predict() float64 { return e.value }

// WithError returns a copy of the predictions with deterministic mean-one
// lognormal error of the given relative magnitude applied, for studying how
// the budgeter degrades when forecasts are wrong (paper §IX).
func WithError(pred timeseries.Series, relErr float64, seed int64) timeseries.Series {
	if relErr <= 0 {
		return pred.Clone()
	}
	rng := rand.New(rand.NewSource(seed))
	out := pred.Clone()
	sigma := relErr
	for i := range out {
		out[i] *= math.Exp(sigma*rng.NormFloat64() - sigma*sigma/2)
	}
	return out
}

// MAPE returns the mean absolute percentage error of predictions against
// actuals (aligned by index), ignoring hours with zero actuals.
func MAPE(pred, actual timeseries.Series) float64 {
	n := len(pred)
	if len(actual) < n {
		n = len(actual)
	}
	sum, cnt := 0.0, 0
	for i := 0; i < n; i++ {
		if actual[i] == 0 {
			continue
		}
		sum += math.Abs(pred[i]-actual[i]) / actual[i]
		cnt++
	}
	if cnt == 0 {
		return 0
	}
	return sum / float64(cnt)
}

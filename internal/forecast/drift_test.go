package forecast

import (
	"math"
	"sync"
	"testing"
)

func TestNewDriftDetectorValidation(t *testing.T) {
	for _, r := range []float64{math.NaN(), math.Inf(1), math.Inf(-1), 1, 0.5, 0, -2} {
		if _, err := NewDriftDetector(r); err == nil {
			t.Errorf("ratio %v accepted", r)
		}
	}
	if _, err := NewDriftDetector(1.5); err != nil {
		t.Fatalf("ratio 1.5 rejected: %v", err)
	}
}

func TestDriftDetectorTrips(t *testing.T) {
	d, err := NewDriftDetector(1.5)
	if err != nil {
		t.Fatal(err)
	}
	// Disarmed: never trips, whatever is observed.
	if d.Exceeded(1e12) {
		t.Error("disarmed detector tripped")
	}
	d.Arm(1000)
	if d.Predicted() != 1000 {
		t.Fatalf("predicted %v", d.Predicted())
	}
	if d.Exceeded(1000) || d.Exceeded(1500) {
		t.Error("tripped at or below ratio×predicted")
	}
	if !d.Exceeded(1501) {
		t.Error("did not trip above ratio×predicted")
	}
	// Re-arming at a higher prediction raises the trip point.
	d.Arm(2000)
	if d.Exceeded(2500) {
		t.Error("tripped below the re-armed threshold")
	}
	if !d.Exceeded(3001) {
		t.Error("did not trip above the re-armed threshold")
	}
}

func TestDriftDetectorDisarmsOnBadPrediction(t *testing.T) {
	d, err := NewDriftDetector(2)
	if err != nil {
		t.Fatal(err)
	}
	d.Arm(100)
	for _, p := range []float64{0, -5, math.NaN(), math.Inf(1)} {
		d.Arm(p)
		if d.Predicted() != 0 {
			t.Errorf("Arm(%v) left predicted %v", p, d.Predicted())
		}
		if d.Exceeded(1e18) {
			t.Errorf("Arm(%v) left the detector armed", p)
		}
		d.Arm(100)
	}
}

// TestDriftDetectorConcurrent arms and checks from many goroutines; run
// with -race to prove the atomics hold up on the request path.
func TestDriftDetectorConcurrent(t *testing.T) {
	d, err := NewDriftDetector(2)
	if err != nil {
		t.Fatal(err)
	}
	d.Arm(50)
	var wg sync.WaitGroup
	trips := make([]int, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 5000; i++ {
				if g == 0 && i%1000 == 0 {
					d.Arm(50 + float64(i))
				}
				if d.Exceeded(float64(i)) {
					trips[g]++
				}
			}
		}(g)
	}
	wg.Wait()
	total := 0
	for _, n := range trips {
		total += n
	}
	if total == 0 {
		t.Error("no goroutine ever observed a trip")
	}
}

package lpparse

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"billcap/internal/lp"
	"billcap/internal/milp"
)

// Write serializes a MILP into the text format Parse reads, so that any
// model built programmatically (including the bill capper's hourly MILPs)
// can be dumped, inspected and re-solved with cmd/milpsolve. Variable names
// are sanitized into valid identifiers (and de-duplicated) because model
// builders use characters like '.' that the format does not allow.
func Write(w io.Writer, p *milp.Problem) error {
	names := sanitizedNames(p)

	// Objective.
	dir := "min"
	if p.Maximizing() {
		dir = "max"
	}
	var terms []string
	for v := 0; v < p.NumVars(); v++ {
		if c := p.ObjectiveCoef(v); c != 0 {
			terms = append(terms, term(c, names[v], len(terms) == 0))
		}
	}
	if len(terms) == 0 {
		// The format requires a nonempty objective; 0·x0 keeps it neutral.
		if p.NumVars() == 0 {
			return fmt.Errorf("lpparse: cannot write a problem with no variables")
		}
		terms = append(terms, "0 "+names[0])
	}
	if _, err := fmt.Fprintf(w, "%s: %s\n", dir, strings.Join(terms, " ")); err != nil {
		return err
	}

	// Constraints.
	for k := 0; k < p.NumConstraints(); k++ {
		c := p.Constraint(k)
		var row []string
		for v, coef := range c.Coeffs {
			if coef != 0 {
				row = append(row, term(coef, names[v], len(row) == 0))
			}
		}
		if len(row) == 0 {
			// A constant row: representable only if trivially true; emit a
			// neutral row over variable 0 to preserve solvability.
			switch c.Rel {
			case lp.LE:
				if 0 <= c.RHS {
					continue
				}
			case lp.GE:
				if 0 >= c.RHS {
					continue
				}
			case lp.EQ:
				if c.RHS == 0 {
					continue
				}
			}
			return fmt.Errorf("lpparse: row %d is an unsatisfiable constant constraint", k)
		}
		if _, err := fmt.Fprintf(w, "c%d: %s %s %s\n",
			k, strings.Join(row, " "), c.Rel, fmtNum(c.RHS)); err != nil {
			return err
		}
	}

	// Bounds: every variable whose [lo, hi] differs from the [0, +Inf)
	// default gets one statement, so native bounds (binaries, per-site
	// capacities) round-trip without being lowered to rows.
	for v := 0; v < p.NumVars(); v++ {
		lo, hi := p.VarBounds(v)
		var stmt string
		switch {
		case lo == 0 && math.IsInf(hi, 1):
			continue
		case lo == hi:
			stmt = fmt.Sprintf("bounds: %s = %s", names[v], fmtNum(lo))
		case math.IsInf(hi, 1):
			stmt = fmt.Sprintf("bounds: %s >= %s", names[v], fmtNum(lo))
		case lo == 0:
			stmt = fmt.Sprintf("bounds: %s <= %s", names[v], fmtNum(hi))
		default:
			stmt = fmt.Sprintf("bounds: %s <= %s <= %s", fmtNum(lo), names[v], fmtNum(hi))
		}
		if _, err := fmt.Fprintln(w, stmt); err != nil {
			return err
		}
	}

	// Integrality.
	var ints []string
	for v := 0; v < p.NumVars(); v++ {
		if p.IsInteger(v) {
			ints = append(ints, names[v])
		}
	}
	if len(ints) > 0 {
		if _, err := fmt.Fprintf(w, "int %s\n", strings.Join(ints, " ")); err != nil {
			return err
		}
	}
	return nil
}

// term renders one "±coef name" fragment.
func term(coef float64, name string, first bool) string {
	sign := "+ "
	if first {
		sign = ""
	}
	if coef < 0 {
		sign = "- "
		coef = -coef
	}
	if coef == 1 {
		return sign + name
	}
	return sign + fmtNum(coef) + " " + name
}

// fmtNum renders a float without scientific notation (the format forbids
// it), keeping full precision.
func fmtNum(v float64) string {
	s := strconv.FormatFloat(v, 'f', -1, 64)
	return s
}

// sanitizedNames maps every variable to a unique valid identifier derived
// from its diagnostic name.
func sanitizedNames(p *milp.Problem) []string {
	used := map[string]bool{}
	out := make([]string, p.NumVars())
	for v := range out {
		base := sanitizeIdent(p.VarName(v))
		name := base
		for i := 2; used[name]; i++ {
			name = fmt.Sprintf("%s_%d", base, i)
		}
		used[name] = true
		out[v] = name
	}
	return out
}

func sanitizeIdent(s string) string {
	var b strings.Builder
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
			b.WriteRune(r)
		case r >= '0' && r <= '9':
			if b.Len() == 0 {
				b.WriteByte('v')
			}
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "v"
	}
	return b.String()
}

package lpparse

import (
	"math"
	"os"
	"strings"
	"testing"

	"billcap/internal/milp"
)

func near(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func parse(t *testing.T, src string) *Parsed {
	t.Helper()
	p, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatalf("parse: %v\nsource:\n%s", err, src)
	}
	return p
}

func TestSimpleLP(t *testing.T) {
	p := parse(t, `
# a comment
min: x + y
c1: x + 2y >= 4
3 x + y >= 6
`)
	s := p.Problem.Solve()
	if s.Status != milp.Optimal || !near(s.Objective, 2.8, 1e-8) {
		t.Fatalf("got %v obj=%v, want optimal 2.8", s.Status, s.Objective)
	}
	if p.VarIndex("x") != 0 || p.VarIndex("y") != 1 || p.VarIndex("zz") != -1 {
		t.Errorf("var indices wrong: %v", p.Vars)
	}
}

func TestMaximizeWithBinaries(t *testing.T) {
	p := parse(t, `
max: 10a + 13b + 7c + 4d
cap: 5a + 6b + 4c + 2d <= 10
bin a b c d
`)
	s := p.Problem.Solve()
	if s.Status != milp.Optimal || !near(s.Objective, 20, 1e-7) {
		t.Fatalf("got %v obj=%v, want optimal 20", s.Status, s.Objective)
	}
}

func TestIntegerDeclaration(t *testing.T) {
	p := parse(t, `
min: 3x + 4y
2x + y >= 5
x + 3y >= 7
int x y
`)
	s := p.Problem.Solve()
	if s.Status != milp.Optimal || !near(s.Objective, 14, 1e-7) {
		t.Fatalf("got %v obj=%v, want optimal 14", s.Status, s.Objective)
	}
}

func TestCoefficientForms(t *testing.T) {
	// Attached, separated, starred, bare, negative and decimal coefficients.
	p := parse(t, `
min: 2x + 3 y + 0.5*z - w
x >= 1
y >= 1
z >= 2
w <= 3
`)
	s := p.Problem.Solve()
	// Optimum: x=1 y=1 z=2 w=3 → 2+3+1-3 = 3.
	if s.Status != milp.Optimal || !near(s.Objective, 3, 1e-8) {
		t.Fatalf("got %v obj=%v, want optimal 3", s.Status, s.Objective)
	}
}

func TestEqualityAndAltRelations(t *testing.T) {
	p := parse(t, `
min: x + y
x + y = 10
x =< 4
y => 2
`)
	s := p.Problem.Solve()
	if s.Status != milp.Optimal || !near(s.Objective, 10, 1e-8) {
		t.Fatalf("got %v obj=%v", s.Status, s.Objective)
	}
}

func TestErrors(t *testing.T) {
	bad := []string{
		"",                       // no objective
		"min: x\nmin: y\n",       // duplicate objective
		"min: x\nx >< 3\n",       // bad relation
		"min: x\nx <= abc\n",     // bad rhs
		"min: x\n3 <= 5\n",       // no variable
		"min: x\nx y <= 5\n",     // missing operator
		"min: x\nint 9bad\n",     // bad identifier
		"min: x\nint\n x >= 1\n", // empty declaration
		"min: 3.2.1 x\nx >= 1\n", // bad coefficient
		"min: x\nc1: + <= 5\n",   // dangling sign
	}
	for _, src := range bad {
		if _, err := Parse(strings.NewReader(src)); err == nil {
			t.Errorf("accepted bad source %q", src)
		}
	}
}

func TestNamedRowsAndComments(t *testing.T) {
	p := parse(t, `
min: x            # objective
demand: x >= 7    # named row
`)
	s := p.Problem.Solve()
	if !near(s.Objective, 7, 1e-9) {
		t.Fatalf("obj = %v", s.Objective)
	}
}

func TestInfeasibleModel(t *testing.T) {
	p := parse(t, `
min: x
x >= 5
x <= 3
`)
	if s := p.Problem.Solve(); s.Status != milp.Infeasible {
		t.Fatalf("status = %v, want infeasible", s.Status)
	}
}

func TestBoundsStatements(t *testing.T) {
	p := parse(t, `
min: a + b + c + d + e
use: a + b + c + d + e >= 0
bounds: 1 <= a <= 4
bounds: b <= 3
bounds: c >= 2
bounds: 5 >= d          # flipped single-sided form
bounds: e = 2.5
`)
	want := [][2]float64{
		{1, 4},
		{0, 3},
		{2, math.Inf(1)},
		{0, 5},
		{2.5, 2.5},
	}
	for i, w := range want {
		lo, hi := p.Problem.VarBounds(i)
		if lo != w[0] || hi != w[1] {
			t.Errorf("%s: bounds [%g, %g], want [%g, %g]", p.Vars[i], lo, hi, w[0], w[1])
		}
	}
	s := p.Problem.Solve()
	if s.Status != milp.Optimal || !near(s.Objective, 5.5, 1e-9) { // 1+0+2+0+2.5
		t.Fatalf("got %v obj=%v, want optimal 5.5", s.Status, s.Objective)
	}
}

func TestBoundsErrors(t *testing.T) {
	bad := []string{
		"min: x\nx >= 0\nbounds: -1 <= x <= 4\n", // negative lower bound
		"min: x\nx >= 0\nbounds: 4 <= x <= 1\n",  // empty range
		"min: x\nx >= 0\nbounds: x\n",            // no relation
		"min: x\nx >= 0\nbounds: 1 <= 2\n",       // no variable
		"min: x\nx >= 0\nbounds: x <= y\n",       // non-numeric bound
		"min: x\nx >= 0\nbounds: 1 <= x <= \n",   // dangling relation
	}
	for _, src := range bad {
		if _, err := Parse(strings.NewReader(src)); err == nil {
			t.Errorf("accepted bad bounds source %q", src)
		}
	}
}

// TestBoundedCorpusModel pins the fuzz-corpus model: native bounds must carry
// through parse and a write/parse round trip with the optimum intact.
func TestBoundedCorpusModel(t *testing.T) {
	src, err := os.ReadFile("testdata/bounded.lp")
	if err != nil {
		t.Fatal(err)
	}
	p := parse(t, string(src))
	s := p.Problem.Solve()
	// g1=7 (cap row with spin=2), g2=3, d=4 gated by u=1: 35+27-8+3 = 57.
	if s.Status != milp.Optimal || !near(s.Objective, 57, 1e-7) {
		t.Fatalf("got %v obj=%v, want optimal 57", s.Status, s.Objective)
	}
	var buf strings.Builder
	if err := Write(&buf, p.Problem); err != nil {
		t.Fatal(err)
	}
	p2, err := Parse(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatalf("re-parse of written model: %v\n%s", err, buf.String())
	}
	s2 := p2.Problem.Solve()
	if s2.Status != milp.Optimal || !near(s2.Objective, 57, 1e-7) {
		t.Fatalf("round trip: %v obj=%v, want optimal 57\n%s", s2.Status, s2.Objective, buf.String())
	}
}

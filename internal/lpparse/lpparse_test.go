package lpparse

import (
	"math"
	"strings"
	"testing"

	"billcap/internal/milp"
)

func near(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func parse(t *testing.T, src string) *Parsed {
	t.Helper()
	p, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatalf("parse: %v\nsource:\n%s", err, src)
	}
	return p
}

func TestSimpleLP(t *testing.T) {
	p := parse(t, `
# a comment
min: x + y
c1: x + 2y >= 4
3 x + y >= 6
`)
	s := p.Problem.Solve()
	if s.Status != milp.Optimal || !near(s.Objective, 2.8, 1e-8) {
		t.Fatalf("got %v obj=%v, want optimal 2.8", s.Status, s.Objective)
	}
	if p.VarIndex("x") != 0 || p.VarIndex("y") != 1 || p.VarIndex("zz") != -1 {
		t.Errorf("var indices wrong: %v", p.Vars)
	}
}

func TestMaximizeWithBinaries(t *testing.T) {
	p := parse(t, `
max: 10a + 13b + 7c + 4d
cap: 5a + 6b + 4c + 2d <= 10
bin a b c d
`)
	s := p.Problem.Solve()
	if s.Status != milp.Optimal || !near(s.Objective, 20, 1e-7) {
		t.Fatalf("got %v obj=%v, want optimal 20", s.Status, s.Objective)
	}
}

func TestIntegerDeclaration(t *testing.T) {
	p := parse(t, `
min: 3x + 4y
2x + y >= 5
x + 3y >= 7
int x y
`)
	s := p.Problem.Solve()
	if s.Status != milp.Optimal || !near(s.Objective, 14, 1e-7) {
		t.Fatalf("got %v obj=%v, want optimal 14", s.Status, s.Objective)
	}
}

func TestCoefficientForms(t *testing.T) {
	// Attached, separated, starred, bare, negative and decimal coefficients.
	p := parse(t, `
min: 2x + 3 y + 0.5*z - w
x >= 1
y >= 1
z >= 2
w <= 3
`)
	s := p.Problem.Solve()
	// Optimum: x=1 y=1 z=2 w=3 → 2+3+1-3 = 3.
	if s.Status != milp.Optimal || !near(s.Objective, 3, 1e-8) {
		t.Fatalf("got %v obj=%v, want optimal 3", s.Status, s.Objective)
	}
}

func TestEqualityAndAltRelations(t *testing.T) {
	p := parse(t, `
min: x + y
x + y = 10
x =< 4
y => 2
`)
	s := p.Problem.Solve()
	if s.Status != milp.Optimal || !near(s.Objective, 10, 1e-8) {
		t.Fatalf("got %v obj=%v", s.Status, s.Objective)
	}
}

func TestErrors(t *testing.T) {
	bad := []string{
		"",                       // no objective
		"min: x\nmin: y\n",       // duplicate objective
		"min: x\nx >< 3\n",       // bad relation
		"min: x\nx <= abc\n",     // bad rhs
		"min: x\n3 <= 5\n",       // no variable
		"min: x\nx y <= 5\n",     // missing operator
		"min: x\nint 9bad\n",     // bad identifier
		"min: x\nint\n x >= 1\n", // empty declaration
		"min: 3.2.1 x\nx >= 1\n", // bad coefficient
		"min: x\nc1: + <= 5\n",   // dangling sign
	}
	for _, src := range bad {
		if _, err := Parse(strings.NewReader(src)); err == nil {
			t.Errorf("accepted bad source %q", src)
		}
	}
}

func TestNamedRowsAndComments(t *testing.T) {
	p := parse(t, `
min: x            # objective
demand: x >= 7    # named row
`)
	s := p.Problem.Solve()
	if !near(s.Objective, 7, 1e-9) {
		t.Fatalf("obj = %v", s.Objective)
	}
}

func TestInfeasibleModel(t *testing.T) {
	p := parse(t, `
min: x
x >= 5
x <= 3
`)
	if s := p.Problem.Solve(); s.Status != milp.Infeasible {
		t.Fatalf("status = %v, want infeasible", s.Status)
	}
}

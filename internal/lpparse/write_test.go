package lpparse

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"billcap/internal/lp"
	"billcap/internal/milp"
)

func TestWriteRoundTripKnapsack(t *testing.T) {
	p := milp.NewProblem()
	p.SetMaximize(true)
	a := p.AddBinVar("a", 10)
	b := p.AddBinVar("b", 13)
	c := p.AddBinVar("c.with-dots", 7)
	p.AddConstraint([]lp.Term{{Var: a, Coef: 5}, {Var: b, Coef: 6}, {Var: c, Coef: 4}}, lp.LE, 10)

	var buf strings.Builder
	if err := Write(&buf, p); err != nil {
		t.Fatal(err)
	}
	parsed, err := Parse(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatalf("parse of written model: %v\n%s", err, buf.String())
	}
	s1 := p.Solve()
	s2 := parsed.Problem.Solve()
	if s1.Status != s2.Status || math.Abs(s1.Objective-s2.Objective) > 1e-7 {
		t.Fatalf("round trip: %v/%v vs %v/%v\n%s",
			s1.Status, s1.Objective, s2.Status, s2.Objective, buf.String())
	}
}

func TestWriteSanitizesAndDedupes(t *testing.T) {
	p := milp.NewProblem()
	x1 := p.AddVar("dc.x", 1)
	x2 := p.AddVar("dc-x", 2) // sanitizes to the same ident
	p.AddConstraint([]lp.Term{{Var: x1, Coef: 1}}, lp.GE, 3)
	p.AddConstraint([]lp.Term{{Var: x2, Coef: 1}}, lp.GE, 4)
	var buf strings.Builder
	if err := Write(&buf, p); err != nil {
		t.Fatal(err)
	}
	parsed, err := Parse(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatalf("%v\n%s", err, buf.String())
	}
	if parsed.Problem.NumVars() != 2 {
		t.Fatalf("dedup failed: %d vars\n%s", parsed.Problem.NumVars(), buf.String())
	}
	s := parsed.Problem.Solve()
	if math.Abs(s.Objective-11) > 1e-9 { // 1·3 + 2·4
		t.Fatalf("objective %v, want 11\n%s", s.Objective, buf.String())
	}
}

func TestWriteRejectsEmptyProblem(t *testing.T) {
	if err := Write(&strings.Builder{}, milp.NewProblem()); err == nil {
		t.Error("empty problem accepted")
	}
}

func TestWriteSkipsTrivialConstantRows(t *testing.T) {
	p := milp.NewProblem()
	p.AddVar("x", 1)
	p.AddConstraint(nil, lp.LE, 5) // 0 ≤ 5: trivially true, droppable
	var buf strings.Builder
	if err := Write(&buf, p); err != nil {
		t.Fatal(err)
	}
	// An unsatisfiable constant row cannot be represented.
	p2 := milp.NewProblem()
	p2.AddVar("x", 1)
	p2.AddConstraint(nil, lp.GE, 5)
	if err := Write(&strings.Builder{}, p2); err == nil {
		t.Error("unsatisfiable constant row accepted")
	}
}

// TestWriteParseRoundTripProperty: random MILPs survive a write/parse cycle
// with identical status and objective.
func TestWriteParseRoundTripProperty(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := milp.NewProblem()
		p.SetMaximize(r.Intn(2) == 0)
		nb := 1 + r.Intn(4)
		nc := r.Intn(3)
		for i := 0; i < nb; i++ {
			p.AddBinVar("b", math.Floor(r.Float64()*20))
		}
		for i := 0; i < nc; i++ {
			v := p.AddVar("c.v", r.Float64()*4-2)
			// Cap the variable either with an explicit row or with native
			// bounds, so the writer's bounds section is exercised too.
			switch r.Intn(4) {
			case 0:
				p.AddConstraint([]lp.Term{{Var: v, Coef: 1}}, lp.LE, 1+4*r.Float64())
			case 1:
				p.SetVarBounds(v, 0, 1+4*r.Float64())
			case 2:
				lo := math.Floor(r.Float64() * 3)
				p.SetVarBounds(v, lo, lo+1+4*r.Float64())
			default:
				val := math.Floor(r.Float64() * 4)
				p.SetVarBounds(v, val, val) // fixed variable
			}
		}
		rows := 1 + r.Intn(3)
		for k := 0; k < rows; k++ {
			terms := make([]lp.Term, 0, nb+nc)
			for j := 0; j < nb+nc; j++ {
				terms = append(terms, lp.Term{Var: j, Coef: math.Floor(r.Float64()*7) - 2})
			}
			rel := []lp.Rel{lp.LE, lp.GE}[r.Intn(2)]
			rhs := math.Floor(r.Float64()*20) - 5
			if rel == lp.GE {
				rhs = -math.Abs(rhs) // keep the zero point feasible often
			}
			p.AddConstraint(terms, rel, rhs)
		}
		var buf strings.Builder
		if err := Write(&buf, p); err != nil {
			// The only legitimate refusal is an unsatisfiable constant row
			// (all-zero coefficients), which makes the problem infeasible.
			if p.Solve().Status == milp.Infeasible {
				return true
			}
			t.Logf("seed %d: write: %v", seed, err)
			return false
		}
		parsed, err := Parse(strings.NewReader(buf.String()))
		if err != nil {
			t.Logf("seed %d: parse: %v\n%s", seed, err, buf.String())
			return false
		}
		s1 := p.Solve()
		s2 := parsed.Problem.Solve()
		if s1.Status != s2.Status {
			t.Logf("seed %d: status %v vs %v\n%s", seed, s1.Status, s2.Status, buf.String())
			return false
		}
		if s1.Status == milp.Optimal &&
			math.Abs(s1.Objective-s2.Objective) > 1e-6*(1+math.Abs(s1.Objective)) {
			t.Logf("seed %d: obj %v vs %v\n%s", seed, s1.Objective, s2.Objective, buf.String())
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

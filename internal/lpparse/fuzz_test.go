package lpparse

import (
	"strings"
	"testing"
)

// FuzzParse checks that arbitrary input never panics the parser and that
// whatever parses also solves without panicking.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"min: x + y\nx + 2y >= 4\n3x + y >= 6\n",
		"max: 10a + 13b\ncap: 5a + 6b <= 10\nbin a b\n",
		"min: 3x\nint x\n2x = 7\n",
		"min: x\nc1: x =< 4\nc2: x => 1\n",
		"# only a comment\n",
		"min: 0.5*z - w\nz >= 2\nw <= 3\n",
		"min: x\nx >< 3\n",
		"min: 3.2.1 x\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		p, err := Parse(strings.NewReader(src))
		if err != nil {
			return
		}
		// Bound the search so adversarial models cannot run long.
		if p.Problem.NumVars() > 12 || p.Problem.NumConstraints() > 24 {
			return
		}
		sol := p.Problem.Solve()
		_ = sol.Status.String()
	})
}

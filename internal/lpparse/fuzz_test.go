package lpparse

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// FuzzParse checks that arbitrary input never panics the parser and that
// whatever parses also solves without panicking. The corpus is seeded from
// inline edge cases plus every example model in testdata/ — including a real
// hour-model dump from core.WriteHourModel, so mutations start from the
// grammar the production path actually emits.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"min: x + y\nx + 2y >= 4\n3x + y >= 6\n",
		"max: 10a + 13b\ncap: 5a + 6b <= 10\nbin a b\n",
		"min: 3x\nint x\n2x = 7\n",
		"min: x\nc1: x =< 4\nc2: x => 1\n",
		"# only a comment\n",
		"min: 0.5*z - w\nz >= 2\nw <= 3\n",
		"min: x\nx >< 3\n",
		"min: 3.2.1 x\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	files, err := filepath.Glob(filepath.Join("testdata", "*.lp"))
	if err != nil {
		f.Fatal(err)
	}
	if len(files) == 0 {
		f.Fatal("no .lp corpus files under testdata/")
	}
	for _, name := range files {
		src, err := os.ReadFile(name)
		if err != nil {
			f.Fatal(err)
		}
		// Corpus files must parse cleanly: a typo here would silently seed
		// the fuzzer with garbage instead of valid grammar.
		if _, err := Parse(strings.NewReader(string(src))); err != nil {
			f.Fatalf("corpus file %s does not parse: %v", name, err)
		}
		f.Add(string(src))
	}
	f.Fuzz(func(t *testing.T, src string) {
		p, err := Parse(strings.NewReader(src))
		if err != nil {
			return
		}
		// Bound the search so adversarial models cannot run long.
		if p.Problem.NumVars() > 12 || p.Problem.NumConstraints() > 24 {
			return
		}
		sol := p.Problem.Solve()
		_ = sol.Status.String()
	})
}

// Package lpparse parses a small human-writable text format for (mixed
// integer) linear programs, in the spirit of the lp_solve LP format the
// paper's authors used. It backs the cmd/milpsolve tool.
//
// Format (one statement per line; '#' starts a comment):
//
//	min: 3 x + 4.5 y - z        # or "max:"
//	c1: 2 x + y >= 5            # optionally named rows
//	x + y <= 10
//	x - y = 2
//	int x z                     # declare general integers
//	bin b                       # declare binaries (sets bounds 0 ≤ b ≤ 1)
//	bounds: 1 <= x <= 4         # variable bounds; also "x <= 4", "x >= 1", "x = 2"
//
// Variables are nonnegative and spring into existence on first mention.
// Coefficients may be attached ("3x") or separated ("3 x"); bare variables
// mean coefficient 1. A bounds statement replaces the named side of the
// variable's [0, +Inf) default — it is a declaration, not an extra row, so
// the solver's bounded simplex handles it without growing the basis.
package lpparse

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
	"unicode"

	"billcap/internal/lp"
	"billcap/internal/milp"
)

// Parsed is the outcome of parsing: a ready MILP plus the variable names in
// declaration order.
type Parsed struct {
	Problem *milp.Problem
	Vars    []string
	index   map[string]int
}

// VarIndex returns the index of a named variable, or -1.
func (p *Parsed) VarIndex(name string) int {
	if i, ok := p.index[name]; ok {
		return i
	}
	return -1
}

type parser struct {
	out     *Parsed
	haveObj bool
	line    int
}

// Parse reads the whole format from r.
func Parse(r io.Reader) (*Parsed, error) {
	p := &parser{out: &Parsed{
		Problem: milp.NewProblem(),
		index:   map[string]int{},
	}}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		p.line++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if err := p.statement(line); err != nil {
			return nil, fmt.Errorf("line %d: %w", p.line, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if !p.haveObj {
		return nil, fmt.Errorf("no objective (expected a \"min:\" or \"max:\" line)")
	}
	return p.out, nil
}

func (p *parser) statement(line string) error {
	lower := strings.ToLower(line)
	switch {
	case strings.HasPrefix(lower, "min:"), strings.HasPrefix(lower, "max:"):
		if p.haveObj {
			return fmt.Errorf("duplicate objective")
		}
		p.haveObj = true
		p.out.Problem.SetMaximize(strings.HasPrefix(lower, "max:"))
		terms, err := p.expr(strings.TrimSpace(line[4:]))
		if err != nil {
			return err
		}
		for _, t := range terms {
			p.out.Problem.SetObjectiveCoef(t.Var, p.out.Problem.ObjectiveCoef(t.Var)+t.Coef)
		}
		return nil
	case strings.HasPrefix(lower, "int "):
		return p.declare(line[4:], false)
	case strings.HasPrefix(lower, "bin "):
		return p.declare(line[4:], true)
	case strings.HasPrefix(lower, "bounds:"):
		return p.bounds(strings.TrimSpace(line[len("bounds:"):]))
	}
	return p.constraint(line)
}

func (p *parser) declare(names string, binary bool) error {
	fields := strings.Fields(names)
	if len(fields) == 0 {
		return fmt.Errorf("empty declaration")
	}
	for _, n := range fields {
		if !validIdent(n) {
			return fmt.Errorf("bad variable name %q", n)
		}
		v := p.variable(n)
		p.out.Problem.SetInteger(v, true)
		if binary {
			p.out.Problem.SetVarBounds(v, 0, 1)
		}
	}
	return nil
}

// bounds parses one bounds statement: "lo <= x <= hi" (or the mirrored
// ">= ... >="), a single-sided "x <= hi" / "x >= lo" with the variable on
// either side, or a fixing "x = v". Each statement replaces the named side of
// the variable's current bounds.
func (p *parser) bounds(s string) error {
	parts, rels := splitAllRelations(s)
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	num := func(t string) (float64, error) {
		v, err := strconv.ParseFloat(t, 64)
		if err != nil {
			return 0, fmt.Errorf("bad bound %q", t)
		}
		return v, nil
	}
	switch len(rels) {
	case 1:
		a, b := parts[0], parts[1]
		rel := rels[0]
		if !validIdent(a) {
			// Mirrored "5 >= x": flip so the variable reads on the left.
			a, b = b, a
			switch rel {
			case lp.LE:
				rel = lp.GE
			case lp.GE:
				rel = lp.LE
			}
		}
		if !validIdent(a) {
			return fmt.Errorf("no variable in bounds statement %q", s)
		}
		v, err := num(b)
		if err != nil {
			return err
		}
		switch rel {
		case lp.LE:
			return p.setBound(a, math.Inf(-1), v)
		case lp.GE:
			return p.setBound(a, v, math.Inf(1))
		default: // EQ: fix the variable
			return p.setBound(a, v, v)
		}
	case 2:
		lo, name, hi := parts[0], parts[1], parts[2]
		if rels[0] != rels[1] || rels[0] == lp.EQ {
			return fmt.Errorf("mixed relations in bounds statement %q", s)
		}
		if rels[0] == lp.GE { // "hi >= x >= lo"
			lo, hi = hi, lo
		}
		if !validIdent(name) {
			return fmt.Errorf("no variable in bounds statement %q", s)
		}
		l, err := num(lo)
		if err != nil {
			return err
		}
		h, err := num(hi)
		if err != nil {
			return err
		}
		return p.setBound(name, l, h)
	}
	return fmt.Errorf("bounds statement %q needs one or two relations", s)
}

// setBound merges the statement into the variable's bounds: an infinite side
// keeps whatever is already declared.
func (p *parser) setBound(name string, lo, hi float64) error {
	v := p.variable(name)
	curLo, curHi := p.out.Problem.VarBounds(v)
	if math.IsInf(lo, -1) {
		lo = curLo
	}
	if math.IsInf(hi, 1) && !math.IsInf(curHi, 1) {
		hi = curHi
	}
	if lo < 0 {
		return fmt.Errorf("negative lower bound %g for %s (variables are nonnegative)", lo, name)
	}
	if hi < lo {
		return fmt.Errorf("empty bounds [%g, %g] for %s", lo, hi, name)
	}
	p.out.Problem.SetVarBounds(v, lo, hi)
	return nil
}

// splitAllRelations splits a bounds statement on every relation operator,
// returning the interleaved text parts and the relations between them.
func splitAllRelations(s string) ([]string, []lp.Rel) {
	ops := []struct {
		op  string
		rel lp.Rel
	}{{"<=", lp.LE}, {">=", lp.GE}, {"=<", lp.LE}, {"=>", lp.GE}, {"=", lp.EQ}}
	var parts []string
	var rels []lp.Rel
	for {
		best, bi := -1, -1
		for i, c := range ops {
			if j := strings.Index(s, c.op); j >= 0 && (best < 0 || j < best) {
				best, bi = j, i
			}
		}
		if best < 0 {
			parts = append(parts, s)
			return parts, rels
		}
		parts = append(parts, s[:best])
		rels = append(rels, ops[bi].rel)
		s = s[best+len(ops[bi].op):]
	}
}

func (p *parser) constraint(line string) error {
	// Strip an optional "name:" prefix (not an objective, already handled).
	if i := strings.IndexByte(line, ':'); i >= 0 {
		name := strings.TrimSpace(line[:i])
		if validIdent(name) {
			line = strings.TrimSpace(line[i+1:])
		}
	}
	rel, lhs, rhs, err := splitRelation(line)
	if err != nil {
		return err
	}
	terms, err := p.expr(lhs)
	if err != nil {
		return err
	}
	b, err := strconv.ParseFloat(strings.TrimSpace(rhs), 64)
	if err != nil {
		return fmt.Errorf("bad right-hand side %q", strings.TrimSpace(rhs))
	}
	p.out.Problem.AddConstraint(terms, rel, b)
	return nil
}

func splitRelation(line string) (lp.Rel, string, string, error) {
	for _, c := range []struct {
		op  string
		rel lp.Rel
	}{{"<=", lp.LE}, {">=", lp.GE}, {"=<", lp.LE}, {"=>", lp.GE}, {"=", lp.EQ}} {
		if i := strings.Index(line, c.op); i >= 0 {
			return c.rel, line[:i], line[i+len(c.op):], nil
		}
	}
	return 0, "", "", fmt.Errorf("no relation (<=, >=, =) in %q", line)
}

// expr parses "3 x + 4.5y - z" into terms.
func (p *parser) expr(s string) ([]lp.Term, error) {
	var out []lp.Term
	i := 0
	n := len(s)
	sign := 1.0
	first := true
	for i < n {
		for i < n && unicode.IsSpace(rune(s[i])) {
			i++
		}
		if i >= n {
			break
		}
		switch s[i] {
		case '+':
			sign = 1
			i++
			continue
		case '-':
			sign = -1
			i++
			continue
		}
		if !first && sign == 0 {
			return nil, fmt.Errorf("missing operator near %q", s[i:])
		}
		// Optional coefficient (plain decimals; no scientific notation).
		j := i
		for j < n && (unicode.IsDigit(rune(s[j])) || s[j] == '.') {
			j++
		}
		coef := 1.0
		if j > i {
			v, err := strconv.ParseFloat(s[i:j], 64)
			if err != nil {
				return nil, fmt.Errorf("bad coefficient %q", s[i:j])
			}
			coef = v
			i = j
			for i < n && unicode.IsSpace(rune(s[i])) {
				i++
			}
			if i < n && s[i] == '*' {
				i++
				for i < n && unicode.IsSpace(rune(s[i])) {
					i++
				}
			}
		}
		// Variable name.
		k := i
		for k < n && (unicode.IsLetter(rune(s[k])) || unicode.IsDigit(rune(s[k])) || s[k] == '_') {
			if k == i && unicode.IsDigit(rune(s[k])) {
				break
			}
			k++
		}
		if k == i {
			if j > i || coef != 1 {
				return nil, fmt.Errorf("dangling coefficient near %q", s[i:])
			}
			return nil, fmt.Errorf("expected a variable near %q", s[i:])
		}
		name := s[i:k]
		out = append(out, lp.Term{Var: p.variable(name), Coef: sign * coef})
		i = k
		sign = 0 // require an explicit operator before the next term
		first = false
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty expression")
	}
	return out, nil
}

func (p *parser) variable(name string) int {
	if v, ok := p.out.index[name]; ok {
		return v
	}
	v := p.out.Problem.AddVar(name, 0)
	p.out.index[name] = v
	p.out.Vars = append(p.out.Vars, name)
	return v
}

func validIdent(s string) bool {
	if s == "" || unicode.IsDigit(rune(s[0])) {
		return false
	}
	for _, r := range s {
		if !unicode.IsLetter(r) && !unicode.IsDigit(r) && r != '_' {
			return false
		}
	}
	return true
}

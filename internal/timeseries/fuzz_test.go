package timeseries

import (
	"strings"
	"testing"
)

// FuzzReadCSV checks the CSV reader never panics and that accepted input
// round-trips through WriteCSV → ReadCSV unchanged.
func FuzzReadCSV(f *testing.F) {
	f.Add("hour,value\n0,1.5\n1,2\n")
	f.Add("hour,value\n")
	f.Add("")
	f.Add("hour,value\n0,nan\n")
	f.Add("hour,value\n0,1\n2,2\n")
	f.Add("a,b\n0,1\n")
	f.Fuzz(func(t *testing.T, src string) {
		s, err := ReadCSV(strings.NewReader(src))
		if err != nil {
			return
		}
		var buf strings.Builder
		if err := s.WriteCSV(&buf); err != nil {
			t.Fatalf("WriteCSV on accepted series: %v", err)
		}
		back, err := ReadCSV(strings.NewReader(buf.String()))
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		if len(back) != len(s) {
			t.Fatalf("round trip length %d != %d", len(back), len(s))
		}
		for i := range s {
			// NaN never equals itself; formatting preserves it as a token
			// that ParseFloat reads back as NaN, which is acceptable.
			if back[i] != s[i] && !(s[i] != s[i] && back[i] != back[i]) {
				t.Fatalf("round trip value %d: %v != %v", i, back[i], s[i])
			}
		}
	})
}

package timeseries

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func near(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestStats(t *testing.T) {
	s := Series{3, 1, 4, 1, 5}
	if s.Sum() != 14 {
		t.Errorf("Sum = %v", s.Sum())
	}
	if s.Mean() != 2.8 {
		t.Errorf("Mean = %v", s.Mean())
	}
	if s.Max() != 5 || s.Min() != 1 {
		t.Errorf("Max/Min = %v/%v", s.Max(), s.Min())
	}
	var empty Series
	if empty.Mean() != 0 || empty.Max() != 0 || empty.Min() != 0 {
		t.Errorf("empty stats not zero")
	}
}

func TestQuantile(t *testing.T) {
	s := Series{10, 20, 30, 40, 50}
	if q := s.Quantile(0); q != 10 {
		t.Errorf("q0 = %v", q)
	}
	if q := s.Quantile(1); q != 50 {
		t.Errorf("q1 = %v", q)
	}
	if q := s.Quantile(0.5); q != 30 {
		t.Errorf("median = %v", q)
	}
	if q := (Series{}).Quantile(0.5); q != 0 {
		t.Errorf("empty quantile = %v", q)
	}
}

func TestScaleAndClone(t *testing.T) {
	s := Series{1, 2}
	c := s.Scale(3)
	if c[0] != 3 || c[1] != 6 || s[0] != 1 {
		t.Errorf("Scale mutated the receiver or miscomputed: %v %v", s, c)
	}
	cl := s.Clone()
	cl[0] = 99
	if s[0] == 99 {
		t.Errorf("Clone aliases the receiver")
	}
}

func TestHourOfWeekMeans(t *testing.T) {
	// Two weeks: second week doubles the first → mean is 1.5× first week.
	s := make(Series, 336)
	for i := range s {
		base := float64(i%168 + 1)
		if i >= 168 {
			base *= 2
		}
		s[i] = base
	}
	m := s.HourOfWeekMeans()
	for b := 0; b < 168; b++ {
		want := 1.5 * float64(b+1)
		if !near(m[b], want, 1e-9) {
			t.Fatalf("bucket %d = %v, want %v", b, m[b], want)
		}
	}
}

func TestCSVRoundTrip(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := r.Intn(50)
		s := make(Series, n)
		for i := range s {
			s[i] = math.Floor(r.Float64()*1e9) / 1000
		}
		var buf bytes.Buffer
		if err := s.WriteCSV(&buf); err != nil {
			return false
		}
		got, err := ReadCSV(&buf)
		if err != nil {
			return false
		}
		if len(got) != len(s) {
			return false
		}
		for i := range s {
			if got[i] != s[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []string{
		"",                            // no header
		"a,b\n0,1\n",                  // wrong header
		"hour,value\nx,1\n",           // bad hour
		"hour,value\n1,1\n",           // out of order
		"hour,value\n0,xyz\n",         // bad value
		"hour,value\n0,1\n1,2\n3,3\n", // gap
		"hour,value\n0,1,extra\n",     // wrong arity
	}
	for _, in := range cases {
		if _, err := ReadCSV(strings.NewReader(in)); err == nil {
			t.Errorf("input %q accepted", in)
		}
	}
}

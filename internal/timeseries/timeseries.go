// Package timeseries provides the hourly float64 series shared by the
// workload and grid-demand substrates: summary statistics and a small CSV
// interchange format (header "hour,value").
package timeseries

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
)

// Series is an hourly sequence of nonnegative values (requests/hour, MW, $).
type Series []float64

// Clone returns an independent copy.
func (s Series) Clone() Series { return append(Series(nil), s...) }

// Sum returns the total over all hours.
func (s Series) Sum() float64 {
	t := 0.0
	for _, v := range s {
		t += v
	}
	return t
}

// Mean returns the average value, or 0 for an empty series.
func (s Series) Mean() float64 {
	if len(s) == 0 {
		return 0
	}
	return s.Sum() / float64(len(s))
}

// Max returns the largest value, or 0 for an empty series.
func (s Series) Max() float64 {
	m := math.Inf(-1)
	for _, v := range s {
		if v > m {
			m = v
		}
	}
	if math.IsInf(m, -1) {
		return 0
	}
	return m
}

// Min returns the smallest value, or 0 for an empty series.
func (s Series) Min() float64 {
	m := math.Inf(1)
	for _, v := range s {
		if v < m {
			m = v
		}
	}
	if math.IsInf(m, 1) {
		return 0
	}
	return m
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) by nearest-rank on a sorted
// copy, or 0 for an empty series.
func (s Series) Quantile(q float64) float64 {
	if len(s) == 0 {
		return 0
	}
	sorted := s.Clone()
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	return sorted[idx]
}

// Scale returns a copy with every value multiplied by f.
func (s Series) Scale(f float64) Series {
	out := s.Clone()
	for i := range out {
		out[i] *= f
	}
	return out
}

// HourOfWeekMeans folds the series into 168 hour-of-week buckets (hour 0 is
// the series start) and returns the per-bucket means. Buckets never touched
// get 0. This is the aggregation the paper's budgeter applies to two weeks
// of workload history (paper §VI-B).
func (s Series) HourOfWeekMeans() [168]float64 {
	var sum, cnt [168]float64
	for i, v := range s {
		b := i % 168
		sum[b] += v
		cnt[b]++
	}
	var out [168]float64
	for b := range out {
		if cnt[b] > 0 {
			out[b] = sum[b] / cnt[b]
		}
	}
	return out
}

// WriteCSV writes the series as "hour,value" rows with a header line.
func (s Series) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"hour", "value"}); err != nil {
		return err
	}
	for i, v := range s {
		if err := cw.Write([]string{strconv.Itoa(i), strconv.FormatFloat(v, 'g', -1, 64)}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a series written by WriteCSV. Rows must be in hour order
// starting at 0; the header is mandatory.
func ReadCSV(r io.Reader) (Series, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 2
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("timeseries: %w", err)
	}
	if len(rows) == 0 || rows[0][0] != "hour" || rows[0][1] != "value" {
		return nil, fmt.Errorf("timeseries: missing header row")
	}
	out := make(Series, 0, len(rows)-1)
	for i, row := range rows[1:] {
		h, err := strconv.Atoi(row[0])
		if err != nil {
			return nil, fmt.Errorf("timeseries: row %d: bad hour %q", i+1, row[0])
		}
		if h != i {
			return nil, fmt.Errorf("timeseries: row %d: hour %d out of order", i+1, h)
		}
		v, err := strconv.ParseFloat(row[1], 64)
		if err != nil {
			return nil, fmt.Errorf("timeseries: row %d: bad value %q", i+1, row[1])
		}
		out = append(out, v)
	}
	return out, nil
}

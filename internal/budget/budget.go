// Package budget implements the paper's budgeter (§III, §VI-B): it splits a
// monthly electricity budget into hourly budgets proportional to the
// predicted workload of each hour, and carries unused budget forward to the
// remaining invocation periods of the same week.
package budget

import (
	"fmt"
	"math"

	"billcap/internal/timeseries"
)

// HoursPerWeek is the carryover window: unused budget survives within the
// week it was allocated in and resets at week boundaries.
const HoursPerWeek = 168

// Budgeter tracks the monthly budget across the invocation periods of one
// budgeting period (a month of hourly slots).
type Budgeter struct {
	monthly    float64
	shares     timeseries.Series // per-hour base allocation, sums to monthly
	pool       float64           // carryover within the current week (may be negative after a mandatory overrun)
	next       int               // next hour to be recorded
	spent      float64
	violations int      // hours whose spend exceeded their available budget
	metrics    *Metrics // optional gauges (see SetMetrics)
}

// New builds a budgeter for the given monthly budget and the predicted
// hourly workload of the month. Hourly shares are proportional to the
// prediction; an all-zero prediction falls back to uniform shares.
func New(monthlyUSD float64, predicted timeseries.Series) (*Budgeter, error) {
	if monthlyUSD < 0 {
		return nil, fmt.Errorf("budget: negative monthly budget %v", monthlyUSD)
	}
	if len(predicted) == 0 {
		return nil, fmt.Errorf("budget: empty prediction")
	}
	for h, v := range predicted {
		if v < 0 {
			return nil, fmt.Errorf("budget: negative prediction %v at hour %d", v, h)
		}
	}
	total := predicted.Sum()
	shares := make(timeseries.Series, len(predicted))
	if total <= 0 {
		for h := range shares {
			shares[h] = monthlyUSD / float64(len(shares))
		}
	} else {
		for h, v := range predicted {
			shares[h] = monthlyUSD * v / total
		}
	}
	return &Budgeter{monthly: monthlyUSD, shares: shares}, nil
}

// Horizon returns the number of hourly slots in the budgeting period.
func (b *Budgeter) Horizon() int { return len(b.shares) }

// Monthly returns the monthly budget.
func (b *Budgeter) Monthly() float64 { return b.monthly }

// Share returns hour h's base allocation (before carryover).
func (b *Budgeter) Share(h int) float64 {
	if h < 0 || h >= len(b.shares) {
		return 0
	}
	return b.shares[h]
}

// HourlyBudget returns the budget available to the next hour: its base share
// plus whatever this week's earlier hours left unused (or overdrew). The
// result is never negative, and once every hour of the period has been
// recorded there is no next hour to fund, so the result is 0 regardless of
// any leftover carryover pool.
func (b *Budgeter) HourlyBudget() float64 {
	if b.next >= b.Horizon() {
		return 0
	}
	v := b.Share(b.next) + b.pool
	if v < 0 {
		return 0
	}
	return v
}

// Record charges the next hour with its realized spend and advances the
// clock. The difference between the hour's available budget and the spend is
// carried into the pool; at each week boundary the pool resets (the paper
// carries unused budget only "to the remaining invocation periods in the
// same week").
func (b *Budgeter) Record(spentUSD float64) error {
	if b.next >= len(b.shares) {
		return fmt.Errorf("budget: period exhausted after %d hours", len(b.shares))
	}
	if spentUSD < 0 {
		return fmt.Errorf("budget: negative spend %v", spentUSD)
	}
	if spentUSD > b.HourlyBudget()*(1+1e-9)+1e-6 {
		b.violations++
		if b.metrics != nil {
			b.metrics.violations.Inc()
		}
	}
	b.pool += b.Share(b.next) - spentUSD
	b.spent += spentUSD
	b.next++
	if b.next%HoursPerWeek == 0 {
		b.pool = 0
	}
	b.metrics.sync(b)
	return nil
}

// State is the budgeter's durable ledger: everything a restarted controller
// needs to continue the budgeting period exactly where the crashed one
// stopped. It round-trips through JSON for the crash-safe WAL/snapshot layer
// (internal/state).
type State struct {
	MonthlyUSD float64   `json:"monthlyUSD"`
	SharesUSD  []float64 `json:"sharesUSD"`
	PoolUSD    float64   `json:"poolUSD"`
	NextHour   int       `json:"nextHour"`
	SpentUSD   float64   `json:"spentUSD"`
	Violations int       `json:"violations"`
}

// Snapshot captures the ledger. The shares slice is copied, so the snapshot
// stays valid while the budgeter keeps recording.
func (b *Budgeter) Snapshot() State {
	return State{
		MonthlyUSD: b.monthly,
		SharesUSD:  append([]float64(nil), b.shares...),
		PoolUSD:    b.pool,
		NextHour:   b.next,
		SpentUSD:   b.spent,
		Violations: b.violations,
	}
}

// Restore rebuilds a budgeter from a snapshot, validating every field — a
// checkpoint that survived a crash may still be stale or hand-edited, and a
// corrupt ledger must fail loudly rather than silently misbudget the month.
func Restore(st State) (*Budgeter, error) {
	switch {
	case math.IsNaN(st.MonthlyUSD) || st.MonthlyUSD < 0:
		return nil, fmt.Errorf("budget: restore: bad monthly budget %v", st.MonthlyUSD)
	case len(st.SharesUSD) == 0:
		return nil, fmt.Errorf("budget: restore: empty shares")
	case st.NextHour < 0 || st.NextHour > len(st.SharesUSD):
		return nil, fmt.Errorf("budget: restore: hour cursor %d outside [0, %d]", st.NextHour, len(st.SharesUSD))
	case math.IsNaN(st.PoolUSD) || math.IsInf(st.PoolUSD, 0):
		return nil, fmt.Errorf("budget: restore: bad pool %v", st.PoolUSD)
	case math.IsNaN(st.SpentUSD) || st.SpentUSD < 0:
		return nil, fmt.Errorf("budget: restore: bad spend %v", st.SpentUSD)
	case st.Violations < 0:
		return nil, fmt.Errorf("budget: restore: negative violation count %d", st.Violations)
	}
	for h, v := range st.SharesUSD {
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			return nil, fmt.Errorf("budget: restore: bad share %v at hour %d", v, h)
		}
	}
	return &Budgeter{
		monthly:    st.MonthlyUSD,
		shares:     append(timeseries.Series(nil), st.SharesUSD...),
		pool:       st.PoolUSD,
		next:       st.NextHour,
		spent:      st.SpentUSD,
		violations: st.Violations,
	}, nil
}

// Pool returns the current within-week carryover (negative after a
// mandatory premium overrun).
func (b *Budgeter) Pool() float64 { return b.pool }

// Violations counts hours whose realized spend exceeded the budget
// available to them — expected only when mandatory premium service forces
// an overrun (paper §V-B).
func (b *Budgeter) Violations() int { return b.violations }

// Hour returns the index of the next hour to be recorded.
func (b *Budgeter) Hour() int { return b.next }

// Spent returns the cumulative realized spend.
func (b *Budgeter) Spent() float64 { return b.spent }

// Remaining returns monthly budget minus cumulative spend (may be negative
// when mandatory premium service overran the budget).
func (b *Budgeter) Remaining() float64 { return b.monthly - b.spent }

// Utilization returns spend as a fraction of the monthly budget (0 when the
// budget is zero).
func (b *Budgeter) Utilization() float64 {
	if b.monthly == 0 {
		return 0
	}
	return b.spent / b.monthly
}

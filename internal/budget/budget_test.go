package budget

import (
	"bytes"
	"encoding/json"
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"billcap/internal/timeseries"
)

func near(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func uniformPred(hours int) timeseries.Series {
	p := make(timeseries.Series, hours)
	for i := range p {
		p[i] = 1
	}
	return p
}

func TestNewValidation(t *testing.T) {
	if _, err := New(-1, uniformPred(10)); err == nil {
		t.Error("negative budget accepted")
	}
	if _, err := New(100, nil); err == nil {
		t.Error("empty prediction accepted")
	}
	if _, err := New(100, timeseries.Series{1, -2}); err == nil {
		t.Error("negative prediction accepted")
	}
}

func TestSharesSumToMonthly(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		hours := 24 + r.Intn(720)
		pred := make(timeseries.Series, hours)
		for i := range pred {
			pred[i] = r.Float64() * 1e6
		}
		monthly := 1e5 + r.Float64()*1e7
		b, err := New(monthly, pred)
		if err != nil {
			return false
		}
		sum := 0.0
		for h := 0; h < hours; h++ {
			sum += b.Share(h)
		}
		return near(sum, monthly, 1e-6*monthly)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestZeroPredictionUniform(t *testing.T) {
	b, err := New(240, make(timeseries.Series, 24))
	if err != nil {
		t.Fatal(err)
	}
	for h := 0; h < 24; h++ {
		if !near(b.Share(h), 10, 1e-12) {
			t.Fatalf("share(%d) = %v, want 10", h, b.Share(h))
		}
	}
}

func TestSharesProportionalToPrediction(t *testing.T) {
	b, err := New(300, timeseries.Series{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{50, 100, 150}
	for h, w := range want {
		if !near(b.Share(h), w, 1e-9) {
			t.Errorf("share(%d) = %v, want %v", h, b.Share(h), w)
		}
	}
	if b.Share(-1) != 0 || b.Share(3) != 0 {
		t.Errorf("out-of-range share not zero")
	}
}

func TestCarryoverGrowsWhenUnderspending(t *testing.T) {
	// Spend nothing: available budget must grow hour over hour within a week
	// (the effect visible in the paper's Fig. 6).
	b, err := New(1680, uniformPred(336)) // 10 per hour, 2 weeks
	if err != nil {
		t.Fatal(err)
	}
	prev := -1.0
	for h := 0; h < 167; h++ {
		avail := b.HourlyBudget()
		if avail <= prev {
			t.Fatalf("hour %d: available %v did not grow from %v", h, avail, prev)
		}
		prev = avail
		if err := b.Record(0); err != nil {
			t.Fatal(err)
		}
	}
}

func TestCarryoverResetsAtWeekBoundary(t *testing.T) {
	b, err := New(3360, uniformPred(336)) // 10 per hour
	if err != nil {
		t.Fatal(err)
	}
	for h := 0; h < HoursPerWeek; h++ {
		if err := b.Record(0); err != nil {
			t.Fatal(err)
		}
	}
	// First hour of week 2: pool reset, only the base share is available.
	if got := b.HourlyBudget(); !near(got, 10, 1e-9) {
		t.Errorf("hour 168 available = %v, want base share 10", got)
	}
}

func TestDeficitCarriesWithinWeek(t *testing.T) {
	b, err := New(100, uniformPred(10)) // 10 per hour
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Record(25); err != nil { // overspend by 15
		t.Fatal(err)
	}
	// Next hour: 10 − 15 < 0 → clamped to 0.
	if got := b.HourlyBudget(); got != 0 {
		t.Errorf("post-overrun available = %v, want 0", got)
	}
	if err := b.Record(0); err != nil {
		t.Fatal(err)
	}
	// Deficit shrinks as shares accrue: pool = -15 + 10 = -5, so hour 2 has 5.
	if got := b.HourlyBudget(); !near(got, 5, 1e-9) {
		t.Errorf("hour 2 available = %v, want 5", got)
	}
}

func TestAccounting(t *testing.T) {
	b, err := New(100, uniformPred(4))
	if err != nil {
		t.Fatal(err)
	}
	if b.Horizon() != 4 || b.Monthly() != 100 {
		t.Errorf("horizon/monthly = %d/%v", b.Horizon(), b.Monthly())
	}
	spends := []float64{20, 30, 10, 50}
	for _, s := range spends {
		if err := b.Record(s); err != nil {
			t.Fatal(err)
		}
	}
	if b.Spent() != 110 || !near(b.Remaining(), -10, 1e-12) {
		t.Errorf("spent/remaining = %v/%v", b.Spent(), b.Remaining())
	}
	if !near(b.Utilization(), 1.1, 1e-12) {
		t.Errorf("utilization = %v", b.Utilization())
	}
	if err := b.Record(1); err == nil {
		t.Error("recording past the horizon accepted")
	}
	if b.Hour() != 4 {
		t.Errorf("hour = %d", b.Hour())
	}
}

func TestRecordNegativeSpend(t *testing.T) {
	b, _ := New(10, uniformPred(2))
	if err := b.Record(-1); err == nil {
		t.Error("negative spend accepted")
	}
}

func TestZeroBudgetUtilization(t *testing.T) {
	b, _ := New(0, uniformPred(2))
	if b.Utilization() != 0 {
		t.Errorf("zero-budget utilization = %v", b.Utilization())
	}
	if b.HourlyBudget() != 0 {
		t.Errorf("zero-budget hourly = %v", b.HourlyBudget())
	}
}

func TestConservationProperty(t *testing.T) {
	// Whatever the spending pattern, total shares handed out equal the
	// monthly budget, and Spent() equals the sum of recorded spends.
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		hours := 10 + r.Intn(300)
		pred := make(timeseries.Series, hours)
		for i := range pred {
			pred[i] = r.Float64()
		}
		monthly := 1000.0
		b, err := New(monthly, pred)
		if err != nil {
			return false
		}
		total := 0.0
		for h := 0; h < hours; h++ {
			avail := b.HourlyBudget()
			if avail < 0 {
				return false
			}
			spend := avail * r.Float64()
			total += spend
			if err := b.Record(spend); err != nil {
				return false
			}
		}
		// Spending at most the available budget every hour can never exceed
		// the monthly total (weekly resets only forfeit budget, never add).
		return near(b.Spent(), total, 1e-9*(1+total)) && b.Spent() <= monthly+1e-6
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestHourlyBudgetZeroAfterExhaustion(t *testing.T) {
	// Underspend every hour so the carryover pool is positive, then exhaust
	// the period: with no next hour to fund, HourlyBudget must report 0, not
	// the leftover pool.
	b, _ := New(10, uniformPred(2))
	if err := b.Record(1); err != nil {
		t.Fatal(err)
	}
	if err := b.Record(1); err != nil {
		t.Fatal(err)
	}
	if b.Pool() <= 0 {
		t.Fatalf("test needs a positive pool, got %v", b.Pool())
	}
	if got := b.HourlyBudget(); got != 0 {
		t.Errorf("HourlyBudget after exhaustion = %v, want 0", got)
	}
}

func TestRestoredDeficitCarriesWithinWeek(t *testing.T) {
	// A crash must not forgive a mid-week overrun: the restored budgeter owes
	// the same deficit to the rest of the week as one that never crashed.
	live, _ := New(1000, uniformPred(HoursPerWeek*2))
	twin, _ := New(1000, uniformPred(HoursPerWeek*2))
	spends := []float64{0, 30, 0, 9} // hour 1 overruns its ~2.98 share hard
	for _, s := range spends {
		if err := live.Record(s); err != nil {
			t.Fatal(err)
		}
		if err := twin.Record(s); err != nil {
			t.Fatal(err)
		}
	}
	if live.Pool() >= 0 {
		t.Fatalf("test needs a deficit pool, got %v", live.Pool())
	}

	restored, err := Restore(live.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if got, want := restored.Pool(), twin.Pool(); got != want {
		t.Errorf("restored pool %v, want %v", got, want)
	}
	if got, want := restored.HourlyBudget(), twin.HourlyBudget(); got != want {
		t.Errorf("restored HourlyBudget %v, want %v", got, want)
	}
	// The deficit keeps suppressing hourly budgets until the shares pay it
	// off, exactly as on the uncrashed twin.
	for h := len(spends); h < HoursPerWeek; h++ {
		if restored.HourlyBudget() != twin.HourlyBudget() {
			t.Fatalf("hour %d: restored budget %v, twin %v", h, restored.HourlyBudget(), twin.HourlyBudget())
		}
		if err := restored.Record(0); err != nil {
			t.Fatal(err)
		}
		if err := twin.Record(0); err != nil {
			t.Fatal(err)
		}
	}
	// Week boundary: both reset the pool.
	if restored.Pool() != 0 || twin.Pool() != 0 {
		t.Errorf("pools after week boundary: restored %v, twin %v, want 0", restored.Pool(), twin.Pool())
	}
}

func TestRestoredExhaustedPeriodStaysExhausted(t *testing.T) {
	// The round-trip extension of TestHourlyBudgetZeroAfterExhaustion: an
	// exhausted ledger must come back exhausted — no budget for a phantom
	// next hour, and Record still refuses.
	b, _ := New(10, uniformPred(2))
	if err := b.Record(1); err != nil {
		t.Fatal(err)
	}
	if err := b.Record(1); err != nil {
		t.Fatal(err)
	}
	restored, err := Restore(b.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if got := restored.HourlyBudget(); got != 0 {
		t.Errorf("restored HourlyBudget after exhaustion = %v, want 0", got)
	}
	if err := restored.Record(1); err == nil {
		t.Error("restored exhausted budgeter accepted another hour")
	}
	if got, want := restored.Spent(), b.Spent(); got != want {
		t.Errorf("restored spent %v, want %v", got, want)
	}
}

func TestRestoreValidation(t *testing.T) {
	good := func() State {
		b, _ := New(100, uniformPred(4))
		b.Record(10)
		return b.Snapshot()
	}
	cases := map[string]func(*State){
		"NaN monthly":     func(st *State) { st.MonthlyUSD = math.NaN() },
		"negative spend":  func(st *State) { st.SpentUSD = -1 },
		"empty shares":    func(st *State) { st.SharesUSD = nil },
		"cursor past end": func(st *State) { st.NextHour = len(st.SharesUSD) + 1 },
		"negative cursor": func(st *State) { st.NextHour = -1 },
		"Inf pool":        func(st *State) { st.PoolUSD = math.Inf(1) },
		"NaN share":       func(st *State) { st.SharesUSD[2] = math.NaN() },
	}
	for name, corrupt := range cases {
		st := good()
		corrupt(&st)
		if _, err := Restore(st); err == nil {
			t.Errorf("%s: corrupt ledger accepted", name)
		}
	}
}

// TestCrashReplayIndistinguishable is the property the WAL layer builds on:
// snapshot at any point of any spend sequence, restore, replay the remaining
// spends — the final ledger must be byte-identical (JSON of State) to one
// that never crashed.
func TestCrashReplayIndistinguishable(t *testing.T) {
	rng := rand.New(rand.NewSource(20260808))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		hours := 1 + r.Intn(3*HoursPerWeek)
		pred := make(timeseries.Series, hours)
		for i := range pred {
			pred[i] = r.Float64() * 10
		}
		monthly := r.Float64() * 1e6
		spends := make([]float64, hours)
		for i := range spends {
			spends[i] = r.Float64() * monthly / float64(hours) * 2
		}
		crashAt := r.Intn(hours + 1)

		uncrashed, err := New(monthly, pred)
		if err != nil {
			t.Fatal(err)
		}
		crashed, err := New(monthly, pred)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range spends {
			if err := uncrashed.Record(s); err != nil {
				t.Fatal(err)
			}
		}
		for _, s := range spends[:crashAt] {
			if err := crashed.Record(s); err != nil {
				t.Fatal(err)
			}
		}
		snap, err := json.Marshal(crashed.Snapshot())
		if err != nil {
			t.Fatal(err)
		}
		var st State
		if err := json.Unmarshal(snap, &st); err != nil {
			t.Fatal(err)
		}
		restored, err := Restore(st)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range spends[crashAt:] {
			if err := restored.Record(s); err != nil {
				t.Fatal(err)
			}
		}
		a, err := json.Marshal(uncrashed.Snapshot())
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(restored.Snapshot())
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Logf("seed %d crashAt %d:\nuncrashed %s\nrestored  %s", seed, crashAt, a, b)
			return false
		}
		return true
	}
	cfg := &quick.Config{
		MaxCount: 60,
		Values:   func(vs []reflect.Value, _ *rand.Rand) { vs[0] = reflect.ValueOf(rng.Int63()) },
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

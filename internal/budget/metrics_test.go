package budget

import (
	"strings"
	"testing"

	"billcap/internal/obs"
	"billcap/internal/timeseries"
)

func TestLedgerObservability(t *testing.T) {
	b, err := New(100, timeseries.Series{1, 1, 1, 1}) // 25 $/h shares
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	b.SetMetrics(NewMetrics(reg))

	if err := b.Record(10); err != nil { // 15 under → pool +15
		t.Fatal(err)
	}
	if got := b.Pool(); got != 15 {
		t.Fatalf("pool = %v, want 15", got)
	}
	if b.Violations() != 0 {
		t.Fatalf("violations = %d, want 0", b.Violations())
	}
	// Hour 2 has 25+15=40 available; spending 50 is a violation.
	if err := b.Record(50); err != nil {
		t.Fatal(err)
	}
	if b.Violations() != 1 {
		t.Fatalf("violations = %d, want 1", b.Violations())
	}
	if got := b.Pool(); got != -10 {
		t.Fatalf("pool = %v, want -10", got)
	}

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"billcap_budget_hours_total 2",
		"billcap_budget_violation_hours_total 1",
		"billcap_budget_pool_usd -10",
		"billcap_budget_spent_usd 60",
		"billcap_budget_remaining_usd 40",
		"billcap_budget_hourly_usd 15", // hour 3: share 25 + pool −10
		"billcap_budget_utilization_ratio 0.6",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
}

func TestLedgerNoMetricsStillCounts(t *testing.T) {
	b, err := New(10, timeseries.Series{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Record(9); err != nil { // available 5 → violation
		t.Fatal(err)
	}
	if b.Violations() != 1 {
		t.Fatalf("violations = %d, want 1", b.Violations())
	}
}

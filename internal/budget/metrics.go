package budget

import "billcap/internal/obs"

// Metrics exposes the budgeter's carry-forward ledger (paper §III) as
// gauges: how much carryover the week holds, how much of the month is
// spent, and how often hours overran their allocation. Attach with
// SetMetrics; Record then keeps the gauges current.
type Metrics struct {
	hourly      *obs.Gauge
	pool        *obs.Gauge
	spent       *obs.Gauge
	remaining   *obs.Gauge
	utilization *obs.Gauge
	hours       *obs.Counter
	violations  *obs.Counter
}

// NewMetrics registers the budget metrics on reg.
func NewMetrics(reg *obs.Registry) *Metrics {
	return &Metrics{
		hourly: reg.Gauge("billcap_budget_hourly_usd",
			"Budget available to the next invocation hour (share plus carryover)."),
		pool: reg.Gauge("billcap_budget_pool_usd",
			"Within-week carry-forward pool; negative after a mandatory overrun."),
		spent:     reg.Gauge("billcap_budget_spent_usd", "Cumulative realized spend this budgeting period."),
		remaining: reg.Gauge("billcap_budget_remaining_usd", "Monthly budget minus cumulative spend."),
		utilization: reg.Gauge("billcap_budget_utilization_ratio",
			"Spend as a fraction of the monthly budget."),
		hours: reg.Counter("billcap_budget_hours_total", "Invocation hours recorded into the ledger."),
		violations: reg.Counter("billcap_budget_violation_hours_total",
			"Hours whose realized spend exceeded their available budget."),
	}
}

// SetMetrics attaches (or, with nil, detaches) gauges and seeds them with
// the current ledger state. Not safe to call concurrently with Record.
func (b *Budgeter) SetMetrics(m *Metrics) {
	b.metrics = m
	if m != nil {
		m.set(b)
	}
}

// sync is called once per recorded hour.
func (m *Metrics) sync(b *Budgeter) {
	if m == nil {
		return
	}
	m.hours.Inc()
	m.set(b)
}

func (m *Metrics) set(b *Budgeter) {
	m.hourly.Set(b.HourlyBudget())
	m.pool.Set(b.Pool())
	m.spent.Set(b.Spent())
	m.remaining.Set(b.Remaining())
	m.utilization.Set(b.Utilization())
}

package piecewise

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"billcap/internal/lp"
	"billcap/internal/milp"
)

func near(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func paperDC1() StepFunction {
	// Data Center 1, Pricing Policy 1 (paper §VII-B): prices
	// 10.00, 13.90, 15.00, 22.00, 24.00 $/MWh with the second step at 200 MW.
	return MustNew([]float64{200, 300, 450, 600}, []float64{10.00, 13.90, 15.00, 22.00, 24.00})
}

func TestNewValidation(t *testing.T) {
	if _, err := New([]float64{1, 2}, []float64{1, 2}); err == nil {
		t.Error("rate/threshold count mismatch not rejected")
	}
	if _, err := New([]float64{2, 1}, []float64{1, 2, 3}); err == nil {
		t.Error("unsorted thresholds not rejected")
	}
	if _, err := New([]float64{0, 1}, []float64{1, 2, 3}); err == nil {
		t.Error("zero threshold not rejected")
	}
	if _, err := New([]float64{1, 1}, []float64{1, 2, 3}); err == nil {
		t.Error("duplicate thresholds not rejected")
	}
	if _, err := New([]float64{1, 2}, []float64{1, 2, 3}); err != nil {
		t.Errorf("valid function rejected: %v", err)
	}
}

func TestEvalSegments(t *testing.T) {
	f := paperDC1()
	cases := []struct {
		load, want float64
	}{
		{0, 10}, {199.999, 10}, {200, 13.9}, {250, 13.9},
		{300, 15}, {449, 15}, {450, 22}, {599, 22}, {600, 24}, {5000, 24},
	}
	for _, c := range cases {
		if got := f.Eval(c.load); !near(got, c.want, 1e-12) {
			t.Errorf("Eval(%v) = %v, want %v", c.load, got, c.want)
		}
	}
	if f.NumSegments() != 5 {
		t.Errorf("NumSegments = %d, want 5", f.NumSegments())
	}
}

func TestFlat(t *testing.T) {
	f := Flat(16.98)
	for _, load := range []float64{0, 1, 1e6} {
		if got := f.Eval(load); !near(got, 16.98, 1e-12) {
			t.Errorf("Flat.Eval(%v) = %v", load, got)
		}
	}
	if f.NumSegments() != 1 {
		t.Errorf("Flat NumSegments = %d", f.NumSegments())
	}
}

func TestMeanMinMax(t *testing.T) {
	f := paperDC1()
	// Paper: Min-Only (Avg) price for DC1 is 16.98 = (10+13.9+15+22+24)/5.
	if got := f.Mean(); !near(got, 16.98, 1e-10) {
		t.Errorf("Mean = %v, want 16.98", got)
	}
	if got := f.Min(); !near(got, 10, 1e-12) {
		t.Errorf("Min = %v, want 10", got)
	}
	if got := f.Max(); !near(got, 24, 1e-12) {
		t.Errorf("Max = %v, want 24", got)
	}
}

func TestScalePolicy2And3(t *testing.T) {
	f := paperDC1()
	p2 := f.Scale(2, 200)
	p3 := f.Scale(3, 200)
	want2 := []float64{10.00, 17.80, 20.00, 34.00, 38.00}
	want3 := []float64{10.00, 21.70, 25.00, 46.00, 52.00}
	for k, w := range want2 {
		if got := p2.Rates()[k]; !near(got, w, 1e-10) {
			t.Errorf("Policy2 rate[%d] = %v, want %v", k, got, w)
		}
	}
	for k, w := range want3 {
		if got := p3.Rates()[k]; !near(got, w, 1e-10) {
			t.Errorf("Policy3 rate[%d] = %v, want %v", k, got, w)
		}
	}
}

func TestSegmentBounds(t *testing.T) {
	f := paperDC1()
	lo, hi := f.SegmentBounds(0)
	if lo != 0 || hi != 200 {
		t.Errorf("segment 0 = [%v,%v), want [0,200)", lo, hi)
	}
	lo, hi = f.SegmentBounds(4)
	if lo != 600 || !math.IsInf(hi, 1) {
		t.Errorf("segment 4 = [%v,%v), want [600,inf)", lo, hi)
	}
}

// encodeAndMinimize builds min Σ rate_j p_j subject to p = pFix via the
// encoding and returns the optimal cost, which must equal f(pFix+d)·pFix
// whenever pFix keeps the load strictly inside a segment.
func encodeAndMinimize(t *testing.T, f StepFunction, d, pMax, pFix float64) (float64, bool) {
	t.Helper()
	m := milp.NewProblem()
	e, err := Encode(m, f, d, pMax, 0, "dc")
	if err != nil {
		return 0, false
	}
	for j, v := range e.SegPower {
		m.SetObjectiveCoef(v, e.SegRate[j])
	}
	m.AddConstraint([]lp.Term{{Var: e.Power, Coef: 1}}, lp.EQ, pFix)
	if pFix > 0 {
		m.AddConstraint(e.SelectorTerms(), lp.EQ, 1)
	}
	s := m.Solve()
	if s.Status != milp.Optimal {
		return 0, false
	}
	return s.Objective, true
}

func TestEncodeMatchesEval(t *testing.T) {
	f := paperDC1()
	d := 180.0
	pMax := 500.0
	for _, p := range []float64{0, 5, 19, 50, 119, 150, 269, 300, 419, 450} {
		got, ok := encodeAndMinimize(t, f, d, pMax, p)
		if !ok {
			t.Fatalf("p=%v: no optimal solution", p)
		}
		want := f.Eval(d+p) * p
		if !near(got, want, 1e-4*(1+want)) {
			t.Errorf("p=%v: encoded cost %v, want %v (rate %v)", p, got, want, f.Eval(d+p))
		}
	}
}

func TestEncodeUnreachableHighSegment(t *testing.T) {
	// With pMax = 10 and d = 0 only the first segment is reachable.
	f := paperDC1()
	m := milp.NewProblem()
	e, err := Encode(m, f, 0, 10, 0, "dc")
	if err != nil {
		t.Fatal(err)
	}
	if len(e.SegPower) != 1 || e.Segments[0] != 0 {
		t.Fatalf("reachable segments = %v, want just segment 0", e.Segments)
	}
}

func TestEncodeSkipsSegmentsBelowDemand(t *testing.T) {
	// d = 460 sits in segment 3; segments 0-2 are unreachable.
	f := paperDC1()
	m := milp.NewProblem()
	e, err := Encode(m, f, 460, 1000, 0, "dc")
	if err != nil {
		t.Fatal(err)
	}
	if len(e.Segments) != 2 || e.Segments[0] != 3 || e.Segments[1] != 4 {
		t.Fatalf("reachable segments = %v, want [3 4]", e.Segments)
	}
}

func TestEncodeErrors(t *testing.T) {
	f := paperDC1()
	m := milp.NewProblem()
	if _, err := Encode(m, f, -1, 10, 0, "dc"); err == nil {
		t.Error("negative demand not rejected")
	}
	if _, err := Encode(m, f, 0, 0, 0, "dc"); err == nil {
		t.Error("zero pMax not rejected")
	}
}

func TestEncodePropertyRandom(t *testing.T) {
	cfg := &quick.Config{MaxCount: 80}
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		// Random increasing step function with 2-6 segments.
		nseg := 2 + r.Intn(5)
		thr := make([]float64, nseg-1)
		cur := 50 + 100*r.Float64()
		for i := range thr {
			thr[i] = cur
			cur += 50 + 150*r.Float64()
		}
		rates := make([]float64, nseg)
		rate := 5 + 10*r.Float64()
		for i := range rates {
			rates[i] = rate
			rate += 10 * r.Float64()
		}
		f := MustNew(thr, rates)
		d := 400 * r.Float64()
		pMax := 50 + 400*r.Float64()
		// Pick p strictly inside a segment: draw and nudge off breakpoints.
		p := pMax * r.Float64()
		for _, tt := range thr {
			if math.Abs(d+p-tt) < 1e-3 {
				p = math.Max(0, p-1e-2)
			}
		}
		got, ok := encodeAndMinimize(t, f, d, pMax, p)
		if !ok {
			t.Logf("seed %d: solve failed (d=%v pMax=%v p=%v)", seed, d, pMax, p)
			return false
		}
		want := f.Eval(d+p) * p
		if !near(got, want, 1e-4*(1+math.Abs(want))) {
			t.Logf("seed %d: got %v want %v", seed, got, want)
			return false
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestNewRejectsNonFinite(t *testing.T) {
	nan, inf := math.NaN(), math.Inf(1)
	cases := []struct {
		name       string
		thresholds []float64
		rates      []float64
	}{
		{"NaN threshold", []float64{nan, 200}, []float64{1, 2, 3}},
		{"NaN threshold alone", []float64{nan}, []float64{1, 2}},
		{"+Inf threshold", []float64{100, inf}, []float64{1, 2, 3}},
		{"-Inf threshold", []float64{-inf, 100}, []float64{1, 2, 3}},
		{"NaN rate", []float64{100}, []float64{1, nan}},
		{"+Inf rate", []float64{100}, []float64{inf, 2}},
		{"-Inf rate", []float64{100}, []float64{1, -inf}},
		{"NaN flat rate", nil, []float64{nan}},
	}
	for _, c := range cases {
		if _, err := New(c.thresholds, c.rates); err == nil {
			t.Errorf("%s accepted", c.name)
		}
	}
	if _, err := New([]float64{100}, []float64{1, 2}); err != nil {
		t.Errorf("finite function rejected: %v", err)
	}
}

// Package piecewise implements right-open step functions and their exact
// encoding into mixed integer linear programs.
//
// The electricity price in a local power market is a step function of the
// total regional load (paper §II, Fig. 1): rate r_k applies while the load is
// in [t_{k-1}, t_k). The data center's hourly cost r_k·p is therefore a
// non-convex piecewise-linear function of its own power draw p, which is made
// MILP-representable with one binary per segment (the transformation of the
// paper's reference [22]).
package piecewise

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"billcap/internal/lp"
	"billcap/internal/milp"
)

// StepFunction maps a nonnegative load to a rate. Segment k (0-based) covers
// loads in [threshold[k-1], threshold[k]) with threshold[-1] = 0 and
// threshold[len-1] = +Inf implied; rates has exactly one more entry than
// thresholds... see New for the precise shape.
type StepFunction struct {
	// thresholds are the interior breakpoints, strictly increasing, > 0.
	thresholds []float64
	// rates[k] applies on [thresholds[k-1], thresholds[k]), with the implied
	// outer bounds 0 and +Inf. len(rates) == len(thresholds)+1.
	rates []float64
}

// New builds a step function from interior breakpoints and per-segment rates.
// rates[k] applies on [thresholds[k-1], thresholds[k]); the first segment
// starts at 0 and the last extends to +Inf, so len(rates) must equal
// len(thresholds)+1. Thresholds must be strictly increasing and positive.
func New(thresholds, rates []float64) (StepFunction, error) {
	if len(rates) != len(thresholds)+1 {
		return StepFunction{}, fmt.Errorf("piecewise: %d rates for %d thresholds, want %d",
			len(rates), len(thresholds), len(thresholds)+1)
	}
	// Check finiteness first: NaN slips through both the sortedness check
	// (every comparison involving NaN is false) and `t <= 0` below.
	for _, t := range thresholds {
		if math.IsNaN(t) || math.IsInf(t, 0) {
			return StepFunction{}, fmt.Errorf("piecewise: non-finite threshold %v", t)
		}
	}
	for _, r := range rates {
		if math.IsNaN(r) || math.IsInf(r, 0) {
			return StepFunction{}, fmt.Errorf("piecewise: non-finite rate %v", r)
		}
	}
	if !sort.Float64sAreSorted(thresholds) {
		return StepFunction{}, errors.New("piecewise: thresholds not sorted")
	}
	for i, t := range thresholds {
		if t <= 0 || (i > 0 && t == thresholds[i-1]) {
			return StepFunction{}, errors.New("piecewise: thresholds must be strictly increasing and positive")
		}
	}
	return StepFunction{
		thresholds: append([]float64(nil), thresholds...),
		rates:      append([]float64(nil), rates...),
	}, nil
}

// MustNew is New but panics on error; for package-level policy literals.
func MustNew(thresholds, rates []float64) StepFunction {
	f, err := New(thresholds, rates)
	if err != nil {
		panic(err)
	}
	return f
}

// Flat returns the constant function rate.
func Flat(rate float64) StepFunction {
	return StepFunction{rates: []float64{rate}}
}

// NumSegments returns the number of constant segments.
func (f StepFunction) NumSegments() int { return len(f.rates) }

// Rates returns a copy of the per-segment rates.
func (f StepFunction) Rates() []float64 { return append([]float64(nil), f.rates...) }

// Thresholds returns a copy of the interior breakpoints.
func (f StepFunction) Thresholds() []float64 { return append([]float64(nil), f.thresholds...) }

// SegmentBounds returns the half-open interval [lo, hi) of segment k, with
// hi = +Inf for the last segment.
func (f StepFunction) SegmentBounds(k int) (lo, hi float64) {
	lo = 0.0
	if k > 0 {
		lo = f.thresholds[k-1]
	}
	hi = math.Inf(1)
	if k < len(f.thresholds) {
		hi = f.thresholds[k]
	}
	return lo, hi
}

// Segment returns the index of the segment containing load.
func (f StepFunction) Segment(load float64) int {
	// The common case has ≤ 5 segments; a linear scan is fine.
	for k, t := range f.thresholds {
		if load < t {
			return k
		}
	}
	return len(f.rates) - 1
}

// Eval returns the rate that applies at the given load.
func (f StepFunction) Eval(load float64) float64 { return f.rates[f.Segment(load)] }

// Mean returns the arithmetic mean of the segment rates (used by the
// Min-Only (Avg) baseline, which flattens the policy to its average price).
func (f StepFunction) Mean() float64 {
	s := 0.0
	for _, r := range f.rates {
		s += r
	}
	return s / float64(len(f.rates))
}

// Min returns the lowest segment rate (Min-Only (Low) baseline).
func (f StepFunction) Min() float64 {
	m := f.rates[0]
	for _, r := range f.rates[1:] {
		if r < m {
			m = r
		}
	}
	return m
}

// Max returns the highest segment rate.
func (f StepFunction) Max() float64 {
	m := f.rates[0]
	for _, r := range f.rates[1:] {
		if r > m {
			m = r
		}
	}
	return m
}

// Scale returns a copy with every rate above the given load threshold having
// its increase over the base (first) rate multiplied by mult. This is how the
// paper derives Pricing Policies 2 and 3 from Policy 1: "double and triple
// the price increase of Policy 1 when the load is higher than 200 MW".
func (f StepFunction) Scale(mult, aboveLoad float64) StepFunction {
	out := StepFunction{
		thresholds: append([]float64(nil), f.thresholds...),
		rates:      append([]float64(nil), f.rates...),
	}
	base := f.rates[0]
	for k := range out.rates {
		lo, _ := f.SegmentBounds(k)
		if lo >= aboveLoad {
			out.rates[k] = base + mult*(f.rates[k]-base)
		}
	}
	return out
}

// boundaryEps keeps encoded segment powers strictly inside their half-open
// price interval [lo, hi): without it the optimizer would park the load
// exactly on a breakpoint and claim the cheaper side's rate while the market
// would already bill the next step. Loads are in MW, so 1e-6 is one watt.
const boundaryEps = 1e-6

// SegPlan is one reachable segment of an encoding for a given hour: the
// original segment index and the bounds [Lo, Hi] the segment-power variable
// must respect when selected. PlanSegments derives the plan; Encode realizes
// it as rows, and the cross-hour solve cache compares plans across hours to
// decide whether a cached skeleton can be patched instead of rebuilt.
type SegPlan struct {
	// Seg is the original segment index in the step function.
	Seg int
	// Lo, Hi bound the encoded segment power (already demand-shifted and
	// margin-shrunk): Lo = max(0, t_{k-1}−d), Hi = min(pMax, t_k−d−margins).
	Lo, Hi float64
	// Rate is the segment's price.
	Rate float64
}

// PlanSegments computes the reachable-segment plan Encode would realize for
// the price function f at background demand d with a power variable in
// [0, pMax]. An empty reachable set is an error, exactly as in Encode.
func PlanSegments(f StepFunction, d, pMax, upperMargin float64) ([]SegPlan, error) {
	if d < 0 {
		return nil, fmt.Errorf("piecewise: negative background demand %v", d)
	}
	if pMax <= 0 {
		return nil, fmt.Errorf("piecewise: nonpositive pMax %v", pMax)
	}
	if upperMargin < 0 {
		return nil, fmt.Errorf("piecewise: negative upper margin %v", upperMargin)
	}
	var out []SegPlan
	for k := 0; k < f.NumSegments(); k++ {
		lo, hi := f.SegmentBounds(k)
		if hi <= d {
			// The whole segment lies below the background demand alone; a
			// nonnegative p can only move the regional load upward.
			continue
		}
		segLo := math.Max(0, lo-d)
		segHi := math.Min(pMax, hi-d-boundaryEps-upperMargin)
		if segHi < segLo {
			// Segment starts above d+pMax: out of reach.
			continue
		}
		out = append(out, SegPlan{Seg: k, Lo: segLo, Hi: segHi, Rate: f.rates[k]})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("piecewise: no reachable segment for d=%v pMax=%v", d, pMax)
	}
	return out, nil
}

// Encoded is the set of MILP variables produced by Encode for one cost term
// rate(p+d)·p.
type Encoded struct {
	// Power is the index of the continuous variable p (the data center's own
	// draw), tied to the segment variables by an equality row.
	Power int
	// SegPower[j] is the power routed through reachable segment j.
	SegPower []int
	// SegBin[j] is the binary selecting reachable segment j.
	SegBin []int
	// SegRate[j] is the price of reachable segment j.
	SegRate []float64
	// Segments[j] is the original segment index of reachable segment j.
	Segments []int
	// SegLo, SegHi are the bounds realized for reachable segment j (the plan
	// values; SegLo may be 0, in which case no lower row exists).
	SegLo, SegHi []float64
	// HiRow[j] is the constraint index of p_j ≤ hi_j·z_j; LoRow[j] that of
	// p_j ≥ lo_j·z_j, or −1 when lo_j = 0 and the row was never added. They
	// let a cached model skeleton be re-pointed at a new hour's bounds via
	// Patch without rebuilding the problem.
	HiRow, LoRow []int
}

// CostTerms returns the sparse terms Σ_j rate_j·segPower_j representing the
// encoded cost, usable both in objectives and in budget rows.
func (e Encoded) CostTerms() []lp.Term {
	out := make([]lp.Term, len(e.SegPower))
	for j, v := range e.SegPower {
		out[j] = lp.Term{Var: v, Coef: e.SegRate[j]}
	}
	return out
}

// SelectorTerms returns the sparse terms Σ_j z_j over the segment binaries,
// for tying segment selection to an on/off indicator (Σ z = y).
func (e Encoded) SelectorTerms() []lp.Term {
	out := make([]lp.Term, len(e.SegBin))
	for j, v := range e.SegBin {
		out[j] = lp.Term{Var: v, Coef: 1}
	}
	return out
}

// Encode adds to m the exact MILP model of the price function f applied at
// background demand d, for a power variable p ∈ [0, pMax]:
//
//	p = Σ_j p_j,   lo_j·z_j ≤ p_j ≤ hi_j·z_j,   Σ_j z_j ≤ 1 (selector)
//
// where segment j of f is reachable iff [lo_j, hi_j] = [max(0, t_{j-1}−d),
// min(pMax, t_j−d−upperMargin)] is a nonempty interval. upperMargin shrinks
// every segment's top so that a realization sitting up to that much above
// the planned power (integer server/switch rounding) still lands in the
// planned price segment rather than crossing into the next, dearer one.
// The caller chooses what Σ z_j must equal (1, or an on/off binary) via a
// constraint over SelectorTerms; Encode itself adds Σ z_j ≤ 1 only.
//
// The cost rate(p+d)·p is then exactly Σ_j rate_j·p_j for any feasible
// point with Σ z_j = 1, and 0 when all z_j = 0 (which forces p = 0).
func Encode(m *milp.Problem, f StepFunction, d, pMax, upperMargin float64, name string) (Encoded, error) {
	plan, err := PlanSegments(f, d, pMax, upperMargin)
	if err != nil {
		return Encoded{}, err
	}
	var e Encoded
	e.Power = m.AddVar(name+".p", 0)

	for _, sp := range plan {
		pv := m.AddVar(fmt.Sprintf("%s.p%d", name, sp.Seg), 0)
		zv := m.AddBinVar(fmt.Sprintf("%s.z%d", name, sp.Seg), 0)
		// p_k ≤ hi·z_k and p_k ≥ lo·z_k.
		hiRow := m.NumConstraints()
		m.AddConstraint([]lp.Term{{Var: pv, Coef: 1}, {Var: zv, Coef: -sp.Hi}}, lp.LE, 0)
		loRow := -1
		if sp.Lo > 0 {
			loRow = m.NumConstraints()
			m.AddConstraint([]lp.Term{{Var: pv, Coef: 1}, {Var: zv, Coef: -sp.Lo}}, lp.GE, 0)
		}
		e.SegPower = append(e.SegPower, pv)
		e.SegBin = append(e.SegBin, zv)
		e.SegRate = append(e.SegRate, sp.Rate)
		e.Segments = append(e.Segments, sp.Seg)
		e.SegLo = append(e.SegLo, sp.Lo)
		e.SegHi = append(e.SegHi, sp.Hi)
		e.HiRow = append(e.HiRow, hiRow)
		e.LoRow = append(e.LoRow, loRow)
	}

	// p − Σ p_j = 0.
	terms := []lp.Term{{Var: e.Power, Coef: 1}}
	for _, v := range e.SegPower {
		terms = append(terms, lp.Term{Var: v, Coef: -1})
	}
	m.AddConstraint(terms, lp.EQ, 0)
	// At most one segment active; the caller pins the sum to its indicator.
	m.AddConstraint(e.SelectorTerms(), lp.LE, 1)
	return e, nil
}

// Clone deep-copies the encoding's slices, so a copy used with a cloned
// model skeleton can be Patched without disturbing the cached original.
func (e Encoded) Clone() Encoded {
	e.SegPower = append([]int(nil), e.SegPower...)
	e.SegBin = append([]int(nil), e.SegBin...)
	e.SegRate = append([]float64(nil), e.SegRate...)
	e.Segments = append([]int(nil), e.Segments...)
	e.SegLo = append([]float64(nil), e.SegLo...)
	e.SegHi = append([]float64(nil), e.SegHi...)
	e.HiRow = append([]int(nil), e.HiRow...)
	e.LoRow = append([]int(nil), e.LoRow...)
	return e
}

// Patch re-points an encoding (cloned from a cached skeleton) at a new
// hour's segment plan by rewriting the z-coefficients of the hi/lo rows in
// place. It succeeds only when the plan has the same shape the encoding was
// built with — same reachable segments and the same lo-row pattern — because
// only then do rows exist for exactly the bounds that must change; any shape
// drift returns false and the caller rebuilds from scratch.
func (e *Encoded) Patch(m *milp.Problem, plan []SegPlan) bool {
	if len(plan) != len(e.Segments) {
		return false
	}
	for j, sp := range plan {
		if sp.Seg != e.Segments[j] || (sp.Lo > 0) != (e.LoRow[j] >= 0) {
			return false
		}
	}
	for j, sp := range plan {
		m.SetCoef(e.HiRow[j], e.SegBin[j], -sp.Hi)
		if e.LoRow[j] >= 0 {
			m.SetCoef(e.LoRow[j], e.SegBin[j], -sp.Lo)
		}
		e.SegLo[j], e.SegHi[j] = sp.Lo, sp.Hi
	}
	return true
}

package piecewise

import (
	"testing"

	"billcap/internal/milp"
)

// BenchmarkEncode measures building the segment-selection MILP structure
// for one five-level policy — done once per site per invocation period.
func BenchmarkEncode(b *testing.B) {
	f := paperDC1()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m := milp.NewProblem()
		if _, err := Encode(m, f, 180, 500, 0.2, "dc"); err != nil {
			b.Fatal(err)
		}
	}
}

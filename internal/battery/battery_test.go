package battery

import (
	"math"
	"testing"

	"billcap/internal/piecewise"
	"billcap/internal/pricing"
)

func near(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestNewValidation(t *testing.T) {
	if _, err := New(-1, 1, 1, 0.9); err == nil {
		t.Error("negative capacity accepted")
	}
	if _, err := New(1, -1, 1, 0.9); err == nil {
		t.Error("negative charge rate accepted")
	}
	if _, err := New(1, 1, 1, 0); err == nil {
		t.Error("zero efficiency accepted")
	}
	if _, err := New(1, 1, 1, 1.5); err == nil {
		t.Error("efficiency > 1 accepted")
	}
}

func TestChargeDischargeCycle(t *testing.T) {
	b, err := New(10, 5, 4, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	// Charge: 5 MW grid limited by rate, stores 4 MWh at 80%.
	got := b.Charge(100)
	if !near(got, 5, 1e-12) || !near(b.SoC(), 4, 1e-12) {
		t.Fatalf("charge drew %v, soc %v", got, b.SoC())
	}
	// Charge until full: room 6 MWh → grid 7.5 MW, but rate caps at 5.
	got = b.Charge(100)
	if !near(got, 5, 1e-12) || !near(b.SoC(), 8, 1e-12) {
		t.Fatalf("second charge drew %v, soc %v", got, b.SoC())
	}
	got = b.Charge(100) // room 2 MWh → grid 2.5 MW
	if !near(got, 2.5, 1e-12) || !near(b.SoC(), 10, 1e-12) {
		t.Fatalf("topping charge drew %v, soc %v", got, b.SoC())
	}
	if b.Charge(100) != 0 {
		t.Error("charged past capacity")
	}
	// Discharge: rate-limited at 4 MW.
	if got := b.Discharge(100); !near(got, 4, 1e-12) {
		t.Errorf("discharge gave %v", got)
	}
	// Drain the rest.
	if got := b.Discharge(100); !near(got, 4, 1e-12) {
		t.Errorf("second discharge gave %v", got)
	}
	if got := b.Discharge(100); !near(got, 2, 1e-12) || b.SoC() != 0 {
		t.Errorf("final discharge gave %v, soc %v", got, b.SoC())
	}
	if b.Discharge(1) != 0 {
		t.Error("discharged an empty battery")
	}
}

func TestChargeDischargeNoOps(t *testing.T) {
	b, _ := New(10, 5, 5, 1)
	if b.Charge(-1) != 0 || b.Charge(0) != 0 {
		t.Error("nonpositive charge did something")
	}
	if b.Discharge(-1) != 0 {
		t.Error("negative discharge did something")
	}
	var zero Battery
	if zero.Charge(5) != 0 {
		t.Error("zero-capacity battery charged")
	}
}

// Regression: `gridMW <= 0` is false for NaN, so before the explicit
// finiteness check math.Min propagated NaN into soc and the battery was
// poisoned for the rest of the run.
func TestChargeRejectsNonFinite(t *testing.T) {
	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		b, _ := New(10, 5, 5, 0.9)
		b.Charge(2)
		soc := b.SoC()
		if got := b.Charge(bad); got != 0 {
			t.Errorf("Charge(%v) = %v, want 0", bad, got)
		}
		if b.SoC() != soc || math.IsNaN(b.SoC()) {
			t.Errorf("Charge(%v) corrupted soc: %v", bad, b.SoC())
		}
	}
}

func TestDischargeRejectsNonFinite(t *testing.T) {
	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		b, _ := New(10, 5, 5, 0.9)
		b.Charge(2)
		soc := b.SoC()
		if got := b.Discharge(bad); got != 0 {
			t.Errorf("Discharge(%v) = %v, want 0", bad, got)
		}
		if b.SoC() != soc || math.IsNaN(b.SoC()) {
			t.Errorf("Discharge(%v) corrupted soc: %v", bad, b.SoC())
		}
	}
}

func TestSetSoCClamps(t *testing.T) {
	b, _ := New(10, 5, 5, 0.9)
	b.SetSoC(7)
	if b.SoC() != 7 {
		t.Errorf("SetSoC(7) → %v", b.SoC())
	}
	b.SetSoC(25)
	if b.SoC() != 10 {
		t.Errorf("SetSoC above capacity → %v, want clamp to 10", b.SoC())
	}
	b.SetSoC(math.NaN())
	if b.SoC() != 0 {
		t.Errorf("SetSoC(NaN) → %v, want 0", b.SoC())
	}
	b.SetSoC(-3)
	if b.SoC() != 0 {
		t.Errorf("SetSoC(-3) → %v, want 0", b.SoC())
	}
}

// thinPolicy has a price band so narrow that a lossy battery can never
// arbitrage it profitably — and its prices sit at or below $1/MWh, the
// range where the old finite idle sentinel (low=1, high=0) still fired the
// charge branch.
func thinPolicy() pricing.Policy {
	return pricing.Policy{
		Name: "thin", Location: "T",
		Fn: piecewise.MustNew([]float64{100}, []float64{0.90, 1.00}),
	}
}

// Regression: the idle sentinel used to be (low, high) = (1, 0), so any
// price ≤ $1/MWh — realistic once real-time or near-zero prices exist —
// still satisfied `price <= low` and charged at a guaranteed loss.
func TestIdleSentinelDoesNotChargeAtSubDollarPrices(t *testing.T) {
	b, _ := New(50, 20, 20, 0.5) // 50% efficiency: thin spread is a sure loss
	op := NewOperator(b, thinPolicy(), 500)
	// Warm the history past the cold-start branch so the quantile path with
	// its profitability floor is taken: spread 0.90–1.00, high*eff = 0.5 < low.
	for i := 0; i < 48; i++ {
		op.observe(0.90 + 0.10*float64(i%2))
	}
	grid, _ := op.Step(20, 30) // price 0.90 ≤ old sentinel low of 1
	if b.SoC() != 0 {
		t.Fatalf("idle operator charged %v MWh at a sub-dollar price", b.SoC())
	}
	if grid != 20 {
		t.Fatalf("grid = %v, want pass-through 20", grid)
	}
}

// Regression: the cold-start branch (< 24 h of history) derived thresholds
// from the policy band without the round-trip profitability floor, so a thin
// band with low efficiency arbitraged at a guaranteed loss all first day.
func TestColdStartAppliesProfitabilityFloor(t *testing.T) {
	b, _ := New(50, 20, 20, 0.5)
	op := NewOperator(b, thinPolicy(), 500)
	// No history at all: band thresholds would be low=0.925, high=0.975;
	// high*eff = 0.4875 < low, so the operator must idle.
	grid, _ := op.Step(20, 30) // price 0.90 ≤ band low
	if b.SoC() != 0 {
		t.Fatalf("cold-start operator charged %v MWh on an unprofitable band", b.SoC())
	}
	if grid != 20 {
		t.Fatalf("grid = %v, want pass-through 20", grid)
	}
}

func trapPolicy() pricing.Policy {
	return pricing.Policy{
		Name: "test", Location: "T",
		Fn: piecewise.MustNew([]float64{100, 200}, []float64{10, 20, 30}),
	}
}

func TestOperatorChargesWhenCheap(t *testing.T) {
	b, _ := New(50, 20, 20, 0.9)
	op := NewOperator(b, trapPolicy(), 80)
	// demand 40 + it 20 = 60: price 10 = min → charge. Headroom to the
	// 100 MW step is 40, to the cap 60, rate 20 → grid grows by 20.
	grid, price := op.Step(20, 40)
	if !near(grid, 40, 1e-9) {
		t.Errorf("grid = %v, want 40", grid)
	}
	if price != 10 {
		t.Errorf("price = %v, want to stay on the cheap step", price)
	}
	if b.SoC() <= 0 {
		t.Error("nothing stored")
	}
}

func TestOperatorChargeNeverCrossesStep(t *testing.T) {
	b, _ := New(50, 100, 100, 1)
	op := NewOperator(b, trapPolicy(), 500)
	// demand 70 + it 20 = 90: 10 MW below the 100 MW step. Charging must
	// stop at the boundary even though rate/cap/capacity would allow more.
	grid, price := op.Step(20, 70)
	if grid >= 30+1e-6 || price != 10 {
		t.Errorf("grid %v price %v: charging crossed the step", grid, price)
	}
}

func TestOperatorChargeRespectsCap(t *testing.T) {
	b, _ := New(50, 100, 100, 1)
	op := NewOperator(b, trapPolicy(), 25)
	grid, _ := op.Step(20, 40)
	if grid > 25+1e-9 {
		t.Errorf("grid %v exceeded the 25 MW cap", grid)
	}
}

func TestOperatorDischargesWhenDear(t *testing.T) {
	b, _ := New(50, 20, 15, 1)
	b.Charge(20) // 20 MWh stored
	op := NewOperator(b, trapPolicy(), 500)
	// demand 180 + it 30 = 210: price 30 = max → discharge up to 15 MW.
	grid, price := op.Step(30, 180)
	if !near(grid, 15, 1e-9) {
		t.Errorf("grid = %v, want 15", grid)
	}
	// The reduced draw (180+15=195) even drops the region below the 200 MW
	// step — discharging is doubly valuable for a price maker.
	if price != 20 {
		t.Errorf("price = %v, want 20 after the discharge", price)
	}
}

func TestOperatorIdlesMidBand(t *testing.T) {
	b, _ := New(50, 20, 20, 1)
	b.Charge(10)
	op := NewOperator(b, trapPolicy(), 500)
	// demand 120 + it 30 = 150: price 20 sits between the thresholds.
	soc := b.SoC()
	grid, price := op.Step(30, 120)
	if grid != 30 || price != 20 {
		t.Errorf("grid %v price %v, want pass-through", grid, price)
	}
	if b.SoC() != soc {
		t.Errorf("state of charge moved while idling")
	}
}

func TestArbitrageSavesMoneyOverACycle(t *testing.T) {
	// A synthetic day: 12 cheap hours then 12 dear hours at constant IT
	// draw. With the battery the bill must be lower than without.
	b, _ := New(100, 10, 10, 0.85)
	op := NewOperator(b, trapPolicy(), 500)
	it := 30.0
	var withB, without float64
	for h := 0; h < 24; h++ {
		demand := 40.0 // price 10 at 70 MW total
		if h >= 12 {
			demand = 190 // price 30 at 220 MW total
		}
		without += trapPolicy().Price(demand+it) * it
		grid, price := op.Step(it, demand)
		withB += price * grid
	}
	if withB >= without {
		t.Errorf("battery bill %v not below baseline %v", withB, without)
	}
}

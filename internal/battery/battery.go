// Package battery adds per-site stored energy to the bill-capping system,
// after the related work the paper discusses (§VIII, refs [37] Urgaonkar et
// al. and [38] Govindan et al.: "reducing server power bill by tapping into
// stored energy in data centers").
//
// Each site owns a battery (UPS-scale energy store). Every hour, after the
// dispatcher has fixed the site's IT draw, an arbitrage operator decides to
// charge (buy extra energy now) or discharge (serve part of the draw from
// the store), driven by where the hour's locational price sits between the
// site's cheapest and dearest price levels. Charging is refused when the
// extra draw would push the region across a price step or the site over its
// power cap — price-maker awareness applies to batteries too.
package battery

import (
	"fmt"
	"math"

	"billcap/internal/pricing"
	"billcap/internal/timeseries"
)

// Battery is one site's energy store. The zero value is a degenerate
// zero-capacity battery; use New for a validated one.
type Battery struct {
	// CapacityMWh is the usable energy capacity.
	CapacityMWh float64
	// MaxChargeMW and MaxDischargeMW bound the hourly power.
	MaxChargeMW, MaxDischargeMW float64
	// Efficiency is the round-trip efficiency in (0, 1]; losses are charged
	// on the way in.
	Efficiency float64

	soc float64 // state of charge, MWh
}

// New validates and returns an empty battery.
func New(capacityMWh, maxChargeMW, maxDischargeMW, efficiency float64) (*Battery, error) {
	switch {
	case capacityMWh < 0 || math.IsNaN(capacityMWh):
		return nil, fmt.Errorf("battery: capacity %v", capacityMWh)
	case maxChargeMW < 0 || maxDischargeMW < 0:
		return nil, fmt.Errorf("battery: rates %v/%v", maxChargeMW, maxDischargeMW)
	case efficiency <= 0 || efficiency > 1:
		return nil, fmt.Errorf("battery: efficiency %v", efficiency)
	}
	return &Battery{
		CapacityMWh:    capacityMWh,
		MaxChargeMW:    maxChargeMW,
		MaxDischargeMW: maxDischargeMW,
		Efficiency:     efficiency,
	}, nil
}

// SoC returns the current state of charge in MWh.
func (b *Battery) SoC() float64 { return b.soc }

// SetSoC restores a state of charge (e.g. from a crash-safe snapshot). The
// value is clamped into [0, CapacityMWh]; non-finite values reset to empty.
func (b *Battery) SetSoC(mwh float64) {
	if !isFinite(mwh) || mwh < 0 {
		mwh = 0
	}
	if mwh > b.CapacityMWh {
		mwh = b.CapacityMWh
	}
	b.soc = mwh
}

func isFinite(x float64) bool { return !math.IsNaN(x) && !math.IsInf(x, 0) }

// Charge stores up to gridMW of grid power for one hour and returns the
// grid power actually drawn (losses make stored energy smaller).
// Non-finite requests (NaN, ±Inf) are rejected: `gridMW <= 0` is false for
// NaN, so without the explicit check math.Min would propagate NaN into the
// state of charge and poison the battery for the rest of the run.
func (b *Battery) Charge(gridMW float64) float64 {
	if !isFinite(gridMW) || gridMW <= 0 || b.CapacityMWh == 0 {
		return 0
	}
	gridMW = math.Min(gridMW, b.MaxChargeMW)
	room := b.CapacityMWh - b.soc
	maxGrid := room / b.Efficiency
	gridMW = math.Min(gridMW, maxGrid)
	if gridMW <= 0 {
		return 0
	}
	b.soc += gridMW * b.Efficiency
	return gridMW
}

// Discharge serves up to wantMW of load from the store for one hour and
// returns the power actually delivered. Non-finite requests are rejected for
// the same reason as in Charge.
func (b *Battery) Discharge(wantMW float64) float64 {
	if !isFinite(wantMW) || wantMW <= 0 {
		return 0
	}
	wantMW = math.Min(wantMW, b.MaxDischargeMW)
	wantMW = math.Min(wantMW, b.soc)
	if wantMW <= 0 {
		return 0
	}
	b.soc -= wantMW
	return wantMW
}

// Operator runs threshold arbitrage for one site.
type Operator struct {
	Battery *Battery
	Policy  pricing.Policy
	// CapMW is the site's supplier power cap; charging never exceeds it.
	CapMW float64
	// LowFrac and HighFrac position the charge/discharge thresholds within
	// the observed price distribution (quantiles; defaults 0.25 and 0.75).
	LowFrac, HighFrac float64
	// history is a ring of recently observed pre-action prices; thresholds
	// adapt to what the market actually does rather than to the policy's
	// theoretical band (which a price-maker-aware dispatcher rarely visits).
	history []float64
	histAt  int
	full    bool
}

// historyLen is one week of hourly prices.
const historyLen = 168

// NewOperator returns an operator with default quantile thresholds.
func NewOperator(b *Battery, p pricing.Policy, capMW float64) *Operator {
	return &Operator{
		Battery: b, Policy: p, CapMW: capMW,
		LowFrac: 0.25, HighFrac: 0.75,
		history: make([]float64, 0, historyLen),
	}
}

// observe records a realized price into the ring.
func (o *Operator) observe(price float64) {
	if len(o.history) < historyLen {
		o.history = append(o.history, price)
		return
	}
	o.full = true
	o.history[o.histAt] = price
	o.histAt = (o.histAt + 1) % historyLen
}

// thresholds derives the charge/discharge trigger prices. Until a day of
// history accumulates it falls back to the policy's rate band. Arbitrage
// must beat the round-trip loss: if the spread is thinner than what
// efficiency eats, the operator idles. The idle sentinel is
// (low, high) = (-Inf, +Inf) so that neither `price <= low` nor
// `price >= high` can ever trigger — a finite sentinel like (1, 0) would
// still fire the charge branch for any price at or below $1/MWh, which
// real-time markets do produce.
func (o *Operator) thresholds() (low, high float64) {
	if len(o.history) < 24 {
		mn, mx := o.Policy.Fn.Min(), o.Policy.Fn.Max()
		span := mx - mn
		low = mn + o.LowFrac*span
		high = mn + o.HighFrac*span
	} else {
		sorted := append(timeseries.Series(nil), o.history...)
		low = sorted.Quantile(o.LowFrac)
		high = sorted.Quantile(o.HighFrac)
	}
	// Profitability floor: buying 1 MWh costs low/η to deliver 1 MWh later.
	// This applies to the cold-start policy band too — a thin band with a
	// lossy battery would otherwise arbitrage at a guaranteed loss for the
	// whole first day.
	if eff := o.Battery.Efficiency; eff > 0 && high*eff < low {
		return math.Inf(-1), math.Inf(1) // spread too thin: idle
	}
	return low, high
}

// Step decides the hour's battery action for a site drawing itMW of IT
// power with background demand demandMW, and returns the resulting grid
// draw and the price actually paid for it. Charging respects both the power
// cap and the price step the region currently sits in (never crossing a
// boundary upward just to store energy).
func (o *Operator) Step(itMW, demandMW float64) (gridMW, priceUSDPerMWh float64) {
	price := o.Policy.Price(demandMW + itMW)
	low, high := o.thresholds()
	o.observe(price)
	gridMW = itMW

	switch {
	case price <= low:
		// Cheap hour: charge as much as the cap and the price segment allow.
		headroom := o.CapMW - itMW
		// Stay strictly inside the current price segment.
		seg := o.Policy.Fn.Segment(demandMW + itMW)
		if _, hi := o.Policy.Fn.SegmentBounds(seg); !math.IsInf(hi, 1) {
			headroom = math.Min(headroom, hi-(demandMW+itMW)-1e-6)
		}
		if headroom > 0 {
			gridMW += o.Battery.Charge(headroom)
		}
	case price >= high:
		// Dear hour: serve as much of the draw as possible from the store.
		gridMW -= o.Battery.Discharge(itMW)
	}
	return gridMW, o.Policy.Price(demandMW + gridMW)
}

package sim

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"billcap/internal/obs"
)

// TestRunEmitsTracePerHour is the issue's acceptance check: a capped run
// with a trace sink attached emits exactly one valid JSON line per
// simulated hour, carrying step, sites, solver effort and ledger state.
func TestRunEmitsTracePerHour(t *testing.T) {
	cfg := mustScenario(t, 60_000, 1) // one-week month, tight budget
	var buf bytes.Buffer
	cfg.Trace = obs.NewJSONSink(&buf)
	reg := obs.NewRegistry()
	cfg.Metrics = reg

	res, err := Run(cfg, mustCapping(t, cfg))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != cfg.Month.Len() {
		t.Fatalf("%d trace lines for %d hours", len(lines), cfg.Month.Len())
	}
	steps := map[string]int{}
	for i, ln := range lines {
		var tr obs.DecisionTrace
		if err := json.Unmarshal([]byte(ln), &tr); err != nil {
			t.Fatalf("hour %d: invalid JSON: %v", i, err)
		}
		if tr.Hour != i {
			t.Fatalf("hour %d trace says hour %d", i, tr.Hour)
		}
		if len(tr.Sites) != len(cfg.DCs) {
			t.Fatalf("hour %d: %d site entries", i, len(tr.Sites))
		}
		if tr.Solver.Solves < 1 || tr.Solver.Pivots < 1 {
			t.Fatalf("hour %d: empty solver trace %+v", i, tr.Solver)
		}
		if tr.BudgetUSD == nil || tr.Budget == nil {
			t.Fatalf("hour %d: capped run missing budget state", i)
		}
		if tr.RealizedCostUSD <= 0 {
			t.Fatalf("hour %d: realized cost %v", i, tr.RealizedCostUSD)
		}
		steps[tr.Step]++
	}
	if steps["cost-min"]+steps["budget-capped"]+steps["premium-only"]+steps["over-capacity"] != cfg.Month.Len() {
		t.Errorf("unknown steps in traces: %v", steps)
	}
	// The ledger gauges followed the run.
	hours := reg.Counter("billcap_budget_hours_total", "").Value()
	if int(hours) != cfg.Month.Len() {
		t.Errorf("ledger recorded %v hours, want %d", hours, cfg.Month.Len())
	}
	// Trace and result must agree on the total realized bill.
	var sum float64
	for _, ln := range lines {
		var tr obs.DecisionTrace
		_ = json.Unmarshal([]byte(ln), &tr)
		sum += tr.RealizedCostUSD + tr.PenaltyUSD
	}
	if diff := sum - res.TotalBillUSD(); diff > 1e-6 || diff < -1e-6 {
		t.Errorf("traced bill %v != result bill %v", sum, res.TotalBillUSD())
	}
}

func TestRunUncappedTraceOmitsBudget(t *testing.T) {
	cfg := mustScenario(t, Uncapped(), 1)
	cfg.Month = cfg.Month.Slice(0, 24)
	var buf bytes.Buffer
	cfg.Trace = obs.NewJSONSink(&buf)
	if _, err := Run(cfg, mustCapping(t, cfg)); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 24 {
		t.Fatalf("%d lines, want 24", len(lines))
	}
	var tr obs.DecisionTrace
	if err := json.Unmarshal([]byte(lines[0]), &tr); err != nil {
		t.Fatal(err)
	}
	if tr.BudgetUSD != nil || tr.Budget != nil {
		t.Errorf("uncapped trace carries budget state: %+v", tr)
	}
}

// Package sim replays a month of hourly workload against a network of data
// centers under a chosen dispatching strategy and accounts the ground truth:
// realized power, the prices the markets actually charge, budget adherence
// and served throughput (paper §VI–§VII).
//
// Each simulated hour follows the paper's control loop:
//
//  1. the budgeter announces the hour's available budget,
//  2. the strategy decides the per-site workload allocation,
//  3. the dispatcher enforces it (no inter-site migration afterwards),
//  4. the realized bill is charged and recorded back into the budgeter.
package sim

import (
	"errors"
	"fmt"
	"math"

	"billcap/internal/budget"
	"billcap/internal/core"
	"billcap/internal/dcmodel"
	"billcap/internal/forecast"
	"billcap/internal/grid"
	"billcap/internal/obs"
	"billcap/internal/pricing"
	"billcap/internal/state"
	"billcap/internal/timeseries"
	"billcap/internal/workload"
)

// Decider is a dispatching strategy: Cost Capping or a baseline.
type Decider interface {
	// Name labels the strategy in reports.
	Name() string
	// Decide allocates one hour's workload.
	Decide(in core.HourInput) (core.Decision, error)
}

// Config describes one simulation run.
type Config struct {
	// DCs and Policies define the physical system and its power markets.
	DCs      []*dcmodel.Site
	Policies []pricing.Policy
	// Month is the evaluated workload (hour 0 = Monday 00:00).
	Month workload.Trace
	// History is the workload preceding Month, used to derive the
	// budgeter's hourly weights. It must end at a week boundary so that
	// hour-of-week alignment carries over.
	History workload.Trace
	// Demand is the per-region background draw covering at least the month.
	Demand []grid.Demand
	// PremiumFrac is the fraction of each hour's arrivals that is premium
	// (paper §VII-C: 0.8).
	PremiumFrac float64
	// MonthlyBudgetUSD caps the month's bill; +Inf disables capping.
	MonthlyBudgetUSD float64
	// CapPenaltyUSDPerMWh prices power-cap violations in the realization
	// (0 → the core default).
	CapPenaltyUSDPerMWh float64
	// DemandChargeUSDPerMWMonth adds a billing-period demand charge: the
	// month's bill includes this rate times each site's peak metered draw.
	// The decider sees the same rate plus the peak-so-far ledger, so the MILP
	// prices every MW of new peak it would set (0 = energy charges only).
	DemandChargeUSDPerMWMonth float64
	// Batteries co-locates storage with the sites (length 0 or len(DCs); a
	// zero CapacityMWh entry means no battery at that site). SoCMWh is the
	// starting charge; ValueUSDPerMWh is the stored-energy value the MILP
	// arbitrages against (0 → the site's mean LMP band).
	Batteries []core.BatterySpec
	// TwoSettlement bills energy in two settlements: day-ahead commitments
	// struck from the hour-of-week forecast at DA prices, deviations settled
	// at a synthesized real-time price series.
	TwoSettlement bool
	// RTSpread is the relative sigma of the real-time price's mean-one
	// lognormal deviation from day-ahead (0 → 0.15).
	RTSpread float64
	// RTSeed seeds the real-time price stream.
	RTSeed int64
	// PredictionError optionally corrupts the budgeter's workload
	// prediction with mean-one lognormal error of this relative magnitude
	// (robustness experiments; 0 = perfect hour-of-week prediction).
	PredictionError float64
	// PredictionSeed seeds the error stream.
	PredictionSeed int64
	// Faults, when non-nil, injects the schedule's failures into the run:
	// outages and feed corruptions are applied to the controller's observed
	// inputs (ground truth stays honest), and forced rung failures are
	// delivered to deciders implementing FaultSink.
	Faults *Faults
	// StateDir, when non-empty, makes the run crash-safe: every recorded
	// hour is appended to a durable WAL in the directory and checkpoints are
	// snapshotted periodically, exactly as capperd does with -state-dir. A
	// run over a directory with prior state resumes where the crashed run
	// stopped — restored budget ledger, restored degradation-ladder state —
	// instead of starting the month over. One directory serves one run at a
	// time; do not share it across RunAll strategies.
	StateDir string
	// SnapshotEveryHours is the snapshot cadence within StateDir (0 → 24).
	SnapshotEveryHours int
	// HaltAfterHours, when > 0, simulates a SIGKILL: the run stops with
	// ErrHalted once the hour with this absolute index has been durably
	// recorded, leaving StateDir exactly as a dead process would.
	HaltAfterHours int
	// Trace, when non-nil, receives one structured decision trace per
	// simulated hour (e.g. obs.NewJSONSink over a file). The sink must be
	// safe for concurrent use if the config is shared by RunAll.
	Trace obs.Sink
	// Metrics, when non-nil, attaches the budgeter's ledger gauges to the
	// given registry for the run.
	Metrics *obs.Registry
}

// Validate reports the first configuration problem.
func (c Config) Validate() error {
	switch {
	case len(c.DCs) == 0:
		return fmt.Errorf("sim: no data centers")
	case len(c.DCs) != len(c.Policies):
		return fmt.Errorf("sim: %d sites but %d policies", len(c.DCs), len(c.Policies))
	case len(c.Demand) != len(c.DCs):
		return fmt.Errorf("sim: %d demand regions for %d sites", len(c.Demand), len(c.DCs))
	case c.Month.Len() == 0:
		return fmt.Errorf("sim: empty month")
	case c.History.Len() == 0:
		return fmt.Errorf("sim: empty history")
	case c.History.Len()%workload.HoursPerWeek != 0:
		return fmt.Errorf("sim: history length %d is not whole weeks", c.History.Len())
	case c.PremiumFrac < 0 || c.PremiumFrac > 1:
		return fmt.Errorf("sim: premium fraction %v", c.PremiumFrac)
	case math.IsNaN(c.MonthlyBudgetUSD) || c.MonthlyBudgetUSD < 0:
		return fmt.Errorf("sim: monthly budget %v", c.MonthlyBudgetUSD)
	case math.IsNaN(c.DemandChargeUSDPerMWMonth) || math.IsInf(c.DemandChargeUSDPerMWMonth, 0) || c.DemandChargeUSDPerMWMonth < 0:
		return fmt.Errorf("sim: demand charge %v $/MW-month", c.DemandChargeUSDPerMWMonth)
	case len(c.Batteries) != 0 && len(c.Batteries) != len(c.DCs):
		return fmt.Errorf("sim: %d batteries for %d sites", len(c.Batteries), len(c.DCs))
	case math.IsNaN(c.RTSpread) || math.IsInf(c.RTSpread, 0) || c.RTSpread < 0:
		return fmt.Errorf("sim: RT spread %v", c.RTSpread)
	}
	for i, d := range c.Demand {
		if d.Len() < c.Month.Len() {
			return fmt.Errorf("sim: region %d has %d hours of demand for a %d-hour month",
				i, d.Len(), c.Month.Len())
		}
	}
	return nil
}

// HourRecord is one hour's ledger line.
type HourRecord struct {
	Hour            int
	Arrived         float64
	ArrivedPremium  float64
	ArrivedOrdinary float64
	ServedPremium   float64
	ServedOrdinary  float64
	HourlyBudget    float64 // available at decision time (+Inf when uncapped)
	PredictedCost   float64
	CostUSD         float64 // realized charge (energy, plus demand increment and settlement under a tariff)
	PenaltyUSD      float64 // realized cap penalties
	Step            core.Step
	Degraded        core.Degrade
	CapViolations   int
	Dropped         float64
	// EnergyUSD / DemandUSD / SettlementUSD decompose CostUSD when a tariff
	// beyond plain energy charges is active; all zero otherwise.
	EnergyUSD     float64
	DemandUSD     float64
	SettlementUSD float64
	// SiteLambda and SitePowerMW record the realized per-site dispatch and
	// IT draw (site order follows Config.DCs). SiteGridMW is the metered
	// supplier draw and SiteSoCMWh the post-hour battery charge; both nil
	// outside tariff runs.
	SiteLambda  []float64
	SitePowerMW []float64
	SiteGridMW  []float64
	SiteSoCMWh  []float64
}

// BillUSD is the hour's total charge.
func (h HourRecord) BillUSD() float64 { return h.CostUSD + h.PenaltyUSD }

// ErrHalted marks a run stopped by Config.HaltAfterHours — the simulated
// SIGKILL of the crash-recovery tests. The partial Result is still returned.
var ErrHalted = errors.New("sim: halted by fault schedule")

// Result aggregates a full run.
type Result struct {
	Strategy string
	Hours    []HourRecord

	// StartHour is the first hour this run decided: 0 for a fresh month,
	// the restored cursor when the run resumed from Config.StateDir.
	StartHour int
	// Budget is the final ledger snapshot (nil when uncapped).
	Budget *budget.State
	// Restore reports what the state layer recovered at startup (nil when
	// Config.StateDir was empty).
	Restore *state.RestoreInfo

	MonthlyBudgetUSD float64
	TotalCostUSD     float64
	TotalPenaltyUSD  float64

	// TotalEnergyUSD / TotalDemandUSD / TotalSettlementUSD decompose
	// TotalCostUSD for tariff runs; PeakMW is the final billing-period peak
	// ledger (nil outside tariff runs). The demand-charge total telescopes:
	// Σ hourly increments = DemandChargeUSDPerMWMonth × Σ PeakMW.
	TotalEnergyUSD     float64
	TotalDemandUSD     float64
	TotalSettlementUSD float64
	PeakMW             []float64

	ArrivedPremium, ServedPremium   float64
	ArrivedOrdinary, ServedOrdinary float64

	// BudgetViolationHours counts hours whose realized bill exceeded the
	// hour's available budget (expected only for premium-mandatory hours
	// under Cost Capping, and freely for budget-blind baselines).
	BudgetViolationHours int
	CapViolationHours    int
	StepCounts           map[core.Step]int
	// DegradedHours attributes every hour to its degradation-ladder rung;
	// an unfaulted run has all hours under core.DegradeNone.
	DegradedHours map[core.Degrade]int

	Solver core.SolverStats
}

// TotalBillUSD is the month's total charge.
func (r Result) TotalBillUSD() float64 { return r.TotalCostUSD + r.TotalPenaltyUSD }

// BudgetUtilization is bill / monthly budget (0 when uncapped).
func (r Result) BudgetUtilization() float64 {
	if math.IsInf(r.MonthlyBudgetUSD, 1) || r.MonthlyBudgetUSD == 0 {
		return 0
	}
	return r.TotalBillUSD() / r.MonthlyBudgetUSD
}

// PremiumServiceRate is served/arrived premium traffic (1 when none arrived).
func (r Result) PremiumServiceRate() float64 {
	if r.ArrivedPremium == 0 {
		return 1
	}
	return r.ServedPremium / r.ArrivedPremium
}

// OrdinaryServiceRate is served/arrived ordinary traffic (1 when none).
func (r Result) OrdinaryServiceRate() float64 {
	if r.ArrivedOrdinary == 0 {
		return 1
	}
	return r.ServedOrdinary / r.ArrivedOrdinary
}

// HourlyBills extracts the realized bill series.
func (r Result) HourlyBills() timeseries.Series {
	out := make(timeseries.Series, len(r.Hours))
	for i, h := range r.Hours {
		out[i] = h.BillUSD()
	}
	return out
}

// HourlyBudgets extracts the available-budget series.
func (r Result) HourlyBudgets() timeseries.Series {
	out := make(timeseries.Series, len(r.Hours))
	for i, h := range r.Hours {
		out[i] = h.HourlyBudget
	}
	return out
}

// Run replays the month under the given strategy. Ground truth (discrete
// power, true LMP prices, penalties) is evaluated on a reference system that
// always models full power and true prices, regardless of what the strategy
// believes.
func Run(cfg Config, decider Decider) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	truth, err := core.NewSystem(cfg.DCs, cfg.Policies, core.Options{
		Scope:               dcmodel.FullPower,
		PriceView:           core.ViewLMP,
		CapPenaltyUSDPerMWh: cfg.CapPenaltyUSDPerMWh,
	})
	if err != nil {
		return Result{}, err
	}

	capped := !math.IsInf(cfg.MonthlyBudgetUSD, 1)
	var budgeter *budget.Budgeter
	var fcState *forecast.HourOfWeekState
	var store *state.Store
	var rinfo *state.RestoreInfo
	startHour := 0

	var rig *tariffRig
	if cfg.hasTariff() {
		rig, err = newTariffRig(cfg)
		if err != nil {
			return Result{}, err
		}
	}

	if cfg.StateDir != "" {
		st, cp, info, err := state.Open(cfg.StateDir)
		if err != nil {
			return Result{}, err
		}
		store = st
		defer store.Close()
		rinfo = &info
		if cp != nil {
			startHour = cp.Hour
			if rig != nil {
				if err := rig.restore(cp.Peaks, cp.BatterySoCMWh); err != nil {
					return Result{}, err
				}
			}
			if capped {
				if cp.Budget == nil {
					return Result{}, fmt.Errorf("sim: state dir %q has no budget ledger to resume from", cfg.StateDir)
				}
				budgeter, err = budget.Restore(*cp.Budget)
				if err != nil {
					return Result{}, err
				}
				if budgeter.Horizon() != cfg.Month.Len() {
					return Result{}, fmt.Errorf("sim: restored ledger spans %d hours, month has %d",
						budgeter.Horizon(), cfg.Month.Len())
				}
			}
			if cp.Resilient != nil {
				if lc, ok := decider.(ladderer); ok {
					if err := lc.Ladder().Restore(*cp.Resilient); err != nil {
						return Result{}, fmt.Errorf("sim: %w", err)
					}
				}
			}
			fcState = cp.Forecast
		}
	}

	if capped && budgeter == nil {
		hw, err := forecast.FitHourOfWeek(cfg.History.Rates)
		if err != nil {
			return Result{}, err
		}
		pred := hw.PredictSeries(cfg.Month.Len())
		if cfg.PredictionError > 0 {
			pred = forecast.WithError(pred, cfg.PredictionError, cfg.PredictionSeed)
		}
		budgeter, err = budget.New(cfg.MonthlyBudgetUSD, pred)
		if err != nil {
			return Result{}, err
		}
		hws := hw.Snapshot()
		fcState = &hws
	}
	if capped && cfg.Metrics != nil {
		budgeter.SetMetrics(budget.NewMetrics(cfg.Metrics))
	}

	res := Result{
		Strategy:         decider.Name(),
		MonthlyBudgetUSD: cfg.MonthlyBudgetUSD,
		StartHour:        startHour,
		Restore:          rinfo,
		StepCounts:       map[core.Step]int{},
		DegradedHours:    map[core.Degrade]int{},
	}
	cfg.Faults.deliver(decider)
	demand := make([]float64, len(cfg.DCs))
	for h := startHour; h < cfg.Month.Len(); h++ {
		lambda := cfg.Month.At(h) * cfg.Faults.burst(h)
		premium, ordinary := workload.Split(lambda, cfg.PremiumFrac)
		for i := range demand {
			demand[i] = cfg.Demand[i].At(h)
		}
		hourBudget := math.Inf(1)
		if capped {
			hourBudget = budgeter.HourlyBudget()
		}
		in := core.HourInput{
			Hour:          h,
			TotalLambda:   lambda,
			PremiumLambda: premium,
			DemandMW:      cfg.Faults.observeDemand(h, demand),
			BudgetUSD:     hourBudget,
			Down:          cfg.Faults.down(h, len(cfg.DCs)),
		}
		if rig != nil {
			rig.attach(&in, cfg)
		}
		dec, err := decider.Decide(in)
		if err != nil {
			return Result{}, fmt.Errorf("sim: hour %d: %w", h, err)
		}
		// A physically-down site serves nothing regardless of what the
		// decider planned; the lost traffic is shed in admission order
		// (ordinary first), mirroring how the controller itself sheds.
		lambdas := dec.Lambdas()
		servedPremium, servedOrdinary := dec.ServedPremium, dec.ServedOrdinary
		if lost := zeroDownSites(lambdas, in); lost > 0 {
			o := math.Min(lost, servedOrdinary)
			servedOrdinary -= o
			servedPremium = math.Max(0, servedPremium-(lost-o))
		}
		real, err := truth.Realize(lambdas, demand)
		if err != nil {
			return Result{}, fmt.Errorf("sim: hour %d: %w", h, err)
		}

		rec := HourRecord{
			Hour:            h,
			Arrived:         lambda,
			ArrivedPremium:  premium,
			ArrivedOrdinary: ordinary,
			ServedPremium:   servedPremium,
			ServedOrdinary:  servedOrdinary,
			HourlyBudget:    hourBudget,
			PredictedCost:   dec.PredictedCostUSD,
			CostUSD:         real.CostUSD,
			PenaltyUSD:      real.PenaltyUSD,
			Step:            dec.Step,
			Degraded:        dec.Degraded,
			CapViolations:   real.CapViolations,
			Dropped:         real.DroppedLambda,
			SiteLambda:      make([]float64, len(real.Sites)),
			SitePowerMW:     make([]float64, len(real.Sites)),
		}
		for i, sr := range real.Sites {
			rec.SiteLambda[i] = sr.Lambda
			rec.SitePowerMW[i] = sr.PowerMW
		}
		if rig != nil {
			// The market bills the metered grid draw, not the IT draw:
			// execute the planned battery actions against the physical
			// batteries, then run the composed tariff (energy + demand
			// increment + settlement) over the resulting meter readings.
			// Cap penalties re-derive on the same meter readings — charging
			// above the supplier cap is penalized like any other draw.
			grid, _, _ := rig.apply(dec, in, rec.SitePowerMW)
			bill, err := rig.tariff.HourBill(h, grid, demand, rig.ledger)
			if err != nil {
				return Result{}, fmt.Errorf("sim: hour %d: %w", h, err)
			}
			rec.CostUSD = bill.TotalUSD()
			rec.EnergyUSD = bill.EnergyUSD
			rec.DemandUSD = bill.DemandUSD
			rec.SettlementUSD = bill.SettlementUSD
			rec.SiteGridMW = grid
			rec.SiteSoCMWh = rig.socs()
			rec.PenaltyUSD, rec.CapViolations = 0, 0
			for i, g := range grid {
				if cap := cfg.DCs[i].PowerCapMW; g > cap+1e-9 {
					rec.PenaltyUSD += truth.CapPenaltyUSDPerMWh() * (g - cap)
					rec.CapViolations++
				}
			}
		}
		if capped {
			if err := budgeter.Record(rec.BillUSD()); err != nil {
				return Result{}, fmt.Errorf("sim: hour %d: %w", h, err)
			}
		}
		res.Hours = append(res.Hours, rec)
		res.TotalCostUSD += rec.CostUSD
		res.TotalPenaltyUSD += rec.PenaltyUSD
		res.TotalEnergyUSD += rec.EnergyUSD
		res.TotalDemandUSD += rec.DemandUSD
		res.TotalSettlementUSD += rec.SettlementUSD
		res.ArrivedPremium += premium
		res.ArrivedOrdinary += ordinary
		res.ServedPremium += rec.ServedPremium
		res.ServedOrdinary += rec.ServedOrdinary
		res.StepCounts[dec.Step]++
		res.DegradedHours[dec.Degraded]++
		if rec.BillUSD() > hourBudget*(1+1e-9)+1e-6 {
			res.BudgetViolationHours++
		}
		if real.CapViolations > 0 {
			res.CapViolationHours++
		}
		res.Solver.Accumulate(dec.Solver)

		if cfg.Trace != nil {
			tr := decisionTrace(cfg, h, in, dec, real, rec)
			if capped {
				tr.Budget = &obs.BudgetTrace{
					ShareUSD:     budgeter.Share(h),
					PoolUSD:      budgeter.Pool(),
					SpentUSD:     budgeter.Spent(),
					RemainingUSD: budgeter.Remaining(),
					Violations:   budgeter.Violations(),
				}
			}
			if err := cfg.Trace.Emit(tr); err != nil {
				return Result{}, fmt.Errorf("sim: hour %d: trace: %w", h, err)
			}
		}

		if store != nil {
			e := state.Entry{Hour: h, SpentUSD: rec.BillUSD()}
			if lc, ok := decider.(ladderer); ok {
				ls := lc.Ladder().Snapshot()
				e.Resilient = &ls
			}
			if rig != nil {
				ps := rig.ledger.Snapshot()
				e.Peaks = &ps
				e.BatterySoCMWh = rig.socs()
			}
			if err := store.Append(e); err != nil {
				return Result{}, fmt.Errorf("sim: hour %d: %w", h, err)
			}
			if (h+1)%cfg.snapshotEvery() == 0 {
				cp := state.Checkpoint{Hour: h + 1, Forecast: fcState, Resilient: e.Resilient,
					Peaks: e.Peaks, BatterySoCMWh: e.BatterySoCMWh}
				if capped {
					bs := budgeter.Snapshot()
					cp.Budget = &bs
				}
				if err := store.WriteSnapshot(cp); err != nil {
					return Result{}, fmt.Errorf("sim: hour %d: %w", h, err)
				}
			}
		}
		if cfg.HaltAfterHours > 0 && h+1 >= cfg.HaltAfterHours {
			finishResult(&res, budgeter, rig)
			return res, ErrHalted
		}
	}
	finishResult(&res, budgeter, rig)
	return res, nil
}

// ladderer is the seam through which the harness reaches a decider's
// degradation ladder for checkpointing (ResilientCapping implements it).
type ladderer interface {
	Ladder() *core.Resilient
}

func (c Config) snapshotEvery() int {
	if c.SnapshotEveryHours <= 0 {
		return 24
	}
	return c.SnapshotEveryHours
}

// finishResult attaches the final ledger snapshots to a run's result.
func finishResult(res *Result, budgeter *budget.Budgeter, rig *tariffRig) {
	if budgeter != nil {
		bs := budgeter.Snapshot()
		res.Budget = &bs
	}
	if rig != nil {
		res.PeakMW = rig.ledger.Peaks()
	}
}

// zeroDownSites clears allocations to sites the hour's fault schedule took
// out, returning the load lost that way.
func zeroDownSites(lambdas []float64, in core.HourInput) float64 {
	lost := 0.0
	for i := range lambdas {
		if in.SiteDown(i) && lambdas[i] > 0 {
			lost += lambdas[i]
			lambdas[i] = 0
		}
	}
	return lost
}

// decisionTrace flattens one simulated hour into the observability trace
// record: the decision, the billed ground truth (rec carries the tariff
// billing when one is active), and the solver effort.
func decisionTrace(cfg Config, h int, in core.HourInput, dec core.Decision, real core.Realization, rec HourRecord) obs.DecisionTrace {
	tr := obs.DecisionTrace{
		Hour:             h,
		Step:             dec.Step.String(),
		ArrivedLambda:    in.TotalLambda,
		PremiumLambda:    in.PremiumLambda,
		Served:           real.ServedLambda,
		ServedPremium:    dec.ServedPremium,
		ServedOrdinary:   dec.ServedOrdinary,
		DroppedLambda:    real.DroppedLambda,
		PredictedCostUSD: dec.PredictedCostUSD,
		RealizedCostUSD:  rec.CostUSD,
		PenaltyUSD:       rec.PenaltyUSD,
		CapViolations:    rec.CapViolations,
		EnergyUSD:        rec.EnergyUSD,
		DemandUSD:        rec.DemandUSD,
		SettlementUSD:    rec.SettlementUSD,
		Sites:            make([]obs.SiteTrace, len(real.Sites)),
		Solver: obs.SolverTrace{
			Solves:     dec.Solver.Solves,
			Nodes:      dec.Solver.Nodes,
			Pivots:     dec.Solver.LPIterations,
			Incumbents: dec.Solver.Incumbents,
			Timeouts:   dec.Solver.Timeouts,
			Workers:    dec.Solver.Workers,
			WallMS:     float64(dec.Solver.WallTime.Microseconds()) / 1e3,

			PresolveFixed: dec.Solver.PresolveFixed,
			WarmStarted:   dec.Solver.WarmStarted,

			LPRefactorizations: dec.Solver.LPRefactorizations,
			LPBasisUpdates:     dec.Solver.LPBasisUpdates,

			DecompIterations: dec.Solver.DecompIterations,
			DecompGap:        dec.Solver.DecompGap,
			DecompDualBound:  dec.Solver.DecompDualBound,
		},
	}
	if dec.Degraded != core.DegradeNone {
		tr.Degraded = dec.Degraded.String()
	}
	if !math.IsInf(in.BudgetUSD, 1) {
		b := in.BudgetUSD
		tr.BudgetUSD = &b
	}
	for i, sr := range real.Sites {
		tr.Sites[i] = obs.SiteTrace{
			Site:           cfg.DCs[i].Name,
			Lambda:         sr.Lambda,
			PowerMW:        sr.PowerMW,
			PriceUSDPerMWh: sr.PriceUSDPerMWh,
			CostUSD:        sr.CostUSD,
			On:             sr.Lambda > 0 || sr.PowerMW > 0,
		}
		if rec.SiteGridMW != nil {
			tr.Sites[i].GridMW = rec.SiteGridMW[i]
		}
		if rec.SiteSoCMWh != nil {
			tr.Sites[i].SoCMWh = rec.SiteSoCMWh[i]
		}
	}
	return tr
}

// RunAll replays the same scenario under several strategies concurrently
// (each strategy holds its own optimizer state and budgeter, and the
// configuration is only read). Results come back in decider order; the
// first error aborts the batch.
func RunAll(cfg Config, deciders ...Decider) ([]Result, error) {
	type outcome struct {
		idx int
		res Result
		err error
	}
	ch := make(chan outcome, len(deciders))
	for i, d := range deciders {
		go func(i int, d Decider) {
			res, err := Run(cfg, d)
			ch <- outcome{idx: i, res: res, err: err}
		}(i, d)
	}
	results := make([]Result, len(deciders))
	var firstErr error
	for range deciders {
		o := <-ch
		if o.err != nil && firstErr == nil {
			firstErr = o.err
		}
		results[o.idx] = o.res
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return results, nil
}

// CostCapping wraps the paper's two-step algorithm as a Decider.
type CostCapping struct {
	sys  *core.System
	name string
}

// NewCostCapping builds the paper's strategy over the given sites: full
// power model, true LMP price view.
func NewCostCapping(dcs []*dcmodel.Site, policies []pricing.Policy) (*CostCapping, error) {
	return NewCostCappingVariant("Cost Capping", dcs, policies, core.Options{
		Scope:     dcmodel.FullPower,
		PriceView: core.ViewLMP,
	})
}

// NewCostCappingVariant builds the two-step algorithm with explicit
// optimizer options — used by the ablation experiments (server-only power
// model, price-taker view) to isolate what each modeling choice buys.
func NewCostCappingVariant(name string, dcs []*dcmodel.Site, policies []pricing.Policy, opts core.Options) (*CostCapping, error) {
	sys, err := core.NewSystem(dcs, policies, opts)
	if err != nil {
		return nil, err
	}
	return &CostCapping{sys: sys, name: name}, nil
}

// Name labels the strategy as in the paper.
func (c *CostCapping) Name() string { return c.name }

// System exposes the underlying optimizer system.
func (c *CostCapping) System() *core.System { return c.sys }

// Decide runs the two-step bill capping algorithm.
func (c *CostCapping) Decide(in core.HourInput) (core.Decision, error) {
	return c.sys.DecideHour(in)
}

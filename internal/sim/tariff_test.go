package sim

import (
	"errors"
	"math"
	"testing"

	"billcap/internal/core"
	"billcap/internal/pricing"
)

// testBatteries gives every paper site a battery that starts half charged.
func testBatteries(n int) []core.BatterySpec {
	specs := make([]core.BatterySpec, n)
	for i := range specs {
		specs[i] = core.BatterySpec{
			CapacityMWh:    40,
			MaxChargeMW:    15,
			MaxDischargeMW: 15,
			Efficiency:     0.9,
			SoCMWh:         20,
		}
	}
	return specs
}

func TestTariffConfigValidate(t *testing.T) {
	mutations := []func(*Config){
		func(c *Config) { c.DemandChargeUSDPerMWMonth = -1 },
		func(c *Config) { c.DemandChargeUSDPerMWMonth = math.NaN() },
		func(c *Config) { c.Batteries = testBatteries(2) },
		func(c *Config) { c.RTSpread = -0.1 },
	}
	for i, mut := range mutations {
		cfg := mustScenario(t, Uncapped(), 1)
		mut(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

// TestTariffGoldenWeek is the satellite golden test: on a seeded week with a
// demand charge and two-settlement active, the realized bill decomposes into
// energy/demand/settlement exactly, the demand-charge increments telescope to
// rate × final peak, the peak ledger equals the observed maxima, and the
// whole run is deterministic.
func TestTariffGoldenWeek(t *testing.T) {
	cfg := mustScenario(t, Uncapped(), 1)
	cfg.DemandChargeUSDPerMWMonth = 800
	cfg.TwoSettlement = true
	cfg.RTSeed = 7

	res, err := Run(cfg, mustCapping(t, cfg))
	if err != nil {
		t.Fatal(err)
	}

	sumDemand, sumEnergy, sumSettle := 0.0, 0.0, 0.0
	peaks := make([]float64, len(cfg.DCs))
	for _, h := range res.Hours {
		if got, want := h.CostUSD, h.EnergyUSD+h.DemandUSD+h.SettlementUSD; math.Abs(got-want) > 1e-9*(1+math.Abs(want)) {
			t.Fatalf("hour %d: CostUSD %v != energy %v + demand %v + settlement %v",
				h.Hour, got, h.EnergyUSD, h.DemandUSD, h.SettlementUSD)
		}
		if h.SiteGridMW == nil {
			t.Fatalf("hour %d: no metered grid draw recorded", h.Hour)
		}
		for i, g := range h.SiteGridMW {
			// No batteries configured: the meter reads the IT draw.
			if math.Abs(g-h.SitePowerMW[i]) > 1e-12 {
				t.Fatalf("hour %d site %d: grid %v != power %v without a battery", h.Hour, i, g, h.SitePowerMW[i])
			}
			peaks[i] = math.Max(peaks[i], g)
		}
		sumDemand += h.DemandUSD
		sumEnergy += h.EnergyUSD
		sumSettle += h.SettlementUSD
	}

	// Telescoping: Σ hourly demand increments = rate × Σ final peaks.
	wantDemand := 0.0
	for i, p := range res.PeakMW {
		if math.Abs(p-peaks[i]) > 1e-9 {
			t.Errorf("site %d final peak %v, observed max draw %v", i, p, peaks[i])
		}
		wantDemand += cfg.DemandChargeUSDPerMWMonth * p
	}
	if math.Abs(sumDemand-wantDemand) > 1e-6*(1+wantDemand) {
		t.Errorf("demand charges %v do not telescope to rate × peak %v", sumDemand, wantDemand)
	}
	if math.Abs(res.TotalDemandUSD-sumDemand) > 1e-9 ||
		math.Abs(res.TotalEnergyUSD-sumEnergy) > 1e-9 ||
		math.Abs(res.TotalSettlementUSD-sumSettle) > 1e-9 {
		t.Errorf("result totals (%v,%v,%v) disagree with hourly sums (%v,%v,%v)",
			res.TotalEnergyUSD, res.TotalDemandUSD, res.TotalSettlementUSD,
			sumEnergy, sumDemand, sumSettle)
	}
	if math.Abs(res.TotalCostUSD-(sumEnergy+sumDemand+sumSettle)) > 1e-6 {
		t.Errorf("TotalCostUSD %v != component sum %v", res.TotalCostUSD, sumEnergy+sumDemand+sumSettle)
	}

	// The seeded RT stream and forecast commitments are deterministic: a
	// second run must reproduce the bill bit-for-bit.
	again, err := Run(cfg, mustCapping(t, cfg))
	if err != nil {
		t.Fatal(err)
	}
	if again.TotalCostUSD != res.TotalCostUSD || again.TotalSettlementUSD != res.TotalSettlementUSD {
		t.Errorf("re-run bill %v/%v differs from %v/%v",
			again.TotalCostUSD, again.TotalSettlementUSD, res.TotalCostUSD, res.TotalSettlementUSD)
	}
}

// TestTariffSpotEnergyRederives checks the spot-market energy component
// against hand arithmetic: with a demand charge but no two-settlement, each
// hour's energy charge is Σ Price(demand + grid) × grid over the true
// background demand.
func TestTariffSpotEnergyRederives(t *testing.T) {
	cfg := mustScenario(t, Uncapped(), 1)
	cfg.DemandChargeUSDPerMWMonth = 500

	res, err := Run(cfg, mustCapping(t, cfg))
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range res.Hours {
		want := 0.0
		for i, g := range h.SiteGridMW {
			want += cfg.Policies[i].Price(cfg.Demand[i].At(h.Hour)+g) * g
		}
		if math.Abs(h.EnergyUSD-want) > 1e-9*(1+want) {
			t.Fatalf("hour %d: energy %v, re-derived %v", h.Hour, h.EnergyUSD, want)
		}
	}
}

// TestTariffAwareBeatsBlind is the acceptance criterion at sim level: under
// a demand charge with per-site batteries, the tariff-aware MILP's total
// bill is at or below the energy-only-aware dispatch billed under the same
// tariff.
func TestTariffAwareBeatsBlind(t *testing.T) {
	cfg := mustScenario(t, Uncapped(), 2)
	cfg.DemandChargeUSDPerMWMonth = 1500
	cfg.Batteries = testBatteries(len(cfg.DCs))

	aware, err := Run(cfg, mustCapping(t, cfg))
	if err != nil {
		t.Fatal(err)
	}
	blind, err := Run(cfg, TariffBlind(mustCapping(t, cfg)))
	if err != nil {
		t.Fatal(err)
	}
	if aware.TotalBillUSD() > blind.TotalBillUSD()+1e-6 {
		t.Errorf("tariff-aware bill $%.2f exceeds tariff-blind $%.2f",
			aware.TotalBillUSD(), blind.TotalBillUSD())
	}
	discharged := false
	for _, h := range aware.Hours {
		for i, g := range h.SiteGridMW {
			if g < h.SitePowerMW[i]-1e-9 {
				discharged = true
			}
		}
	}
	if !discharged {
		t.Error("tariff-aware run never served load from storage")
	}
}

// TestTariffMonthWithBatteryAndDemandCharge is the satellite month soak
// (run with -race in CI): a full four-week month with batteries, a demand
// charge and two-settlement, under a finite budget, must complete with a
// consistent bill decomposition and a respected cap.
func TestTariffMonthWithBatteryAndDemandCharge(t *testing.T) {
	if testing.Short() {
		t.Skip("month-long tariff sim")
	}
	cfg := mustScenario(t, 700_000, 4)
	cfg.DemandChargeUSDPerMWMonth = 1000
	cfg.Batteries = testBatteries(len(cfg.DCs))
	cfg.TwoSettlement = true
	cfg.RTSeed = 20260808

	res, err := Run(cfg, mustCapping(t, cfg))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(res.Hours); got != cfg.Month.Len() {
		t.Fatalf("decided %d of %d hours", got, cfg.Month.Len())
	}
	if math.Abs(res.TotalCostUSD-(res.TotalEnergyUSD+res.TotalDemandUSD+res.TotalSettlementUSD)) > 1e-6 {
		t.Errorf("bill %v does not decompose into %v + %v + %v", res.TotalCostUSD,
			res.TotalEnergyUSD, res.TotalDemandUSD, res.TotalSettlementUSD)
	}
	if res.TotalDemandUSD <= 0 {
		t.Error("month with a demand charge billed no demand component")
	}
	if res.PremiumServiceRate() < 1-1e-9 {
		t.Errorf("premium service rate %v under a sufficient budget", res.PremiumServiceRate())
	}
	for _, h := range res.Hours {
		for i, soc := range h.SiteSoCMWh {
			if !(soc >= -1e-9 && soc <= cfg.Batteries[i].CapacityMWh+1e-9) {
				t.Fatalf("hour %d site %d: SoC %v outside [0, %v]", h.Hour, i, soc, cfg.Batteries[i].CapacityMWh)
			}
		}
	}
}

// TestChaosSoakTariffLedger extends the crash-restart soak to the tariff
// state: a SIGKILL mid-month must preserve the peak-so-far demand-charge
// ledger and the battery state of charge bit-for-bit, so the stitched month
// bills exactly what an uncrashed month would.
func TestChaosSoakTariffLedger(t *testing.T) {
	cfg, err := ShortScenario(pricing.Policy1, TightBudget(), 2)
	if err != nil {
		t.Fatal(err)
	}
	cfg.DemandChargeUSDPerMWMonth = 1200
	cfg.Batteries = testBatteries(len(cfg.DCs))
	cfg.TwoSettlement = true
	cfg.RTSeed = 99
	hours := cfg.Month.Len()

	ref, err := Run(cfg, resilientDecider(t, cfg))
	if err != nil {
		t.Fatal(err)
	}

	crashed := cfg
	crashed.StateDir = t.TempDir()
	crashed.HaltAfterHours = hours/2 + 5 // off the snapshot boundary: forces WAL replay
	res1, err := Run(crashed, resilientDecider(t, crashed))
	if !errors.Is(err, ErrHalted) {
		t.Fatalf("halted run returned %v, want ErrHalted", err)
	}

	resumed := crashed
	resumed.HaltAfterHours = 0
	res2, err := Run(resumed, resilientDecider(t, resumed))
	if err != nil {
		t.Fatal(err)
	}
	if res2.StartHour != crashed.HaltAfterHours {
		t.Fatalf("resumed at hour %d, want %d", res2.StartHour, crashed.HaltAfterHours)
	}

	// Peak ledger bit-for-bit: the resumed run's final peaks must equal the
	// uncrashed month's exactly — no tolerance. A lost ledger would restart
	// the ratchet at zero and re-bill demand charges the month already paid.
	if len(res2.PeakMW) != len(ref.PeakMW) {
		t.Fatalf("resumed run has %d peaks, reference %d", len(res2.PeakMW), len(ref.PeakMW))
	}
	for i := range ref.PeakMW {
		if res2.PeakMW[i] != ref.PeakMW[i] {
			t.Errorf("site %d peak %v after crash, uncrashed %v", i, res2.PeakMW[i], ref.PeakMW[i])
		}
	}

	// The stitched bill equals the uncrashed bill, component by component.
	stitchDemand := res1.TotalDemandUSD + res2.TotalDemandUSD
	if math.Abs(stitchDemand-ref.TotalDemandUSD) > 1e-9*(1+ref.TotalDemandUSD) {
		t.Errorf("stitched demand charges %v, uncrashed %v", stitchDemand, ref.TotalDemandUSD)
	}
	stitchBill := res1.TotalBillUSD() + res2.TotalBillUSD()
	if math.Abs(stitchBill-ref.TotalBillUSD()) > 1e-9*(1+ref.TotalBillUSD()) {
		t.Errorf("stitched bill %v, uncrashed %v", stitchBill, ref.TotalBillUSD())
	}

	// Battery state survived: the resumed first hour saw the pre-crash SoC,
	// so the hour-by-hour SoC trajectories agree across the crash.
	refHour := ref.Hours[crashed.HaltAfterHours]
	resHour := res2.Hours[0]
	for i := range refHour.SiteSoCMWh {
		if resHour.SiteSoCMWh[i] != refHour.SiteSoCMWh[i] {
			t.Errorf("site %d SoC %v after resume hour, uncrashed %v",
				i, resHour.SiteSoCMWh[i], refHour.SiteSoCMWh[i])
		}
	}
}

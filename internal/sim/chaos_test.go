package sim

import (
	"math"
	"testing"
	"time"

	"billcap/internal/core"
	"billcap/internal/obs"
	"billcap/internal/pricing"
)

// TestChaosSoakMonth is the harness's headline guarantee: a full month under
// a randomized fault schedule — site outages, demand-feed dropouts and
// spikes, arrival bursts, forced solver and fallback failures — and the
// resilient controller still answers every hour, never violates a power cap
// or the SLA, attributes every degraded hour to a ladder rung, and keeps the
// budget ledger consistent with the realized bills.
func TestChaosSoakMonth(t *testing.T) {
	cfg, err := PaperScenario(pricing.Policy1, TightBudget())
	if err != nil {
		t.Fatal(err)
	}
	hours := cfg.Month.Len()
	cfg.Faults = ChaosFaults(20260805, hours, len(cfg.DCs))

	var lastLedger *obs.BudgetTrace
	cfg.Trace = obs.SinkFunc(func(tr obs.DecisionTrace) error {
		if tr.Budget != nil {
			lastLedger = tr.Budget
		}
		return nil
	})

	dec, err := NewResilientCapping(cfg.DCs, cfg.Policies, core.Options{
		SolveDeadline: 2 * time.Second,
	}, core.ResilientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(cfg, dec)
	if err != nil {
		t.Fatalf("faulted month aborted: %v", err)
	}

	// Zero missing decisions: one record per simulated hour.
	if len(res.Hours) != hours {
		t.Fatalf("%d hour records for a %d-hour month", len(res.Hours), hours)
	}

	// Safety: no hour violates a power cap, and nothing is dropped for lack
	// of physical capacity (the ladder respects SLA limits and outages).
	if res.CapViolationHours != 0 {
		t.Errorf("%d cap-violation hours under chaos", res.CapViolationHours)
	}
	for _, h := range res.Hours {
		if h.Dropped > 1e-6*(1+h.Arrived) {
			t.Errorf("hour %d dropped %v req/h (rung %v)", h.Hour, h.Dropped, h.Degraded)
		}
		if h.ServedPremium > h.ArrivedPremium*(1+1e-9)+1e-6 {
			t.Errorf("hour %d served more premium than arrived", h.Hour)
		}
	}

	// Attribution: every hour has a rung, forced solver failures never show
	// up as clean optimal solves, and forced double failures sit at stale or
	// below.
	attributed := 0
	for _, n := range res.DegradedHours {
		attributed += n
	}
	if attributed != hours {
		t.Errorf("rung attribution covers %d of %d hours", attributed, hours)
	}
	for _, h := range res.Hours {
		if cfg.Faults.SolverFailures[h.Hour] && h.Degraded == core.DegradeNone {
			t.Errorf("hour %d: forced solver failure but rung %v", h.Hour, h.Degraded)
		}
		if cfg.Faults.FallbackFailures[h.Hour] &&
			(h.Degraded == core.DegradeNone || h.Degraded == core.DegradeFallback) {
			t.Errorf("hour %d: forced double failure but rung %v", h.Hour, h.Degraded)
		}
	}
	if res.DegradedHours[core.DegradeFallback] == 0 {
		t.Error("chaos schedule never exercised the fallback rung")
	}
	if res.DegradedHours[core.DegradeStale]+res.DegradedHours[core.DegradeShed] == 0 {
		t.Error("chaos schedule never exercised the stale/shed rungs")
	}

	// Ledger consistency: hourly bills sum to the month's totals, and the
	// budgeter's cumulative spend matches what was actually charged.
	sum := 0.0
	for _, h := range res.Hours {
		sum += h.BillUSD()
	}
	if rel := math.Abs(sum-res.TotalBillUSD()) / (1 + res.TotalBillUSD()); rel > 1e-9 {
		t.Errorf("hourly bills sum to %v, result says %v", sum, res.TotalBillUSD())
	}
	if lastLedger == nil {
		t.Fatal("no budget ledger traced")
	}
	if rel := math.Abs(lastLedger.SpentUSD-res.TotalBillUSD()) / (1 + res.TotalBillUSD()); rel > 1e-9 {
		t.Errorf("budgeter spent %v, realized bills total %v", lastLedger.SpentUSD, res.TotalBillUSD())
	}

	// Premium QoS held outside shed hours: the premium service rate stays
	// near 1 even though ~10% of hours ran degraded.
	if rate := res.PremiumServiceRate(); rate < 0.98 {
		t.Errorf("premium service rate %v under chaos, want ≥ 0.98", rate)
	}
}

// TestUnfaultedRunAttributesAllHoursToNone pins the no-chaos baseline: with
// no fault schedule every hour must be a clean optimal solve.
func TestUnfaultedRunAttributesAllHoursToNone(t *testing.T) {
	cfg, err := ShortScenario(pricing.Policy1, TightBudget(), 1)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := NewCostCapping(cfg.DCs, cfg.Policies)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(cfg, dec)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.DegradedHours[core.DegradeNone]; got != cfg.Month.Len() {
		t.Fatalf("%d of %d hours attributed to DegradeNone: %v",
			got, cfg.Month.Len(), res.DegradedHours)
	}
}

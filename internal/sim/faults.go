package sim

import (
	"math"
	"math/rand"

	"billcap/internal/core"
	"billcap/internal/dcmodel"
	"billcap/internal/pricing"
)

// Faults is a deterministic fault schedule injected into a run — the chaos
// harness for soak-testing the controller's degradation ladder. Corruptions
// apply only to what the controller *observes*; the ground-truth realization
// always uses the real demand and arrivals, so the harness measures how a
// misinformed controller performs against reality, not against its own
// corrupted view.
type Faults struct {
	// SiteOutages maps hour → indices of sites that are physically down.
	// The controller is told (HourInput.Down) and any load a decider still
	// sends there is dropped at realization.
	SiteOutages map[int][]int
	// DemandDropouts marks hours whose observed demand feed is lost: the
	// controller sees NaN for every region.
	DemandDropouts map[int]bool
	// DemandSpikes multiplies the observed (not true) demand of every region
	// by the given factor — a corrupted or manipulated price-relevant feed.
	DemandSpikes map[int]float64
	// ForecastBursts multiplies the hour's true arrivals by the factor. The
	// budgeter planned without it, so the burst stresses the budget ledger.
	ForecastBursts map[int]float64
	// SolverFailures forces the MILP rung to fail for the hour (delivered to
	// deciders implementing FaultSink).
	SolverFailures map[int]bool
	// FallbackFailures additionally forces the greedy rung to fail.
	FallbackFailures map[int]bool
	// AuditFailures forces the independent feasibility audit to reject the
	// solver's answer for the hour — the "wrong-but-plausible solve" fault.
	AuditFailures map[int]bool
}

// FaultSink is implemented by deciders that accept forced rung failures —
// the seam through which the harness reaches inside the ladder.
type FaultSink interface {
	InjectSolverFailure(hour int)
	InjectFallbackFailure(hour int)
	InjectAuditFailure(hour int)
}

// ChaosFaults draws a reproducible random fault schedule over the given
// month: ~2% of hours lose one site, ~3% lose the demand feed, ~2% see a
// 2–6× demand spike, ~1% a 1.5–3× arrival burst, ~5% a forced solver
// failure, and a fifth of those also lose the greedy rung. The same seed
// always yields the same schedule.
func ChaosFaults(seed int64, hours, sites int) *Faults {
	rng := rand.New(rand.NewSource(seed))
	f := &Faults{
		SiteOutages:      map[int][]int{},
		DemandDropouts:   map[int]bool{},
		DemandSpikes:     map[int]float64{},
		ForecastBursts:   map[int]float64{},
		SolverFailures:   map[int]bool{},
		FallbackFailures: map[int]bool{},
		AuditFailures:    map[int]bool{},
	}
	for h := 0; h < hours; h++ {
		if sites > 0 && rng.Float64() < 0.02 {
			f.SiteOutages[h] = []int{rng.Intn(sites)}
		}
		if rng.Float64() < 0.03 {
			f.DemandDropouts[h] = true
		}
		if rng.Float64() < 0.02 {
			f.DemandSpikes[h] = 2 + 4*rng.Float64()
		}
		if rng.Float64() < 0.01 {
			f.ForecastBursts[h] = 1.5 + 1.5*rng.Float64()
		}
		if rng.Float64() < 0.05 {
			f.SolverFailures[h] = true
			if rng.Float64() < 0.2 {
				f.FallbackFailures[h] = true
			}
		}
		if rng.Float64() < 0.02 {
			f.AuditFailures[h] = true
		}
	}
	return f
}

// deliver hands the forced rung failures to a decider that can take them.
func (f *Faults) deliver(d Decider) {
	if f == nil {
		return
	}
	sink, ok := d.(FaultSink)
	if !ok {
		return
	}
	for h := range f.SolverFailures {
		sink.InjectSolverFailure(h)
	}
	for h := range f.FallbackFailures {
		sink.InjectFallbackFailure(h)
	}
	for h := range f.AuditFailures {
		sink.InjectAuditFailure(h)
	}
}

// down builds the hour's availability vector (nil when no outage).
func (f *Faults) down(h, sites int) []bool {
	if f == nil || len(f.SiteOutages[h]) == 0 {
		return nil
	}
	down := make([]bool, sites)
	for _, i := range f.SiteOutages[h] {
		if i >= 0 && i < sites {
			down[i] = true
		}
	}
	return down
}

// observeDemand corrupts the true demand into what the controller sees.
func (f *Faults) observeDemand(h int, truth []float64) []float64 {
	if f == nil {
		return truth
	}
	if f.DemandDropouts[h] {
		out := make([]float64, len(truth))
		for i := range out {
			out[i] = math.NaN()
		}
		return out
	}
	if s, ok := f.DemandSpikes[h]; ok {
		out := make([]float64, len(truth))
		for i, d := range truth {
			out[i] = d * s
		}
		return out
	}
	return truth
}

// burst returns the hour's arrival multiplier (1 when unfaulted).
func (f *Faults) burst(h int) float64 {
	if f == nil {
		return 1
	}
	if b, ok := f.ForecastBursts[h]; ok {
		return b
	}
	return 1
}

// ResilientCapping wraps the paper's two-step algorithm in the core
// degradation ladder: it answers every hour (possibly degraded, never an
// error) and accepts forced rung failures, which makes it the subject of the
// chaos soak tests and the recommended production decider.
type ResilientCapping struct {
	ladder *core.Resilient
	name   string
}

// NewResilientCapping builds the resilient strategy over the given sites
// with the paper's optimizer configuration plus the supplied solve deadline
// and staleness bound.
func NewResilientCapping(dcs []*dcmodel.Site, policies []pricing.Policy,
	opts core.Options, ropts core.ResilientOptions) (*ResilientCapping, error) {
	sys, err := core.NewSystem(dcs, policies, opts)
	if err != nil {
		return nil, err
	}
	return &ResilientCapping{ladder: core.NewResilient(sys, ropts), name: "Cost Capping (resilient)"}, nil
}

// Name labels the strategy.
func (c *ResilientCapping) Name() string { return c.name }

// Ladder exposes the underlying resilient controller.
func (c *ResilientCapping) Ladder() *core.Resilient { return c.ladder }

// Decide runs the ladder; the error is always nil.
func (c *ResilientCapping) Decide(in core.HourInput) (core.Decision, error) {
	return c.ladder.Decide(in), nil
}

// InjectSolverFailure implements FaultSink.
func (c *ResilientCapping) InjectSolverFailure(hour int) { c.ladder.InjectSolverFailure(hour) }

// InjectFallbackFailure implements FaultSink.
func (c *ResilientCapping) InjectFallbackFailure(hour int) { c.ladder.InjectFallbackFailure(hour) }

// InjectAuditFailure implements FaultSink.
func (c *ResilientCapping) InjectAuditFailure(hour int) { c.ladder.InjectAuditFailure(hour) }

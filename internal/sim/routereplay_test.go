package sim

import (
	"testing"
	"time"

	"billcap/internal/core"
	"billcap/internal/pricing"
)

// TestReplayRoutesFaultedWeek drives a faulted week's decisions at request
// granularity: every hour the resilient ladder produced must compile into a
// routable snapshot (or be an honest shed), every synthetic request must be
// either routed or paced out, and the routed traffic must track each hour's
// MILP allocation closely.
func TestReplayRoutesFaultedWeek(t *testing.T) {
	cfg, err := ShortScenario(pricing.Policy1, TightBudget(), 1)
	if err != nil {
		t.Fatal(err)
	}
	hours := cfg.Month.Len()
	cfg.Faults = ChaosFaults(20260808, hours, len(cfg.DCs))
	dec, err := NewResilientCapping(cfg.DCs, cfg.Policies, core.Options{
		SolveDeadline: 2 * time.Second,
	}, core.ResilientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(cfg, dec)
	if err != nil {
		t.Fatal(err)
	}

	const perHour = 20000
	rep, err := ReplayRoutes(res, perHour)
	if err != nil {
		t.Fatalf("replay failed: %v", err)
	}
	if rep.Hours+rep.SheddedHours != hours {
		t.Fatalf("replay covered %d+%d of %d hours", rep.Hours, rep.SheddedHours, hours)
	}
	if rep.Hours == 0 {
		t.Fatal("every hour shed; nothing routed")
	}
	if rep.Requests != int64(rep.Hours)*perHour {
		t.Fatalf("issued %d requests for %d routable hours", rep.Requests, rep.Hours)
	}
	// Conservation: every issued request was either routed or paced out.
	premiumish := rep.Requests - rep.RoutedRequests - rep.DroppedOrdinary
	if premiumish != 0 {
		t.Fatalf("%d requests unaccounted for (issued %d, routed %d, dropped %d)",
			premiumish, rep.Requests, rep.RoutedRequests, rep.DroppedOrdinary)
	}
	// Fidelity: the request-level split stays within half a percent of the
	// hour allocations the simulation recorded.
	if rep.MaxWeightAbsErr > 0.005 {
		t.Errorf("worst weight error %v, want ≤ 0.005", rep.MaxWeightAbsErr)
	}
}

func TestReplayRoutesValidation(t *testing.T) {
	if _, err := ReplayRoutes(Result{}, 0); err == nil {
		t.Error("zero requests per hour accepted")
	}
	rep, err := ReplayRoutes(Result{Hours: []HourRecord{{SiteLambda: []float64{0, 0}}}}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if rep.SheddedHours != 1 || rep.Hours != 0 || rep.Requests != 0 {
		t.Fatalf("shed-only replay %+v", rep)
	}
}

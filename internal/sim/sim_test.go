package sim

import (
	"math"
	"testing"

	"billcap/internal/baseline"
	"billcap/internal/core"
	"billcap/internal/pricing"
	"billcap/internal/workload"
)

func mustScenario(t *testing.T, budget float64, weeks int) Config {
	t.Helper()
	cfg, err := ShortScenario(pricing.Policy1, budget, weeks)
	if err != nil {
		t.Fatal(err)
	}
	return cfg
}

func mustCapping(t *testing.T, cfg Config) *CostCapping {
	t.Helper()
	cc, err := NewCostCapping(cfg.DCs, cfg.Policies)
	if err != nil {
		t.Fatal(err)
	}
	return cc
}

func TestConfigValidate(t *testing.T) {
	good := mustScenario(t, Uncapped(), 1)
	if err := good.Validate(); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
	mutations := []func(*Config){
		func(c *Config) { c.DCs = nil },
		func(c *Config) { c.Policies = c.Policies[:2] },
		func(c *Config) { c.Demand = c.Demand[:1] },
		func(c *Config) { c.Month = workload.Trace{} },
		func(c *Config) { c.History = workload.Trace{} },
		func(c *Config) { c.History = c.History.Slice(0, 100) }, // not whole weeks
		func(c *Config) { c.PremiumFrac = 1.5 },
		func(c *Config) { c.MonthlyBudgetUSD = -1 },
		// Demand series shorter than the month.
		func(c *Config) { c.Demand[0].MW = c.Demand[0].MW[:c.Month.Len()-1] },
	}
	for i, mut := range mutations {
		cfg := mustScenario(t, Uncapped(), 1)
		mut(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestUncappedServesEverything(t *testing.T) {
	cfg := mustScenario(t, Uncapped(), 2)
	res, err := Run(cfg, mustCapping(t, cfg))
	if err != nil {
		t.Fatal(err)
	}
	if res.PremiumServiceRate() < 1-1e-9 {
		t.Errorf("premium rate = %v, want 1", res.PremiumServiceRate())
	}
	if res.OrdinaryServiceRate() < 1-1e-4 {
		t.Errorf("ordinary rate = %v, want ≈1", res.OrdinaryServiceRate())
	}
	if res.BudgetViolationHours != 0 {
		t.Errorf("budget violations = %d under +Inf budget", res.BudgetViolationHours)
	}
	if res.TotalPenaltyUSD != 0 {
		t.Errorf("penalties = %v, want 0 for the cap-aware strategy", res.TotalPenaltyUSD)
	}
	if res.TotalCostUSD <= 0 {
		t.Errorf("cost = %v", res.TotalCostUSD)
	}
	if res.Strategy != "Cost Capping" {
		t.Errorf("strategy = %q", res.Strategy)
	}
	if len(res.Hours) != cfg.Month.Len() {
		t.Errorf("hours = %d, want %d", len(res.Hours), cfg.Month.Len())
	}
}

func TestDeterminism(t *testing.T) {
	cfg := mustScenario(t, TightBudget(), 1)
	r1, err := Run(cfg, mustCapping(t, cfg))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(cfg, mustCapping(t, cfg))
	if err != nil {
		t.Fatal(err)
	}
	if r1.TotalBillUSD() != r2.TotalBillUSD() || r1.ServedOrdinary != r2.ServedOrdinary {
		t.Errorf("nondeterministic: %v/%v vs %v/%v",
			r1.TotalBillUSD(), r1.ServedOrdinary, r2.TotalBillUSD(), r2.ServedOrdinary)
	}
}

func TestCostCappingBeatsBaselines(t *testing.T) {
	// Paper Fig. 3: Cost Capping's bill is below Min-Only (Avg) and (Low),
	// and Low is the worst.
	cfg := mustScenario(t, Uncapped(), 4)
	rc, err := Run(cfg, mustCapping(t, cfg))
	if err != nil {
		t.Fatal(err)
	}
	bills := map[baseline.Variant]float64{}
	for _, v := range []baseline.Variant{baseline.Avg, baseline.Low} {
		mo, err := baseline.New(cfg.DCs, cfg.Policies, v)
		if err != nil {
			t.Fatal(err)
		}
		rb, err := Run(cfg, mo)
		if err != nil {
			t.Fatal(err)
		}
		bills[v] = rb.TotalBillUSD()
		if rc.TotalBillUSD() >= rb.TotalBillUSD() {
			t.Errorf("Cost Capping bill %v not below %s %v",
				rc.TotalBillUSD(), mo.Name(), rb.TotalBillUSD())
		}
		// Baselines serve everything (they ignore budgets entirely).
		if rb.PremiumServiceRate() < 1-1e-9 || rb.OrdinaryServiceRate() < 1-1e-4 {
			t.Errorf("%s dropped traffic: %v/%v", mo.Name(),
				rb.PremiumServiceRate(), rb.OrdinaryServiceRate())
		}
	}
	if bills[baseline.Low] <= bills[baseline.Avg] {
		t.Errorf("Min-Only (Low) %v not worse than (Avg) %v — paper ordering lost",
			bills[baseline.Low], bills[baseline.Avg])
	}
	// Meaningful savings: at least a few percent against each baseline.
	for v, b := range bills {
		if saving := (b - rc.TotalBillUSD()) / b; saving < 0.02 {
			t.Errorf("savings vs %v only %.1f%%", v, 100*saving)
		}
	}
}

func TestTightBudgetBehaviour(t *testing.T) {
	// Paper Figs. 7-9 at the insufficient budget: premium always served,
	// ordinary best-effort, monthly bill ≈ the budget (high utilization),
	// some hours violate their hourly budget for premium QoS.
	cfg := mustScenario(t, TightBudget(), 4)
	res, err := Run(cfg, mustCapping(t, cfg))
	if err != nil {
		t.Fatal(err)
	}
	if res.PremiumServiceRate() < 1-1e-9 {
		t.Errorf("premium rate = %v, want 1 regardless of budget", res.PremiumServiceRate())
	}
	ord := res.OrdinaryServiceRate()
	if ord <= 0.05 || ord >= 0.95 {
		t.Errorf("ordinary rate = %v, want partial service in (0.05, 0.95)", ord)
	}
	util := res.BudgetUtilization()
	if util < 0.95 || util > 1.1 {
		t.Errorf("budget utilization = %v, want ≈1", util)
	}
	if res.StepCounts[core.StepPremiumOnly] == 0 {
		t.Errorf("no premium-only hours under a tight budget; steps = %v", res.StepCounts)
	}
	if res.StepCounts[core.StepBudgetCapped] == 0 {
		t.Errorf("no budget-capped hours; steps = %v", res.StepCounts)
	}
}

func TestAbundantBudgetBehaviour(t *testing.T) {
	// Paper Figs. 5-6: with a sufficient budget everything is served and the
	// monthly bill stays below the budget.
	cfg := mustScenario(t, AbundantBudget(), 4)
	res, err := Run(cfg, mustCapping(t, cfg))
	if err != nil {
		t.Fatal(err)
	}
	if res.PremiumServiceRate() < 1-1e-9 {
		t.Errorf("premium rate = %v", res.PremiumServiceRate())
	}
	if res.OrdinaryServiceRate() < 1-1e-3 {
		t.Errorf("ordinary rate = %v, want ≈1", res.OrdinaryServiceRate())
	}
	if res.TotalBillUSD() > cfg.MonthlyBudgetUSD {
		t.Errorf("bill %v above budget %v", res.TotalBillUSD(), cfg.MonthlyBudgetUSD)
	}
	if res.BudgetViolationHours > 3 {
		t.Errorf("budget violation hours = %d, want ≈0", res.BudgetViolationHours)
	}
}

func TestBudgetSweepMonotone(t *testing.T) {
	// Paper Fig. 10: ordinary throughput grows with the budget; premium is
	// always fully served.
	prev := -1.0
	for _, b := range PaperBudgets() {
		cfg := mustScenario(t, b, 2)
		res, err := Run(cfg, mustCapping(t, cfg))
		if err != nil {
			t.Fatal(err)
		}
		if res.PremiumServiceRate() < 1-1e-9 {
			t.Errorf("budget %v: premium rate %v", b, res.PremiumServiceRate())
		}
		ord := res.OrdinaryServiceRate()
		if ord < prev-1e-6 {
			t.Errorf("budget %v: ordinary rate %v fell below %v", b, ord, prev)
		}
		prev = ord
	}
	if prev < 1-1e-3 {
		t.Errorf("largest budget still throttled ordinary traffic: %v", prev)
	}
}

func TestMinOnlyViolatesTightBudget(t *testing.T) {
	// Paper Fig. 9: Min-Only overruns the budget (23.3% / 39.5% there).
	cfg := mustScenario(t, TightBudget(), 4)
	for _, v := range []baseline.Variant{baseline.Avg, baseline.Low} {
		mo, err := baseline.New(cfg.DCs, cfg.Policies, v)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(cfg, mo)
		if err != nil {
			t.Fatal(err)
		}
		if res.BudgetUtilization() < 1.1 {
			t.Errorf("%s utilization %v, want clear overrun", mo.Name(), res.BudgetUtilization())
		}
	}
}

func TestPredictionErrorDegradesGracefully(t *testing.T) {
	// Half the month → half the tight budget, so it stays genuinely tight.
	cfg := mustScenario(t, TightBudget()/2, 2)
	cfg.PredictionError = 0.3
	cfg.PredictionSeed = 99
	res, err := Run(cfg, mustCapping(t, cfg))
	if err != nil {
		t.Fatal(err)
	}
	if res.PremiumServiceRate() < 1-1e-9 {
		t.Errorf("premium rate %v under prediction error", res.PremiumServiceRate())
	}
	// The monthly bill must still track the budget loosely.
	if u := res.BudgetUtilization(); u < 0.8 || u > 1.25 {
		t.Errorf("utilization %v drifted too far under 30%% prediction error", u)
	}
}

func TestHourRecordSeries(t *testing.T) {
	cfg := mustScenario(t, TightBudget(), 1)
	res, err := Run(cfg, mustCapping(t, cfg))
	if err != nil {
		t.Fatal(err)
	}
	bills := res.HourlyBills()
	budgets := res.HourlyBudgets()
	if len(bills) != len(res.Hours) || len(budgets) != len(res.Hours) {
		t.Fatalf("series lengths %d/%d vs %d hours", len(bills), len(budgets), len(res.Hours))
	}
	sum := 0.0
	for i, h := range res.Hours {
		if bills[i] != h.BillUSD() {
			t.Errorf("hour %d bill mismatch", i)
		}
		sum += h.CostUSD + h.PenaltyUSD
	}
	if math.Abs(sum-res.TotalBillUSD()) > 1e-6*(1+sum) {
		t.Errorf("hourly bills sum %v != total %v", sum, res.TotalBillUSD())
	}
}

func TestRunAllMatchesSequential(t *testing.T) {
	cfg := mustScenario(t, Uncapped(), 1)
	cc := mustCapping(t, cfg)
	avg, err := baseline.New(cfg.DCs, cfg.Policies, baseline.Avg)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := RunAll(cfg, cc, avg)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != 2 {
		t.Fatalf("results = %d", len(batch))
	}
	// Order preserved and totals identical to sequential runs.
	seqCC, err := Run(cfg, mustCapping(t, cfg))
	if err != nil {
		t.Fatal(err)
	}
	if batch[0].Strategy != "Cost Capping" || batch[1].Strategy != "Min-Only (Avg)" {
		t.Errorf("order = %s, %s", batch[0].Strategy, batch[1].Strategy)
	}
	if batch[0].TotalBillUSD() != seqCC.TotalBillUSD() {
		t.Errorf("concurrent %v != sequential %v", batch[0].TotalBillUSD(), seqCC.TotalBillUSD())
	}
}

func TestRunAllPropagatesErrors(t *testing.T) {
	cfg := mustScenario(t, Uncapped(), 1)
	bad := cfg
	bad.Demand = bad.Demand[:1]
	if _, err := RunAll(bad, mustCapping(t, cfg)); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestUncappedResultHelpers(t *testing.T) {
	r := Result{MonthlyBudgetUSD: math.Inf(1)}
	if r.BudgetUtilization() != 0 {
		t.Errorf("uncapped utilization = %v", r.BudgetUtilization())
	}
	if r.PremiumServiceRate() != 1 || r.OrdinaryServiceRate() != 1 {
		t.Errorf("empty rates should be 1")
	}
}

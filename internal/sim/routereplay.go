package sim

import (
	"fmt"
	"math"

	"billcap/internal/dispatch"
)

// RouteReplayReport summarizes a request-level replay of a simulated run:
// every recorded hour compiled into the data plane's routing snapshot and
// driven with synthetic requests, proving the hour decisions the simulation
// recorded are actually servable by the O(1) request path — including the
// hours a fault schedule degraded.
type RouteReplayReport struct {
	// Hours is how many recorded hours produced a routable snapshot;
	// SheddedHours is how many allocated nothing (a shed decision or an
	// hour with no arrivals) and therefore routed nothing.
	Hours        int
	SheddedHours int
	// Requests is the number of synthetic requests issued; RoutedRequests of
	// them reached a site and DroppedOrdinary were rejected by the hour's
	// admission pacing.
	Requests        int64
	RoutedRequests  int64
	DroppedOrdinary int64
	// MaxWeightAbsErr is the worst per-site absolute gap between the routed
	// fraction and the hour's allocation weight, across all routed hours —
	// the request-level fidelity of the wheel to the MILP's allocation.
	MaxWeightAbsErr float64
}

// perRequestSample is how many of each hour's requests take the
// one-at-a-time Route/Admit path before the remainder goes through the
// closed-form batch, so a replay exercises both.
const perRequestSample = 512

// ReplayRoutes replays a finished run at request granularity: each
// HourRecord's realized per-site dispatch becomes a dispatch.Snapshot (the
// same compilation the API's data plane performs per decision) and
// requestsPerHour synthetic requests are admitted and routed through it,
// premium and ordinary split as the hour's recorded arrivals were.
func ReplayRoutes(res Result, requestsPerHour int) (RouteReplayReport, error) {
	if requestsPerHour <= 0 {
		return RouteReplayReport{}, fmt.Errorf("sim: requests per hour %d", requestsPerHour)
	}
	var rep RouteReplayReport
	for _, rec := range res.Hours {
		routable := false
		for _, l := range rec.SiteLambda {
			if l > 0 {
				routable = true
				break
			}
		}
		if !routable {
			rep.SheddedHours++
			continue
		}
		snap, err := dispatch.NewSnapshot(rec.SiteLambda, rec.ServedOrdinary, rec.ArrivedOrdinary,
			rec.Hour, uint64(rec.Hour)+1)
		if err != nil {
			return rep, fmt.Errorf("sim: hour %d: %w", rec.Hour, err)
		}
		rep.Hours++

		premiumFrac := 0.0
		if rec.Arrived > 0 {
			premiumFrac = rec.ArrivedPremium / rec.Arrived
		}
		premium := int(math.Round(premiumFrac * float64(requestsPerHour)))
		ordinary := requestsPerHour - premium
		rep.Requests += int64(requestsPerHour)

		// Admission: a sample one at a time, the rest in closed form.
		admitted := 0
		sample := min(perRequestSample, ordinary)
		for i := 0; i < sample; i++ {
			if snap.Admit(dispatch.Ordinary) {
				admitted++
			}
		}
		admitted += snap.AdmitBatch(ordinary - sample)
		rep.DroppedOrdinary += int64(ordinary - admitted)

		// Routing: same split across the two paths.
		routed := premium + admitted
		counts := make([]int64, snap.NumSites())
		sample = min(perRequestSample, routed)
		for i := 0; i < sample; i++ {
			counts[snap.Route()]++
		}
		for i, c := range snap.RouteBatch(routed - sample) {
			counts[i] += c
		}
		rep.RoutedRequests += int64(routed)
		snap.NoteArrivals(requestsPerHour)

		w := snap.Weights()
		for i, c := range counts {
			if routed == 0 {
				break
			}
			if gap := math.Abs(float64(c)/float64(routed) - w[i]); gap > rep.MaxWeightAbsErr {
				rep.MaxWeightAbsErr = gap
			}
		}
	}
	return rep, nil
}

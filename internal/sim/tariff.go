package sim

import (
	"fmt"
	"math"
	"math/rand"

	"billcap/internal/battery"
	"billcap/internal/core"
	"billcap/internal/forecast"
	"billcap/internal/pricing"
)

// tariffRig is one run's tariff ground truth: the composable tariff the
// market actually bills, the billing-period peak ledger behind its demand
// charge, the physical batteries, and the precomputed day-ahead position
// (commitments and synthesized real-time prices) for two-settlement runs.
// One rig serves one Run; RunAll builds one per strategy so ledgers and
// batteries never cross-contaminate.
type tariffRig struct {
	tariff pricing.Tariff
	ledger *pricing.PeakLedger
	bats   []*battery.Battery
	specs  []core.BatterySpec // static battery parameters; SoCMWh refreshed per hour
	commit [][]float64        // [site][hour] day-ahead commitments, nil outside two-settlement
	rt     [][]float64        // [site][hour] real-time prices, nil outside two-settlement
}

// hasTariff reports whether the configuration bills anything beyond plain
// energy charges (or operates storage, which changes the metered draw).
func (c Config) hasTariff() bool {
	return c.DemandChargeUSDPerMWMonth > 0 || c.TwoSettlement || len(c.Batteries) > 0
}

func (c Config) rtSpread() float64 {
	if c.RTSpread <= 0 {
		return 0.15
	}
	return c.RTSpread
}

// newTariffRig assembles the run's tariff machinery. The two-settlement
// position is struck before the month starts, exactly as a day-ahead market
// requires: commitments follow the hour-of-week forecast fitted on the
// history (split across sites in proportion to SLA capacity, converted to
// grid draw through each site's true power model), and the real-time price
// is the day-ahead price perturbed by seeded mean-one lognormal noise. Both
// series are deterministic in the config, so a crash-restarted run re-derives
// the identical market position.
func newTariffRig(cfg Config) (*tariffRig, error) {
	n := len(cfg.DCs)
	rig := &tariffRig{
		ledger: pricing.NewPeakLedger(n),
		tariff: pricing.Tariff{
			Energy:                    cfg.Policies,
			DemandChargeUSDPerMWMonth: cfg.DemandChargeUSDPerMWMonth,
		},
	}

	if len(cfg.Batteries) > 0 {
		rig.bats = make([]*battery.Battery, n)
		rig.specs = make([]core.BatterySpec, n)
		for i, spec := range cfg.Batteries {
			if spec.CapacityMWh == 0 {
				continue // explicit "no battery at this site"
			}
			b, err := battery.New(spec.CapacityMWh, spec.MaxChargeMW, spec.MaxDischargeMW, spec.Efficiency)
			if err != nil {
				return nil, fmt.Errorf("sim: site %d battery: %w", i, err)
			}
			b.SetSoC(spec.SoCMWh)
			if spec.ValueUSDPerMWh == 0 {
				// Default the value of stored energy to the site's mean LMP
				// band: charge below it, discharge above it.
				spec.ValueUSDPerMWh = cfg.Policies[i].Fn.Mean()
			}
			rig.bats[i] = b
			rig.specs[i] = spec
		}
	}

	if cfg.TwoSettlement {
		hw, err := forecast.FitHourOfWeek(cfg.History.Rates)
		if err != nil {
			return nil, err
		}
		pred := hw.PredictSeries(cfg.Month.Len())

		shares := make([]float64, n)
		total := 0.0
		for i, dc := range cfg.DCs {
			maxLam, err := dc.Queue.MaxThroughput(dc.MaxServers, dc.RespSLAHours)
			if err != nil {
				return nil, fmt.Errorf("sim: site %s: %w", dc.Name, err)
			}
			shares[i] = maxLam
			total += maxLam
		}

		rig.commit = make([][]float64, n)
		rig.rt = make([][]float64, n)
		for i := range rig.commit {
			rig.commit[i] = make([]float64, cfg.Month.Len())
			rig.rt[i] = make([]float64, cfg.Month.Len())
		}
		sigma := cfg.rtSpread()
		rng := rand.New(rand.NewSource(cfg.RTSeed + 1))
		for h := 0; h < cfg.Month.Len(); h++ {
			for i, dc := range cfg.DCs {
				lam := pred[h] * shares[i] / total
				b, err := dc.Evaluate(lam)
				if err != nil {
					return nil, fmt.Errorf("sim: site %s: %w", dc.Name, err)
				}
				c := math.Min(b.TotalMW(), dc.PowerCapMW)
				da := cfg.Policies[i].Price(cfg.Demand[i].At(h) + c)
				// Mean-one lognormal deviation keeps E[RT] = DA.
				rt := da * math.Exp(sigma*rng.NormFloat64()-sigma*sigma/2)
				rig.commit[i][h] = c
				rig.rt[i][h] = rt
			}
		}
		rig.tariff.Settlement = &pricing.TwoSettlement{CommitMW: rig.commit, RTUSDPerMWh: rig.rt}
	}

	if err := rig.tariff.Validate(); err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	return rig, nil
}

// TariffBlind wraps a decider so it never sees the tariff extras: every hour
// is dispatched as if the demand charge, market position and batteries did
// not exist, while the market still bills them. This is the energy-only
// baseline that tariff-aware dispatch is measured against.
func TariffBlind(d Decider) Decider { return tariffBlind{d} }

type tariffBlind struct{ inner Decider }

func (b tariffBlind) Name() string { return b.inner.Name() + " (tariff-blind)" }

func (b tariffBlind) Decide(in core.HourInput) (core.Decision, error) {
	in.DemandChargeUSDPerMW = 0
	in.PeakMW = nil
	in.RTPriceUSDPerMWh = nil
	in.CommitMW = nil
	in.Batteries = nil
	return b.inner.Decide(in)
}

// attach adds the hour's tariff state to the decider's input: the demand
// charge and peak-so-far ledger, the market position, and the batteries'
// current state of charge.
func (tr *tariffRig) attach(in *core.HourInput, cfg Config) {
	if cfg.DemandChargeUSDPerMWMonth > 0 {
		in.DemandChargeUSDPerMW = cfg.DemandChargeUSDPerMWMonth
		in.PeakMW = tr.ledger.Peaks()
	}
	if tr.rt != nil {
		h := in.Hour
		rt := make([]float64, len(tr.rt))
		cm := make([]float64, len(tr.commit))
		for i := range rt {
			rt[i] = tr.rt[i][h]
			cm[i] = tr.commit[i][h]
		}
		in.RTPriceUSDPerMWh = rt
		in.CommitMW = cm
	}
	if tr.bats != nil {
		specs := make([]core.BatterySpec, len(tr.specs))
		copy(specs, tr.specs)
		for i, b := range tr.bats {
			if b != nil {
				specs[i].SoCMWh = b.SoC()
			}
		}
		in.Batteries = specs
	}
}

// apply executes the decision's planned battery actions against the physical
// batteries and returns the resulting metered grid draw per site. Discharge
// is clamped to the realized IT draw (no export) and to what the store
// actually holds; charge is clamped to the battery's own rate and headroom.
// Down sites moved no energy: their plan was zeroed with their load.
func (tr *tariffRig) apply(dec core.Decision, in core.HourInput, realPower []float64) (grid, chg, dis []float64) {
	grid = make([]float64, len(realPower))
	chg = make([]float64, len(realPower))
	dis = make([]float64, len(realPower))
	for i, p := range realPower {
		var c, g float64
		if tr.bats != nil && i < len(tr.bats) && tr.bats[i] != nil &&
			i < len(dec.Sites) && !in.SiteDown(i) {
			plan := dec.Sites[i]
			g = tr.bats[i].Discharge(math.Min(plan.DischargeMW, p))
			c = tr.bats[i].Charge(plan.ChargeMW)
		}
		grid[i] = p + c - g
		chg[i] = c
		dis[i] = g
	}
	return grid, chg, dis
}

// socs returns the per-site battery state of charge (nil when no batteries).
func (tr *tariffRig) socs() []float64 {
	if tr.bats == nil {
		return nil
	}
	out := make([]float64, len(tr.bats))
	for i, b := range tr.bats {
		if b != nil {
			out[i] = b.SoC()
		}
	}
	return out
}

// restore folds a recovered checkpoint's tariff state back into the rig.
func (tr *tariffRig) restore(peaks *pricing.PeakState, socMWh []float64) error {
	if peaks != nil {
		if err := tr.ledger.Restore(*peaks); err != nil {
			return fmt.Errorf("sim: %w", err)
		}
	}
	if socMWh != nil {
		if len(socMWh) != len(tr.bats) {
			return fmt.Errorf("sim: restored %d battery states for %d sites", len(socMWh), len(tr.bats))
		}
		for i, b := range tr.bats {
			if b != nil {
				b.SetSoC(socMWh[i])
			}
		}
	}
	return nil
}

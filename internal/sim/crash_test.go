package sim

import (
	"errors"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"billcap/internal/core"
	"billcap/internal/pricing"
)

func resilientDecider(t *testing.T, cfg Config) *ResilientCapping {
	t.Helper()
	dec, err := NewResilientCapping(cfg.DCs, cfg.Policies, core.Options{
		SolveDeadline: 2 * time.Second,
	}, core.ResilientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return dec
}

// TestChaosSoakCrashRestart is the crash-recovery guarantee: a SIGKILL
// mid-month with a state directory set loses nothing. The resumed run picks
// up at the exact next hour, the stitched-together month has zero missing
// decisions and zero cap violations, and the final budget ledger is
// identical (±1e-9) to a run that never crashed.
func TestChaosSoakCrashRestart(t *testing.T) {
	cfg, err := ShortScenario(pricing.Policy1, TightBudget(), 2)
	if err != nil {
		t.Fatal(err)
	}
	hours := cfg.Month.Len()
	cfg.Faults = ChaosFaults(20260808, hours, len(cfg.DCs))

	// Reference: the same faulted month with no crash and no state dir.
	ref, err := Run(cfg, resilientDecider(t, cfg))
	if err != nil {
		t.Fatal(err)
	}

	// Crashed run: halt mid-month at an hour that is neither a week nor a
	// snapshot boundary, so recovery has to replay a WAL tail on top of a
	// snapshot, not just read a fresh snapshot.
	crashed := cfg
	crashed.StateDir = t.TempDir()
	crashed.HaltAfterHours = hours/2 + 7
	res1, err := Run(crashed, resilientDecider(t, crashed))
	if !errors.Is(err, ErrHalted) {
		t.Fatalf("halted run returned %v, want ErrHalted", err)
	}
	if len(res1.Hours) != crashed.HaltAfterHours {
		t.Fatalf("crashed run decided %d hours, want %d", len(res1.Hours), crashed.HaltAfterHours)
	}

	// Resumed run: a fresh decider over the same directory.
	resumed := crashed
	resumed.HaltAfterHours = 0
	res2, err := Run(resumed, resilientDecider(t, resumed))
	if err != nil {
		t.Fatal(err)
	}
	if res2.StartHour != crashed.HaltAfterHours {
		t.Fatalf("resumed at hour %d, want %d", res2.StartHour, crashed.HaltAfterHours)
	}
	if res2.Restore == nil || !res2.Restore.Restored {
		t.Fatal("resumed run reports no restore")
	}
	if res2.Restore.WALEntriesReplayed == 0 {
		t.Error("resume never exercised WAL replay (halt landed on a snapshot boundary?)")
	}

	// Zero missing decisions across the crash.
	if got := len(res1.Hours) + len(res2.Hours); got != hours {
		t.Fatalf("crash+resume decided %d of %d hours", got, hours)
	}
	// Zero cap violations in either half.
	if v := res1.CapViolationHours + res2.CapViolationHours; v != 0 {
		t.Errorf("%d cap-violation hours across the crash", v)
	}

	// The restored ladder must have carried the pre-crash reserve: the
	// resumed half attributes every hour to a rung, like the reference.
	attributed := 0
	for _, n := range res2.DegradedHours {
		attributed += n
	}
	if attributed != len(res2.Hours) {
		t.Errorf("resumed rung attribution covers %d of %d hours", attributed, len(res2.Hours))
	}

	// Budget pool conservation: the stitched ledger is the uncrashed ledger.
	if ref.Budget == nil || res2.Budget == nil {
		t.Fatal("missing final ledger snapshots")
	}
	if d := math.Abs(ref.Budget.PoolUSD - res2.Budget.PoolUSD); d > 1e-9*(1+math.Abs(ref.Budget.PoolUSD)) {
		t.Errorf("pool discontinuity across crash: %v vs uncrashed %v", res2.Budget.PoolUSD, ref.Budget.PoolUSD)
	}
	if d := math.Abs(ref.Budget.SpentUSD - res2.Budget.SpentUSD); d > 1e-9*(1+ref.Budget.SpentUSD) {
		t.Errorf("spend discontinuity across crash: %v vs uncrashed %v", res2.Budget.SpentUSD, ref.Budget.SpentUSD)
	}
	if res2.Budget.NextHour != hours {
		t.Errorf("ledger cursor %d after resume, want %d", res2.Budget.NextHour, hours)
	}
	if ref.Budget.Violations != res2.Budget.Violations {
		t.Errorf("violation count %d across crash, uncrashed %d", res2.Budget.Violations, ref.Budget.Violations)
	}
}

// TestChaosSoakCorruptCheckpoint injects checkpoint corruption between crash
// and resume: the newest snapshot is garbage and the WAL has a torn tail.
// Recovery must fall back to the older snapshot generation, replay the
// compacted WAL, truncate the tear, and resume with at most the torn hour
// re-decided — never with a corrupted ledger.
func TestChaosSoakCorruptCheckpoint(t *testing.T) {
	cfg, err := ShortScenario(pricing.Policy1, TightBudget(), 1)
	if err != nil {
		t.Fatal(err)
	}
	hours := cfg.Month.Len()

	crashed := cfg
	crashed.StateDir = t.TempDir()
	crashed.HaltAfterHours = 60 // two snapshot generations (24, 48) + WAL tail
	if _, err := Run(crashed, resilientDecider(t, crashed)); !errors.Is(err, ErrHalted) {
		t.Fatalf("halted run returned %v, want ErrHalted", err)
	}

	// Corrupt the newest snapshot and tear the last WAL record.
	des, err := os.ReadDir(crashed.StateDir)
	if err != nil {
		t.Fatal(err)
	}
	var snaps []string
	for _, de := range des {
		if strings.HasPrefix(de.Name(), "snap-") && strings.HasSuffix(de.Name(), ".json") {
			snaps = append(snaps, de.Name())
		}
	}
	if len(snaps) != 2 {
		t.Fatalf("want 2 snapshot generations, have %v", snaps)
	}
	newest := snaps[len(snaps)-1]
	if err := os.WriteFile(filepath.Join(crashed.StateDir, newest), []byte("{corrupt"), 0o644); err != nil {
		t.Fatal(err)
	}
	walPath := filepath.Join(crashed.StateDir, "wal.log")
	if fi, err := os.Stat(walPath); err == nil && fi.Size() > 10 {
		if err := os.Truncate(walPath, fi.Size()-10); err != nil {
			t.Fatal(err)
		}
	} else {
		t.Fatalf("no WAL tail to tear: %v", err)
	}

	resumed := crashed
	resumed.HaltAfterHours = 0
	res, err := Run(resumed, resilientDecider(t, resumed))
	if err != nil {
		t.Fatal(err)
	}
	if res.Restore == nil || !res.Restore.Restored {
		t.Fatal("no restore reported")
	}
	if res.Restore.SnapshotFallbacks == 0 {
		t.Error("corrupt snapshot not counted as a fallback")
	}
	if res.Restore.WALCorruptions == 0 {
		t.Error("torn WAL tail not counted")
	}
	// The torn record loses exactly the last durable hour: resume restarts
	// at hour 59 (the tear) rather than 60, and re-decides it.
	if res.StartHour != crashed.HaltAfterHours-1 {
		t.Errorf("resumed at hour %d, want %d (torn hour re-decided)", res.StartHour, crashed.HaltAfterHours-1)
	}
	if res.Budget == nil || res.Budget.NextHour != hours {
		t.Fatalf("ledger cursor %v, want %d", res.Budget, hours)
	}
	if res.CapViolationHours != 0 {
		t.Errorf("%d cap-violation hours after corrupt-checkpoint recovery", res.CapViolationHours)
	}
}

// TestChaosSoakAuditRejectionAttribution pins audit-fault attribution: every
// forced audit failure shows up as the audit-reject rung in the run records.
func TestChaosSoakAuditRejectionAttribution(t *testing.T) {
	cfg, err := ShortScenario(pricing.Policy1, TightBudget(), 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Faults = &Faults{AuditFailures: map[int]bool{10: true, 50: true, 100: true}}
	res, err := Run(cfg, resilientDecider(t, cfg))
	if err != nil {
		t.Fatal(err)
	}
	if got := res.DegradedHours[core.DegradeAudit]; got != len(cfg.Faults.AuditFailures) {
		t.Fatalf("%d hours at audit-reject rung, want %d: %v",
			got, len(cfg.Faults.AuditFailures), res.DegradedHours)
	}
	for _, h := range res.Hours {
		if cfg.Faults.AuditFailures[h.Hour] && h.Degraded != core.DegradeAudit {
			t.Errorf("hour %d: forced audit failure attributed to %v", h.Hour, h.Degraded)
		}
	}
	if res.CapViolationHours != 0 {
		t.Errorf("%d cap-violation hours under audit demotion", res.CapViolationHours)
	}
}
